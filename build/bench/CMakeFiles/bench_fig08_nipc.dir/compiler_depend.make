# Empty compiler generated dependencies file for bench_fig08_nipc.
# This may be replaced when dependencies are built.
