file(REMOVE_RECURSE
  "CMakeFiles/bench_fig08_nipc.dir/bench_fig08_nipc.cc.o"
  "CMakeFiles/bench_fig08_nipc.dir/bench_fig08_nipc.cc.o.d"
  "bench_fig08_nipc"
  "bench_fig08_nipc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08_nipc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
