# Empty compiler generated dependencies file for bench_fig14g_aml.
# This may be replaced when dependencies are built.
