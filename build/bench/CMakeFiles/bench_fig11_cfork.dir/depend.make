# Empty dependencies file for bench_fig11_cfork.
# This may be replaced when dependencies are built.
