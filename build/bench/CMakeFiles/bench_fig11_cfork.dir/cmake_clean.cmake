file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_cfork.dir/bench_fig11_cfork.cc.o"
  "CMakeFiles/bench_fig11_cfork.dir/bench_fig11_cfork.cc.o.d"
  "bench_fig11_cfork"
  "bench_fig11_cfork.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_cfork.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
