file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_fpga_chain.dir/bench_fig13_fpga_chain.cc.o"
  "CMakeFiles/bench_fig13_fpga_chain.dir/bench_fig13_fpga_chain.cc.o.d"
  "bench_fig13_fpga_chain"
  "bench_fig13_fpga_chain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_fpga_chain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
