# Empty compiler generated dependencies file for bench_fig13_fpga_chain.
# This may be replaced when dependencies are built.
