file(REMOVE_RECURSE
  "CMakeFiles/bench_tab04_fpga_util.dir/bench_tab04_fpga_util.cc.o"
  "CMakeFiles/bench_tab04_fpga_util.dir/bench_tab04_fpga_util.cc.o.d"
  "bench_tab04_fpga_util"
  "bench_tab04_fpga_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab04_fpga_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
