# Empty compiler generated dependencies file for bench_tab04_fpga_util.
# This may be replaced when dependencies are built.
