# Empty dependencies file for bench_tab05_generality.
# This may be replaced when dependencies are built.
