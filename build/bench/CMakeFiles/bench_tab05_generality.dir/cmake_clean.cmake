file(REMOVE_RECURSE
  "CMakeFiles/bench_tab05_generality.dir/bench_tab05_generality.cc.o"
  "CMakeFiles/bench_tab05_generality.dir/bench_tab05_generality.cc.o.d"
  "bench_tab05_generality"
  "bench_tab05_generality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab05_generality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
