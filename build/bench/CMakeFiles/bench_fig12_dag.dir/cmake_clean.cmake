file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_dag.dir/bench_fig12_dag.cc.o"
  "CMakeFiles/bench_fig12_dag.dir/bench_fig12_dag.cc.o.d"
  "bench_fig12_dag"
  "bench_fig12_dag.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_dag.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
