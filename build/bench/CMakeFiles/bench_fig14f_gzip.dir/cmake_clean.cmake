file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14f_gzip.dir/bench_fig14f_gzip.cc.o"
  "CMakeFiles/bench_fig14f_gzip.dir/bench_fig14f_gzip.cc.o.d"
  "bench_fig14f_gzip"
  "bench_fig14f_gzip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14f_gzip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
