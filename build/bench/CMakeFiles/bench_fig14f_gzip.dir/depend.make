# Empty dependencies file for bench_fig14f_gzip.
# This may be replaced when dependencies are built.
