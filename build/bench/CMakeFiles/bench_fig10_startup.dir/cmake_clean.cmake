file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_startup.dir/bench_fig10_startup.cc.o"
  "CMakeFiles/bench_fig10_startup.dir/bench_fig10_startup.cc.o.d"
  "bench_fig10_startup"
  "bench_fig10_startup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_startup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
