# Empty dependencies file for bench_fig10_startup.
# This may be replaced when dependencies are built.
