file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14e_chained.dir/bench_fig14e_chained.cc.o"
  "CMakeFiles/bench_fig14e_chained.dir/bench_fig14e_chained.cc.o.d"
  "bench_fig14e_chained"
  "bench_fig14e_chained.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14e_chained.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
