# Empty compiler generated dependencies file for bench_fig14e_chained.
# This may be replaced when dependencies are built.
