file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14a_functionbench.dir/bench_fig14a_functionbench.cc.o"
  "CMakeFiles/bench_fig14a_functionbench.dir/bench_fig14a_functionbench.cc.o.d"
  "bench_fig14a_functionbench"
  "bench_fig14a_functionbench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14a_functionbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
