file(REMOVE_RECURSE
  "CMakeFiles/bench_fig09_commercial.dir/bench_fig09_commercial.cc.o"
  "CMakeFiles/bench_fig09_commercial.dir/bench_fig09_commercial.cc.o.d"
  "bench_fig09_commercial"
  "bench_fig09_commercial.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_commercial.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
