# Empty dependencies file for bench_fig09_commercial.
# This may be replaced when dependencies are built.
