# Empty dependencies file for bench_fig02a_density.
# This may be replaced when dependencies are built.
