# Empty compiler generated dependencies file for bench_fig14h_matrix_app.
# This may be replaced when dependencies are built.
