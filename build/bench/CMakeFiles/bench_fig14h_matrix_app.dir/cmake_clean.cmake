file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14h_matrix_app.dir/bench_fig14h_matrix_app.cc.o"
  "CMakeFiles/bench_fig14h_matrix_app.dir/bench_fig14h_matrix_app.cc.o.d"
  "bench_fig14h_matrix_app"
  "bench_fig14h_matrix_app.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14h_matrix_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
