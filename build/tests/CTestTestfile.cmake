# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/sim_time_test[1]_include.cmake")
include("/root/repo/build/tests/sim_event_queue_test[1]_include.cmake")
include("/root/repo/build/tests/sim_task_test[1]_include.cmake")
include("/root/repo/build/tests/sim_sync_test[1]_include.cmake")
include("/root/repo/build/tests/sim_random_test[1]_include.cmake")
include("/root/repo/build/tests/sim_stats_test[1]_include.cmake")
include("/root/repo/build/tests/hw_pu_test[1]_include.cmake")
include("/root/repo/build/tests/hw_interconnect_test[1]_include.cmake")
include("/root/repo/build/tests/hw_fpga_test[1]_include.cmake")
include("/root/repo/build/tests/hw_gpu_test[1]_include.cmake")
include("/root/repo/build/tests/os_memory_test[1]_include.cmake")
include("/root/repo/build/tests/os_kernel_test[1]_include.cmake")
include("/root/repo/build/tests/xpu_capability_test[1]_include.cmake")
include("/root/repo/build/tests/xpu_shim_test[1]_include.cmake")
include("/root/repo/build/tests/sandbox_runc_test[1]_include.cmake")
include("/root/repo/build/tests/sandbox_runf_test[1]_include.cmake")
include("/root/repo/build/tests/core_molecule_test[1]_include.cmake")
include("/root/repo/build/tests/prop_determinism_test[1]_include.cmake")
include("/root/repo/build/tests/prop_sweep_test[1]_include.cmake")
include("/root/repo/build/tests/prop_invariants_test[1]_include.cmake")
include("/root/repo/build/tests/core_scheduler_test[1]_include.cmake")
include("/root/repo/build/tests/workloads_catalog_test[1]_include.cmake")
include("/root/repo/build/tests/core_startup_test[1]_include.cmake")
include("/root/repo/build/tests/workloads_loadgen_test[1]_include.cmake")
include("/root/repo/build/tests/core_dag_test[1]_include.cmake")
include("/root/repo/build/tests/core_deployment_test[1]_include.cmake")
include("/root/repo/build/tests/xpu_transport_test[1]_include.cmake")
