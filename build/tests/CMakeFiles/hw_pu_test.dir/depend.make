# Empty dependencies file for hw_pu_test.
# This may be replaced when dependencies are built.
