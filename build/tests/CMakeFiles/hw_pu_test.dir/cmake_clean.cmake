file(REMOVE_RECURSE
  "CMakeFiles/hw_pu_test.dir/hw/pu_test.cc.o"
  "CMakeFiles/hw_pu_test.dir/hw/pu_test.cc.o.d"
  "hw_pu_test"
  "hw_pu_test.pdb"
  "hw_pu_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hw_pu_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
