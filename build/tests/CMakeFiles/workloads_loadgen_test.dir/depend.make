# Empty dependencies file for workloads_loadgen_test.
# This may be replaced when dependencies are built.
