file(REMOVE_RECURSE
  "CMakeFiles/workloads_loadgen_test.dir/workloads/loadgen_test.cc.o"
  "CMakeFiles/workloads_loadgen_test.dir/workloads/loadgen_test.cc.o.d"
  "workloads_loadgen_test"
  "workloads_loadgen_test.pdb"
  "workloads_loadgen_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workloads_loadgen_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
