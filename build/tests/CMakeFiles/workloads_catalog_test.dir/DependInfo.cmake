
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/workloads/catalog_test.cc" "tests/CMakeFiles/workloads_catalog_test.dir/workloads/catalog_test.cc.o" "gcc" "tests/CMakeFiles/workloads_catalog_test.dir/workloads/catalog_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workloads/CMakeFiles/molecule_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/sandbox/CMakeFiles/molecule_sandbox.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/molecule_os.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/molecule_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/molecule_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
