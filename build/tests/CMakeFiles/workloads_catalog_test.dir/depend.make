# Empty dependencies file for workloads_catalog_test.
# This may be replaced when dependencies are built.
