file(REMOVE_RECURSE
  "CMakeFiles/workloads_catalog_test.dir/workloads/catalog_test.cc.o"
  "CMakeFiles/workloads_catalog_test.dir/workloads/catalog_test.cc.o.d"
  "workloads_catalog_test"
  "workloads_catalog_test.pdb"
  "workloads_catalog_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workloads_catalog_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
