# Empty compiler generated dependencies file for sandbox_runc_test.
# This may be replaced when dependencies are built.
