file(REMOVE_RECURSE
  "CMakeFiles/sandbox_runc_test.dir/sandbox/runc_test.cc.o"
  "CMakeFiles/sandbox_runc_test.dir/sandbox/runc_test.cc.o.d"
  "sandbox_runc_test"
  "sandbox_runc_test.pdb"
  "sandbox_runc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sandbox_runc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
