file(REMOVE_RECURSE
  "CMakeFiles/xpu_capability_test.dir/xpu/capability_test.cc.o"
  "CMakeFiles/xpu_capability_test.dir/xpu/capability_test.cc.o.d"
  "xpu_capability_test"
  "xpu_capability_test.pdb"
  "xpu_capability_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xpu_capability_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
