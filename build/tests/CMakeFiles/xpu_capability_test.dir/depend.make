# Empty dependencies file for xpu_capability_test.
# This may be replaced when dependencies are built.
