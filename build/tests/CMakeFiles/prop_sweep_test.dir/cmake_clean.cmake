file(REMOVE_RECURSE
  "CMakeFiles/prop_sweep_test.dir/properties/sweep_test.cc.o"
  "CMakeFiles/prop_sweep_test.dir/properties/sweep_test.cc.o.d"
  "prop_sweep_test"
  "prop_sweep_test.pdb"
  "prop_sweep_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prop_sweep_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
