# Empty dependencies file for prop_sweep_test.
# This may be replaced when dependencies are built.
