# Empty dependencies file for hw_gpu_test.
# This may be replaced when dependencies are built.
