file(REMOVE_RECURSE
  "CMakeFiles/hw_gpu_test.dir/hw/gpu_test.cc.o"
  "CMakeFiles/hw_gpu_test.dir/hw/gpu_test.cc.o.d"
  "hw_gpu_test"
  "hw_gpu_test.pdb"
  "hw_gpu_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hw_gpu_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
