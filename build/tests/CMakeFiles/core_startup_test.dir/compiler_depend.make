# Empty compiler generated dependencies file for core_startup_test.
# This may be replaced when dependencies are built.
