file(REMOVE_RECURSE
  "CMakeFiles/core_startup_test.dir/core/startup_test.cc.o"
  "CMakeFiles/core_startup_test.dir/core/startup_test.cc.o.d"
  "core_startup_test"
  "core_startup_test.pdb"
  "core_startup_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_startup_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
