# Empty dependencies file for core_molecule_test.
# This may be replaced when dependencies are built.
