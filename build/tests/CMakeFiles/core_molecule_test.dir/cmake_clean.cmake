file(REMOVE_RECURSE
  "CMakeFiles/core_molecule_test.dir/core/molecule_test.cc.o"
  "CMakeFiles/core_molecule_test.dir/core/molecule_test.cc.o.d"
  "core_molecule_test"
  "core_molecule_test.pdb"
  "core_molecule_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_molecule_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
