file(REMOVE_RECURSE
  "CMakeFiles/xpu_transport_test.dir/xpu/transport_test.cc.o"
  "CMakeFiles/xpu_transport_test.dir/xpu/transport_test.cc.o.d"
  "xpu_transport_test"
  "xpu_transport_test.pdb"
  "xpu_transport_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xpu_transport_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
