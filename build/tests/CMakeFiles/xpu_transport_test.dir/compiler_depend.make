# Empty compiler generated dependencies file for xpu_transport_test.
# This may be replaced when dependencies are built.
