file(REMOVE_RECURSE
  "CMakeFiles/prop_invariants_test.dir/properties/invariants_test.cc.o"
  "CMakeFiles/prop_invariants_test.dir/properties/invariants_test.cc.o.d"
  "prop_invariants_test"
  "prop_invariants_test.pdb"
  "prop_invariants_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prop_invariants_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
