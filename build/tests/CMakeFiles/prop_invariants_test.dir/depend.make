# Empty dependencies file for prop_invariants_test.
# This may be replaced when dependencies are built.
