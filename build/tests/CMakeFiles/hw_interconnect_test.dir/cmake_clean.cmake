file(REMOVE_RECURSE
  "CMakeFiles/hw_interconnect_test.dir/hw/interconnect_test.cc.o"
  "CMakeFiles/hw_interconnect_test.dir/hw/interconnect_test.cc.o.d"
  "hw_interconnect_test"
  "hw_interconnect_test.pdb"
  "hw_interconnect_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hw_interconnect_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
