# Empty compiler generated dependencies file for hw_fpga_test.
# This may be replaced when dependencies are built.
