file(REMOVE_RECURSE
  "CMakeFiles/hw_fpga_test.dir/hw/fpga_test.cc.o"
  "CMakeFiles/hw_fpga_test.dir/hw/fpga_test.cc.o.d"
  "hw_fpga_test"
  "hw_fpga_test.pdb"
  "hw_fpga_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hw_fpga_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
