file(REMOVE_RECURSE
  "CMakeFiles/sandbox_runf_test.dir/sandbox/runf_test.cc.o"
  "CMakeFiles/sandbox_runf_test.dir/sandbox/runf_test.cc.o.d"
  "sandbox_runf_test"
  "sandbox_runf_test.pdb"
  "sandbox_runf_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sandbox_runf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
