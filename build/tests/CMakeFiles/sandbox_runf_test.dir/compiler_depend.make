# Empty compiler generated dependencies file for sandbox_runf_test.
# This may be replaced when dependencies are built.
