file(REMOVE_RECURSE
  "CMakeFiles/xpu_shim_test.dir/xpu/shim_test.cc.o"
  "CMakeFiles/xpu_shim_test.dir/xpu/shim_test.cc.o.d"
  "xpu_shim_test"
  "xpu_shim_test.pdb"
  "xpu_shim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xpu_shim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
