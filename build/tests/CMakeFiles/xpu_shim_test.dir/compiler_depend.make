# Empty compiler generated dependencies file for xpu_shim_test.
# This may be replaced when dependencies are built.
