file(REMOVE_RECURSE
  "CMakeFiles/core_dag_test.dir/core/dag_test.cc.o"
  "CMakeFiles/core_dag_test.dir/core/dag_test.cc.o.d"
  "core_dag_test"
  "core_dag_test.pdb"
  "core_dag_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_dag_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
