# Empty dependencies file for core_dag_test.
# This may be replaced when dependencies are built.
