# Empty compiler generated dependencies file for gpu_inference.
# This may be replaced when dependencies are built.
