file(REMOVE_RECURSE
  "CMakeFiles/gpu_inference.dir/gpu_inference.cpp.o"
  "CMakeFiles/gpu_inference.dir/gpu_inference.cpp.o.d"
  "gpu_inference"
  "gpu_inference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpu_inference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
