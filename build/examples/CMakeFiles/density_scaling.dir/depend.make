# Empty dependencies file for density_scaling.
# This may be replaced when dependencies are built.
