file(REMOVE_RECURSE
  "CMakeFiles/density_scaling.dir/density_scaling.cpp.o"
  "CMakeFiles/density_scaling.dir/density_scaling.cpp.o.d"
  "density_scaling"
  "density_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/density_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
