# Empty compiler generated dependencies file for hetero_pipeline.
# This may be replaced when dependencies are built.
