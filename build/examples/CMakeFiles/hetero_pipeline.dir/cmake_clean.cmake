file(REMOVE_RECURSE
  "CMakeFiles/hetero_pipeline.dir/hetero_pipeline.cpp.o"
  "CMakeFiles/hetero_pipeline.dir/hetero_pipeline.cpp.o.d"
  "hetero_pipeline"
  "hetero_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hetero_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
