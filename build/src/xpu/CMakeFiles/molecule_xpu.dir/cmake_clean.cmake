file(REMOVE_RECURSE
  "CMakeFiles/molecule_xpu.dir/capability.cc.o"
  "CMakeFiles/molecule_xpu.dir/capability.cc.o.d"
  "CMakeFiles/molecule_xpu.dir/client.cc.o"
  "CMakeFiles/molecule_xpu.dir/client.cc.o.d"
  "CMakeFiles/molecule_xpu.dir/shim.cc.o"
  "CMakeFiles/molecule_xpu.dir/shim.cc.o.d"
  "CMakeFiles/molecule_xpu.dir/transport.cc.o"
  "CMakeFiles/molecule_xpu.dir/transport.cc.o.d"
  "libmolecule_xpu.a"
  "libmolecule_xpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/molecule_xpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
