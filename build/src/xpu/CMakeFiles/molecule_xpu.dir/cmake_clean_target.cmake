file(REMOVE_RECURSE
  "libmolecule_xpu.a"
)
