
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/xpu/capability.cc" "src/xpu/CMakeFiles/molecule_xpu.dir/capability.cc.o" "gcc" "src/xpu/CMakeFiles/molecule_xpu.dir/capability.cc.o.d"
  "/root/repo/src/xpu/client.cc" "src/xpu/CMakeFiles/molecule_xpu.dir/client.cc.o" "gcc" "src/xpu/CMakeFiles/molecule_xpu.dir/client.cc.o.d"
  "/root/repo/src/xpu/shim.cc" "src/xpu/CMakeFiles/molecule_xpu.dir/shim.cc.o" "gcc" "src/xpu/CMakeFiles/molecule_xpu.dir/shim.cc.o.d"
  "/root/repo/src/xpu/transport.cc" "src/xpu/CMakeFiles/molecule_xpu.dir/transport.cc.o" "gcc" "src/xpu/CMakeFiles/molecule_xpu.dir/transport.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/os/CMakeFiles/molecule_os.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/molecule_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/molecule_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
