# Empty dependencies file for molecule_xpu.
# This may be replaced when dependencies are built.
