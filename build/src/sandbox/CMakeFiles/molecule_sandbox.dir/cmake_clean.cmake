file(REMOVE_RECURSE
  "CMakeFiles/molecule_sandbox.dir/oci.cc.o"
  "CMakeFiles/molecule_sandbox.dir/oci.cc.o.d"
  "CMakeFiles/molecule_sandbox.dir/runc.cc.o"
  "CMakeFiles/molecule_sandbox.dir/runc.cc.o.d"
  "CMakeFiles/molecule_sandbox.dir/runf.cc.o"
  "CMakeFiles/molecule_sandbox.dir/runf.cc.o.d"
  "CMakeFiles/molecule_sandbox.dir/rung.cc.o"
  "CMakeFiles/molecule_sandbox.dir/rung.cc.o.d"
  "libmolecule_sandbox.a"
  "libmolecule_sandbox.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/molecule_sandbox.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
