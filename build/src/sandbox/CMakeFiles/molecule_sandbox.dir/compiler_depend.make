# Empty compiler generated dependencies file for molecule_sandbox.
# This may be replaced when dependencies are built.
