
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sandbox/oci.cc" "src/sandbox/CMakeFiles/molecule_sandbox.dir/oci.cc.o" "gcc" "src/sandbox/CMakeFiles/molecule_sandbox.dir/oci.cc.o.d"
  "/root/repo/src/sandbox/runc.cc" "src/sandbox/CMakeFiles/molecule_sandbox.dir/runc.cc.o" "gcc" "src/sandbox/CMakeFiles/molecule_sandbox.dir/runc.cc.o.d"
  "/root/repo/src/sandbox/runf.cc" "src/sandbox/CMakeFiles/molecule_sandbox.dir/runf.cc.o" "gcc" "src/sandbox/CMakeFiles/molecule_sandbox.dir/runf.cc.o.d"
  "/root/repo/src/sandbox/rung.cc" "src/sandbox/CMakeFiles/molecule_sandbox.dir/rung.cc.o" "gcc" "src/sandbox/CMakeFiles/molecule_sandbox.dir/rung.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/os/CMakeFiles/molecule_os.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/molecule_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/molecule_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
