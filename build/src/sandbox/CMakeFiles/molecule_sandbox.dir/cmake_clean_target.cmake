file(REMOVE_RECURSE
  "libmolecule_sandbox.a"
)
