file(REMOVE_RECURSE
  "CMakeFiles/molecule_os.dir/container.cc.o"
  "CMakeFiles/molecule_os.dir/container.cc.o.d"
  "CMakeFiles/molecule_os.dir/fifo.cc.o"
  "CMakeFiles/molecule_os.dir/fifo.cc.o.d"
  "CMakeFiles/molecule_os.dir/kernel.cc.o"
  "CMakeFiles/molecule_os.dir/kernel.cc.o.d"
  "CMakeFiles/molecule_os.dir/memory.cc.o"
  "CMakeFiles/molecule_os.dir/memory.cc.o.d"
  "libmolecule_os.a"
  "libmolecule_os.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/molecule_os.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
