file(REMOVE_RECURSE
  "libmolecule_os.a"
)
