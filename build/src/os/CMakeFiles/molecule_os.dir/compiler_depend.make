# Empty compiler generated dependencies file for molecule_os.
# This may be replaced when dependencies are built.
