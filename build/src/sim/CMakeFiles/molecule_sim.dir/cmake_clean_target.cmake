file(REMOVE_RECURSE
  "libmolecule_sim.a"
)
