# Empty dependencies file for molecule_sim.
# This may be replaced when dependencies are built.
