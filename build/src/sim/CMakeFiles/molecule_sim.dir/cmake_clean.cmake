file(REMOVE_RECURSE
  "CMakeFiles/molecule_sim.dir/event_queue.cc.o"
  "CMakeFiles/molecule_sim.dir/event_queue.cc.o.d"
  "CMakeFiles/molecule_sim.dir/logging.cc.o"
  "CMakeFiles/molecule_sim.dir/logging.cc.o.d"
  "CMakeFiles/molecule_sim.dir/random.cc.o"
  "CMakeFiles/molecule_sim.dir/random.cc.o.d"
  "CMakeFiles/molecule_sim.dir/simulation.cc.o"
  "CMakeFiles/molecule_sim.dir/simulation.cc.o.d"
  "CMakeFiles/molecule_sim.dir/stats.cc.o"
  "CMakeFiles/molecule_sim.dir/stats.cc.o.d"
  "CMakeFiles/molecule_sim.dir/table.cc.o"
  "CMakeFiles/molecule_sim.dir/table.cc.o.d"
  "libmolecule_sim.a"
  "libmolecule_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/molecule_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
