file(REMOVE_RECURSE
  "CMakeFiles/molecule_core.dir/dag.cc.o"
  "CMakeFiles/molecule_core.dir/dag.cc.o.d"
  "CMakeFiles/molecule_core.dir/deployment.cc.o"
  "CMakeFiles/molecule_core.dir/deployment.cc.o.d"
  "CMakeFiles/molecule_core.dir/function.cc.o"
  "CMakeFiles/molecule_core.dir/function.cc.o.d"
  "CMakeFiles/molecule_core.dir/gateway.cc.o"
  "CMakeFiles/molecule_core.dir/gateway.cc.o.d"
  "CMakeFiles/molecule_core.dir/molecule.cc.o"
  "CMakeFiles/molecule_core.dir/molecule.cc.o.d"
  "CMakeFiles/molecule_core.dir/scheduler.cc.o"
  "CMakeFiles/molecule_core.dir/scheduler.cc.o.d"
  "CMakeFiles/molecule_core.dir/startup.cc.o"
  "CMakeFiles/molecule_core.dir/startup.cc.o.d"
  "libmolecule_core.a"
  "libmolecule_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/molecule_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
