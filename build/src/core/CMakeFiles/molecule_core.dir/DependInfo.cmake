
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/dag.cc" "src/core/CMakeFiles/molecule_core.dir/dag.cc.o" "gcc" "src/core/CMakeFiles/molecule_core.dir/dag.cc.o.d"
  "/root/repo/src/core/deployment.cc" "src/core/CMakeFiles/molecule_core.dir/deployment.cc.o" "gcc" "src/core/CMakeFiles/molecule_core.dir/deployment.cc.o.d"
  "/root/repo/src/core/function.cc" "src/core/CMakeFiles/molecule_core.dir/function.cc.o" "gcc" "src/core/CMakeFiles/molecule_core.dir/function.cc.o.d"
  "/root/repo/src/core/gateway.cc" "src/core/CMakeFiles/molecule_core.dir/gateway.cc.o" "gcc" "src/core/CMakeFiles/molecule_core.dir/gateway.cc.o.d"
  "/root/repo/src/core/molecule.cc" "src/core/CMakeFiles/molecule_core.dir/molecule.cc.o" "gcc" "src/core/CMakeFiles/molecule_core.dir/molecule.cc.o.d"
  "/root/repo/src/core/scheduler.cc" "src/core/CMakeFiles/molecule_core.dir/scheduler.cc.o" "gcc" "src/core/CMakeFiles/molecule_core.dir/scheduler.cc.o.d"
  "/root/repo/src/core/startup.cc" "src/core/CMakeFiles/molecule_core.dir/startup.cc.o" "gcc" "src/core/CMakeFiles/molecule_core.dir/startup.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sandbox/CMakeFiles/molecule_sandbox.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/molecule_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/xpu/CMakeFiles/molecule_xpu.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/molecule_os.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/molecule_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/molecule_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
