# Empty compiler generated dependencies file for molecule_core.
# This may be replaced when dependencies are built.
