file(REMOVE_RECURSE
  "libmolecule_core.a"
)
