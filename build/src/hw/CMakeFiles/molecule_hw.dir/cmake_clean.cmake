file(REMOVE_RECURSE
  "CMakeFiles/molecule_hw.dir/computer.cc.o"
  "CMakeFiles/molecule_hw.dir/computer.cc.o.d"
  "CMakeFiles/molecule_hw.dir/fpga.cc.o"
  "CMakeFiles/molecule_hw.dir/fpga.cc.o.d"
  "CMakeFiles/molecule_hw.dir/gpu.cc.o"
  "CMakeFiles/molecule_hw.dir/gpu.cc.o.d"
  "CMakeFiles/molecule_hw.dir/interconnect.cc.o"
  "CMakeFiles/molecule_hw.dir/interconnect.cc.o.d"
  "CMakeFiles/molecule_hw.dir/pu.cc.o"
  "CMakeFiles/molecule_hw.dir/pu.cc.o.d"
  "libmolecule_hw.a"
  "libmolecule_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/molecule_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
