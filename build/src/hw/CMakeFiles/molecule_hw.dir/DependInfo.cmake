
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hw/computer.cc" "src/hw/CMakeFiles/molecule_hw.dir/computer.cc.o" "gcc" "src/hw/CMakeFiles/molecule_hw.dir/computer.cc.o.d"
  "/root/repo/src/hw/fpga.cc" "src/hw/CMakeFiles/molecule_hw.dir/fpga.cc.o" "gcc" "src/hw/CMakeFiles/molecule_hw.dir/fpga.cc.o.d"
  "/root/repo/src/hw/gpu.cc" "src/hw/CMakeFiles/molecule_hw.dir/gpu.cc.o" "gcc" "src/hw/CMakeFiles/molecule_hw.dir/gpu.cc.o.d"
  "/root/repo/src/hw/interconnect.cc" "src/hw/CMakeFiles/molecule_hw.dir/interconnect.cc.o" "gcc" "src/hw/CMakeFiles/molecule_hw.dir/interconnect.cc.o.d"
  "/root/repo/src/hw/pu.cc" "src/hw/CMakeFiles/molecule_hw.dir/pu.cc.o" "gcc" "src/hw/CMakeFiles/molecule_hw.dir/pu.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/molecule_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
