# Empty dependencies file for molecule_hw.
# This may be replaced when dependencies are built.
