file(REMOVE_RECURSE
  "libmolecule_hw.a"
)
