file(REMOVE_RECURSE
  "libmolecule_workloads.a"
)
