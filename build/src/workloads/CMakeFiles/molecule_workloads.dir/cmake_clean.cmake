file(REMOVE_RECURSE
  "CMakeFiles/molecule_workloads.dir/catalog.cc.o"
  "CMakeFiles/molecule_workloads.dir/catalog.cc.o.d"
  "CMakeFiles/molecule_workloads.dir/loadgen.cc.o"
  "CMakeFiles/molecule_workloads.dir/loadgen.cc.o.d"
  "libmolecule_workloads.a"
  "libmolecule_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/molecule_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
