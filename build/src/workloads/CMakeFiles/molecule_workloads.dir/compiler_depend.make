# Empty compiler generated dependencies file for molecule_workloads.
# This may be replaced when dependencies are built.
