/**
 * @file
 * Perf-smoke gate: compare a fresh BENCH_simcore.json against the
 * committed reference and fail on regression.
 *
 * Usage:
 *   perf_check <reference.json> <fresh.json>
 *              [--tolerance 0.20] [--warn-only]
 *
 * Every benchmark present in BOTH files is compared on its headline
 * "value" (items/sec, best-of-repetitions). A benchmark regresses
 * when fresh < reference * (1 - tolerance); the default tolerance of
 * 20% absorbs shared-runner noise while still catching real cliffs.
 * Benchmarks present only on one side are reported but never fail
 * the gate (new benches have no reference yet).
 *
 * --warn-only (or MOLECULE_PERF_WARN_ONLY=1 in the environment)
 * downgrades regressions to warnings — the escape hatch for known-
 * noisy CI pools — while keeping the full comparison table in the
 * log.
 *
 * The parser is deliberately minimal: it understands exactly the
 * snapshot shape PerfSnapshot::writeJson emits (a flat "results"
 * object of name -> { "value": N, ... }), not general JSON.
 */

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

namespace {

/** name -> headline value, in file order (std::map: sorted report). */
std::map<std::string, double>
parseSnapshot(const std::string &path, bool *ok)
{
    std::map<std::string, double> out;
    *ok = false;
    std::ifstream in(path);
    if (!in)
        return out;
    std::stringstream ss;
    ss << in.rdbuf();
    const std::string text = ss.str();

    // Scan for  "name": {  ...  "value": <num>  pairs.
    std::string current;
    for (std::size_t i = 0; i < text.size(); ++i) {
        if (text[i] != '"')
            continue;
        const std::size_t close = text.find('"', i + 1);
        if (close == std::string::npos)
            break;
        const std::string key = text.substr(i + 1, close - i - 1);
        std::size_t j = close + 1;
        while (j < text.size() && std::isspace(text[j]))
            ++j;
        if (j >= text.size() || text[j] != ':') {
            i = close;
            continue;
        }
        ++j;
        while (j < text.size() && std::isspace(text[j]))
            ++j;
        if (j < text.size() && text[j] == '{') {
            // Entering an object: benchmark names live under
            // "results"; remember the key as the current benchmark.
            if (key != "results" && key != "metric")
                current = key;
        } else if (key == "value" && !current.empty()) {
            out[current] = std::strtod(text.c_str() + j, nullptr);
        }
        i = close;
    }
    *ok = true;
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string refPath, freshPath;
    double tolerance = 0.20;
    bool warnOnly = false;

    const char *env = std::getenv("MOLECULE_PERF_WARN_ONLY");
    if (env != nullptr && std::strcmp(env, "0") != 0 &&
        std::strcmp(env, "") != 0)
        warnOnly = true;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--tolerance" && i + 1 < argc) {
            tolerance = std::strtod(argv[++i], nullptr);
        } else if (arg == "--warn-only") {
            warnOnly = true;
        } else if (refPath.empty()) {
            refPath = arg;
        } else if (freshPath.empty()) {
            freshPath = arg;
        } else {
            std::fprintf(stderr, "unexpected argument: %s\n",
                         arg.c_str());
            return 2;
        }
    }
    if (refPath.empty() || freshPath.empty()) {
        std::fprintf(stderr,
                     "usage: perf_check <reference.json> <fresh.json>"
                     " [--tolerance 0.20] [--warn-only]\n");
        return 2;
    }

    bool refOk = false, freshOk = false;
    const auto ref = parseSnapshot(refPath, &refOk);
    const auto fresh = parseSnapshot(freshPath, &freshOk);
    if (!refOk || ref.empty()) {
        std::fprintf(stderr, "cannot read reference snapshot %s\n",
                     refPath.c_str());
        return 2;
    }
    if (!freshOk || fresh.empty()) {
        std::fprintf(stderr, "cannot read fresh snapshot %s\n",
                     freshPath.c_str());
        return 2;
    }

    std::printf("perf_check: tolerance %.0f%%%s\n", tolerance * 100,
                warnOnly ? " (warn-only)" : "");
    std::printf("%-34s %14s %14s %9s\n", "benchmark", "reference",
                "fresh", "ratio");

    int regressions = 0;
    for (const auto &[name, refVal] : ref) {
        const auto it = fresh.find(name);
        if (it == fresh.end()) {
            std::printf("%-34s %14.3e %14s %9s\n", name.c_str(),
                        refVal, "-", "gone");
            continue;
        }
        const double ratio = refVal > 0 ? it->second / refVal : 1.0;
        const bool bad = ratio < 1.0 - tolerance;
        std::printf("%-34s %14.3e %14.3e %8.2fx%s\n", name.c_str(),
                    refVal, it->second, ratio,
                    bad ? "  REGRESSION" : "");
        if (bad)
            ++regressions;
    }
    for (const auto &[name, val] : fresh)
        if (ref.find(name) == ref.end())
            std::printf("%-34s %14s %14.3e %9s\n", name.c_str(), "-",
                        val, "new");

    if (regressions != 0) {
        std::fprintf(stderr, "\n%d benchmark%s regressed beyond %.0f%%\n",
                     regressions, regressions == 1 ? "" : "s",
                     tolerance * 100);
        return warnOnly ? 0 : 1;
    }
    std::printf("\nno regressions beyond %.0f%%\n", tolerance * 100);
    return 0;
}
