/**
 * @file
 * slo_report: drive the telemetry plane to alert and prove it
 * deterministic.
 *
 * One scenario per seed: a deliberately under-provisioned 2-node
 * fleet behind an un-policed gateway, fed an open-loop Poisson stream
 * well above service capacity. The backlog grows, per-tenant p99
 * blows through the latency objective, and the SloMonitor's
 * multi-window burn-rate alerts fire — every run, every seed, at
 * sim-time instants that must reproduce exactly.
 *
 * --check enforces (per seed):
 *   - the (stats, window, alert) digest triple is bit-identical
 *     serial vs re-run vs on a SweepRunner worker;
 *   - window sums conserve: per-tenant completed/errors summed over
 *     closed windows equal the ClusterStats run totals, and the
 *     watched cluster.* counters do too;
 *   - the over-saturated stream actually fires latency alerts;
 *   - attaching the TimeSeries does not move the ClusterStats digest
 *     (observation must not perturb).
 *
 * --timeline PATH and --openmetrics PATH write the exporter artifacts
 * (JSON-lines windows, OpenMetrics text) for CI upload. --chaos
 * --dump PATH runs a fault-injection variant (PU crash mid-run) and
 * writes the flight recorder's post-mortem bundle.
 *
 * With MOLECULE_TELEMETRY=0 the tool compiles to a stub that reports
 * the plane is disabled and exits 0.
 */

#include <cstdio>

#include "obs/timeseries.hh"

#if MOLECULE_TELEMETRY

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "cluster/gateway.hh"
#include "fault/injector.hh"
#include "load/generator.hh"
#include "obs/flight_recorder.hh"
#include "obs/metrics_export.hh"
#include "obs/slo.hh"
#include "sim/simulation.hh"
#include "sim/sweep.hh"
#include "sim/table.hh"

namespace {

using namespace molecule;
using sim::SimTime;

/** Offered load; well above what the 2-node fleet can serve. */
constexpr double kOfferedPerSecond = 400.0;

constexpr std::uint64_t kSeeds[] = {42, 7, 1};

/** Latency objective: 99% of requests under 20 ms. */
constexpr double kLatencyThresholdUs = 20'000.0;

load::TraceSpec
makeSpec(std::uint64_t seed)
{
    load::TraceSpec spec;
    spec.seed = seed;
    spec.ratePerSecond = kOfferedPerSecond;
    spec.arrival = load::ArrivalKind::Poisson;
    spec.duration = SimTime::seconds(40);
    spec.functions = {"helloworld", "pyaes", "dd", "gzip-compression"};
    spec.tenants = {
        {"alpha", 3.0, 1.1, 1},
        {"beta", 1.0, 0.8, 2},
    };
    return spec;
}

obs::SloSpec
makeSloSpec(std::uint32_t tenants)
{
    obs::SloSpec slo;
    slo.tenants = tenants;
    obs::SloObjective latency;
    latency.name = "latency-p99";
    latency.kind = obs::SloObjective::Kind::Latency;
    latency.thresholdUs = kLatencyThresholdUs;
    latency.targetFraction = 0.99;
    latency.burnThreshold = 4.0;
    latency.shortWindows = 3;
    latency.longWindows = 12;
    obs::SloObjective errors;
    errors.name = "error-rate";
    errors.kind = obs::SloObjective::Kind::ErrorRate;
    errors.targetFraction = 0.999;
    errors.burnThreshold = 4.0;
    errors.shortWindows = 3;
    errors.longWindows = 12;
    slo.objectives = {latency, errors};
    return slo;
}

struct Conservation
{
    std::string what;
    std::int64_t windowSum = 0;
    std::int64_t runTotal = 0;

    bool ok() const { return windowSum == runTotal; }
};

struct Outcome
{
    cluster::ClusterSummary summary;
    std::uint64_t statsDigest = 0;
    std::uint64_t windowDigest = 0;
    std::uint64_t alertDigest = 0;
    std::uint64_t windowsClosed = 0;
    std::size_t alertCount = 0;
    std::size_t latencyAlertsFired = 0;
    std::vector<obs::AlertEvent> alerts;
    std::vector<Conservation> conservation;
    std::uint64_t flightDumps = 0;
    std::uint64_t flightTriggers = 0;
    /** Per-window tenant rows for the timeline table. */
    struct TimelineRow
    {
        std::uint64_t window = 0;
        std::vector<std::int64_t> completed;
        std::vector<double> p99Us;
        std::vector<std::int64_t> above;
        int alertsAt = 0;
    };
    std::vector<TimelineRow> timeline;
    std::string timelineJsonl;
    std::string openMetrics;
};

struct RunConfig
{
    bool chaos = false;
    bool exports = false;
    std::string dumpPath;
};

Outcome
runScenario(std::uint64_t seed, const RunConfig &cfg = {})
{
    sim::Simulation sim(seed);
#if MOLECULE_TRACING
    obs::Tracer tracer(sim, seed);
#endif
    fault::FaultState faults;
    cluster::FleetSpec fleetSpec;
    fleetSpec.nodes = 2;
    fleetSpec.dpusPerNode = 1;
    if (cfg.chaos) {
        // One shared fault plane: a PU index crashes on every node
        // (documented fleet-chaos semantics; the point here is the
        // recorder, not per-node blast radius).
        fleetSpec.runtime.faults = &faults;
#if MOLECULE_TRACING
        fleetSpec.runtime.tracer = &tracer;
#endif
    }
    cluster::Fleet fleet(sim, fleetSpec);

    load::TraceSpec spec = makeSpec(seed);
    for (const auto &fn : spec.functions)
        fleet.registerCpuFunction(fn,
                                  {hw::PuType::HostCpu, hw::PuType::Dpu});
    fleet.start();

    obs::Registry registry;
    cluster::ClusterStats stats(registry);

    obs::TimeSeriesOptions tsOpts;
    tsOpts.window = SimTime::seconds(1);
    obs::TimeSeries ts(sim, tsOpts);
    stats.attachTelemetry(&ts);

    obs::SloMonitor monitor(ts, makeSloSpec(spec.tenantCount()));

    obs::FlightRecorderOptions frOpts;
    frOpts.keepWindows = 16;
    frOpts.spanTail = 128;
    obs::FlightRecorder recorder(ts, frOpts);
    monitor.addSink(&recorder);
#if MOLECULE_TRACING
    recorder.attachTracer(tracer);
#endif

    cluster::LeastOutstandingPolicy policy;
    cluster::AdmissionOptions admission;
    admission.tokensPerSecond = 0.0; // no policing: let the queue grow
    admission.queueCapacity = 8192;
    admission.maxOutstandingPerNode = 48;
    cluster::GatewayConfig gwCfg =
        cluster::GatewayConfig::forFunctions(spec.functions, stats);
    gwCfg.admission = admission;
    gwCfg.dispatch = &policy;
    gwCfg.recorder = &recorder;
    cluster::ClusterGateway gateway(fleet, gwCfg);

    fault::Injector injector(sim, faults);
    injector.setRecorder(&recorder);
    if (cfg.chaos) {
        fault::InjectionPlan plan;
        plan.crashPu(1, SimTime::seconds(10), SimTime::seconds(5));
        injector.arm(plan);
    }

    load::OpenLoopGenerator gen(spec);
    const SimTime t0 = sim.now();
    sim.spawn(load::drive(sim, gen, gateway));
    sim.run();
    ts.flush();

    Outcome out;
    out.summary = stats.summarize(sim.now() - t0, fleet.coreTable());
    out.statsDigest = stats.digest();
    out.windowDigest = ts.digest();
    out.alertDigest = monitor.alertDigest();
    out.windowsClosed = ts.windowsClosed();
    out.alertCount = monitor.alertCount();
    out.alerts = monitor.alerts();
    out.flightDumps = recorder.dumpCount();
    out.flightTriggers = recorder.triggerCount();
    for (const obs::AlertEvent &a : out.alerts)
        if (a.fired && a.objective == 0)
            ++out.latencyAlertsFired;

    // Conservation: window deltas summed over the whole run must
    // reproduce the run totals exactly — both the per-tenant series
    // fed directly and the watched cluster.* registry counters.
    const std::uint32_t tenants = spec.tenantCount();
    std::vector<std::uint32_t> completedIds;
    std::vector<std::uint32_t> errorIds;
    for (std::uint32_t t = 0; t < tenants; ++t) {
        completedIds.push_back(
            ts.counterId("tenant.completed", int(t)));
        errorIds.push_back(ts.counterId("tenant.errors", int(t)));
    }
    const std::uint32_t clusterCompleted =
        ts.counterId("cluster.completed");
    const std::uint32_t clusterArrivals =
        ts.counterId("cluster.arrivals");

    std::vector<std::int64_t> sumCompleted(tenants, 0);
    std::vector<std::int64_t> sumErrors(tenants, 0);
    std::int64_t sumClusterCompleted = 0;
    std::int64_t sumClusterArrivals = 0;
    for (const obs::WindowRecord &w : ts.windows()) {
        Outcome::TimelineRow row;
        row.window = w.index;
        for (std::uint32_t t = 0; t < tenants; ++t) {
            const obs::WindowPoint *c = w.find(completedIds[t]);
            const obs::WindowPoint *e = w.find(errorIds[t]);
            if (c != nullptr)
                sumCompleted[t] += c->count;
            if (e != nullptr)
                sumErrors[t] += e->count;
            const obs::WindowPoint *lat = w.find(
                ts.histogramId("tenant.e2e_us", int(t)));
            row.completed.push_back(c != nullptr ? c->count : 0);
            row.p99Us.push_back(lat != nullptr ? lat->p99 : 0.0);
            row.above.push_back(lat != nullptr ? lat->above : 0);
        }
        const obs::WindowPoint *cc = w.find(clusterCompleted);
        const obs::WindowPoint *ca = w.find(clusterArrivals);
        if (cc != nullptr)
            sumClusterCompleted += cc->count;
        if (ca != nullptr)
            sumClusterArrivals += ca->count;
        for (const obs::AlertEvent &a : out.alerts)
            if (a.window == w.index)
                ++row.alertsAt;
        out.timeline.push_back(std::move(row));
    }

    for (const cluster::TenantSummary &trow : out.summary.tenants) {
        const auto t = std::uint32_t(trow.tenant);
        out.conservation.push_back({"tenant.completed[" +
                                        std::to_string(trow.tenant) +
                                        "]",
                                    sumCompleted[t], trow.completed});
        out.conservation.push_back({"tenant.errors[" +
                                        std::to_string(trow.tenant) +
                                        "]",
                                    sumErrors[t], trow.errors});
    }
    out.conservation.push_back({"cluster.completed",
                                sumClusterCompleted,
                                out.summary.completed});
    out.conservation.push_back({"cluster.arrivals", sumClusterArrivals,
                                out.summary.arrivals});

    if (cfg.exports) {
        out.timelineJsonl = obs::jsonLinesTimeline(ts);
        out.openMetrics = obs::openMetricsText(ts);
    }
    if (!cfg.dumpPath.empty() && recorder.dumpCount() > 0)
        recorder.writeLast(cfg.dumpPath);
    return out;
}

/** The stats digest must not move when a TimeSeries is attached. */
std::uint64_t
runWithoutTelemetry(std::uint64_t seed)
{
    sim::Simulation sim(seed);
    cluster::FleetSpec fleetSpec;
    fleetSpec.nodes = 2;
    fleetSpec.dpusPerNode = 1;
    cluster::Fleet fleet(sim, fleetSpec);
    load::TraceSpec spec = makeSpec(seed);
    for (const auto &fn : spec.functions)
        fleet.registerCpuFunction(fn,
                                  {hw::PuType::HostCpu, hw::PuType::Dpu});
    fleet.start();
    obs::Registry registry;
    cluster::ClusterStats stats(registry);
    cluster::LeastOutstandingPolicy policy;
    cluster::AdmissionOptions admission;
    admission.tokensPerSecond = 0.0;
    admission.queueCapacity = 8192;
    admission.maxOutstandingPerNode = 48;
    cluster::GatewayConfig gwCfg =
        cluster::GatewayConfig::forFunctions(spec.functions, stats);
    gwCfg.admission = admission;
    gwCfg.dispatch = &policy;
    cluster::ClusterGateway gateway(fleet, gwCfg);
    load::OpenLoopGenerator gen(spec);
    sim.spawn(load::drive(sim, gen, gateway));
    sim.run();
    return stats.digest();
}

std::string
hex(std::uint64_t v)
{
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%016llx", (unsigned long long)v);
    return buf;
}

std::string
fmt(double v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.1f", v);
    return buf;
}

int
report(bool check, const RunConfig &base,
       const std::vector<std::uint64_t> &seeds)
{
    bool pass = true;
    auto fail = [&pass](std::uint64_t seed, const std::string &what) {
        std::fprintf(stderr, "FAIL: seed %llu: %s\n",
                     (unsigned long long)seed, what.c_str());
        pass = false;
    };

    // Digest triples: serial, serial re-run, SweepRunner worker.
    struct Triple
    {
        std::uint64_t stats, windows, alerts;

        bool
        operator==(const Triple &o) const
        {
            return stats == o.stats && windows == o.windows &&
                   alerts == o.alerts;
        }
    };
    // Replays must share the scenario shape (chaos on/off changes the
    // event stream by design) but never the side effects.
    RunConfig replay;
    replay.chaos = base.chaos;
    const auto triple = [&replay](std::uint64_t seed) {
        const Outcome o = runScenario(seed, replay);
        return Triple{o.statsDigest, o.windowDigest, o.alertDigest};
    };

    sim::Table digests("Telemetry digests: serial vs re-run vs "
                       "SweepRunner");
    digests.header({"seed", "stats", "windows", "alerts", "match"});

    sim::SweepRunner pool;
    const auto threaded = pool.map<Triple>(
        seeds.size(),
        [&](std::size_t i) { return triple(seeds[i]); });

    std::vector<Outcome> outcomes;
    for (std::size_t i = 0; i < seeds.size(); ++i) {
        const std::uint64_t seed = seeds[i];
        Outcome first = runScenario(seed, replay);
        const Triple serial{first.statsDigest, first.windowDigest,
                            first.alertDigest};
        const Triple rerun = triple(seed);
        const bool match =
            serial == rerun && serial == threaded[i];
        digests.row({std::to_string(seed), hex(serial.stats),
                     hex(serial.windows), hex(serial.alerts),
                     match ? "yes" : "NO"});
        if (!match)
            fail(seed, "digest triple serial != re-run/SweepRunner");
        outcomes.push_back(std::move(first));
    }
    digests.print();
    std::printf("\n");

    for (std::size_t i = 0; i < seeds.size(); ++i) {
        const std::uint64_t seed = seeds[i];
        const Outcome &o = outcomes[i];

        sim::Table timeline(
            "Per-tenant timeline, seed " + std::to_string(seed) +
            " (1 s windows; alpha=tenant 0, beta=tenant 1)");
        timeline.header({"win", "t0.done", "t0.p99us", "t0.over",
                         "t1.done", "t1.p99us", "t1.over", "alerts"});
        for (const auto &row : o.timeline) {
            if (row.completed.size() < 2)
                continue;
            timeline.row({std::to_string(row.window),
                          std::to_string(row.completed[0]),
                          fmt(row.p99Us[0]),
                          std::to_string(row.above[0]),
                          std::to_string(row.completed[1]),
                          fmt(row.p99Us[1]),
                          std::to_string(row.above[1]),
                          std::to_string(row.alertsAt)});
        }
        timeline.print();

        sim::Table alerts("Alert transitions, seed " +
                          std::to_string(seed));
        alerts.header(
            {"win", "tenant", "objective", "edge", "burn3", "burn12"});
        for (const obs::AlertEvent &a : o.alerts)
            alerts.row({std::to_string(a.window),
                        std::to_string(a.tenant),
                        a.objective == 0 ? "latency-p99" : "error-rate",
                        a.fired ? "FIRE" : "resolve", fmt(a.burnShort),
                        fmt(a.burnLong)});
        alerts.print();
        std::printf("\n");

        if (!check)
            continue;
        for (const Conservation &c : o.conservation)
            if (!c.ok())
                fail(seed, c.what + ": window sum " +
                               std::to_string(c.windowSum) +
                               " != run total " +
                               std::to_string(c.runTotal));
        if (o.windowsClosed < 30)
            fail(seed, "expected >= 30 closed windows, got " +
                           std::to_string(o.windowsClosed));
        if (o.latencyAlertsFired == 0)
            fail(seed, "over-saturated stream fired no latency alert");
        if (o.summary.arrivals !=
            o.summary.admitted + o.summary.shed + o.summary.dropped)
            fail(seed, "arrivals != admitted + shed + dropped");
        // The bare baseline has no fault plane, so the comparison is
        // only meaningful for the fault-free scenario shape.
        if (!base.chaos) {
            const std::uint64_t bare = runWithoutTelemetry(seed);
            if (bare != o.statsDigest)
                fail(seed,
                     "attaching TimeSeries moved the stats digest");
        }
        if (base.chaos && o.flightDumps == 0)
            fail(seed, "chaos run produced no flight-recorder dump");
    }

    if (!check)
        return 0;
    if (pass)
        std::printf("OK: alert stream reproducible, window sums "
                    "conserve, observation does not perturb\n");
    else
        std::printf("FAIL: telemetry plane violated invariants "
                    "(see stderr)\n");
    return pass ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    bool check = false;
    RunConfig cfg;
    std::string timelinePath;
    std::string openMetricsPath;
    std::vector<std::uint64_t> seeds;
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        if (a == "--check") {
            check = true;
        } else if (a == "--chaos") {
            cfg.chaos = true;
        } else if (a == "--dump" && i + 1 < argc) {
            cfg.dumpPath = argv[++i];
        } else if (a == "--timeline" && i + 1 < argc) {
            timelinePath = argv[++i];
            cfg.exports = true;
        } else if (a == "--openmetrics" && i + 1 < argc) {
            openMetricsPath = argv[++i];
            cfg.exports = true;
        } else if (a == "--seed" && i + 1 < argc) {
            seeds.push_back(std::strtoull(argv[++i], nullptr, 10));
        } else {
            std::fprintf(
                stderr,
                "usage: slo_report [--check] [--chaos] [--dump PATH] "
                "[--timeline PATH] [--openmetrics PATH] [--seed N]...\n");
            return 2;
        }
    }
    if (seeds.empty())
        seeds.assign(std::begin(kSeeds), std::end(kSeeds));

    if (cfg.exports || !cfg.dumpPath.empty()) {
        // Artifact exports come from the first seed's run.
        RunConfig one = cfg;
        const Outcome o = runScenario(seeds.front(), one);
        if (!timelinePath.empty() &&
            obs::writeText(timelinePath, o.timelineJsonl))
            std::printf("timeline -> %s\n", timelinePath.c_str());
        if (!openMetricsPath.empty() &&
            obs::writeText(openMetricsPath, o.openMetrics))
            std::printf("openmetrics -> %s\n", openMetricsPath.c_str());
        if (!cfg.dumpPath.empty())
            std::printf("flight dump -> %s (dumps=%llu triggers=%llu)\n",
                        cfg.dumpPath.c_str(),
                        (unsigned long long)o.flightDumps,
                        (unsigned long long)o.flightTriggers);
    }

    return report(check, cfg, seeds);
}

#else // !MOLECULE_TELEMETRY

int
main()
{
    std::printf("slo_report: built with MOLECULE_TELEMETRY=0; the "
                "telemetry plane is compiled out.\n");
    return 0;
}

#endif // MOLECULE_TELEMETRY
