/**
 * @file
 * chaos_report: drive the fault-injection chaos suite and report it.
 *
 * Four scenarios — dpu-crash-restart, link-flap, fpga-reconfig-fail,
 * oom-kill — each run across three seeds with retries + failover
 * enabled and a tracer attached. For every (scenario, seed) pair the
 * run executes twice and the outcome digests must match bit for bit.
 *
 * --strict additionally fails the process unless:
 *   - no invocation ever hit the Errc::Hang sim-time watchdog,
 *   - every scenario fired its planned faults,
 *   - the crash scenario shows retry.backoff spans, a failed-over
 *     invocation and recovery resync+rewarm,
 *   - the FPGA scenario retried (invoke.retry counter) and recovered,
 *   - the OOM scenario actually killed sandboxes (fault.oom_killed).
 *
 * Output is a markdown-friendly table; CI uploads it as an artifact.
 * With MOLECULE_TRACING=0 the tool compiles to a stub that reports
 * the configuration and succeeds (the span/counter checks need obs).
 */

#include <cstdio>

#include "obs/trace.hh"

#if MOLECULE_TRACING

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "core/molecule.hh"
#include "fault/injector.hh"
#include "hw/computer.hh"
#include "sim/stats.hh"
#include "sim/table.hh"

namespace {

using namespace molecule;
using core::Errc;
using core::InvokeOptions;
using core::Molecule;
using core::MoleculeOptions;
using fault::FaultState;
using fault::InjectionPlan;
using hw::PuType;
using sim::SimTime;

struct RunResult
{
    int faultsFired = 0;
    int okCount = 0;
    int typedErrors = 0;
    int hangs = 0;
    bool failedOver = false;
    std::int64_t retries = 0;
    std::int64_t resyncs = 0;
    std::int64_t rewarms = 0;
    std::int64_t oomKilled = 0;
    bool sawBackoffSpan = false;
    bool sawRecoverySpan = false;
    std::uint64_t digest = 0;
};

/** Shared per-run harness: runtime + faults + tracer + fingerprint. */
struct Harness
{
    sim::Simulation sim;
    obs::Tracer tracer;
    FaultState faults;
    std::unique_ptr<hw::Computer> computer;
    std::unique_ptr<Molecule> runtime;
    std::unique_ptr<fault::Injector> injector;
    sim::Fingerprint fp;
    RunResult result;

    explicit Harness(std::uint64_t seed, bool fpga = false)
        : sim(seed), tracer(sim, seed)
    {
        computer = fpga ? hw::buildF1Server(sim, 1)
                        : hw::buildCpuDpuServer(
                              sim, 2, hw::DpuGeneration::Bf1);
        MoleculeOptions mo;
        mo.tracer = &tracer;
        mo.faults = &faults;
        runtime = std::make_unique<Molecule>(*computer, mo);
        if (fpga) {
            runtime->registerFpgaFunction("fpga-gzip");
        } else {
            runtime->registerCpuFunction(
                "helloworld", {PuType::HostCpu, PuType::Dpu});
            runtime->registerCpuFunction(
                "image-resize", {PuType::HostCpu, PuType::Dpu});
        }
        runtime->start();
        injector = std::make_unique<fault::Injector>(sim, faults,
                                                     &tracer);
    }

    void
    track(const core::Expected<obs::InvocationRecord> &out)
    {
        if (out.ok()) {
            ++result.okCount;
            result.failedOver |= out.value().failedOver;
            fp.mix(std::uint64_t(out.value().endToEnd.raw()));
            fp.mix(std::uint64_t(out.value().pu));
        } else if (out.error().code() == Errc::Hang) {
            ++result.hangs;
            fp.mix(0x4a46ULL);
        } else {
            ++result.typedErrors;
            fp.mix(std::uint64_t(out.error().code()));
            fp.mix(std::uint64_t(out.error().retries()));
        }
    }

    /** Close the run: harvest counters, spans and the digest. */
    RunResult
    finish()
    {
        result.faultsFired = injector->firedCount();
        auto &m = tracer.metrics();
        result.retries = m.counter("invoke.retry").value();
        result.resyncs = m.counter("recovery.resync").value();
        result.rewarms = m.counter("recovery.rewarm").value();
        result.oomKilled = m.counter("fault.oom_killed").value();
        for (const auto &r : tracer.records()) {
            result.sawBackoffSpan |=
                std::strcmp(r.name, "retry.backoff") == 0;
            result.sawRecoverySpan |=
                std::strcmp(r.name, "recovery") == 0;
        }
        fp.mix(std::uint64_t(result.faultsFired));
        result.digest = fp.digest();
        return result;
    }
};

/** Crash the busiest DPU under load; expect failover + recovery. */
RunResult
runDpuCrashRestart(std::uint64_t seed)
{
    Harness h(seed);
    InvokeOptions opts;
    opts.pu = 1;
    opts.maxAttempts = 3;
    h.track(h.runtime->invokeSync("helloworld", opts)); // warm pu 1

    InjectionPlan plan;
    plan.crashPu(1, h.sim.now(), SimTime::milliseconds(6));
    h.injector->arm(plan);
    // Admission sees the down PU: backoff, then fail over.
    h.track(h.runtime->invokeSync("helloworld", opts));
    // After the restart the PU serves again (cold, re-warmed pools).
    h.track(h.runtime->invokeSync("helloworld", opts));
    h.track(h.runtime->invokeSync("image-resize", opts));
    return h.finish();
}

/** Flap the host<->DPU link twice; everything completes, just slower. */
RunResult
runLinkFlap(std::uint64_t seed)
{
    Harness h(seed);
    InvokeOptions opts;
    opts.pu = 1;
    opts.maxAttempts = 3;
    h.track(h.runtime->invokeSync("helloworld", opts));
    for (int flap = 0; flap < 2; ++flap) {
        InjectionPlan plan;
        plan.degradeLink(0, 1, h.sim.now(), SimTime::milliseconds(3),
                         SimTime::milliseconds(9), 4.0);
        h.injector->arm(plan);
        h.track(h.runtime->invokeSync("helloworld", opts));
        h.track(h.runtime->invokeSync("image-resize", opts));
    }
    return h.finish();
}

/** Arm a reconfiguration failure; the retry reprograms and succeeds. */
RunResult
runFpgaReconfigFail(std::uint64_t seed)
{
    Harness h(seed, /*fpga=*/true);
    InjectionPlan plan;
    plan.failFpgaReconfig(h.computer->fpga(0).hostPuId(), h.sim.now());
    h.injector->arm(plan);

    InvokeOptions opts;
    opts.maxAttempts = 3;
    h.track(h.runtime->invokeFpgaSync("fpga-gzip", 0, 4096, opts));
    h.track(h.runtime->invokeFpgaSync("fpga-gzip", 0, 4096, opts));
    return h.finish();
}

/** OOM-kill the warm pool of a function; next invoke cold-starts. */
RunResult
runOomKill(std::uint64_t seed)
{
    Harness h(seed);
    InvokeOptions opts;
    opts.pu = 1;
    opts.maxAttempts = 3;
    h.track(h.runtime->invokeSync("image-resize", opts));

    InjectionPlan plan;
    plan.oomKill(1, "image-resize", h.sim.now());
    h.injector->arm(plan);
    h.track(h.runtime->invokeSync("image-resize", opts));
    h.track(h.runtime->invokeSync("image-resize", opts));
    return h.finish();
}

struct Scenario
{
    const char *name;
    RunResult (*run)(std::uint64_t seed);
};

constexpr Scenario kScenarios[] = {
    {"dpu-crash-restart", runDpuCrashRestart},
    {"link-flap", runLinkFlap},
    {"fpga-reconfig-fail", runFpgaReconfigFail},
    {"oom-kill", runOomKill},
};

constexpr std::uint64_t kSeeds[] = {42, 7, 1};

int
report(bool strict)
{
    sim::Table table("Chaos suite: 4 scenarios x 3 seeds, run twice");
    table.header({"scenario", "seed", "faults", "ok", "errors", "hangs",
                  "retries", "failover", "digest"});

    bool pass = true;
    auto fail = [&pass](const char *scenario, std::uint64_t seed,
                        const char *what) {
        std::fprintf(stderr, "FAIL: %s seed %llu: %s\n", scenario,
                     (unsigned long long)seed, what);
        pass = false;
    };

    for (const Scenario &sc : kScenarios) {
        for (std::uint64_t seed : kSeeds) {
            const RunResult a = sc.run(seed);
            const RunResult b = sc.run(seed);

            char digest[24];
            std::snprintf(digest, sizeof(digest), "%016llx",
                          (unsigned long long)a.digest);
            table.row({sc.name, std::to_string(seed),
                       std::to_string(a.faultsFired),
                       std::to_string(a.okCount),
                       std::to_string(a.typedErrors),
                       std::to_string(a.hangs),
                       std::to_string(a.retries),
                       a.failedOver ? "yes" : "no", digest});

            if (a.digest != b.digest)
                fail(sc.name, seed, "outcome digest not reproducible");
            if (a.hangs != 0)
                fail(sc.name, seed, "invocation hung (Errc::Hang)");
            if (a.faultsFired == 0)
                fail(sc.name, seed, "no fault fired");

            const bool isCrash =
                std::strcmp(sc.name, "dpu-crash-restart") == 0;
            const bool isFpga =
                std::strcmp(sc.name, "fpga-reconfig-fail") == 0;
            const bool isOom = std::strcmp(sc.name, "oom-kill") == 0;
            if (isCrash) {
                if (!a.sawBackoffSpan)
                    fail(sc.name, seed, "no retry.backoff span");
                if (!a.failedOver)
                    fail(sc.name, seed, "no invocation failed over");
                if (!a.sawRecoverySpan || a.resyncs == 0 ||
                    a.rewarms == 0)
                    fail(sc.name, seed,
                         "recovery resync/rewarm missing");
            }
            if (isFpga && a.retries == 0)
                fail(sc.name, seed, "fpga retry did not happen");
            if ((isFpga || isOom) && a.typedErrors != 0)
                fail(sc.name, seed,
                     "retries should have absorbed every fault");
            if (isOom && a.oomKilled == 0)
                fail(sc.name, seed, "oom fault killed nothing");
        }
    }
    table.print();

    if (!strict)
        return 0;
    if (pass)
        std::printf("\nOK: chaos suite clean — deterministic digests, "
                    "zero hangs, recovery observed\n");
    else
        std::printf("\nFAIL: chaos suite found problems (see stderr)\n");
    return pass ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    bool strict = false;
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == "--strict") {
            strict = true;
        } else {
            std::fprintf(stderr, "usage: chaos_report [--strict]\n");
            return 2;
        }
    }
    return report(strict);
}

#else // !MOLECULE_TRACING

int
main()
{
    std::printf("chaos_report: built with MOLECULE_TRACING=0; the "
                "span/counter checks need the obs subsystem.\n");
    return 0;
}

#endif // MOLECULE_TRACING
