/**
 * @file
 * Runs representative full-model scenarios with the sim-time conflict
 * detector enabled and prints the report (CI publishes it as an
 * artifact). Exit status: 0 when no conflict is found, 1 otherwise
 * (--strict only; default always 0 so the artifact is advisory).
 *
 * A reported conflict means two same-instant accesses to one tracked
 * model cell were ordered only by the event-queue schedule-sequence
 * tie-break — the simulated result silently depends on schedule-call
 * order. See DESIGN.md "Determinism rules".
 */

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/molecule.hh"
#include "hw/computer.hh"
#include "sim/analysis.hh"
#include "workloads/catalog.hh"

#if !MOLECULE_DETERMINISM_ANALYSIS

int
main()
{
    std::printf("conflict_report: built with "
                "MOLECULE_DETERMINISM_ANALYSIS=OFF; nothing to do\n");
    return 0;
}

#else

namespace {

using namespace molecule;
using core::ChainSpec;
using core::Molecule;
using core::MoleculeOptions;
using hw::PuType;
using workloads::Catalog;

struct ScenarioResult
{
    std::string name;
    std::size_t records = 0;
    std::uint64_t dropped = 0;
    std::vector<sim::analysis::Conflict> conflicts;
};

/** The determinism-test scenario: cold/warm/remote invokes + a chain. */
ScenarioResult
invokeScenario(std::uint64_t seed)
{
    sim::Simulation sim(seed);
    sim.enableConflictTracking();
    auto computer = hw::buildCpuDpuServer(sim, 2, hw::DpuGeneration::Bf1);
    Molecule runtime(*computer, MoleculeOptions{});
    runtime.registerCpuFunction("helloworld",
                                {PuType::HostCpu, PuType::Dpu});
    for (const auto &fn : Catalog::alexaChain())
        runtime.registerCpuFunction(fn, {PuType::HostCpu, PuType::Dpu});
    runtime.start();

    (void)runtime.invokeSync("helloworld", 0);
    (void)runtime.invokeSync("helloworld", 0);
    (void)runtime.invokeSync("helloworld", 1);
    auto spec = ChainSpec::linear("alexa", Catalog::alexaChain());
    std::vector<int> cross{0, 1, 0, 1, 0};
    (void)runtime.invokeChainSync(spec, cross);

    ScenarioResult r;
    r.name = "invoke-chain seed=" + std::to_string(seed);
    r.records = sim.accessLog()->recordCount();
    r.dropped = sim.accessLog()->droppedRecords();
    r.conflicts = sim.accessLog()->findConflicts();
    return r;
}

} // namespace

int
main(int argc, char **argv)
{
    bool strict = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--strict") == 0)
            strict = true;
    }

    std::printf("# Sim-time conflict report\n");
    std::size_t total = 0;
    for (std::uint64_t seed : {42ULL, 7ULL, 1ULL}) {
        const ScenarioResult r = invokeScenario(seed);
        std::printf("\n## %s\n%zu tracked accesses, %llu dropped, "
                    "%zu conflict(s)\n",
                    r.name.c_str(), r.records,
                    static_cast<unsigned long long>(r.dropped),
                    r.conflicts.size());
        for (const auto &c : r.conflicts)
            std::printf("%s\n", sim::analysis::describe(c).c_str());
        total += r.conflicts.size();
    }
    std::printf("\n# total: %zu conflict(s)\n", total);
    return (strict && total > 0) ? 1 : 0;
}

#endif // MOLECULE_DETERMINISM_ANALYSIS
