/**
 * @file
 * policy_report: race placement x keep-alive policy combos over
 * identical seeded workloads and report the cost+SLO scoreboard.
 *
 * One scenario per seed: a 4-node CPU+DPU fleet (2 BlueField-2 per
 * node) behind an open ClusterGateway (no rate policing — node
 * capacity binds), fed by the seeded open-loop generator with a
 * Zipf-skewed two-tenant mix. Each policy combo replays the *same*
 * arrival stream, so differences in throughput, tail latency and
 * accumulated dollars are attributable to the policies alone. The
 * final table marks the latency/cost Pareto frontier across combos
 * at the saturated rung.
 *
 * --check enforces the invariants (per seed):
 *   - arrival accounting conserves: arrivals = admitted + shed +
 *     dropped, and admitted = completed + errors;
 *   - percentiles are sane and every completion is costed (> $0);
 *   - policy swap does not perturb: a fleet with the default policies
 *     installed explicitly produces the same (placement, eviction,
 *     stats) digest triple as a fleet that never touched the policy
 *     knobs;
 *   - load-aware placement strictly raises completed throughput over
 *     the price-ordered default on the saturated rung (the DPU-bound
 *     ceiling is the bug this policy exists to fix);
 *   - per-combo digest triples are bit-identical serial vs re-run vs
 *     SweepRunner;
 *   - the Pareto frontier is non-empty and none of its points is
 *     dominated.
 *
 * --json PATH writes the scoreboard as a JSON artifact for CI.
 */

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "cluster/cost.hh"
#include "cluster/gateway.hh"
#include "load/generator.hh"
#include "sim/simulation.hh"
#include "sim/sweep.hh"
#include "sim/table.hh"

namespace {

using namespace molecule;
using sim::SimTime;

/** Measured DPU-bound fleet ceiling (price-ordered, 4x2 BF2). */
constexpr double kCeilingPerSecond = 480.0;

/** Rungs as multiples of the DPU-bound ceiling. */
struct Rung
{
    const char *label;
    double factor;
    bool saturated;
};

constexpr Rung kRungs[] = {
    {"0.5x", 0.5, false},
    {"1.6x", 1.6, true},
};

/** Shared horizon: every rung replays the same window. */
constexpr double kHorizonSeconds = 30.0;

constexpr std::uint64_t kSeeds[] = {42, 7, 1};

/** One raced configuration. */
struct Combo
{
    const char *label;
    core::PlacementConfig placement;
    core::KeepAliveConfig keepAlive;
};

std::vector<Combo>
combos()
{
    return {
        {"po+lru", core::PlacementConfig::priceOrdered(),
         core::KeepAliveConfig::lru()},
        {"la+lru", core::PlacementConfig::loadAware(),
         core::KeepAliveConfig::lru()},
        {"lo+lru", core::PlacementConfig::locality(),
         core::KeepAliveConfig::lru()},
        {"po+gd", core::PlacementConfig::priceOrdered(),
         core::KeepAliveConfig::greedyDual()},
        {"po+hist", core::PlacementConfig::priceOrdered(),
         core::KeepAliveConfig::histogram()},
    };
}

load::TraceSpec
makeSpec(std::uint64_t seed, double rate)
{
    load::TraceSpec spec;
    spec.seed = seed;
    spec.ratePerSecond = rate;
    spec.duration = SimTime::fromSeconds(kHorizonSeconds);
    spec.functions = {"helloworld", "pyaes", "dd", "gzip-compression"};
    spec.tenants = {
        {"alpha", 3.0, 1.1, 1},
        {"beta", 1.0, 0.8, 2},
    };
    return spec;
}

struct PolicyOutcome
{
    cluster::ClusterSummary summary;
    std::uint64_t statsDigest = 0;
    std::uint64_t placeDigest = 0;
    std::uint64_t evictDigest = 0;
    std::uint64_t generated = 0;
};

/**
 * One full fleet run under @p combo. @p installPolicies false leaves
 * the runtime options untouched (the implicit defaults) — the
 * policy-swap-does-not-perturb control arm.
 */
PolicyOutcome
runCombo(std::uint64_t seed, double rate, const Combo &combo,
         bool installPolicies = true)
{
    sim::Simulation sim(seed);
    cluster::FleetSpec fleetSpec;
    fleetSpec.nodes = 4;
    fleetSpec.dpusPerNode = 2;
    if (installPolicies) {
        fleetSpec.runtime.placement = combo.placement;
        fleetSpec.runtime.startup.keepAlive = combo.keepAlive;
    }
    cluster::Fleet fleet(sim, fleetSpec);

    load::TraceSpec spec = makeSpec(seed, rate);
    for (const auto &fn : spec.functions)
        fleet.registerCpuFunction(fn,
                                  {hw::PuType::HostCpu, hw::PuType::Dpu});
    fleet.start();

    obs::Registry registry;
    cluster::ClusterStats stats(registry);
    cluster::CostModel cost;
    stats.setCostModel(&cost, fleet.puTypeTable());

    cluster::GatewayConfig gwCfg =
        cluster::GatewayConfig::forFunctions(spec.functions, stats);
    gwCfg.admission.tokensPerSecond = 0.0; // capacity binds, not policing
    gwCfg.admission.queueCapacity = 2048;
    gwCfg.admission.maxOutstandingPerNode = 96;
    gwCfg.admission.invoke.maxAttempts = 2;
    cluster::ClusterGateway gateway(fleet, gwCfg);

    load::OpenLoopGenerator gen(spec);
    const SimTime t0 = sim.now();
    sim.spawn(load::drive(sim, gen, gateway));
    sim.run();

    PolicyOutcome out;
    out.summary = stats.summarize(sim.now() - t0, fleet.coreTable());
    out.statsDigest = stats.digest();
    out.generated = gen.emitted();
    sim::Fingerprint placeFp;
    sim::Fingerprint evictFp;
    for (int i = 0; i < fleet.size(); ++i) {
        placeFp.mix(fleet.node(i).scheduler().placementDigest());
        evictFp.mix(fleet.node(i).startup().evictionDigest());
    }
    out.placeDigest = placeFp.digest();
    out.evictDigest = evictFp.digest();
    return out;
}

bool
sameTriple(const PolicyOutcome &a, const PolicyOutcome &b)
{
    return a.statsDigest == b.statsDigest &&
           a.placeDigest == b.placeDigest &&
           a.evictDigest == b.evictDigest;
}

std::string
hex(std::uint64_t v)
{
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  (unsigned long long)v);
    return buf;
}

std::string
fmt(double v, int precision = 1)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

struct Row
{
    std::uint64_t seed;
    const Rung *rung;
    std::string combo;
    PolicyOutcome outcome;
};

void
writeJson(const std::string &path, const std::vector<Row> &rows)
{
    std::ofstream out(path);
    out << "{\n  \"scenario\": \"policy-race\",\n  \"rows\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const Row &r = rows[i];
        const cluster::ClusterSummary &s = r.outcome.summary;
        char buf[768];
        std::snprintf(
            buf, sizeof(buf),
            "    {\"seed\": %llu, \"rung\": \"%s\", \"combo\": \"%s\", "
            "\"arrivals\": %lld, \"admitted\": %lld, "
            "\"dropped\": %lld, \"completed\": %lld, \"errors\": %lld, "
            "\"throughput\": %.1f, \"p50_us\": %.1f, \"p99_us\": %.1f, "
            "\"cost_usd\": %.6f, \"cost_per_inv_usd\": %.9f, "
            "\"stats_digest\": \"%s\", \"place_digest\": \"%s\", "
            "\"evict_digest\": \"%s\"}%s\n",
            (unsigned long long)r.seed, r.rung->label,
            r.combo.c_str(), (long long)s.arrivals,
            (long long)s.admitted, (long long)s.dropped,
            (long long)s.completed, (long long)s.errors,
            s.throughputPerSecond, s.p50Us, s.p99Us, s.totalCost,
            s.costPerInvocation, hex(r.outcome.statsDigest).c_str(),
            hex(r.outcome.placeDigest).c_str(),
            hex(r.outcome.evictDigest).c_str(),
            i + 1 < rows.size() ? "," : "");
        out << buf;
    }
    out << "  ]\n}\n";
}

int
report(bool check, const std::string &jsonPath,
       const std::vector<std::uint64_t> &seeds)
{
    bool pass = true;
    auto fail = [&pass](std::uint64_t seed, const std::string &what) {
        std::fprintf(stderr, "FAIL: seed %llu: %s\n",
                     (unsigned long long)seed, what.c_str());
        pass = false;
    };

    const std::vector<Combo> race = combos();

    sim::Table table("Policy race: 4-node 2xBF2 fleet, open gateway, "
                     "identical seeded streams");
    table.header({"seed", "rung", "combo", "arrivals", "completed",
                  "dropped", "p50us", "p99us", "thr/s", "cost$",
                  "$/1k inv"});

    std::vector<Row> rows;
    for (std::uint64_t seed : seeds) {
        // Policy swap must not perturb: explicit defaults vs a fleet
        // that never touched the policy knobs.
        {
            const double rate = kCeilingPerSecond * kRungs[0].factor;
            const PolicyOutcome implicit =
                runCombo(seed, rate, race[0], false);
            const PolicyOutcome explicitDefaults =
                runCombo(seed, rate, race[0], true);
            if (!sameTriple(implicit, explicitDefaults))
                fail(seed,
                     "installing the default policies explicitly "
                     "perturbed the digest triple");
        }

        std::vector<PolicyOutcome> saturated(race.size());
        for (const Rung &rung : kRungs) {
            const double rate = kCeilingPerSecond * rung.factor;
            for (std::size_t c = 0; c < race.size(); ++c) {
                const PolicyOutcome o = runCombo(seed, rate, race[c]);
                if (rung.saturated)
                    saturated[c] = o;
                const cluster::ClusterSummary &s = o.summary;
                table.row({std::to_string(seed), rung.label,
                           race[c].label, std::to_string(s.arrivals),
                           std::to_string(s.completed),
                           std::to_string(s.dropped), fmt(s.p50Us),
                           fmt(s.p99Us), fmt(s.throughputPerSecond),
                           fmt(s.totalCost, 4),
                           fmt(s.costPerInvocation * 1000.0, 6)});
                rows.push_back(
                    Row{seed, &rung, race[c].label, o});

                if (s.arrivals != s.admitted + s.shed + s.dropped)
                    fail(seed, std::string(race[c].label) +
                                   ": arrivals != admitted + shed + "
                                   "dropped");
                if (s.admitted != s.completed + s.errors)
                    fail(seed, std::string(race[c].label) +
                                   ": admitted != completed + errors");
                if (s.completed <= 0)
                    fail(seed, std::string(race[c].label) +
                                   ": nothing completed");
                if (!(s.p50Us > 0.0 && s.p50Us <= s.p99Us))
                    fail(seed, std::string(race[c].label) +
                                   ": percentiles not sane");
                if (s.totalCost <= 0.0 ||
                    s.costPerInvocation <= 0.0)
                    fail(seed, std::string(race[c].label) +
                                   ": completions not costed");
            }
        }

        // The spill fix: load-aware must beat the price-ordered
        // DPU-bound ceiling once the fleet saturates. The open
        // gateway drains its backlog after the generator stops, so
        // completed counts tie — the win shows up as a strictly
        // higher service rate and a strictly lower p99.
        if (saturated[1].summary.throughputPerSecond <=
            saturated[0].summary.throughputPerSecond)
            fail(seed, "load-aware did not raise saturated service "
                       "rate over price-ordered (" +
                           fmt(saturated[1].summary
                                   .throughputPerSecond) +
                           " <= " +
                           fmt(saturated[0].summary
                                   .throughputPerSecond) + "/s)");
        if (saturated[1].summary.p99Us >= saturated[0].summary.p99Us)
            fail(seed, "load-aware did not cut saturated p99 vs "
                       "price-ordered (" +
                           fmt(saturated[1].summary.p99Us) +
                           " >= " + fmt(saturated[0].summary.p99Us) +
                           "us)");

        // Determinism: serial vs re-run vs SweepRunner, per combo.
        const double satRate =
            kCeilingPerSecond * kRungs[std::size(kRungs) - 1].factor;
        std::vector<PolicyOutcome> rerun(race.size());
        for (std::size_t c = 0; c < race.size(); ++c)
            rerun[c] = runCombo(seed, satRate, race[c]);
        sim::SweepRunner pool;
        const auto swept = pool.map<PolicyOutcome>(
            race.size(), [&](std::size_t c) {
                return runCombo(seed, satRate, race[c]);
            });
        for (std::size_t c = 0; c < race.size(); ++c) {
            if (!sameTriple(saturated[c], rerun[c]))
                fail(seed, std::string(race[c].label) +
                               ": digest triple differs on re-run");
            if (!sameTriple(saturated[c], swept[c]))
                fail(seed, std::string(race[c].label) +
                               ": digest triple differs under "
                               "SweepRunner");
        }

        // Latency/cost Pareto frontier at the saturated rung.
        std::vector<cluster::ParetoPoint> points;
        for (std::size_t c = 0; c < race.size(); ++c) {
            cluster::ParetoPoint p;
            p.label = race[c].label;
            p.p99Us = saturated[c].summary.p99Us;
            p.cost = saturated[c].summary.totalCost;
            p.throughput = saturated[c].summary.throughputPerSecond;
            points.push_back(p);
        }
        const auto frontier = cluster::paretoFrontier(points);
        sim::Table pareto("Latency/cost Pareto, seed " +
                          std::to_string(seed) + " @ saturation");
        pareto.header({"combo", "p99us", "cost$", "thr/s", "front"});
        for (const auto &p : points)
            pareto.row({p.label, fmt(p.p99Us), fmt(p.cost, 4),
                        fmt(p.throughput),
                        p.dominated ? "" : "*"});
        pareto.print();
        std::printf("\n");
        if (frontier.empty())
            fail(seed, "empty Pareto frontier");
        for (std::size_t i = 1; i < frontier.size(); ++i)
            if (frontier[i - 1].p99Us > frontier[i].p99Us)
                fail(seed, "Pareto frontier not sorted by p99");
    }
    table.print();

    if (!jsonPath.empty()) {
        writeJson(jsonPath, rows);
        std::printf("\njson -> %s\n", jsonPath.c_str());
    }

    if (!check)
        return 0;
    if (pass)
        std::printf("\nOK: policy race clean — swap-safe defaults, "
                    "reproducible digest triples, load-aware beats "
                    "the DPU-bound ceiling\n");
    else
        std::printf("\nFAIL: policy race violated invariants "
                    "(see stderr)\n");
    return pass ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    bool check = false;
    std::string jsonPath;
    std::vector<std::uint64_t> seeds;
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        if (a == "--check") {
            check = true;
        } else if (a == "--json" && i + 1 < argc) {
            jsonPath = argv[++i];
        } else if (a == "--seed" && i + 1 < argc) {
            seeds.push_back(std::strtoull(argv[++i], nullptr, 10));
        } else {
            std::fprintf(stderr,
                         "usage: policy_report [--check] "
                         "[--json PATH] [--seed N]...\n");
            return 2;
        }
    }
    if (seeds.empty())
        seeds.assign(std::begin(kSeeds), std::end(kSeeds));
    return report(check, jsonPath, seeds);
}
