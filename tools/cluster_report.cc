/**
 * @file
 * cluster_report: race the cluster substrate to saturation and report
 * the tail-latency scoreboard.
 *
 * One scenario per seed: a 4-node CPU+DPU fleet behind a
 * ClusterGateway (token-bucket admission + bounded queue +
 * least-outstanding dispatch), fed by the seeded open-loop generator
 * with a Zipf-skewed, two-tenant function mix. The arrival-rate
 * ladder rises from half the admitted rate to well past it, so one
 * table shows the whole story: drop-free service below saturation,
 * then the token bucket shedding load while the served fraction keeps
 * bounded tails.
 *
 * --check enforces the invariants (per seed):
 *   - generator stream digests are bit-identical serial vs SweepRunner
 *     for every arrival process (Poisson, MMPP, diurnal);
 *   - arrival accounting conserves: arrivals = admitted + shed +
 *     dropped, and admitted = completed + errors;
 *   - below-saturation rungs shed and drop nothing;
 *   - the top rung generates >= 1M arrivals and provably sheds;
 *   - percentiles are sane (p50 <= p99 <= p999, all > 0) and per-PU
 *     utilization is reported and nonzero.
 *
 * --json PATH writes the ladder as a JSON artifact for CI.
 */

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "cluster/gateway.hh"
#include "load/generator.hh"
#include "sim/simulation.hh"
#include "sim/sweep.hh"
#include "sim/table.hh"

namespace {

using namespace molecule;
using sim::SimTime;

/** The admitted rate the token bucket polices (invocations/s). */
constexpr double kAdmittedPerSecond = 300.0;

/** Ladder rungs as multiples of the admitted rate. */
struct Rung
{
    const char *label;
    double factor;
    /** Rungs at or below 1.0 must be shed- and drop-free. */
    bool belowSaturation;
};

constexpr Rung kRungs[] = {
    {"0.5x", 0.5, true},
    {"0.8x", 0.8, true},
    {"1.6x", 1.6, false},
};

/** Arrivals the top rung must generate (acceptance floor). */
constexpr std::uint64_t kTopRungArrivals = 1'050'000;

constexpr std::uint64_t kSeeds[] = {42, 7, 1};

load::TraceSpec
makeSpec(std::uint64_t seed, double rate, load::ArrivalKind kind)
{
    load::TraceSpec spec;
    spec.seed = seed;
    spec.ratePerSecond = rate;
    spec.arrival = kind;
    // Top rung duration clears the 1M-arrival floor; every rung uses
    // the same horizon so throughput columns are comparable.
    const double topRate =
        kAdmittedPerSecond * kRungs[std::size(kRungs) - 1].factor;
    spec.duration = SimTime::fromSeconds(
        double(kTopRungArrivals) / topRate);
    spec.functions = {"helloworld", "pyaes", "dd", "gzip-compression"};
    spec.tenants = {
        {"alpha", 3.0, 1.1, 1},
        {"beta", 1.0, 0.8, 2},
    };
    return spec;
}

struct RunOutcome
{
    cluster::ClusterSummary summary;
    std::uint64_t digest = 0;
    std::uint64_t generated = 0;
};

RunOutcome
runRung(std::uint64_t seed, double rate)
{
    sim::Simulation sim(seed);
    cluster::FleetSpec fleetSpec;
    fleetSpec.nodes = 4;
    fleetSpec.dpusPerNode = 2;
    cluster::Fleet fleet(sim, fleetSpec);

    load::TraceSpec spec =
        makeSpec(seed, rate, load::ArrivalKind::Poisson);
    for (const auto &fn : spec.functions)
        fleet.registerCpuFunction(fn,
                                  {hw::PuType::HostCpu, hw::PuType::Dpu});
    fleet.start();

    obs::Registry registry;
    cluster::ClusterStats stats(registry);
    cluster::LeastOutstandingPolicy policy;
    cluster::AdmissionOptions admission;
    admission.tokensPerSecond = kAdmittedPerSecond;
    admission.bucketCapacity = 200.0;
    admission.queueCapacity = 2048;
    admission.maxOutstandingPerNode = 96;
    admission.invoke.maxAttempts = 2;
    cluster::GatewayConfig gwCfg =
        cluster::GatewayConfig::forFunctions(spec.functions, stats);
    gwCfg.admission = admission;
    gwCfg.dispatch = &policy;
    cluster::ClusterGateway gateway(fleet, gwCfg);

    load::OpenLoopGenerator gen(spec);
    const SimTime t0 = sim.now();
    sim.spawn(load::drive(sim, gen, gateway));
    sim.run();

    RunOutcome out;
    out.summary = stats.summarize(sim.now() - t0, fleet.coreTable());
    out.digest = stats.digest();
    out.generated = gen.emitted();
    return out;
}

double
meanUtilization(const cluster::ClusterSummary &s)
{
    if (s.utilization.empty())
        return 0.0;
    double total = 0.0;
    for (const auto &u : s.utilization)
        total += u.utilization;
    return total / double(s.utilization.size());
}

std::string
hex(std::uint64_t v)
{
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  (unsigned long long)v);
    return buf;
}

std::string
fmt(double v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.1f", v);
    return buf;
}

/**
 * Cross-check every arrival process: the stream digest computed
 * serially must equal the one computed on a SweepRunner worker.
 */
bool
checkGeneratorDigests(std::uint64_t seed, sim::Table &table)
{
    const double topRate =
        kAdmittedPerSecond * kRungs[std::size(kRungs) - 1].factor;
    std::vector<load::TraceSpec> specs;
    for (load::ArrivalKind kind :
         {load::ArrivalKind::Poisson, load::ArrivalKind::Mmpp,
          load::ArrivalKind::Diurnal})
        specs.push_back(makeSpec(seed, topRate, kind));

    std::vector<std::uint64_t> serial;
    serial.reserve(specs.size());
    for (const auto &spec : specs)
        serial.push_back(load::streamDigest(spec));

    sim::SweepRunner pool;
    const auto threaded = pool.map<std::uint64_t>(
        specs.size(),
        [&](std::size_t i) { return load::streamDigest(specs[i]); });

    bool ok = true;
    for (std::size_t i = 0; i < specs.size(); ++i) {
        const bool match = serial[i] == threaded[i];
        ok = ok && match;
        table.row({std::to_string(seed),
                   load::toString(specs[i].arrival), hex(serial[i]),
                   match ? "yes" : "NO"});
    }
    return ok;
}

struct Row
{
    std::uint64_t seed;
    const Rung *rung;
    double rate;
    RunOutcome outcome;
};

void
writeJson(const std::string &path, const std::vector<Row> &rows)
{
    std::ofstream out(path);
    out << "{\n  \"scenario\": \"cluster-ladder\",\n  \"rows\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const Row &r = rows[i];
        const cluster::ClusterSummary &s = r.outcome.summary;
        char buf[640];
        std::snprintf(
            buf, sizeof(buf),
            "    {\"seed\": %llu, \"rung\": \"%s\", \"rate\": %.1f, "
            "\"arrivals\": %lld, \"admitted\": %lld, \"shed\": %lld, "
            "\"dropped\": %lld, \"completed\": %lld, \"errors\": %lld, "
            "\"queue_max\": %lld, \"throughput\": %.1f, "
            "\"p50_us\": %.1f, \"p99_us\": %.1f, \"p999_us\": %.1f, "
            "\"util_mean\": %.4f, \"digest\": \"%s\"}%s\n",
            (unsigned long long)r.seed, r.rung->label, r.rate,
            (long long)s.arrivals, (long long)s.admitted,
            (long long)s.shed, (long long)s.dropped,
            (long long)s.completed, (long long)s.errors,
            (long long)s.queueMaxDepth, s.throughputPerSecond, s.p50Us,
            s.p99Us, s.p999Us, meanUtilization(s),
            hex(r.outcome.digest).c_str(),
            i + 1 < rows.size() ? "," : "");
        out << buf;
    }
    out << "  ]\n}\n";
}

int
report(bool check, const std::string &jsonPath,
       const std::vector<std::uint64_t> &seeds)
{
    bool pass = true;
    auto fail = [&pass](std::uint64_t seed, const char *rung,
                        const char *what) {
        std::fprintf(stderr, "FAIL: seed %llu rung %s: %s\n",
                     (unsigned long long)seed, rung, what);
        pass = false;
    };

    sim::Table digests("Generator stream digests, serial vs "
                       "SweepRunner");
    digests.header({"seed", "arrival", "digest", "match"});
    for (std::uint64_t seed : seeds)
        if (!checkGeneratorDigests(seed, digests))
            fail(seed, "-", "generator digest serial != threaded");
    digests.print();
    std::printf("\n");

    sim::Table table("Cluster ladder: 4-node CPU+DPU fleet, "
                     "least-outstanding dispatch, token bucket at "
                     "300/s");
    table.header({"seed", "rung", "arrivals", "admitted", "shed",
                  "dropped", "completed", "p50us", "p99us", "p999us",
                  "qmax", "util"});

    std::vector<Row> rows;
    for (std::uint64_t seed : seeds) {
        for (const Rung &rung : kRungs) {
            const double rate = kAdmittedPerSecond * rung.factor;
            Row row{seed, &rung, rate, runRung(seed, rate)};
            const cluster::ClusterSummary &s = row.outcome.summary;
            table.row({std::to_string(seed), rung.label,
                       std::to_string(s.arrivals),
                       std::to_string(s.admitted),
                       std::to_string(s.shed),
                       std::to_string(s.dropped),
                       std::to_string(s.completed), fmt(s.p50Us),
                       fmt(s.p99Us), fmt(s.p999Us),
                       std::to_string(s.queueMaxDepth),
                       fmt(meanUtilization(s) * 100.0)});
            rows.push_back(row);

            if (s.arrivals != s.admitted + s.shed + s.dropped)
                fail(seed, rung.label,
                     "arrivals != admitted + shed + dropped");
            if (s.admitted != s.completed + s.errors)
                fail(seed, rung.label,
                     "admitted != completed + errors");
            if (s.completed <= 0)
                fail(seed, rung.label, "nothing completed");
            if (!(s.p50Us > 0.0 && s.p50Us <= s.p99Us &&
                  s.p99Us <= s.p999Us))
                fail(seed, rung.label, "percentiles not sane");
            if (s.utilization.empty() || meanUtilization(s) <= 0.0)
                fail(seed, rung.label, "no per-PU utilization");
            if (rung.belowSaturation) {
                if (s.shed != 0 || s.dropped != 0)
                    fail(seed, rung.label,
                         "below saturation but shed/dropped work");
                if (s.errors != 0)
                    fail(seed, rung.label,
                         "below saturation but invocations errored");
            } else {
                if (std::uint64_t(s.arrivals) < 1'000'000)
                    fail(seed, rung.label,
                         "top rung generated < 1M arrivals");
                if (s.shed + s.dropped <= 0)
                    fail(seed, rung.label,
                         "saturated rung did not shed");
            }
        }
    }
    table.print();

    if (!jsonPath.empty()) {
        writeJson(jsonPath, rows);
        std::printf("\njson -> %s\n", jsonPath.c_str());
    }

    if (!check)
        return 0;
    if (pass)
        std::printf("\nOK: ladder clean — reproducible streams, "
                    "conservation holds, sheds only at saturation\n");
    else
        std::printf("\nFAIL: cluster ladder violated invariants "
                    "(see stderr)\n");
    return pass ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    bool check = false;
    std::string jsonPath;
    std::vector<std::uint64_t> seeds;
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        if (a == "--check") {
            check = true;
        } else if (a == "--json" && i + 1 < argc) {
            jsonPath = argv[++i];
        } else if (a == "--seed" && i + 1 < argc) {
            seeds.push_back(std::strtoull(argv[++i], nullptr, 10));
        } else {
            std::fprintf(stderr,
                         "usage: cluster_report [--check] "
                         "[--json PATH] [--seed N]...\n");
            return 2;
        }
    }
    if (seeds.empty())
        seeds.assign(std::begin(kSeeds), std::end(kSeeds));
    return report(check, jsonPath, seeds);
}
