/**
 * @file
 * molecule-lint CLI.
 *
 * Usage:
 *   molecule-lint [options] <dir-or-file>...
 *     --strict                also fail on stale baseline entries
 *     --format human|json|sarif   (default: human)
 *     --output <file>         write the report there (default: stdout)
 *     --baseline <file>       filter findings recorded in the baseline
 *     --write-baseline <file> record current findings for ratcheting
 *     --packs a,b,c           run only these packs (default: all)
 *     --list-rules            print the rule registry and exit
 *     --self-test [pack]      run the built-in fixture suites
 *
 * Exit codes: 0 clean, 1 findings (or, with --strict, stale baseline
 * entries), 2 usage error.
 */

#include <cstdio>
#include <cstring>
#include <sstream>
#include <string>

#include "engine.hh"

namespace {

int
usage()
{
    std::fprintf(
        stderr,
        "usage: molecule-lint [--strict] [--format human|json|sarif]\n"
        "                     [--output FILE] [--baseline FILE]\n"
        "                     [--write-baseline FILE] [--packs A,B]\n"
        "                     [--list-rules] [--self-test [PACK]]\n"
        "                     <dir-or-file>...\n");
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace molecule::lint;

    Options opts;
    bool runSelfTest = false;
    bool listRules = false;
    std::string selfTestPack;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            return i + 1 < argc ? argv[++i] : nullptr;
        };
        if (arg == "--strict") {
            opts.strict = true;
        } else if (arg == "--format") {
            const char *v = next();
            if (!v)
                return usage();
            if (std::strcmp(v, "human") == 0)
                opts.format = Format::Human;
            else if (std::strcmp(v, "json") == 0)
                opts.format = Format::Json;
            else if (std::strcmp(v, "sarif") == 0)
                opts.format = Format::Sarif;
            else
                return usage();
        } else if (arg == "--output") {
            const char *v = next();
            if (!v)
                return usage();
            opts.output = v;
        } else if (arg == "--baseline") {
            const char *v = next();
            if (!v)
                return usage();
            opts.baseline = v;
        } else if (arg == "--write-baseline") {
            const char *v = next();
            if (!v)
                return usage();
            opts.writeBaseline = v;
        } else if (arg == "--packs") {
            const char *v = next();
            if (!v)
                return usage();
            std::stringstream ss(v);
            std::string pack;
            while (std::getline(ss, pack, ','))
                if (!pack.empty())
                    opts.packs.insert(pack);
        } else if (arg == "--self-test") {
            runSelfTest = true;
            if (i + 1 < argc && argv[i + 1][0] != '-')
                selfTestPack = argv[++i];
        } else if (arg == "--list-rules") {
            listRules = true;
        } else if (arg.rfind("--", 0) == 0) {
            return usage();
        } else {
            opts.roots.push_back(arg);
        }
    }

    const Registry registry = makeRegistry();

    if (listRules) {
        for (const auto &rule : registry.rules())
            std::printf("%-14s %-24s %s\n", rule->pack().c_str(),
                        rule->id().c_str(), rule->summary().c_str());
        return 0;
    }
    if (runSelfTest)
        return selfTest(selfTestPack);
    if (opts.roots.empty())
        return usage();

    const Result result = run(registry, opts);
    render(registry, opts, result);
    return result.exitCode;
}
