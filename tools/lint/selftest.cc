/**
 * @file
 * Built-in fixture suites for molecule-lint (`--self-test [pack]`).
 *
 * Each fixture is a miniature project (one or two in-memory files)
 * with the exact rule sequence it must produce. The sim-purity block
 * carries PR 2's lint_determinism fixtures verbatim — expectations
 * unchanged — so the migrated pack is regression-locked bit-for-bit
 * against the engine it replaced. Every pack has at least one
 * true-positive fixture, so disabling a detector fails the suite.
 *
 * Registered as tier-1 ctests (one per pack plus the combined run);
 * see tools/CMakeLists.txt.
 */

#include <cstdio>

#include "engine.hh"

namespace molecule::lint {

namespace {

struct Fixture
{
    /** Owning pack ("engine" = cross-pack behaviors, run all rules). */
    const char *pack;
    const char *name;
    /** Files of the miniature project. */
    std::vector<std::pair<std::string, std::string>> files;
    /** Expected rule ids after dedupe/sort; empty = must be clean. */
    std::vector<std::string> expect;
};

std::vector<Fixture>
fixtures()
{
    std::vector<Fixture> out;

    // -----------------------------------------------------------------
    // sim-purity: PR 2's fixtures, verbatim.
    // -----------------------------------------------------------------
    auto one = [](const char *path, const char *content) {
        return std::vector<std::pair<std::string, std::string>>{
            {path, content}};
    };
    out.push_back({"sim-purity", "wallclock hit",
                   one("src/os/kernel.cc",
                       "void f() { auto t = "
                       "std::chrono::system_clock::now(); }\n"),
                   {"wallclock"}});
    out.push_back({"sim-purity", "wallclock in comment ok",
                   one("src/os/kernel.cc",
                       "// std::chrono::system_clock is banned here\n"
                       "void f() {}\n"),
                   {}});
    out.push_back({"sim-purity", "wallclock in string ok",
                   one("src/os/kernel.cc",
                       "const char *s = \"system_clock\";\n"),
                   {}});
    out.push_back({"sim-purity", "random_device hit",
                   one("src/sim/random.cc",
                       "int seed() { std::random_device rd; "
                       "return rd(); }\n"),
                   {"wallclock"}});
    out.push_back({"sim-purity", "suppression same line",
                   one("src/os/kernel.cc",
                       "auto t = std::chrono::steady_clock::now(); "
                       "// det:allow(wallclock)\n"),
                   {}});
    out.push_back({"sim-purity", "suppression previous line",
                   one("src/os/kernel.cc",
                       "// det:allow(wallclock)\n"
                       "auto t = std::chrono::steady_clock::now();\n"),
                   {}});
    out.push_back({"sim-purity", "suppression wrong rule still fires",
                   one("src/os/kernel.cc",
                       "// det:allow(unordered-iteration)\n"
                       "auto t = std::chrono::steady_clock::now();\n"),
                   {"wallclock"}});
    out.push_back({"sim-purity", "pointer-keyed map",
                   one("src/core/scheduler.hh",
                       "std::map<Process *, int> byProc_;\n"),
                   {"pointer-keyed-container"}});
    out.push_back({"sim-purity", "pointer-keyed set",
                   one("src/core/scheduler.hh",
                       "std::set<const Link *> seen_;\n"),
                   {"pointer-keyed-container"}});
    out.push_back({"sim-purity", "value-keyed map ok",
                   one("src/core/scheduler.hh",
                       "std::map<std::pair<int, int>, Route> routes_;\n"
                       "std::map<std::string, int *> "
                       "ptrValuesAreFine_;\n"),
                   {}});
    out.push_back({"sim-purity", "std::function in sim",
                   one("src/sim/queue.hh",
                       "std::function<void()> cb_;\n"),
                   {"std-function-in-sim"}});
    out.push_back({"sim-purity", "std::function outside sim ok",
                   one("src/os/memory.hh",
                       "std::function<bool(std::int64_t)> hook_;\n"),
                   {}});
    out.push_back({"sim-purity", "unordered iteration in scheduling fn",
                   one("src/core/gateway.cc",
                       "std::unordered_map<int, int> pending_;\n"
                       "void pump() {\n"
                       "    for (auto &kv : pending_)\n"
                       "        sim.schedule(t, kv.second);\n"
                       "}\n"),
                   {"unordered-iteration"}});
    out.push_back({"sim-purity",
                   "unordered iteration one hop from scheduling",
                   one("src/core/gateway.cc",
                       "std::unordered_set<int> ready_;\n"
                       "void kick(int id) { sim.schedule(t, id); }\n"
                       "void pumpAll() {\n"
                       "    for (int id : ready_)\n"
                       "        kick(id);\n"
                       "}\n"),
                   {"unordered-iteration"}});
    out.push_back({"sim-purity",
                   "unordered iteration without scheduling ok",
                   one("src/core/gateway.cc",
                       "std::unordered_map<int, int> stats_;\n"
                       "int total() {\n"
                       "    int n = 0;\n"
                       "    for (auto &kv : stats_)\n"
                       "        n += kv.second;\n"
                       "    return n;\n"
                       "}\n"),
                   {}});
    out.push_back({"sim-purity",
                   "ordered iteration in scheduling fn ok",
                   one("src/core/gateway.cc",
                       "std::map<int, int> pending_;\n"
                       "void pump() {\n"
                       "    for (auto &kv : pending_)\n"
                       "        sim.schedule(t, kv.second);\n"
                       "}\n"),
                   {}});
    out.push_back({"sim-purity", "unordered begin() in scheduling fn",
                   one("src/core/gateway.cc",
                       "std::unordered_map<int, int> pending_;\n"
                       "void pump() {\n"
                       "    auto it = pending_.begin();\n"
                       "    sim.delay(t);\n"
                       "}\n"),
                   {"unordered-iteration"}});

    // -----------------------------------------------------------------
    // lifetime
    // -----------------------------------------------------------------
    out.push_back({"lifetime", "by-ref capture into schedule",
                   one("src/core/gateway.cc",
                       "void pump() {\n"
                       "    sim.schedule(t, [&] { step(); });\n"
                       "}\n"),
                   {"ref-capture-escape"}});
    out.push_back({"lifetime", "by-ref named capture into spawn",
                   one("src/core/gateway.cc",
                       "void pump() {\n"
                       "    sim.spawn([this, &req] { go(req); });\n"
                       "}\n"),
                   {"ref-capture-escape"}});
    out.push_back({"lifetime", "value captures ok",
                   one("src/core/gateway.cc",
                       "void pump() {\n"
                       "    sim.schedule(t, [this] { step(); });\n"
                       "    sim.scheduleBatch(evs, [id] { go(id); });\n"
                       "}\n"),
                   {}});
    out.push_back({"lifetime", "arena pointer used after reset",
                   one("src/obs/trace.cc",
                       "void tick(sim::Arena &arena) {\n"
                       "    Rec *r = arena.create<Rec>(1);\n"
                       "    use(r);\n"
                       "    arena.reset();\n"
                       "    use(r->id);\n"
                       "}\n"),
                   {"arena-escape"}});
    out.push_back({"lifetime", "copy-out-before-reset clean",
                   one("src/obs/trace.cc",
                       "void tick(sim::Arena &arena, "
                       "obs::SpanBuffer &buf) {\n"
                       "    Rec *r = arena.create<Rec>(1);\n"
                       "    use(r);\n"
                       "    std::vector<SpanRecord> copy = "
                       "buf.snapshot();\n"
                       "    arena.reset();\n"
                       "    exportAll(copy);\n"
                       "}\n"),
                   {}});
    out.push_back({"lifetime", "rebinding after reset ok",
                   one("src/obs/trace.cc",
                       "void tick(sim::Arena &arena) {\n"
                       "    Rec *r = arena.create<Rec>(1);\n"
                       "    use(r);\n"
                       "    arena.reset();\n"
                       "    r = arena.create<Rec>(2);\n"
                       "    use(r);\n"
                       "}\n"),
                   {}});
    out.push_back({"lifetime", "buffer ref across dropOldest",
                   one("src/obs/trace.cc",
                       "void drain(obs::SpanBuffer &buf) {\n"
                       "    const SpanRecord &rec = buf.front();\n"
                       "    buf.dropOldest(1);\n"
                       "    use(rec.spanId);\n"
                       "}\n"),
                   {"arena-escape"}});
    out.push_back({"lifetime", "record copied from buffer ok",
                   one("src/obs/trace.cc",
                       "void drain(obs::SpanBuffer &buf) {\n"
                       "    SpanRecord rec = buf.front();\n"
                       "    buf.dropOldest(1);\n"
                       "    use(rec.spanId);\n"
                       "}\n"),
                   {}});
    out.push_back({"lifetime", "data() of temporary snapshot",
                   one("src/obs/export.cc",
                       "void dump(const obs::SpanBuffer &buf) {\n"
                       "    const SpanRecord *p = "
                       "buf.snapshot().data();\n"
                       "    write(p);\n"
                       "}\n"),
                   {"view-of-temporary"}});
    out.push_back({"lifetime", "named snapshot then data() ok",
                   one("src/obs/export.cc",
                       "void dump(const obs::SpanBuffer &buf) {\n"
                       "    auto snap = buf.snapshot();\n"
                       "    write(snap.data());\n"
                       "}\n"),
                   {}});
    out.push_back({"lifetime", "span over local returned",
                   one("src/core/scheduler.cc",
                       "std::span<const int> ids() {\n"
                       "    std::vector<int> v = collect();\n"
                       "    return std::span<const int>(v.data(), "
                       "v.size());\n"
                       "}\n"),
                   {"view-of-temporary"}});
    out.push_back({"lifetime", "span over member ok",
                   one("src/core/scheduler.cc",
                       "std::span<const int> ids() {\n"
                       "    return std::span<const int>(ids_.data(), "
                       "ids_.size());\n"
                       "}\n"),
                   {}});

    // -----------------------------------------------------------------
    // error-discard
    // -----------------------------------------------------------------
    out.push_back({"error-discard", "bare call drops Status",
                   one("src/core/recovery.cc",
                       "core::Status doThing(int x);\n"
                       "void caller() {\n"
                       "    doThing(1);\n"
                       "}\n"),
                   {"error-discard"}});
    out.push_back({"error-discard", "member call drops Expected",
                   one("src/xpu/client.cc",
                       "struct Shim { core::Expected<int> "
                       "xfifoCreate(int flags); };\n"
                       "void f(Shim *shim) {\n"
                       "    shim->xfifoCreate(3);\n"
                       "}\n"),
                   {"error-discard"}});
    out.push_back({"error-discard", "co_await drops Status",
                   one("src/xpu/shim.cc",
                       "sim::Task<core::Status> grantCap(int pid);\n"
                       "sim::Task<void> f() {\n"
                       "    co_await grantCap(1);\n"
                       "}\n"),
                   {"error-discard"}});
    out.push_back({"error-discard", "handled / void-cast ok",
                   one("src/core/recovery.cc",
                       "core::Status doThing(int x);\n"
                       "void caller() {\n"
                       "    core::Status st = doThing(1);\n"
                       "    if (!st.ok())\n"
                       "        panic();\n"
                       "    (void)doThing(2);\n"
                       "    return doThing(3).ok();\n"
                       "}\n"),
                   {}});
    out.push_back({"error-discard", "suppression ok",
                   one("src/core/recovery.cc",
                       "core::Status doThing(int x);\n"
                       "void caller() {\n"
                       "    doThing(1); // lint:allow(error-discard)\n"
                       "}\n"),
                   {}});
    out.push_back(
        {"error-discard", "harvest crosses files",
         {{"src/xpu/shim.hh",
           "sim::Task<core::Expected<ObjId>> xfifoOpen(XpuPid p);\n"},
          {"src/xpu/client.cc",
           "void f(Shim &s) {\n"
           "    s.xfifoOpen(pid);\n"
           "}\n"}},
         {"error-discard"}});
    // Name-based matching cannot attribute a call to a receiver, so a
    // name with both outcome and non-outcome declarations (runc's
    // Status-returning invoke vs runf's Task<> invoke) is dropped
    // from the callable table instead of flagging every bare call.
    out.push_back(
        {"error-discard", "ambiguous overload not flagged",
         {{"src/sandbox/runc.hh",
           "sim::Task<core::Status> invoke(const std::string &id);\n"},
          {"src/sandbox/runf.hh",
           "sim::Task<> invoke(const std::string &id);\n"},
          {"src/core/dag.cc",
           "sim::Task<> f(Runf &runf) {\n"
           "    co_await runf.invoke(\"fn\");\n"
           "}\n"}},
         {}});

    // -----------------------------------------------------------------
    // layering
    // -----------------------------------------------------------------
    out.push_back({"layering", "sim includes hw (upward)",
                   one("src/sim/bad.hh", "#include \"hw/pu.hh\"\n"),
                   {"layering"}});
    out.push_back({"layering", "core includes downward ok",
                   one("src/core/x.hh",
                       "#include \"sandbox/runc.hh\"\n"
                       "#include \"sim/time.hh\"\n"
                       "#include <vector>\n"),
                   {}});
    out.push_back({"layering", "exempt vocabulary headers ok",
                   one("src/hw/fpga2.hh",
                       "#include \"core/status.hh\"\n"
                       "#include \"fault/state.hh\"\n"),
                   {}});
    out.push_back({"layering", "obs includes core (upward)",
                   one("src/obs/x.hh",
                       "#include \"core/gateway.hh\"\n"),
                   {"layering"}});
    out.push_back({"layering", "commented include ignored",
                   one("src/sim/y.hh",
                       "// #include \"hw/pu.hh\"\n"),
                   {}});
    out.push_back({"layering", "suppressed upward include",
                   one("src/hw/y.hh",
                       "#include \"os/kernel.hh\" // "
                       "lint:allow(layering)\n"),
                   {}});

    // -----------------------------------------------------------------
    // engine behaviors (all packs active)
    // -----------------------------------------------------------------
    out.push_back(
        {"engine", "duplicate findings dedupe to one",
         one("src/core/gateway.cc",
             "std::unordered_map<int, int> pending_;\n"
             "void pump() {\n"
             "    use(pending_.begin(), pending_.end());\n"
             "    sim.delay(t);\n"
             "}\n"),
         // .begin and .end on one line used to print twice (PR 2);
         // the engine dedupes to a single finding.
         {"unordered-iteration"}});
    out.push_back({"engine", "lint:allow works for sim-purity too",
                   one("src/os/kernel.cc",
                       "// lint:allow(wallclock)\n"
                       "auto t = std::chrono::steady_clock::now();\n"),
                   {}});
    return out;
}

} // namespace

int
selfTest(const std::string &pack)
{
    const Registry registry = makeRegistry();
    int failures = 0;
    std::size_t ran = 0;
    for (const auto &fx : fixtures()) {
        if (!pack.empty() && pack != fx.pack)
            continue;
        ++ran;
        std::set<std::string> packs;
        if (std::string(fx.pack) != "engine")
            packs.insert(fx.pack);
        const auto got = runOnBuffers(registry, packs, fx.files);
        std::vector<std::string> rules;
        rules.reserve(got.size());
        for (const auto &v : got)
            rules.push_back(v.rule);
        if (rules != fx.expect) {
            ++failures;
            std::fprintf(stderr, "FAIL [%s] %s: expected [", fx.pack,
                         fx.name);
            for (const auto &r : fx.expect)
                std::fprintf(stderr, " %s", r.c_str());
            std::fprintf(stderr, " ] got [");
            for (const auto &v : got)
                std::fprintf(stderr, " %s(%s:%zu)", v.rule.c_str(),
                             v.path.c_str(), v.line);
            std::fprintf(stderr, " ]\n");
        }
    }
    std::printf("molecule-lint --self-test%s%s: %zu fixture(s), %d "
                "failure(s)\n",
                pack.empty() ? "" : " ", pack.c_str(), ran, failures);
    return failures == 0 && ran > 0 ? 0 : 1;
}

} // namespace molecule::lint
