/**
 * @file
 * molecule-lint rule-registry engine.
 *
 * A Rule is a named detector belonging to a pack; the engine prepares
 * every file once (tools/lint/source.hh), precomputes project-wide
 * tables (the module include graph, the set of callables returning
 * core::Status / core::Expected), runs each in-scope rule over each
 * file, dedupes the findings, applies the baseline, and renders
 * human / JSON / SARIF output.
 *
 * Dedupe is structural: findings are keyed by (path, line, rule,
 * message) after path canonicalization, so a violation that is
 * reachable through several include paths — or a file named twice on
 * the command line — reports exactly once. (PR 2's lint_determinism
 * could print the same transitive-hop finding N times; the fix lives
 * here and the old tool is now an alias over this engine.)
 *
 * Suppression: `lint:allow(<rule>)` on the same or preceding line;
 * sim-purity rules additionally honor the legacy `det:allow(<rule>)`.
 * Baseline: `--baseline file` filters known findings (rule + path +
 * message fingerprint, line-insensitive so unrelated edits do not
 * invalidate entries); `--write-baseline file` records the current
 * state for ratcheting.
 */

#ifndef MOLECULE_TOOLS_LINT_ENGINE_HH
#define MOLECULE_TOOLS_LINT_ENGINE_HH

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "source.hh"

namespace molecule::lint {

/** One lint finding. */
struct Finding
{
    std::string path;
    std::size_t line = 0;
    std::string rule;
    std::string pack;
    std::string message;
};

/** Stable FNV-1a over the finding message (baseline fingerprint). */
std::uint64_t fingerprint(const std::string &text);

/**
 * Project-wide tables available to every rule. Built once per run
 * from all scanned files, before any rule fires.
 */
struct Project
{
    /**
     * Names of callables whose (possibly Task-wrapped) return type is
     * core::Status or core::Expected<T>, harvested from declarations
     * and definitions across the scanned tree.
     */
    std::set<std::string> outcomeCallables;

    /**
     * Module layering ranks (see DESIGN.md §7): a file under
     * src/<mod>/ may include "other/..." only when
     * rank[other] <= rank[mod].
     */
    std::map<std::string, int> moduleRank;

    /** Cross-cutting vocabulary headers exempt from the layering wall. */
    std::set<std::string> exemptHeaders;
};

/** Emits findings for one prepared file. */
class Rule
{
  public:
    Rule(std::string pack, std::string id, std::string summary)
        : pack_(std::move(pack)), id_(std::move(id)),
          summary_(std::move(summary))
    {}

    virtual ~Rule() = default;

    const std::string &pack() const { return pack_; }

    const std::string &id() const { return id_; }

    const std::string &summary() const { return summary_; }

    /** Whether @p path is in this rule's scope (paths use '/'). */
    virtual bool inScope(const std::string &path) const = 0;

    virtual void run(const Project &project, const SourceFile &file,
                     std::vector<Finding> &out) const = 0;

  protected:
    /** Emit unless a lint:allow / (legacy) det:allow marker covers it. */
    void
    emit(const SourceFile &f, std::size_t offset, std::string message,
         std::vector<Finding> &out, bool honorDetAllow = false) const
    {
        const std::size_t line = lineOf(f, offset);
        if (suppressed(f, line, id_, honorDetAllow))
            return;
        out.push_back({f.path, line, id_, pack_, std::move(message)});
    }

  private:
    std::string pack_;
    std::string id_;
    std::string summary_;
};

/** Ordered rule registry; packs register themselves at startup. */
class Registry
{
  public:
    void add(std::unique_ptr<Rule> rule);

    const std::vector<std::unique_ptr<Rule>> &rules() const
    {
        return rules_;
    }

    /** Distinct pack names in registration order. */
    std::vector<std::string> packs() const;

  private:
    std::vector<std::unique_ptr<Rule>> rules_;
};

/** Build the full registry: all four packs in canonical order. */
Registry makeRegistry();

enum class Format { Human, Json, Sarif };

struct Options
{
    /** Files or directories to scan. */
    std::vector<std::string> roots;
    /** Restrict to these packs (empty = all). */
    std::set<std::string> packs;
    Format format = Format::Human;
    /** Output file ("" = stdout). */
    std::string output;
    std::string baseline;      ///< read+filter when non-empty
    std::string writeBaseline; ///< write current findings when non-empty
    /** Also fail (exit 1) on stale baseline entries. */
    bool strict = false;
};

struct Result
{
    std::vector<Finding> findings;  ///< post-dedupe, post-baseline
    std::size_t filesScanned = 0;
    std::size_t suppressedByBaseline = 0;
    std::size_t staleBaseline = 0;
    int exitCode = 0;
};

/**
 * Load @p opts.roots (recursively; .hh/.cc/.hpp/.cpp/.h, bench/ and
 * lint fixture trees excluded unless a root points inside them),
 * build the Project tables, run the registry, dedupe, and apply the
 * baseline. Rendering is left to the caller (render()).
 */
Result run(const Registry &registry, const Options &opts);

/** Run rules over in-memory files (fixtures / self-test). */
std::vector<Finding> runOnBuffers(
    const Registry &registry, const std::set<std::string> &packs,
    const std::vector<std::pair<std::string, std::string>> &files);

/** Render @p result to opts.output (or stdout) in opts.format. */
void render(const Registry &registry, const Options &opts,
            const Result &result);

/** Self-test fixture suites; @p pack empty = all packs. 0 on pass. */
int selfTest(const std::string &pack);

} // namespace molecule::lint

#endif // MOLECULE_TOOLS_LINT_ENGINE_HH
