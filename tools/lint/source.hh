/**
 * @file
 * AST-lite source model shared by every molecule-lint rule pack.
 *
 * The scanning core that started life inside tools/lint_determinism.cc
 * (PR 2), extracted so all four rule packs — sim-purity, lifetime,
 * error-discard, layering — work from one prepared view of a file:
 *
 *  - comment- and string-stripped text of identical length/line
 *    structure (so offsets map 1:1 between raw and code views);
 *  - line-start table for offset -> line mapping;
 *  - suppression markers: `lint:allow(<rule>)` (engine-wide) and the
 *    legacy `det:allow(<rule>)` (honored by the sim-purity pack so PR 2
 *    suppressions keep working verbatim);
 *  - `#include "..."` / `#include <...>` directives;
 *  - brace-matched function bodies (AST-lite: a '{' whose backward
 *    context looks like `name(args) [const|noexcept|-> T]`).
 *
 * Everything here is pure string analysis: no libclang, no build
 * dependency, deterministic by construction.
 */

#ifndef MOLECULE_TOOLS_LINT_SOURCE_HH
#define MOLECULE_TOOLS_LINT_SOURCE_HH

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace molecule::lint {

/** One `#include` directive. */
struct Include
{
    /** Byte offset of the '#' in the file. */
    std::size_t offset = 0;
    /** The include path as written ("hw/pu.hh", "vector", ...). */
    std::string target;
    /** True for `#include <...>` (system/library headers). */
    bool angled = false;
};

/** A source file prepared for scanning. */
struct SourceFile
{
    /** Path as reported in findings (normalized, '/' separators). */
    std::string path;
    /** Raw text (used for suppression comments and include paths). */
    std::string raw;
    /** Same text with comments and string/char literals blanked. */
    std::string code;
    /** Byte offset of the start of each line. */
    std::vector<std::size_t> lineStarts;
    /** Lines carrying lint:allow(<rule>) markers. */
    std::multimap<std::size_t, std::string> allows;
    /** Lines carrying legacy det:allow(<rule>) markers. */
    std::multimap<std::size_t, std::string> detAllows;
    /** Parsed include directives, in file order. */
    std::vector<Include> includes;
};

/** 1-based line number of @p offset. */
std::size_t lineOf(const SourceFile &f, std::size_t offset);

/** Blank comments and string/char literals, preserving length/lines. */
std::string stripCommentsAndStrings(const std::string &in);

/** Build the full prepared view of @p raw. */
SourceFile prepare(std::string path, std::string raw);

/**
 * True when an `allow` marker for @p rule (or "all") sits on the same
 * or the preceding line. @p legacyToo also accepts det:allow markers
 * (the sim-purity pack keeps PR 2 suppressions intact).
 */
bool suppressed(const SourceFile &f, std::size_t line,
                const std::string &rule, bool legacyToo = false);

bool identChar(char c);

/** Offsets of whole-word occurrences of @p word in @p code. */
std::vector<std::size_t> findWord(const std::string &code,
                                  const std::string &word);

/**
 * First depth-0 template argument after the '<' at @p open; empty when
 * the '<' turns out to be a comparison operator.
 */
std::string firstTemplateArg(const std::string &code, std::size_t open);

/**
 * Offset just past the ')' matching the '(' at @p open; npos when the
 * list never closes.
 */
std::size_t matchParen(const std::string &code, std::size_t open);

/** A brace-matched function (or lambda) body. */
struct Function
{
    std::string name;
    std::size_t bodyBegin = 0; ///< offset just after '{'
    std::size_t bodyEnd = 0;   ///< offset of matching '}'
};

/**
 * AST-lite function extraction. Nested lambdas stay inside the
 * enclosing function's range, which is what the scope-sensitive rules
 * want.
 */
std::vector<Function> extractFunctions(const std::string &code);

/** Does @p fn's body call one of @p names (word followed by '(')? */
bool callsAnyOf(const std::string &code, const Function &fn,
                const std::set<std::string> &names);

/** Names of variables/members declared as unordered containers. */
std::set<std::string> unorderedVarNames(const std::string &code);

} // namespace molecule::lint

#endif // MOLECULE_TOOLS_LINT_SOURCE_HH
