/**
 * @file
 * lifetime pack: dangling-reference hazards specific to this codebase.
 *
 *  - ref-capture-escape: a lambda with a by-reference capture handed
 *    to schedule()/scheduleBatch()/spawn(). The callback runs at a
 *    later simulated instant, long after the capturing frame returned;
 *    DES callbacks capture by value (or `this`) only.
 *
 *  - arena-escape: a pointer obtained from sim::Arena (create /
 *    allocate / allocateArray) or a reference into obs::SpanBuffer
 *    (front / back / operator[]) used after the owning object's
 *    reset()/clear()/dropOldest() — the copy-out-before-reset rule of
 *    DESIGN.md §4d. Scanning is per function body, source-object
 *    matched; a rebinding assignment after the reset ends the hazard.
 *
 *  - view-of-temporary: binding (or returning) storage of a
 *    temporary: `... = buf.snapshot().data()`, `return
 *    std::span(local)` where `local` is a function-local container,
 *    or `= make().span()`-style chains through an rvalue.
 *
 * All three scan src/ only: tests drive the simulator synchronously
 * inside one frame, where by-reference captures are legitimate.
 */

#include <cctype>

#include "engine.hh"

namespace molecule::lint {

namespace {

bool
srcScope(const std::string &path)
{
    return path.find("src/") != std::string::npos ||
           path.rfind("src/", 0) == 0;
}

/** Walk back from @p pos to just past the previous statement boundary. */
std::size_t
statementStart(const std::string &code, std::size_t pos)
{
    std::size_t b = pos;
    while (b > 0) {
        const char c = code[b - 1];
        if (c == ';' || c == '{' || c == '}')
            break;
        --b;
    }
    return b;
}

/** Identifier ending at @p end (exclusive); empty when none. */
std::string
identBefore(const std::string &code, std::size_t end)
{
    std::size_t e = end;
    while (e > 0 &&
           std::isspace(static_cast<unsigned char>(code[e - 1])))
        --e;
    std::size_t b = e;
    while (b > 0 && identChar(code[b - 1]))
        --b;
    return code.substr(b, e - b);
}

// ---------------------------------------------------------------------
// ref-capture-escape
// ---------------------------------------------------------------------

class RefCaptureEscapeRule final : public Rule
{
  public:
    RefCaptureEscapeRule()
        : Rule("lifetime", "ref-capture-escape",
               "by-reference lambda capture escaping into a scheduled "
               "callback")
    {}

    bool
    inScope(const std::string &path) const override
    {
        return srcScope(path);
    }

    void
    run(const Project &, const SourceFile &f,
        std::vector<Finding> &out) const override
    {
        static const char *kSinks[] = {"schedule", "scheduleBatch",
                                       "spawn"};
        const std::string &code = f.code;
        for (const char *sink : kSinks) {
            for (std::size_t pos : findWord(code, sink)) {
                std::size_t open = pos + std::string(sink).size();
                while (open < code.size() &&
                       std::isspace(
                           static_cast<unsigned char>(code[open])))
                    ++open;
                if (open >= code.size() || code[open] != '(')
                    continue;
                const std::size_t close = matchParen(code, open);
                if (close == std::string::npos)
                    continue;
                scanArgs(f, code, open, close, sink, out);
            }
        }
    }

  private:
    void
    scanArgs(const SourceFile &f, const std::string &code,
             std::size_t open, std::size_t close, const char *sink,
             std::vector<Finding> &out) const
    {
        for (std::size_t i = open; i + 1 < close; ++i) {
            if (code[i] != '[')
                continue;
            // Lambda intro, not a subscript: '[' preceded (modulo
            // whitespace) by '(', ',', '{', or another intro.
            std::size_t p = i;
            while (p > 0 && std::isspace(static_cast<unsigned char>(
                                code[p - 1])))
                --p;
            if (p == 0 ||
                (code[p - 1] != '(' && code[p - 1] != ',' &&
                 code[p - 1] != '{'))
                continue;
            const std::size_t end = code.find(']', i);
            if (end == std::string::npos || end > close)
                continue;
            const std::string captures =
                code.substr(i + 1, end - i - 1);
            if (captures.find('&') == std::string::npos)
                continue;
            emit(f, i,
                 "by-reference capture [" + captures +
                     "] passed to " + sink +
                     "(): the callback outlives this frame; capture "
                     "by value (or `this`)",
                 out);
        }
    }
};

// ---------------------------------------------------------------------
// arena-escape
// ---------------------------------------------------------------------

class ArenaEscapeRule final : public Rule
{
  public:
    ArenaEscapeRule()
        : Rule("lifetime", "arena-escape",
               "arena/SpanBuffer storage used across reset (copy out "
               "first)")
    {}

    bool
    inScope(const std::string &path) const override
    {
        return srcScope(path);
    }

    void
    run(const Project &, const SourceFile &f,
        std::vector<Finding> &out) const override
    {
        for (const Function &fn : extractFunctions(f.code)) {
            const std::string body = f.code.substr(
                fn.bodyBegin, fn.bodyEnd - fn.bodyBegin);
            checkBody(f, fn, body, out);
        }
    }

  private:
    struct Binding
    {
        std::string var;    ///< the pointer/reference variable
        std::string source; ///< the arena / buffer it came from
        std::size_t offset; ///< position of the binding in the body
        bool needsRef;      ///< only hazardous when bound by ref/ptr
    };

    void
    checkBody(const SourceFile &f, const Function &fn,
              const std::string &body,
              std::vector<Finding> &out) const
    {
        static const char *kAllocs[] = {".create<", ".allocate(",
                                        ".allocateArray<"};
        static const char *kViews[] = {".front()", ".back()"};
        static const char *kResets[] = {".reset()", ".clear()",
                                        ".dropOldest("};

        std::vector<Binding> bindings;
        auto collect = [&](const char *pat, bool needsRef) {
            std::size_t q = 0;
            const std::string p = pat;
            while ((q = body.find(p, q)) != std::string::npos) {
                const std::string source = identBefore(body, q);
                // The binding target: `T *var = src.create<...>` —
                // identifier just before the '=' of this statement.
                const std::size_t stmt = statementStart(body, q);
                const std::size_t eq = body.find('=', stmt);
                std::string var;
                if (eq != std::string::npos && eq < q)
                    var = identBefore(body, eq);
                if (!var.empty() && !source.empty()) {
                    bool byRef = true;
                    if (needsRef) {
                        const std::string decl =
                            body.substr(stmt, eq - stmt);
                        byRef = decl.find('&') != std::string::npos ||
                                decl.find('*') != std::string::npos;
                    }
                    if (byRef)
                        bindings.push_back(
                            {var, source, q, needsRef});
                }
                q += p.size();
            }
        };
        for (const char *pat : kAllocs)
            collect(pat, /*needsRef=*/false);
        for (const char *pat : kViews)
            collect(pat, /*needsRef=*/true);
        if (bindings.empty())
            return;

        for (const char *pat : kResets) {
            const std::string p = pat;
            std::size_t q = 0;
            while ((q = body.find(p, q)) != std::string::npos) {
                const std::string reset = identBefore(body, q);
                for (const Binding &b : bindings) {
                    if (b.source != reset || b.offset >= q)
                        continue;
                    flagUseAfter(f, fn, body, b, q + p.size(), pat,
                                 out);
                }
                q += p.size();
            }
        }
    }

    void
    flagUseAfter(const SourceFile &f, const Function &fn,
                 const std::string &body, const Binding &b,
                 std::size_t after, const char *reset,
                 std::vector<Finding> &out) const
    {
        for (std::size_t use : findWord(body, b.var)) {
            if (use < after)
                continue;
            // A rebinding assignment refreshes the pointer: stop.
            std::size_t k = use + b.var.size();
            while (k < body.size() &&
                   std::isspace(static_cast<unsigned char>(body[k])))
                ++k;
            if (k < body.size() && body[k] == '=' &&
                (k + 1 >= body.size() || body[k + 1] != '='))
                return;
            emit(f, fn.bodyBegin + use,
                 "'" + b.var + "' (from " + b.source +
                     ") used after " + b.source + reset +
                     ": storage was invalidated; copy out before the "
                     "reset (DESIGN.md §4d)",
                 out);
            return; // one finding per binding/reset pair
        }
    }
};

// ---------------------------------------------------------------------
// view-of-temporary
// ---------------------------------------------------------------------

class ViewOfTemporaryRule final : public Rule
{
  public:
    ViewOfTemporaryRule()
        : Rule("lifetime", "view-of-temporary",
               "span / data() view bound to a temporary's storage")
    {}

    bool
    inScope(const std::string &path) const override
    {
        return srcScope(path);
    }

    void
    run(const Project &, const SourceFile &f,
        std::vector<Finding> &out) const override
    {
        checkSnapshotChains(f, out);
        checkSpanOfLocal(f, out);
    }

  private:
    /** `= x.snapshot().data()` / `return make().span()` — the owner
     * dies at the end of the full expression. */
    void
    checkSnapshotChains(const SourceFile &f,
                        std::vector<Finding> &out) const
    {
        static const char *kChains[] = {
            ".snapshot().data()", ".snapshot().begin()",
            ".snapshot().front()", ").span()", "}.span()"};
        const std::string &code = f.code;
        for (const char *pat : kChains) {
            std::size_t q = 0;
            const std::string p = pat;
            while ((q = code.find(p, q)) != std::string::npos) {
                if (bindsResult(code, q)) {
                    emit(f, q,
                         std::string("view chained off a temporary (") +
                             pat +
                             "): the owner dies at the end of the "
                             "full expression; name the owner first",
                         out);
                }
                q += p.size();
            }
        }
    }

    /** True when the chain at @p pos is bound (`=`) or returned. */
    bool
    bindsResult(const std::string &code, std::size_t pos) const
    {
        const std::size_t stmt = statementStart(code, pos);
        const std::string prefix = code.substr(stmt, pos - stmt);
        if (prefix.find('=') != std::string::npos)
            return prefix.rfind("==") == std::string::npos;
        for (std::size_t w : findWord(prefix, "return"))
            return w < prefix.size();
        return false;
    }

    /** `return std::span(local)` where `local` is a function-local
     * container. */
    void
    checkSpanOfLocal(const SourceFile &f,
                     std::vector<Finding> &out) const
    {
        for (const Function &fn : extractFunctions(f.code)) {
            const std::string body = f.code.substr(
                fn.bodyBegin, fn.bodyEnd - fn.bodyBegin);
            const std::set<std::string> locals = localContainers(body);
            if (locals.empty())
                continue;
            std::size_t q = 0;
            while ((q = body.find("return", q)) != std::string::npos) {
                const std::size_t end = body.find(';', q);
                if (end == std::string::npos)
                    break;
                const std::string expr =
                    body.substr(q + 6, end - q - 6);
                if (findWord(expr, "span").empty()) {
                    q = end;
                    continue;
                }
                for (const auto &local : locals) {
                    if (!findWord(expr, local).empty()) {
                        emit(f, fn.bodyBegin + q,
                             "returning a span over local '" + local +
                                 "' from '" + fn.name +
                                 "': the storage dies with the frame",
                             out);
                        break;
                    }
                }
                q = end;
            }
        }
    }

    std::set<std::string>
    localContainers(const std::string &body) const
    {
        std::set<std::string> out;
        for (const char *cont : {"vector", "array", "string"}) {
            for (std::size_t pos : findWord(body, cont)) {
                std::size_t k = pos + std::string(cont).size();
                if (k < body.size() && body[k] == '<') {
                    int depth = 0;
                    for (; k < body.size(); ++k) {
                        if (body[k] == '<')
                            ++depth;
                        else if (body[k] == '>' && --depth == 0) {
                            ++k;
                            break;
                        }
                    }
                }
                while (k < body.size() &&
                       std::isspace(
                           static_cast<unsigned char>(body[k])))
                    ++k;
                std::size_t e = k;
                while (e < body.size() && identChar(body[e]))
                    ++e;
                if (e > k)
                    out.insert(body.substr(k, e - k));
            }
        }
        return out;
    }
};

} // namespace

void
registerLifetime(Registry &registry)
{
    registry.add(std::make_unique<RefCaptureEscapeRule>());
    registry.add(std::make_unique<ArenaEscapeRule>());
    registry.add(std::make_unique<ViewOfTemporaryRule>());
}

} // namespace molecule::lint
