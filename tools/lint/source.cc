#include "source.hh"

#include <algorithm>
#include <cctype>
#include <cstring>

namespace molecule::lint {

std::size_t
lineOf(const SourceFile &f, std::size_t offset)
{
    auto it = std::upper_bound(f.lineStarts.begin(), f.lineStarts.end(),
                               offset);
    return std::size_t(it - f.lineStarts.begin());
}

std::string
stripCommentsAndStrings(const std::string &in)
{
    std::string out = in;
    enum class St { Code, Line, Block, Str, Chr } st = St::Code;
    for (std::size_t i = 0; i < in.size(); ++i) {
        const char c = in[i];
        const char n = i + 1 < in.size() ? in[i + 1] : '\0';
        switch (st) {
          case St::Code:
            if (c == '/' && n == '/') {
                st = St::Line;
                out[i] = ' ';
            } else if (c == '/' && n == '*') {
                st = St::Block;
                out[i] = ' ';
            } else if (c == '"') {
                st = St::Str;
            } else if (c == '\'') {
                st = St::Chr;
            }
            break;
          case St::Line:
            if (c == '\n')
                st = St::Code;
            else
                out[i] = ' ';
            break;
          case St::Block:
            if (c == '*' && n == '/') {
                out[i] = ' ';
                out[i + 1] = ' ';
                ++i;
                st = St::Code;
            } else if (c != '\n') {
                out[i] = ' ';
            }
            break;
          case St::Str:
            if (c == '\\') {
                out[i] = ' ';
                if (n != '\n')
                    out[i + 1] = ' ';
                ++i;
            } else if (c == '"') {
                st = St::Code;
            } else if (c != '\n') {
                out[i] = ' ';
            }
            break;
          case St::Chr:
            if (c == '\\') {
                out[i] = ' ';
                if (n != '\n')
                    out[i + 1] = ' ';
                ++i;
            } else if (c == '\'') {
                st = St::Code;
            } else {
                out[i] = ' ';
            }
            break;
        }
    }
    return out;
}

namespace {

void
collectAllows(const std::string &raw, const SourceFile &f,
              const std::string &tag,
              std::multimap<std::size_t, std::string> &out)
{
    std::size_t pos = 0;
    while ((pos = raw.find(tag, pos)) != std::string::npos) {
        const std::size_t open = pos + tag.size();
        const std::size_t close = raw.find(')', open);
        if (close != std::string::npos)
            out.emplace(lineOf(f, pos), raw.substr(open, close - open));
        pos = open;
    }
}

void
collectIncludes(SourceFile &f)
{
    // Walk the *stripped* view so commented-out directives do not
    // count, but read the include path from the raw text (string
    // literals are blanked in the stripped view).
    const std::string &code = f.code;
    for (std::size_t ls = 0; ls < f.lineStarts.size(); ++ls) {
        std::size_t i = f.lineStarts[ls];
        while (i < code.size() &&
               (code[i] == ' ' || code[i] == '\t'))
            ++i;
        if (i >= code.size() || code[i] != '#')
            continue;
        const std::size_t hash = i;
        ++i;
        while (i < code.size() &&
               (code[i] == ' ' || code[i] == '\t'))
            ++i;
        if (code.compare(i, 7, "include") != 0)
            continue;
        i += 7;
        while (i < code.size() &&
               (code[i] == ' ' || code[i] == '\t'))
            ++i;
        if (i >= f.raw.size())
            continue;
        const char open = f.raw[i];
        if (open != '"' && open != '<')
            continue;
        const char close = open == '"' ? '"' : '>';
        const std::size_t end = f.raw.find(close, i + 1);
        if (end == std::string::npos)
            continue;
        f.includes.push_back(
            {hash, f.raw.substr(i + 1, end - i - 1), open == '<'});
    }
}

} // namespace

SourceFile
prepare(std::string path, std::string raw)
{
    SourceFile f;
    f.path = std::move(path);
    std::replace(f.path.begin(), f.path.end(), '\\', '/');
    f.raw = std::move(raw);
    f.code = stripCommentsAndStrings(f.raw);
    f.lineStarts.push_back(0);
    for (std::size_t i = 0; i < f.raw.size(); ++i) {
        if (f.raw[i] == '\n')
            f.lineStarts.push_back(i + 1);
    }
    collectAllows(f.raw, f, "lint:allow(", f.allows);
    collectAllows(f.raw, f, "det:allow(", f.detAllows);
    collectIncludes(f);
    return f;
}

bool
suppressed(const SourceFile &f, std::size_t line, const std::string &rule,
           bool legacyToo)
{
    for (std::size_t l : {line, line > 1 ? line - 1 : line}) {
        for (const auto *allows : {&f.allows, legacyToo ? &f.detAllows
                                                        : nullptr}) {
            if (!allows)
                continue;
            auto [lo, hi] = allows->equal_range(l);
            for (auto it = lo; it != hi; ++it) {
                if (it->second == rule || it->second == "all")
                    return true;
            }
        }
    }
    return false;
}

bool
identChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

std::vector<std::size_t>
findWord(const std::string &code, const std::string &word)
{
    std::vector<std::size_t> out;
    std::size_t pos = 0;
    while ((pos = code.find(word, pos)) != std::string::npos) {
        const bool leftOk = pos == 0 || !identChar(code[pos - 1]);
        const std::size_t end = pos + word.size();
        const bool rightOk = end >= code.size() || !identChar(code[end]);
        if (leftOk && rightOk)
            out.push_back(pos);
        pos = end;
    }
    return out;
}

std::string
firstTemplateArg(const std::string &code, std::size_t open)
{
    int depth = 0;
    std::size_t i = open;
    for (; i < code.size(); ++i) {
        const char c = code[i];
        if (c == '<') {
            ++depth;
        } else if (c == '>') {
            if (--depth == 0)
                break;
        } else if (c == ',' && depth == 1) {
            break;
        } else if (c == ';' || c == '{') {
            break; // not a template after all (e.g. operator<)
        }
    }
    if (i >= code.size())
        return {}; // unterminated: not a real template argument list
    if (code[i] == ';' || code[i] == '{')
        return {}; // comparison operator, not a template
    return code.substr(open + 1, i - open - 1);
}

std::size_t
matchParen(const std::string &code, std::size_t open)
{
    int depth = 0;
    for (std::size_t i = open; i < code.size(); ++i) {
        if (code[i] == '(') {
            ++depth;
        } else if (code[i] == ')') {
            if (--depth == 0)
                return i + 1;
        }
    }
    return std::string::npos;
}

std::vector<Function>
extractFunctions(const std::string &code)
{
    std::vector<Function> out;
    std::size_t i = 0;
    while (i < code.size()) {
        if (code[i] != '{') {
            ++i;
            continue;
        }
        // Walk back over qualifiers to the closing ')' of a parameter
        // list.
        std::size_t j = i;
        auto skipBackWs = [&] {
            while (j > 0 &&
                   std::isspace(static_cast<unsigned char>(code[j - 1])))
                --j;
        };
        skipBackWs();
        for (const char *qual :
             {"const", "noexcept", "override", "final", "mutable"}) {
            const std::size_t len = std::strlen(qual);
            if (j >= len && code.compare(j - len, len, qual) == 0) {
                j -= len;
                skipBackWs();
            }
        }
        // Tolerate a trailing-return-type `-> T` (identifier-ish only).
        {
            std::size_t k = j;
            while (k > 0 && (identChar(code[k - 1]) || code[k - 1] == ':' ||
                             code[k - 1] == '<' || code[k - 1] == '>' ||
                             code[k - 1] == ' '))
                --k;
            if (k >= 2 && code[k - 1] == '>' && code[k - 2] == '-') {
                j = k - 2;
                skipBackWs();
            }
        }
        if (j == 0 || code[j - 1] != ')') {
            ++i;
            continue;
        }
        // Match back to the opening '(' and read the identifier.
        int depth = 0;
        std::size_t p = j - 1;
        for (;; --p) {
            if (code[p] == ')')
                ++depth;
            else if (code[p] == '(' && --depth == 0)
                break;
            if (p == 0)
                break;
        }
        if (p == 0 && depth != 0) {
            ++i;
            continue;
        }
        std::size_t nameEnd = p;
        while (nameEnd > 0 && std::isspace(static_cast<unsigned char>(
                                  code[nameEnd - 1])))
            --nameEnd;
        std::size_t nameBegin = nameEnd;
        while (nameBegin > 0 && identChar(code[nameBegin - 1]))
            --nameBegin;
        if (nameBegin == nameEnd) {
            ++i;
            continue;
        }
        const std::string name = code.substr(nameBegin,
                                             nameEnd - nameBegin);
        // Control-flow keywords introduce blocks, not functions.
        static const std::set<std::string> kKeywords{
            "if", "for", "while", "switch", "catch", "return", "sizeof",
            "alignof", "co_await", "co_return", "co_yield", "defined"};
        if (kKeywords.count(name)) {
            ++i;
            continue;
        }
        // Find the matching closing brace.
        int braces = 1;
        std::size_t end = i + 1;
        while (end < code.size() && braces > 0) {
            if (code[end] == '{')
                ++braces;
            else if (code[end] == '}')
                --braces;
            ++end;
        }
        out.push_back({name, i + 1, end > i ? end - 1 : i + 1});
        ++i;
    }
    return out;
}

bool
callsAnyOf(const std::string &code, const Function &fn,
           const std::set<std::string> &names)
{
    const std::string body = code.substr(fn.bodyBegin,
                                         fn.bodyEnd - fn.bodyBegin);
    for (const auto &name : names) {
        for (std::size_t pos : findWord(body, name)) {
            std::size_t k = pos + name.size();
            while (k < body.size() &&
                   std::isspace(static_cast<unsigned char>(body[k])))
                ++k;
            if (k < body.size() && body[k] == '(')
                return true;
        }
    }
    return false;
}

std::set<std::string>
unorderedVarNames(const std::string &code)
{
    std::set<std::string> out;
    for (const char *cont : {"unordered_map", "unordered_set",
                             "unordered_multimap",
                             "unordered_multiset"}) {
        for (std::size_t pos : findWord(code, cont)) {
            std::size_t open = pos + std::strlen(cont);
            while (open < code.size() &&
                   std::isspace(static_cast<unsigned char>(code[open])))
                ++open;
            if (open >= code.size() || code[open] != '<')
                continue;
            // Skip the template argument list.
            int depth = 0;
            std::size_t i = open;
            for (; i < code.size(); ++i) {
                if (code[i] == '<')
                    ++depth;
                else if (code[i] == '>' && --depth == 0)
                    break;
            }
            if (i >= code.size())
                continue;
            // The declared name follows (possibly after &/whitespace).
            std::size_t k = i + 1;
            while (k < code.size() &&
                   (std::isspace(static_cast<unsigned char>(code[k])) ||
                    code[k] == '&'))
                ++k;
            std::size_t nameEnd = k;
            while (nameEnd < code.size() && identChar(code[nameEnd]))
                ++nameEnd;
            if (nameEnd > k)
                out.insert(code.substr(k, nameEnd - k));
        }
    }
    return out;
}

} // namespace molecule::lint
