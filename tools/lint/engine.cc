#include "engine.hh"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <tuple>

#include "packs.hh"

namespace molecule::lint {

namespace fs = std::filesystem;

std::uint64_t
fingerprint(const std::string &text)
{
    std::uint64_t h = 1469598103934665603ull;
    for (unsigned char c : text) {
        h ^= c;
        h *= 1099511628211ull;
    }
    return h;
}

void
Registry::add(std::unique_ptr<Rule> rule)
{
    rules_.push_back(std::move(rule));
}

std::vector<std::string>
Registry::packs() const
{
    std::vector<std::string> out;
    for (const auto &r : rules_) {
        if (std::find(out.begin(), out.end(), r->pack()) == out.end())
            out.push_back(r->pack());
    }
    return out;
}

Registry
makeRegistry()
{
    Registry registry;
    registerSimPurity(registry);
    registerLifetime(registry);
    registerErrorDiscard(registry);
    registerLayering(registry);
    return registry;
}

// ---------------------------------------------------------------------
// Project tables
// ---------------------------------------------------------------------

namespace {

/**
 * Harvest names of callables returning core::Status or
 * core::Expected<T>, directly or wrapped in sim::Task<...>. Works on
 * the stripped text: find the type word, skip to the end of its
 * template/nesting suffix, then accept `qualified::name (`.
 */
void
harvestOutcomeCallables(const SourceFile &f, std::set<std::string> &out)
{
    const std::string &code = f.code;
    for (const char *type : {"Status", "Expected"}) {
        for (std::size_t pos : findWord(code, type)) {
            std::size_t k = pos + std::strlen(type);
            // Skip a template argument list (Expected<T>).
            if (k < code.size() && code[k] == '<') {
                int depth = 0;
                for (; k < code.size(); ++k) {
                    if (code[k] == '<')
                        ++depth;
                    else if (code[k] == '>' && --depth == 0) {
                        ++k;
                        break;
                    }
                }
            }
            // Skip closers of enclosing wrappers (sim::Task<...>),
            // references, and whitespace between type and name.
            while (k < code.size() &&
                   (code[k] == '>' || code[k] == '&' || code[k] == ' ' ||
                    code[k] == '\t' || code[k] == '\n'))
                ++k;
            // Read a possibly qualified identifier chain.
            std::string last;
            bool any = false;
            for (;;) {
                std::size_t b = k;
                while (k < code.size() && identChar(code[k]))
                    ++k;
                if (k == b)
                    break;
                last = code.substr(b, k - b);
                any = true;
                if (k + 1 < code.size() && code[k] == ':' &&
                    code[k + 1] == ':')
                    k += 2;
                else
                    break;
            }
            if (!any)
                continue;
            while (k < code.size() &&
                   std::isspace(static_cast<unsigned char>(code[k])))
                ++k;
            if (k >= code.size() || code[k] != '(')
                continue;
            // `Status s(...)`-style locals are indistinguishable from
            // declarations here; single-letter names are overwhelmingly
            // locals, so skip them to keep the callable table clean.
            if (last.size() >= 2)
                out.insert(last);
        }
    }
}

/**
 * Mark harvested names that are ALSO declared with a non-outcome
 * return type somewhere in the tree. Matching is name-based, so a
 * generic name like `invoke` declared both as `Task<core::Status>
 * invoke(...)` (runc) and `Task<> invoke(...)` (runf, FpgaDevice)
 * cannot be attributed to a receiver in AST-lite; flagging every bare
 * `x.invoke(...);` would drown real discards in false positives.
 * Only names whose every declaration returns an outcome type stay in
 * the callable table.
 */
void
markAmbiguousCallables(const SourceFile &f,
                       const std::set<std::string> &names,
                       std::set<std::string> &ambiguous)
{
    static const std::set<std::string> kUseKeywords{
        "return", "co_return", "co_await", "co_yield", "else",
        "do",     "throw",     "delete",   "new",      "goto",
    };
    const std::string &code = f.code;
    for (const auto &name : names) {
        for (std::size_t pos : findWord(code, name)) {
            std::size_t open = pos + name.size();
            while (open < code.size() &&
                   std::isspace(static_cast<unsigned char>(code[open])))
                ++open;
            if (open >= code.size() || code[open] != '(')
                continue;
            // Statement prefix up to the name.
            std::size_t b = pos;
            while (b > 0) {
                const char c = code[b - 1];
                if (c == ';' || c == '{' || c == '}')
                    break;
                --b;
            }
            std::string prefix = code.substr(b, pos - b);
            while (!prefix.empty() &&
                   std::isspace(
                       static_cast<unsigned char>(prefix.back())))
                prefix.pop_back();
            if (prefix.empty())
                continue; // bare call
            const char tail = prefix.back();
            // Declaration-like: the name is preceded by a type
            // (identifier or a closed template argument list). `->`
            // is a member call; `.`/`::` are access paths; anything
            // else (operators, parens) is an expression.
            const bool typeTail =
                identChar(tail) ||
                (tail == '>' && prefix.size() >= 2 &&
                 prefix[prefix.size() - 2] != '-');
            if (!typeTail)
                continue;
            if (identChar(tail)) {
                std::size_t w = prefix.size();
                while (w > 0 && identChar(prefix[w - 1]))
                    --w;
                if (kUseKeywords.count(prefix.substr(w)))
                    continue; // `return name(...)` — a use
            }
            // The prefix is the declared return type (plus
            // specifiers); no outcome type in it => ambiguous name.
            if (findWord(prefix, "Status").empty() &&
                findWord(prefix, "Expected").empty())
                ambiguous.insert(name);
        }
    }
}

/** Canonical module layering ranks (DESIGN.md §7). */
std::map<std::string, int>
layeringRanks()
{
    return {
        {"sim", 0},       // DES kernel: depends on nothing
        {"obs", 1},       // pure recording over sim time
        {"hw", 2},        {"os", 3},     {"xpu", 4},
        {"sandbox", 5},   // runc/runf/rung over os+hw
        {"workloads", 6}, // calibrated cost models over sandbox images
        {"load", 7},      // open-loop stream generator over sim only
        {"core", 8},      // control plane composing everything below
        {"fault", 9},     // chaos layer: hooks into every layer
        {"cluster", 10},  // fleet + gateway over core and load
    };
}

/** Cross-cutting vocabulary headers includable from any layer. */
std::set<std::string>
layeringExemptHeaders()
{
    return {
        // Typed-outcome vocabulary; self-contained by design (see the
        // header's own preamble: std-only, no link-time dependency).
        "core/status.hh",
        // Header-only fault-window state every layer attaches hooks to.
        "fault/state.hh",
    };
}

Project
buildProject(const std::vector<SourceFile> &files)
{
    Project p;
    p.moduleRank = layeringRanks();
    p.exemptHeaders = layeringExemptHeaders();
    for (const auto &f : files)
        harvestOutcomeCallables(f, p.outcomeCallables);
    std::set<std::string> ambiguous;
    for (const auto &f : files)
        markAmbiguousCallables(f, p.outcomeCallables, ambiguous);
    for (const auto &name : ambiguous)
        p.outcomeCallables.erase(name);
    return p;
}

// ---------------------------------------------------------------------
// File collection
// ---------------------------------------------------------------------

bool
scannableExtension(const fs::path &p)
{
    static const std::set<std::string> kExts{".hh", ".cc", ".hpp",
                                             ".cpp", ".h"};
    return kExts.count(p.extension().string()) != 0;
}

/**
 * Trees skipped during recursive traversal: benchmarks legitimately
 * read host clocks, lint fixtures are violations on purpose, build
 * trees hold generated/vendored sources. A root that itself points
 * inside such a tree is still scanned (that is how the fixture ctests
 * drive the engine).
 */
bool
skippedSubtree(const std::string &generic)
{
    return generic.find("/bench/") != std::string::npos ||
           generic.rfind("bench/", 0) == 0 ||
           generic.find("lint/fixtures") != std::string::npos ||
           generic.find("/build") != std::string::npos ||
           generic.find("/.git/") != std::string::npos;
}

std::vector<SourceFile>
loadFiles(const Options &opts, std::size_t &filesScanned)
{
    std::vector<SourceFile> out;
    std::set<std::string> seen; // canonical paths: scan once
    for (const auto &root : opts.roots) {
        std::vector<fs::path> paths;
        const bool rootInsideSkipped =
            skippedSubtree(fs::path(root).generic_string() + "/");
        if (fs::is_directory(root)) {
            for (const auto &e : fs::recursive_directory_iterator(root)) {
                if (!e.is_regular_file() ||
                    !scannableExtension(e.path()))
                    continue;
                if (!rootInsideSkipped &&
                    skippedSubtree(e.path().generic_string()))
                    continue;
                paths.push_back(e.path());
            }
        } else {
            paths.push_back(root);
        }
        std::sort(paths.begin(), paths.end());
        for (const auto &p : paths) {
            std::error_code ec;
            fs::path canon = fs::weakly_canonical(p, ec);
            const std::string key =
                ec ? p.generic_string() : canon.generic_string();
            if (!seen.insert(key).second)
                continue; // same file reached through two roots
            std::ifstream in(p);
            std::stringstream ss;
            ss << in.rdbuf();
            out.push_back(prepare(p.generic_string(), ss.str()));
            ++filesScanned;
        }
    }
    return out;
}

// ---------------------------------------------------------------------
// Baseline
// ---------------------------------------------------------------------

struct BaselineEntry
{
    std::string rule;
    std::string path;
    std::string hash;
    bool matched = false;
};

std::vector<BaselineEntry>
readBaseline(const std::string &file)
{
    std::vector<BaselineEntry> out;
    std::ifstream in(file);
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty() || line[0] == '#')
            continue;
        std::stringstream ss(line);
        BaselineEntry e;
        if (std::getline(ss, e.rule, '\t') &&
            std::getline(ss, e.path, '\t') &&
            std::getline(ss, e.hash, '\t'))
            out.push_back(std::move(e));
    }
    return out;
}

std::string
hashOf(const Finding &f)
{
    char buf[20];
    std::snprintf(buf, sizeof buf, "%016llx",
                  static_cast<unsigned long long>(
                      fingerprint(f.message)));
    return buf;
}

void
writeBaselineFile(const std::string &file,
                  const std::vector<Finding> &findings)
{
    std::ofstream out(file);
    out << "# molecule-lint baseline v1\n"
        << "# rule<TAB>path<TAB>message-fnv1a — line-insensitive, so\n"
        << "# unrelated edits do not invalidate entries. Ratchet by\n"
        << "# deleting lines as findings get fixed.\n";
    for (const auto &f : findings)
        out << f.rule << '\t' << f.path << '\t' << hashOf(f) << '\n';
}

// ---------------------------------------------------------------------
// Output
// ---------------------------------------------------------------------

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 8);
    for (char c : s) {
        switch (c) {
        case '"':
            out += "\\\"";
            break;
        case '\\':
            out += "\\\\";
            break;
        case '\n':
            out += "\\n";
            break;
        case '\t':
            out += "\\t";
            break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

void
renderHuman(std::FILE *to, const Result &r)
{
    for (const auto &f : r.findings) {
        std::fprintf(to, "%s:%zu: [%s/%s] %s\n", f.path.c_str(), f.line,
                     f.pack.c_str(), f.rule.c_str(), f.message.c_str());
    }
    std::fprintf(to,
                 "molecule-lint: %zu file(s), %zu finding(s), "
                 "%zu baselined, %zu stale baseline entr%s\n",
                 r.filesScanned, r.findings.size(),
                 r.suppressedByBaseline, r.staleBaseline,
                 r.staleBaseline == 1 ? "y" : "ies");
}

void
renderJson(std::FILE *to, const Result &r)
{
    std::fprintf(to, "{\n  \"tool\": \"molecule-lint\",\n");
    std::fprintf(to, "  \"files\": %zu,\n", r.filesScanned);
    std::fprintf(to, "  \"baselined\": %zu,\n", r.suppressedByBaseline);
    std::fprintf(to, "  \"staleBaseline\": %zu,\n", r.staleBaseline);
    std::fprintf(to, "  \"findings\": [");
    for (std::size_t i = 0; i < r.findings.size(); ++i) {
        const auto &f = r.findings[i];
        std::fprintf(to,
                     "%s\n    {\"path\": \"%s\", \"line\": %zu, "
                     "\"pack\": \"%s\", \"rule\": \"%s\", "
                     "\"message\": \"%s\"}",
                     i ? "," : "", jsonEscape(f.path).c_str(), f.line,
                     jsonEscape(f.pack).c_str(),
                     jsonEscape(f.rule).c_str(),
                     jsonEscape(f.message).c_str());
    }
    std::fprintf(to, "\n  ]\n}\n");
}

void
renderSarif(std::FILE *to, const Registry &registry, const Result &r)
{
    std::fprintf(to,
                 "{\n"
                 "  \"$schema\": \"https://raw.githubusercontent.com/"
                 "oasis-tcs/sarif-spec/master/Schemata/"
                 "sarif-schema-2.1.0.json\",\n"
                 "  \"version\": \"2.1.0\",\n"
                 "  \"runs\": [\n"
                 "    {\n"
                 "      \"tool\": {\n"
                 "        \"driver\": {\n"
                 "          \"name\": \"molecule-lint\",\n"
                 "          \"informationUri\": "
                 "\"DESIGN.md#7-static-analysis-architecture\",\n"
                 "          \"rules\": [");
    const auto &rules = registry.rules();
    for (std::size_t i = 0; i < rules.size(); ++i) {
        std::fprintf(to,
                     "%s\n            {\"id\": \"%s\", "
                     "\"shortDescription\": {\"text\": \"%s\"}, "
                     "\"properties\": {\"pack\": \"%s\"}}",
                     i ? "," : "", jsonEscape(rules[i]->id()).c_str(),
                     jsonEscape(rules[i]->summary()).c_str(),
                     jsonEscape(rules[i]->pack()).c_str());
    }
    std::fprintf(to,
                 "\n          ]\n"
                 "        }\n"
                 "      },\n"
                 "      \"results\": [");
    for (std::size_t i = 0; i < r.findings.size(); ++i) {
        const auto &f = r.findings[i];
        std::fprintf(
            to,
            "%s\n        {\n"
            "          \"ruleId\": \"%s\",\n"
            "          \"level\": \"error\",\n"
            "          \"message\": {\"text\": \"%s\"},\n"
            "          \"locations\": [\n"
            "            {\"physicalLocation\": {\"artifactLocation\": "
            "{\"uri\": \"%s\"}, \"region\": {\"startLine\": %zu}}}\n"
            "          ]\n"
            "        }",
            i ? "," : "", jsonEscape(f.rule).c_str(),
            jsonEscape(f.message).c_str(), jsonEscape(f.path).c_str(),
            f.line ? f.line : 1);
    }
    std::fprintf(to,
                 "\n      ]\n"
                 "    }\n"
                 "  ]\n"
                 "}\n");
}

/**
 * Sort into stable (path, line, rule, message) order and drop exact
 * duplicates — the fix for PR 2's lint_determinism printing the same
 * violation once per include path / overlapping pattern.
 */
void
finalizeFindings(std::vector<Finding> &all)
{
    std::sort(all.begin(), all.end(),
              [](const Finding &a, const Finding &b) {
                  return std::tie(a.path, a.line, a.rule, a.message) <
                         std::tie(b.path, b.line, b.rule, b.message);
              });
    all.erase(std::unique(all.begin(), all.end(),
                          [](const Finding &a, const Finding &b) {
                              return a.path == b.path &&
                                     a.line == b.line &&
                                     a.rule == b.rule &&
                                     a.message == b.message;
                          }),
              all.end());
}

} // namespace

// ---------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------

std::vector<Finding>
runOnBuffers(const Registry &registry, const std::set<std::string> &packs,
             const std::vector<std::pair<std::string, std::string>> &files)
{
    std::vector<SourceFile> prepared;
    prepared.reserve(files.size());
    for (const auto &[path, content] : files)
        prepared.push_back(prepare(path, content));
    const Project project = buildProject(prepared);

    std::vector<Finding> out;
    for (const auto &f : prepared) {
        for (const auto &rule : registry.rules()) {
            if (!packs.empty() && !packs.count(rule->pack()))
                continue;
            if (!rule->inScope(f.path))
                continue;
            rule->run(project, f, out);
        }
    }
    finalizeFindings(out);
    return out;
}

Result
run(const Registry &registry, const Options &opts)
{
    Result r;
    const std::vector<SourceFile> files = loadFiles(opts, r.filesScanned);
    const Project project = buildProject(files);

    std::vector<Finding> all;
    for (const auto &f : files) {
        for (const auto &rule : registry.rules()) {
            if (!opts.packs.empty() && !opts.packs.count(rule->pack()))
                continue;
            if (!rule->inScope(f.path))
                continue;
            rule->run(project, f, all);
        }
    }

    finalizeFindings(all);

    if (!opts.baseline.empty()) {
        std::vector<BaselineEntry> baseline =
            readBaseline(opts.baseline);
        std::vector<Finding> kept;
        for (auto &f : all) {
            const std::string h = hashOf(f);
            bool found = false;
            for (auto &e : baseline) {
                if (e.rule == f.rule && e.path == f.path &&
                    e.hash == h) {
                    e.matched = true;
                    found = true;
                    break;
                }
            }
            if (found)
                ++r.suppressedByBaseline;
            else
                kept.push_back(std::move(f));
        }
        all = std::move(kept);
        for (const auto &e : baseline) {
            if (!e.matched)
                ++r.staleBaseline;
        }
    }

    if (!opts.writeBaseline.empty())
        writeBaselineFile(opts.writeBaseline, all);

    r.findings = std::move(all);
    r.exitCode = r.findings.empty() &&
                         !(opts.strict && r.staleBaseline > 0)
                     ? 0
                     : 1;
    return r;
}

void
render(const Registry &registry, const Options &opts, const Result &r)
{
    std::FILE *to = stdout;
    if (!opts.output.empty()) {
        to = std::fopen(opts.output.c_str(), "w");
        if (!to) {
            std::fprintf(stderr, "molecule-lint: cannot write %s\n",
                         opts.output.c_str());
            to = stdout;
        }
    }
    switch (opts.format) {
    case Format::Human:
        renderHuman(to, r);
        break;
    case Format::Json:
        renderJson(to, r);
        break;
    case Format::Sarif:
        renderSarif(to, registry, r);
        break;
    }
    if (to != stdout) {
        std::fclose(to);
        // Keep CI logs readable even when the report goes to a file.
        std::fprintf(stderr,
                     "molecule-lint: %zu file(s), %zu finding(s) -> %s\n",
                     r.filesScanned, r.findings.size(),
                     opts.output.c_str());
    }
}

} // namespace molecule::lint
