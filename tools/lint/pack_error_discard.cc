/**
 * @file
 * error-discard pack: call sites that drop a typed outcome.
 *
 * PR 4 moved every fallible runtime operation onto core::Status /
 * core::Expected<T>; silently discarding one swallows an injected
 * fault and turns a chaos test into a false pass. The classes carry
 * [[nodiscard]], which covers direct calls at compile time — this rule
 * closes the gaps the attribute cannot see:
 *
 *  - `co_await op();` as a bare statement (the Task is consumed, the
 *    Status inside it is not);
 *  - call sites in files compiled without -Werror (tools, examples);
 *  - future backends compiled out of the default build.
 *
 * The callable table is harvested project-wide from declarations whose
 * return type is Status / Expected<T>, plain or Task-wrapped, so the
 * rule follows the API surface automatically as it grows.
 *
 * A discarded statement looks like `chain();` where `chain` is a pure
 * access path (identifiers, `.`, `->`, `::`, optional leading
 * co_await) ending in a harvested callable. Anything else in the
 * statement prefix — assignment, return, a cast such as `(void)`, an
 * enclosing call — counts as use.
 */

#include <cctype>

#include "engine.hh"

namespace molecule::lint {

namespace {

bool
pureAccessPrefix(const std::string &prefixIn)
{
    std::string prefix = prefixIn;
    // Trim.
    while (!prefix.empty() &&
           std::isspace(static_cast<unsigned char>(prefix.front())))
        prefix.erase(prefix.begin());
    while (!prefix.empty() &&
           std::isspace(static_cast<unsigned char>(prefix.back())))
        prefix.pop_back();
    // Optional leading co_await (a bare `co_await op();` drops the
    // Status inside the awaited Task).
    if (prefix.rfind("co_await", 0) == 0) {
        prefix.erase(0, 8);
        while (!prefix.empty() &&
               std::isspace(
                   static_cast<unsigned char>(prefix.front())))
            prefix.erase(prefix.begin());
    }
    if (prefix.empty())
        return true; // bare call: `doThing(...);`
    // A member/qualified call chain ends in a connector right before
    // the callable name (`shim->`, `plan.`, `ns::`). A prefix ending
    // in an identifier is a *declaration* (`core::Status doThing(...)`)
    // — not a discard site.
    const char tail = prefix.back();
    if (tail != '.' && tail != ':' &&
        !(tail == '>' && prefix.size() >= 2 &&
          prefix[prefix.size() - 2] == '-'))
        return false;
    // And the whole prefix must be a pure access path: identifiers
    // joined by '.', '->', '::' only.
    for (std::size_t i = 0; i < prefix.size(); ++i) {
        const char c = prefix[i];
        if (identChar(c) || c == '.' || c == ':' ||
            std::isspace(static_cast<unsigned char>(c)))
            continue;
        if (c == '-' && i + 1 < prefix.size() && prefix[i + 1] == '>') {
            ++i;
            continue;
        }
        return false;
    }
    return true;
}

class ErrorDiscardRule final : public Rule
{
  public:
    ErrorDiscardRule()
        : Rule("error-discard", "error-discard",
               "core::Status / core::Expected result silently dropped")
    {}

    bool
    inScope(const std::string &) const override
    {
        return true; // src, tools, tests, examples alike
    }

    void
    run(const Project &project, const SourceFile &f,
        std::vector<Finding> &out) const override
    {
        const std::string &code = f.code;
        for (const auto &name : project.outcomeCallables) {
            for (std::size_t pos : findWord(code, name)) {
                std::size_t open = pos + name.size();
                while (open < code.size() &&
                       std::isspace(
                           static_cast<unsigned char>(code[open])))
                    ++open;
                if (open >= code.size() || code[open] != '(')
                    continue;
                const std::size_t close = matchParen(code, open);
                if (close == std::string::npos)
                    continue;
                std::size_t semi = close;
                while (semi < code.size() &&
                       std::isspace(
                           static_cast<unsigned char>(code[semi])))
                    ++semi;
                if (semi >= code.size() || code[semi] != ';')
                    continue; // result feeds a larger expression
                // Statement prefix: from the previous boundary up to
                // the callable name.
                std::size_t b = pos;
                while (b > 0) {
                    const char c = code[b - 1];
                    if (c == ';' || c == '{' || c == '}')
                        break;
                    --b;
                }
                if (!pureAccessPrefix(code.substr(b, pos - b)))
                    continue;
                emit(f, pos,
                     "result of '" + name +
                         "' (core::Status/Expected) is discarded: "
                         "handle it, assert on it, or `(void)`-cast "
                         "with a lint:allow(error-discard) note",
                     out);
            }
        }
    }
};

} // namespace

void
registerErrorDiscard(Registry &registry)
{
    registry.add(std::make_unique<ErrorDiscardRule>());
}

} // namespace molecule::lint
