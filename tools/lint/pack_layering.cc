/**
 * @file
 * layering pack: the module include wall.
 *
 * The sanctioned module DAG (DESIGN.md §7), lowest layer first:
 *
 *   sim -> obs -> hw -> os -> xpu -> sandbox -> workloads -> load
 *       -> core -> fault -> cluster
 *
 * (load sits above workloads only by rank — it depends on sim alone;
 * cluster tops the stack: it composes core runtimes and load streams
 * into multi-computer fleets. obs at rank 2 covers the whole
 * observability plane — tracing, the metrics registry, and the
 * windowed telemetry/SLO/flight-recorder submodules — so fault and
 * cluster may feed it, never the reverse.)
 *
 * A file under src/<mod>/ may include "other/..." only when `other`
 * sits at the same or a lower rank — lower layers can never include
 * upward, so the DES kernel stays dependency-free, hardware models
 * never reach into the control plane, and the chaos layer (fault)
 * stays on top where it can see everything without being seen.
 *
 * Two vocabulary headers are exempt as declared cross-cutting
 * interfaces: core/status.hh (typed outcomes; std-only and
 * self-contained by its own charter) and fault/state.hh (header-only
 * fault-window state each layer attaches hooks to). Everything else
 * that needs to cross upward must carry a lint:allow(layering)
 * justification.
 */

#include "engine.hh"

namespace molecule::lint {

namespace {

/** Module of a file under src/ ("" when not a module source). */
std::string
moduleOf(const std::string &path, const Project &project)
{
    const std::size_t src = path.rfind("src/");
    if (src == std::string::npos)
        return {};
    const std::size_t begin = src + 4;
    const std::size_t slash = path.find('/', begin);
    if (slash == std::string::npos)
        return {};
    const std::string mod = path.substr(begin, slash - begin);
    return project.moduleRank.count(mod) ? mod : std::string{};
}

class LayeringRule final : public Rule
{
  public:
    LayeringRule()
        : Rule("layering", "layering",
               "include crossing the module DAG upward")
    {}

    bool
    inScope(const std::string &path) const override
    {
        return path.find("src/") != std::string::npos ||
               path.rfind("src/", 0) == 0;
    }

    void
    run(const Project &project, const SourceFile &f,
        std::vector<Finding> &out) const override
    {
        const std::string mod = moduleOf(f.path, project);
        if (mod.empty())
            return;
        const int rank = project.moduleRank.at(mod);
        for (const Include &inc : f.includes) {
            if (inc.angled)
                continue; // system/library headers
            const std::size_t slash = inc.target.find('/');
            if (slash == std::string::npos)
                continue; // sibling header inside the module
            const std::string target = inc.target.substr(0, slash);
            auto it = project.moduleRank.find(target);
            if (it == project.moduleRank.end() || target == mod)
                continue;
            if (it->second <= rank)
                continue; // downward or sideways: sanctioned
            if (project.exemptHeaders.count(inc.target))
                continue; // cross-cutting vocabulary header
            emit(f, inc.offset,
                 "src/" + mod + " (layer " + std::to_string(rank) +
                     ") includes \"" + inc.target + "\" (layer " +
                     std::to_string(it->second) +
                     "): lower layers never include upward; invert "
                     "the dependency or use a sanctioned interface "
                     "header",
                 out);
        }
    }
};

} // namespace

void
registerLayering(Registry &registry)
{
    registry.add(std::make_unique<LayeringRule>());
}

} // namespace molecule::lint
