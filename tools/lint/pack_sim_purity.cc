/**
 * @file
 * sim-purity pack: the PR 2 determinism rules on the shared engine.
 *
 * Semantics are kept bit-for-bit compatible with the original
 * tools/lint_determinism.cc (same rule ids, same messages, same
 * same-file one-transitive-hop scan for unordered iteration), so the
 * migrated pack reproduces PR 2's findings on its old fixtures and
 * existing `det:allow(<rule>)` suppressions keep working.
 */

#include <cstring>

#include "engine.hh"

namespace molecule::lint {

namespace {

/** src/ only; bench/ is excluded at traversal level already. */
bool
simPurityScope(const std::string &path)
{
    return path.find("src/") != std::string::npos ||
           path.rfind("src/", 0) == 0;
}

class WallclockRule final : public Rule
{
  public:
    WallclockRule()
        : Rule("sim-purity", "wallclock",
               "wall-clock time / OS entropy in simulation code")
    {}

    bool
    inScope(const std::string &path) const override
    {
        return simPurityScope(path);
    }

    void
    run(const Project &, const SourceFile &f,
        std::vector<Finding> &out) const override
    {
        static const char *kBanned[] = {"system_clock", "steady_clock",
                                        "high_resolution_clock",
                                        "random_device"};
        for (const char *token : kBanned) {
            for (std::size_t pos : findWord(f.code, token)) {
                emit(f, pos,
                     std::string(token) +
                         ": wall-clock time / OS entropy makes runs "
                         "irreproducible; use sim::SimTime / sim::Rng",
                     out, /*honorDetAllow=*/true);
            }
        }
    }
};

class PointerKeyedRule final : public Rule
{
  public:
    PointerKeyedRule()
        : Rule("sim-purity", "pointer-keyed-container",
               "map/set keyed by a pointer type")
    {}

    bool
    inScope(const std::string &path) const override
    {
        return simPurityScope(path);
    }

    void
    run(const Project &, const SourceFile &f,
        std::vector<Finding> &out) const override
    {
        static const char *kContainers[] = {"map", "set", "multimap",
                                            "multiset", "unordered_map",
                                            "unordered_set"};
        for (const char *cont : kContainers) {
            for (std::size_t pos : findWord(f.code, cont)) {
                std::size_t open = pos + std::strlen(cont);
                while (open < f.code.size() &&
                       std::isspace(
                           static_cast<unsigned char>(f.code[open])))
                    ++open;
                if (open >= f.code.size() || f.code[open] != '<')
                    continue;
                const std::string key =
                    firstTemplateArg(f.code, open);
                if (key.find('*') != std::string::npos) {
                    emit(f, pos,
                         std::string(cont) +
                             " keyed by a pointer: iteration order "
                             "depends on allocation addresses; key by "
                             "a stable id instead",
                         out, /*honorDetAllow=*/true);
                }
            }
        }
    }
};

class StdFunctionRule final : public Rule
{
  public:
    StdFunctionRule()
        : Rule("sim-purity", "std-function-in-sim",
               "std::function in the DES hot path")
    {}

    bool
    inScope(const std::string &path) const override
    {
        return path.find("src/sim/") != std::string::npos ||
               path.rfind("sim/", 0) == 0;
    }

    void
    run(const Project &, const SourceFile &f,
        std::vector<Finding> &out) const override
    {
        std::size_t pos = 0;
        while ((pos = f.code.find("std::function", pos)) !=
               std::string::npos) {
            emit(f, pos,
                 "std::function in the sim kernel: the DES hot path "
                 "is allocation-free (InlineCallback); use it or "
                 "suppress for cold paths",
                 out, /*honorDetAllow=*/true);
            pos += 13;
        }
    }
};

class UnorderedIterationRule final : public Rule
{
  public:
    UnorderedIterationRule()
        : Rule("sim-purity", "unordered-iteration",
               "unordered-container iteration feeding schedule order")
    {}

    bool
    inScope(const std::string &path) const override
    {
        return simPurityScope(path);
    }

    void
    run(const Project &, const SourceFile &f,
        std::vector<Finding> &out) const override
    {
        const std::set<std::string> unordered =
            unorderedVarNames(f.code);
        if (unordered.empty())
            return;

        const std::vector<Function> fns = extractFunctions(f.code);
        static const std::set<std::string> kSchedulers{
            "schedule", "scheduleBatch", "scheduleResume", "delay",
            "spawn"};

        // Functions that schedule directly, then one transitive hop
        // (same file — see DESIGN.md §7 for why the hop stays local).
        std::set<std::string> scheduling;
        for (const auto &fn : fns) {
            if (callsAnyOf(f.code, fn, kSchedulers))
                scheduling.insert(fn.name);
        }
        std::set<std::string> reaches = scheduling;
        for (const auto &fn : fns) {
            if (!reaches.count(fn.name) &&
                callsAnyOf(f.code, fn, scheduling))
                reaches.insert(fn.name);
        }

        for (const auto &fn : fns) {
            if (!reaches.count(fn.name))
                continue;
            const std::string body = f.code.substr(
                fn.bodyBegin, fn.bodyEnd - fn.bodyBegin);
            for (const auto &var : unordered) {
                // Range-for over the container…
                std::size_t pos = 0;
                while ((pos = body.find(':', pos)) !=
                       std::string::npos) {
                    std::size_t k = pos + 1;
                    if (k < body.size() && body[k] == ':') {
                        pos = k + 1; // `::` qualifier, not a range-for
                        continue;
                    }
                    while (k < body.size() &&
                           std::isspace(
                               static_cast<unsigned char>(body[k])))
                        ++k;
                    if (body.compare(k, var.size(), var) == 0 &&
                        (k + var.size() >= body.size() ||
                         !identChar(body[k + var.size()]))) {
                        emit(f, fn.bodyBegin + pos,
                             "iterating '" + var + "' (unordered) in '" +
                                 fn.name +
                                 "', which reaches schedule/delay: "
                                 "hash order would feed event order",
                             out, /*honorDetAllow=*/true);
                    }
                    ++pos;
                }
                // …or explicit begin()/end() iteration.
                for (const char *meth : {".begin", ".end", ".cbegin"}) {
                    const std::string pat = var + meth;
                    std::size_t q = 0;
                    while ((q = body.find(pat, q)) !=
                           std::string::npos) {
                        emit(f, fn.bodyBegin + q,
                             "iterating '" + var + "' (unordered) in '" +
                                 fn.name +
                                 "', which reaches schedule/delay: "
                                 "hash order would feed event order",
                             out, /*honorDetAllow=*/true);
                        q += pat.size();
                    }
                }
            }
        }
    }
};

} // namespace

void
registerSimPurity(Registry &registry)
{
    registry.add(std::make_unique<WallclockRule>());
    registry.add(std::make_unique<PointerKeyedRule>());
    registry.add(std::make_unique<StdFunctionRule>());
    registry.add(std::make_unique<UnorderedIterationRule>());
}

} // namespace molecule::lint
