/**
 * @file
 * Registration entry points of the four molecule-lint rule packs.
 *
 * Pack order is canonical (sim-purity first for bit-for-bit
 * compatibility with PR 2's lint_determinism report order, then
 * lifetime, error-discard, layering); makeRegistry() in engine.cc
 * calls these in that order.
 */

#ifndef MOLECULE_TOOLS_LINT_PACKS_HH
#define MOLECULE_TOOLS_LINT_PACKS_HH

namespace molecule::lint {

class Registry;

/**
 * sim-purity: the PR 2 determinism rules, migrated — wallclock,
 * pointer-keyed-container, std-function-in-sim, unordered-iteration.
 * Honors legacy det:allow(<rule>) suppressions.
 */
void registerSimPurity(Registry &registry);

/**
 * lifetime: ref-capture-escape (by-reference lambda captures handed
 * to schedule/spawn), arena-escape (sim::Arena / obs::SpanBuffer
 * pointers used across reset()/clear()/dropOldest — the copy-out-
 * before-reset rule of DESIGN.md §4d), view-of-temporary (spans /
 * data() bound to a temporary's storage).
 */
void registerLifetime(Registry &registry);

/**
 * error-discard: call sites that drop a core::Status /
 * core::Expected<T> result (complements the [[nodiscard]]
 * annotations; catches discards across co_await as well).
 */
void registerErrorDiscard(Registry &registry);

/**
 * layering: the module include wall — a file under src/<mod>/ may
 * include another module only at the same or a lower layering rank
 * (see DESIGN.md §7 for the sanctioned DAG and the two exempt
 * cross-cutting vocabulary headers).
 */
void registerLayering(Registry &registry);

} // namespace molecule::lint

#endif // MOLECULE_TOOLS_LINT_PACKS_HH
