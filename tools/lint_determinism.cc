/**
 * @file
 * DEPRECATED alias for `molecule-lint --packs sim-purity`.
 *
 * PR 2 introduced lint_determinism as a standalone AST-lite scanner
 * for the DES determinism rules. Its scanning core now lives in the
 * molecule-lint rule-registry engine (tools/lint/), where the same
 * detectors run as the `sim-purity` pack alongside the lifetime,
 * error-discard and layering packs — with the duplicate-finding bug
 * fixed and SARIF/baseline support added.
 *
 * This shim keeps the old entry point and ctest wiring alive for one
 * PR so downstream scripts can migrate:
 *
 *   lint_determinism --self-test   ==  molecule-lint --self-test sim-purity
 *   lint_determinism <paths...>    ==  molecule-lint --packs sim-purity <paths...>
 *
 * `det:allow(<rule>)` suppressions keep working (the sim-purity pack
 * honors them alongside the engine-wide `lint:allow(<rule>)`). New
 * callers should invoke molecule-lint directly; this alias goes away
 * next PR.
 */

#include <cstdio>
#include <cstring>

#include "lint/engine.hh"

int
main(int argc, char **argv)
{
    using namespace molecule::lint;

    std::fprintf(stderr,
                 "lint_determinism: deprecated; use `molecule-lint "
                 "--packs sim-purity` (see tools/lint/)\n");

    if (argc >= 2 && std::strcmp(argv[1], "--self-test") == 0)
        return selfTest("sim-purity");

    Options opts;
    opts.packs.insert("sim-purity");
    for (int i = 1; i < argc; ++i) {
        if (argv[i][0] == '-') {
            std::fprintf(stderr,
                         "usage: lint_determinism [--self-test] "
                         "<dir-or-file>...\n");
            return 2;
        }
        opts.roots.push_back(argv[i]);
    }
    if (opts.roots.empty()) {
        std::fprintf(stderr,
                     "usage: lint_determinism [--self-test] "
                     "<dir-or-file>...\n");
        return 2;
    }

    const Registry registry = makeRegistry();
    const Result result = run(registry, opts);
    render(registry, opts, result);
    return result.exitCode;
}
