/**
 * @file
 * Project lint wall: mechanical enforcement of the determinism rules.
 *
 * The DES is only bit-reproducible while model code schedules events in
 * a deterministic order. This checker scans the source tree (regex /
 * AST-lite: comment- and string-stripped text, brace-matched function
 * bodies) and rejects the constructs that historically break that
 * property:
 *
 *  - wallclock:               std::chrono::{system,steady,
 *                             high_resolution}_clock and
 *                             std::random_device anywhere in src/
 *                             (simulations must draw time from SimTime
 *                             and randomness from sim::Rng);
 *  - unordered-iteration:     iterating an unordered_{map,set} inside
 *                             a function that (directly, or one call
 *                             hop away) schedules events — iteration
 *                             order feeds schedule order;
 *  - pointer-keyed-container: map/set keyed by a pointer type —
 *                             address-dependent iteration order;
 *  - std-function-in-sim:     std::function inside src/sim/ (the DES
 *                             hot path uses InlineCallback; see PR 1).
 *
 * Deliberate exceptions carry a `det:allow(<rule>)` comment on the
 * same or the preceding line (see DESIGN.md "Determinism rules").
 *
 * Usage:
 *   lint_determinism <dir-or-file>...   # scan, exit 1 on violations
 *   lint_determinism --self-test        # run the built-in fixtures
 *
 * Registered as a tier-1 ctest, so violations fail the build.
 */

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace {

namespace fs = std::filesystem;

struct Violation
{
    std::string file;
    std::size_t line = 0;
    std::string rule;
    std::string message;
};

/** A source file prepared for scanning. */
struct SourceFile
{
    std::string path;
    /** Raw text (used only for suppression comments). */
    std::string raw;
    /** Same text with comments and string/char literals blanked. */
    std::string code;
    /** Byte offset of the start of each line. */
    std::vector<std::size_t> lineStarts;
    /** Lines carrying det:allow(<rule>) markers. */
    std::multimap<std::size_t, std::string> allows;
};

std::size_t
lineOf(const SourceFile &f, std::size_t offset)
{
    auto it = std::upper_bound(f.lineStarts.begin(), f.lineStarts.end(),
                               offset);
    return std::size_t(it - f.lineStarts.begin());
}

/** Blank comments and string/char literals, preserving length/lines. */
std::string
stripCommentsAndStrings(const std::string &in)
{
    std::string out = in;
    enum class St { Code, Line, Block, Str, Chr } st = St::Code;
    for (std::size_t i = 0; i < in.size(); ++i) {
        const char c = in[i];
        const char n = i + 1 < in.size() ? in[i + 1] : '\0';
        switch (st) {
          case St::Code:
            if (c == '/' && n == '/') {
                st = St::Line;
                out[i] = ' ';
            } else if (c == '/' && n == '*') {
                st = St::Block;
                out[i] = ' ';
            } else if (c == '"') {
                st = St::Str;
            } else if (c == '\'') {
                st = St::Chr;
            }
            break;
          case St::Line:
            if (c == '\n')
                st = St::Code;
            else
                out[i] = ' ';
            break;
          case St::Block:
            if (c == '*' && n == '/') {
                out[i] = ' ';
                out[i + 1] = ' ';
                ++i;
                st = St::Code;
            } else if (c != '\n') {
                out[i] = ' ';
            }
            break;
          case St::Str:
            if (c == '\\') {
                out[i] = ' ';
                if (n != '\n')
                    out[i + 1] = ' ';
                ++i;
            } else if (c == '"') {
                st = St::Code;
            } else if (c != '\n') {
                out[i] = ' ';
            }
            break;
          case St::Chr:
            if (c == '\\') {
                out[i] = ' ';
                if (n != '\n')
                    out[i + 1] = ' ';
                ++i;
            } else if (c == '\'') {
                st = St::Code;
            } else {
                out[i] = ' ';
            }
            break;
        }
    }
    return out;
}

SourceFile
prepare(std::string path, std::string raw)
{
    SourceFile f;
    f.path = std::move(path);
    f.raw = std::move(raw);
    f.code = stripCommentsAndStrings(f.raw);
    f.lineStarts.push_back(0);
    for (std::size_t i = 0; i < f.raw.size(); ++i) {
        if (f.raw[i] == '\n')
            f.lineStarts.push_back(i + 1);
    }
    // Collect det:allow(<rule>) markers from the raw text.
    static const std::string kTag = "det:allow(";
    std::size_t pos = 0;
    while ((pos = f.raw.find(kTag, pos)) != std::string::npos) {
        const std::size_t open = pos + kTag.size();
        const std::size_t close = f.raw.find(')', open);
        if (close != std::string::npos) {
            f.allows.emplace(lineOf(f, pos),
                             f.raw.substr(open, close - open));
        }
        pos = open;
    }
    return f;
}

/** Suppressed when the marker sits on the same or the preceding line. */
bool
suppressed(const SourceFile &f, std::size_t line, const std::string &rule)
{
    for (std::size_t l : {line, line > 1 ? line - 1 : line}) {
        auto [lo, hi] = f.allows.equal_range(l);
        for (auto it = lo; it != hi; ++it) {
            if (it->second == rule || it->second == "all")
                return true;
        }
    }
    return false;
}

bool
identChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/** Offsets of whole-word occurrences of @p word in @p code. */
std::vector<std::size_t>
findWord(const std::string &code, const std::string &word)
{
    std::vector<std::size_t> out;
    std::size_t pos = 0;
    while ((pos = code.find(word, pos)) != std::string::npos) {
        const bool leftOk = pos == 0 || !identChar(code[pos - 1]);
        const std::size_t end = pos + word.size();
        const bool rightOk = end >= code.size() || !identChar(code[end]);
        if (leftOk && rightOk)
            out.push_back(pos);
        pos = end;
    }
    return out;
}

void
addViolation(std::vector<Violation> &out, const SourceFile &f,
             std::size_t offset, const std::string &rule,
             std::string message)
{
    const std::size_t line = lineOf(f, offset);
    if (suppressed(f, line, rule))
        return;
    out.push_back({f.path, line, rule, std::move(message)});
}

// ---------------------------------------------------------------------
// Rule: wallclock
// ---------------------------------------------------------------------

void
checkWallclock(const SourceFile &f, std::vector<Violation> &out)
{
    static const char *kBanned[] = {"system_clock", "steady_clock",
                                    "high_resolution_clock",
                                    "random_device"};
    for (const char *token : kBanned) {
        for (std::size_t pos : findWord(f.code, token)) {
            addViolation(out, f, pos, "wallclock",
                         std::string(token) +
                             ": wall-clock time / OS entropy makes runs "
                             "irreproducible; use sim::SimTime / "
                             "sim::Rng");
        }
    }
}

// ---------------------------------------------------------------------
// Rule: pointer-keyed-container
// ---------------------------------------------------------------------

/** First depth-0 template argument after the '<' at @p open. */
std::string
firstTemplateArg(const std::string &code, std::size_t open)
{
    int depth = 0;
    std::size_t i = open;
    for (; i < code.size(); ++i) {
        const char c = code[i];
        if (c == '<') {
            ++depth;
        } else if (c == '>') {
            if (--depth == 0)
                break;
        } else if (c == ',' && depth == 1) {
            break;
        } else if (c == ';' || c == '{') {
            break; // not a template after all (e.g. operator<)
        }
    }
    if (i >= code.size())
        return {}; // unterminated: not a real template argument list
    if (code[i] == ';' || code[i] == '{')
        return {}; // comparison operator, not a template
    return code.substr(open + 1, i - open - 1);
}

void
checkPointerKeyed(const SourceFile &f, std::vector<Violation> &out)
{
    static const char *kContainers[] = {"map", "set", "multimap",
                                        "multiset", "unordered_map",
                                        "unordered_set"};
    for (const char *cont : kContainers) {
        for (std::size_t pos : findWord(f.code, cont)) {
            std::size_t open = pos + std::strlen(cont);
            while (open < f.code.size() &&
                   std::isspace(static_cast<unsigned char>(f.code[open])))
                ++open;
            if (open >= f.code.size() || f.code[open] != '<')
                continue;
            const std::string key = firstTemplateArg(f.code, open);
            if (key.find('*') != std::string::npos) {
                addViolation(out, f, pos, "pointer-keyed-container",
                             std::string(cont) + " keyed by a pointer: "
                             "iteration order depends on allocation "
                             "addresses; key by a stable id instead");
            }
        }
    }
}

// ---------------------------------------------------------------------
// Rule: std-function-in-sim
// ---------------------------------------------------------------------

bool
isSimKernelFile(const std::string &path)
{
    return path.find("src/sim/") != std::string::npos ||
           path.rfind("sim/", 0) == 0;
}

void
checkStdFunction(const SourceFile &f, std::vector<Violation> &out)
{
    if (!isSimKernelFile(f.path))
        return;
    std::size_t pos = 0;
    while ((pos = f.code.find("std::function", pos)) != std::string::npos) {
        addViolation(out, f, pos, "std-function-in-sim",
                     "std::function in the sim kernel: the DES hot path "
                     "is allocation-free (InlineCallback); use it or "
                     "suppress for cold paths");
        pos += 13;
    }
}

// ---------------------------------------------------------------------
// Rule: unordered-iteration
// ---------------------------------------------------------------------

struct Function
{
    std::string name;
    std::size_t bodyBegin = 0; // offset just after '{'
    std::size_t bodyEnd = 0;   // offset of matching '}'
};

/**
 * AST-lite function extraction: a '{' whose backward context looks
 * like `name(args) [const|noexcept|-> T]` starts a function body; the
 * body ends at the matching '}'. Nested lambdas stay inside the
 * enclosing function's range, which is what the rule wants.
 */
std::vector<Function>
extractFunctions(const std::string &code)
{
    std::vector<Function> out;
    std::size_t i = 0;
    while (i < code.size()) {
        if (code[i] != '{') {
            ++i;
            continue;
        }
        // Walk back over qualifiers to the closing ')' of a parameter
        // list.
        std::size_t j = i;
        auto skipBackWs = [&] {
            while (j > 0 &&
                   std::isspace(static_cast<unsigned char>(code[j - 1])))
                --j;
        };
        skipBackWs();
        for (const char *qual :
             {"const", "noexcept", "override", "final", "mutable"}) {
            const std::size_t len = std::strlen(qual);
            if (j >= len && code.compare(j - len, len, qual) == 0) {
                j -= len;
                skipBackWs();
            }
        }
        // Tolerate a trailing-return-type `-> T` (identifier-ish only).
        {
            std::size_t k = j;
            while (k > 0 && (identChar(code[k - 1]) || code[k - 1] == ':' ||
                             code[k - 1] == '<' || code[k - 1] == '>' ||
                             code[k - 1] == ' '))
                --k;
            if (k >= 2 && code[k - 1] == '>' && code[k - 2] == '-') {
                j = k - 2;
                skipBackWs();
            }
        }
        if (j == 0 || code[j - 1] != ')') {
            ++i;
            continue;
        }
        // Match back to the opening '(' and read the identifier.
        int depth = 0;
        std::size_t p = j - 1;
        for (;; --p) {
            if (code[p] == ')')
                ++depth;
            else if (code[p] == '(' && --depth == 0)
                break;
            if (p == 0)
                break;
        }
        if (p == 0 && depth != 0) {
            ++i;
            continue;
        }
        std::size_t nameEnd = p;
        while (nameEnd > 0 && std::isspace(static_cast<unsigned char>(
                                  code[nameEnd - 1])))
            --nameEnd;
        std::size_t nameBegin = nameEnd;
        while (nameBegin > 0 && identChar(code[nameBegin - 1]))
            --nameBegin;
        if (nameBegin == nameEnd) {
            ++i;
            continue;
        }
        const std::string name = code.substr(nameBegin,
                                             nameEnd - nameBegin);
        // Control-flow keywords introduce blocks, not functions.
        static const std::set<std::string> kKeywords{
            "if", "for", "while", "switch", "catch", "return", "sizeof",
            "alignof", "co_await", "co_return", "co_yield", "defined"};
        if (kKeywords.count(name)) {
            ++i;
            continue;
        }
        // Find the matching closing brace.
        int braces = 1;
        std::size_t end = i + 1;
        while (end < code.size() && braces > 0) {
            if (code[end] == '{')
                ++braces;
            else if (code[end] == '}')
                --braces;
            ++end;
        }
        out.push_back({name, i + 1, end > i ? end - 1 : i + 1});
        ++i;
    }
    return out;
}

/** Does @p body call one of @p names (word followed by '(')? */
bool
callsAnyOf(const std::string &code, const Function &fn,
           const std::set<std::string> &names)
{
    const std::string body = code.substr(fn.bodyBegin,
                                         fn.bodyEnd - fn.bodyBegin);
    for (const auto &name : names) {
        for (std::size_t pos : findWord(body, name)) {
            std::size_t k = pos + name.size();
            while (k < body.size() &&
                   std::isspace(static_cast<unsigned char>(body[k])))
                ++k;
            if (k < body.size() && body[k] == '(')
                return true;
        }
    }
    return false;
}

/** Names of variables/members declared as unordered containers. */
std::set<std::string>
unorderedVarNames(const std::string &code)
{
    std::set<std::string> out;
    for (const char *cont : {"unordered_map", "unordered_set",
                             "unordered_multimap",
                             "unordered_multiset"}) {
        for (std::size_t pos : findWord(code, cont)) {
            std::size_t open = pos + std::strlen(cont);
            while (open < code.size() &&
                   std::isspace(static_cast<unsigned char>(code[open])))
                ++open;
            if (open >= code.size() || code[open] != '<')
                continue;
            // Skip the template argument list.
            int depth = 0;
            std::size_t i = open;
            for (; i < code.size(); ++i) {
                if (code[i] == '<')
                    ++depth;
                else if (code[i] == '>' && --depth == 0)
                    break;
            }
            if (i >= code.size())
                continue;
            // The declared name follows (possibly after &/whitespace).
            std::size_t k = i + 1;
            while (k < code.size() &&
                   (std::isspace(static_cast<unsigned char>(code[k])) ||
                    code[k] == '&'))
                ++k;
            std::size_t nameEnd = k;
            while (nameEnd < code.size() && identChar(code[nameEnd]))
                ++nameEnd;
            if (nameEnd > k)
                out.insert(code.substr(k, nameEnd - k));
        }
    }
    return out;
}

void
checkUnorderedIteration(const SourceFile &f, std::vector<Violation> &out)
{
    const std::set<std::string> unordered = unorderedVarNames(f.code);
    if (unordered.empty())
        return;

    const std::vector<Function> fns = extractFunctions(f.code);
    static const std::set<std::string> kSchedulers{
        "schedule", "scheduleResume", "delay"};

    // Functions that schedule directly, then one transitive hop.
    std::set<std::string> scheduling;
    for (const auto &fn : fns) {
        if (callsAnyOf(f.code, fn, kSchedulers))
            scheduling.insert(fn.name);
    }
    std::set<std::string> reaches = scheduling;
    for (const auto &fn : fns) {
        if (!reaches.count(fn.name) &&
            callsAnyOf(f.code, fn, scheduling))
            reaches.insert(fn.name);
    }

    for (const auto &fn : fns) {
        if (!reaches.count(fn.name))
            continue;
        const std::string body = f.code.substr(fn.bodyBegin,
                                               fn.bodyEnd - fn.bodyBegin);
        for (const auto &var : unordered) {
            // Range-for over the container…
            std::size_t pos = 0;
            while ((pos = body.find(':', pos)) != std::string::npos) {
                std::size_t k = pos + 1;
                if (k < body.size() && body[k] == ':') {
                    pos = k + 1; // `::` qualifier, not a range-for
                    continue;
                }
                while (k < body.size() &&
                       std::isspace(static_cast<unsigned char>(body[k])))
                    ++k;
                if (body.compare(k, var.size(), var) == 0 &&
                    (k + var.size() >= body.size() ||
                     !identChar(body[k + var.size()]))) {
                    addViolation(
                        out, f, fn.bodyBegin + pos,
                        "unordered-iteration",
                        "iterating '" + var + "' (unordered) in '" +
                            fn.name + "', which reaches schedule/delay: "
                            "hash order would feed event order");
                }
                ++pos;
            }
            // …or explicit begin()/end() iteration.
            for (const char *meth : {".begin", ".end", ".cbegin"}) {
                const std::string pat = var + meth;
                std::size_t q = 0;
                while ((q = body.find(pat, q)) != std::string::npos) {
                    addViolation(
                        out, f, fn.bodyBegin + q, "unordered-iteration",
                        "iterating '" + var + "' (unordered) in '" +
                            fn.name + "', which reaches schedule/delay: "
                            "hash order would feed event order");
                    q += pat.size();
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------

std::vector<Violation>
runRules(const std::string &path, const std::string &content)
{
    SourceFile f = prepare(path, content);
    std::vector<Violation> out;
    checkWallclock(f, out);
    checkPointerKeyed(f, out);
    checkStdFunction(f, out);
    checkUnorderedIteration(f, out);
    return out;
}

bool
scannable(const fs::path &p)
{
    static const std::set<std::string> kExts{".hh", ".cc", ".hpp",
                                            ".cpp", ".h"};
    if (!kExts.count(p.extension().string()))
        return false;
    // bench/ is exempt from the wallclock rule (and everything else):
    // benchmarks legitimately measure host time.
    const std::string s = p.generic_string();
    return s.find("/bench/") == std::string::npos &&
           s.rfind("bench/", 0) != 0;
}

int
scan(const std::vector<std::string> &roots)
{
    std::vector<Violation> all;
    std::size_t files = 0;
    for (const auto &root : roots) {
        std::vector<fs::path> paths;
        if (fs::is_directory(root)) {
            for (const auto &e : fs::recursive_directory_iterator(root)) {
                if (e.is_regular_file() && scannable(e.path()))
                    paths.push_back(e.path());
            }
        } else {
            paths.push_back(root);
        }
        std::sort(paths.begin(), paths.end());
        for (const auto &p : paths) {
            std::ifstream in(p);
            std::stringstream ss;
            ss << in.rdbuf();
            ++files;
            auto v = runRules(p.generic_string(), ss.str());
            all.insert(all.end(), v.begin(), v.end());
        }
    }
    for (const auto &v : all) {
        std::fprintf(stderr, "%s:%zu: [%s] %s\n", v.file.c_str(), v.line,
                     v.rule.c_str(), v.message.c_str());
    }
    std::printf("lint_determinism: %zu file(s), %zu violation(s)\n",
                files, all.size());
    return all.empty() ? 0 : 1;
}

// ---------------------------------------------------------------------
// Self-test fixtures
// ---------------------------------------------------------------------

struct Fixture
{
    const char *name;
    const char *path;
    const char *content;
    /** Expected rules, in report order; empty = must be clean. */
    std::vector<std::string> expect;
};

int
selfTest()
{
    const std::vector<Fixture> fixtures = {
        {"wallclock hit", "src/os/kernel.cc",
         "void f() { auto t = std::chrono::system_clock::now(); }\n",
         {"wallclock"}},
        {"wallclock in comment ok", "src/os/kernel.cc",
         "// std::chrono::system_clock is banned here\nvoid f() {}\n",
         {}},
        {"wallclock in string ok", "src/os/kernel.cc",
         "const char *s = \"system_clock\";\n", {}},
        {"random_device hit", "src/sim/random.cc",
         "int seed() { std::random_device rd; return rd(); }\n",
         {"wallclock"}},
        {"suppression same line", "src/os/kernel.cc",
         "auto t = std::chrono::steady_clock::now(); // det:allow("
         "wallclock)\n",
         {}},
        {"suppression previous line", "src/os/kernel.cc",
         "// det:allow(wallclock)\n"
         "auto t = std::chrono::steady_clock::now();\n",
         {}},
        {"suppression wrong rule still fires", "src/os/kernel.cc",
         "// det:allow(unordered-iteration)\n"
         "auto t = std::chrono::steady_clock::now();\n",
         {"wallclock"}},
        {"pointer-keyed map", "src/core/scheduler.hh",
         "std::map<Process *, int> byProc_;\n",
         {"pointer-keyed-container"}},
        {"pointer-keyed set", "src/core/scheduler.hh",
         "std::set<const Link *> seen_;\n",
         {"pointer-keyed-container"}},
        {"value-keyed map ok", "src/core/scheduler.hh",
         "std::map<std::pair<int, int>, Route> routes_;\n"
         "std::map<std::string, int *> ptrValuesAreFine_;\n",
         {}},
        {"std::function in sim", "src/sim/queue.hh",
         "std::function<void()> cb_;\n", {"std-function-in-sim"}},
        {"std::function outside sim ok", "src/os/memory.hh",
         "std::function<bool(std::int64_t)> hook_;\n", {}},
        {"unordered iteration in scheduling fn", "src/core/gateway.cc",
         "std::unordered_map<int, int> pending_;\n"
         "void pump() {\n"
         "    for (auto &kv : pending_)\n"
         "        sim.schedule(t, kv.second);\n"
         "}\n",
         {"unordered-iteration"}},
        {"unordered iteration one hop from scheduling",
         "src/core/gateway.cc",
         "std::unordered_set<int> ready_;\n"
         "void kick(int id) { sim.schedule(t, id); }\n"
         "void pumpAll() {\n"
         "    for (int id : ready_)\n"
         "        kick(id);\n"
         "}\n",
         {"unordered-iteration"}},
        {"unordered iteration without scheduling ok",
         "src/core/gateway.cc",
         "std::unordered_map<int, int> stats_;\n"
         "int total() {\n"
         "    int n = 0;\n"
         "    for (auto &kv : stats_)\n"
         "        n += kv.second;\n"
         "    return n;\n"
         "}\n",
         {}},
        {"ordered iteration in scheduling fn ok", "src/core/gateway.cc",
         "std::map<int, int> pending_;\n"
         "void pump() {\n"
         "    for (auto &kv : pending_)\n"
         "        sim.schedule(t, kv.second);\n"
         "}\n",
         {}},
        {"unordered begin() in scheduling fn", "src/core/gateway.cc",
         "std::unordered_map<int, int> pending_;\n"
         "void pump() {\n"
         "    auto it = pending_.begin();\n"
         "    sim.delay(t);\n"
         "}\n",
         {"unordered-iteration"}},
    };

    int failures = 0;
    for (const auto &fx : fixtures) {
        const auto got = runRules(fx.path, fx.content);
        std::vector<std::string> rules;
        rules.reserve(got.size());
        for (const auto &v : got)
            rules.push_back(v.rule);
        if (rules != fx.expect) {
            ++failures;
            std::fprintf(stderr, "FAIL %s: expected [", fx.name);
            for (const auto &r : fx.expect)
                std::fprintf(stderr, " %s", r.c_str());
            std::fprintf(stderr, " ] got [");
            for (const auto &v : got)
                std::fprintf(stderr, " %s(%zu:%s)", v.rule.c_str(),
                             v.line, v.message.substr(0, 24).c_str());
            std::fprintf(stderr, " ]\n");
        }
    }
    std::printf("lint_determinism --self-test: %zu fixtures, %d "
                "failure(s)\n",
                fixtures.size(), failures);
    return failures == 0 ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> roots;
    bool runSelfTest = false;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--self-test")
            runSelfTest = true;
        else
            roots.push_back(arg);
    }
    if (runSelfTest)
        return selfTest();
    if (roots.empty()) {
        std::fprintf(stderr,
                     "usage: lint_determinism [--self-test] <path>...\n");
        return 2;
    }
    return scan(roots);
}
