/**
 * @file
 * trace_report: turn obs traces into phase breakdowns and validate
 * exported trace files.
 *
 * Subcommands (all run the real stack in simulation; nothing here
 * needs a prior run):
 *
 *   fig10 [--check]
 *       Cold-start one Python function with tracing on and print the
 *       Figure-10-style startup phase decomposition from the span
 *       tree. --check additionally verifies the invariant that the
 *       root span's phase durations sum exactly to the end-to-end
 *       latency (sim time makes this exact, not approximate).
 *
 *   fig12 --json PATH [--bin PATH] [--validate]
 *       Run the Alexa DAG (CPU->DPU placement) with tracing on and
 *       export the Chrome trace-event JSON (loads in Perfetto).
 *       --validate checks the span tree (one span per layer per
 *       invocation, nIPC spans on cross-PU traces) and the emitted
 *       file's structure.
 *
 *   report BIN
 *       Load a binary trace written by obs::writeBinary and print the
 *       per-phase latency table (count, total, p50/p95/p99).
 *
 *   recovery [--check]
 *       Crash a DPU under traced load and print the fault->recovery
 *       timeline (fault.inject, retry.backoff, fault.restart,
 *       recovery.resync + recovery.rewarm). --check verifies the
 *       causal shape: the fault span precedes recovery, the resync
 *       moved bytes, and the re-warm completed.
 *
 *   --validate FILE
 *       Structurally validate an existing Chrome trace JSON file.
 *
 * Exit status is non-zero when any requested check fails, so CI can
 * gate on it. With MOLECULE_TRACING=0 the tool compiles to a stub
 * that reports the configuration and succeeds.
 */

#include <cstdio>
#include <cstring>
#include <string>

#include "obs/trace.hh"

#if MOLECULE_TRACING

#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <vector>

#include "core/molecule.hh"
#include "fault/injector.hh"
#include "obs/export.hh"
#include "sim/table.hh"
#include "workloads/catalog.hh"

namespace {

using namespace molecule;

/** Span records index: children grouped under each parent id. */
struct SpanTree
{
    std::vector<obs::SpanRecord> records;
    std::map<std::uint64_t, const obs::SpanRecord *> byId;
    std::map<std::uint64_t, std::vector<const obs::SpanRecord *>> kids;

    explicit SpanTree(std::vector<obs::SpanRecord> recs)
        : records(std::move(recs))
    {
        for (const auto &r : records) {
            byId[r.spanId] = &r;
            kids[r.parentId].push_back(&r);
        }
    }

    std::int64_t
    durationNs(const obs::SpanRecord &r) const
    {
        return r.end - r.start;
    }

    /** All layers present in @p root's subtree (inclusive). */
    void
    collectLayers(const obs::SpanRecord &root,
                  std::set<int> &layers) const
    {
        layers.insert(int(root.layer));
        auto it = kids.find(root.spanId);
        if (it == kids.end())
            return;
        for (const auto *k : it->second)
            collectLayers(*k, layers);
    }

    void
    collectPus(const obs::SpanRecord &root, std::set<int> &pus) const
    {
        if (root.pu >= 0)
            pus.insert(root.pu);
        auto it = kids.find(root.spanId);
        if (it == kids.end())
            return;
        for (const auto *k : it->second)
            collectPus(*k, pus);
    }
};

double
toMs(std::int64_t ns)
{
    return double(ns) / 1e6;
}

/**
 * The fig10 scenario: one cold cfork invocation of a Python function
 * with a tracer attached. Returns the tracer's record buffer.
 */
std::vector<obs::SpanRecord>
runFig10Scenario()
{
    sim::Simulation simu;
    obs::Tracer tracer(simu, 42);
    auto computer = hw::buildCpuDpuServer(simu, 2,
                                          hw::DpuGeneration::Bf1);
    core::MoleculeOptions options;
    options.tracer = &tracer;
    core::Molecule runtime(*computer, options);
    runtime.registerCpuFunction("image-resize",
                                {hw::PuType::HostCpu, hw::PuType::Dpu});
    runtime.start();
    (void)runtime.invokeSync("image-resize", 0);
    return tracer.records().snapshot();
}

/** The fig12 scenario: Alexa DAG, CPU->DPU placement, IPC mode. */
std::vector<obs::SpanRecord>
runFig12Scenario()
{
    sim::Simulation simu;
    obs::Tracer tracer(simu, 42);
    auto computer = hw::buildCpuDpuServer(simu, 2,
                                          hw::DpuGeneration::Bf1);
    core::MoleculeOptions options;
    options.tracer = &tracer;
    core::Molecule runtime(*computer, options);
    for (const auto &fn : workloads::Catalog::alexaChain())
        runtime.registerCpuFunction(fn,
                                    {hw::PuType::HostCpu,
                                     hw::PuType::Dpu});
    runtime.start();

    core::ChainSpec spec;
    spec.name = "alexa";
    auto fns = workloads::Catalog::alexaChain();
    spec.nodes.push_back(core::ChainNode{fns[0], -1});
    spec.nodes.push_back(core::ChainNode{fns[1], 0});
    spec.nodes.push_back(core::ChainNode{fns[2], 1});
    spec.nodes.push_back(core::ChainNode{fns[3], 2});
    spec.nodes.push_back(core::ChainNode{fns[4], 2});
    (void)runtime.invokeChainSync(spec, {0, 1, 0, 1, 1});
    return tracer.records().snapshot();
}

/** Print the startup phase decomposition of the first trace. */
int
cmdFig10(bool check)
{
    SpanTree tree(runFig10Scenario());

    // The root "invoke" span of the (single) trace.
    const obs::SpanRecord *root = nullptr;
    for (const auto &r : tree.records)
        if (r.parentId == 0 && std::strcmp(r.name, "invoke") == 0)
            root = &r;
    if (root == nullptr) {
        std::fprintf(stderr, "no root invoke span recorded\n");
        return 1;
    }

    sim::Table t("Figure-10 startup phase decomposition (cold cfork)");
    t.header({"phase", "layer", "ms"});
    std::int64_t phaseSum = 0;
    auto it = tree.kids.find(root->spanId);
    if (it != tree.kids.end()) {
        for (const auto *k : it->second) {
            t.row({k->name, obs::toString(k->layer),
                   sim::Table::num(toMs(tree.durationNs(*k)), 3)});
            phaseSum += tree.durationNs(*k);
        }
    }
    t.row({"end-to-end", "core",
           sim::Table::num(toMs(tree.durationNs(*root)), 3)});
    t.print();

    if (!check)
        return 0;
    // The phases of one invocation are sequential and contiguous in
    // sim time, so their durations must sum exactly to the root's.
    if (phaseSum != tree.durationNs(*root)) {
        std::fprintf(stderr,
                     "FAIL: phase sum %lld ns != end-to-end %lld ns\n",
                     (long long)phaseSum,
                     (long long)tree.durationNs(*root));
        return 1;
    }
    std::printf("OK: phases sum to end-to-end latency (%lld ns)\n",
                (long long)tree.durationNs(*root));
    return 0;
}

/**
 * Span-tree validation: every per-node "invoke" subtree must touch
 * the core, os, sandbox and hw layers; every trace whose spans touch
 * more than one PU must contain xpu-layer (nIPC) spans.
 */
bool
validateRecords(const SpanTree &tree)
{
    bool ok = true;
    int invokes = 0;
    for (const auto &r : tree.records) {
        if (std::strcmp(r.name, "invoke") != 0)
            continue;
        ++invokes;
        std::set<int> layers;
        tree.collectLayers(r, layers);
        for (obs::Layer need :
             {obs::Layer::Core, obs::Layer::Os, obs::Layer::Sandbox,
              obs::Layer::Hw}) {
            if (!layers.count(int(need))) {
                std::fprintf(stderr,
                             "FAIL: invoke span %llu (%s) has no %s "
                             "layer span\n",
                             (unsigned long long)r.spanId, r.detail,
                             obs::toString(need));
                ok = false;
            }
        }
    }
    if (invokes == 0) {
        std::fprintf(stderr, "FAIL: no invoke spans recorded\n");
        ok = false;
    }

    // Per-trace cross-PU check.
    std::map<std::uint64_t, std::set<int>> pusOf;
    std::map<std::uint64_t, bool> hasXpu;
    for (const auto &r : tree.records) {
        if (r.pu >= 0)
            pusOf[r.traceId].insert(r.pu);
        if (r.layer == obs::Layer::Xpu)
            hasXpu[r.traceId] = true;
    }
    for (const auto &[trace, pus] : pusOf) {
        if (pus.size() > 1 && !hasXpu[trace]) {
            std::fprintf(stderr,
                         "FAIL: trace %016llx spans %zu PUs but has "
                         "no xpu-layer span\n",
                         (unsigned long long)trace, pus.size());
            ok = false;
        }
    }
    return ok;
}

/**
 * Structural validation of a Chrome trace JSON file: quote-aware
 * brace/bracket balance, the traceEvents envelope, and matched
 * async/flow event pairs. (Not a full JSON parser — the goal is to
 * catch emitter regressions, not to re-implement Perfetto.)
 */
bool
validateJsonFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        std::fprintf(stderr, "FAIL: cannot open '%s'\n", path.c_str());
        return false;
    }
    std::stringstream ss;
    ss << in.rdbuf();
    const std::string text = ss.str();

    long brace = 0, bracket = 0;
    bool inString = false, escape = false;
    for (char c : text) {
        if (escape) {
            escape = false;
            continue;
        }
        if (c == '\\') {
            escape = inString;
            continue;
        }
        if (c == '"') {
            inString = !inString;
            continue;
        }
        if (inString)
            continue;
        brace += c == '{' ? 1 : c == '}' ? -1 : 0;
        bracket += c == '[' ? 1 : c == ']' ? -1 : 0;
        if (brace < 0 || bracket < 0)
            break;
    }
    bool ok = true;
    if (brace != 0 || bracket != 0 || inString) {
        std::fprintf(stderr,
                     "FAIL: unbalanced JSON structure in '%s'\n",
                     path.c_str());
        ok = false;
    }
    if (text.find("\"traceEvents\"") == std::string::npos) {
        std::fprintf(stderr, "FAIL: no traceEvents envelope\n");
        ok = false;
    }

    auto countOf = [&text](const char *needle) {
        std::size_t n = 0, pos = 0;
        const std::size_t len = std::strlen(needle);
        while ((pos = text.find(needle, pos)) != std::string::npos) {
            ++n;
            pos += len;
        }
        return n;
    };
    if (countOf("\"ph\":\"X\"") == 0) {
        std::fprintf(stderr, "FAIL: no complete (X) events\n");
        ok = false;
    }
    if (countOf("\"ph\":\"b\"") != countOf("\"ph\":\"e\"")) {
        std::fprintf(stderr, "FAIL: unbalanced async b/e events\n");
        ok = false;
    }
    if (countOf("\"ph\":\"s\"") != countOf("\"ph\":\"f\"")) {
        std::fprintf(stderr, "FAIL: unbalanced flow s/f events\n");
        ok = false;
    }
    return ok;
}

int
cmdFig12(const std::string &jsonPath, const std::string &binPath,
         bool validate)
{
    SpanTree tree(runFig12Scenario());

    if (!jsonPath.empty() &&
        !obs::writeChromeTrace(jsonPath, tree.records)) {
        std::fprintf(stderr, "FAIL: cannot write '%s'\n",
                     jsonPath.c_str());
        return 1;
    }
    if (!binPath.empty() && !obs::writeBinary(binPath, tree.records)) {
        std::fprintf(stderr, "FAIL: cannot write '%s'\n",
                     binPath.c_str());
        return 1;
    }

    std::set<std::uint64_t> traces;
    for (const auto &r : tree.records)
        traces.insert(r.traceId);
    std::printf("fig12: %zu spans across %zu trace(s)",
                tree.records.size(), traces.size());
    if (!jsonPath.empty())
        std::printf(", json -> %s", jsonPath.c_str());
    if (!binPath.empty())
        std::printf(", bin -> %s", binPath.c_str());
    std::printf("\n");

    if (!validate)
        return 0;
    bool ok = validateRecords(tree);
    if (!jsonPath.empty())
        ok = validateJsonFile(jsonPath) && ok;
    if (ok)
        std::printf("OK: trace validates\n");
    return ok ? 0 : 1;
}

/**
 * The recovery scenario: warm a DPU, crash it under a planned fault
 * while invocations retry with failover, let it restart and re-warm.
 */
std::vector<obs::SpanRecord>
runRecoveryScenario()
{
    sim::Simulation simu;
    obs::Tracer tracer(simu, 42);
    auto computer = hw::buildCpuDpuServer(simu, 2,
                                          hw::DpuGeneration::Bf1);
    fault::FaultState faults;
    core::MoleculeOptions options;
    options.tracer = &tracer;
    options.faults = &faults;
    core::Molecule runtime(*computer, options);
    runtime.registerCpuFunction("image-resize",
                                {hw::PuType::HostCpu, hw::PuType::Dpu});
    runtime.start();

    core::InvokeOptions opts;
    opts.pu = 1;
    opts.maxAttempts = 3;
    (void)runtime.invokeSync("image-resize", opts); // warm the DPU

    fault::Injector injector(simu, faults, &tracer);
    fault::InjectionPlan plan;
    plan.crashPu(1, simu.now(), sim::SimTime::milliseconds(6));
    injector.arm(plan);
    (void)runtime.invokeSync("image-resize", opts); // fails over
    (void)runtime.invokeSync("image-resize", opts); // back on the DPU
    return tracer.records().snapshot();
}

/** Print the fault->recovery timeline; optionally check its shape. */
int
cmdRecovery(bool check)
{
    SpanTree tree(runRecoveryScenario());

    sim::Table t("Fault -> recovery timeline (DPU crash + restart)");
    t.header({"t (ms)", "span", "layer", "pu", "ms", "detail"});
    const obs::SpanRecord *inject = nullptr;
    const obs::SpanRecord *recovery = nullptr;
    const obs::SpanRecord *resync = nullptr;
    const obs::SpanRecord *rewarm = nullptr;
    bool sawBackoff = false;
    for (const auto &r : tree.records) {
        const bool interesting =
            std::strncmp(r.name, "fault.", 6) == 0 ||
            std::strncmp(r.name, "recovery", 8) == 0 ||
            std::strcmp(r.name, "retry.backoff") == 0;
        if (!interesting)
            continue;
        t.row({sim::Table::num(toMs(r.start), 3), r.name,
               obs::toString(r.layer), std::to_string(r.pu),
               sim::Table::num(toMs(tree.durationNs(r)), 3), r.detail});
        if (std::strcmp(r.name, "fault.inject") == 0)
            inject = &r;
        else if (std::strcmp(r.name, "recovery") == 0)
            recovery = &r;
        else if (std::strcmp(r.name, "recovery.resync") == 0)
            resync = &r;
        else if (std::strcmp(r.name, "recovery.rewarm") == 0)
            rewarm = &r;
        else if (std::strcmp(r.name, "retry.backoff") == 0)
            sawBackoff = true;
    }
    t.print();

    if (!check)
        return 0;
    bool ok = true;
    auto require = [&ok](bool cond, const char *what) {
        if (!cond) {
            std::fprintf(stderr, "FAIL: %s\n", what);
            ok = false;
        }
    };
    require(inject != nullptr, "no fault.inject span");
    require(sawBackoff, "no retry.backoff span");
    require(recovery != nullptr, "no recovery root span");
    require(resync != nullptr, "no recovery.resync span");
    require(rewarm != nullptr, "no recovery.rewarm span");
    if (inject != nullptr && recovery != nullptr)
        require(inject->start <= recovery->start,
                "recovery started before the fault");
    if (resync != nullptr)
        require(resync->arg > 0, "capability resync moved no bytes");
    if (recovery != nullptr && rewarm != nullptr)
        require(rewarm->parentId == recovery->spanId,
                "rewarm is not a child of the recovery span");
    if (ok)
        std::printf("OK: fault -> backoff -> restart -> resync -> "
                    "rewarm all traced\n");
    return ok ? 0 : 1;
}

int
cmdReport(const std::string &binPath)
{
    obs::LoadedTrace loaded = obs::readBinary(binPath);
    if (!loaded.ok) {
        std::fprintf(stderr, "FAIL: %s\n", loaded.error.c_str());
        return 1;
    }

    // One histogram per span name, in deterministic (map) order.
    std::map<std::string, obs::Histogram> byName;
    for (const auto &r : loaded.records)
        byName[r.name].add(toMs(r.end - r.start));

    sim::Table t("Per-phase latency (ms) - " + binPath);
    t.header({"phase", "count", "total", "p50", "p95", "p99"});
    for (const auto &[name, h] : byName) {
        t.row({name, sim::Table::num(double(h.count()), 0),
               sim::Table::num(h.sum(), 3),
               sim::Table::num(h.percentile(50), 3),
               sim::Table::num(h.percentile(95), 3),
               sim::Table::num(h.percentile(99), 3)});
    }
    t.print();
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    auto usage = [] {
        std::fprintf(stderr,
                     "usage: trace_report fig10 [--check]\n"
                     "       trace_report fig12 [--json PATH] "
                     "[--bin PATH] [--validate]\n"
                     "       trace_report recovery [--check]\n"
                     "       trace_report report BIN\n"
                     "       trace_report --validate FILE\n");
        return 2;
    };
    if (argc < 2)
        return usage();
    const std::string cmd = argv[1];

    if (cmd == "fig10") {
        bool check = false;
        for (int i = 2; i < argc; ++i)
            check = check || std::string(argv[i]) == "--check";
        return cmdFig10(check);
    }
    if (cmd == "fig12") {
        std::string jsonPath, binPath;
        bool validate = false;
        for (int i = 2; i < argc; ++i) {
            const std::string a = argv[i];
            if (a == "--json" && i + 1 < argc)
                jsonPath = argv[++i];
            else if (a == "--bin" && i + 1 < argc)
                binPath = argv[++i];
            else if (a == "--validate")
                validate = true;
            else
                return usage();
        }
        return cmdFig12(jsonPath, binPath, validate);
    }
    if (cmd == "recovery") {
        bool check = false;
        for (int i = 2; i < argc; ++i)
            check = check || std::string(argv[i]) == "--check";
        return cmdRecovery(check);
    }
    if (cmd == "report" && argc >= 3)
        return cmdReport(argv[2]);
    if (cmd == "--validate" && argc >= 3)
        return validateJsonFile(argv[2]) ? 0 : 1;
    return usage();
}

#else // !MOLECULE_TRACING

int
main()
{
    std::printf("trace_report: built with MOLECULE_TRACING=0; "
                "tracing is compiled out.\n");
    return 0;
}

#endif // MOLECULE_TRACING
