/**
 * @file
 * A smart-home pipeline (the paper's Alexa skill, §6.5) spread across
 * CPU and DPUs: front and smarthome on the host, interact and the two
 * actuator functions on the DPUs. Cross-PU edges use nIPC (XPU-FIFO
 * over RDMA); same-PU edges use direct-connect local FIFOs.
 */

#include <cstdio>

#include "core/molecule.hh"
#include "hw/computer.hh"
#include "workloads/catalog.hh"

int
main()
{
    using namespace molecule;
    using workloads::Catalog;

    sim::Simulation sim;
    auto computer = hw::buildCpuDpuServer(sim, 2,
                                          hw::DpuGeneration::Bf2);
    core::Molecule runtime(*computer, core::MoleculeOptions{});
    for (const auto &fn : Catalog::alexaChain())
        runtime.registerCpuFunction(fn,
                                    {hw::PuType::HostCpu,
                                     hw::PuType::Dpu});
    runtime.start();

    // front -> interact -> smarthome -> {door, light}
    core::ChainSpec spec;
    spec.name = "alexa";
    auto fns = Catalog::alexaChain();
    spec.nodes.push_back(core::ChainNode{fns[0], -1});
    spec.nodes.push_back(core::ChainNode{fns[1], 0});
    spec.nodes.push_back(core::ChainNode{fns[2], 1});
    spec.nodes.push_back(core::ChainNode{fns[3], 2});
    spec.nodes.push_back(core::ChainNode{fns[4], 2});

    // Spread the pipeline: host CPU (0) and the two DPUs (1, 2).
    std::vector<int> placement{0, 1, 0, 1, 2};

    auto rec = runtime.invokeChainSync(spec, placement).value();
    std::printf("alexa pipeline across CPU+2xDPU: e2e=%s\n\n",
                rec.endToEnd.toString().c_str());
    static const char *edges[] = {"front->interact",
                                  "interact->smarthome",
                                  "smarthome->door",
                                  "smarthome->light"};
    for (std::size_t i = 0; i < rec.edgeLatencies.size(); ++i) {
        const auto &inv = rec.invocations[i + 1];
        std::printf("  %-22s %-4s edge=%s\n", edges[i],
                    hw::toString(computer->pu(inv.pu).type()),
                    rec.edgeLatencies[i].toString().c_str());
    }

    // Compare with keeping everything on one PU (chain affinity).
    auto affinity = runtime.invokeChainSync(spec).value();
    std::printf("\nsame pipeline with chain-affinity placement: "
                "e2e=%s\n",
                affinity.endToEnd.toString().c_str());
    return 0;
}
