/**
 * @file
 * FPGA offload: a gzip function with both CPU and FPGA profiles.
 * Small files run on the CPU; big files go to the FPGA function,
 * whose kernel sits warm in a vectorized image alongside two matrix
 * kernels (one programming pass caches all three).
 */

#include <cstdio>

#include "core/molecule.hh"
#include "hw/computer.hh"

int
main()
{
    using namespace molecule;

    sim::Simulation sim;
    auto computer = hw::buildF1Server(sim, 8); // AWS F1.x16large
    core::Molecule runtime(*computer, core::MoleculeOptions{});
    runtime.registerCpuFunction("gzip-compression",
                                {hw::PuType::HostCpu});
    runtime.registerFpgaFunction("fpga-gzip");
    runtime.registerFpgaFunction("fpga-madd");
    runtime.registerFpgaFunction("fpga-mscale");
    runtime.start();

    // Keep-alive decided these three are hot: one image holds all.
    runtime.startup().setFpgaHotSet(
        0, {"fpga-gzip", "fpga-madd", "fpga-mscale"});

    const std::uint64_t mib = 1 << 20;
    std::printf("%-10s %-12s %-12s %s\n", "file", "CPU est.",
                "FPGA e2e", "decision");
    for (std::uint64_t bytes : {mib, 10 * mib, 50 * mib, 112 * mib}) {
        const auto &work = runtime.catalog().fpga("fpga-gzip");
        const auto cpuEst = work.cpuTime(bytes);
        auto rec = runtime.invokeFpgaSync("fpga-gzip", 0, bytes).value();
        const bool offload = rec.execution < cpuEst;
        std::printf("%3lluMB      %-12s %-12s %s%s\n",
                    (unsigned long long)(bytes / mib),
                    cpuEst.toString().c_str(),
                    rec.execution.toString().c_str(),
                    offload ? "FPGA" : "CPU",
                    rec.coldStart ? "  (paid one-time programming)"
                                  : "");
    }

    // The sibling kernels were cached by the same image: instant warm.
    auto madd = runtime.invokeFpgaSync("fpga-madd", 0, 1).value();
    std::printf("\nfpga-madd piggybacked in the image: cold=%s "
                "startup=%s exec=%s\n",
                madd.coldStart ? "yes" : "no",
                madd.startup.toString().c_str(),
                madd.execution.toString().c_str());
    return 0;
}
