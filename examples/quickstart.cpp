/**
 * @file
 * Quickstart: boot Molecule on a CPU+DPU machine, register a function
 * and invoke it cold and warm.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <cstdio>

#include "core/molecule.hh"
#include "hw/computer.hh"

int
main()
{
    using namespace molecule;

    // 1. A heterogeneous computer: Xeon host + two BlueField-2 DPUs.
    sim::Simulation sim;
    auto computer = hw::buildCpuDpuServer(sim, 2,
                                          hw::DpuGeneration::Bf2);

    // 2. The Molecule runtime with default options (cfork startup,
    //    IPC/nIPC DAG communication).
    core::Molecule runtime(*computer, core::MoleculeOptions{});

    // 3. Register a function from the workload catalog. Profiles list
    //    the PU kinds it may run on; the DPU profile is cheaper, so
    //    the scheduler will prefer it.
    runtime.registerCpuFunction("image-resize",
                                {hw::PuType::HostCpu, hw::PuType::Dpu});

    // 4. Boot: executors are xSpawn'ed onto every PU and cfork
    //    templates are prepared.
    runtime.start();

    // 5. Invoke. Outcomes are typed: invokeSync returns
    //    core::Expected<obs::InvocationRecord>, so a failure (e.g. an
    //    injected fault) surfaces as a core::Error instead of a crash.
    //    The first request cold-starts an instance via cfork; the
    //    second hits the keep-alive cache.
    auto outcome = runtime.invokeSync("image-resize");
    if (!outcome.ok()) {
        std::fprintf(stderr, "invoke failed: %s\n",
                     outcome.error().toString().c_str());
        return 1;
    }
    auto cold = outcome.value();
    std::printf("cold : pu=%d (%s)  startup=%s  comm=%s  exec=%s  "
                "e2e=%s\n",
                cold.pu, hw::toString(computer->pu(cold.pu).type()),
                cold.startup.toString().c_str(),
                cold.communication.toString().c_str(),
                cold.execution.toString().c_str(),
                cold.endToEnd.toString().c_str());

    auto warm = runtime.invokeSync("image-resize", cold.pu).value();
    std::printf("warm : pu=%d (%s)  startup=%s  comm=%s  exec=%s  "
                "e2e=%s\n",
                warm.pu, hw::toString(computer->pu(warm.pu).type()),
                warm.startup.toString().c_str(),
                warm.communication.toString().c_str(),
                warm.execution.toString().c_str(),
                warm.endToEnd.toString().c_str());

    std::printf("\ncold/warm speedup: %.1fx (cfork + keep-alive)\n",
                cold.endToEnd.toMilliseconds() /
                    warm.endToEnd.toMilliseconds());
    return 0;
}
