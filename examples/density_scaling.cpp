/**
 * @file
 * Vertical scaling with DPUs (the Fig 2-a effect), driven by the
 * seeded open-loop load generator: the identical bursty multi-tenant
 * stream (same seed, same TraceSpec, bit-for-bit replay) hits the
 * machine with 0, 1 and 2 BlueField DPUs attached, and the cheap DPU
 * instances absorb the traffic as they appear — the scheduler prices
 * DPU cores below host cores, so added DPUs take load off the host.
 */

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "core/molecule.hh"
#include "hw/computer.hh"
#include "load/generator.hh"

namespace {

using namespace molecule;

/** Replays every arrival onto the runtime and tallies the outcomes. */
class RuntimeSink final : public load::ArrivalSink
{
  public:
    RuntimeSink(core::Molecule &runtime,
                std::vector<std::string> functions, int puCount)
        : runtime_(runtime), functions_(std::move(functions)),
          perPu_(std::size_t(puCount), 0)
    {}

    void
    onArrival(const load::Arrival &a) override
    {
        runtime_.simulation().spawn(serve(a.fn));
    }

    std::int64_t completed() const { return completed_; }
    std::int64_t errors() const { return errors_; }
    std::int64_t coldStarts() const { return coldStarts_; }
    std::int64_t onPu(std::size_t pu) const { return perPu_.at(pu); }

    std::int64_t
    onDpus() const
    {
        std::int64_t n = 0;
        for (std::size_t pu = 1; pu < perPu_.size(); ++pu)
            n += perPu_[pu];
        return n;
    }

    double
    meanLatencyMs() const
    {
        if (completed_ == 0)
            return 0.0;
        return latencySum_.toSeconds() * 1e3 / double(completed_);
    }

  private:
    sim::Task<>
    serve(std::uint32_t fn)
    {
        auto rec =
            co_await runtime_.invoke(functions_.at(fn),
                                     core::InvokeOptions{});
        if (!rec.ok()) {
            ++errors_;
            co_return;
        }
        ++completed_;
        if (rec.value().coldStart)
            ++coldStarts_;
        perPu_.at(std::size_t(rec.value().pu)) += 1;
        latencySum_ = latencySum_ + rec.value().endToEnd;
    }

    core::Molecule &runtime_;
    std::vector<std::string> functions_;
    std::vector<std::int64_t> perPu_;
    std::int64_t completed_ = 0;
    std::int64_t errors_ = 0;
    std::int64_t coldStarts_ = 0;
    sim::SimTime latencySum_{0};
};

} // namespace

int
main()
{
    // One spec, replayed per configuration: a bursty (two-state MMPP)
    // stream with two tenants hammering different hot functions.
    load::TraceSpec trace;
    trace.seed = 42;
    trace.ratePerSecond = 120.0;
    trace.duration = sim::SimTime::seconds(20);
    trace.arrival = load::ArrivalKind::Mmpp;
    trace.burstFactor = 4.0;
    trace.functions = {"image-resize", "pyaes", "helloworld"};
    trace.tenants = {
        {"alpha", 3.0, 1.2, 1},
        {"beta", 1.0, 0.8, 2},
    };

    std::printf("stream %016llx: ~%.0f req/s bursty x %.0fs, "
                "%zu functions, %zu tenants\n\n",
                static_cast<unsigned long long>(
                    load::streamDigest(trace)),
                trace.ratePerSecond, trace.duration.toSeconds(),
                trace.functions.size(), trace.tenants.size());

    for (int dpus : {0, 1, 2}) {
        sim::Simulation sim(trace.seed);
        auto computer =
            hw::buildCpuDpuServer(sim, dpus, hw::DpuGeneration::Bf1);

        core::MoleculeOptions options;
        options.startup.warmCapacity = 1u << 10;
        core::Molecule runtime(*computer, options);
        for (const auto &fn : trace.functions)
            runtime.registerCpuFunction(
                fn, {hw::PuType::HostCpu, hw::PuType::Dpu});
        runtime.start();

        RuntimeSink sink(runtime, trace.functions,
                         computer->puCount());
        load::OpenLoopGenerator gen(trace);
        sim.spawn(load::drive(sim, gen, sink));
        sim.run();

        std::printf("CPU + %d DPU: %5lld served (%lld cold, "
                    "%lld failed) — %5lld on the host, "
                    "%5lld on DPUs, mean %6.2f ms\n",
                    dpus, static_cast<long long>(sink.completed()),
                    static_cast<long long>(sink.coldStarts()),
                    static_cast<long long>(sink.errors()),
                    static_cast<long long>(sink.onPu(0)),
                    static_cast<long long>(sink.onDpus()),
                    sink.meanLatencyMs());
    }
    std::printf("\nSame seed, same stream: each BlueField soaks up "
                "invocations the host would otherwise run — DPU "
                "instances are the cheap capacity of Fig 2-a.\n");
    return 0;
}
