/**
 * @file
 * Vertical scaling with DPUs (the Fig 2-a effect): keep admitting
 * image-processing instances and watch the machine's capacity grow
 * as DPUs are added — cfork's shared templates are what make DPU
 * instances cheap.
 */

#include <cstdio>

#include "core/molecule.hh"
#include "hw/computer.hh"

namespace {

using namespace molecule;

int
fill(core::Molecule &runtime, const core::FunctionDef &def, int pu,
     bool cfork)
{
    int count = 0;
    auto loop = [](core::Molecule *m, const core::FunctionDef *fn,
                   int target, bool useCfork, int *out) -> sim::Task<> {
        m->startup().options().useCfork = useCfork;
        while (true) {
            auto acq = co_await m->startup().acquire(*fn, target, 0);
            if (!acq.instance)
                break;
            ++*out;
        }
    };
    runtime.simulation().spawn(loop(&runtime, &def, pu, cfork, &count));
    runtime.simulation().run();
    return count;
}

} // namespace

int
main()
{
    for (int dpus : {0, 1, 2}) {
        sim::Simulation sim;
        auto computer = hw::buildCpuDpuServer(
            sim, dpus, hw::DpuGeneration::Bf1);
        computer->pu(0).tryAllocate(6ULL << 30); // host OS reserve
        for (int pu = 1; pu <= dpus; ++pu)
            computer->pu(pu).tryAllocate(512ULL << 20);

        core::MoleculeOptions options;
        options.startup.warmCapacity = 1u << 20;
        core::Molecule runtime(*computer, options);
        runtime.registerCpuFunction(
            "image-resize", {hw::PuType::HostCpu, hw::PuType::Dpu});
        runtime.start();

        const auto &def = runtime.registry().find("image-resize");
        int total = fill(runtime, def, 0, /*cfork=*/false);
        std::printf("CPU%s: %4d instances on the host",
                    dpus ? " + DPUs" : "      ", total);
        for (int pu = 1; pu <= dpus; ++pu) {
            const int n = fill(runtime, def, pu, /*cfork=*/true);
            total += n;
            std::printf(" + %d on %s", n,
                        computer->pu(pu).name().c_str());
        }
        std::printf("  => %d total\n", total);
    }
    std::printf("\nEach BlueField adds ~25%% more instances: cfork'd "
                "children only pay private pages.\n");
    return 0;
}
