/**
 * @file
 * GNN-style GPU serverless functions (the paper's §2.4 motivation:
 * Dorylus-class workloads want accelerators plus low-latency, frequent
 * invocations). A CUDA kernel function runs through runG behind the
 * same Molecule API as CPU and FPGA functions: the first call pays
 * MPS-context + module-load, every later call dispatches in
 * microseconds, and many modules stay resident concurrently.
 */

#include <cstdio>

#include "core/molecule.hh"
#include "hw/computer.hh"

int
main()
{
    using namespace molecule;
    using namespace molecule::sim::literals;

    sim::Simulation sim;
    auto computer = hw::buildFullHetero(sim); // CPU + 2 DPU + FPGA + GPU
    core::Molecule runtime(*computer, core::MoleculeOptions{});

    // Two stages of a GNN training step and a standalone embedding
    // lookup, all CUDA kernels.
    runtime.registerGpuFunction("gnn-gather", 3_ms, 8 << 20);
    runtime.registerGpuFunction("gnn-apply", 5_ms, 4 << 20);
    runtime.registerGpuFunction("embed-lookup", 400_us, 1 << 20);
    runtime.start();

    std::printf("%-14s %-6s %-12s %-12s %s\n", "function", "cold?",
                "startup", "exec", "e2e");
    for (const char *fn : {"gnn-gather", "gnn-apply", "embed-lookup"}) {
        auto rec = runtime.invokeGpuSync(fn, 0).value();
        std::printf("%-14s %-6s %-12s %-12s %s\n", fn,
                    rec.coldStart ? "yes" : "no",
                    rec.startup.toString().c_str(),
                    rec.execution.toString().c_str(),
                    rec.endToEnd.toString().c_str());
    }

    // Steady state: every module resident, dispatch is launch-only.
    std::printf("\nsteady-state invocations (all warm):\n");
    for (int i = 0; i < 3; ++i) {
        auto rec = runtime.invokeGpuSync("embed-lookup", 0).value();
        std::printf("  embed-lookup e2e=%s\n",
                    rec.endToEnd.toString().c_str());
    }
    std::printf("\n%zu modules resident on the GPU (MPS sharing, "
                "Table 5 generality row)\n",
                computer->gpuDev(0).residentCount());
    return 0;
}
