/**
 * @file
 * Figure 11: cfork optimization breakdown and memory usage.
 *
 *  (a) startup latency of the four startup paths on the Fig 11
 *      desktop (i7-9700): Baseline / +Naive cfork / +FuncContainer /
 *      +Cpuset opt;
 *  (b,c) average RSS and PSS per instance (image-resize-class
 *      function) at 1..16 concurrent instances, Molecule (cfork,
 *      shared template) vs baseline (independent cold boots).
 */

#include "bench/common.hh"
#include "sandbox/runc.hh"

namespace {

using namespace molecule;
using sandbox::CreateRequest;
using sandbox::FunctionImage;
using sandbox::Language;
using sandbox::RuncRuntime;
using sandbox::StartupPath;
using sim::SimTime;
using sim::Task;

/** The function used in the Fig 11 breakdown (tiny Python fn). */
FunctionImage
breakdownFunction()
{
    FunctionImage img;
    img.funcId = "pyfn";
    img.language = Language::Python;
    img.mem.runtimeShared = std::uint64_t(4.5 * (1 << 20));
    img.mem.privateBytes = 8 << 20;
    img.mem.templateExtra = std::uint64_t(3.5 * (1 << 20));
    return img;
}

struct DesktopHarness
{
    sim::Simulation sim;
    std::unique_ptr<hw::Computer> computer = hw::buildDesktop(sim);
    os::LocalOs os{computer->pu(0)};
    RuncRuntime runc{os};
    FunctionImage img = breakdownFunction();
    int counter = 0;

    void
    prepare()
    {
        auto prep = [](RuncRuntime *r, const FunctionImage *fi) -> Task<> {
            (void)co_await r->prepareTemplate(*fi);
            co_await r->prewarmFunctionContainers(24);
        };
        sim.spawn(prep(&runc, &img));
        sim.run();
    }

    SimTime
    createOnce(StartupPath path)
    {
        runc.setStartupPath(path);
        const std::string id = "sb" + std::to_string(counter++);
        const auto t0 = sim.now();
        auto doIt = [](RuncRuntime *r, CreateRequest req) -> Task<> {
            bool ok = co_await r->create(req);
            MOLECULE_ASSERT(ok, "create failed");
        };
        CreateRequest req{id, &img};
        sim.spawn(doIt(&runc, req));
        sim.run();
        return sim.now() - t0;
    }
};

} // namespace

int
main()
{
    using namespace molecule::bench;
    using molecule::sim::Table;

    banner("Figure 11: cfork breakdown and memory usage",
           "paper: 85.55 -> 47.25 -> 30.05 -> 8.40 ms; PSS ~34% lower "
           "at 16 instances, RSS higher due to the template");

    {
        DesktopHarness h;
        h.prepare();
        Table a("Figure 11-a: cfork breakdown on i7-9700 (ms)");
        a.header({"configuration", "startup"});
        a.row({"Baseline", ms(h.createOnce(StartupPath::ColdBoot))});
        a.row({"+Naive cfork",
               ms(h.createOnce(StartupPath::CforkNaive))});
        a.row({"+FuncContainer",
               ms(h.createOnce(StartupPath::CforkFuncContainer))});
        a.row({"+Cpuset opt",
               ms(h.createOnce(StartupPath::CforkCpusetOpt))});
        a.print();
    }

    // (b,c) memory: average RSS/PSS over all running instances. The
    // Molecule rows amortize the template container's RSS.
    Table b("Figure 11-b/c: memory per instance (MB) vs concurrency");
    b.header({"instances", "RSS base", "RSS Molecule", "PSS base",
              "PSS Molecule"});
    const double mb = double(1 << 20);
    for (int n : {1, 2, 4, 8, 16}) {
        DesktopHarness base;
        for (int i = 0; i < n; ++i)
            base.createOnce(StartupPath::ColdBoot);
        double baseRss = 0, basePss = 0;
        for (int i = 0; i < n; ++i) {
            const std::string id = "sb" + std::to_string(i);
            baseRss += double(base.runc.instanceRss(id));
            basePss += base.runc.instancePss(id);
        }

        DesktopHarness mol;
        mol.prepare();
        for (int i = 0; i < n; ++i)
            mol.createOnce(StartupPath::CforkCpusetOpt);
        double molRss = 0, molPss = 0;
        for (int i = 0; i < n; ++i) {
            const std::string id = "sb" + std::to_string(i);
            molRss += double(mol.runc.instanceRss(id));
            molPss += mol.runc.instancePss(id);
        }
        // Template resources belong to Molecule's footprint (§6.4).
        molRss += double(mol.runc.templateRss(Language::Python));

        b.row({std::to_string(n),
               Table::num(baseRss / n / mb, 2),
               Table::num(molRss / n / mb, 2),
               Table::num(basePss / n / mb, 2),
               Table::num(molPss / n / mb, 2)});
    }
    b.print();
    return 0;
}
