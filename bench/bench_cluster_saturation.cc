/**
 * @file
 * Cluster-substrate wall-clock bench: how fast the simulator chews
 * through open-loop load, as generator-only streams (arrivals
 * produced per wall second, one row per arrival process) and as the
 * full saturated fleet scenario of tools/cluster_report (invocations
 * completed per wall second, admission + dispatch + the whole
 * per-node Molecule pipeline).
 *
 * Writes BENCH_cluster.json (same PerfSnapshot shape perf_check
 * reads); the committed copy at the repo root is the reference the CI
 * perf-smoke job compares against, warn-only — the cluster rows span
 * the entire stack, so they are noisier than the simcore micros.
 */

#include <chrono>

#include "bench/common.hh"
#include "cluster/gateway.hh"
#include "load/generator.hh"
#include "sim/simulation.hh"

namespace {

using namespace molecule;
using sim::SimTime;

constexpr int kRepetitions = 3;

double
wallSeconds(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

load::TraceSpec
baseSpec(double rate)
{
    load::TraceSpec spec;
    spec.seed = 42;
    spec.ratePerSecond = rate;
    spec.functions = {"helloworld", "pyaes", "dd", "gzip-compression"};
    spec.tenants = {
        {"alpha", 3.0, 1.1, 1},
        {"beta", 1.0, 0.8, 2},
    };
    return spec;
}

/** Arrivals produced per wall second for one arrival process. */
double
generatorRate(load::ArrivalKind kind)
{
    load::TraceSpec spec = baseSpec(100000.0);
    spec.arrival = kind;
    spec.duration = SimTime::fromSeconds(10.0); // ~1M arrivals
    load::OpenLoopGenerator gen(spec);
    const auto t0 = std::chrono::steady_clock::now();
    load::Arrival a;
    std::uint64_t n = 0;
    while (gen.next(a))
        ++n;
    return double(n) / wallSeconds(t0);
}

/**
 * Completed invocations per wall second for the saturated rung of the
 * cluster_report scenario, scaled down to bench length (~48k
 * arrivals, ~30k served).
 */
double
clusterRate()
{
    sim::Simulation sim(42);
    cluster::FleetSpec fleetSpec;
    fleetSpec.nodes = 4;
    fleetSpec.dpusPerNode = 2;
    cluster::Fleet fleet(sim, fleetSpec);

    load::TraceSpec spec = baseSpec(480.0);
    spec.duration = SimTime::fromSeconds(100.0);
    for (const auto &fn : spec.functions)
        fleet.registerCpuFunction(fn,
                                  {hw::PuType::HostCpu, hw::PuType::Dpu});
    fleet.start();

    obs::Registry registry;
    cluster::ClusterStats stats(registry);
    cluster::LeastOutstandingPolicy policy;
    cluster::AdmissionOptions admission;
    admission.tokensPerSecond = 300.0;
    admission.bucketCapacity = 200.0;
    admission.queueCapacity = 2048;
    admission.maxOutstandingPerNode = 96;
    admission.invoke.maxAttempts = 2;
    cluster::GatewayConfig gwCfg =
        cluster::GatewayConfig::forFunctions(spec.functions, stats);
    gwCfg.admission = admission;
    gwCfg.dispatch = &policy;
    cluster::ClusterGateway gateway(fleet, gwCfg);

    load::OpenLoopGenerator gen(spec);
    const auto t0 = std::chrono::steady_clock::now();
    sim.spawn(load::drive(sim, gen, gateway));
    sim.run();
    const double wall = wallSeconds(t0);
    const auto summary =
        stats.summarize(sim.now(), fleet.coreTable());
    return double(summary.completed) / wall;
}

} // namespace

int
main()
{
    bench::banner("cluster substrate saturation throughput",
                  "cluster gateway over §6 setting-1 nodes");

    bench::PerfSnapshot snap("items_per_second");
    sim::Table table("Wall-clock throughput, best of 3 repetitions");
    table.header({"case", "items/s"});

    struct GenCase
    {
        const char *name;
        load::ArrivalKind kind;
    };
    constexpr GenCase kGenCases[] = {
        {"GenPoissonStream", load::ArrivalKind::Poisson},
        {"GenMmppStream", load::ArrivalKind::Mmpp},
        {"GenDiurnalStream", load::ArrivalKind::Diurnal},
    };
    for (const auto &c : kGenCases) {
        double best = 0.0;
        for (int rep = 0; rep < kRepetitions; ++rep) {
            const double rate = generatorRate(c.kind);
            snap.record(c.name, rate);
            best = std::max(best, rate);
        }
        table.row({c.name, sim::Table::num(best, 0)});
    }
    double best = 0.0;
    for (int rep = 0; rep < kRepetitions; ++rep) {
        const double rate = clusterRate();
        snap.record("ClusterSaturatedRung", rate);
        best = std::max(best, rate);
    }
    table.row({"ClusterSaturatedRung", sim::Table::num(best, 0)});
    table.print();

    if (!snap.writeJson("BENCH_cluster.json")) {
        std::fprintf(stderr, "cannot write BENCH_cluster.json\n");
        return 1;
    }
    std::printf("\nsnapshot -> BENCH_cluster.json\n");
    return 0;
}
