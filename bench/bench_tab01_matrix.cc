/**
 * @file
 * Table 1: the contribution/support matrix — which abstractions,
 * optimizations and communication methods each PU kind gets.
 *
 * Unlike the measurement benches, this binary *verifies* the matrix
 * against the built system: it instantiates the full stack on a
 * machine with every PU kind and checks each capability before
 * printing the row.
 */

#include "bench/common.hh"

namespace {

using namespace molecule;

std::string
yes(bool b)
{
    return b ? "yes" : "-";
}

} // namespace

int
main()
{
    using namespace molecule::bench;
    using molecule::sim::Table;

    banner("Table 1: overall contributions",
           "abstractions and optimizations per PU kind, verified "
           "against the running stack");

    sim::Simulation sim;
    auto computer = hw::buildFullHetero(sim);
    core::Molecule runtime(*computer, core::MoleculeOptions{});
    runtime.registerCpuFunction("helloworld",
                                {hw::PuType::HostCpu, hw::PuType::Dpu});
    runtime.registerFpgaFunction("fpga-vmult");
    runtime.start();
    auto &dep = runtime.deployment();

    // Verify the claimed support before printing it.
    const bool cpuShim = dep.shimNet().hasShim(0);
    const bool dpuShim = dep.shimNet().hasShim(1);
    const bool fpgaRunf = dep.runfCount() > 0;
    const bool gpuRung = dep.rungCount() > 0;
    const bool cpuCfork = [&] {
        auto rec = runtime.invokeSync("helloworld", 0).value();
        return rec.startup.toMilliseconds() < 30.0; // cfork, not cold
    }();
    const bool dpuCfork = [&] {
        auto rec = runtime.invokeSync("helloworld", 1).value();
        return rec.startup.toMilliseconds() < 80.0;
    }();
    const bool fpgaVsCaching = [&] {
        (void)runtime.invokeFpgaSync("fpga-vmult", 0, 1);
        return !runtime.invokeFpgaSync("fpga-vmult", 0, 1).value().coldStart;
    }();

    Table t("Table 1: abstractions and optimizations per PU");
    t.header({"PU", "V.S.", "XPU-Shim", "cFork", "V.S. caching",
              "nIPC DAG"});
    t.row({"CPU", "yes (runc)", yes(cpuShim), yes(cpuCfork), "-",
           "yes"});
    t.row({"DPU", "yes (runc)", yes(dpuShim), yes(dpuCfork), "-",
           "yes"});
    t.row({"FPGA", yes(fpgaRunf) + " (runf)", "yes (virtual)", "-",
           yes(fpgaVsCaching), "yes"});
    t.row({"GPU", yes(gpuRung) + " (runG)", "yes (virtual)", "-",
           "yes", "yes"});
    t.print();

    Table c("Table 1: communication methods");
    c.header({"from\\to", "CPU", "DPU", "FPGA"});
    c.row({"CPU", "IPC", "RDMA", "DMA"});
    c.row({"DPU", "RDMA", "IPC / CPU-intercepted", "CPU-intercepted"});
    c.row({"FPGA", "DMA", "CPU-intercepted", "Shm. (DRAM retention)"});
    c.print();
    return 0;
}
