/**
 * @file
 * Ablation (§5 "Keep-alive policies"): plain LRU vs FaasCache-style
 * greedy-dual keep-alive under a skewed production-like trace.
 *
 * A Poisson/Zipf trace drives FunctionBench functions on the host CPU
 * with a tight global warm budget. Greedy-dual weighs instances by
 * cold-start cost over size, so it protects expensive-to-boot
 * functions that plain recency evicts — lowering total time spent in
 * cold starts. Not a paper figure; this evaluates the design choice
 * the paper defers to FaasCache.
 */

#include "bench/common.hh"
#include "workloads/loadgen.hh"

namespace {

using namespace molecule;
using core::KeepAliveConfig;
using core::Molecule;
using core::MoleculeOptions;
using hw::PuType;
using workloads::Catalog;
using workloads::LoadGenerator;

struct Outcome
{
    std::int64_t coldStarts = 0;
    std::int64_t warmHits = 0;
    double meanStartupMs = 0;
    double p95StartupMs = 0;
};

Outcome
runTrace(const KeepAliveConfig &keepAlive, std::size_t budget)
{
    sim::Simulation sim;
    auto computer = hw::buildCpuDpuServer(sim, 0,
                                          hw::DpuGeneration::Bf1);
    MoleculeOptions options;
    options.startup.keepAlive = keepAlive;
    options.startup.globalWarmCapacityPerPu = budget;
    Molecule runtime(*computer, options);
    // Exclude video-processing: its 34 s body would dominate wall
    // time without stressing the cache.
    std::vector<std::string> fns;
    for (const auto &fn : Catalog::functionBenchNames())
        if (fn != "video-processing")
            fns.push_back(fn);
    for (const auto &fn : fns)
        runtime.registerCpuFunction(fn, {PuType::HostCpu});
    runtime.start();

    sim::Rng traceRng(1234); // trace fixed across policies
    LoadGenerator::Options lg;
    lg.requestsPerSecond = 20;
    lg.zipfExponent = 1.2;
    lg.duration = sim::SimTime::seconds(120);
    LoadGenerator gen(traceRng, fns, lg);
    const auto trace = gen.generate();

    sim::Histogram startup;
    auto drive = [](Molecule *m,
                    const std::vector<workloads::TraceEvent> *events,
                    sim::Histogram *hist) -> sim::Task<> {
        auto &s = m->simulation();
        for (const auto &ev : *events) {
            if (ev.at > s.now())
                co_await s.delay(ev.at - s.now());
            auto rec = co_await m->invoke(ev.fn, 0);
            hist->addTime(rec.value().startup);
        }
    };
    sim.spawn(drive(&runtime, &trace, &startup));
    sim.run();

    Outcome out;
    out.coldStarts = runtime.startup().coldStarts();
    out.warmHits = runtime.startup().warmHits();
    out.meanStartupMs = startup.mean() / 1000.0;
    out.p95StartupMs = startup.percentile(95) / 1000.0;
    return out;
}

} // namespace

int
main()
{
    using namespace molecule::bench;
    using molecule::sim::Table;

    banner("Ablation: keep-alive policy (LRU vs greedy-dual vs "
           "histogram)",
           "design choice deferred to FaasCache in §5; Zipf(1.2) "
           "trace, 20 req/s, 120 s, global warm budget per PU");

    Table t("Keep-alive ablation (7 FunctionBench fns, host CPU)");
    t.header({"budget", "policy", "cold", "warm", "mean startup (ms)",
              "p95 startup (ms)"});
    for (std::size_t budget : {2, 3, 4, 6}) {
        for (const auto &keepAlive :
             {KeepAliveConfig::lru(), KeepAliveConfig::greedyDual(),
              KeepAliveConfig::histogram()}) {
            const auto o = runTrace(keepAlive, budget);
            t.row({std::to_string(budget),
                   core::toString(keepAlive.kind),
                   std::to_string(o.coldStarts),
                   std::to_string(o.warmHits),
                   Table::num(o.meanStartupMs, 2),
                   Table::num(o.p95StartupMs, 2)});
        }
    }
    t.print();
    return 0;
}
