/**
 * @file
 * Figure 15: serverless system design space (§6.7).
 *
 * The paper positions systems on two axes: startup latency (Slow >1s,
 * Fast ~50ms, Extreme <=10ms) and communication (Network-slow,
 * IPC-fast, Thread/Language-extreme), for same-PU and cross-PU cases.
 * This bench *measures* where this repository's Molecule lands on both
 * axes and prints the populated chart; the other systems' placements
 * are the paper's (qualitative).
 */

#include <algorithm>

#include "bench/common.hh"
#include "sim/sweep.hh"

namespace {

using namespace molecule;
using core::ChainSpec;
using core::Molecule;
using core::MoleculeOptions;
using hw::PuType;

struct Position
{
    sim::SimTime startup;     // cfork on the host CPU (helloworld)
    sim::SimTime samePuComm;  // IPC edge, CPU->CPU
    sim::SimTime crossPuComm; // nIPC edge, CPU->DPU
};

Position
measure(std::uint64_t seed)
{
    sim::Simulation sim(seed);
    auto computer = hw::buildCpuDpuServer(sim, 1,
                                          hw::DpuGeneration::Bf1);
    Molecule runtime(*computer, MoleculeOptions{});
    runtime.registerCpuFunction("helloworld",
                                {PuType::HostCpu, PuType::Dpu});
    runtime.registerCpuFunction("mr-splitter",
                                {PuType::HostCpu, PuType::Dpu});
    runtime.registerCpuFunction("mr-mapper",
                                {PuType::HostCpu, PuType::Dpu});
    runtime.start();

    Position p;
    p.startup = runtime.invokeSync("helloworld", 0).value().startup;

    auto spec = ChainSpec::linear("pair", {"mr-splitter", "mr-mapper"});
    std::vector<int> same{0, 0};
    p.samePuComm = runtime.invokeChainSync(spec, same).value().edgeLatencies[0];
    std::vector<int> cross{0, 1};
    p.crossPuComm =
        runtime.invokeChainSync(spec, cross).value().edgeLatencies[0];
    return p;
}

/**
 * The chart position over many seeds, evaluated in parallel: each
 * seed's full scenario is an independent simulation replica fanned
 * out on the SweepRunner. Returns the per-axis medians, so the chart
 * reflects the design-space point rather than one seed's jitter.
 */
Position
measureSweep(std::size_t seeds)
{
    sim::SweepRunner pool;
    auto points = pool.map<Position>(seeds, [](std::size_t i) {
        return measure(std::uint64_t(i) + 1);
    });
    auto median = [&](sim::SimTime Position::*axis) {
        std::vector<sim::SimTime> v;
        for (const auto &p : points)
            v.push_back(p.*axis);
        std::sort(v.begin(), v.end());
        return v[v.size() / 2];
    };
    return Position{median(&Position::startup),
                    median(&Position::samePuComm),
                    median(&Position::crossPuComm)};
}

const char *
startupClass(sim::SimTime t)
{
    if (t.toMilliseconds() > 1000)
        return "Slow (>1s)";
    if (t.toMilliseconds() > 20)
        return "Fast (~50ms)";
    return "Extreme (<=20ms)";
}

const char *
commClass(sim::SimTime t)
{
    if (t.toMilliseconds() > 2)
        return "Network (slow)";
    if (t.toMicroseconds() > 20)
        return "IPC (fast)";
    return "Thread/Language (extreme)";
}

} // namespace

int
main()
{
    using namespace molecule::bench;
    using molecule::sim::Table;

    banner("Figure 15: serverless system design space",
           "Molecule: extreme startup (cfork) AND fast IPC comm, "
           "including cross-PU (nIPC) — the only system in that cell");

    // 32 seed replicas, fanned out across a thread pool; each chart
    // cell is the median over the sweep.
    const Position p = measureSweep(32);

    Table a("Figure 15-a: startup design (measured for this repo)");
    a.header({"system", "mechanism", "class"});
    a.row({"Docker / Kata / gVisor / FireCracker", "cold boot",
           "Slow (>1s)"});
    a.row({"SOCK / Replayable", "zygote / snapshot", "Fast (~50ms)"});
    a.row({"Catalyzer", "sfork (hypervisor)", "Extreme (<=10ms)"});
    a.row({"Molecule [measured " + ms(p.startup) + " ms]",
           "cfork (container)", startupClass(p.startup)});
    a.print();

    Table b("Figure 15-b: communication design (measured)");
    b.header({"scope", "system", "class"});
    b.row({"same-PU", "OpenWhisk", "Network (slow)"});
    b.row({"same-PU", "Nightcore", "IPC (fast)"});
    b.row({"same-PU", "Faastlane / Faasm", "Thread/Language (extreme)"});
    b.row({"same-PU",
           "Molecule [measured " + ms(p.samePuComm) + " ms]",
           commClass(p.samePuComm)});
    b.row({"cross-PU", "others", "Network (slow)"});
    b.row({"cross-PU",
           "Molecule nIPC [measured " + ms(p.crossPuComm) + " ms]",
           commClass(p.crossPuComm)});
    b.print();
    return 0;
}
