/**
 * @file
 * Figure 14-f: GZip, CPU function vs FPGA function over file sizes
 * from 1 KB to 112 MB (the Linux source tree of §6.6).
 */

#include "bench/common.hh"

namespace {

using namespace molecule;
using core::Molecule;
using core::MoleculeOptions;
using hw::PuType;

/** CPU execution: the compression body occupies a host core. */
sim::SimTime
cpuGzip(std::uint64_t bytes)
{
    sim::Simulation sim;
    auto computer = hw::buildF1Server(sim, 1);
    workloads::Catalog catalog;
    const auto &w = catalog.fpga("fpga-gzip");
    auto run = [](hw::ProcessingUnit *pu, sim::SimTime cost)
        -> sim::Task<> { co_await pu->compute(cost); };
    sim.spawn(run(&computer->pu(0), w.cpuTime(bytes)));
    sim.run();
    return sim.now();
}

/** Warm FPGA invocation (image resident, sandbox prepared). */
sim::SimTime
fpgaGzip(std::uint64_t bytes)
{
    sim::Simulation sim;
    auto computer = hw::buildF1Server(sim, 1);
    Molecule runtime(*computer, MoleculeOptions{});
    runtime.registerFpgaFunction("fpga-gzip");
    runtime.start();
    (void)runtime.invokeFpgaSync("fpga-gzip", 0, 1); // warm it up
    return runtime.invokeFpgaSync("fpga-gzip", 0, bytes).value().execution;
}

} // namespace

int
main()
{
    using namespace molecule::bench;
    using molecule::sim::Table;

    banner("Figure 14-f: GZip FPGA function",
           "paper: FPGA 4.8-8.3x better for files >25 MB; CPU wins "
           "small files");

    Table t("Figure 14-f: GZip latency (s) vs file size");
    t.header({"file size", "CPU", "FPGA", "FPGA speedup"});
    const std::uint64_t mib = 1 << 20;
    struct Size
    {
        const char *label;
        std::uint64_t bytes;
    };
    const std::vector<Size> sizes{
        {"1KB", 1024},        {"1MB", mib},
        {"5MB", 5 * mib},     {"25MB", 25 * mib},
        {"50MB", 50 * mib},   {"75MB", 75 * mib},
        {"112MB (linux src)", 112 * mib}};
    for (const auto &size : sizes) {
        const auto cpu = cpuGzip(size.bytes);
        const auto fpga = fpgaGzip(size.bytes);
        t.row({size.label, secs(cpu, 3), secs(fpga, 3),
               Table::num(cpu.toSeconds() / fpga.toSeconds(), 2) + "x"});
    }
    t.print();
    return 0;
}
