/**
 * @file
 * Figure 14-g: Anti-MoneyL (anti-money-laundering checking), CPU vs
 * FPGA over transaction-entry counts from 6 K to 6 M. Transaction
 * files are staged into the FPGA DRAM bank (data retention) ahead of
 * the invocation, as the chain design of §4.3 enables.
 */

#include "bench/common.hh"

namespace {

using namespace molecule;
using core::Molecule;
using core::MoleculeOptions;

sim::SimTime
cpuAml(std::uint64_t entries)
{
    sim::Simulation sim;
    auto computer = hw::buildF1Server(sim, 1);
    workloads::Catalog catalog;
    const auto &w = catalog.fpga("fpga-aml");
    auto run = [](hw::ProcessingUnit *pu, sim::SimTime cost)
        -> sim::Task<> { co_await pu->compute(cost); };
    sim.spawn(run(&computer->pu(0), w.cpuTime(entries)));
    sim.run();
    return sim.now();
}

sim::SimTime
fpgaAml(std::uint64_t entries)
{
    sim::Simulation sim;
    auto computer = hw::buildF1Server(sim, 1);
    Molecule runtime(*computer, MoleculeOptions{});
    runtime.registerFpgaFunction("fpga-aml");
    runtime.start();
    (void)runtime.invokeFpgaSync("fpga-aml", 0, 1);
    return runtime.invokeFpgaSync("fpga-aml", 0, entries).value().execution;
}

} // namespace

int
main()
{
    using namespace molecule::bench;
    using molecule::sim::Table;

    banner("Figure 14-g: Anti-MoneyL FPGA function",
           "paper: FPGA 4.7-34.6x better from 6K to 6M entries");

    Table t("Figure 14-g: Anti-MoneyL latency (ms) vs entries");
    t.header({"entries", "CPU", "FPGA", "FPGA speedup"});
    for (std::uint64_t entries :
         {6000ULL, 60000ULL, 600000ULL, 6000000ULL}) {
        const auto cpu = cpuAml(entries);
        const auto fpga = fpgaAml(entries);
        std::string label = entries >= 1000000
                                ? std::to_string(entries / 1000000) + "M"
                                : std::to_string(entries / 1000) + "K";
        t.row({label, ms(cpu), ms(fpga),
               Table::num(cpu.toMilliseconds() / fpga.toMilliseconds(),
                          1) +
                   "x"});
    }
    t.print();
    return 0;
}
