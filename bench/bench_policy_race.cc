/**
 * @file
 * Policy-layer wall-clock bench: how fast the simulator chews through
 * the policy_report race scenario under each placement x keep-alive
 * combo (invocations completed per wall second, full admission +
 * placement + keep-alive + cost accounting pipeline).
 *
 * Writes BENCH_policy.json (same PerfSnapshot shape perf_check
 * reads); the committed copy at the repo root is the reference the CI
 * perf-smoke job compares against, warn-only — policy rows span the
 * entire stack and are noisier than the simcore micros.
 */

#include <chrono>

#include "bench/common.hh"
#include "cluster/cost.hh"
#include "cluster/gateway.hh"
#include "load/generator.hh"
#include "sim/simulation.hh"

namespace {

using namespace molecule;
using sim::SimTime;

constexpr int kRepetitions = 3;

double
wallSeconds(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

/**
 * Completed invocations per wall second for one policy combo on the
 * saturated rung of the tools/policy_report scenario (open gateway,
 * 4-node 2xBF2 fleet, cost model attached).
 */
double
policyRate(const core::PlacementConfig &placement,
           const core::KeepAliveConfig &keepAlive)
{
    sim::Simulation sim(42);
    cluster::FleetSpec fleetSpec;
    fleetSpec.nodes = 4;
    fleetSpec.dpusPerNode = 2;
    fleetSpec.runtime.placement = placement;
    fleetSpec.runtime.startup.keepAlive = keepAlive;
    cluster::Fleet fleet(sim, fleetSpec);

    load::TraceSpec spec;
    spec.seed = 42;
    spec.ratePerSecond = 768.0; // 1.6x the DPU-bound ceiling
    spec.duration = SimTime::fromSeconds(60.0);
    spec.functions = {"helloworld", "pyaes", "dd", "gzip-compression"};
    spec.tenants = {
        {"alpha", 3.0, 1.1, 1},
        {"beta", 1.0, 0.8, 2},
    };
    for (const auto &fn : spec.functions)
        fleet.registerCpuFunction(fn,
                                  {hw::PuType::HostCpu, hw::PuType::Dpu});
    fleet.start();

    obs::Registry registry;
    cluster::ClusterStats stats(registry);
    cluster::CostModel cost;
    stats.setCostModel(&cost, fleet.puTypeTable());
    cluster::GatewayConfig gwCfg =
        cluster::GatewayConfig::forFunctions(spec.functions, stats);
    gwCfg.admission.tokensPerSecond = 0.0;
    gwCfg.admission.queueCapacity = 2048;
    gwCfg.admission.maxOutstandingPerNode = 96;
    gwCfg.admission.invoke.maxAttempts = 2;
    cluster::ClusterGateway gateway(fleet, gwCfg);

    load::OpenLoopGenerator gen(spec);
    const auto t0 = std::chrono::steady_clock::now();
    sim.spawn(load::drive(sim, gen, gateway));
    sim.run();
    const double wall = wallSeconds(t0);
    const auto summary = stats.summarize(sim.now(), fleet.coreTable());
    return double(summary.completed) / wall;
}

} // namespace

int
main()
{
    using namespace molecule::bench;

    banner("policy race wall-clock throughput",
           "placement x keep-alive combos on the saturated "
           "policy_report rung");

    PerfSnapshot snap("items_per_second");
    sim::Table table("Wall-clock throughput, best of 3 repetitions");
    table.header({"case", "items/s"});

    struct Case
    {
        const char *name;
        core::PlacementConfig placement;
        core::KeepAliveConfig keepAlive;
    };
    const Case kCases[] = {
        {"PolicyPriceOrderedLru", core::PlacementConfig::priceOrdered(),
         core::KeepAliveConfig::lru()},
        {"PolicyLoadAwareLru", core::PlacementConfig::loadAware(),
         core::KeepAliveConfig::lru()},
        {"PolicyLocalityLru", core::PlacementConfig::locality(),
         core::KeepAliveConfig::lru()},
        {"PolicyPriceOrderedHistogram",
         core::PlacementConfig::priceOrdered(),
         core::KeepAliveConfig::histogram()},
    };
    for (const auto &c : kCases) {
        double best = 0.0;
        for (int rep = 0; rep < kRepetitions; ++rep) {
            const double rate = policyRate(c.placement, c.keepAlive);
            snap.record(c.name, rate);
            best = std::max(best, rate);
        }
        table.row({c.name, sim::Table::num(best, 0)});
    }
    table.print();

    if (!snap.writeJson("BENCH_policy.json")) {
        std::fprintf(stderr, "cannot write BENCH_policy.json\n");
        return 1;
    }
    std::printf("\nsnapshot -> BENCH_policy.json\n");
    return 0;
}
