/**
 * @file
 * Figure 9: startup and communication latency against commercial
 * serverless systems (AWS Lambda, OpenWhisk).
 *
 * Startup uses a helloworld function (§6.3); communication uses a
 * two-function image-processing pair with <1 KB messages. Molecule
 * and Molecule-homo are measured by running this stack; the
 * commercial numbers are calibrated comparator models.
 */

#include "bench/common.hh"

namespace {

using namespace molecule;
using core::ChainSpec;
using core::CommercialPlatform;
using core::Molecule;
using core::MoleculeOptions;
using hw::PuType;

struct Measured
{
    sim::SimTime startup;
    sim::SimTime comm;
};

Measured
measure(MoleculeOptions options)
{
    sim::Simulation sim;
    auto computer = hw::buildCpuDpuServer(sim, 2,
                                          hw::DpuGeneration::Bf1);
    Molecule runtime(*computer, options);
    runtime.registerCpuFunction("helloworld", {PuType::HostCpu});
    runtime.registerCpuFunction("image-resize", {PuType::HostCpu});
    runtime.registerCpuFunction("mr-splitter", {PuType::HostCpu});
    runtime.start();

    Measured out;
    out.startup = runtime.invokeSync("helloworld", 0).value().startup;

    // Image-processing pair: front pulls, second processes (<1 KB).
    auto spec = ChainSpec::linear("img-pair",
                                  {"image-resize", "mr-splitter"});
    std::vector<int> placement{0, 0};
    auto rec = runtime.invokeChainSync(spec, placement).value();
    out.comm = rec.edgeLatencies.at(0);
    return out;
}

} // namespace

int
main()
{
    using namespace molecule::bench;
    using molecule::sim::Table;

    banner("Figure 9: comparison with commercial serverless systems",
           "paper: Molecule 37-46x better startup, 68-300x better "
           "communication; Molecule-homo 5-6x / 4-19x");

    const Measured mol = measure(MoleculeOptions{});
    const Measured homo = measure(MoleculeOptions::homo());
    const auto lambdaS = molecule::core::commercialStartupLatency(
        CommercialPlatform::AwsLambda);
    const auto owS = molecule::core::commercialStartupLatency(
        CommercialPlatform::OpenWhisk);
    const auto lambdaC = molecule::core::commercialCommLatency(
        CommercialPlatform::AwsLambda);
    const auto owC = molecule::core::commercialCommLatency(
        CommercialPlatform::OpenWhisk);

    Table a("Figure 9-a: startup latency (ms)");
    a.header({"system", "startup", "vs Molecule"});
    auto ratio = [](molecule::sim::SimTime x, molecule::sim::SimTime y) {
        return Table::num(x.toMilliseconds() / y.toMilliseconds(), 1) +
               "x";
    };
    a.row({"AWS Lambda", ms(lambdaS), ratio(lambdaS, mol.startup)});
    a.row({"OpenWhisk", ms(owS), ratio(owS, mol.startup)});
    a.row({"Molecule-Homo", ms(homo.startup),
           ratio(homo.startup, mol.startup)});
    a.row({"Molecule", ms(mol.startup), "1.0x"});
    a.print();

    Table b("Figure 9-b: communication latency (ms)");
    b.header({"system", "comm", "vs Molecule"});
    b.row({"AWS Lambda (step)", ms(lambdaC), ratio(lambdaC, mol.comm)});
    b.row({"OpenWhisk", ms(owC), ratio(owC, mol.comm)});
    b.row({"Molecule-Homo", ms(homo.comm), ratio(homo.comm, mol.comm)});
    b.row({"Molecule", ms(mol.comm), "1.0x"});
    b.print();
    return 0;
}
