/**
 * @file
 * Table 4: FPGA resource utilization of the vectorized wrapper with 12
 * function instances (4x madd, 4x mmult, 4x mscale) on AWS F1.
 *
 * The composition is done by runf's createVector; the table reports
 * the composed image's resource usage against the F1 totals, plus the
 * caching capacity corollary (§6.4: 96 cached instances on 8 FPGAs).
 */

#include "bench/common.hh"

namespace {

using namespace molecule;
using sandbox::CreateRequest;

} // namespace

int
main()
{
    using namespace molecule::bench;
    using molecule::sim::Table;

    banner("Table 4: FPGA resource utilization",
           "paper: 12-function wrapper uses 119,517 LUTs (10.1%), "
           "196,996 REGs (8.3%), 486 BRAMs (22.5%), 787 DSPs (11.5%)");

    sim::Simulation sim;
    auto computer = hw::buildF1Server(sim, 1);
    os::LocalOs hostOs{computer->pu(0)};
    sandbox::RunfRuntime runf{hostOs, computer->fpga(0)};
    workloads::Catalog catalog;

    // 4 instances each of madd, mmult(vmult) and mscale (§6.4).
    std::vector<sandbox::FunctionImage> images;
    std::vector<CreateRequest> reqs;
    images.reserve(12);
    int counter = 0;
    for (const char *kind : {"fpga-madd", "fpga-vmult", "fpga-mscale"}) {
        for (int i = 0; i < 4; ++i) {
            images.push_back(catalog.fpga(kind).image);
            images.back().funcId += "-" + std::to_string(i);
            reqs.push_back(CreateRequest{
                "sb" + std::to_string(counter++), &images.back()});
        }
    }
    auto doIt = [](sandbox::RunfRuntime *r,
                   const std::vector<CreateRequest> *rs) -> sim::Task<> {
        auto created = co_await r->createVector(*rs);
        MOLECULE_ASSERT(created.valueOr(0) == 12, "composition failed");
    };
    sim.spawn(doIt(&runf, &reqs));
    sim.run();

    const auto used = computer->fpga(0).image().totalResources();
    const auto total = hw::FpgaResources::f1Totals();
    auto pct = [](long u, long t) {
        return "(" + Table::num(100.0 * double(u) / double(t), 1) + "%)";
    };

    Table t("Table 4: resource utilization (wrapper, 12 functions)");
    t.header({"", "# LUTs", "# REGs", "# BRAMs", "# DSPs"});
    t.row({"AWS F1 Total", std::to_string(total.luts),
           std::to_string(total.regs), std::to_string(total.brams),
           std::to_string(total.dsps)});
    t.row({"Wrapper (12 func.)",
           std::to_string(used.luts) + " " + pct(used.luts, total.luts),
           std::to_string(used.regs) + " " + pct(used.regs, total.regs),
           std::to_string(used.brams) + " " +
               pct(used.brams, total.brams),
           std::to_string(used.dsps) + " " +
               pct(used.dsps, total.dsps)});
    t.print();

    std::printf("Corollary (§6.4): %d cached instances per card -> %d "
                "across the 8 F1 FPGAs.\n",
                12, 12 * 8);
    return 0;
}
