/**
 * @file
 * Figure 2-b and Figure 14-h: matrix computation on CPU vs FPGA.
 *
 * Fig 2-b: the three kernels (scaling, addition, multiplication)
 * individually; Fig 14-h: the matrix-computation application (the
 * three chained, operands staying in FPGA DRAM between stages).
 */

#include "bench/common.hh"

namespace {

using namespace molecule;
using core::Molecule;
using core::MoleculeOptions;
using workloads::Catalog;

sim::SimTime
cpuKernel(const std::string &name)
{
    sim::Simulation sim;
    auto computer = hw::buildF1Server(sim, 1);
    workloads::Catalog catalog;
    const auto &w = catalog.fpga(name);
    auto run = [](hw::ProcessingUnit *pu, sim::SimTime cost)
        -> sim::Task<> { co_await pu->compute(cost); };
    sim.spawn(run(&computer->pu(0), w.cpuTime(1)));
    sim.run();
    return sim.now();
}

struct F1Runtime
{
    sim::Simulation sim;
    std::unique_ptr<hw::Computer> computer = hw::buildF1Server(sim, 1);
    Molecule runtime{*computer, MoleculeOptions{}};

    F1Runtime()
    {
        for (const auto &fn : Catalog::matrixKernels())
            runtime.registerFpgaFunction(fn);
        runtime.start();
        runtime.startup().setFpgaHotSet(0, Catalog::matrixKernels());
    }

    sim::SimTime
    warmKernel(const std::string &name)
    {
        (void)runtime.invokeFpgaSync(name, 0, 1); // warm
        return runtime.invokeFpgaSync(name, 0, 1).value().execution;
    }

    sim::SimTime
    chain(bool shm)
    {
        obs::ChainRecord rec;
        auto run = [](Molecule *m, bool s,
                      obs::ChainRecord *out) -> sim::Task<> {
            *out = co_await m->dag().runFpgaChain(
                Catalog::matrixKernels(), 0, s, 4096);
        };
        runtime.simulation().spawn(run(&runtime, shm, &rec));
        runtime.simulation().run();
        return rec.endToEnd;
    }
};

} // namespace

int
main()
{
    using namespace molecule::bench;
    using molecule::sim::Table;

    banner("Figure 2-b / Figure 14-h: matrix computation on FPGA",
           "paper: kernels 2.15-2.82x faster on FPGA; the chained app "
           "2.8x (label 2.6 ms)");

    F1Runtime f1;
    Table a("Figure 2-b: matrix kernels (us)");
    a.header({"kernel", "CPU function", "FPGA function", "speedup"});
    struct K
    {
        const char *label;
        const char *name;
    };
    const std::vector<K> kernels{{"Matrix Scaling", "fpga-mscale"},
                                 {"Matrix Add", "fpga-madd"},
                                 {"Vector Multi", "fpga-vmult"}};
    for (const auto &k : kernels) {
        const auto cpu = cpuKernel(k.name);
        const auto fpga = f1.warmKernel(k.name);
        a.row({k.label, us(cpu), us(fpga),
               Table::num(cpu.toMicroseconds() / fpga.toMicroseconds(),
                          2) +
                   "x"});
    }
    a.print();

    Table b("Figure 14-h: Matrix-Comput application (ms)");
    b.header({"system", "latency"});
    sim::SimTime cpuChain(0);
    for (const auto &k : kernels)
        cpuChain += cpuKernel(k.name);
    const auto fpgaChain = f1.chain(true);
    b.row({"CPU", ms(cpuChain)});
    b.row({"FPGA (chained, DRAM retention)", ms(fpgaChain)});
    b.row({"speedup", Table::num(cpuChain.toMilliseconds() /
                                     fpgaChain.toMilliseconds(),
                                 2) +
                          "x"});
    b.print();
    return 0;
}
