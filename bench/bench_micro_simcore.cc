/**
 * @file
 * google-benchmark microbenchmarks of the simulation kernel itself:
 * event-queue throughput, coroutine task switching, mailbox traffic
 * and a full nIPC write. These guard the wall-clock cost of the DES
 * substrate (every figure bench runs millions of these operations).
 */

#include <benchmark/benchmark.h>

#include "hw/computer.hh"
#include "os/kernel.hh"
#include "sim/sync.hh"

namespace {

using namespace molecule;
using namespace molecule::sim::literals;

void
BM_EventQueueScheduleRun(benchmark::State &state)
{
    for (auto _ : state) {
        sim::EventQueue q;
        int sink = 0;
        for (int i = 0; i < 1000; ++i)
            q.schedule(sim::SimTime::microseconds(i), [&] { ++sink; });
        while (!q.empty())
            q.popNext().second();
        benchmark::DoNotOptimize(sink);
    }
    state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueueScheduleRun);

sim::Task<>
pingPong(sim::Simulation &sim, int hops)
{
    for (int i = 0; i < hops; ++i)
        co_await sim.delay(1_us);
}

void
BM_CoroutineDelayChain(benchmark::State &state)
{
    for (auto _ : state) {
        sim::Simulation sim;
        sim.spawn(pingPong(sim, 1000));
        sim.run();
    }
    state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_CoroutineDelayChain);

sim::Task<>
producer(sim::Mailbox<int> &box, int n)
{
    for (int i = 0; i < n; ++i)
        co_await box.put(i);
}

sim::Task<>
consumer(sim::Mailbox<int> &box, int n)
{
    for (int i = 0; i < n; ++i)
        (void)co_await box.get();
}

void
BM_MailboxThroughput(benchmark::State &state)
{
    for (auto _ : state) {
        sim::Simulation sim;
        sim::Mailbox<int> box(sim, 16);
        sim.spawn(consumer(box, 1000));
        sim.spawn(producer(box, 1000));
        sim.run();
    }
    state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_MailboxThroughput);

void
BM_LocalFifoRoundTrip(benchmark::State &state)
{
    for (auto _ : state) {
        sim::Simulation sim;
        auto computer = hw::buildDesktop(sim);
        os::LocalOs os(computer->pu(0));
        os.createFifo("bench");
        auto loop = [](os::LocalOs *o, int n) -> sim::Task<> {
            auto *f = o->findFifo("bench");
            for (int i = 0; i < n; ++i) {
                os::FifoMessage msg{64, "m"};
                co_await f->write(msg);
                (void)co_await f->read();
            }
        };
        sim.spawn(loop(&os, 100));
        sim.run();
    }
    state.SetItemsProcessed(state.iterations() * 100);
}
BENCHMARK(BM_LocalFifoRoundTrip);

} // namespace

BENCHMARK_MAIN();
