/**
 * @file
 * google-benchmark microbenchmarks of the simulation kernel itself:
 * event-queue throughput, coroutine task switching, mailbox traffic
 * and a full nIPC write. These guard the wall-clock cost of the DES
 * substrate (every figure bench runs millions of these operations).
 */

#include <benchmark/benchmark.h>

#include <vector>

#include "bench/common.hh"
#include "hw/computer.hh"
#include "os/kernel.hh"
#include "sim/sync.hh"

namespace {

using namespace molecule;
using namespace molecule::sim::literals;

void
BM_EventQueueScheduleRun(benchmark::State &state)
{
    for (auto _ : state) {
        sim::EventQueue q;
        int sink = 0;
        for (int i = 0; i < 1000; ++i)
            q.schedule(sim::SimTime::microseconds(i), [&] { ++sink; });
        while (!q.empty())
            q.popNext().second();
        benchmark::DoNotOptimize(sink);
    }
    state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueueScheduleRun);

sim::Task<>
pingPong(sim::Simulation &sim, int hops)
{
    for (int i = 0; i < hops; ++i)
        co_await sim.delay(1_us);
}

void
BM_CoroutineDelayChain(benchmark::State &state)
{
    for (auto _ : state) {
        sim::Simulation sim;
        sim.spawn(pingPong(sim, 1000));
        sim.run();
    }
    state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_CoroutineDelayChain);

sim::Task<>
producer(sim::Mailbox<int> &box, int n)
{
    for (int i = 0; i < n; ++i)
        co_await box.put(i);
}

sim::Task<>
consumer(sim::Mailbox<int> &box, int n)
{
    for (int i = 0; i < n; ++i)
        (void)co_await box.get();
}

// Half the scheduled events are cancelled before they fire — the
// timeout-guard pattern (every request arms a timer, most are
// disarmed). Exercises the slab free list and stale-node skipping.
void
BM_EventQueueCancelHeavy(benchmark::State &state)
{
    for (auto _ : state) {
        sim::EventQueue q;
        int sink = 0;
        std::vector<sim::EventId> armed;
        armed.reserve(500);
        for (int i = 0; i < 1000; ++i) {
            auto id = q.schedule(sim::SimTime::microseconds(i),
                                 [&] { ++sink; });
            if (i % 2 == 0)
                armed.push_back(id);
        }
        for (auto id : armed)
            q.cancel(id);
        while (!q.empty())
            q.popNext().second();
        benchmark::DoNotOptimize(sink);
    }
    // Each schedule+cancel or schedule+fire pair counts as one item.
    state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueueCancelHeavy);

// Timer-wheel adversary: a few far-future events pin the heap head
// while short-lived timers are continuously re-armed (scheduled then
// cancelled) behind it, so no churned timer ever reaches the head.
// The old tombstone design grew without bound here; the slab design
// must recycle and stay flat.
void
BM_EventQueueTimerResetChurn(benchmark::State &state)
{
    for (auto _ : state) {
        sim::EventQueue q;
        for (int i = 0; i < 8; ++i)
            q.schedule(sim::SimTime::seconds(1000 + i), [] {});
        sim::EventId pending[32] = {};
        for (int round = 0; round < 1000; ++round) {
            const int k = round % 32;
            if (pending[k] != 0)
                q.cancel(pending[k]);
            pending[k] = q.schedule(
                sim::SimTime::milliseconds(1 + round % 97), [] {});
        }
        while (!q.empty())
            q.popNext().second();
    }
    state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueueTimerResetChurn);

void
BM_MailboxThroughput(benchmark::State &state)
{
    for (auto _ : state) {
        sim::Simulation sim;
        sim::Mailbox<int> box(sim, 16);
        sim.spawn(consumer(box, 1000));
        sim.spawn(producer(box, 1000));
        sim.run();
    }
    state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_MailboxThroughput);

void
BM_LocalFifoRoundTrip(benchmark::State &state)
{
    for (auto _ : state) {
        sim::Simulation sim;
        auto computer = hw::buildDesktop(sim);
        os::LocalOs os(computer->pu(0));
        os.createFifo("bench");
        auto loop = [](os::LocalOs *o, int n) -> sim::Task<> {
            auto *f = o->findFifo("bench");
            for (int i = 0; i < n; ++i) {
                os::FifoMessage msg{64, "m"};
                co_await f->write(msg);
                (void)co_await f->read();
            }
        };
        sim.spawn(loop(&os, 100));
        sim.run();
    }
    state.SetItemsProcessed(state.iterations() * 100);
}
BENCHMARK(BM_LocalFifoRoundTrip);

/**
 * Console reporter that additionally captures items/sec into a
 * PerfSnapshot so every run leaves a BENCH_simcore.json next to the
 * binary's working directory.
 */
class SnapshotReporter : public benchmark::ConsoleReporter
{
  public:
    explicit SnapshotReporter(bench::PerfSnapshot *snap) : snap_(snap)
    {
    }

    void
    ReportRuns(const std::vector<Run> &reports) override
    {
        for (const auto &run : reports) {
            if (run.run_type == Run::RT_Aggregate)
                continue; // the snapshot keeps best-of per name
            const auto it = run.counters.find("items_per_second");
            if (it != run.counters.end())
                snap_->record(run.benchmark_name(),
                              double(it->second));
        }
        ConsoleReporter::ReportRuns(reports);
    }

  private:
    bench::PerfSnapshot *snap_;
};

} // namespace

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;

    molecule::bench::PerfSnapshot snap("items_per_second");
    // Seed-kernel numbers (tombstone priority_queue + std::function),
    // RelWithDebInfo on the reference container. The acceptance bar
    // for the allocation-free queue is >= 2x on both.
    snap.baseline("BM_EventQueueScheduleRun", 7.445e6);
    snap.baseline("BM_CoroutineDelayChain", 16.647e6);

    SnapshotReporter reporter(&snap);
    benchmark::RunSpecifiedBenchmarks(&reporter);
    benchmark::Shutdown();

    if (!snap.writeJson("BENCH_simcore.json"))
        std::fprintf(stderr, "warning: BENCH_simcore.json not written\n");
    return 0;
}
