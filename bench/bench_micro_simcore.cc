/**
 * @file
 * google-benchmark microbenchmarks of the simulation kernel itself:
 * event-queue throughput, coroutine task switching, mailbox traffic
 * and a full nIPC write. These guard the wall-clock cost of the DES
 * substrate (every figure bench runs millions of these operations).
 */

#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstdlib>
#include <new>
#include <string>
#include <vector>

#include "bench/common.hh"
#include "hw/computer.hh"
#include "os/kernel.hh"
#include "sim/sync.hh"

/**
 * Global allocation counter: every operator new in this binary bumps
 * it, so BM_EventQueueSteadyStateAllocs can assert the schedule→fire
 * lifecycle touches the heap zero times once warm. malloc-backed, so
 * behavior is otherwise identical to the default allocator.
 */
static std::uint64_t g_allocCount = 0;

// The replacement operators are malloc-backed on purpose; GCC's
// mismatched-new-delete heuristic cannot see that new and delete
// still pair up.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"

void *
operator new(std::size_t n)
{
    ++g_allocCount;
    void *p = std::malloc(n ? n : 1);
    if (p == nullptr)
        throw std::bad_alloc();
    return p;
}

void *
operator new[](std::size_t n)
{
    ++g_allocCount;
    void *p = std::malloc(n ? n : 1);
    if (p == nullptr)
        throw std::bad_alloc();
    return p;
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

#pragma GCC diagnostic pop

namespace {

using namespace molecule;
using namespace molecule::sim::literals;

void
BM_EventQueueScheduleRun(benchmark::State &state)
{
    for (auto _ : state) {
        sim::EventQueue q;
        int sink = 0;
        for (int i = 0; i < 1000; ++i)
            q.schedule(sim::SimTime::microseconds(i), [&] { ++sink; });
        while (!q.empty())
            q.popNext().second();
        benchmark::DoNotOptimize(sink);
    }
    state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueueScheduleRun);

sim::Task<>
pingPong(sim::Simulation &sim, int hops)
{
    for (int i = 0; i < hops; ++i)
        co_await sim.delay(1_us);
}

void
BM_CoroutineDelayChain(benchmark::State &state)
{
    for (auto _ : state) {
        sim::Simulation sim;
        sim.spawn(pingPong(sim, 1000));
        sim.run();
    }
    state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_CoroutineDelayChain);

sim::Task<>
producer(sim::Mailbox<int> &box, int n)
{
    for (int i = 0; i < n; ++i)
        co_await box.put(i);
}

sim::Task<>
consumer(sim::Mailbox<int> &box, int n)
{
    for (int i = 0; i < n; ++i)
        (void)co_await box.get();
}

// Half the scheduled events are cancelled before they fire — the
// timeout-guard pattern (every request arms a timer, most are
// disarmed). Exercises the slab free list and stale-node skipping.
void
BM_EventQueueCancelHeavy(benchmark::State &state)
{
    for (auto _ : state) {
        sim::EventQueue q;
        int sink = 0;
        std::vector<sim::EventId> armed;
        armed.reserve(500);
        for (int i = 0; i < 1000; ++i) {
            auto id = q.schedule(sim::SimTime::microseconds(i),
                                 [&] { ++sink; });
            if (i % 2 == 0)
                armed.push_back(id);
        }
        for (auto id : armed)
            q.cancel(id);
        while (!q.empty())
            q.popNext().second();
        benchmark::DoNotOptimize(sink);
    }
    // Each schedule+cancel or schedule+fire pair counts as one item.
    state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueueCancelHeavy);

// Timer-wheel adversary: a few far-future events pin the heap head
// while short-lived timers are continuously re-armed (scheduled then
// cancelled) behind it, so no churned timer ever reaches the head.
// The old tombstone design grew without bound here; the slab design
// must recycle and stay flat.
void
BM_EventQueueTimerResetChurn(benchmark::State &state)
{
    for (auto _ : state) {
        sim::EventQueue q;
        for (int i = 0; i < 8; ++i)
            q.schedule(sim::SimTime::seconds(1000 + i), [] {});
        sim::EventId pending[32] = {};
        for (int round = 0; round < 1000; ++round) {
            const int k = round % 32;
            if (pending[k] != 0)
                q.cancel(pending[k]);
            pending[k] = q.schedule(
                sim::SimTime::milliseconds(1 + round % 97), [] {});
        }
        while (!q.empty())
            q.popNext().second();
    }
    state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueueTimerResetChurn);

// Dense calendar-wheel exercise: thousands of pending timers spread
// pseudo-randomly over 50 ms, so inserts land across level-0 and
// level-1 buckets and draining cascades coarse windows down before
// the sorted ready-run consumes them.
void
BM_TimerWheelDense(benchmark::State &state)
{
    for (auto _ : state) {
        sim::EventQueue q;
        int sink = 0;
        for (int i = 0; i < 4096; ++i)
            q.schedule(sim::SimTime((std::int64_t(i) * 7919) %
                                    50'000'000),
                       [&] { ++sink; });
        while (!q.empty())
            q.fireNext();
        benchmark::DoNotOptimize(sink);
    }
    state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_TimerWheelDense);

// Batched scheduling: the keep-alive / mailbox-wake / injector path.
// One queue entry per batch instead of per event; same-instant batch
// entries keep consecutive sequence numbers.
void
BM_ScheduleBatch(benchmark::State &state)
{
    for (auto _ : state) {
        sim::EventQueue q;
        int sink = 0;
        std::vector<sim::BatchEvent> batch;
        batch.reserve(256);
        for (int round = 0; round < 4; ++round) {
            batch.clear();
            for (int i = 0; i < 256; ++i)
                batch.push_back(sim::BatchEvent{
                    sim::SimTime::microseconds(round * 256 + i),
                    sim::InlineCallback([&] { ++sink; })});
            q.scheduleBatch(batch);
            while (!q.empty())
                q.fireNext();
        }
        benchmark::DoNotOptimize(sink);
    }
    state.SetItemsProcessed(state.iterations() * 4 * 256);
}
BENCHMARK(BM_ScheduleBatch);

// Zero-allocation assertion: after warm-up (slab grown, wheel blocks
// pooled, run buffers sized), a steady-state schedule→fire cycle
// must not touch the heap at all. The bench fails (SkipWithError) if
// even one allocation happens. Warm-up covers every alignment of the
// cycle against the 2^16 ns wheel window (the 512 us cycle span is
// not a window multiple, so peak wheel-block demand depends on the
// phase and repeats with period 16).
void
BM_EventQueueSteadyStateAllocs(benchmark::State &state)
{
    sim::EventQueue q;
    std::int64_t t = 0;
    int sink = 0;
    const auto cycle = [&](int n) {
        for (int i = 0; i < n; ++i)
            q.schedule(sim::SimTime::microseconds(t + i),
                       [&] { ++sink; });
        t += n;
        while (!q.empty())
            q.fireNext();
    };
    for (int warm = 0; warm < 18; ++warm)
        cycle(512);
    std::uint64_t events = 0;
    const std::uint64_t allocs0 = g_allocCount;
    for (auto _ : state) {
        cycle(512);
        events += 512;
    }
    const std::uint64_t allocs = g_allocCount - allocs0;
    state.counters["allocs_per_event"] =
        benchmark::Counter(double(allocs) / double(events ? events : 1));
    state.SetItemsProcessed(std::int64_t(events));
    benchmark::DoNotOptimize(sink);
    if (allocs != 0)
        state.SkipWithError(
            ("steady-state heap allocations: " +
             std::to_string(allocs) + " over " +
             std::to_string(events) + " events")
                .c_str());
}
BENCHMARK(BM_EventQueueSteadyStateAllocs);

void
BM_MailboxThroughput(benchmark::State &state)
{
    for (auto _ : state) {
        sim::Simulation sim;
        sim::Mailbox<int> box(sim, 16);
        sim.spawn(consumer(box, 1000));
        sim.spawn(producer(box, 1000));
        sim.run();
    }
    state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_MailboxThroughput);

void
BM_LocalFifoRoundTrip(benchmark::State &state)
{
    for (auto _ : state) {
        sim::Simulation sim;
        auto computer = hw::buildDesktop(sim);
        os::LocalOs os(computer->pu(0));
        os.createFifo("bench");
        auto loop = [](os::LocalOs *o, int n) -> sim::Task<> {
            auto *f = o->findFifo("bench");
            for (int i = 0; i < n; ++i) {
                os::FifoMessage msg{64, "m"};
                co_await f->write(msg);
                (void)co_await f->read();
            }
        };
        sim.spawn(loop(&os, 100));
        sim.run();
    }
    state.SetItemsProcessed(state.iterations() * 100);
}
BENCHMARK(BM_LocalFifoRoundTrip);

/**
 * Console reporter that additionally captures items/sec into a
 * PerfSnapshot so every run leaves a BENCH_simcore.json next to the
 * binary's working directory.
 */
class SnapshotReporter : public benchmark::ConsoleReporter
{
  public:
    explicit SnapshotReporter(bench::PerfSnapshot *snap) : snap_(snap)
    {
    }

    void
    ReportRuns(const std::vector<Run> &reports) override
    {
        for (const auto &run : reports) {
            if (run.run_type == Run::RT_Aggregate)
                continue; // the snapshot keeps best-of per name
            const auto it = run.counters.find("items_per_second");
            if (it != run.counters.end())
                snap_->record(run.benchmark_name(),
                              double(it->second));
        }
        ConsoleReporter::ReportRuns(reports);
    }

  private:
    bench::PerfSnapshot *snap_;
};

} // namespace

int
main(int argc, char **argv)
{
    // Default to enough repetitions for honest spread statistics
    // (min/mean/p50/p95/p99 in the snapshot); an explicit
    // --benchmark_repetitions flag still wins.
    bool haveReps = false;
    for (int i = 1; i < argc; ++i)
        if (std::string(argv[i]).find("--benchmark_repetitions") == 0)
            haveReps = true;
    std::vector<char *> args(argv, argv + argc);
    char repsFlag[] = "--benchmark_repetitions=7";
    if (!haveReps)
        args.push_back(repsFlag);
    int argn = int(args.size());
    benchmark::Initialize(&argn, args.data());
    if (benchmark::ReportUnrecognizedArguments(argn, args.data()))
        return 1;

    molecule::bench::PerfSnapshot snap("items_per_second");
    // Baselines document what each perf PR was judged against:
    // seed kernel (tombstone priority_queue + std::function) for the
    // first two, the pre-timer-wheel slab kernel for the rest.
    snap.baseline("BM_EventQueueScheduleRun", 7.445e6);
    snap.baseline("BM_CoroutineDelayChain", 16.647e6);
    snap.baseline("BM_EventQueueCancelHeavy", 15.884e6);
    snap.baseline("BM_EventQueueTimerResetChurn", 26.779e6);

    SnapshotReporter reporter(&snap);
    benchmark::RunSpecifiedBenchmarks(&reporter);
    benchmark::Shutdown();

    if (!snap.writeJson("BENCH_simcore.json"))
        std::fprintf(stderr, "warning: BENCH_simcore.json not written\n");
    return 0;
}
