/**
 * @file
 * Figure 10: function startup latency.
 *
 *  (a) CPU: baseline cold boot vs cfork issued locally vs cfork issued
 *      from a neighbor PU (cfork-XPU), for Python and Node.js;
 *  (b) the same on the BF-1 DPU;
 *  (c) FPGA startup breakdown: Baseline (erase+load+prep), No-Erase,
 *      Warm-image, Warm-sandbox.
 */

#include "bench/common.hh"

namespace {

using namespace molecule;
using core::Molecule;
using core::MoleculeOptions;
using hw::PuType;
using sandbox::CreateRequest;
using sandbox::FunctionImage;
using sim::SimTime;
using sim::Task;

/** Startup of @p fn on @p pu, issued from @p managerPu. */
SimTime
startupOn(bool cfork, const std::string &fn, int pu, int managerPu)
{
    sim::Simulation sim;
    auto computer = hw::buildCpuDpuServer(sim, 2,
                                          hw::DpuGeneration::Bf1);
    MoleculeOptions options;
    options.startup.useCfork = cfork;
    options.managerPu = managerPu;
    Molecule runtime(*computer, options);
    runtime.registerCpuFunction(fn, {PuType::HostCpu, PuType::Dpu});
    runtime.start();
    return runtime.invokeSync(fn, pu).value().startup;
}

/** One FPGA create+start with the given runf options. */
SimTime
fpgaStartup(bool erase, bool cachedBitstream, bool reuseWarm)
{
    sim::Simulation sim;
    auto computer = hw::buildF1Server(sim, 1);
    os::LocalOs hostOs{computer->pu(0)};
    sandbox::RunfRuntime runf{hostOs, computer->fpga(0)};
    runf.options().eraseBeforeProgram = erase;
    runf.options().bitstreamCached = cachedBitstream;

    FunctionImage img;
    img.funcId = "vmult";
    img.language = sandbox::Language::FpgaOpenCl;
    img.fpgaResources = {9007, 9530, 30, 64};

    auto createIt = [](sandbox::RunfRuntime *r,
                       const FunctionImage *fi) -> Task<> {
        CreateRequest req{"sb", fi};
        bool ok = co_await r->create(req);
        MOLECULE_ASSERT(ok, "create failed");
    };
    auto startIt = [](sandbox::RunfRuntime *r) -> Task<> {
        bool ok = co_await r->start("sb");
        MOLECULE_ASSERT(ok, "start failed");
    };
    if (!reuseWarm) {
        // Full path: (erase +) program + sandbox preparation.
        sim.spawn(createIt(&runf, &img));
        sim.run();
        sim.spawn(startIt(&runf));
        sim.run();
        return sim.now();
    }
    // Warm-sandbox: the kernel is already resident (vectorized cache
    // hit); only the software sandbox preparation remains (53 ms).
    sim.spawn(createIt(&runf, &img));
    sim.run();
    const auto t0 = sim.now();
    sim.spawn(startIt(&runf));
    sim.run();
    return sim.now() - t0;
}

} // namespace

int
main()
{
    using namespace molecule::bench;
    using molecule::sim::Table;

    banner("Figure 10: serverless startup latency",
           "cfork ~10x under baseline; remote cfork +1-3 ms; FPGA "
           "ladder >20 s / 3.8 s / 1.9 s / 53 ms");

    Table a("Figure 10-a: startup at CPU (ms)");
    a.header({"runtime", "Baseline-local", "cfork-local", "cfork-XPU"});
    for (const char *fn : {"image-resize", "alexa-front"}) {
        const char *label =
            std::string(fn) == "image-resize" ? "Python" : "Node.js";
        a.row({label, ms(startupOn(false, fn, 0, 0)),
               ms(startupOn(true, fn, 0, 0)),
               ms(startupOn(true, fn, 0, 1))});
    }
    a.print();

    Table b("Figure 10-b: startup at BF-1 DPU (ms)");
    b.header({"runtime", "Baseline-local", "cfork-local", "cfork-XPU"});
    for (const char *fn : {"image-resize", "alexa-front"}) {
        const char *label =
            std::string(fn) == "image-resize" ? "Python" : "Node.js";
        b.row({label, ms(startupOn(false, fn, 1, 1)),
               ms(startupOn(true, fn, 1, 1)),
               ms(startupOn(true, fn, 1, 0))});
    }
    b.print();

    Table c("Figure 10-c: startup at FPGA (vmult)");
    c.header({"path", "latency (s)"});
    c.row({"Baseline (erase+load+prep)", secs(fpgaStartup(true, false,
                                                          false))});
    c.row({"No-Erase", secs(fpgaStartup(false, false, false))});
    c.row({"Warm-image", secs(fpgaStartup(false, true, false))});
    c.row({"Warm-sandbox", secs(fpgaStartup(false, true, true), 3)});
    c.print();
    return 0;
}
