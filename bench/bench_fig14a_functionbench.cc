/**
 * @file
 * Figure 14-a..d: FunctionBench end-to-end latency, baseline
 * (Molecule-homo) vs Molecule.
 *
 *  (a) cold boot on the host CPU       (c) cold boot on BF-1 DPU
 *  (b) warm boot on the host CPU       (d) cold boot on BF-2 DPU
 *
 * Warm boot pre-creates and caches the instance, then measures the
 * first invocation (so Molecule's cfork COW penalty is visible, §6.6).
 */

#include "bench/common.hh"

namespace {

using namespace molecule;
using core::Molecule;
using core::MoleculeOptions;
using hw::DpuGeneration;
using hw::PuType;
using workloads::Catalog;

struct Setup
{
    sim::Simulation sim;
    std::unique_ptr<hw::Computer> computer;
    std::unique_ptr<Molecule> runtime;

    Setup(bool cfork, DpuGeneration gen)
    {
        computer = hw::buildCpuDpuServer(sim, 2, gen);
        MoleculeOptions options;
        options.startup.useCfork = cfork;
        runtime = std::make_unique<Molecule>(*computer, options);
        for (const auto &fn : Catalog::functionBenchNames())
            runtime->registerCpuFunction(fn,
                                         {PuType::HostCpu, PuType::Dpu});
        runtime->start();
    }
};

/** Cold end-to-end latency of @p fn on @p pu. */
sim::SimTime
coldE2e(bool cfork, DpuGeneration gen, const std::string &fn, int pu)
{
    Setup s(cfork, gen);
    // Manage from the same PU (the paper boots DPU instances remotely
    // for Molecule; homo runs entirely on one PU).
    return s.runtime->invokeSync(fn, pu).value().endToEnd;
}

/** Warm end-to-end latency: instance pre-created and cached. */
sim::SimTime
warmE2e(bool cfork, const std::string &fn, int pu)
{
    Setup s(cfork, DpuGeneration::Bf1);
    auto &runtime = *s.runtime;
    // Pre-create the instance without executing it.
    auto prewarm = [](Molecule *m, std::string name, int target)
        -> sim::Task<> {
        const core::FunctionDef &def = m->registry().find(name);
        auto acq = co_await m->startup().acquire(def, target,
                                                 m->options().managerPu);
        co_await m->startup().release(def, acq);
    };
    runtime.simulation().spawn(prewarm(&runtime, fn, pu));
    runtime.simulation().run();
    return runtime.invokeSync(fn, pu).value().endToEnd;
}

void
coldTable(const char *title, DpuGeneration gen, int pu)
{
    using molecule::sim::Table;
    Table t(title);
    t.header({"function", "Baseline (ms)", "Molecule (ms)", "speedup"});
    for (const auto &fn : Catalog::functionBenchNames()) {
        const auto base = coldE2e(false, gen, fn, pu);
        const auto mol = coldE2e(true, gen, fn, pu);
        t.row({fn, molecule::bench::ms(base), molecule::bench::ms(mol),
               Table::num(base.toMilliseconds() / mol.toMilliseconds(),
                          2) +
                   "x"});
    }
    t.print();
}

} // namespace

int
main()
{
    using namespace molecule::bench;
    using molecule::sim::Table;

    banner("Figure 14-a..d: FunctionBench end-to-end latency",
           "paper: Molecule 1.01x-11.12x better cold; warm ~equal "
           "(slight COW penalty); BF-1 4-7x slower than CPU; BF-2 "
           "3-4x better than BF-1");

    coldTable("Figure 14-a: cold boot on CPU", DpuGeneration::Bf1, 0);

    {
        Table t("Figure 14-b: warm boot on CPU");
        t.header({"function", "Baseline (ms)", "Molecule (ms)",
                  "Molecule/Baseline"});
        for (const auto &fn : Catalog::functionBenchNames()) {
            const auto base = warmE2e(false, fn, 0);
            const auto mol = warmE2e(true, fn, 0);
            t.row({fn, ms(base), ms(mol),
                   Table::num(mol.toMilliseconds() /
                                  base.toMilliseconds(),
                              3)});
        }
        t.print();
    }

    coldTable("Figure 14-c: cold boot on BF-1 DPU", DpuGeneration::Bf1,
              1);
    coldTable("Figure 14-d: cold boot on BF-2 DPU", DpuGeneration::Bf2,
              1);
    return 0;
}
