/**
 * @file
 * Shared helpers for the per-figure bench binaries.
 *
 * Every binary regenerates the rows/series of one paper table or
 * figure by running the full stack in simulation and printing a
 * Table. Absolute numbers come from the calibrated cost models; the
 * *shapes* (who wins, by what factor, where crossovers sit) emerge
 * from the implemented protocols.
 */

#ifndef MOLECULE_BENCH_COMMON_HH
#define MOLECULE_BENCH_COMMON_HH

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/molecule.hh"
#include "hw/computer.hh"
#include "sim/stats.hh"
#include "sim/table.hh"

namespace molecule::bench {

/** Print the standard header of a bench binary. */
inline void
banner(const std::string &what, const std::string &paperRef)
{
    std::printf("Molecule reproduction - %s\n", what.c_str());
    std::printf("Paper reference: %s\n\n", paperRef.c_str());
}

/** Format a SimTime in the unit used by the figure. */
inline std::string
us(sim::SimTime t, int decimals = 1)
{
    return sim::Table::num(t.toMicroseconds(), decimals);
}

inline std::string
ms(sim::SimTime t, int decimals = 2)
{
    return sim::Table::num(t.toMilliseconds(), decimals);
}

inline std::string
secs(sim::SimTime t, int decimals = 2)
{
    return sim::Table::num(t.toSeconds(), decimals);
}

} // namespace molecule::bench

#endif // MOLECULE_BENCH_COMMON_HH
