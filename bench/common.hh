/**
 * @file
 * Shared helpers for the per-figure bench binaries.
 *
 * Every binary regenerates the rows/series of one paper table or
 * figure by running the full stack in simulation and printing a
 * Table. Absolute numbers come from the calibrated cost models; the
 * *shapes* (who wins, by what factor, where crossovers sit) emerge
 * from the implemented protocols.
 */

#ifndef MOLECULE_BENCH_COMMON_HH
#define MOLECULE_BENCH_COMMON_HH

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/molecule.hh"
#include "hw/computer.hh"
#include "obs/registry.hh"
#include "sim/stats.hh"
#include "sim/table.hh"

namespace molecule::bench {

/** Print the standard header of a bench binary. */
inline void
banner(const std::string &what, const std::string &paperRef)
{
    std::printf("Molecule reproduction - %s\n", what.c_str());
    std::printf("Paper reference: %s\n\n", paperRef.c_str());
}

/** Format a SimTime in the unit used by the figure. */
inline std::string
us(sim::SimTime t, int decimals = 1)
{
    return sim::Table::num(t.toMicroseconds(), decimals);
}

inline std::string
ms(sim::SimTime t, int decimals = 2)
{
    return sim::Table::num(t.toMilliseconds(), decimals);
}

inline std::string
secs(sim::SimTime t, int decimals = 2)
{
    return sim::Table::num(t.toSeconds(), decimals);
}

/**
 * Collects benchmark results and emits a machine-readable perf
 * snapshot (BENCH_simcore.json). Each entry pairs a measured value
 * with an optional recorded baseline so the snapshot itself documents
 * the speedup a perf PR claims.
 */
class PerfSnapshot
{
  public:
    explicit PerfSnapshot(std::string metric) : metric_(std::move(metric))
    {
    }

    /** Pre-register the reference value a result is judged against. */
    void
    baseline(const std::string &name, double value)
    {
        entry(name).baseline = value;
    }

    /**
     * Record a measured value for @p name. Repeated records (e.g.
     * --benchmark_repetitions) keep the fastest run as the headline:
     * for a throughput metric the max is the least-interference
     * estimate. Every sample is kept exactly, so the snapshot reports
     * honest run-to-run spread (min/mean/p50/p95/p99) — the old
     * log-bucketed histogram collapsed a handful of repetitions into
     * one bucket and printed p50 == p95 == p99.
     */
    void
    record(const std::string &name, double value)
    {
        auto &e = entry(name);
        e.value = std::max(e.value, value);
        e.samples.push_back(value);
    }

    /**
     * Exact percentile over the recorded samples: linear
     * interpolation between closest ranks, the convention used by
     * numpy and gbench aggregates. @p p in [0, 100].
     */
    static double
    percentileOf(std::vector<double> sorted, double p)
    {
        if (sorted.empty())
            return 0.0;
        std::sort(sorted.begin(), sorted.end());
        const double rank =
            (p / 100.0) * double(sorted.size() - 1);
        const std::size_t lo = std::size_t(rank);
        const std::size_t hi =
            lo + 1 < sorted.size() ? lo + 1 : lo;
        const double frac = rank - double(lo);
        return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
    }

    /** Write the snapshot as JSON. @retval false open/write failed. */
    bool
    writeJson(const std::string &path) const
    {
        std::FILE *f = std::fopen(path.c_str(), "w");
        if (f == nullptr)
            return false;
        std::fprintf(f, "{\n  \"metric\": \"%s\",\n  \"results\": {",
                     metric_.c_str());
        const char *sep = "\n";
        for (const auto &e : entries_) {
            std::fprintf(f, "%s    \"%s\": {\n      \"value\": %.1f",
                         sep, e.name.c_str(), e.value);
            if (e.baseline > 0.0) {
                std::fprintf(f,
                             ",\n      \"baseline\": %.1f"
                             ",\n      \"speedup\": %.3f",
                             e.baseline, e.value / e.baseline);
            }
            // Spread only means something with repetitions; a single
            // sample would just echo the value.
            if (e.samples.size() > 1) {
                double sum = 0.0;
                double mn = e.samples.front();
                for (double s : e.samples) {
                    sum += s;
                    mn = std::min(mn, s);
                }
                std::fprintf(
                    f,
                    ",\n      \"samples\": %llu"
                    ",\n      \"min\": %.1f"
                    ",\n      \"mean\": %.1f"
                    ",\n      \"p50\": %.1f"
                    ",\n      \"p95\": %.1f"
                    ",\n      \"p99\": %.1f",
                    static_cast<unsigned long long>(e.samples.size()),
                    mn, sum / double(e.samples.size()),
                    percentileOf(e.samples, 50),
                    percentileOf(e.samples, 95),
                    percentileOf(e.samples, 99));
            }
            std::fprintf(f, "\n    }");
            sep = ",\n";
        }
        std::fprintf(f, "\n  }\n}\n");
        return std::fclose(f) == 0;
    }

  private:
    struct Entry
    {
        std::string name;
        double value = 0.0;
        double baseline = 0.0;
        /** Every recorded sample, in record order (exact spread). */
        std::vector<double> samples;
    };

    Entry &
    entry(const std::string &name)
    {
        for (auto &e : entries_)
            if (e.name == name)
                return e;
        entries_.push_back(Entry{name, 0.0, 0.0, {}});
        return entries_.back();
    }

    std::string metric_;
    std::vector<Entry> entries_;
};

} // namespace molecule::bench

#endif // MOLECULE_BENCH_COMMON_HH
