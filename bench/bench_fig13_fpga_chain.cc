/**
 * @file
 * Figure 13: FPGA function chain end-to-end latency, copying through
 * host DRAM vs the shared-memory (DRAM data retention) optimization.
 *
 * A chain of 1..5 vector-compute functions exchanging 4 KB messages on
 * one UltraScale+ card (§6.5: each host crossing is a 50-100 us DMA).
 */

#include "bench/common.hh"

namespace {

using namespace molecule;
using core::Molecule;
using core::MoleculeOptions;

sim::SimTime
chainLatency(int length, bool shm)
{
    sim::Simulation sim;
    auto computer = hw::buildF1Server(sim, 1);
    Molecule runtime(*computer, MoleculeOptions{});
    // Register `length` copies of the vector-compute stage. All stages
    // share the catalog kernel model; distinct names give them their
    // own sandboxes/slots.
    std::vector<std::string> fns;
    for (int i = 0; i < length; ++i)
        fns.push_back("fpga-vecstage");
    runtime.registerFpgaFunction("fpga-vecstage");
    runtime.start();

    // Chain of identical stages: reuse one slot sequentially (the
    // wrapper shares a DRAM bank for never-concurrent instances, §5).
    obs::ChainRecord rec;
    auto run = [](Molecule *m, std::vector<std::string> chain, bool s,
                  obs::ChainRecord *out) -> sim::Task<> {
        *out = co_await m->dag().runFpgaChain(chain, 0, s, 4096);
    };
    runtime.simulation().spawn(run(&runtime, fns, shm, &rec));
    runtime.simulation().run();
    return rec.endToEnd;
}

} // namespace

int
main()
{
    using namespace molecule::bench;
    using molecule::sim::Table;

    banner("Figure 13: FPGA function chain (end-to-end) latency",
           "paper: shm (data retention) ~1.95x better at 5 functions");

    Table t("Figure 13: chain latency (us) vs instance count");
    t.header({"chain length", "Copying", "Shm", "speedup"});
    for (int n = 1; n <= 5; ++n) {
        const auto copying = chainLatency(n, false);
        const auto shm = chainLatency(n, true);
        t.row({std::to_string(n), us(copying), us(shm),
               Table::num(copying.toMicroseconds() /
                              shm.toMicroseconds(),
                          2) +
                   "x"});
    }
    t.print();
    return 0;
}
