/**
 * @file
 * Figure 12: serverless DAG communication latency (Alexa skills).
 *
 * Measures per-edge latency of the 4 Alexa edges (front->interact,
 * interact->smarthome, smarthome->door, smarthome->light) under four
 * placements: CPU->CPU, DPU->DPU, CPU->DPU and DPU->CPU, comparing the
 * baseline (Node Express HTTP) with Molecule (IPC / nIPC).
 */

#include "bench/common.hh"

namespace {

using namespace molecule;
using core::ChainSpec;
using core::DagCommMode;
using core::Molecule;
using core::MoleculeOptions;
using hw::PuType;
using workloads::Catalog;

/** Alexa DAG: front -> interact -> smarthome -> {door, light}. */
ChainSpec
alexaSpec()
{
    ChainSpec spec;
    spec.name = "alexa";
    auto fns = Catalog::alexaChain();
    spec.nodes.push_back(core::ChainNode{fns[0], -1});
    spec.nodes.push_back(core::ChainNode{fns[1], 0});
    spec.nodes.push_back(core::ChainNode{fns[2], 1});
    spec.nodes.push_back(core::ChainNode{fns[3], 2});
    spec.nodes.push_back(core::ChainNode{fns[4], 2});
    return spec;
}

/** Per-edge latencies for one mode and placement. */
std::vector<sim::SimTime>
edges(DagCommMode mode, const std::vector<int> &placement)
{
    sim::Simulation sim;
    auto computer = hw::buildCpuDpuServer(sim, 2,
                                          hw::DpuGeneration::Bf1);
    MoleculeOptions options;
    options.dagMode = mode;
    if (mode == DagCommMode::BaselineHttp)
        options.startup.useCfork = false;
    Molecule runtime(*computer, options);
    for (const auto &fn : Catalog::alexaChain())
        runtime.registerCpuFunction(fn, {PuType::HostCpu, PuType::Dpu});
    runtime.start();
    auto rec = runtime.invokeChainSync(alexaSpec(), placement).value();
    return rec.edgeLatencies;
}

} // namespace

int
main()
{
    using namespace molecule::bench;
    using molecule::sim::Table;

    banner("Figure 12: serverless DAG communication latency",
           "paper: IPC 15-18x better than Express baseline; nIPC "
           "10-13x (cross-PU)");

    struct Case
    {
        const char *name;
        std::vector<int> placement;
    };
    // Placements: edge k goes from node k's PU to node k+1's (the
    // fan-out edges both leave smarthome).
    const std::vector<Case> cases{
        {"(a) CPU to CPU", {0, 0, 0, 0, 0}},
        {"(b) DPU to DPU", {1, 1, 1, 1, 1}},
        {"(c) CPU to DPU", {0, 1, 0, 1, 1}},
        {"(d) DPU to CPU", {1, 0, 1, 0, 0}},
    };
    const std::vector<std::string> edgeNames{
        "front-interact", "interact-smarthome", "smarthome-door",
        "smarthome-light"};

    for (const auto &c : cases) {
        auto base = edges(core::DagCommMode::BaselineHttp, c.placement);
        auto mol = edges(core::DagCommMode::MoleculeIpc, c.placement);
        Table t(std::string("Figure 12 ") + c.name + " (ms per edge)");
        t.header({"edge", "Baseline", "Molecule", "speedup"});
        for (std::size_t i = 0; i < edgeNames.size(); ++i) {
            t.row({edgeNames[i], ms(base[i]), ms(mol[i], 3),
                   Table::num(base[i].toMilliseconds() /
                                  mol[i].toMilliseconds(),
                              1) +
                       "x"});
        }
        t.print();
    }
    return 0;
}
