/**
 * @file
 * Ablation (§5 "Inter-PU synchronization"): what the three state-sync
 * strategies cost.
 *
 *  (1) immediate sync: xfifo_init latency as the PU count grows (the
 *      call returns only after every peer acked);
 *  (2) lazy + batched sync: wire messages for a burst of xfifo_close
 *      reclamations, batched vs flushed per operation;
 *  (3) no-sync (static partitioning): process creation cost is flat in
 *      the PU count because pids never synchronize.
 */

#include "bench/common.hh"
#include "xpu/client.hh"

namespace {

using namespace molecule;
using xpu::TransportKind;

struct World
{
    sim::Simulation sim;
    std::unique_ptr<hw::Computer> computer;
    std::vector<std::unique_ptr<os::LocalOs>> oses;
    std::unique_ptr<xpu::XpuShimNetwork> net;
    os::Process *proc = nullptr;
    std::unique_ptr<xpu::XpuClient> client;

    explicit World(int dpus)
    {
        computer = hw::buildCpuDpuServer(sim, dpus,
                                         hw::DpuGeneration::Bf1);
        net = std::make_unique<xpu::XpuShimNetwork>(*computer);
        for (int pu = 0; pu < computer->puCount(); ++pu) {
            oses.push_back(
                std::make_unique<os::LocalOs>(computer->pu(pu)));
            net->addShim(*oses.back(), pu == 0 ? TransportKind::Fifo
                                               : TransportKind::MpscPoll);
        }
        auto boot = [](World *w) -> sim::Task<> {
            w->proc = co_await w->oses[0]->spawnProcess("p", 1 << 20);
        };
        sim.spawn(boot(this));
        sim.run();
        client = std::make_unique<xpu::XpuClient>(net->shimOn(0), *proc);
    }
};

/** Mean xfifo_init latency (immediate broadcast to all peers). */
sim::SimTime
initLatency(int dpus)
{
    World w(dpus);
    sim::Histogram lat;
    auto run = [](World *world, sim::Histogram *out) -> sim::Task<> {
        for (int i = 0; i < 20; ++i) {
            const auto t0 = world->sim.now();
            auto fd = co_await world->client->xfifoInit(
                "f" + std::to_string(i));
            MOLECULE_ASSERT(fd.ok(), "init");
            out->addTime(world->sim.now() - t0);
        }
    };
    w.sim.spawn(run(&w, &lat));
    w.sim.run();
    return sim::SimTime::fromMicroseconds(lat.mean());
}

/** Sync messages + time for 64 close reclamations. */
std::pair<std::int64_t, sim::SimTime>
closeStorm(int dpus, bool batched)
{
    World w(dpus);
    auto &shim = w.net->shimOn(0);
    auto run = [](World *world, bool batch) -> sim::Task<> {
        std::vector<xpu::XpuFd> fds;
        for (int i = 0; i < 64; ++i) {
            auto fd = co_await world->client->xfifoInit(
                "c" + std::to_string(i));
            fds.push_back(fd.value());
        }
        for (auto fd : fds) {
            (void)co_await world->client->xfifoClose(fd);
            if (!batch)
                co_await world->net->shimOn(0).flushLazy();
        }
        co_await world->net->shimOn(0).flushLazy();
    };
    const auto before = shim.syncMessagesSent();
    const auto t0 = w.sim.now();
    w.sim.spawn(run(&w, batched));
    w.sim.run();
    // Subtract the init broadcasts (one per fifo per peer).
    const auto initMsgs = std::int64_t(64 * dpus);
    return {shim.syncMessagesSent() - before - initMsgs,
            w.sim.now() - t0};
}

/** Process spawn cost (pid allocation is statically partitioned). */
sim::SimTime
spawnCost(int dpus)
{
    World w(dpus);
    const auto t0 = w.sim.now();
    auto run = [](World *world) -> sim::Task<> {
        for (int i = 0; i < 8; ++i)
            (void)co_await world->oses[0]->spawnProcess(
                "s" + std::to_string(i), 1 << 20);
    };
    w.sim.spawn(run(&w));
    w.sim.run();
    return (w.sim.now() - t0) / 8.0;
}

} // namespace

int
main()
{
    using namespace molecule::bench;
    using molecule::sim::Table;

    banner("Ablation: inter-PU synchronization strategies",
           "immediate sync pays per peer; lazy batching amortizes "
           "reclamation; static pid partitioning costs nothing");

    Table a("Immediate sync: xfifo_init latency vs machine size");
    a.header({"PUs", "init latency (us)", "spawn (no sync, ms)"});
    for (int dpus : {0, 1, 2, 4, 8}) {
        a.row({std::to_string(dpus + 1), us(initLatency(dpus)),
               ms(spawnCost(dpus))});
    }
    a.print();

    Table b("Lazy sync: 64 xfifo_close reclamations, 2 DPUs");
    b.header({"mode", "reclaim sync messages", "elapsed (ms)"});
    auto batched = closeStorm(2, true);
    auto eager = closeStorm(2, false);
    b.row({"batched (8/batch)", std::to_string(batched.first),
           ms(batched.second)});
    b.row({"flush per close", std::to_string(eager.first),
           ms(eager.second)});
    b.print();
    return 0;
}
