/**
 * @file
 * Table 5 / §6.8: generality — supporting a new PU takes three
 * components (vectorized sandbox runtime, XPU-Shim hookup, programming
 * model). This binary demonstrates the GPU path end-to-end through
 * runG and prints the component matrix.
 */

#include "bench/common.hh"

namespace {

using namespace molecule;
using sandbox::CreateRequest;
using sandbox::FunctionImage;

} // namespace

int
main()
{
    using namespace molecule::bench;
    using molecule::sim::Table;

    banner("Table 5 / §6.8: supporting different PUs",
           "GPU functions run through runG + the host's virtual shim; "
           "the components below are the entire per-PU effort");

    // Demonstrate the GPU path: load a CUDA function, start it and
    // launch kernels alongside CPU/FPGA functions.
    sim::Simulation sim;
    auto computer = hw::buildFullHetero(sim);
    os::LocalOs hostOs{computer->pu(0)};
    sandbox::RungRuntime rung{hostOs, computer->gpuDev(0)};
    FunctionImage img;
    img.funcId = "cuda-vecadd";
    img.language = sandbox::Language::CudaCpp;

    sim::SimTime coldStart, warmLaunch;
    auto demo = [](sandbox::RungRuntime *r, const FunctionImage *fi,
                   sim::Simulation *s, sim::SimTime *cold,
                   sim::SimTime *warm) -> sim::Task<> {
        const auto t0 = s->now();
        CreateRequest req{"g0", fi};
        bool ok = co_await r->create(req);
        MOLECULE_ASSERT(ok, "GPU create failed");
        ok = co_await r->start("g0");
        MOLECULE_ASSERT(ok, "GPU start failed");
        *cold = s->now() - t0;
        const auto t1 = s->now();
        co_await r->invoke("g0", sim::SimTime::fromMilliseconds(2.0),
                           1 << 20, 1 << 20);
        *warm = s->now() - t1;
    };
    sim.spawn(demo(&rung, &img, &sim, &coldStart, &warmLaunch));
    sim.run();

    Table t("Table 5: required components per PU");
    t.header({"PU", "VSandbox", "XPU-Shim", "Programming model"});
    t.row({"DPU", "modified runc (cfork)", "RDMA to CPU",
           "multi-language (Python/Node)"});
    t.row({"FPGA", "runf (on OpenCL)", "DMA via host virtual shim",
           "OpenCL kernels"});
    t.row({"GPU", "runG (on CUDA)", "DMA via host virtual shim",
           "CUDA C++ kernels"});
    t.print();

    Table d("GPU demonstration (runG end-to-end)");
    d.header({"step", "latency"});
    d.row({"cold create+start (context+module)", ms(coldStart)});
    d.row({"kernel invocation (2 ms kernel + DMA)", ms(warmLaunch)});
    d.print();
    return 0;
}
