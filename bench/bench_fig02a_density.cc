/**
 * @file
 * Figure 2-a: function density on CPU-DPU heterogeneous computers.
 *
 * Creates concurrent instances of the Python image-processing function
 * until admission fails, for three machines: CPU only, CPU + 1 DPU,
 * CPU + 2 DPUs. The CPU instances boot the baseline way (density is
 * bounded by full private footprints); DPU instances are cfork'd from
 * the per-DPU template, so they share the runtime region — which is
 * where the extra density comes from (§6.2).
 */

#include "bench/common.hh"

namespace {

using namespace molecule;
using core::Molecule;
using core::MoleculeOptions;
using hw::PuType;

/**
 * Fill one machine with instances. Returns instances per PU.
 */
std::vector<int>
fillMachine(int dpuCount)
{
    sim::Simulation sim;
    auto computer = hw::buildCpuDpuServer(sim, dpuCount,
                                          hw::DpuGeneration::Bf1);
    // The host OS and daemons reserve memory on every PU.
    computer->pu(0).tryAllocate(6ULL << 30);
    for (int pu = 1; pu <= dpuCount; ++pu)
        computer->pu(pu).tryAllocate(512ULL << 20);

    MoleculeOptions options;
    options.startup.warmCapacity = 1u << 20; // never evict
    Molecule runtime(*computer, options);
    runtime.registerCpuFunction("image-resize",
                                {PuType::HostCpu, PuType::Dpu});
    runtime.start();

    std::vector<int> perPu(std::size_t(dpuCount) + 1, 0);
    const core::FunctionDef &def =
        runtime.registry().find("image-resize");

    // Baseline boots on the CPU (full footprint)...
    auto fill = [](Molecule *m, const core::FunctionDef *fn, int pu,
                   bool cfork, int *count) -> sim::Task<> {
        m->startup().options().useCfork = cfork;
        while (true) {
            auto acq = co_await m->startup().acquire(*fn, pu, 0);
            if (!acq.instance)
                break; // admission failure: the PU is full
            ++*count;
        }
    };
    sim.spawn(fill(&runtime, &def, 0, false, &perPu[0]));
    sim.run();
    // ...Molecule cforks on the DPUs (shared runtime region).
    for (int pu = 1; pu <= dpuCount; ++pu) {
        sim.spawn(fill(&runtime, &def, pu, true,
                       &perPu[std::size_t(pu)]));
        sim.run();
    }
    return perPu;
}

} // namespace

int
main()
{
    using namespace molecule::bench;
    using molecule::sim::Table;

    banner("Figure 2-a: DPU for higher density",
           "paper: 1000 / 1256 / 1512 concurrent instances with "
           "0 / 1 / 2 BlueField DPUs");

    Table t("Figure 2-a: concurrent image-processing instances");
    t.header({"machine", "total", "per PU"});
    for (int dpus : {0, 1, 2}) {
        auto perPu = fillMachine(dpus);
        int total = 0;
        std::string breakdown;
        for (std::size_t i = 0; i < perPu.size(); ++i) {
            total += perPu[i];
            if (i)
                breakdown += " + ";
            breakdown += std::to_string(perPu[i]);
        }
        const std::string label =
            dpus == 0 ? "CPU" : "+" + std::to_string(dpus) + " DPU";
        t.row({label, std::to_string(total), breakdown});
    }
    t.print();
    return 0;
}
