/**
 * @file
 * Figure 8: nIPC latency vs message size under the three XPUcall
 * transports, against local Linux FIFOs on the DPU and the host CPU.
 *
 * A caller process on the BF-1 DPU issues xfifo_write to an XPU-FIFO
 * homed on the host CPU and measures the call latency (§6.1). The
 * Linux rows time a local named-FIFO one-way transfer on each PU.
 */

#include "bench/common.hh"
#include "xpu/client.hh"

namespace {

using namespace molecule;
using namespace molecule::sim::literals;
using xpu::TransportKind;

struct Harness
{
    sim::Simulation sim;
    std::unique_ptr<hw::Computer> computer =
        hw::buildCpuDpuServer(sim, 1, hw::DpuGeneration::Bf1);
    os::LocalOs cpuOs{computer->pu(0)};
    os::LocalOs dpuOs{computer->pu(1)};
    xpu::XpuShimNetwork net{*computer};
    xpu::XpuShim *cpuShim = net.addShim(cpuOs, TransportKind::Fifo);
    xpu::XpuShim *dpuShim = net.addShim(dpuOs, TransportKind::MpscPoll);
    os::Process *cpuProc = nullptr;
    os::Process *dpuProc = nullptr;
    std::unique_ptr<xpu::XpuClient> cpuClient;
    std::unique_ptr<xpu::XpuClient> dpuClient;
    int fifoCounter = 0;

    Harness()
    {
        auto boot = [](Harness *h) -> sim::Task<> {
            h->cpuProc = co_await h->cpuOs.spawnProcess("reader", 1 << 20);
            h->dpuProc = co_await h->dpuOs.spawnProcess("caller", 1 << 20);
        };
        sim.spawn(boot(this));
        sim.run();
        cpuClient = std::make_unique<xpu::XpuClient>(*cpuShim, *cpuProc);
        dpuClient = std::make_unique<xpu::XpuClient>(*dpuShim, *dpuProc);
    }

    /** Mean xfifo_write latency from the DPU for one transport. */
    sim::SimTime
    nipcWrite(TransportKind kind, std::uint64_t bytes, int iters)
    {
        dpuShim->setTransport(kind);
        const std::string uuid = "fig8-" + std::to_string(fifoCounter++);
        sim::Histogram lat;

        auto setup = [](Harness *h, std::string id) -> sim::Task<> {
            auto fd = co_await h->cpuClient->xfifoInit(id);
            const xpu::ObjId obj = h->cpuClient->objectOf(fd.value());
            (void)co_await h->cpuClient->grantCap(
                h->dpuClient->xpuPid(), obj, xpu::Perm::Write);
        };
        sim.spawn(setup(this, uuid));
        sim.run();

        auto measure = [](Harness *h, std::string id, std::uint64_t sz,
                          int n, sim::Histogram *out) -> sim::Task<> {
            auto fd = co_await h->dpuClient->xfifoConnect(id);
            for (int i = 0; i < n; ++i) {
                const auto t0 = h->sim.now();
                (void)co_await h->dpuClient->xfifoWrite(fd.value(), sz, "m");
                out->addTime(h->sim.now() - t0);
            }
        };
        sim.spawn(measure(this, uuid, bytes, iters, &lat));
        sim.run();
        return sim::SimTime::fromMicroseconds(lat.mean());
    }

    /** Mean local Linux FIFO one-way latency on @p os. */
    sim::SimTime
    linuxFifo(os::LocalOs &os, std::uint64_t bytes, int iters)
    {
        const std::string name = "lf-" + std::to_string(fifoCounter++);
        os.createFifo(name);
        sim::Histogram lat;
        auto measure = [](os::LocalOs *o, std::string fifo,
                          std::uint64_t sz, int n,
                          sim::Histogram *out) -> sim::Task<> {
            auto *f = o->findFifo(fifo);
            for (int i = 0; i < n; ++i) {
                const auto t0 = o->simulation().now();
                os::FifoMessage msg{sz, "m"};
                co_await f->write(msg);
                (void)co_await f->read();
                out->addTime(o->simulation().now() - t0);
            }
        };
        sim.spawn(measure(&os, name, bytes, iters, &lat));
        sim.run();
        return sim::SimTime::fromMicroseconds(lat.mean());
    }
};

} // namespace

int
main()
{
    using molecule::bench::banner;
    using molecule::bench::us;

    banner("Figure 8: nIPC latency",
           "xfifo_write from a BF-1 DPU caller; avg of 50 calls; "
           "nIPC spans ~25us (Poll) to ~144us+ (Base), Linux DPU "
           "between, Linux CPU below");

    Harness h;
    molecule::sim::Table t("Figure 8: latency (us) vs message size");
    t.header({"msg size", "nIPC-Base", "nIPC-MPSC", "nIPC-Poll",
              "Linux (DPU)", "Linux (CPU)"});
    const int iters = 50;
    for (std::uint64_t bytes : {16, 32, 64, 128, 256, 512, 1024, 2048}) {
        t.row({std::to_string(bytes) + "B",
               us(h.nipcWrite(TransportKind::Fifo, bytes, iters)),
               us(h.nipcWrite(TransportKind::Mpsc, bytes, iters)),
               us(h.nipcWrite(TransportKind::MpscPoll, bytes, iters)),
               us(h.linuxFifo(h.dpuOs, bytes, iters)),
               us(h.linuxFifo(h.cpuOs, bytes, iters))});
    }
    t.print();
    return 0;
}
