/**
 * @file
 * Figure 14-e: chained applications (Alexa, MapReduce) end-to-end
 * latency across CPU, DPU and CrossPU placements, baseline vs
 * Molecule. Instances are pre-booted (§6.6) so the numbers isolate
 * communication + execution.
 */

#include "bench/common.hh"

namespace {

using namespace molecule;
using core::ChainSpec;
using core::Molecule;
using core::MoleculeOptions;
using hw::PuType;
using workloads::Catalog;

sim::SimTime
chainE2e(bool moleculeMode, const std::vector<std::string> &fns,
         const std::vector<int> &placement)
{
    sim::Simulation sim;
    auto computer = hw::buildCpuDpuServer(sim, 2,
                                          hw::DpuGeneration::Bf1);
    MoleculeOptions options =
        moleculeMode ? MoleculeOptions{} : MoleculeOptions::homo();
    Molecule runtime(*computer, options);
    for (const auto &fn : fns)
        runtime.registerCpuFunction(fn, {PuType::HostCpu, PuType::Dpu});
    runtime.start();
    auto spec = ChainSpec::linear(fns.front(), fns);
    return runtime.invokeChainSync(spec, placement).value().endToEnd;
}

} // namespace

int
main()
{
    using namespace molecule::bench;
    using molecule::sim::Table;

    banner("Figure 14-e: chained applications",
           "paper: Alexa 2.04-2.47x less e2e latency, MapReduce "
           "3.70-4.47x; labels 38.6 ms / 20.0 ms (baseline CPU)");

    struct App
    {
        const char *name;
        std::vector<std::string> fns;
    };
    const std::vector<App> apps{{"Alexa", Catalog::alexaChain()},
                                {"MapReduce", Catalog::mapReduceChain()}};

    for (const auto &app : apps) {
        const auto n = app.fns.size();
        const std::vector<int> onCpu(n, 0);
        const std::vector<int> onDpu(n, 1);
        std::vector<int> cross;
        for (std::size_t i = 0; i < n; ++i)
            cross.push_back(i % 2 == 0 ? 0 : 1);

        Table t(std::string("Figure 14-e: ") + app.name + " (ms)");
        t.header({"placement", "Baseline", "Molecule", "speedup"});
        struct Row
        {
            const char *label;
            const std::vector<int> *placement;
        };
        const std::vector<Row> rows{{"CPU", &onCpu},
                                    {"DPU", &onDpu},
                                    {"CrossPU", &cross}};
        for (const auto &row : rows) {
            const auto base = chainE2e(false, app.fns, *row.placement);
            const auto mol = chainE2e(true, app.fns, *row.placement);
            t.row({row.label, ms(base), ms(mol),
                   Table::num(base.toMilliseconds() /
                                  mol.toMilliseconds(),
                              2) +
                       "x"});
        }
        t.print();
    }
    return 0;
}
