#include "hw/interconnect.hh"

#include "sim/logging.hh"

namespace molecule::hw {

const char *
toString(LinkKind k)
{
    switch (k) {
      case LinkKind::Shmem:
        return "shmem";
      case LinkKind::PcieRdma:
        return "rdma";
      case LinkKind::PcieDma:
        return "dma";
      case LinkKind::Ethernet:
        return "ethernet";
    }
    return "?";
}

LinkParams
LinkParams::forKind(LinkKind kind)
{
    LinkParams p;
    p.kind = kind;
    switch (kind) {
      case LinkKind::Shmem:
        p.baseLatency = calib::kShmemBaseLatency;
        p.gbps = calib::kShmemGbps;
        break;
      case LinkKind::PcieRdma:
        p.baseLatency = calib::kRdmaBaseLatency;
        p.gbps = calib::kRdmaGbps;
        break;
      case LinkKind::PcieDma:
        p.baseLatency = calib::kDmaBaseLatency;
        p.gbps = calib::kDmaGbps;
        break;
      case LinkKind::Ethernet:
        p.baseLatency = calib::kNetworkBaseLatency;
        p.gbps = calib::kNetworkGbps;
        break;
    }
    return p;
}

sim::SimTime
Link::transferLatency(std::uint64_t bytes) const
{
    const double seconds =
        double(bytes) * 8.0 / (params_.gbps * 1e9);
    return params_.baseLatency + sim::SimTime::fromSeconds(seconds);
}

sim::Task<>
Link::transfer(std::uint64_t bytes, double degrade)
{
    bytesMoved_.fetchAdd(bytes);
    const auto base = transferLatency(bytes);
    auto jittered = base * sim_.rng().jitter(params_.jitterRel);
    // Apply injected degradation only when armed: the healthy path
    // must not round through an extra multiply.
    if (degrade != 1.0)
        jittered = jittered * degrade;
    co_await sim_.delay(jittered);
}

Link *
Topology::makeLink(LinkParams params)
{
    links_.push_back(std::make_unique<Link>(sim_, params));
    return links_.back().get();
}

void
Topology::addRoute(int a, int b, Route route)
{
    MOLECULE_ASSERT(!route.hops.empty(), "route %d->%d has no hops", a, b);
    routes_[{a, b}] = std::move(route);
}

void
Topology::addBidirectional(int a, int b, Link *link)
{
    addRoute(a, b, Route{{link}, sim::SimTime(0)});
    addRoute(b, a, Route{{link}, sim::SimTime(0)});
}

const Route &
Topology::route(int a, int b) const
{
    auto it = routes_.find({a, b});
    if (it == routes_.end())
        sim::fatal("no route between PU %d and PU %d", a, b);
    return it->second;
}

bool
Topology::hasRoute(int a, int b) const
{
    return routes_.count({a, b}) != 0;
}

sim::Task<>
Topology::transfer(int a, int b, std::uint64_t bytes,
                   obs::SpanContext ctx)
{
    obs::Span span(ctx, "hw.link", obs::Layer::Hw, a);
    span.setArg(std::int64_t(bytes));
    double degrade = 1.0;
    if (faults_ != nullptr) {
        const fault::LinkFault *lf = faults_->linkFault(a, b);
        if (lf != nullptr) {
            const sim::SimTime now = sim_.now();
            if (lf->downUntil > now) {
                // Full drop: the transfer stalls until the link
                // returns (flap semantics, not loss).
                span.setDetail("link-down-stall");
                co_await sim_.delay(lf->downUntil - now);
            }
            if (lf->degradedUntil > sim_.now())
                degrade = lf->factor;
        }
    }
    const Route &r = route(a, b);
    bool first = true;
    for (Link *hop : r.hops) {
        if (!first && r.forwardCost > sim::SimTime(0)) {
            // Store-and-forward at the intermediate PU.
            co_await sim_.delay(r.forwardCost);
        }
        first = false;
        co_await hop->transfer(bytes, degrade);
    }
}

sim::SimTime
Topology::transferLatency(int a, int b, std::uint64_t bytes) const
{
    const Route &r = route(a, b);
    sim::SimTime total(0);
    bool first = true;
    for (Link *hop : r.hops) {
        if (!first)
            total += r.forwardCost;
        first = false;
        total += hop->transferLatency(bytes);
    }
    return total;
}

} // namespace molecule::hw
