#include "hw/computer.hh"

#include "sim/logging.hh"

namespace molecule::hw {

ProcessingUnit *
Computer::addPu(PuDescriptor desc)
{
    const int id = int(pus_.size());
    pus_.push_back(std::make_unique<ProcessingUnit>(sim_, id, desc));
    // Same-PU communication goes through shared memory.
    auto *self = topology_.makeLink(LinkParams::forKind(LinkKind::Shmem));
    topology_.addRoute(id, id, Route{{self}, sim::SimTime(0)});
    return pus_.back().get();
}

FpgaDevice *
Computer::addFpga(int hostPuId, FpgaResources totals, int dramBanks)
{
    MOLECULE_ASSERT(hostPuId >= 0 && hostPuId < puCount(),
                    "FPGA host PU %d out of range", hostPuId);
    const int id = int(fpgas_.size());
    fpgas_.push_back(std::make_unique<FpgaDevice>(sim_, id, hostPuId,
                                                  totals, dramBanks));
    return fpgas_.back().get();
}

GpuDevice *
Computer::addGpu(int hostPuId, int maxConcurrentKernels)
{
    MOLECULE_ASSERT(hostPuId >= 0 && hostPuId < puCount(),
                    "GPU host PU %d out of range", hostPuId);
    const int id = int(gpus_.size());
    gpus_.push_back(std::make_unique<GpuDevice>(sim_, id, hostPuId,
                                                maxConcurrentKernels));
    return gpus_.back().get();
}

void
Computer::wireStandardRoutes()
{
    // RDMA between the host CPU and every DPU; DPU<->DPU pairs go
    // through the host (CPU-intercepted, §5 Limitations).
    ProcessingUnit *host = nullptr;
    for (auto &p : pus_) {
        if (p->type() == PuType::HostCpu) {
            host = p.get();
            break;
        }
    }
    if (!host)
        return;

    std::vector<ProcessingUnit *> dpus;
    for (auto &p : pus_)
        if (p->type() == PuType::Dpu)
            dpus.push_back(p.get());

    std::vector<Link *> uplink(pus_.size(), nullptr);
    for (auto *dpu : dpus) {
        auto *rdma =
            topology_.makeLink(LinkParams::forKind(LinkKind::PcieRdma));
        topology_.addBidirectional(host->id(), dpu->id(), rdma);
        uplink[std::size_t(dpu->id())] = rdma;
    }
    for (auto *a : dpus) {
        for (auto *b : dpus) {
            if (a == b)
                continue;
            Route r;
            r.hops = {uplink[std::size_t(a->id())],
                      uplink[std::size_t(b->id())]};
            r.forwardCost = calib::kCpuInterceptCost;
            topology_.addRoute(a->id(), b->id(), std::move(r));
        }
    }
}

ProcessingUnit &
Computer::pu(int id)
{
    MOLECULE_ASSERT(id >= 0 && id < puCount(), "PU id %d out of range",
                    id);
    return *pus_[std::size_t(id)];
}

const ProcessingUnit &
Computer::pu(int id) const
{
    MOLECULE_ASSERT(id >= 0 && id < puCount(), "PU id %d out of range",
                    id);
    return *pus_[std::size_t(id)];
}

ProcessingUnit &
Computer::hostCpu()
{
    for (auto &p : pus_)
        if (p->type() == PuType::HostCpu)
            return *p;
    sim::fatal("computer has no host CPU");
}

std::vector<ProcessingUnit *>
Computer::pusOfType(PuType type)
{
    std::vector<ProcessingUnit *> out;
    for (auto &p : pus_)
        if (p->type() == type)
            out.push_back(p.get());
    return out;
}

std::unique_ptr<Computer>
buildCpuDpuServer(sim::Simulation &sim, int dpuCount, DpuGeneration gen)
{
    auto computer = std::make_unique<Computer>(sim);
    computer->addPu(xeon8160Descriptor());
    for (int i = 0; i < dpuCount; ++i) {
        computer->addPu(gen == DpuGeneration::Bf1
                            ? bluefield1Descriptor(i)
                            : bluefield2Descriptor(i));
    }
    computer->wireStandardRoutes();
    return computer;
}

std::unique_ptr<Computer>
buildF1Server(sim::Simulation &sim, int fpgaCount)
{
    auto computer = std::make_unique<Computer>(sim);
    computer->addPu(f1HostDescriptor());
    for (int i = 0; i < fpgaCount; ++i)
        computer->addFpga(0, FpgaResources::f1Totals());
    computer->wireStandardRoutes();
    return computer;
}

std::unique_ptr<Computer>
buildDesktop(sim::Simulation &sim)
{
    auto computer = std::make_unique<Computer>(sim);
    computer->addPu(desktopI7Descriptor());
    computer->wireStandardRoutes();
    return computer;
}

std::unique_ptr<Computer>
buildFullHetero(sim::Simulation &sim)
{
    auto computer = std::make_unique<Computer>(sim);
    computer->addPu(xeon8160Descriptor());
    computer->addPu(bluefield2Descriptor(0));
    computer->addPu(bluefield2Descriptor(1));
    computer->addFpga(0, FpgaResources::f1Totals());
    computer->addGpu(0);
    computer->wireStandardRoutes();
    return computer;
}

} // namespace molecule::hw
