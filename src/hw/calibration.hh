/**
 * @file
 * Central cost-model calibration table.
 *
 * Every latency/throughput constant used by the hardware, OS and runtime
 * models lives here, annotated with the paper datum it is calibrated
 * against (figure/section of "Serverless Computing on Heterogeneous
 * Computers", ASPLOS'22). No experiment result is hard-coded anywhere:
 * benches obtain their numbers by running the real protocol paths, which
 * compose these primitive costs.
 *
 * Calibration philosophy: pick primitive costs that are individually
 * plausible for the hardware the paper used and that *compose* into the
 * paper's reported end-to-end numbers. Where the paper gives an absolute
 * number (e.g. cfork breakdown, Fig 11-a) the decomposition is solved
 * from the ablation deltas.
 */

#ifndef MOLECULE_HW_CALIBRATION_HH
#define MOLECULE_HW_CALIBRATION_HH

#include "sim/time.hh"

namespace molecule::hw::calib {

using sim::SimTime;

// ---------------------------------------------------------------------
// Per-PU software/compute scaling.
//
// Software-path costs (syscalls, interpreter startup, container ops)
// scale with single-core scalar performance; we express each PU's cost
// as hostCost * swFactor. Compute-bound function bodies scale with
// computeFactor. Calibrated against:
//  - Fig 14-a vs 14-c: BF-1 DPU end-to-end 4x-7x slower than host CPU.
//  - Fig 14-d: BF-2 3x-4x better than BF-1, "very close" to CPU.
//  - Fig 11 footnote: desktop i7-9700 (3.0 GHz) used for the cfork
//    breakdown, slightly faster per-core than the 2.1 GHz Xeon server.
// ---------------------------------------------------------------------

/** Host Xeon 8160 server core: the reference (factor 1.0). */
inline constexpr double kHostSwFactor = 1.0;
inline constexpr double kHostComputeFactor = 1.0;

/** Desktop i7-9700 used in Fig 11: faster per core than the Xeon. */
inline constexpr double kDesktopSwFactor = 0.70;
inline constexpr double kDesktopComputeFactor = 0.75;

/** BlueField-1: 16x 800 MHz A72 cores. */
inline constexpr double kBf1SwFactor = 6.5;
inline constexpr double kBf1ComputeFactor = 4.8;
/** DPU network/HTTP path benefits from onboard NIC offload (Fig 12-b). */
inline constexpr double kBf1NetFactor = 2.2;

/** BlueField-2: up to 2.75 GHz cores (Fig 14-d). */
inline constexpr double kBf2SwFactor = 1.8;
inline constexpr double kBf2ComputeFactor = 1.25;
inline constexpr double kBf2NetFactor = 1.3;

// ---------------------------------------------------------------------
// Local OS primitive costs (host-CPU reference; scale by swFactor).
// Calibrated so that a local Linux FIFO one-way transfer lands at
// ~8-16 us on the host CPU and ~30-75 us on BF-1 over the 16 B..2 KB
// message range of Fig 8.
// ---------------------------------------------------------------------

/** Entering/leaving the kernel for a small syscall. */
inline constexpr SimTime kSyscallCost = SimTime::nanoseconds(1200);

/** Blocking-reader wakeup via the scheduler (futex/poll path). */
inline constexpr SimTime kSchedWakeupCost = SimTime::nanoseconds(5000);

/** Per-byte cost for pipe/FIFO copies through the kernel. */
inline constexpr double kFifoCopyNsPerByte = 4.0;

/** Process fork: COW page-table duplication of a warm template. */
inline constexpr SimTime kForkCost = SimTime::fromMilliseconds(1.0);

/** Touching a COW page after fork (soft page fault + copy). */
inline constexpr SimTime kCowFaultPerPage = SimTime::nanoseconds(1800);

/** Spawning a fresh process image (fork+execve+ld.so of a tiny binary). */
inline constexpr SimTime kSpawnProcessCost = SimTime::fromMilliseconds(2.5);

// ---------------------------------------------------------------------
// Container operations (host reference; scale by swFactor).
// Solved from the Fig 11-a ablation: 85.55 -> 47.25 -> 30.05 -> 8.40 ms
// on the desktop machine (swFactor 0.70):
//   naive-cfork - funcContainer  = container start        = 17.20 ms
//   funcContainer - cpusetOpt    = cpuset sem vs mutex    = 21.65 ms
//   cpusetOpt                    = fork + ns + settle     =  8.40 ms
// Constants below are the host-reference values (desktop = 0.70x).
// ---------------------------------------------------------------------

/** Starting a new runc container (mounts, pivot_root, hooks). */
inline constexpr SimTime kContainerStartCost =
    SimTime::fromMilliseconds(17.20 / 0.70);

/** Reconfiguring namespaces of a forked child into a container. */
inline constexpr SimTime kNamespaceReconfigCost =
    SimTime::fromMilliseconds(4.6 / 0.70);

/**
 * Attaching a task to a cpuset cgroup with the stock kernel's global
 * semaphore serializing cpuset updates (§6.4 "Cpuset opt").
 */
inline constexpr SimTime kCpusetAttachSemaphore =
    SimTime::fromMilliseconds(21.65 / 0.70);

/** Same attach with the paper's mutex patch applied. */
inline constexpr SimTime kCpusetAttachMutex =
    SimTime::fromMilliseconds(0.35 / 0.70);

/** Settling the forked instance in the container + runtime handshake. */
inline constexpr SimTime kInstanceSettleCost =
    SimTime::fromMilliseconds(1.8 / 0.70);

/**
 * Executor-side processing of one remote management command (cfork,
 * create, ...) received over nIPC. This, scaled by the DPU's swFactor,
 * is the "1-3 ms" a cfork issued from a neighbor PU adds (Fig 10-a/b).
 */
inline constexpr SimTime kExecutorCommandCost =
    SimTime::fromMilliseconds(1.1);

/** Tearing a container down (kill, unmount, cgroup removal). */
inline constexpr SimTime kContainerDeleteCost =
    SimTime::fromMilliseconds(9.0);

// ---------------------------------------------------------------------
// Language runtimes (host reference; scale by swFactor).
// Calibrated against Fig 10-a (Python baseline ~180 ms, Node ~250 ms on
// the server CPU) and Fig 14-a cold-start labels.
// ---------------------------------------------------------------------

/**
 * Cold CPython interpreter + serverless wrapper (Flask-style), before
 * function-specific imports. Solving Fig 11-a's desktop baseline
 * (85.55 ms = 0.70 x (container start + interpreter + settle)) gives
 * ~95 ms; the Fig 10-a server baseline (~180 ms) then attributes the
 * rest to per-function imports.
 */
inline constexpr SimTime kPythonColdStart = SimTime::fromMilliseconds(95.0);

/** Cold Node.js + Express-style wrapper (Fig 10-a: ~250 ms baseline). */
inline constexpr SimTime kNodeColdStart = SimTime::fromMilliseconds(160.0);

/** Forkable-runtime thread merge before cfork (§4.2). */
inline constexpr SimTime kThreadMergeCost = SimTime::fromMilliseconds(0.6);

/** Thread re-expansion in the child after cfork. */
inline constexpr SimTime kThreadExpandCost =
    SimTime::fromMilliseconds(0.8);

// ---------------------------------------------------------------------
// Interconnect links. Calibrated against §5 ("DPU and CPU communicate
// through RDMA ... FPGA and CPU through DMA") and §6.5 ("50-100 us to
// transfer 4 KB" over DMA).
// ---------------------------------------------------------------------

/** PCIe RDMA (CPU <-> BlueField): verbs post + completion. */
inline constexpr SimTime kRdmaBaseLatency =
    SimTime::fromMicroseconds(2.5);
inline constexpr double kRdmaGbps = 50.0; // PCIe3 x16 practical

/**
 * PCIe DMA to/from the FPGA card (XDMA-style, per descriptor). §6.5
 * reports 50-100 us for a 4 KB transfer; solving the Fig 13 chain
 * (copying vs shm = 1.95x at 5 functions, 8 DMA hops saved) puts the
 * per-descriptor cost at the top of that band.
 */
inline constexpr SimTime kDmaBaseLatency =
    SimTime::fromMicroseconds(88.0);
inline constexpr double kDmaGbps = 3.0 * 8.0; // ~3 GB/s effective

/** Host-internal shared-memory handoff (same-PU zero-copy). */
inline constexpr SimTime kShmemBaseLatency =
    SimTime::fromMicroseconds(0.4);
inline constexpr double kShmemGbps = 200.0;

/** Datacenter network hop (remote IPC baseline, Fig 4). */
inline constexpr SimTime kNetworkBaseLatency =
    SimTime::fromMicroseconds(28.0);
inline constexpr double kNetworkGbps = 25.0;

/** CPU forwarding cost when intercepting DPU<->FPGA traffic (§5). */
inline constexpr SimTime kCpuInterceptCost =
    SimTime::fromMicroseconds(6.0);

/** Relative jitter applied to link transfers. */
inline constexpr double kLinkJitter = 0.03;

// ---------------------------------------------------------------------
// XPU-Shim / XPUcall costs. Calibrated against §5 ("two IPC round trips
// ... 100 us in our Bluefield-1 DPU, while the costs in host CPU is
// about 20 us") and Fig 8 (nIPC-Poll ~25 us).
// ---------------------------------------------------------------------

/** Shim-side XPUcall handling: decode, capability check, uuid lookup. */
inline constexpr SimTime kShimHandleCost = SimTime::fromMicroseconds(1.3);

/** Producer-side MPSC enqueue (lock-free push + doorbell write). */
inline constexpr SimTime kMpscEnqueueCost =
    SimTime::fromMicroseconds(0.35);

/** Mean time for the polling shim to notice a new MPSC entry. */
inline constexpr SimTime kShimPollGap = SimTime::fromMicroseconds(0.5);

/** Response delivery when the *client* polls shared memory. */
inline constexpr SimTime kShmResponsePollCost =
    SimTime::fromMicroseconds(0.8);

/** Per-PU synchronization message processing inside the shim. */
inline constexpr SimTime kSyncApplyCost = SimTime::fromMicroseconds(2.0);

// ---------------------------------------------------------------------
// FPGA device. Calibrated against Fig 10-c (Baseline >20 s with erase;
// No-Erase 3.8 s; Warm-image 1.9 s; Warm-sandbox 53 ms) and Table 4
// (AWS F1 resource totals; 12-function wrapper usage).
// ---------------------------------------------------------------------

/** Full-device erase before reprogramming (Baseline path only). */
inline constexpr SimTime kFpgaEraseCost = SimTime::fromSeconds(16.6);

/** Programming a freshly composed bitstream (download + flash). */
inline constexpr SimTime kFpgaProgramColdCost =
    SimTime::fromSeconds(3.75);

/** Programming when the bitstream is cached host-side (flash only). */
inline constexpr SimTime kFpgaProgramCachedCost =
    SimTime::fromSeconds(1.85);

/** Preparing the software sandbox state around a resident function. */
inline constexpr SimTime kFpgaSandboxPrepCost =
    SimTime::fromMilliseconds(53.0);

/** Issuing a kernel start command to a resident region. */
inline constexpr SimTime kFpgaInvokeCost = SimTime::fromMicroseconds(18.0);

/** runf software dispatch around one FPGA invocation. */
inline constexpr SimTime kRunfDispatchCost =
    SimTime::fromMicroseconds(20.0);

/** AWS F1 UltraScale+ totals (Table 4). */
inline constexpr long kF1TotalLuts = 1181768;
inline constexpr long kF1TotalRegs = 2364480;
inline constexpr long kF1TotalBrams = 2160;
inline constexpr long kF1TotalDsps = 6840;

/** Static wrapper (shell) overhead: ~5% LUTs (§6.4). */
inline constexpr double kFpgaWrapperLutFraction = 0.05;

// ---------------------------------------------------------------------
// GPU device (§6.8 generality path; coarse but plausible).
// ---------------------------------------------------------------------

/** CUDA kernel launch via a resident MPS context. */
inline constexpr SimTime kGpuLaunchCost = SimTime::fromMicroseconds(9.0);

/** Creating a CUDA context (cold GPU sandbox). */
inline constexpr SimTime kGpuContextCreateCost =
    SimTime::fromMilliseconds(240.0);

/** Loading a CUDA module (cubin) into a context. */
inline constexpr SimTime kGpuModuleLoadCost =
    SimTime::fromMilliseconds(35.0);

// ---------------------------------------------------------------------
// Function runtime dispatch and DAG communication (Fig 12, Fig 14-e).
// The baseline (Molecule-homo) runs an Express/Flask HTTP server in
// each instance and moves messages over localhost HTTP; Molecule's
// runtimes block on (XPU-)FIFOs. The per-invocation dispatch deltas
// and the per-edge HTTP cost are solved from the Fig 14-e end-to-end
// labels (Alexa 38.6 ms, MapReduce 20.0 ms) against the reported
// speedup bands (2.04-2.47x, 3.70-4.47x). Network-path costs scale
// with the PU's netFactor.
// ---------------------------------------------------------------------

/** Express (Node) per-request HTTP handling inside the instance. */
inline constexpr SimTime kExpressDispatch = SimTime::fromMilliseconds(1.6);

/** Flask (Python) per-request HTTP handling inside the instance. */
inline constexpr SimTime kFlaskDispatch = SimTime::fromMilliseconds(2.37);

/** One localhost-HTTP edge between two instances (per endpoint). */
inline constexpr SimTime kHttpEdgeEndpointCost =
    SimTime::fromMilliseconds(1.60);

/** Molecule runtime dispatch: FIFO read loop + request parse (Node). */
inline constexpr SimTime kFifoDispatchNode =
    SimTime::fromMilliseconds(0.10);

/** Molecule runtime dispatch (Python). */
inline constexpr SimTime kFifoDispatchPython =
    SimTime::fromMilliseconds(0.12);

/** Serializing a request onto / off a (XPU-)FIFO, per endpoint. */
inline constexpr SimTime kIpcSerializeCost =
    SimTime::fromMilliseconds(0.09);

// ---------------------------------------------------------------------
// Commercial control planes (Fig 9). Molecule/Molecule-homo numbers are
// *measured* by running our stack; these two are modelled comparators,
// calibrated so the paper's reported ratios hold: Molecule (cfork,
// ~10 ms startup) is 37-46x better on startup and 68-300x better on
// communication.
// ---------------------------------------------------------------------

inline constexpr SimTime kLambdaStartup = SimTime::fromMilliseconds(560.0);
inline constexpr SimTime kOpenWhiskStartup =
    SimTime::fromMilliseconds(630.0);
/** AWS step-function transition (communication, Fig 9-b). */
inline constexpr SimTime kLambdaStepComm = SimTime::fromMilliseconds(62.0);
inline constexpr SimTime kOpenWhiskComm = SimTime::fromMilliseconds(28.0);

} // namespace molecule::hw::calib

#endif // MOLECULE_HW_CALIBRATION_HH
