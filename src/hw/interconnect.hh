/**
 * @file
 * Interconnect model: links between PUs and route lookup.
 *
 * The paper's prototype exports exactly three physical paths (§5):
 * RDMA between CPU and DPU, DMA between CPU and FPGA, and a
 * CPU-intercepted two-hop path between DPU and FPGA. We also model
 * same-PU shared memory and the datacenter network (remote IPC
 * baseline of Fig 4).
 */

#ifndef MOLECULE_HW_INTERCONNECT_HH
#define MOLECULE_HW_INTERCONNECT_HH

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "fault/state.hh"
#include "hw/calibration.hh"
#include "obs/trace.hh"
#include "sim/analysis.hh"
#include "sim/sync.hh"

namespace molecule::hw {

/** Physical transport backing a link. */
enum class LinkKind { Shmem, PcieRdma, PcieDma, Ethernet };

const char *toString(LinkKind k);

/** Latency/bandwidth parameters of one link. */
struct LinkParams
{
    LinkKind kind = LinkKind::Shmem;
    sim::SimTime baseLatency;
    double gbps = 1.0;
    double jitterRel = calib::kLinkJitter;

    /** Canonical parameters for a link kind (from the calibration). */
    static LinkParams forKind(LinkKind kind);
};

/**
 * A point-to-point link. transfer() is the only operation: it costs
 * base latency plus a bandwidth term, with multiplicative jitter from
 * the simulation RNG.
 */
class Link
{
  public:
    Link(sim::Simulation &sim, LinkParams params)
        : sim_(sim), params_(params)
    {}

    const LinkParams &params() const { return params_; }

    /** Latency of moving @p bytes across the link (no contention). */
    sim::SimTime transferLatency(std::uint64_t bytes) const;

    /**
     * Move @p bytes across the link, suspending for the latency.
     * @p degrade multiplies the jittered latency (injected link
     * faults); 1.0 — the only value in fault-free runs — is applied
     * as a no-op so healthy timings are bit-identical.
     */
    sim::Task<> transfer(std::uint64_t bytes, double degrade = 1.0);

    /** Total bytes moved (stats). */
    std::uint64_t bytesMoved() const { return bytesMoved_.peek(); }

  private:
    sim::Simulation &sim_;
    LinkParams params_;
    /** Tracked: two same-tick transfers on one link are ordered only
     * by the event tie-break (matters once contention is modelled). */
    sim::analysis::Tracked<std::uint64_t> bytesMoved_{0, "link.bytes"};
};

/**
 * A route between two PUs: one or two links plus an optional forwarding
 * cost at the intermediate PU (CPU-intercepted path, §5 Limitations).
 */
struct Route
{
    std::vector<Link *> hops;
    /** Software forwarding cost charged per intermediate PU. */
    sim::SimTime forwardCost;

    bool direct() const { return hops.size() <= 1; }
};

/**
 * All-pairs connectivity of one heterogeneous computer.
 *
 * Routes are registered explicitly by the computer builder; lookups for
 * an unregistered pair are a configuration error (fatal).
 */
class Topology
{
  public:
    explicit Topology(sim::Simulation &sim) : sim_(sim) {}

    /** Create and own a link; returns a stable pointer. */
    Link *makeLink(LinkParams params);

    /** Register the route from PU @p a to PU @p b (directional). */
    void addRoute(int a, int b, Route route);

    /** Register symmetric single-link routes in both directions. */
    void addBidirectional(int a, int b, Link *link);

    /** Look up the route a -> b. */
    const Route &route(int a, int b) const;

    bool hasRoute(int a, int b) const;

    /**
     * Move @p bytes from PU @p a to PU @p b across every hop of the
     * route, charging forwarding costs at intermediate PUs.
     */
    sim::Task<> transfer(int a, int b, std::uint64_t bytes,
                         obs::SpanContext ctx = {});

    /** Closed-form latency of the a -> b route (no contention). */
    sim::SimTime transferLatency(int a, int b, std::uint64_t bytes) const;

    /**
     * Consult @p faults before every transfer: a dropped link stalls
     * transfers until it returns; a degraded link multiplies hop
     * latencies. Null (the default) means no fault model — transfers
     * take the exact pre-fault code path.
     */
    void attachFaults(const fault::FaultState *faults)
    {
        faults_ = faults;
    }

  private:
    sim::Simulation &sim_;
    const fault::FaultState *faults_ = nullptr;
    std::vector<std::unique_ptr<Link>> links_;
    std::map<std::pair<int, int>, Route> routes_;
};

} // namespace molecule::hw

#endif // MOLECULE_HW_INTERCONNECT_HH
