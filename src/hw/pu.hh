/**
 * @file
 * Processing-unit model.
 *
 * A ProcessingUnit is one general-purpose compute element of the
 * heterogeneous computer (host CPU complex, a DPU's ARM complex). It
 * models core occupancy (a counted resource), per-PU performance scaling
 * of software and compute costs, and a memory budget used for instance
 * admission (Fig 2-a density experiment).
 *
 * Accelerators (FPGA/GPU) are *devices* attached to a PU, not PUs with
 * cores; see fpga.hh / gpu.hh.
 */

#ifndef MOLECULE_HW_PU_HH
#define MOLECULE_HW_PU_HH

#include <cstdint>
#include <memory>
#include <string>

#include "hw/calibration.hh"
#include "sim/sync.hh"

namespace molecule::hw {

/** Kind of processing unit / attached accelerator owner. */
enum class PuType { HostCpu, Dpu, FpgaHost, GpuHost };

/** Instruction-set of a general-purpose PU. */
enum class Isa { X86_64, Aarch64 };

const char *toString(PuType t);

/** Static description of a PU (construction parameters). */
struct PuDescriptor
{
    std::string name;
    PuType type = PuType::HostCpu;
    Isa isa = Isa::X86_64;
    int cores = 1;
    double freqGhz = 1.0;
    std::uint64_t memoryBytes = 0;
    /** Software-path cost multiplier relative to the host CPU. */
    double swFactor = 1.0;
    /** Compute-bound cost multiplier relative to the host CPU. */
    double computeFactor = 1.0;
    /** Network/HTTP-path multiplier (DPUs have NIC offload). */
    double netFactor = 1.0;
};

/**
 * Runtime processing unit: cores as a semaphore, memory as a budget.
 */
class ProcessingUnit
{
  public:
    ProcessingUnit(sim::Simulation &sim, int id, PuDescriptor desc);

    int id() const { return id_; }
    const PuDescriptor &desc() const { return desc_; }
    const std::string &name() const { return desc_.name; }
    PuType type() const { return desc_.type; }

    /** Scale a host-reference software-path cost to this PU. */
    sim::SimTime
    swCost(sim::SimTime hostCost) const
    {
        return hostCost * desc_.swFactor;
    }

    /** Scale a host-reference compute-bound cost to this PU. */
    sim::SimTime
    computeCost(sim::SimTime hostCost) const
    {
        return hostCost * desc_.computeFactor;
    }

    /** Scale a host-reference network-path cost to this PU. */
    sim::SimTime
    netCost(sim::SimTime hostCost) const
    {
        return hostCost * desc_.netFactor;
    }

    /**
     * Occupy one core for a compute burst of @p hostCost (host-reference
     * time); queues behind other bursts when all cores are busy.
     */
    sim::Task<> compute(sim::SimTime hostCost);

    /**
     * Occupy one core for a software-path burst (scaled by swFactor).
     */
    sim::Task<> computeSw(sim::SimTime hostCost);

    /** Core semaphore, exposed for schedulers that hold cores longer. */
    sim::Semaphore &coreSemaphore() { return cores_; }

    /** @name Memory admission (bytes). The density experiment drives
     *  allocation through the OS layer; the PU tracks the budget. */
    ///@{
    std::uint64_t memoryCapacity() const { return desc_.memoryBytes; }

    std::uint64_t memoryUsed() const { return memUsed_; }

    std::uint64_t
    memoryFree() const
    {
        return desc_.memoryBytes - memUsed_;
    }

    /** @retval false the allocation would exceed the budget. */
    bool tryAllocate(std::uint64_t bytes);

    void free(std::uint64_t bytes);
    ///@}

    sim::Simulation &simulation() { return sim_; }

  private:
    sim::Simulation &sim_;
    int id_;
    PuDescriptor desc_;
    sim::Semaphore cores_;
    std::uint64_t memUsed_ = 0;
};

/** @name Paper-testbed PU descriptors (see §6 "two settings"). */
///@{

/** Intel Xeon Platinum 8160 host (96 cores, 2.1 GHz, 192 GB). */
PuDescriptor xeon8160Descriptor();

/** Mellanox BlueField-1 DPU (16 ARM cores, 800 MHz, 16 GB). */
PuDescriptor bluefield1Descriptor(int index);

/** Nvidia BlueField-2 DPU (8 ARM cores, 2.75 GHz, 16 GB). */
PuDescriptor bluefield2Descriptor(int index);

/** AWS F1.x16large host CPU complex (64 vCPU). */
PuDescriptor f1HostDescriptor();

/** Desktop i7-9700 used for the Fig 11 breakdown. */
PuDescriptor desktopI7Descriptor();
///@}

} // namespace molecule::hw

#endif // MOLECULE_HW_PU_HH
