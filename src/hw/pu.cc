#include "hw/pu.hh"

#include "sim/logging.hh"

namespace molecule::hw {

const char *
toString(PuType t)
{
    switch (t) {
      case PuType::HostCpu:
        return "CPU";
      case PuType::Dpu:
        return "DPU";
      case PuType::FpgaHost:
        return "FPGA";
      case PuType::GpuHost:
        return "GPU";
    }
    return "?";
}

ProcessingUnit::ProcessingUnit(sim::Simulation &sim, int id,
                               PuDescriptor desc)
    : sim_(sim), id_(id), desc_(std::move(desc)),
      cores_(sim, std::size_t(desc_.cores))
{
    MOLECULE_ASSERT(desc_.cores > 0, "PU needs at least one core");
}

sim::Task<>
ProcessingUnit::compute(sim::SimTime hostCost)
{
    co_await cores_.acquire();
    sim::SemGuard g(cores_);
    co_await sim_.delay(computeCost(hostCost));
}

sim::Task<>
ProcessingUnit::computeSw(sim::SimTime hostCost)
{
    co_await cores_.acquire();
    sim::SemGuard g(cores_);
    co_await sim_.delay(swCost(hostCost));
}

bool
ProcessingUnit::tryAllocate(std::uint64_t bytes)
{
    if (memUsed_ + bytes > desc_.memoryBytes)
        return false;
    memUsed_ += bytes;
    return true;
}

void
ProcessingUnit::free(std::uint64_t bytes)
{
    MOLECULE_ASSERT(bytes <= memUsed_, "freeing more memory than used");
    memUsed_ -= bytes;
}

PuDescriptor
xeon8160Descriptor()
{
    PuDescriptor d;
    d.name = "xeon-8160";
    d.type = PuType::HostCpu;
    d.isa = Isa::X86_64;
    d.cores = 96;
    d.freqGhz = 2.1;
    d.memoryBytes = 192ULL << 30;
    d.swFactor = calib::kHostSwFactor;
    d.computeFactor = calib::kHostComputeFactor;
    d.netFactor = 1.0;
    return d;
}

PuDescriptor
bluefield1Descriptor(int index)
{
    PuDescriptor d;
    d.name = "bf1-dpu" + std::to_string(index);
    d.type = PuType::Dpu;
    d.isa = Isa::Aarch64;
    d.cores = 16;
    d.freqGhz = 0.8;
    d.memoryBytes = 16ULL << 30;
    d.swFactor = calib::kBf1SwFactor;
    d.computeFactor = calib::kBf1ComputeFactor;
    d.netFactor = calib::kBf1NetFactor;
    return d;
}

PuDescriptor
bluefield2Descriptor(int index)
{
    PuDescriptor d;
    d.name = "bf2-dpu" + std::to_string(index);
    d.type = PuType::Dpu;
    d.isa = Isa::Aarch64;
    d.cores = 8;
    d.freqGhz = 2.75;
    d.memoryBytes = 16ULL << 30;
    d.swFactor = calib::kBf2SwFactor;
    d.computeFactor = calib::kBf2ComputeFactor;
    d.netFactor = calib::kBf2NetFactor;
    return d;
}

PuDescriptor
f1HostDescriptor()
{
    PuDescriptor d;
    d.name = "f1-host";
    d.type = PuType::HostCpu;
    d.isa = Isa::X86_64;
    d.cores = 64;
    d.freqGhz = 2.3;
    d.memoryBytes = 976ULL << 30;
    d.swFactor = calib::kHostSwFactor;
    d.computeFactor = calib::kHostComputeFactor;
    d.netFactor = 1.0;
    return d;
}

PuDescriptor
desktopI7Descriptor()
{
    PuDescriptor d;
    d.name = "i7-9700";
    d.type = PuType::HostCpu;
    d.isa = Isa::X86_64;
    d.cores = 8;
    d.freqGhz = 3.0;
    d.memoryBytes = 16ULL << 30;
    d.swFactor = calib::kDesktopSwFactor;
    d.computeFactor = calib::kDesktopComputeFactor;
    d.netFactor = 1.0;
    return d;
}

} // namespace molecule::hw
