#include "hw/gpu.hh"

#include "sim/logging.hh"

namespace molecule::hw {

GpuDevice::GpuDevice(sim::Simulation &sim, int id, int hostPuId,
                     int maxConcurrentKernels)
    : sim_(sim), id_(id), hostPuId_(hostPuId),
      kernelSlots_(sim, std::size_t(maxConcurrentKernels))
{
    MOLECULE_ASSERT(maxConcurrentKernels > 0,
                    "GPU needs at least one kernel slot");
}

sim::Task<>
GpuDevice::loadModule(const std::string &funcId)
{
    if (!contextCreated_) {
        // First function on the device pays MPS context creation.
        co_await sim_.delay(calib::kGpuContextCreateCost);
        contextCreated_ = true;
    }
    co_await sim_.delay(calib::kGpuModuleLoadCost);
    modules_[funcId] = true;
}

void
GpuDevice::unloadModule(const std::string &funcId)
{
    modules_.erase(funcId);
}

bool
GpuDevice::resident(const std::string &funcId) const
{
    return modules_.count(funcId) != 0;
}

sim::Task<>
GpuDevice::launch(const std::string &funcId, sim::SimTime kernelTime)
{
    if (!resident(funcId))
        sim::fatal("launching non-resident GPU function '%s'",
                   funcId.c_str());
    ++launchCount_;
    co_await kernelSlots_.acquire();
    sim::SemGuard g(kernelSlots_);
    co_await sim_.delay(calib::kGpuLaunchCost + kernelTime);
}

} // namespace molecule::hw
