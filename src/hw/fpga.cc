#include "hw/fpga.hh"

#include "sim/logging.hh"

namespace molecule::hw {

FpgaDevice::FpgaDevice(sim::Simulation &sim, int id, int hostPuId,
                       FpgaResources totals, int dramBanks)
    : sim_(sim), id_(id), hostPuId_(hostPuId), totals_(totals),
      banks_(std::size_t(dramBanks))
{
    MOLECULE_ASSERT(dramBanks > 0, "FPGA needs at least one DRAM bank");
}

sim::Task<>
FpgaDevice::erase(obs::SpanContext ctx)
{
    obs::Span span(ctx, "hw.erase", obs::Layer::Hw, hostPuId_);
    ++eraseCount_;
    imageEpoch_.fetchAdd(1);
    image_.reset();
    slotBusy_.clear();
    co_await sim_.delay(calib::kFpgaEraseCost);
}

sim::Task<core::Status>
FpgaDevice::program(FpgaImage image, ProgramMode mode, bool retainDram,
                    obs::SpanContext ctx)
{
    obs::Span span(ctx, "hw.program", obs::Layer::Hw, hostPuId_);
    span.setArg(std::int64_t(image.slots.size()));
    const auto need = image.totalResources();
    if (!need.fitsIn(totals_)) {
        sim::fatal("FPGA image %llu exceeds fabric resources "
                   "(luts %ld/%ld)",
                   static_cast<unsigned long long>(image.id), need.luts,
                   totals_.luts);
    }
    const auto cost = mode == ProgramMode::Cold
                          ? calib::kFpgaProgramColdCost
                          : calib::kFpgaProgramCachedCost;
    co_await sim_.delay(cost);

    if (faults_ != nullptr &&
        faults_->consumeFpgaReconfigFailure(hostPuId_)) {
        // Mid-flash failure: the time is spent, the slot ends up
        // erased. Retained DRAM banks survive (§4.3 retention is a
        // property of the banks, not the fabric).
        span.setDetail("reconfig-failed");
        image_.reset();
        slotBusy_.clear();
        imageEpoch_.fetchAdd(1);
        co_return core::Status(core::Errc::FpgaReconfigFailed,
                               "partial reconfiguration failed "
                               "mid-flash",
                               hostPuId_);
    }

    image_.emplace(std::move(image));
    slotBusy_.clear();
    for (std::size_t i = 0; i < image_->slots.size(); ++i)
        slotBusy_.push_back(std::make_unique<sim::Semaphore>(sim_, 1));
    imageEpoch_.fetchAdd(1);
    if (!retainDram) {
        bankEpoch_.fetchAdd(1);
        for (auto &b : banks_)
            b.data.clear();
    }
    ++programCount_;
    co_return core::Status();
}

const FpgaImage &
FpgaDevice::image() const
{
    MOLECULE_ASSERT(image_.has_value(), "no image programmed");
    return *image_;
}

bool
FpgaDevice::resident(const std::string &funcId) const
{
    imageEpoch_.read();
    return image_ && image_->contains(funcId);
}

sim::Task<>
FpgaDevice::invoke(const std::string &funcId, sim::SimTime kernelTime,
                   obs::SpanContext ctx)
{
    obs::Span span(ctx, "hw.kernel", obs::Layer::Hw, hostPuId_);
    span.setDetail(funcId.c_str());
    if (!resident(funcId))
        sim::fatal("invoking non-resident FPGA function '%s'",
                   funcId.c_str());
    std::size_t slot = 0;
    for (std::size_t i = 0; i < image_->slots.size(); ++i) {
        if (image_->slots[i].funcId == funcId) {
            slot = i;
            break;
        }
    }
    ++invokeCount_;
    auto &busy = *slotBusy_[slot];
    co_await busy.acquire();
    sim::SemGuard g(busy);
    co_await sim_.delay(calib::kFpgaInvokeCost + kernelTime);
}

sim::SimTime
FpgaDevice::dramAccessTime(std::uint64_t bytes) const
{
    // Sequential FPGA-attached DRAM at ~15 GB/s plus a fixed command
    // overhead; negligible next to DMA but kept honest so the Fig 13
    // "shm" path is not free.
    return sim::SimTime::fromMicroseconds(1.5) +
           sim::SimTime::fromSeconds(double(bytes) / 15e9);
}

sim::Task<>
FpgaDevice::bankWrite(int bank, std::string tag, std::uint64_t bytes,
                      obs::SpanContext ctx)
{
    obs::Span span(ctx, "hw.dram", obs::Layer::Hw, hostPuId_);
    span.setArg(std::int64_t(bytes));
    MOLECULE_ASSERT(bank >= 0 && bank < dramBankCount(),
                    "bank %d out of range", bank);
    co_await sim_.delay(dramAccessTime(bytes));
    bankEpoch_.fetchAdd(1);
    banks_[std::size_t(bank)].data[std::move(tag)] = bytes;
}

std::optional<std::uint64_t>
FpgaDevice::bankPeek(int bank, const std::string &tag) const
{
    MOLECULE_ASSERT(bank >= 0 && bank < dramBankCount(),
                    "bank %d out of range", bank);
    bankEpoch_.read();
    const auto &data = banks_[std::size_t(bank)].data;
    auto it = data.find(tag);
    if (it == data.end())
        return std::nullopt;
    return it->second;
}

sim::Task<>
FpgaDevice::bankRead(int bank, std::uint64_t bytes, obs::SpanContext ctx)
{
    obs::Span span(ctx, "hw.dram", obs::Layer::Hw, hostPuId_);
    span.setArg(std::int64_t(bytes));
    MOLECULE_ASSERT(bank >= 0 && bank < dramBankCount(),
                    "bank %d out of range", bank);
    bankEpoch_.read();
    co_await sim_.delay(dramAccessTime(bytes));
}

void
FpgaDevice::bankClear(int bank)
{
    MOLECULE_ASSERT(bank >= 0 && bank < dramBankCount(),
                    "bank %d out of range", bank);
    bankEpoch_.fetchAdd(1);
    banks_[std::size_t(bank)].data.clear();
}

} // namespace molecule::hw
