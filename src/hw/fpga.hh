/**
 * @file
 * FPGA device model.
 *
 * Models exactly the properties the vectorized-sandbox design depends
 * on (§3.5, §4.2, §4.3):
 *  - one bitstream (image) resident at a time; programming replaces it;
 *  - erase is separate from programming and normally skippable;
 *  - an image packs several kernel slots, each occupying LUT/REG/BRAM/
 *    DSP resources next to a static wrapper (shell);
 *  - slots execute concurrently (one in-flight invocation per slot);
 *  - attached DRAM is split into banks with *data retention*: bank
 *    contents survive reprogramming, enabling the zero-copy function
 *    chain of Fig 13.
 */

#ifndef MOLECULE_HW_FPGA_HH
#define MOLECULE_HW_FPGA_HH

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/status.hh"
#include "fault/state.hh"
#include "hw/calibration.hh"
#include "obs/trace.hh"
#include "sim/analysis.hh"
#include "sim/sync.hh"

namespace molecule::hw {

/** FPGA fabric resources (Table 4 accounting). */
struct FpgaResources
{
    long luts = 0;
    long regs = 0;
    long brams = 0;
    long dsps = 0;

    FpgaResources
    operator+(const FpgaResources &o) const
    {
        return {luts + o.luts, regs + o.regs, brams + o.brams,
                dsps + o.dsps};
    }

    FpgaResources &
    operator+=(const FpgaResources &o)
    {
        luts += o.luts;
        regs += o.regs;
        brams += o.brams;
        dsps += o.dsps;
        return *this;
    }

    /** True when this fits within @p budget component-wise. */
    bool
    fitsIn(const FpgaResources &budget) const
    {
        return luts <= budget.luts && regs <= budget.regs &&
               brams <= budget.brams && dsps <= budget.dsps;
    }

    /** AWS F1 UltraScale+ totals (Table 4). */
    static FpgaResources
    f1Totals()
    {
        return {calib::kF1TotalLuts, calib::kF1TotalRegs,
                calib::kF1TotalBrams, calib::kF1TotalDsps};
    }

    /**
     * Static wrapper (shell) cost providing isolation and the
     * vectorized-sandbox plumbing: ~5% of F1 LUTs plus fixed register,
     * BRAM and DSP overheads (§6.4, Table 4).
     */
    static FpgaResources
    wrapperOverhead()
    {
        return {long(calib::kF1TotalLuts * calib::kFpgaWrapperLutFraction),
                94600, 126, 67};
    }
};

/** One kernel packed into an image. */
struct KernelSlot
{
    std::string funcId;
    FpgaResources resources;
    /** DRAM bank statically assigned to this slot (-1: unassigned). */
    int dramBank = -1;
};

/**
 * A composed bitstream: wrapper + kernel slots.
 *
 * Images are immutable once composed; the vectorized-sandbox runtime
 * (runf) composes them from create(vector<...>) requests.
 */
struct FpgaImage
{
    std::uint64_t id = 0;
    std::vector<KernelSlot> slots;

    FpgaResources
    totalResources() const
    {
        FpgaResources total = FpgaResources::wrapperOverhead();
        for (const auto &s : slots)
            total += s.resources;
        return total;
    }

    bool
    contains(const std::string &funcId) const
    {
        for (const auto &s : slots)
            if (s.funcId == funcId)
                return true;
        return false;
    }
};

/** How the bitstream being programmed was obtained. */
enum class ProgramMode {
    /** Freshly composed: download + flash (Fig 10-c "Load-image"). */
    Cold,
    /** Bitstream cached host-side: flash only ("Warm-image"). */
    Cached,
};

/**
 * One FPGA card. See file header for the modelled behaviours.
 */
class FpgaDevice
{
  public:
    FpgaDevice(sim::Simulation &sim, int id, int hostPuId,
               FpgaResources totals, int dramBanks);

    int id() const { return id_; }

    /** PU whose (virtual) shim and runf instance manage this card. */
    int hostPuId() const { return hostPuId_; }

    const FpgaResources &totals() const { return totals_; }

    int dramBankCount() const { return int(banks_.size()); }

    /** @name Programming */
    ///@{

    /** Full-device erase (the Baseline path of Fig 10-c). */
    sim::Task<> erase(obs::SpanContext ctx = {});

    /**
     * Program @p image, replacing any resident image. Fails fatally if
     * the image does not fit the fabric (a composition bug, not a
     * runtime fault). When @p retainDram is true (data-retention
     * feature, §4.3) bank contents survive; otherwise banks are
     * cleared.
     *
     * @return ok, or FpgaReconfigFailed when an injected reconfig
     *         failure fires mid-flash: the flash time is spent, the
     *         slot is left erased (no resident image), and retained
     *         DRAM banks survive — recovery may retry program().
     */
    [[nodiscard]] sim::Task<core::Status>
    program(FpgaImage image, ProgramMode mode, bool retainDram,
            obs::SpanContext ctx = {});

    bool hasImage() const { return image_.has_value(); }

    const FpgaImage &image() const;

    /** True when @p funcId has a slot in the resident image. */
    bool resident(const std::string &funcId) const;
    ///@}

    /** @name Execution */
    ///@{

    /**
     * Run @p funcId's kernel for @p kernelTime. Queues if the slot is
     * already executing (one invocation in flight per slot); different
     * slots run concurrently. Fatal if the function is not resident.
     */
    sim::Task<> invoke(const std::string &funcId, sim::SimTime kernelTime,
                       obs::SpanContext ctx = {});
    ///@}

    /** @name DRAM banks with data retention */
    ///@{

    /** Write @p bytes tagged @p tag into @p bank (charges DRAM time). */
    sim::Task<> bankWrite(int bank, std::string tag, std::uint64_t bytes,
                          obs::SpanContext ctx = {});

    /**
     * Read the data tagged @p tag from @p bank.
     * @return the stored byte count, or nullopt when absent.
     */
    std::optional<std::uint64_t> bankPeek(int bank,
                                          const std::string &tag) const;

    /** Read @p bytes from @p bank (charges DRAM time). */
    sim::Task<> bankRead(int bank, std::uint64_t bytes,
                         obs::SpanContext ctx = {});

    /** Clear one bank (wrapper clears sensitive data, §4.3). */
    void bankClear(int bank);
    ///@}

    /** Arm injected reconfig failures (null: never fail). */
    void attachFaults(fault::FaultState *faults) { faults_ = faults; }

    /** @name Stats */
    ///@{
    std::int64_t programCount() const { return programCount_; }

    std::int64_t eraseCount() const { return eraseCount_; }

    std::int64_t invokeCount() const { return invokeCount_; }
    ///@}

  private:
    struct Bank
    {
        std::map<std::string, std::uint64_t> data;
    };

    sim::SimTime dramAccessTime(std::uint64_t bytes) const;

    sim::Simulation &sim_;
    int id_;
    int hostPuId_;
    fault::FaultState *faults_ = nullptr;
    FpgaResources totals_;
    std::optional<FpgaImage> image_;
    /** One in-flight invocation per slot (index-aligned with image). */
    std::vector<std::unique_ptr<sim::Semaphore>> slotBusy_;
    std::vector<Bank> banks_;
    std::int64_t programCount_ = 0;
    std::int64_t eraseCount_ = 0;
    std::int64_t invokeCount_ = 0;
    /** Conflict-detector cells: which image is resident, and whether
     * bank contents changed. A same-tick program()/invoke() (or
     * bankWrite()/bankPeek()) pair would resolve only by the event
     * tie-break — exactly what the analysis layer reports. */
    sim::analysis::Tracked<std::uint64_t> imageEpoch_{0, "fpga.image"};
    sim::analysis::Tracked<std::uint64_t> bankEpoch_{0, "fpga.dram"};
};

} // namespace molecule::hw

#endif // MOLECULE_HW_FPGA_HH
