/**
 * @file
 * The heterogeneous computer: PUs + accelerators + interconnect.
 *
 * A Computer owns every hardware object of one worker machine and wires
 * the topology (Table 1 "Communication methods"): shared memory within
 * a PU, RDMA between CPU and DPU, DMA between CPU and FPGA/GPU hosts,
 * and CPU-intercepted two-hop routes between DPUs (and DPU<->FPGA).
 *
 * Builders for the paper's testbeds are provided (§6 "two settings"
 * plus the Fig 11 desktop).
 */

#ifndef MOLECULE_HW_COMPUTER_HH
#define MOLECULE_HW_COMPUTER_HH

#include <memory>
#include <vector>

#include "hw/fpga.hh"
#include "hw/gpu.hh"
#include "hw/interconnect.hh"
#include "hw/pu.hh"

namespace molecule::hw {

/** DPU generation selector for the CPU-DPU testbed builder. */
enum class DpuGeneration { Bf1, Bf2 };

/**
 * One worker machine. PUs are identified by dense ids assigned in
 * creation order; id 0 is conventionally the host CPU.
 */
class Computer
{
  public:
    explicit Computer(sim::Simulation &sim)
        : sim_(sim), topology_(sim)
    {}

    Computer(const Computer &) = delete;
    Computer &operator=(const Computer &) = delete;

    /** Add a PU; a same-PU shmem route is registered automatically. */
    ProcessingUnit *addPu(PuDescriptor desc);

    /** Attach an FPGA card managed by PU @p hostPuId. */
    FpgaDevice *addFpga(int hostPuId, FpgaResources totals,
                        int dramBanks = 4);

    /** Attach a GPU card managed by PU @p hostPuId. */
    GpuDevice *addGpu(int hostPuId, int maxConcurrentKernels = 16);

    /**
     * Wire the standard routes: RDMA host<->DPU, and CPU-intercepted
     * DPU<->DPU two-hop routes. Call after all PUs are added.
     */
    void wireStandardRoutes();

    sim::Simulation &simulation() { return sim_; }

    Topology &topology() { return topology_; }
    const Topology &topology() const { return topology_; }

    int puCount() const { return int(pus_.size()); }

    ProcessingUnit &pu(int id);
    const ProcessingUnit &pu(int id) const;

    /** The host CPU (fatal when none exists). */
    ProcessingUnit &hostCpu();

    /** All PUs of a given type. */
    std::vector<ProcessingUnit *> pusOfType(PuType type);

    const std::vector<std::unique_ptr<FpgaDevice>> &fpgas() const
    {
        return fpgas_;
    }

    FpgaDevice &fpga(int index) { return *fpgas_.at(std::size_t(index)); }

    const std::vector<std::unique_ptr<GpuDevice>> &gpus() const
    {
        return gpus_;
    }

    GpuDevice &gpuDev(int index) { return *gpus_.at(std::size_t(index)); }

  private:
    sim::Simulation &sim_;
    Topology topology_;
    std::vector<std::unique_ptr<ProcessingUnit>> pus_;
    std::vector<std::unique_ptr<FpgaDevice>> fpgas_;
    std::vector<std::unique_ptr<GpuDevice>> gpus_;
};

/** @name Paper testbed builders */
///@{

/**
 * Setting 1 (§6): Xeon 8160 host + @p dpuCount BlueField DPUs over
 * PCIe RDMA.
 */
std::unique_ptr<Computer> buildCpuDpuServer(sim::Simulation &sim,
                                            int dpuCount,
                                            DpuGeneration gen);

/**
 * Setting 2 (§6): AWS F1.x16large with @p fpgaCount UltraScale+ FPGAs
 * reached over DMA from the host CPU.
 */
std::unique_ptr<Computer> buildF1Server(sim::Simulation &sim,
                                        int fpgaCount);

/** Fig 11 desktop (i7-9700), single PU. */
std::unique_ptr<Computer> buildDesktop(sim::Simulation &sim);

/**
 * Combined machine used by the examples: host CPU, two BF-2 DPUs, one
 * FPGA and one GPU.
 */
std::unique_ptr<Computer> buildFullHetero(sim::Simulation &sim);
///@}

} // namespace molecule::hw

#endif // MOLECULE_HW_COMPUTER_HH
