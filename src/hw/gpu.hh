/**
 * @file
 * GPU device model for the generality path (§6.8, Table 5).
 *
 * A GpuDevice hosts CUDA-style contexts managed by an MPS-like service:
 * multiple function modules can be resident concurrently (GPUs are
 * "nature to support vectorized abstraction"), so unlike the FPGA there
 * is no exclusive image — only per-context module loading and kernel
 * launches.
 */

#ifndef MOLECULE_HW_GPU_HH
#define MOLECULE_HW_GPU_HH

#include <map>
#include <memory>
#include <string>

#include "hw/calibration.hh"
#include "sim/sync.hh"

namespace molecule::hw {

/** One GPU card with an MPS-style shared context service. */
class GpuDevice
{
  public:
    GpuDevice(sim::Simulation &sim, int id, int hostPuId,
              int maxConcurrentKernels);

    int id() const { return id_; }

    int hostPuId() const { return hostPuId_; }

    /** Create a context and load @p funcId's module (cold path). */
    sim::Task<> loadModule(const std::string &funcId);

    /** Drop a resident module (sandbox delete). */
    void unloadModule(const std::string &funcId);

    bool resident(const std::string &funcId) const;

    std::size_t residentCount() const { return modules_.size(); }

    /**
     * Launch @p funcId's kernel for @p kernelTime; queues when the
     * device is saturated. Fatal if not resident.
     */
    sim::Task<> launch(const std::string &funcId, sim::SimTime kernelTime);

    std::int64_t launchCount() const { return launchCount_; }

  private:
    sim::Simulation &sim_;
    int id_;
    int hostPuId_;
    sim::Semaphore kernelSlots_;
    std::map<std::string, bool> modules_;
    bool contextCreated_ = false;
    std::int64_t launchCount_ = 0;
};

} // namespace molecule::hw

#endif // MOLECULE_HW_GPU_HH
