/**
 * @file
 * Synthetic invocation-trace generator.
 *
 * Serverless production traces (Shahrad et al., "Serverless in the
 * Wild") show Poisson-ish arrivals with heavily skewed function
 * popularity. The generator produces such traces — Poisson arrivals,
 * Zipf-distributed function choice — for the keep-alive ablation
 * bench and load-oriented tests. Deterministic given the RNG seed.
 */

#ifndef MOLECULE_WORKLOADS_LOADGEN_HH
#define MOLECULE_WORKLOADS_LOADGEN_HH

#include <string>
#include <vector>

#include "sim/random.hh"
#include "sim/time.hh"

namespace molecule::workloads {

/** One invocation request in a trace. */
struct TraceEvent
{
    sim::SimTime at;
    std::string fn;
};

/**
 * Poisson/Zipf trace generator over a fixed function population.
 */
class LoadGenerator
{
  public:
    struct Options
    {
        /** Mean arrival rate (Poisson). */
        double requestsPerSecond = 50.0;
        /** Zipf exponent for function popularity (0 = uniform). */
        double zipfExponent = 1.1;
        /** Trace length. */
        sim::SimTime duration = sim::SimTime::seconds(60);
    };

    LoadGenerator(sim::Rng &rng, std::vector<std::string> functions,
                  Options options);

    /** Generate a sorted trace. */
    std::vector<TraceEvent> generate();

    /** Popularity weight of function index @p i (diagnostics). */
    double weight(std::size_t i) const;

  private:
    /** Sample a function index from the Zipf CDF. */
    std::size_t sampleFunction();

    sim::Rng &rng_;
    std::vector<std::string> functions_;
    Options options_;
    std::vector<double> cdf_;
};

} // namespace molecule::workloads

#endif // MOLECULE_WORKLOADS_LOADGEN_HH
