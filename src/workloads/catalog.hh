/**
 * @file
 * The paper's benchmark workloads, calibrated.
 *
 * FunctionBench (Kim & Lee) and ServerlessBench (Yu et al.) CPU/DPU
 * functions plus the three FPGA applications ported from AWS/Xilinx
 * demos (GZip, Anti-MoneyL, matrix ops). Each CPU workload carries a
 * warm execution cost (host-reference), a cold-execution factor
 * (I/O-heavy functions run slower on their first invocation) and
 * per-function import/load costs — all solved from the Fig 14-a/b
 * labels (see the derivation table in EXPERIMENTS.md).
 *
 * The catalog owns the FunctionImage objects so pointers stay stable
 * for the lifetime of an experiment.
 */

#ifndef MOLECULE_WORKLOADS_CATALOG_HH
#define MOLECULE_WORKLOADS_CATALOG_HH

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "sandbox/function_image.hh"

namespace molecule::workloads {

/** A CPU/DPU function: deployable image + execution model. */
struct CpuWorkload
{
    sandbox::FunctionImage image;
    /** Warm-instance execution cost (host reference). */
    sim::SimTime execCost;
    /** First-execution multiplier (cold page cache / JIT warmup). */
    double coldExecFactor = 1.0;
    /** Typical message size when chained (bytes). */
    std::uint64_t msgBytes = 1024;
};

/**
 * An FPGA-accelerated application: kernel-time model over a size
 * parameter (bytes or entries) plus its CPU comparator.
 */
struct FpgaWorkload
{
    sandbox::FunctionImage image;

    /** Kernel time = fixed + perUnit * units. */
    sim::SimTime kernelFixed;
    double kernelNsPerUnit = 0.0;

    /** CPU comparator = fixed + perUnit * units (host reference). */
    sim::SimTime cpuFixed;
    double cpuNsPerUnit = 0.0;

    /** DMA input/output bytes per unit (0: data staged in DRAM). */
    double dmaInBytesPerUnit = 0.0;
    double dmaOutBytesPerUnit = 0.0;

    sim::SimTime
    kernelTime(std::uint64_t units) const
    {
        return kernelFixed +
               sim::SimTime(std::int64_t(kernelNsPerUnit *
                                         double(units)));
    }

    sim::SimTime
    cpuTime(std::uint64_t units) const
    {
        return cpuFixed +
               sim::SimTime(std::int64_t(cpuNsPerUnit * double(units)));
    }

    std::uint64_t
    dmaInBytes(std::uint64_t units) const
    {
        return std::uint64_t(dmaInBytesPerUnit * double(units));
    }

    std::uint64_t
    dmaOutBytes(std::uint64_t units) const
    {
        return std::uint64_t(dmaOutBytesPerUnit * double(units));
    }
};

/**
 * All workloads of the evaluation, keyed by name.
 */
class Catalog
{
  public:
    Catalog();

    Catalog(const Catalog &) = delete;
    Catalog &operator=(const Catalog &) = delete;

    const CpuWorkload &cpu(const std::string &name) const;

    const FpgaWorkload &fpga(const std::string &name) const;

    bool hasCpu(const std::string &name) const;

    /** FunctionBench functions in the Fig 14 presentation order. */
    static std::vector<std::string> functionBenchNames();

    /** The Alexa skill chain (Node.js, 5 functions, Fig 12/14-e). */
    static std::vector<std::string> alexaChain();

    /** The MapReduce chain (Python, 3 functions, Fig 14-e). */
    static std::vector<std::string> mapReduceChain();

    /** Matrix kernels of Fig 2-b / Table 4 (mscale, madd, vmult). */
    static std::vector<std::string> matrixKernels();

  private:
    void addCpu(CpuWorkload w);

    void addFpga(FpgaWorkload w);

    std::map<std::string, std::unique_ptr<CpuWorkload>> cpu_;
    std::map<std::string, std::unique_ptr<FpgaWorkload>> fpga_;
};

} // namespace molecule::workloads

#endif // MOLECULE_WORKLOADS_CATALOG_HH
