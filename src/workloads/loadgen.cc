#include "workloads/loadgen.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"

namespace molecule::workloads {

LoadGenerator::LoadGenerator(sim::Rng &rng,
                             std::vector<std::string> functions,
                             Options options)
    : rng_(rng), functions_(std::move(functions)), options_(options)
{
    MOLECULE_ASSERT(!functions_.empty(), "load generator needs functions");
    MOLECULE_ASSERT(options_.requestsPerSecond > 0,
                    "arrival rate must be positive");
    // Zipf CDF over ranks 1..N (rank order = registration order).
    double total = 0;
    cdf_.reserve(functions_.size());
    for (std::size_t i = 0; i < functions_.size(); ++i) {
        total += weight(i);
        cdf_.push_back(total);
    }
    for (auto &v : cdf_)
        v /= total;
}

double
LoadGenerator::weight(std::size_t i) const
{
    return 1.0 / std::pow(double(i + 1), options_.zipfExponent);
}

std::size_t
LoadGenerator::sampleFunction()
{
    const double u = rng_.uniform();
    auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    if (it == cdf_.end())
        --it;
    return std::size_t(it - cdf_.begin());
}

std::vector<TraceEvent>
LoadGenerator::generate()
{
    std::vector<TraceEvent> trace;
    const double meanGapSeconds = 1.0 / options_.requestsPerSecond;
    sim::SimTime at(0);
    while (true) {
        at += sim::SimTime::fromSeconds(
            rng_.exponential(meanGapSeconds));
        if (at > options_.duration)
            break;
        trace.push_back(TraceEvent{at, functions_[sampleFunction()]});
    }
    return trace;
}

} // namespace molecule::workloads
