#include "workloads/catalog.hh"

#include "sim/logging.hh"

namespace molecule::workloads {

using sandbox::FunctionImage;
using sandbox::Language;
using sim::SimTime;

namespace {

constexpr std::uint64_t kMiB = 1ULL << 20;

/** Build a CPU/DPU workload entry. */
CpuWorkload
makeCpu(const std::string &name, Language lang, double execMs,
        double importMs, double coldExecFactor, double sharedMb,
        double privateMb, double extraMb, std::uint64_t msgBytes)
{
    CpuWorkload w;
    w.image.funcId = name;
    w.image.language = lang;
    w.image.importCost = SimTime::fromMilliseconds(importMs);
    // Loading code + lazy deps into a cfork child is far cheaper than
    // a full import: a fixed floor plus ~8% of the import cost.
    w.image.funcLoadCost =
        SimTime::fromMilliseconds(2.0 + 0.08 * importMs);
    w.image.mem.runtimeShared = std::uint64_t(sharedMb * kMiB);
    w.image.mem.privateBytes = std::uint64_t(privateMb * kMiB);
    w.image.mem.templateExtra = std::uint64_t(extraMb * kMiB);
    w.execCost = SimTime::fromMilliseconds(execMs);
    w.coldExecFactor = coldExecFactor;
    w.msgBytes = msgBytes;
    return w;
}

} // namespace

Catalog::Catalog()
{
    // ------------------------------------------------------------------
    // FunctionBench (Fig 14-a..d). Warm execution costs are the Fig 14-b
    // labels minus dispatch; import costs are solved from the Fig 14-a
    // cold labels (cold = spawn + container + interpreter + import +
    // settle + coldExec). See EXPERIMENTS.md for the derivation.
    // ------------------------------------------------------------------
    addCpu(makeCpu("image-resize", Language::Python, 13.5, 60.0, 1.0,
                   126, 61, 24, 64 << 10));
    addCpu(makeCpu("chameleon", Language::Python, 10.3, 127.4, 1.0, 60,
                   35, 10, 8 << 10));
    addCpu(makeCpu("linpack", Language::Python, 95.3, 241.6, 1.0, 90,
                   45, 12, 1 << 10));
    addCpu(makeCpu("matmul", Language::Python, 0.8, 173.5, 1.0, 90, 40,
                   12, 1 << 10));
    addCpu(makeCpu("pyaes", Language::Python, 18.9, 21.0, 1.0, 40, 25,
                   8, 4 << 10));
    addCpu(makeCpu("video-processing", Language::Python, 33810.0, 500.0,
                   1.113, 150, 80, 20, 1 << 20));
    addCpu(makeCpu("dd", Language::Python, 42.5, 27.8, 1.0, 30, 20, 6,
                   1 << 10));
    addCpu(makeCpu("gzip-compression", Language::Python, 182.3, 28.7,
                   1.0, 30, 20, 6, 256 << 10));

    // Fig 9 startup probe.
    addCpu(makeCpu("helloworld", Language::Python, 0.5, 0.0, 1.0, 20,
                   10, 5, 256));

    // ------------------------------------------------------------------
    // ServerlessBench: Alexa skill chain (Node.js, Fig 12 / Fig 14-e).
    // front -> interact -> smarthome -> {door, light}; per-function
    // execution solved from the Fig 14-e label (38.6 ms baseline).
    // ------------------------------------------------------------------
    for (const auto &fn : alexaChain()) {
        addCpu(makeCpu(fn, Language::Node, 2.92, 25.0, 1.0, 60, 30, 10,
                       512));
    }

    // MapReduce chain (Python, Fig 14-e label 20.0 ms baseline).
    for (const auto &fn : mapReduceChain()) {
        addCpu(makeCpu(fn, Language::Python, 1.10, 10.0, 1.0, 40, 20,
                       6, 16 << 10));
    }

    // ------------------------------------------------------------------
    // FPGA applications (Fig 2-b, Fig 13, Fig 14-f/g/h, Table 4).
    // Kernel-slot resources are solved from Table 4's 12-function
    // wrapper (4x madd + 4x mmult + 4x mscale).
    // ------------------------------------------------------------------
    {
        // GZip (unit: input bytes). CPU at ~25 MB/s; the kernel
        // streams at ~300 MB/s after a fixed pipeline setup, plus DMA
        // of the input and the ~3x-compressed output.
        FpgaWorkload w;
        w.image.funcId = "fpga-gzip";
        w.image.language = Language::FpgaOpenCl;
        w.image.fpgaResources = {45000, 61000, 120, 8};
        w.kernelFixed = SimTime::fromMilliseconds(75.0);
        w.kernelNsPerUnit = 3.33;
        w.cpuFixed = SimTime(0);
        w.cpuNsPerUnit = 40.0;
        w.dmaInBytesPerUnit = 1.0;
        w.dmaOutBytesPerUnit = 1.0 / 3.0;
        addFpga(std::move(w));
    }
    {
        // Anti-money-laundering checking (unit: transaction entries).
        // Transaction files are staged into the FPGA DRAM bank ahead
        // of the invocation (data retention), so no per-entry DMA.
        FpgaWorkload w;
        w.image.funcId = "fpga-aml";
        w.image.language = Language::FpgaOpenCl;
        w.image.fpgaResources = {38000, 52000, 96, 24};
        w.kernelFixed = SimTime::fromMilliseconds(1.05);
        w.kernelNsPerUnit = 1.16;
        w.cpuFixed = SimTime::fromMilliseconds(5.0);
        w.cpuNsPerUnit = 45.0;
        addFpga(std::move(w));
    }
    {
        // Matrix scaling (fixed-size 1Kx1K operands staged in DRAM).
        FpgaWorkload w;
        w.image.funcId = "fpga-mscale";
        w.image.language = Language::FpgaOpenCl;
        w.image.fpgaResources = {2500, 7539, 30, 56};
        w.kernelFixed = SimTime::fromMicroseconds(48.0);
        w.cpuFixed = SimTime::fromMicroseconds(192.0);
        addFpga(std::move(w));
    }
    {
        // Matrix addition.
        FpgaWorkload w;
        w.image.funcId = "fpga-madd";
        w.image.language = Language::FpgaOpenCl;
        w.image.fpgaResources = {3600, 8530, 30, 60};
        w.kernelFixed = SimTime::fromMicroseconds(94.0);
        w.cpuFixed = SimTime::fromMicroseconds(324.0);
        addFpga(std::move(w));
    }
    {
        // Vector/matrix multiplication (mmult in Table 4).
        FpgaWorkload w;
        w.image.funcId = "fpga-vmult";
        w.image.language = Language::FpgaOpenCl;
        w.image.fpgaResources = {9007, 9530, 30, 64};
        w.kernelFixed = SimTime::fromMicroseconds(1218.0);
        w.cpuFixed = SimTime::fromMicroseconds(3551.0);
        addFpga(std::move(w));
    }
    {
        // Fig 13 vector-compute chain stage (4 KB messages).
        FpgaWorkload w;
        w.image.funcId = "fpga-vecstage";
        w.image.language = Language::FpgaOpenCl;
        w.image.fpgaResources = {3000, 8000, 30, 40};
        w.kernelFixed = SimTime::fromMicroseconds(76.0);
        w.dmaInBytesPerUnit = 1.0;
        w.dmaOutBytesPerUnit = 1.0;
        addFpga(std::move(w));
    }
}

void
Catalog::addCpu(CpuWorkload w)
{
    auto name = w.image.funcId;
    cpu_[name] = std::make_unique<CpuWorkload>(std::move(w));
}

void
Catalog::addFpga(FpgaWorkload w)
{
    auto name = w.image.funcId;
    fpga_[name] = std::make_unique<FpgaWorkload>(std::move(w));
}

const CpuWorkload &
Catalog::cpu(const std::string &name) const
{
    auto it = cpu_.find(name);
    if (it == cpu_.end())
        sim::fatal("unknown CPU workload '%s'", name.c_str());
    return *it->second;
}

const FpgaWorkload &
Catalog::fpga(const std::string &name) const
{
    auto it = fpga_.find(name);
    if (it == fpga_.end())
        sim::fatal("unknown FPGA workload '%s'", name.c_str());
    return *it->second;
}

bool
Catalog::hasCpu(const std::string &name) const
{
    return cpu_.count(name) != 0;
}

std::vector<std::string>
Catalog::functionBenchNames()
{
    return {"image-resize", "chameleon",        "linpack",
            "matmul",       "pyaes",            "video-processing",
            "dd",           "gzip-compression"};
}

std::vector<std::string>
Catalog::alexaChain()
{
    return {"alexa-front", "alexa-interact", "alexa-smarthome",
            "alexa-door", "alexa-light"};
}

std::vector<std::string>
Catalog::mapReduceChain()
{
    return {"mr-splitter", "mr-mapper", "mr-reducer"};
}

std::vector<std::string>
Catalog::matrixKernels()
{
    return {"fpga-mscale", "fpga-madd", "fpga-vmult"};
}

} // namespace molecule::workloads
