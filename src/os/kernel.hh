/**
 * @file
 * The per-PU local operating system.
 *
 * Heterogeneous computers are multi-OS systems (§2.1.1): every
 * general-purpose PU (host CPU, each DPU) runs its own OS instance.
 * LocalOs provides what the upper layers need from Linux: processes
 * with COW fork, named FIFOs, containers/cgroups, and the primitive
 * syscall cost model, all scaled by the PU's performance factors.
 */

#ifndef MOLECULE_OS_KERNEL_HH
#define MOLECULE_OS_KERNEL_HH

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "hw/pu.hh"
#include "obs/trace.hh"
#include "os/container.hh"
#include "os/fifo.hh"
#include "os/process.hh"
#include "sim/analysis.hh"

namespace molecule::os {

/**
 * One OS instance on one PU.
 */
class LocalOs
{
  public:
    explicit LocalOs(hw::ProcessingUnit &pu);

    LocalOs(const LocalOs &) = delete;
    LocalOs &operator=(const LocalOs &) = delete;

    hw::ProcessingUnit &pu() { return pu_; }

    sim::Simulation &simulation() { return pu_.simulation(); }

    ContainerManager &containers() { return containers_; }

    /** @name Cost helpers (host-reference costs scaled to this PU). */
    ///@{

    /** Charge one syscall worth of time. */
    sim::Task<> syscall();

    /** Charge an arbitrary software-path cost. */
    sim::Task<> swDelay(sim::SimTime hostCost);

    sim::SimTime
    scaledSw(sim::SimTime hostCost) const
    {
        return pu_.swCost(hostCost);
    }
    ///@}

    /** @name Processes */
    ///@{

    /**
     * Spawn a brand-new process (fork+exec path).
     * @p privateBytes is mapped as a fresh private region.
     * @return nullptr when memory admission fails.
     */
    sim::Task<Process *> spawnProcess(const std::string &name,
                                      std::uint64_t privateBytes,
                                      obs::SpanContext ctx = {});

    /**
     * COW-fork @p parent. The child shares all parent regions; extra
     * private memory can be mapped by the caller afterwards.
     * @return nullptr when memory admission fails.
     */
    sim::Task<Process *> fork(Process &parent,
                              const std::string &childName,
                              obs::SpanContext ctx = {});

    /** Terminate and reap a process, releasing its memory. */
    void exitProcess(Process &proc);

    Process *findProcess(Pid pid);

    std::size_t processCount() const { return procs_.size(); }

    /** Build an address space whose physical charge hits this PU. */
    AddressSpace makeAddressSpace();

    /** Physical bytes resident on this PU (admission accounting). */
    std::uint64_t physicalUsed() const { return pu_.memoryUsed(); }
    ///@}

    /** @name Named FIFOs */
    ///@{

    /** Create a FIFO; fatal if the name exists. */
    LocalFifo *createFifo(const std::string &name);

    /** Look up a FIFO (nullptr when absent). */
    LocalFifo *findFifo(const std::string &name);

    void removeFifo(const std::string &name);
    ///@}

    /**
     * Injected PU crash: the OS loses all volatile state. Every
     * process is reaped (releasing its memory back to the PU) and all
     * named FIFOs disappear. Pid allocation continues monotonically —
     * a rebooted OS must not reuse pids that peers may still hold in
     * XpuPid handles.
     */
    void crashReset();

  private:
    hw::ProcessingUnit &pu_;
    ContainerManager containers_;
    std::map<Pid, std::unique_ptr<Process>> procs_;
    std::map<std::string, std::unique_ptr<LocalFifo>> fifos_;
    /** FIFOs retired by crashReset(); kept alive (not reachable by
     * name) because poisoned readers still resume against them. */
    std::vector<std::unique_ptr<LocalFifo>> deadFifos_;
    /** Pid allocation order is visible in results (tracked: two
     * same-tick spawns would race on it via the seq tie-break). */
    sim::analysis::Tracked<Pid> nextPid_{100, "os.nextPid"};
};

} // namespace molecule::os

#endif // MOLECULE_OS_KERNEL_HH
