/**
 * @file
 * Process objects managed by a LocalOs.
 */

#ifndef MOLECULE_OS_PROCESS_HH
#define MOLECULE_OS_PROCESS_HH

#include <cstdint>
#include <string>

#include "os/memory.hh"

namespace molecule::os {

class LocalOs;

/** Local process identifier (unique within one LocalOs). */
using Pid = std::int32_t;

enum class ProcState { Running, Zombie };

/**
 * A process: pid, name, address space and a thread count (the forkable
 * language runtime merges threads before cfork, §4.2).
 */
class Process
{
  public:
    Process(LocalOs &os, Pid pid, std::string name, AddressSpace space)
        : os_(os), pid_(pid), name_(std::move(name)),
          space_(std::move(space))
    {}

    Process(const Process &) = delete;
    Process &operator=(const Process &) = delete;

    Pid pid() const { return pid_; }

    const std::string &name() const { return name_; }

    LocalOs &os() { return os_; }

    AddressSpace &addressSpace() { return space_; }
    const AddressSpace &addressSpace() const { return space_; }

    ProcState state() const { return state_; }

    bool alive() const { return state_ == ProcState::Running; }

    int threads() const { return threads_; }

    void setThreads(int n) { threads_ = n; }

  private:
    friend class LocalOs;

    LocalOs &os_;
    Pid pid_;
    std::string name_;
    AddressSpace space_;
    ProcState state_ = ProcState::Running;
    int threads_ = 1;
};

} // namespace molecule::os

#endif // MOLECULE_OS_PROCESS_HH
