#include "os/container.hh"

#include "hw/calibration.hh"
#include "os/kernel.hh"
#include "sim/logging.hh"

namespace molecule::os {

namespace calib = hw::calib;

ContainerManager::ContainerManager(LocalOs &os)
    : os_(os), cpusetLock_(os.simulation(), 1)
{}

sim::Task<Container *>
ContainerManager::create(const std::string &id)
{
    std::string owned_id = id;
    co_await os_.swDelay(calib::kContainerStartCost);
    auto c = std::make_unique<Container>(std::move(owned_id), nextSeq_++);
    c->state_ = ContainerState::Running;
    Container *raw = c.get();
    containers_.push_back(std::move(c));
    co_return raw;
}

sim::Task<>
ContainerManager::cpusetAttach()
{
    // The cpuset update runs under the kernel's global lock; the lock
    // *hold* time is what differs between the stock semaphore path and
    // the paper's mutex patch (Fig 11-a "Cpuset opt"), and holding it
    // long is also what makes concurrent startups convoy.
    co_await cpusetLock_.acquire();
    sim::SemGuard g(cpusetLock_);
    const auto hold = cpusetMode_ == CpusetMode::StockSemaphore
                          ? calib::kCpusetAttachSemaphore
                          : calib::kCpusetAttachMutex;
    co_await os_.swDelay(hold);
}

sim::Task<>
ContainerManager::attach(Container &container, Process &proc,
                         obs::SpanContext ctx)
{
    obs::Span span(ctx, "os.attach", obs::Layer::Os, os_.pu().id());
    MOLECULE_ASSERT(container.state_ == ContainerState::Running,
                    "attach to non-running container '%s'",
                    container.id().c_str());
    co_await os_.swDelay(calib::kNamespaceReconfigCost);
    co_await cpusetAttach();
    container.procs_.push_back(&proc);
}

sim::Task<>
ContainerManager::attachCgroupOnly(Container &container, Process &proc)
{
    co_await cpusetAttach();
    container.procs_.push_back(&proc);
}

sim::Task<>
ContainerManager::destroy(Container &container)
{
    co_await os_.swDelay(calib::kContainerDeleteCost);
    container.state_ = ContainerState::Stopped;
    container.procs_.clear();
    for (auto it = containers_.begin(); it != containers_.end(); ++it) {
        if (it->get() == &container) {
            containers_.erase(it);
            break;
        }
    }
}

Container *
ContainerManager::find(const std::string &id)
{
    for (auto &c : containers_)
        if (c->id() == id)
            return c.get();
    return nullptr;
}

} // namespace molecule::os
