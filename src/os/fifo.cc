#include "os/fifo.hh"

#include "hw/calibration.hh"
#include "os/kernel.hh"

namespace molecule::os {

namespace calib = hw::calib;

LocalFifo::LocalFifo(LocalOs &os, std::string name)
    : os_(os), name_(std::move(name)), queue_(os.simulation())
{}

sim::Task<>
LocalFifo::write(const FifoMessage &msg)
{
    // Copy before the first suspension so the reference need not
    // outlive the caller's co_await expression.
    FifoMessage owned = msg;
    // write(2): syscall entry + per-byte copy into the pipe buffer.
    const auto copy = sim::SimTime::nanoseconds(std::int64_t(
        double(owned.bytes) * calib::kFifoCopyNsPerByte));
    co_await os_.swDelay(calib::kSyscallCost + copy);
    co_await queue_.put(std::move(owned));
}

sim::Task<FifoMessage>
LocalFifo::read()
{
    FifoMessage msg = co_await queue_.get();
    // read(2) syscall plus the scheduler wakeup that unblocked us.
    co_await os_.swDelay(calib::kSyscallCost + calib::kSchedWakeupCost);
    co_return msg;
}

} // namespace molecule::os
