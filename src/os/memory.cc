#include "os/memory.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace molecule::os {

bool
AddressSpace::chargePhysical(std::int64_t delta)
{
    if (!hook_)
        return true;
    return hook_(delta);
}

MemRegionPtr
AddressSpace::mapPrivate(const std::string &label, std::uint64_t bytes)
{
    if (!chargePhysical(std::int64_t(bytes)))
        return nullptr;
    auto region = std::make_shared<MemRegion>(label, bytes);
    region->sharers_ = 1;
    mappings_.push_back(Mapping{region, 0});
    return region;
}

void
AddressSpace::mapShared(const MemRegionPtr &region)
{
    MOLECULE_ASSERT(region != nullptr, "mapping a null region");
    ++region->sharers_;
    mappings_.push_back(Mapping{region, 0});
}

void
AddressSpace::unmap(const MemRegionPtr &region)
{
    auto it = std::find_if(mappings_.begin(), mappings_.end(),
                           [&](const Mapping &m) {
                               return m.region == region;
                           });
    MOLECULE_ASSERT(it != mappings_.end(), "unmapping unmapped region");
    if (it->copied > 0)
        chargePhysical(-std::int64_t(it->copied));
    --region->sharers_;
    if (region->sharers_ == 0)
        chargePhysical(-std::int64_t(region->bytes()));
    mappings_.erase(it);
}

std::int64_t
AddressSpace::touchCow(const MemRegionPtr &region, std::uint64_t bytes)
{
    auto it = std::find_if(mappings_.begin(), mappings_.end(),
                           [&](const Mapping &m) {
                               return m.region == region;
                           });
    MOLECULE_ASSERT(it != mappings_.end(), "COW touch on unmapped region");
    const std::uint64_t room = region->bytes() - it->copied;
    const std::uint64_t copy = std::min(bytes, room);
    if (copy == 0)
        return 0;
    if (!chargePhysical(std::int64_t(copy)))
        return -1;
    it->copied += copy;
    return std::int64_t((copy + 4095) / 4096);
}

void
AddressSpace::forkInto(AddressSpace &child) const
{
    for (const auto &m : mappings_)
        child.mapShared(m.region);
}

std::uint64_t
AddressSpace::rss() const
{
    std::uint64_t total = 0;
    for (const auto &m : mappings_)
        total += m.region->bytes();
    return total;
}

double
AddressSpace::pss() const
{
    double total = 0;
    for (const auto &m : mappings_) {
        const double shared =
            double(m.region->bytes() - m.copied) /
            double(std::max(1, m.region->sharers()));
        total += double(m.copied) + shared;
    }
    return total;
}

std::uint64_t
AddressSpace::privateBytes() const
{
    std::uint64_t total = 0;
    for (const auto &m : mappings_) {
        total += m.copied;
        if (m.region->sharers() == 1)
            total += m.region->bytes() - m.copied;
    }
    return total;
}

void
AddressSpace::clear()
{
    while (!mappings_.empty())
        unmap(mappings_.back().region);
}

MemRegionPtr
AddressSpace::findRegion(const std::string &label) const
{
    for (const auto &m : mappings_)
        if (m.region->label() == label)
            return m.region;
    return nullptr;
}

} // namespace molecule::os
