/**
 * @file
 * Region-based memory accounting.
 *
 * The cfork experiments (Fig 11-b/c) and the density experiment
 * (Fig 2-a) hinge on how much memory instances *share*. We model an
 * address space as a set of mapped regions: a region is a contiguous
 * chunk of resident pages shared by any number of address spaces.
 *
 *  - RSS of a process = sum of bytes of all mapped regions (resident
 *    pages, shared or not).
 *  - PSS of a process = private bytes + shared bytes / #sharers, the
 *    Linux definition.
 *  - fork() maps the parent's regions copy-on-write; a COW *touch*
 *    moves bytes from the shared region into a private region (and
 *    costs page faults, charged by the OS layer).
 *
 * Physical memory is accounted once per region at the machine level,
 * which is what makes DPU instance density benefit from cfork sharing.
 *
 * Approximation: a COW copy leaves the region's sharer count untouched
 * (per-byte sharer tracking would be overkill), so after copies the sum
 * of PSS across processes undercounts physical memory by at most the
 * copied bytes. The direction and bound are asserted by the property
 * test in tests/os/memory_test.cc.
 */

#ifndef MOLECULE_OS_MEMORY_HH
#define MOLECULE_OS_MEMORY_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace molecule::os {

/**
 * A chunk of resident physical memory, possibly mapped by several
 * address spaces. Created through AddressSpace; the physical-memory
 * callbacks let the owner (LocalOs) charge the PU budget exactly once
 * per region.
 */
class MemRegion
{
  public:
    MemRegion(std::string label, std::uint64_t bytes)
        : label_(std::move(label)), bytes_(bytes)
    {}

    const std::string &label() const { return label_; }

    std::uint64_t bytes() const { return bytes_; }

    int sharers() const { return sharers_; }

  private:
    friend class AddressSpace;

    std::string label_;
    std::uint64_t bytes_;
    int sharers_ = 0;
};

using MemRegionPtr = std::shared_ptr<MemRegion>;

/**
 * Per-process view of memory: a set of region mappings, each with a
 * copied-on-write byte count.
 */
class AddressSpace
{
  public:
    /** Called with +bytes when a region becomes resident, -bytes when
     *  the last mapping goes away. Set by LocalOs to charge the PU. */
    using PhysicalHook = std::function<bool(std::int64_t)>;

    AddressSpace() = default;

    explicit AddressSpace(PhysicalHook hook) : hook_(std::move(hook)) {}

    AddressSpace(const AddressSpace &) = delete;
    AddressSpace &operator=(const AddressSpace &) = delete;
    AddressSpace(AddressSpace &&) = default;
    AddressSpace &operator=(AddressSpace &&) = default;

    ~AddressSpace() { clear(); }

    /**
     * Allocate a fresh private region.
     * @return the region, or nullptr when physical memory is exhausted.
     */
    MemRegionPtr mapPrivate(const std::string &label,
                            std::uint64_t bytes);

    /**
     * Map an existing region (shared mapping). No physical charge.
     */
    void mapShared(const MemRegionPtr &region);

    /** Unmap one region (releases physical memory with the last map). */
    void unmap(const MemRegionPtr &region);

    /**
     * Copy-on-write fault @p bytes of @p region into private memory.
     * Capped at the region size. @return pages actually copied, or -1
     * when physical memory for the copies is exhausted.
     */
    std::int64_t touchCow(const MemRegionPtr &region, std::uint64_t bytes);

    /**
     * Fork this address space into @p child: every mapping becomes a
     * shared mapping of the same regions (COW semantics); copied
     * overlays in the parent stay parent-private and are modelled as
     * re-shared (they form part of the regions again for simplicity).
     */
    void forkInto(AddressSpace &child) const;

    /** Resident set size: all mapped resident bytes. */
    std::uint64_t rss() const;

    /** Proportional set size: private + shared/sharers. */
    double pss() const;

    /** Bytes mapped only by this address space. */
    std::uint64_t privateBytes() const;

    /** Drop all mappings. */
    void clear();

    std::size_t mappingCount() const { return mappings_.size(); }

    /** Find a mapped region by label (nullptr when absent). */
    MemRegionPtr findRegion(const std::string &label) const;

  private:
    struct Mapping
    {
        MemRegionPtr region;
        /** Bytes of this region privately copied after a COW fault. */
        std::uint64_t copied = 0;
    };

    bool chargePhysical(std::int64_t delta);

    PhysicalHook hook_;
    std::vector<Mapping> mappings_;
};

} // namespace molecule::os

#endif // MOLECULE_OS_MEMORY_HH
