/**
 * @file
 * Local named FIFOs (Linux-FIFO model).
 *
 * The paper's same-PU communication fast path (Nightcore-style internal
 * calls, §4.3) and the Fig 8 baseline are Linux FIFOs. The cost model:
 *
 *   writer: write syscall + per-byte kernel copy
 *   reader: read syscall + scheduler wakeup when it was blocked
 *
 * so a one-way transfer costs 2 syscalls + copy + wakeup, all scaled by
 * the PU's swFactor — ~8-16 us on the host CPU, ~35-75 us on BF-1 over
 * Fig 8's 16 B..2 KB range.
 */

#ifndef MOLECULE_OS_FIFO_HH
#define MOLECULE_OS_FIFO_HH

#include <cstdint>
#include <string>

#include "sim/sync.hh"

namespace molecule::os {

class LocalOs;

/** A message in flight through a FIFO: size plus an opaque tag. */
struct FifoMessage
{
    std::uint64_t bytes = 0;
    std::string tag;
};

/**
 * One named FIFO on one PU. Unbounded (pipe buffers are larger than
 * our serverless messages); blocking read.
 */
class LocalFifo
{
  public:
    LocalFifo(LocalOs &os, std::string name);

    const std::string &name() const { return name_; }

    /**
     * Write: charges writer-side syscall + copy costs, then enqueues a
     * copy of @p msg. Await inline (the reference must stay valid).
     */
    sim::Task<> write(const FifoMessage &msg);

    /** Blocking read: dequeues, charging reader-side costs. */
    sim::Task<FifoMessage> read();

    std::size_t depth() const { return queue_.size(); }

    /**
     * Fault path: wake every blocked reader with a sentinel message
     * (zero bytes, @p tag starting with "!") so no coroutine hangs on
     * a FIFO whose writer died. Readers must check the tag.
     */
    void
    poison(const std::string &tag)
    {
        // One batched wake for all blocked readers: same sentinel per
        // reader and the same resume order as a tryPut-per-waiter
        // loop, in a single event-queue transaction.
        (void)queue_.poisonGetters(FifoMessage{0, tag});
    }

  private:
    LocalOs &os_;
    std::string name_;
    sim::Mailbox<FifoMessage> queue_;
};

} // namespace molecule::os

#endif // MOLECULE_OS_FIFO_HH
