#include "os/kernel.hh"

#include "hw/calibration.hh"
#include "sim/logging.hh"

namespace molecule::os {

namespace calib = hw::calib;

LocalOs::LocalOs(hw::ProcessingUnit &pu) : pu_(pu), containers_(*this) {}

sim::Task<>
LocalOs::syscall()
{
    co_await simulation().delay(scaledSw(calib::kSyscallCost));
}

sim::Task<>
LocalOs::swDelay(sim::SimTime hostCost)
{
    co_await simulation().delay(scaledSw(hostCost));
}

AddressSpace
LocalOs::makeAddressSpace()
{
    auto &pu = pu_;
    return AddressSpace([&pu](std::int64_t delta) {
        if (delta >= 0)
            return pu.tryAllocate(std::uint64_t(delta));
        pu.free(std::uint64_t(-delta));
        return true;
    });
}

sim::Task<Process *>
LocalOs::spawnProcess(const std::string &name, std::uint64_t privateBytes,
                      obs::SpanContext ctx)
{
    // Copy before the first suspension (see the GCC 12 note in task.hh).
    std::string owned_name = name;
    obs::Span span(ctx, "os.spawn", obs::Layer::Os, pu_.id());
    span.setDetail(owned_name.c_str());
    co_await swDelay(calib::kSpawnProcessCost);
    AddressSpace space = makeAddressSpace();
    if (privateBytes > 0 &&
        !space.mapPrivate(owned_name + "/image", privateBytes)) {
        co_return nullptr; // admission failure
    }
    const Pid pid = nextPid_.fetchAdd(1);
    auto proc = std::make_unique<Process>(*this, pid,
                                          std::move(owned_name),
                                          std::move(space));
    Process *raw = proc.get();
    procs_[pid] = std::move(proc);
    co_return raw;
}

sim::Task<Process *>
LocalOs::fork(Process &parent, const std::string &childName,
              obs::SpanContext ctx)
{
    std::string owned_name = childName;
    obs::Span span(ctx, "os.fork", obs::Layer::Os, pu_.id());
    span.setDetail(owned_name.c_str());
    MOLECULE_ASSERT(parent.threads() == 1,
                    "Unix fork only propagates one thread; merge "
                    "threads first (forkable runtime, §4.2)");
    co_await swDelay(calib::kForkCost);
    AddressSpace space = makeAddressSpace();
    parent.addressSpace().forkInto(space);
    const Pid pid = nextPid_.fetchAdd(1);
    auto proc = std::make_unique<Process>(*this, pid,
                                          std::move(owned_name),
                                          std::move(space));
    Process *raw = proc.get();
    procs_[pid] = std::move(proc);
    co_return raw;
}

void
LocalOs::exitProcess(Process &proc)
{
    proc.state_ = ProcState::Zombie;
    proc.addressSpace().clear();
    procs_.erase(proc.pid());
}

Process *
LocalOs::findProcess(Pid pid)
{
    auto it = procs_.find(pid);
    return it == procs_.end() ? nullptr : it->second.get();
}

LocalFifo *
LocalOs::createFifo(const std::string &name)
{
    if (fifos_.count(name))
        sim::fatal("FIFO '%s' already exists", name.c_str());
    auto fifo = std::make_unique<LocalFifo>(*this, name);
    LocalFifo *raw = fifo.get();
    fifos_[name] = std::move(fifo);
    return raw;
}

LocalFifo *
LocalOs::findFifo(const std::string &name)
{
    auto it = fifos_.find(name);
    return it == fifos_.end() ? nullptr : it->second.get();
}

void
LocalOs::removeFifo(const std::string &name)
{
    fifos_.erase(name);
}

void
LocalOs::crashReset()
{
    while (!procs_.empty())
        exitProcess(*procs_.begin()->second);
    // Poison blocked readers, then retire the FIFOs to the graveyard:
    // the woken coroutines still touch the mailbox when they resume
    // later this tick, so the objects must outlive the crash instant.
    for (auto &[name, fifo] : fifos_) {
        fifo->poison("!fault:pu-crash");
        deadFifos_.push_back(std::move(fifo));
    }
    fifos_.clear();
}

} // namespace molecule::os
