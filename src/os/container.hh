/**
 * @file
 * Containers: namespaces + cgroups, with the cpuset contention model.
 *
 * cfork's ablation (Fig 11-a) isolates three container costs:
 *  - starting a fresh container (mounts, pivot_root, hooks);
 *  - reconfiguring a forked child's namespaces into the container;
 *  - attaching the child to the container's cpuset cgroup. The stock
 *    kernel serializes cpuset updates behind a long-held semaphore;
 *    the paper's patch replaces it with a mutex ("Cpuset opt"). Both
 *    are modelled with a real lock so concurrent startups contend.
 */

#ifndef MOLECULE_OS_CONTAINER_HH
#define MOLECULE_OS_CONTAINER_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "obs/trace.hh"
#include "os/process.hh"
#include "sim/sync.hh"

namespace molecule::os {

class LocalOs;

/** Which cpuset locking discipline the kernel uses (§6.4). */
enum class CpusetMode { StockSemaphore, MutexPatch };

/** Lifecycle state of a container. */
enum class ContainerState { Created, Running, Stopped };

/**
 * One container: identity plus the processes settled inside it.
 * Construction is only via ContainerManager.
 */
class Container
{
  public:
    Container(std::string id, std::uint64_t seq)
        : id_(std::move(id)), seq_(seq)
    {}

    const std::string &id() const { return id_; }

    ContainerState state() const { return state_; }

    const std::vector<Process *> &processes() const { return procs_; }

  private:
    friend class ContainerManager;

    std::string id_;
    std::uint64_t seq_;
    ContainerState state_ = ContainerState::Created;
    std::vector<Process *> procs_;
};

/**
 * Per-OS container runtime state: creation, process attach (namespace
 * reconfig + cpuset attach under the kernel lock), destruction.
 */
class ContainerManager
{
  public:
    explicit ContainerManager(LocalOs &os);

    /** Kernel configuration knob (the Fig 11-a "Cpuset opt" patch). */
    void setCpusetMode(CpusetMode mode) { cpusetMode_ = mode; }

    CpusetMode cpusetMode() const { return cpusetMode_; }

    /** Start a fresh container (full runc create+start path). */
    sim::Task<Container *> create(const std::string &id);

    /**
     * Attach @p proc to @p container: namespace reconfiguration plus
     * cpuset cgroup attach under the kernel's cpuset lock.
     */
    sim::Task<> attach(Container &container, Process &proc,
                       obs::SpanContext ctx = {});

    /** Attach with only the cgroup step (already in the right ns). */
    sim::Task<> attachCgroupOnly(Container &container, Process &proc);

    /** Tear a container down. */
    sim::Task<> destroy(Container &container);

    std::size_t containerCount() const { return containers_.size(); }

    Container *find(const std::string &id);

  private:
    sim::Task<> cpusetAttach();

    LocalOs &os_;
    CpusetMode cpusetMode_ = CpusetMode::StockSemaphore;
    /** The kernel's global cpuset update lock. */
    sim::Semaphore cpusetLock_;
    std::vector<std::unique_ptr<Container>> containers_;
    std::uint64_t nextSeq_ = 0;
};

} // namespace molecule::os

#endif // MOLECULE_OS_CONTAINER_HH
