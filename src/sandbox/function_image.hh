/**
 * @file
 * Deployable function artifacts.
 *
 * A FunctionImage is what the platform's offline build step produces
 * for one function on one kind of PU (§2.1.2): language + code +
 * dependency metadata for CPU/DPU functions, a synthesizable kernel
 * with resource usage for FPGA functions, a CUDA module for GPU
 * functions. The workloads library instantiates these for the paper's
 * benchmark suites.
 */

#ifndef MOLECULE_SANDBOX_FUNCTION_IMAGE_HH
#define MOLECULE_SANDBOX_FUNCTION_IMAGE_HH

#include <cstdint>
#include <string>

#include "hw/calibration.hh"
#include "hw/fpga.hh"

namespace molecule::sandbox {

/** Language runtime of a function (§5: Python + Node cover ~90%). */
enum class Language { Python, Node, FpgaOpenCl, CudaCpp };

const char *toString(Language lang);

/** Cold-start cost of a language runtime before imports (host-ref). */
sim::SimTime runtimeColdStart(Language lang);

/**
 * Memory layout of one CPU/DPU function instance, in bytes.
 *
 * runtimeShared is the interpreter + common dependencies that a cfork
 * template shares with children; privateBytes is per-instance heap;
 * templateExtra is template-only state (fork bookkeeping, preloaded
 * code cache) that children do not map.
 */
struct MemoryFootprint
{
    std::uint64_t runtimeShared = 0;
    std::uint64_t privateBytes = 0;
    std::uint64_t templateExtra = 0;

    std::uint64_t
    coldTotal() const
    {
        return runtimeShared + privateBytes;
    }
};

/**
 * One function's deployable image.
 */
struct FunctionImage
{
    std::string funcId;
    Language language = Language::Python;

    MemoryFootprint mem;

    /** Importing function-specific dependencies on cold boot. */
    sim::SimTime importCost;

    /** Loading code (+ lazy deps) into a cfork'd child (§4.2). */
    sim::SimTime funcLoadCost;

    /**
     * Fraction of the shared runtime a child dirties on its first
     * execution (COW page faults). Solved from the Fig 14-b deltas
     * (cfork'd instances are only slightly slower on their first
     * warm invocation): a few hundred KB of interpreter state.
     */
    double cowTouchFraction = 0.004;

    /** FPGA functions: fabric resources of one kernel slot (Tab 4). */
    hw::FpgaResources fpgaResources;

    /** FPGA functions: preferred DRAM bank (§5 static partitioning). */
    int dramBank = -1;

    bool
    isAccelerated() const
    {
        return language == Language::FpgaOpenCl ||
               language == Language::CudaCpp;
    }
};

} // namespace molecule::sandbox

#endif // MOLECULE_SANDBOX_FUNCTION_IMAGE_HH
