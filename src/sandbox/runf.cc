#include "sandbox/runf.hh"

#include "hw/calibration.hh"
#include "sim/logging.hh"

namespace molecule::sandbox {

namespace calib = hw::calib;

RunfRuntime::RunfRuntime(os::LocalOs &hostOs, hw::FpgaDevice &device)
    : hostOs_(hostOs), device_(device),
      dmaLink_(hostOs.simulation(),
               hw::LinkParams::forKind(hw::LinkKind::PcieDma))
{}

SandboxState
RunfRuntime::state(const std::string &sandboxId)
{
    FpgaSandbox *sb = find(sandboxId);
    return sb ? sb->state : SandboxState::Unknown;
}

sim::Task<bool>
RunfRuntime::create(const CreateRequest &req)
{
    std::vector<CreateRequest> one{req};
    const core::Expected<int> made = co_await createVector(one);
    co_return made.ok() && made.value() == 1;
}

sim::Task<core::Expected<int>>
RunfRuntime::createVector(const std::vector<CreateRequest> &reqs)
{
    std::vector<CreateRequest> owned = reqs;
    const obs::SpanContext ctx =
        owned.empty() ? obs::SpanContext{} : owned.front().ctx;
    obs::Span span(ctx, "sandbox.compose", obs::Layer::Sandbox,
                   hostOs_.pu().id());
    span.setArg(std::int64_t(owned.size()));

    // Compose wrapper + one slot per request and check the budget.
    hw::FpgaImage image;
    image.id = nextImageId_++;
    for (const auto &req : owned) {
        MOLECULE_ASSERT(req.image != nullptr, "create without an image");
        hw::KernelSlot slot;
        slot.funcId = req.image->funcId;
        slot.resources = req.image->fpgaResources;
        slot.dramBank = req.image->dramBank >= 0
                            ? req.image->dramBank % device_.dramBankCount()
                            : int(image.slots.size()) %
                                  device_.dramBankCount();
        image.slots.push_back(std::move(slot));
    }
    if (!image.totalResources().fitsIn(device_.totals()))
        co_return core::Error(core::Errc::NoCapacity,
                              "image exceeds fabric resources",
                              hostOs_.pu().id());

    // The previous image's sandboxes are the ones "really destroyed"
    // by this create (§3.5).
    for (auto &[id, sb] : sandboxes_) {
        if (sb.state != SandboxState::Stopped)
            sb.state = SandboxState::Stopped;
        sb.warm = false;
    }

    if (options_.eraseBeforeProgram)
        co_await device_.erase(span.ctx());
    core::Status programmed =
        co_await device_.program(std::move(image),
                                 options_.bitstreamCached
                                     ? hw::ProgramMode::Cached
                                     : hw::ProgramMode::Cold,
                                 options_.retainDram, span.ctx());
    if (!programmed.ok()) {
        // The slot is erased; previous sandboxes were already stopped
        // above, so the device carries no usable image until a retry.
        co_return programmed.error();
    }

    for (const auto &req : owned) {
        FpgaSandbox sb;
        sb.id = req.sandboxId;
        sb.image = req.image;
        sb.state = SandboxState::Created;
        sandboxes_[req.sandboxId] = std::move(sb);
    }
    co_return core::Expected<int>(int(owned.size()));
}

sim::Task<bool>
RunfRuntime::start(const std::string &sandboxId)
{
    FpgaSandbox *sb = find(sandboxId);
    if (!sb || !device_.resident(sb->image->funcId))
        co_return false;
    if (!sb->warm) {
        // Prepare the software sandbox around the resident kernel
        // (Fig 10-c "Prep.-sandbox", 53 ms); warm sandboxes skip it.
        co_await hostOs_.swDelay(calib::kFpgaSandboxPrepCost);
        sb->warm = true;
    }
    sb->state = SandboxState::Running;
    co_return true;
}

namespace {

/**
 * Concurrent start of one sandbox (startVector fan-out). Takes the id
 * by stable pointer+index — not by value — per the GCC 12 coroutine
 * parameter rule in sim/task.hh.
 */
sim::Task<>
startOne(RunfRuntime *runf, const std::vector<std::string> *ids,
         std::size_t index, int *ok)
{
    const bool started = co_await runf->start((*ids)[index]);
    if (started)
        ++*ok;
}

} // namespace

sim::Task<int>
RunfRuntime::startVector(const std::vector<std::string> &ids)
{
    // Concurrent execution across regions is the point of the
    // vectorized start (§3.5).
    std::vector<std::string> owned = ids;
    int ok = 0;
    std::vector<sim::Task<>> starts;
    for (std::size_t i = 0; i < owned.size(); ++i)
        starts.push_back(startOne(this, &owned, i, &ok));
    co_await sim::allOf(hostOs_.simulation(), std::move(starts));
    co_return ok;
}

sim::Task<>
RunfRuntime::kill(const std::string &sandboxId, int signal)
{
    (void)signal;
    FpgaSandbox *sb = find(sandboxId);
    if (sb)
        sb->state = SandboxState::Stopped;
    co_return;
}

sim::Task<>
RunfRuntime::destroy(const std::string &sandboxId)
{
    // "delete will be empty and directly return (but the runf will
    // update sandbox states)" — §3.5. The hardware slot lives until
    // the next createVector replaces the image.
    FpgaSandbox *sb = find(sandboxId);
    if (sb)
        sb->state = SandboxState::Stopped;
    co_return;
}

sim::Task<>
RunfRuntime::invoke(const std::string &sandboxId, sim::SimTime kernelTime,
                    std::uint64_t inBytes, std::uint64_t outBytes,
                    bool zeroCopyIn, bool zeroCopyOut,
                    obs::SpanContext ctx)
{
    obs::Span span(ctx, "sandbox.exec", obs::Layer::Sandbox,
                   hostOs_.pu().id());
    FpgaSandbox *sb = find(sandboxId);
    MOLECULE_ASSERT(sb != nullptr, "invoking unknown FPGA sandbox '%s'",
                    sandboxId.c_str());
    MOLECULE_ASSERT(sb->state == SandboxState::Running,
                    "invoking non-running FPGA sandbox '%s'",
                    sandboxId.c_str());
    // runf's own software dispatch around the hardware invocation.
    co_await hostOs_.swDelay(calib::kRunfDispatchCost);
    const std::string &funcId = sb->image->funcId;
    int bank = -1;
    for (const auto &slot : device_.image().slots)
        if (slot.funcId == funcId)
            bank = slot.dramBank;
    MOLECULE_ASSERT(bank >= 0, "function '%s' has no DRAM bank",
                    funcId.c_str());

    if (zeroCopyIn) {
        // Input was retained in DRAM by the previous function (§4.3).
        co_await device_.bankRead(bank, inBytes, span.ctx());
    } else if (inBytes > 0) {
        {
            obs::Span dma(span.ctx(), "hw.dma-in", obs::Layer::Hw,
                          hostOs_.pu().id());
            dma.setArg(std::int64_t(inBytes));
            co_await dmaLink_.transfer(inBytes);
        }
        co_await device_.bankWrite(bank, funcId + "/in", inBytes,
                                   span.ctx());
    }

    co_await device_.invoke(funcId, kernelTime, span.ctx());

    if (zeroCopyOut) {
        co_await device_.bankWrite(bank, funcId + "/out", outBytes,
                                   span.ctx());
    } else if (outBytes > 0) {
        obs::Span dma(span.ctx(), "hw.dma-out", obs::Layer::Hw,
                      hostOs_.pu().id());
        dma.setArg(std::int64_t(outBytes));
        co_await dmaLink_.transfer(outBytes);
    }
}

bool
RunfRuntime::cached(const std::string &funcId) const
{
    return device_.resident(funcId);
}

bool
RunfRuntime::warm(const std::string &sandboxId) const
{
    auto it = sandboxes_.find(sandboxId);
    return it != sandboxes_.end() && it->second.warm;
}

RunfRuntime::FpgaSandbox *
RunfRuntime::find(const std::string &sandboxId)
{
    auto it = sandboxes_.find(sandboxId);
    return it == sandboxes_.end() ? nullptr : &it->second;
}

} // namespace molecule::sandbox
