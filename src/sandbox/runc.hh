/**
 * @file
 * runc: the container sandbox runtime for CPU and DPU functions.
 *
 * Implements the OCI surface (vectorized operations degenerate to
 * one-sized vectors, §5) plus Molecule's container fork. cfork (§4.2)
 * clones a pre-prepared template container into a new function
 * container, in four stackable optimization stages matching the
 * Fig 11-a ablation:
 *
 *   ColdBoot            - no template: container start + language
 *                         runtime boot + imports (the baseline);
 *   CforkNaive          - fork the template's forkable runtime, start
 *                         a fresh function container, attach via the
 *                         stock kernel's cpuset semaphore;
 *   CforkFuncContainer  - settle the child into a *pre-initialized*
 *                         function container (skips container start);
 *   CforkCpusetOpt      - additionally use the kernel patch replacing
 *                         the cpuset semaphore with a mutex.
 *
 * The forkable language runtime merges threads before fork and
 * re-expands them in the child; memory follows COW semantics through
 * the os layer, which is where the Fig 11-b/c RSS/PSS curves and the
 * Fig 2-a DPU density win come from.
 */

#ifndef MOLECULE_SANDBOX_RUNC_HH
#define MOLECULE_SANDBOX_RUNC_HH

#include <deque>
#include <map>
#include <memory>

#include "core/status.hh"
#include "os/kernel.hh"
#include "sandbox/oci.hh"

namespace molecule::sandbox {

/** Startup strategy used by create() (the Fig 11-a ablation knob). */
enum class StartupPath {
    ColdBoot,
    CforkNaive,
    CforkFuncContainer,
    CforkCpusetOpt,
};

const char *toString(StartupPath p);

/** One live sandboxed function instance. */
struct Instance
{
    std::string id;
    std::string funcId;
    SandboxState state = SandboxState::Unknown;
    os::Process *proc = nullptr;
    os::Container *container = nullptr;
    const FunctionImage *image = nullptr;
    /** Created via cfork (shares the template's runtime region). */
    bool forked = false;
    /** First execution already paid its COW faults. */
    bool cowSettled = false;
    /** Killed by an injected fault (OOM, PU crash). Dead instances
     * stay in the table — in-flight invokes hold pointers to them —
     * but proc/container are nulled (the OS reclaimed them). */
    bool dead = false;
    core::Errc deathCause = core::Errc::Ok;
};

/**
 * Container runtime bound to one local OS (one PU).
 */
class RuncRuntime : public VectorizedSandboxRuntime
{
  public:
    explicit RuncRuntime(os::LocalOs &os) : os_(os) {}

    os::LocalOs &localOs() { return os_; }

    void setStartupPath(StartupPath path) { path_ = path; }

    StartupPath startupPath() const { return path_; }

    /** @name cfork template management (§4.2) */
    ///@{

    /**
     * Boot the template container for @p image's language: container +
     * forkable runtime; children will share its runtime region.
     * One template per language (the paper's generic template).
     */
    sim::Task<bool> prepareTemplate(const FunctionImage &image);

    bool hasTemplate(Language lang) const;

    os::Process *templateProcess(Language lang);

    /** Pre-initialize @p n function containers (FuncContainer stage). */
    sim::Task<int> prewarmFunctionContainers(int n);

    std::size_t pooledContainers() const { return pool_.size(); }
    ///@}

    /** @name OCI surface */
    ///@{
    SandboxState state(const std::string &sandboxId) override;

    sim::Task<bool> create(const CreateRequest &req) override;

    sim::Task<bool> start(const std::string &sandboxId) override;

    sim::Task<> kill(const std::string &sandboxId, int signal) override;

    sim::Task<> destroy(const std::string &sandboxId) override;
    ///@}

    /**
     * Execute one request in a running instance: first execution after
     * cfork pays COW page faults on the shared runtime region, then
     * the function body occupies a core for @p hostExecCost.
     *
     * @return ok, or the typed death cause when the instance was
     *         killed by an injected fault before or during execution
     *         (SandboxOomKilled, PuCrashed). The CPU time up to the
     *         kill is spent either way.
     */
    [[nodiscard]] sim::Task<core::Status>
    invoke(const std::string &sandboxId, sim::SimTime hostExecCost,
           obs::SpanContext ctx = {});

    /** @name Fault paths */
    ///@{

    /**
     * OOM-kill every live instance of @p funcId: state goes Stopped,
     * the process exits (memory released), in-flight invokes return
     * SandboxOomKilled. @return instances killed.
     */
    int oomKill(const std::string &funcId);

    /**
     * The PU crashed: every instance, template and pooled container
     * dies. Instance records stay (flagged dead) for in-flight
     * pointers; the OS-side objects are reclaimed by
     * LocalOs::crashReset(), so only the pointers are dropped here.
     */
    void crashPurge();
    ///@}

    Instance *find(const std::string &sandboxId);

    std::size_t instanceCount() const { return instances_.size(); }

    /** @name Memory introspection (Fig 11-b/c) */
    ///@{
    std::uint64_t instanceRss(const std::string &sandboxId);

    double instancePss(const std::string &sandboxId);

    std::uint64_t templateRss(Language lang);
    ///@}

  private:
    struct TemplateState
    {
        os::Process *proc = nullptr;
        os::Container *container = nullptr;
        os::MemRegionPtr runtimeRegion;
        const FunctionImage *image = nullptr;
    };

    sim::Task<bool> createCold(Instance &inst, obs::SpanContext ctx);

    sim::Task<bool> createCfork(Instance &inst, obs::SpanContext ctx);

    os::LocalOs &os_;
    StartupPath path_ = StartupPath::CforkCpusetOpt;
    std::map<Language, TemplateState> templates_;
    std::deque<os::Container *> pool_;
    std::map<std::string, std::unique_ptr<Instance>> instances_;
    std::uint64_t nextId_ = 0;
};

} // namespace molecule::sandbox

#endif // MOLECULE_SANDBOX_RUNC_HH
