#include "sandbox/rung.hh"

#include "sim/logging.hh"

namespace molecule::sandbox {

RungRuntime::RungRuntime(os::LocalOs &hostOs, hw::GpuDevice &device)
    : hostOs_(hostOs), device_(device),
      dmaLink_(hostOs.simulation(),
               hw::LinkParams::forKind(hw::LinkKind::PcieDma))
{}

SandboxState
RungRuntime::state(const std::string &sandboxId)
{
    GpuSandbox *sb = find(sandboxId);
    return sb ? sb->state : SandboxState::Unknown;
}

sim::Task<bool>
RungRuntime::create(const CreateRequest &req)
{
    MOLECULE_ASSERT(req.image != nullptr, "create without an image");
    if (sandboxes_.count(req.sandboxId))
        co_return false;
    GpuSandbox sb;
    sb.id = req.sandboxId;
    sb.image = req.image;
    sb.state = SandboxState::Creating;
    sandboxes_[req.sandboxId] = sb;
    co_await device_.loadModule(req.image->funcId);
    sandboxes_[sb.id].state = SandboxState::Created;
    co_return true;
}

sim::Task<bool>
RungRuntime::start(const std::string &sandboxId)
{
    GpuSandbox *sb = find(sandboxId);
    if (!sb || sb->state != SandboxState::Created)
        co_return false;
    co_await hostOs_.syscall();
    sb->state = SandboxState::Running;
    co_return true;
}

sim::Task<>
RungRuntime::kill(const std::string &sandboxId, int signal)
{
    (void)signal;
    GpuSandbox *sb = find(sandboxId);
    if (sb)
        sb->state = SandboxState::Stopped;
    co_return;
}

sim::Task<>
RungRuntime::destroy(const std::string &sandboxId)
{
    GpuSandbox *sb = find(sandboxId);
    if (!sb)
        co_return;
    device_.unloadModule(sb->image->funcId);
    sandboxes_.erase(sandboxId);
    co_return;
}

sim::Task<>
RungRuntime::invoke(const std::string &sandboxId, sim::SimTime kernelTime,
                    std::uint64_t inBytes, std::uint64_t outBytes,
                    obs::SpanContext ctx)
{
    obs::Span span(ctx, "sandbox.exec", obs::Layer::Sandbox,
                   hostOs_.pu().id());
    GpuSandbox *sb = find(sandboxId);
    MOLECULE_ASSERT(sb != nullptr, "invoking unknown GPU sandbox '%s'",
                    sandboxId.c_str());
    MOLECULE_ASSERT(sb->state == SandboxState::Running,
                    "invoking non-running GPU sandbox '%s'",
                    sandboxId.c_str());
    if (inBytes > 0) {
        obs::Span dma(span.ctx(), "hw.dma-in", obs::Layer::Hw,
                      hostOs_.pu().id());
        dma.setArg(std::int64_t(inBytes));
        co_await dmaLink_.transfer(inBytes);
    }
    {
        obs::Span hwspan(span.ctx(), "hw.kernel", obs::Layer::Hw,
                         hostOs_.pu().id());
        co_await device_.launch(sb->image->funcId, kernelTime);
    }
    if (outBytes > 0) {
        obs::Span dma(span.ctx(), "hw.dma-out", obs::Layer::Hw,
                      hostOs_.pu().id());
        dma.setArg(std::int64_t(outBytes));
        co_await dmaLink_.transfer(outBytes);
    }
}

RungRuntime::GpuSandbox *
RungRuntime::find(const std::string &sandboxId)
{
    auto it = sandboxes_.find(sandboxId);
    return it == sandboxes_.end() ? nullptr : &it->second;
}

} // namespace molecule::sandbox
