#include "sandbox/oci.hh"

namespace molecule::sandbox {

const char *
toString(Language lang)
{
    switch (lang) {
      case Language::Python:
        return "python";
      case Language::Node:
        return "node";
      case Language::FpgaOpenCl:
        return "fpga-opencl";
      case Language::CudaCpp:
        return "cuda-c++";
    }
    return "?";
}

sim::SimTime
runtimeColdStart(Language lang)
{
    namespace calib = hw::calib;
    switch (lang) {
      case Language::Python:
        return calib::kPythonColdStart;
      case Language::Node:
        return calib::kNodeColdStart;
      case Language::FpgaOpenCl:
      case Language::CudaCpp:
        return sim::SimTime(0); // accelerated paths cost elsewhere
    }
    return sim::SimTime(0);
}

const char *
toString(SandboxState s)
{
    switch (s) {
      case SandboxState::Unknown:
        return "unknown";
      case SandboxState::Creating:
        return "creating";
      case SandboxState::Created:
        return "created";
      case SandboxState::Running:
        return "running";
      case SandboxState::Stopped:
        return "stopped";
    }
    return "?";
}

std::vector<SandboxState>
VectorizedSandboxRuntime::stateVector(const std::vector<std::string> &ids)
{
    std::vector<SandboxState> out;
    out.reserve(ids.size());
    for (const auto &id : ids)
        out.push_back(state(id));
    return out;
}

sim::Task<core::Expected<int>>
VectorizedSandboxRuntime::createVector(
    const std::vector<CreateRequest> &reqs)
{
    // Default: one-sized-vector loop (how runc implements Table 3,
    // §5). Accelerator runtimes override with real batching.
    std::vector<CreateRequest> owned = reqs;
    int ok = 0;
    for (const auto &req : owned) {
        const bool created = co_await create(req);
        ok += created ? 1 : 0;
    }
    co_return core::Expected<int>(ok);
}

sim::Task<int>
VectorizedSandboxRuntime::startVector(const std::vector<std::string> &ids)
{
    std::vector<std::string> owned = ids;
    int ok = 0;
    for (const auto &id : owned) {
        const bool started = co_await start(id);
        ok += started ? 1 : 0;
    }
    co_return ok;
}

sim::Task<>
VectorizedSandboxRuntime::killVector(const std::vector<std::string> &ids,
                                     int signal)
{
    std::vector<std::string> owned = ids;
    for (const auto &id : owned)
        co_await kill(id, signal);
}

sim::Task<>
VectorizedSandboxRuntime::destroyVector(
    const std::vector<std::string> &ids)
{
    std::vector<std::string> owned = ids;
    for (const auto &id : owned)
        co_await destroy(id);
}

} // namespace molecule::sandbox
