#include "sandbox/runc.hh"

#include "hw/calibration.hh"
#include "sim/logging.hh"

namespace molecule::sandbox {

namespace calib = hw::calib;

const char *
toString(StartupPath p)
{
    switch (p) {
      case StartupPath::ColdBoot:
        return "cold-boot";
      case StartupPath::CforkNaive:
        return "cfork-naive";
      case StartupPath::CforkFuncContainer:
        return "cfork-func-container";
      case StartupPath::CforkCpusetOpt:
        return "cfork-cpuset-opt";
    }
    return "?";
}

sim::Task<bool>
RuncRuntime::prepareTemplate(const FunctionImage &image)
{
    const Language lang = image.language;
    if (templates_.count(lang))
        co_return true;

    TemplateState tmpl;
    tmpl.image = &image;
    tmpl.container =
        co_await os_.containers().create("tmpl-" + std::string(
            sandbox::toString(lang)));
    tmpl.proc = co_await os_.spawnProcess(
        "template-" + std::string(sandbox::toString(lang)), 0);
    if (!tmpl.proc)
        co_return false;
    // Boot the forkable language runtime inside the template.
    co_await os_.swDelay(runtimeColdStart(lang));
    tmpl.runtimeRegion = tmpl.proc->addressSpace().mapPrivate(
        "runtime/" + std::string(sandbox::toString(lang)),
        image.mem.runtimeShared);
    if (!tmpl.runtimeRegion)
        co_return false;
    if (image.mem.templateExtra > 0 &&
        !tmpl.proc->addressSpace().mapPrivate("template-extra",
                                              image.mem.templateExtra)) {
        co_return false;
    }
    templates_[lang] = std::move(tmpl);
    co_return true;
}

bool
RuncRuntime::hasTemplate(Language lang) const
{
    return templates_.count(lang) != 0;
}

os::Process *
RuncRuntime::templateProcess(Language lang)
{
    auto it = templates_.find(lang);
    return it == templates_.end() ? nullptr : it->second.proc;
}

sim::Task<int>
RuncRuntime::prewarmFunctionContainers(int n)
{
    int made = 0;
    for (int i = 0; i < n; ++i) {
        os::Container *c = co_await os_.containers().create(
            "pool-" + std::to_string(nextId_++));
        if (!c)
            break;
        pool_.push_back(c);
        ++made;
    }
    co_return made;
}

SandboxState
RuncRuntime::state(const std::string &sandboxId)
{
    Instance *inst = find(sandboxId);
    return inst ? inst->state : SandboxState::Unknown;
}

sim::Task<bool>
RuncRuntime::create(const CreateRequest &req)
{
    MOLECULE_ASSERT(req.image != nullptr, "create without an image");
    if (instances_.count(req.sandboxId))
        co_return false;
    auto inst = std::make_unique<Instance>();
    inst->id = req.sandboxId;
    inst->funcId = req.image->funcId;
    inst->image = req.image;
    inst->state = SandboxState::Creating;
    Instance *raw = inst.get();
    instances_[req.sandboxId] = std::move(inst);

    const bool useCfork = path_ != StartupPath::ColdBoot &&
                          hasTemplate(req.image->language);
    const obs::SpanContext ctx = req.ctx;
    // GCC 12 rule (task.hh): co_await only as a full statement or the
    // RHS of a simple assignment -- never inside ?: or if-conditions.
    bool ok = false;
    if (useCfork)
        ok = co_await createCfork(*raw, ctx);
    else
        ok = co_await createCold(*raw, ctx);
    if (!ok) {
        instances_.erase(raw->id);
        co_return false;
    }
    raw->state = SandboxState::Created;
    co_return true;
}

sim::Task<bool>
RuncRuntime::createCold(Instance &inst, obs::SpanContext ctx)
{
    obs::Span span(ctx, "sandbox.cold-boot", obs::Layer::Sandbox,
                   os_.pu().id());
    span.setDetail(inst.funcId.c_str());
    // Baseline path: fresh container, cold language runtime, imports.
    inst.container = co_await os_.containers().create(inst.id);
    inst.proc = co_await os_.spawnProcess(inst.funcId, 0, span.ctx());
    if (!inst.proc)
        co_return false;
    co_await os_.swDelay(runtimeColdStart(inst.image->language) +
                         inst.image->importCost);
    if (!inst.proc->addressSpace().mapPrivate(
            inst.funcId + "/cold", inst.image->mem.coldTotal())) {
        os_.exitProcess(*inst.proc);
        co_return false;
    }
    co_await os_.swDelay(calib::kInstanceSettleCost);
    co_return true;
}

sim::Task<bool>
RuncRuntime::createCfork(Instance &inst, obs::SpanContext ctx)
{
    obs::Span span(ctx, "sandbox.cfork", obs::Layer::Sandbox,
                   os_.pu().id());
    span.setDetail(inst.funcId.c_str());
    TemplateState &tmpl = templates_.at(inst.image->language);

    // 1. The forkable runtime merges the template's threads into one
    //    so Unix fork propagates the full state (§4.2).
    tmpl.proc->setThreads(1);
    {
        obs::Span st(span.ctx(), "cfork.thread-merge",
                     obs::Layer::Sandbox, os_.pu().id());
        co_await os_.swDelay(calib::kThreadMergeCost);
    }

    // 2. fork() the template: all regions are COW-shared.
    inst.proc = co_await os_.fork(*tmpl.proc, inst.id, span.ctx());
    if (!inst.proc)
        co_return false;
    inst.forked = true;

    // 3. Children do not keep template-only state; they get their own
    //    private heap instead.
    if (auto extra = inst.proc->addressSpace().findRegion("template-extra"))
        inst.proc->addressSpace().unmap(extra);
    if (!inst.proc->addressSpace().mapPrivate(
            inst.funcId + "/heap", inst.image->mem.privateBytes)) {
        os_.exitProcess(*inst.proc);
        co_return false;
    }

    // 4. Function container: fresh (naive) or pre-initialized.
    if (path_ == StartupPath::CforkNaive || pool_.empty()) {
        obs::Span st(span.ctx(), "cfork.container",
                     obs::Layer::Sandbox, os_.pu().id());
        inst.container = co_await os_.containers().create(inst.id);
    } else {
        inst.container = pool_.front();
        pool_.pop_front();
    }

    // 5. Reconfigure namespaces + cpuset cgroup attach. The cpuset
    //    lock discipline is the CpusetOpt ablation knob.
    os_.containers().setCpusetMode(
        path_ == StartupPath::CforkCpusetOpt
            ? os::CpusetMode::MutexPatch
            : os::CpusetMode::StockSemaphore);
    co_await os_.containers().attach(*inst.container, *inst.proc,
                                     span.ctx());

    // 6. Child re-expands its threads, loads the function's code and
    //    connects back to the runtime.
    {
        obs::Span st(span.ctx(), "cfork.expand-load",
                     obs::Layer::Sandbox, os_.pu().id());
        co_await os_.swDelay(calib::kThreadExpandCost +
                             inst.image->funcLoadCost +
                             calib::kInstanceSettleCost);
    }
    co_return true;
}

sim::Task<bool>
RuncRuntime::start(const std::string &sandboxId)
{
    Instance *inst = find(sandboxId);
    if (!inst || inst->state != SandboxState::Created)
        co_return false;
    co_await os_.syscall();
    inst->state = SandboxState::Running;
    co_return true;
}

sim::Task<>
RuncRuntime::kill(const std::string &sandboxId, int signal)
{
    (void)signal;
    Instance *inst = find(sandboxId);
    if (!inst)
        co_return;
    co_await os_.syscall();
    inst->state = SandboxState::Stopped;
}

sim::Task<>
RuncRuntime::destroy(const std::string &sandboxId)
{
    Instance *inst = find(sandboxId);
    if (!inst)
        co_return;
    if (inst->proc)
        os_.exitProcess(*inst->proc);
    if (inst->container)
        co_await os_.containers().destroy(*inst->container);
    instances_.erase(sandboxId);
}

sim::Task<core::Status>
RuncRuntime::invoke(const std::string &sandboxId,
                    sim::SimTime hostExecCost, obs::SpanContext ctx)
{
    obs::Span span(ctx, "sandbox.exec", obs::Layer::Sandbox,
                   os_.pu().id());
    Instance *inst = find(sandboxId);
    MOLECULE_ASSERT(inst != nullptr, "invoking unknown sandbox '%s'",
                    sandboxId.c_str());
    if (inst->dead) {
        span.setDetail("dead-on-entry");
        co_return core::Status(inst->deathCause,
                               "sandbox '" + sandboxId +
                                   "' killed before execution",
                               os_.pu().id());
    }
    MOLECULE_ASSERT(inst->state == SandboxState::Running,
                    "invoking non-running sandbox '%s'",
                    sandboxId.c_str());

    if (inst->forked && !inst->cowSettled) {
        // First run dirties part of the shared runtime: COW faults
        // (the Fig 14-b warm-boot penalty of cfork'd instances).
        auto region = inst->proc->addressSpace().findRegion(
            "runtime/" +
            std::string(sandbox::toString(inst->image->language)));
        if (region) {
            const auto bytes = std::uint64_t(
                double(region->bytes()) * inst->image->cowTouchFraction);
            const auto pages =
                inst->proc->addressSpace().touchCow(region, bytes);
            if (pages > 0) {
                obs::Span st(span.ctx(), "sandbox.cow-settle",
                             obs::Layer::Sandbox, os_.pu().id());
                st.setArg(std::int64_t(pages));
                co_await os_.swDelay(calib::kCowFaultPerPage *
                                     double(pages));
            }
        }
        inst->cowSettled = true;
    }
    {
        obs::Span hwspan(span.ctx(), "hw.compute", obs::Layer::Hw,
                         os_.pu().id());
        co_await os_.pu().compute(hostExecCost);
    }
    // An injected kill may have landed while the body was executing:
    // the CPU time is spent, the result is lost.
    if (inst->dead) {
        span.setDetail("killed-mid-exec");
        co_return core::Status(inst->deathCause,
                               "sandbox '" + sandboxId +
                                   "' killed during execution",
                               os_.pu().id());
    }
    co_return core::Status();
}

int
RuncRuntime::oomKill(const std::string &funcId)
{
    int killed = 0;
    for (auto &[id, inst] : instances_) {
        if (inst->funcId != funcId || inst->dead)
            continue;
        inst->dead = true;
        inst->deathCause = core::Errc::SandboxOomKilled;
        inst->state = SandboxState::Stopped;
        if (inst->proc) {
            os_.exitProcess(*inst->proc);
            inst->proc = nullptr;
        }
        // The container record is abandoned, not recycled: a killed
        // instance's cgroup is torn down by the kernel, not reused.
        inst->container = nullptr;
        ++killed;
    }
    return killed;
}

void
RuncRuntime::crashPurge()
{
    // Pointer-drop only: LocalOs::crashReset() reaps the processes and
    // containers wholesale, so exiting them here would double-free.
    for (auto &[id, inst] : instances_) {
        if (!inst->dead) {
            inst->dead = true;
            inst->deathCause = core::Errc::PuCrashed;
        }
        inst->state = SandboxState::Stopped;
        inst->proc = nullptr;
        inst->container = nullptr;
    }
    templates_.clear();
    pool_.clear();
}

Instance *
RuncRuntime::find(const std::string &sandboxId)
{
    auto it = instances_.find(sandboxId);
    return it == instances_.end() ? nullptr : it->second.get();
}

std::uint64_t
RuncRuntime::instanceRss(const std::string &sandboxId)
{
    Instance *inst = find(sandboxId);
    return inst && inst->proc ? inst->proc->addressSpace().rss() : 0;
}

double
RuncRuntime::instancePss(const std::string &sandboxId)
{
    Instance *inst = find(sandboxId);
    return inst && inst->proc ? inst->proc->addressSpace().pss() : 0.0;
}

std::uint64_t
RuncRuntime::templateRss(Language lang)
{
    os::Process *proc = templateProcess(lang);
    return proc ? proc->addressSpace().rss() : 0;
}

} // namespace molecule::sandbox
