/**
 * @file
 * runG: the vectorized sandbox runtime for GPU functions (§6.8).
 *
 * GPUs are naturally "vectorized": an MPS-style service keeps many
 * modules resident concurrently, so create loads a module, start is a
 * state change, and delete actually unloads (unlike runf there is no
 * exclusive image to preserve). This is the Table 5 generality row.
 */

#ifndef MOLECULE_SANDBOX_RUNG_HH
#define MOLECULE_SANDBOX_RUNG_HH

#include <map>
#include <string>

#include "hw/gpu.hh"
#include "hw/interconnect.hh"
#include "os/kernel.hh"
#include "sandbox/oci.hh"

namespace molecule::sandbox {

/**
 * GPU sandbox runtime hosted by a neighbor PU's (virtual) shim.
 */
class RungRuntime : public VectorizedSandboxRuntime
{
  public:
    RungRuntime(os::LocalOs &hostOs, hw::GpuDevice &device);

    hw::GpuDevice &device() { return device_; }

    SandboxState state(const std::string &sandboxId) override;

    /** Load the function's CUDA module into the shared context. */
    sim::Task<bool> create(const CreateRequest &req) override;

    sim::Task<bool> start(const std::string &sandboxId) override;

    sim::Task<> kill(const std::string &sandboxId, int signal) override;

    /** Unload the module (GPU slots are cheap to reclaim). */
    sim::Task<> destroy(const std::string &sandboxId) override;

    /** Run one request: DMA input, launch kernel, DMA output. */
    sim::Task<> invoke(const std::string &sandboxId,
                       sim::SimTime kernelTime, std::uint64_t inBytes,
                       std::uint64_t outBytes,
                       obs::SpanContext ctx = {});

  private:
    struct GpuSandbox
    {
        std::string id;
        const FunctionImage *image = nullptr;
        SandboxState state = SandboxState::Unknown;
    };

    GpuSandbox *find(const std::string &sandboxId);

    os::LocalOs &hostOs_;
    hw::GpuDevice &device_;
    hw::Link dmaLink_;
    std::map<std::string, GpuSandbox> sandboxes_;
};

} // namespace molecule::sandbox

#endif // MOLECULE_SANDBOX_RUNG_HH
