/**
 * @file
 * The OCI runtime interface and its vectorized extension (Table 3).
 *
 * The five OCI operations (state/create/start/kill/delete) abstract
 * container-, VM- and process-based sandboxes alike; Molecule extends
 * them with vectorized variants so accelerator runtimes can create and
 * start *sets* of sandboxes at once (§3.5). The base class provides
 * the vectorized operations as loops over the scalar ones — exactly
 * what runc does ("always passing one-sized vector", §5) — while runf
 * overrides them with genuinely batched implementations.
 */

#ifndef MOLECULE_SANDBOX_OCI_HH
#define MOLECULE_SANDBOX_OCI_HH

#include <string>
#include <vector>

#include "core/status.hh"
#include "obs/trace.hh"
#include "sandbox/function_image.hh"
#include "sim/sync.hh"

namespace molecule::sandbox {

/** Lifecycle state of a sandbox (OCI state machine). */
enum class SandboxState { Unknown, Creating, Created, Running, Stopped };

const char *toString(SandboxState s);

/** Arguments of one create operation. */
struct CreateRequest
{
    std::string sandboxId;
    const FunctionImage *image = nullptr;
    /** Causal parent span of the startup driving this create. */
    obs::SpanContext ctx{};
};

/**
 * Abstract vectorized sandbox runtime.
 */
class VectorizedSandboxRuntime
{
  public:
    virtual ~VectorizedSandboxRuntime() = default;

    /** @name OCI interfaces (Table 3, top half) */
    ///@{

    /** Query the state of a sandbox. */
    virtual SandboxState state(const std::string &sandboxId) = 0;

    /** Create a sandbox for a function image. @retval false failed. */
    virtual sim::Task<bool> create(const CreateRequest &req) = 0;

    /** Run a created sandbox. */
    virtual sim::Task<bool> start(const std::string &sandboxId) = 0;

    /** Send a signal to a created/running sandbox. */
    virtual sim::Task<> kill(const std::string &sandboxId, int signal) = 0;

    /** Delete a sandbox. */
    virtual sim::Task<> destroy(const std::string &sandboxId) = 0;
    ///@}

    /** @name Vectorized interfaces (Table 3, bottom half) */
    ///@{

    /** Query a vector of sandboxes. */
    std::vector<SandboxState>
    stateVector(const std::vector<std::string> &ids);

    /**
     * Create a vector of sandboxes at once.
     * @return number of sandboxes successfully created, or a typed
     *         error when the whole vector failed as a unit (e.g. an
     *         FPGA image that exceeds the fabric, or a reconfiguration
     *         failure while programming it).
     */
    virtual sim::Task<core::Expected<int>>
    createVector(const std::vector<CreateRequest> &reqs);

    /** Run a vector of sandboxes concurrently. */
    virtual sim::Task<int>
    startVector(const std::vector<std::string> &ids);

    /** Signal a vector of sandboxes. */
    virtual sim::Task<>
    killVector(const std::vector<std::string> &ids, int signal);

    /** Delete a vector of sandboxes. */
    virtual sim::Task<>
    destroyVector(const std::vector<std::string> &ids);
    ///@}
};

} // namespace molecule::sandbox

#endif // MOLECULE_SANDBOX_OCI_HH
