/**
 * @file
 * runf: the vectorized sandbox runtime for FPGA functions (§3.5).
 *
 * runf maintains FPGA serverless instance states and drives the
 * device:
 *
 *  - create vector<sandbox, func-id> composes *one* image out of the
 *    whole vector (wrapper + one kernel slot per sandbox) and programs
 *    it, so later requests likely hit a cached instance;
 *  - start  vector<sandbox-id> prepares sandboxes concurrently; a
 *    warm sandbox dispatches in kFpgaSandboxPrepCost (53 ms) or less;
 *  - delete is a state-only operation: the resident image keeps its
 *    slots and the *next* create replaces the hardware (no erase);
 *  - the Baseline ablation path erases the device before programming
 *    (Fig 10-c).
 *
 * Data movement: invocation inputs/outputs cross the PCIe DMA link
 * unless zero-copy chaining via DRAM data retention is used (§4.3,
 * Fig 13), in which case the data stays in the function's bank.
 */

#ifndef MOLECULE_SANDBOX_RUNF_HH
#define MOLECULE_SANDBOX_RUNF_HH

#include <map>
#include <set>
#include <string>

#include "hw/interconnect.hh"
#include "os/kernel.hh"
#include "sandbox/oci.hh"

namespace molecule::sandbox {

/** Knobs for the Fig 10-c startup ablation. */
struct RunfOptions
{
    /** Erase the fabric before programming (the naive Baseline). */
    bool eraseBeforeProgram = false;
    /** Bitstream is cached host-side (Warm-image path). */
    bool bitstreamCached = false;
    /** Keep DRAM bank contents across reprogramming (§4.3). */
    bool retainDram = true;
};

/**
 * FPGA sandbox runtime, hosted by the (virtual) shim of a neighbor PU.
 */
class RunfRuntime : public VectorizedSandboxRuntime
{
  public:
    RunfRuntime(os::LocalOs &hostOs, hw::FpgaDevice &device);

    hw::FpgaDevice &device() { return device_; }

    RunfOptions &options() { return options_; }

    /** @name OCI surface (scalar ops wrap one-element vectors) */
    ///@{
    SandboxState state(const std::string &sandboxId) override;

    sim::Task<bool> create(const CreateRequest &req) override;

    sim::Task<bool> start(const std::string &sandboxId) override;

    sim::Task<> kill(const std::string &sandboxId, int signal) override;

    /** State-only delete (§3.5): real destroy is the next create. */
    sim::Task<> destroy(const std::string &sandboxId) override;
    ///@}

    /** @name Vectorized surface (genuinely batched) */
    ///@{

    /**
     * Compose one image from all requests and program it, replacing
     * the resident image. Typed failures: NoCapacity when the vector
     * exceeds the fabric resources, FpgaReconfigFailed when an
     * injected reconfiguration failure fires mid-flash.
     */
    sim::Task<core::Expected<int>>
    createVector(const std::vector<CreateRequest> &reqs) override;

    /** Prepare sandboxes concurrently (start vector<sandbox-id>). */
    sim::Task<int>
    startVector(const std::vector<std::string> &ids) override;
    ///@}

    /**
     * Handle one request: DMA the input to the device (or find it
     * retained in the function's DRAM bank), run the kernel, DMA the
     * output back (or leave it in the bank for the next function).
     */
    sim::Task<> invoke(const std::string &sandboxId,
                       sim::SimTime kernelTime, std::uint64_t inBytes,
                       std::uint64_t outBytes, bool zeroCopyIn,
                       bool zeroCopyOut, obs::SpanContext ctx = {});

    /** True when the function's slot survives in the resident image. */
    bool cached(const std::string &funcId) const;

    /** True when the sandbox is warm (prep already paid). */
    bool warm(const std::string &sandboxId) const;

  private:
    struct FpgaSandbox
    {
        std::string id;
        const FunctionImage *image = nullptr;
        SandboxState state = SandboxState::Unknown;
        bool warm = false;
    };

    FpgaSandbox *find(const std::string &sandboxId);

    os::LocalOs &hostOs_;
    hw::FpgaDevice &device_;
    RunfOptions options_;
    hw::Link dmaLink_;
    std::map<std::string, FpgaSandbox> sandboxes_;
    std::uint64_t nextImageId_ = 1;
};

} // namespace molecule::sandbox

#endif // MOLECULE_SANDBOX_RUNF_HH
