/**
 * @file
 * XPU-Shim: the distributed shim between one serverless runtime and the
 * multiple local OSes of a heterogeneous computer (§3).
 *
 * One XpuShim instance runs (as a pinned user-space process) on every
 * general-purpose PU; accelerators get *virtual* shim instances hosted
 * on a neighbor PU (§4.1). Shims replicate global state — distributed
 * objects and capabilities — with three strategies (§5):
 *
 *  - no synchronization for statically partitioned ids (pids, ObjIds);
 *  - immediate synchronization for xfifo_init and capability updates,
 *    so permission checks are always local;
 *  - lazy, batched synchronization for harmless-stale state (object
 *    reclamation when an XPU-FIFO's refcount reaches zero).
 *
 * XPU-FIFO: the backing queue lives on the creator's PU (home). Writes
 * from other PUs cross the interconnect (nIPC); the measured latencies
 * of Fig 8 are exactly this path under the three XPUcall transports.
 */

#ifndef MOLECULE_XPU_SHIM_HH
#define MOLECULE_XPU_SHIM_HH

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/status.hh"
#include "fault/state.hh"
#include "hw/computer.hh"
#include "obs/trace.hh"
#include "os/fifo.hh"
#include "os/kernel.hh"
#include "xpu/capability.hh"
#include "xpu/message.hh"
#include "xpu/transport.hh"

namespace molecule::xpu {

class XpuShimNetwork;

/** A capability passed to xSpawn's capv argument (Table 2). */
struct CapGrant
{
    ObjId obj = 0;
    Perm perm = Perm::None;
};

/**
 * The shim instance of one PU.
 */
class XpuShim
{
  public:
    /**
     * @param net the computer-wide shim network
     * @param os the local OS this shim runs on
     * @param transport XPUcall transport used by processes on this PU
     */
    XpuShim(XpuShimNetwork &net, os::LocalOs &os, TransportKind transport);

    PuId puId() const;

    os::LocalOs &localOs() { return os_; }

    const Transport &transport() const { return transport_; }

    void setTransport(TransportKind kind) { transport_ = Transport(kind); }

    CapabilityStore &caps() { return caps_; }
    const CapabilityStore &caps() const { return caps_; }

    /** Charge this shim's per-call handling cost (decode + checks). */
    sim::Task<> handleCost();

    /**
     * Configure multi-threaded XPUcall handling (§5): each shim thread
     * polls a dedicated MPSC queue, so up to @p n calls are decoded
     * concurrently. Default 1.
     */
    void setHandlerThreads(int n);

    int handlerThreads() const { return handlerThreads_; }

    /** @name XPUcall backends (Table 2), invoked via XpuClient. */
    ///@{

    [[nodiscard]] sim::Task<core::Status>
    grantCap(XpuPid caller, XpuPid target, ObjId obj, Perm perm,
             obs::SpanContext ctx = {});

    [[nodiscard]] sim::Task<core::Status>
    revokeCap(XpuPid caller, XpuPid target, ObjId obj, Perm perm,
              obs::SpanContext ctx = {});

    /**
     * Create an XPU-FIFO homed on this PU. The global UUID must be
     * unique computer-wide, which is why this call synchronizes
     * immediately with every peer shim.
     */
    [[nodiscard]] sim::Task<core::Expected<ObjId>>
    xfifoInit(XpuPid caller, const std::string &globalUuid,
              obs::SpanContext ctx = {});

    /** Connect to an XPU-FIFO by global UUID (needs Read or Write). */
    [[nodiscard]] sim::Task<core::Expected<ObjId>>
    xfifoConnect(XpuPid caller, const std::string &globalUuid);

    /** Write @p bytes (payload rides shared memory / the wire). */
    [[nodiscard]] sim::Task<core::Status>
    xfifoWrite(XpuPid caller, ObjId obj, std::uint64_t bytes,
               const std::string &tag, obs::SpanContext ctx = {});

    /** Blocking read from an XPU-FIFO. Fails typed — never hangs —
     * when the fifo's home PU crashes while the read is pending. */
    [[nodiscard]] sim::Task<core::Expected<os::FifoMessage>>
    xfifoRead(XpuPid caller, ObjId obj, obs::SpanContext ctx = {});

    /** Drop one reference; reclamation syncs lazily. */
    [[nodiscard]] sim::Task<core::Status>
    xfifoClose(XpuPid caller, ObjId obj);

    /**
     * Spawn @p path on PU @p target, granting @p capv to the child
     * (no permissions are inherited implicitly, §3.4).
     */
    [[nodiscard]] sim::Task<core::Expected<XpuPid>>
    xspawn(XpuPid caller, PuId target, const std::string &path,
           const std::vector<CapGrant> &capv, std::uint64_t memBytes,
           obs::SpanContext ctx = {});
    ///@}

    /** @name Crash & restart recovery */
    ///@{

    /**
     * The PU hosting this shim crashed: fail every pending blocking
     * read with a typed error (the backing queues are poisoned and
     * retired, never destroyed under a suspended getter), drop the
     * lazy queue and reset the capability replica — a reboot loses
     * all local OS state (§3.2).
     */
    void crashLocal();

    /** Rebuild the capability replica from a live peer (restart). */
    void resyncFrom(XpuShim &peer);
    ///@}

    /** @name Inter-shim plumbing */
    ///@{

    /** Apply one replicated update locally (charges apply cost). */
    sim::Task<> applySync(const SyncMessage &msg);

    /** Immediate synchronization: deliver to all peers, await acks. */
    sim::Task<> broadcastImmediate(const SyncMessage &msg,
                                   obs::SpanContext ctx = {});

    /** Queue a lazy update; flushes in batches. */
    sim::Task<> enqueueLazy(const SyncMessage &msg);

    /** Force the lazy queue out (tests / shutdown). */
    sim::Task<> flushLazy();

    std::size_t lazyQueueDepth() const { return lazyQueue_.size(); }
    ///@}

    /** @name Introspection / stats */
    ///@{
    std::int64_t xpucallCount() const { return xpucalls_; }

    std::int64_t syncMessagesSent() const { return syncSent_; }

    /** Live backing queues on this PU (homed XPU-FIFOs). */
    std::size_t homedFifoCount() const { return queues_.size(); }
    ///@}

  private:
    friend class XpuClient;

    struct HomedFifo
    {
        std::unique_ptr<sim::Mailbox<os::FifoMessage>> queue;
        int refCount = 0;
    };

    /** Deliver a write into a fifo homed here (charges handling). */
    [[nodiscard]] sim::Task<core::Status>
    deliverLocal(ObjId obj, std::uint64_t bytes, const std::string &tag);

    /** Blocking pop from a fifo homed here. */
    [[nodiscard]] sim::Task<core::Expected<os::FifoMessage>>
    consumeLocal(ObjId obj);

    HomedFifo *findHomed(ObjId obj);

    /** Batch size that triggers a lazy flush. */
    static constexpr std::size_t kLazyBatch = 8;

    XpuShimNetwork &net_;
    os::LocalOs &os_;
    Transport transport_;
    int handlerThreads_ = 1;
    std::unique_ptr<sim::Semaphore> handlerSlots_;
    CapabilityStore caps_;
    std::map<ObjId, HomedFifo> queues_;
    /** Poisoned queues retired at crash: suspended getters woken by
     * the poison still touch the mailbox when they resume, so it must
     * outlive the crash instant. */
    std::vector<std::unique_ptr<sim::Mailbox<os::FifoMessage>>>
        deadQueues_;
    std::vector<SyncMessage> lazyQueue_;
    /** Tracked: a same-tick enqueue/flush pair changes which batch a
     * lazy update rides in, decided only by the event tie-break. */
    sim::analysis::Tracked<std::uint64_t> lazyEpoch_{0, "xpu.lazyQueue"};
    std::int64_t xpucalls_ = 0;
    std::int64_t syncSent_ = 0;
};

/**
 * All shims of one heterogeneous computer plus the program registry
 * used by xSpawn.
 */
class XpuShimNetwork
{
  public:
    /** Factory invoked when xSpawn starts @p path somewhere. */
    using ProgramHook =
        std::function<void(XpuShim &shim, os::Process &proc)>;

    explicit XpuShimNetwork(hw::Computer &computer)
        : computer_(computer)
    {}

    XpuShimNetwork(const XpuShimNetwork &) = delete;
    XpuShimNetwork &operator=(const XpuShimNetwork &) = delete;

    hw::Computer &computer() { return computer_; }

    /** Create the shim for @p os's PU. */
    XpuShim *addShim(os::LocalOs &os, TransportKind transport);

    /** Shim on PU @p pu (fatal when absent). */
    XpuShim &shimOn(PuId pu);

    bool hasShim(PuId pu) const;

    std::vector<XpuShim *> allShims();

    /** Wire the fault state in (nullptr = fault-free, the default). */
    void attachFaults(const fault::FaultState *faults)
    {
        faults_ = faults;
    }

    /** True when @p pu is currently crashed (always false unfaulted). */
    bool puDown(PuId pu) const
    {
        return faults_ != nullptr && !faults_->puUp(pu);
    }

    /** Register the behavior behind an xSpawn'able program path. */
    void registerProgram(const std::string &path, ProgramHook hook);

    const ProgramHook *findProgram(const std::string &path) const;

    /** Move @p bytes between two PUs across the topology. */
    sim::Task<> transfer(PuId from, PuId to, std::uint64_t bytes,
                         obs::SpanContext ctx = {});

    /** Closed-form link latency (diagnostics). */
    sim::SimTime transferLatency(PuId from, PuId to,
                                 std::uint64_t bytes) const;

    /** Default xSpawn'd process image size (paper: thin executor). */
    static constexpr std::uint64_t kDefaultSpawnBytes = 8ULL << 20;

  private:
    hw::Computer &computer_;
    const fault::FaultState *faults_ = nullptr;
    std::map<PuId, std::unique_ptr<XpuShim>> shims_;
    std::map<std::string, ProgramHook> programs_;
};

} // namespace molecule::xpu

#endif // MOLECULE_XPU_SHIM_HH
