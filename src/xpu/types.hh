/**
 * @file
 * Identifiers of the XPU-Shim layer (§3). XPUcall outcomes are typed
 * with core::Status / core::Expected (core/status.hh).
 */

#ifndef MOLECULE_XPU_TYPES_HH
#define MOLECULE_XPU_TYPES_HH

#include <compare>
#include <cstdint>
#include <string>

#include "os/process.hh"

namespace molecule::xpu {

/** Processing-unit id within one heterogeneous computer. */
using PuId = int;

/** Per-process XPU-FIFO descriptor. */
using XpuFd = int;

/** Id of a distributed object (IPC object, CAP_Group). */
using ObjId = std::uint64_t;

/**
 * Globally unique process id: PU-id plus the local OS pid (§3.2
 * "Global process"). The static encoding partitions the id space per
 * PU, which is what lets process creation skip synchronization.
 */
struct XpuPid
{
    PuId pu = -1;
    os::Pid local = -1;

    /** Pack into one 64-bit value (PU in the high 32 bits). */
    std::uint64_t
    encode() const
    {
        return (std::uint64_t(std::uint32_t(pu)) << 32) |
               std::uint64_t(std::uint32_t(local));
    }

    static XpuPid
    decode(std::uint64_t v)
    {
        return XpuPid{PuId(v >> 32), os::Pid(v & 0xffffffffu)};
    }

    bool valid() const { return pu >= 0 && local >= 0; }

    auto operator<=>(const XpuPid &) const = default;

    std::string
    toString() const
    {
        return "pu" + std::to_string(pu) + ":" + std::to_string(local);
    }
};

/** Capability permission bits (§3.2). */
enum class Perm : std::uint32_t {
    None = 0,
    Read = 1u << 0,
    Write = 1u << 1,
    /** May grant/revoke permissions on the object to others. */
    Owner = 1u << 2,
};

constexpr Perm
operator|(Perm a, Perm b)
{
    return Perm(std::uint32_t(a) | std::uint32_t(b));
}

constexpr Perm
operator&(Perm a, Perm b)
{
    return Perm(std::uint32_t(a) & std::uint32_t(b));
}

constexpr Perm
operator~(Perm a)
{
    return Perm(~std::uint32_t(a));
}

/** True when @p have includes every bit of @p need. */
constexpr bool
hasPerm(Perm have, Perm need)
{
    return (std::uint32_t(have) & std::uint32_t(need)) ==
           std::uint32_t(need);
}

} // namespace molecule::xpu

#endif // MOLECULE_XPU_TYPES_HH
