#include "xpu/capability.hh"

namespace molecule::xpu {

void
CapGroup::add(ObjId obj, Perm perm)
{
    caps_[obj] = caps_.count(obj) ? (caps_[obj] | perm) : perm;
}

void
CapGroup::remove(ObjId obj, Perm perm)
{
    auto it = caps_.find(obj);
    if (it == caps_.end())
        return;
    it->second = it->second & ~perm;
    if (it->second == Perm::None)
        caps_.erase(it);
}

Perm
CapGroup::lookup(ObjId obj) const
{
    auto it = caps_.find(obj);
    return it == caps_.end() ? Perm::None : it->second;
}

ObjId
CapabilityStore::allocateId()
{
    return (std::uint64_t(std::uint32_t(self_)) << 48) | nextLocal_++;
}

void
CapabilityStore::registerObject(const DistributedObject &obj)
{
    version_.fetchAdd(1);
    objects_[obj.id] = obj;
    if (!obj.uuid.empty())
        byUuid_[obj.uuid] = obj.id;
}

void
CapabilityStore::removeObject(ObjId id)
{
    auto it = objects_.find(id);
    if (it == objects_.end())
        return;
    version_.fetchAdd(1);
    if (!it->second.uuid.empty())
        byUuid_.erase(it->second.uuid);
    objects_.erase(it);
}

void
CapabilityStore::applyGrant(XpuPid pid, ObjId obj, Perm perm)
{
    version_.fetchAdd(1);
    auto [it, inserted] = groups_.try_emplace(pid.encode(), pid);
    (void)inserted;
    it->second.add(obj, perm);
}

void
CapabilityStore::applyRevoke(XpuPid pid, ObjId obj, Perm perm)
{
    version_.fetchAdd(1);
    auto it = groups_.find(pid.encode());
    if (it == groups_.end())
        return;
    it->second.remove(obj, perm);
}

const DistributedObject *
CapabilityStore::findObject(ObjId id) const
{
    version_.read();
    auto it = objects_.find(id);
    return it == objects_.end() ? nullptr : &it->second;
}

const DistributedObject *
CapabilityStore::findByUuid(const std::string &uuid) const
{
    version_.read();
    auto it = byUuid_.find(uuid);
    return it == byUuid_.end() ? nullptr : findObject(it->second);
}

bool
CapabilityStore::check(XpuPid pid, ObjId obj, Perm need) const
{
    return hasPerm(lookup(pid, obj), need);
}

Perm
CapabilityStore::lookup(XpuPid pid, ObjId obj) const
{
    version_.read();
    auto it = groups_.find(pid.encode());
    return it == groups_.end() ? Perm::None : it->second.lookup(obj);
}

void
CapabilityStore::reset()
{
    // A PU reboot drops the replica wholesale; the id partition
    // survives (nextLocal_ stays monotonic so reallocated ids never
    // collide with pre-crash ones still replicated on peers).
    version_.fetchAdd(1);
    objects_.clear();
    byUuid_.clear();
    groups_.clear();
}

void
CapabilityStore::cloneFrom(const CapabilityStore &peer)
{
    version_.fetchAdd(1);
    objects_ = peer.objects_;
    byUuid_ = peer.byUuid_;
    groups_ = peer.groups_;
}

} // namespace molecule::xpu
