/**
 * @file
 * The XPUcall client library (the "XPU-Shim library" of §5).
 *
 * XpuClient is linked into a process and exposes the Table 2 XPUcall
 * surface. Each call charges the transport costs of crossing into the
 * local shim and back (Figure 7), plus per-byte marshalling of bulk
 * payloads into the per-process shared-memory argument area.
 */

#ifndef MOLECULE_XPU_CLIENT_HH
#define MOLECULE_XPU_CLIENT_HH

#include <map>
#include <string>
#include <vector>

#include "xpu/shim.hh"

namespace molecule::xpu {

/**
 * Per-process handle to the local shim.
 */
class XpuClient
{
  public:
    /** Attach the library to @p proc, using the shim of its PU. */
    XpuClient(XpuShim &shim, os::Process &proc);

    /** Table 2 get_xpupid: purely local, no XPUcall. */
    XpuPid xpuPid() const { return self_; }

    XpuShim &shim() { return shim_; }

    /**
     * Causal parent for subsequent XPUcalls. The library itself has no
     * notion of invocations, so the runtime sets the ambient context
     * before driving calls on this client (obs subsystem).
     */
    void setTraceContext(obs::SpanContext ctx) { ctx_ = ctx; }

    obs::SpanContext traceContext() const { return ctx_; }

    /** @name Distributed capability calls */
    ///@{
    [[nodiscard]] sim::Task<core::Status>
    grantCap(XpuPid target, ObjId obj, Perm perm);

    [[nodiscard]] sim::Task<core::Status>
    revokeCap(XpuPid target, ObjId obj, Perm perm);
    ///@}

    /** @name Neighbor IPC (XPU-FIFO) calls */
    ///@{

    /** Create an XPU-FIFO homed on this PU. */
    [[nodiscard]] sim::Task<core::Expected<XpuFd>>
    xfifoInit(const std::string &globalUuid);

    [[nodiscard]] sim::Task<core::Expected<XpuFd>>
    xfifoConnect(const std::string &globalUuid);

    [[nodiscard]] sim::Task<core::Status>
    xfifoWrite(XpuFd fd, std::uint64_t bytes, const std::string &tag);

    [[nodiscard]] sim::Task<core::Expected<os::FifoMessage>>
    xfifoRead(XpuFd fd);

    [[nodiscard]] sim::Task<core::Status>
    xfifoClose(XpuFd fd);
    ///@}

    /** Table 2 xSpawn. */
    [[nodiscard]] sim::Task<core::Expected<XpuPid>>
    xspawn(PuId target, const std::string &path,
           const std::vector<CapGrant> &capv,
           std::uint64_t memBytes = XpuShimNetwork::kDefaultSpawnBytes);

    /** Distributed object behind an fd (0 when unknown). */
    ObjId objectOf(XpuFd fd) const;

  private:
    /** Charge the client->shim crossing for a small-argument call. */
    sim::Task<> enterCall(std::uint64_t argBytes);

    /** Charge the shim->client crossing. */
    sim::Task<> leaveCall(std::uint64_t resultBytes);

    /** Charge marshalling @p bytes through the shared-memory area. */
    sim::Task<> marshalBulk(std::uint64_t bytes);

    XpuShim &shim_;
    XpuPid self_;
    obs::SpanContext ctx_;
    std::map<XpuFd, ObjId> fds_;
    XpuFd nextFd_ = 3;
};

} // namespace molecule::xpu

#endif // MOLECULE_XPU_CLIENT_HH
