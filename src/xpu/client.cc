#include "xpu/client.hh"

#include "hw/calibration.hh"

namespace molecule::xpu {

namespace calib = hw::calib;

XpuClient::XpuClient(XpuShim &shim, os::Process &proc)
    : shim_(shim), self_{shim.puId(), proc.pid()}
{}

sim::Task<>
XpuClient::enterCall(std::uint64_t argBytes)
{
    const auto cost =
        shim_.transport().requestCost(shim_.localOs().pu(), argBytes);
    co_await shim_.localOs().simulation().delay(cost);
}

sim::Task<>
XpuClient::leaveCall(std::uint64_t resultBytes)
{
    const auto cost =
        shim_.transport().responseCost(shim_.localOs().pu(), resultBytes);
    co_await shim_.localOs().simulation().delay(cost);
}

sim::Task<>
XpuClient::marshalBulk(std::uint64_t bytes)
{
    // memcpy into the per-process shared-memory argument area (§5);
    // scales with the PU's core speed like other software costs.
    const auto copy = sim::SimTime::nanoseconds(
        std::int64_t(double(bytes) * calib::kFifoCopyNsPerByte));
    co_await shim_.localOs().swDelay(copy);
}

sim::Task<core::Status>
XpuClient::grantCap(XpuPid target, ObjId obj, Perm perm)
{
    obs::Span span(ctx_, "xpu.grantCap", obs::Layer::Xpu, shim_.puId());
    co_await enterCall(32);
    core::Status st = co_await shim_.grantCap(self_, target, obj, perm,
                                              span.ctx());
    co_await leaveCall(8);
    co_return st;
}

sim::Task<core::Status>
XpuClient::revokeCap(XpuPid target, ObjId obj, Perm perm)
{
    obs::Span span(ctx_, "xpu.revokeCap", obs::Layer::Xpu, shim_.puId());
    co_await enterCall(32);
    core::Status st = co_await shim_.revokeCap(self_, target, obj, perm,
                                               span.ctx());
    co_await leaveCall(8);
    co_return st;
}

sim::Task<core::Expected<XpuFd>>
XpuClient::xfifoInit(const std::string &globalUuid)
{
    std::string uuid = globalUuid;
    obs::Span span(ctx_, "xpu.xfifoInit", obs::Layer::Xpu, shim_.puId());
    co_await enterCall(32 + uuid.size());
    core::Expected<ObjId> r =
        co_await shim_.xfifoInit(self_, uuid, span.ctx());
    co_await leaveCall(16);
    if (!r.ok())
        co_return r.error();
    const XpuFd fd = nextFd_++;
    fds_[fd] = r.value();
    co_return core::Expected<XpuFd>(fd);
}

sim::Task<core::Expected<XpuFd>>
XpuClient::xfifoConnect(const std::string &globalUuid)
{
    std::string uuid = globalUuid;
    obs::Span span(ctx_, "xpu.xfifoConnect", obs::Layer::Xpu,
                   shim_.puId());
    co_await enterCall(32 + uuid.size());
    core::Expected<ObjId> r = co_await shim_.xfifoConnect(self_, uuid);
    co_await leaveCall(16);
    if (!r.ok())
        co_return r.error();
    const XpuFd fd = nextFd_++;
    fds_[fd] = r.value();
    co_return core::Expected<XpuFd>(fd);
}

sim::Task<core::Status>
XpuClient::xfifoWrite(XpuFd fd, std::uint64_t bytes,
                      const std::string &tag)
{
    std::string owned_tag = tag;
    auto it = fds_.find(fd);
    if (it == fds_.end())
        co_return core::Status(core::Errc::InvalidArgument,
                               "unknown fd", shim_.puId());
    const ObjId obj = it->second;
    obs::Span span(ctx_, "xpu.xfifoWrite", obs::Layer::Xpu,
                   shim_.puId());
    span.setArg(std::int64_t(bytes));
    co_await marshalBulk(bytes);
    co_await enterCall(48);
    core::Status st = co_await shim_.xfifoWrite(self_, obj, bytes,
                                                owned_tag, span.ctx());
    co_await leaveCall(8);
    co_return st;
}

sim::Task<core::Expected<os::FifoMessage>>
XpuClient::xfifoRead(XpuFd fd)
{
    auto it = fds_.find(fd);
    if (it == fds_.end())
        co_return core::Error(core::Errc::InvalidArgument,
                              "unknown fd", shim_.puId());
    const ObjId obj = it->second;
    obs::Span span(ctx_, "xpu.xfifoRead", obs::Layer::Xpu, shim_.puId());
    co_await enterCall(16);
    core::Expected<os::FifoMessage> r =
        co_await shim_.xfifoRead(self_, obj, span.ctx());
    if (!r.ok())
        co_return r;
    // Unmarshal the payload out of the shared-memory result area.
    co_await marshalBulk(r.value().bytes);
    co_await leaveCall(16);
    co_return r;
}

sim::Task<core::Status>
XpuClient::xfifoClose(XpuFd fd)
{
    auto it = fds_.find(fd);
    if (it == fds_.end())
        co_return core::Status(core::Errc::InvalidArgument,
                               "unknown fd", shim_.puId());
    const ObjId obj = it->second;
    fds_.erase(it);
    obs::Span span(ctx_, "xpu.xfifoClose", obs::Layer::Xpu,
                   shim_.puId());
    co_await enterCall(16);
    core::Status st = co_await shim_.xfifoClose(self_, obj);
    co_await leaveCall(8);
    co_return st;
}

sim::Task<core::Expected<XpuPid>>
XpuClient::xspawn(PuId target, const std::string &path,
                  const std::vector<CapGrant> &capv,
                  std::uint64_t memBytes)
{
    std::string owned_path = path;
    std::vector<CapGrant> owned_capv = capv;
    obs::Span span(ctx_, "xpu.xspawn", obs::Layer::Xpu, shim_.puId());
    co_await enterCall(64 + owned_path.size());
    core::Expected<XpuPid> r =
        co_await shim_.xspawn(self_, target, owned_path, owned_capv,
                              memBytes, span.ctx());
    co_await leaveCall(16);
    co_return r;
}

ObjId
XpuClient::objectOf(XpuFd fd) const
{
    auto it = fds_.find(fd);
    return it == fds_.end() ? 0 : it->second;
}

} // namespace molecule::xpu
