/**
 * @file
 * Distributed capabilities (§3.2).
 *
 * XPU-Shim manages global resources with two distributed objects:
 * CAP_Group (the capability list of a process) and IPC objects
 * (XPU-FIFO endpoints). Capability updates synchronize *immediately*
 * across PUs (§5 "Inter-PU synchronization") so every permission check
 * is a purely local lookup; this store is the per-shim replica.
 */

#ifndef MOLECULE_XPU_CAPABILITY_HH
#define MOLECULE_XPU_CAPABILITY_HH

#include <map>
#include <string>

#include "sim/analysis.hh"
#include "xpu/types.hh"

namespace molecule::xpu {

/** Kind of a distributed object. */
enum class ObjType { Ipc, CapGroup };

/** Descriptor of a distributed object, replicated on every shim. */
struct DistributedObject
{
    ObjId id = 0;
    ObjType type = ObjType::Ipc;
    XpuPid owner;
    /** Home PU for IPC objects (where the backing queue lives). */
    PuId homePu = -1;
    /** Global UUID for IPC objects (xfifo_connect key). */
    std::string uuid;
};

/**
 * Per-process capability list (the CAP_Group object's payload).
 */
class CapGroup
{
  public:
    CapGroup() = default;

    explicit CapGroup(XpuPid pid) : pid_(pid) {}

    XpuPid pid() const { return pid_; }

    /** Add permission bits for an object. */
    void add(ObjId obj, Perm perm);

    /** Remove permission bits; drops the entry when nothing is left. */
    void remove(ObjId obj, Perm perm);

    /** Permission bits this process holds on @p obj. */
    Perm lookup(ObjId obj) const;

    bool has(ObjId obj, Perm need) const
    {
        return hasPerm(lookup(obj), need);
    }

    std::size_t size() const { return caps_.size(); }

  private:
    XpuPid pid_;
    std::map<ObjId, Perm> caps_;
};

/**
 * One shim's replica of the global capability/object state.
 *
 * Object-id allocation is statically partitioned by PU (ids carry the
 * allocating PU in their high bits) so allocation never synchronizes,
 * mirroring the pid scheme.
 */
class CapabilityStore
{
  public:
    explicit CapabilityStore(PuId self) : self_(self) {}

    /** Allocate a fresh object id in this PU's partition. */
    ObjId allocateId();

    /** @name Replicated state updates (applied locally and on sync) */
    ///@{

    /** Register (or overwrite) a distributed object descriptor. */
    void registerObject(const DistributedObject &obj);

    void removeObject(ObjId id);

    /** Apply a capability grant. Creates the CAP_Group on demand. */
    void applyGrant(XpuPid pid, ObjId obj, Perm perm);

    /** Apply a capability revoke. */
    void applyRevoke(XpuPid pid, ObjId obj, Perm perm);

    /** Drop the whole replica (PU crash: reboot loses local state). */
    void reset();

    /** Re-populate from a live peer's replica (restart recovery). */
    void cloneFrom(const CapabilityStore &peer);
    ///@}

    /** @name Local queries (always synchronous, §5) */
    ///@{

    const DistributedObject *findObject(ObjId id) const;

    const DistributedObject *findByUuid(const std::string &uuid) const;

    /** Permission check: does @p pid hold @p need on @p obj? */
    bool check(XpuPid pid, ObjId obj, Perm need) const;

    Perm lookup(XpuPid pid, ObjId obj) const;

    std::size_t objectCount() const { return objects_.size(); }

    std::size_t groupCount() const { return groups_.size(); }
    ///@}

  private:
    PuId self_;
    std::uint64_t nextLocal_ = 1;
    std::map<ObjId, DistributedObject> objects_;
    std::map<std::string, ObjId> byUuid_;
    std::map<std::uint64_t, CapGroup> groups_; // key: XpuPid::encode()
    /** Replica version: bumped by every replicated-state update, read
     * by every local query. A same-tick update/check pair on one
     * replica depends only on the event tie-break — the exact hazard
     * behind "immediate synchronization" (§5). */
    sim::analysis::Tracked<std::uint64_t> version_{0, "xpu.caps"};
};

} // namespace molecule::xpu

#endif // MOLECULE_XPU_CAPABILITY_HH
