#include "xpu/transport.hh"

#include "hw/calibration.hh"

namespace molecule::xpu {

namespace calib = hw::calib;

const char *
toString(TransportKind k)
{
    switch (k) {
      case TransportKind::Fifo:
        return "nIPC-Base";
      case TransportKind::Mpsc:
        return "nIPC-MPSC";
      case TransportKind::MpscPoll:
        return "nIPC-Poll";
    }
    return "?";
}

sim::SimTime
Transport::fifoOneWay(const hw::ProcessingUnit &pu, std::uint64_t bytes)
{
    // Sender write(2) + kernel copy + receiver wakeup + read(2).
    const auto copy = sim::SimTime::nanoseconds(
        std::int64_t(double(bytes) * calib::kFifoCopyNsPerByte));
    return pu.swCost(calib::kSyscallCost * 2.0 +
                     calib::kSchedWakeupCost + copy);
}

sim::SimTime
Transport::requestCost(const hw::ProcessingUnit &pu,
                       std::uint64_t bytes) const
{
    switch (kind_) {
      case TransportKind::Fifo:
        // Small arguments cross the FIFO; bulk data rides shared
        // memory, so only header-ish bytes pay the copy (§5).
        return fifoOneWay(pu, bytes);
      case TransportKind::Mpsc:
      case TransportKind::MpscPoll:
        // Lock-free enqueue by the client, then the polling shim
        // notices the entry within a poll gap. The queue entry only
        // names the caller; arguments sit in per-process shared
        // memory (§5 security note), so no per-byte term.
        return pu.swCost(calib::kMpscEnqueueCost) + calib::kShimPollGap;
    }
    return sim::SimTime(0);
}

sim::SimTime
Transport::responseCost(const hw::ProcessingUnit &pu,
                        std::uint64_t bytes) const
{
    switch (kind_) {
      case TransportKind::Fifo:
      case TransportKind::Mpsc:
        // Response IPC: the shim writes a FIFO the client blocks on.
        return fifoOneWay(pu, bytes);
      case TransportKind::MpscPoll:
        // The client spins on shared memory: shim store + client
        // pickup, no syscalls and no wakeup.
        return pu.swCost(calib::kShmResponsePollCost);
    }
    return sim::SimTime(0);
}

} // namespace molecule::xpu
