/**
 * @file
 * Inter-shim synchronization messages (§5 "Inter-PU synchronization").
 */

#ifndef MOLECULE_XPU_MESSAGE_HH
#define MOLECULE_XPU_MESSAGE_HH

#include <cstdint>

#include "xpu/capability.hh"

namespace molecule::xpu {

/** What a synchronization message does at the receiving shim. */
enum class SyncOp {
    /** Replicate a new distributed object (+ owner capabilities). */
    RegisterObject,
    /** Drop a distributed object (lazy path: refcount reached zero). */
    RemoveObject,
    /** Replicate a capability grant. */
    Grant,
    /** Replicate a capability revoke. */
    Revoke,
};

/**
 * One replicated state update. RegisterObject carries the full object
 * descriptor; the other ops are (pid, obj, perm) triples.
 */
struct SyncMessage
{
    SyncOp op = SyncOp::Grant;
    DistributedObject obj;
    ObjId objId = 0;
    XpuPid pid;
    Perm perm = Perm::None;

    /** Wire size: fixed header + uuid payload for registrations. */
    std::uint64_t
    wireBytes() const
    {
        return 48 + (op == SyncOp::RegisterObject ? obj.uuid.size() : 0);
    }
};

} // namespace molecule::xpu

#endif // MOLECULE_XPU_MESSAGE_HH
