#include "xpu/shim.hh"

#include "hw/calibration.hh"
#include "sim/logging.hh"

namespace molecule::xpu {

namespace calib = hw::calib;

XpuShim::XpuShim(XpuShimNetwork &net, os::LocalOs &os,
                 TransportKind transport)
    : net_(net), os_(os), transport_(transport), caps_(os.pu().id())
{
    handlerSlots_ =
        std::make_unique<sim::Semaphore>(os.simulation(), 1);
}

void
XpuShim::setHandlerThreads(int n)
{
    MOLECULE_ASSERT(n > 0, "shim needs at least one handler thread");
    handlerThreads_ = n;
    handlerSlots_ =
        std::make_unique<sim::Semaphore>(os_.simulation(),
                                         std::size_t(n));
}

PuId
XpuShim::puId() const
{
    return os_.pu().id();
}

sim::Task<>
XpuShim::handleCost()
{
    // One shim thread decodes one call at a time; with multi-threaded
    // handling (per-thread MPSC queues, §5), calls are decoded
    // concurrently and bursts no longer convoy.
    ++xpucalls_;
    co_await handlerSlots_->acquire();
    sim::SemGuard g(*handlerSlots_);
    co_await os_.swDelay(calib::kShimHandleCost);
}

sim::Task<>
XpuShim::applySync(const SyncMessage &msg)
{
    co_await os_.swDelay(calib::kSyncApplyCost);
    switch (msg.op) {
      case SyncOp::RegisterObject:
        caps_.registerObject(msg.obj);
        // Replicating owner capabilities with the object keeps every
        // permission check local (§5 "Immediate synchronization").
        caps_.applyGrant(msg.obj.owner, msg.obj.id,
                         Perm::Read | Perm::Write | Perm::Owner);
        break;
      case SyncOp::RemoveObject:
        caps_.removeObject(msg.objId);
        break;
      case SyncOp::Grant:
        caps_.applyGrant(msg.pid, msg.objId, msg.perm);
        break;
      case SyncOp::Revoke:
        caps_.applyRevoke(msg.pid, msg.objId, msg.perm);
        break;
    }
}

namespace {

/** One peer delivery: request hop, remote apply, ack hop. */
sim::Task<>
deliverToPeer(XpuShimNetwork &net, PuId from, PuId to, SyncMessage msg,
              obs::SpanContext ctx)
{
    co_await net.transfer(from, to, msg.wireBytes(), ctx);
    co_await net.shimOn(to).applySync(msg);
    co_await net.transfer(to, from, 16, ctx); // ack
}

} // namespace

sim::Task<>
XpuShim::broadcastImmediate(const SyncMessage &msg, obs::SpanContext ctx)
{
    // Apply locally first, then deliver to every peer concurrently and
    // wait for all acks (the call must not return before the state is
    // globally visible).
    obs::Span span(ctx, "xpu.sync", obs::Layer::Xpu, puId());
    co_await applySync(msg);
    std::vector<sim::Task<>> deliveries;
    for (XpuShim *peer : net_.allShims()) {
        if (peer == this)
            continue;
        // Crashed peers drop their replica anyway; they resync from a
        // live shim at restart instead of acking now (never hang).
        if (net_.puDown(peer->puId()))
            continue;
        ++syncSent_;
        deliveries.push_back(
            deliverToPeer(net_, puId(), peer->puId(), msg, span.ctx()));
    }
    span.setArg(std::int64_t(deliveries.size()));
    co_await sim::allOf(os_.simulation(), std::move(deliveries));
}

sim::Task<>
XpuShim::enqueueLazy(const SyncMessage &msg)
{
    // Lazy path (§5): apply locally, batch the remote update. Stale
    // remote state is harmless for reclamation; batching amortizes the
    // wire cost.
    co_await applySync(msg);
    lazyEpoch_.fetchAdd(1);
    lazyQueue_.push_back(msg);
    if (lazyQueue_.size() >= kLazyBatch)
        co_await flushLazy();
}

sim::Task<>
XpuShim::flushLazy()
{
    if (lazyQueue_.empty())
        co_return;
    lazyEpoch_.fetchAdd(1);
    std::vector<SyncMessage> batch;
    batch.swap(lazyQueue_);
    std::uint64_t bytes = 0;
    for (const auto &m : batch)
        bytes += m.wireBytes();
    for (XpuShim *peer : net_.allShims()) {
        if (peer == this)
            continue;
        if (net_.puDown(peer->puId()))
            continue;
        ++syncSent_;
        co_await net_.transfer(puId(), peer->puId(), bytes);
        for (const auto &m : batch)
            co_await peer->applySync(m);
    }
}

sim::Task<core::Status>
XpuShim::grantCap(XpuPid caller, XpuPid target, ObjId obj, Perm perm,
                  obs::SpanContext ctx)
{
    co_await handleCost();
    if (!caps_.check(caller, obj, Perm::Owner))
        co_return core::Status(core::Errc::NoPermission,
                               "caller does not own object", puId());
    SyncMessage msg;
    msg.op = SyncOp::Grant;
    msg.pid = target;
    msg.objId = obj;
    msg.perm = perm;
    co_await broadcastImmediate(msg, ctx);
    co_return core::Status();
}

sim::Task<core::Status>
XpuShim::revokeCap(XpuPid caller, XpuPid target, ObjId obj, Perm perm,
                   obs::SpanContext ctx)
{
    co_await handleCost();
    if (!caps_.check(caller, obj, Perm::Owner))
        co_return core::Status(core::Errc::NoPermission,
                               "caller does not own object", puId());
    SyncMessage msg;
    msg.op = SyncOp::Revoke;
    msg.pid = target;
    msg.objId = obj;
    msg.perm = perm;
    co_await broadcastImmediate(msg, ctx);
    co_return core::Status();
}

sim::Task<core::Expected<ObjId>>
XpuShim::xfifoInit(XpuPid caller, const std::string &globalUuid,
                   obs::SpanContext ctx)
{
    std::string uuid = globalUuid;
    co_await handleCost();
    if (caps_.findByUuid(uuid) != nullptr)
        co_return core::Error(core::Errc::AlreadyExists,
                              "fifo uuid '" + uuid + "' taken", puId());

    DistributedObject obj;
    obj.id = caps_.allocateId();
    obj.type = ObjType::Ipc;
    obj.owner = caller;
    obj.homePu = puId();
    obj.uuid = uuid;

    auto &homed = queues_[obj.id];
    homed.queue =
        std::make_unique<sim::Mailbox<os::FifoMessage>>(os_.simulation());
    homed.refCount = 1;

    SyncMessage msg;
    msg.op = SyncOp::RegisterObject;
    msg.obj = obj;
    // Global UUID uniqueness requires every shim to learn about the
    // fifo before init returns (§5 "Immediate synchronization").
    co_await broadcastImmediate(msg, ctx);
    co_return core::Expected<ObjId>(obj.id);
}

sim::Task<core::Expected<ObjId>>
XpuShim::xfifoConnect(XpuPid caller, const std::string &globalUuid)
{
    std::string uuid = globalUuid;
    co_await handleCost();
    const DistributedObject *obj = caps_.findByUuid(uuid);
    if (!obj)
        co_return core::Error(core::Errc::NotFound,
                              "no fifo with uuid '" + uuid + "'",
                              puId());
    // Connect requires read or write permission (§3.2).
    if (!caps_.check(caller, obj->id, Perm::Read) &&
        !caps_.check(caller, obj->id, Perm::Write)) {
        co_return core::Error(core::Errc::NoPermission,
                              "connect needs read or write", puId());
    }
    const ObjId id = obj->id;
    XpuShim &home = net_.shimOn(obj->homePu);
    if (auto *homed = home.findHomed(id))
        ++homed->refCount;
    co_return core::Expected<ObjId>(id);
}

XpuShim::HomedFifo *
XpuShim::findHomed(ObjId obj)
{
    auto it = queues_.find(obj);
    return it == queues_.end() ? nullptr : &it->second;
}

sim::Task<core::Status>
XpuShim::deliverLocal(ObjId obj, std::uint64_t bytes,
                      const std::string &tag)
{
    HomedFifo *homed = findHomed(obj);
    if (!homed)
        co_return core::Status(core::Errc::NotFound,
                               "fifo not homed here", puId());
    os::FifoMessage msg{bytes, tag};
    co_await homed->queue->put(std::move(msg));
    co_return core::Status();
}

sim::Task<core::Expected<os::FifoMessage>>
XpuShim::consumeLocal(ObjId obj)
{
    HomedFifo *homed = findHomed(obj);
    if (!homed)
        co_return core::Error(core::Errc::NotFound,
                              "fifo not homed here", puId());
    os::FifoMessage msg = co_await homed->queue->get();
    // A "!"-tagged message is a fault sentinel, not payload: the home
    // PU crashed while this read was pending.
    if (!msg.tag.empty() && msg.tag.front() == '!')
        co_return core::Error(core::Errc::PuCrashed,
                              "read failed: " + msg.tag, puId());
    co_return core::Expected<os::FifoMessage>(std::move(msg));
}

sim::Task<core::Status>
XpuShim::xfifoWrite(XpuPid caller, ObjId obj, std::uint64_t bytes,
                    const std::string &tag, obs::SpanContext ctx)
{
    std::string owned_tag = tag;
    co_await handleCost();
    if (!caps_.check(caller, obj, Perm::Write))
        co_return core::Status(core::Errc::NoPermission,
                               "no write capability", puId());
    const DistributedObject *o = caps_.findObject(obj);
    if (!o)
        co_return core::Status(core::Errc::NotFound,
                               "unknown object", puId());

    if (o->homePu == puId()) {
        co_return co_await deliverLocal(obj, bytes, owned_tag);
    }
    const PuId home = o->homePu;
    if (net_.puDown(home))
        co_return core::Status(core::Errc::PuCrashed,
                               "fifo home PU is down", home);
    // nIPC: payload + header cross the interconnect to the home shim,
    // which enqueues after its own handling; a small ack comes back.
    co_await net_.transfer(puId(), home, bytes + 48, ctx);
    XpuShim &homeShim = net_.shimOn(home);
    co_await homeShim.handleCost();
    core::Status st = co_await homeShim.deliverLocal(obj, bytes,
                                                     owned_tag);
    co_await net_.transfer(home, puId(), 16, ctx);
    co_return st;
}

sim::Task<core::Expected<os::FifoMessage>>
XpuShim::xfifoRead(XpuPid caller, ObjId obj, obs::SpanContext ctx)
{
    co_await handleCost();
    if (!caps_.check(caller, obj, Perm::Read))
        co_return core::Error(core::Errc::NoPermission,
                              "no read capability", puId());
    const DistributedObject *o = caps_.findObject(obj);
    if (!o)
        co_return core::Error(core::Errc::NotFound, "unknown object",
                              puId());

    if (o->homePu == puId()) {
        co_return co_await consumeLocal(obj);
    }
    // Remote read: ask the home shim, block there, payload rides the
    // return hop.
    const PuId home = o->homePu;
    if (net_.puDown(home))
        co_return core::Error(core::Errc::PuCrashed,
                              "fifo home PU is down", home);
    co_await net_.transfer(puId(), home, 48, ctx);
    XpuShim &homeShim = net_.shimOn(home);
    co_await homeShim.handleCost();
    core::Expected<os::FifoMessage> r =
        co_await homeShim.consumeLocal(obj);
    if (!r.ok())
        co_return r;
    co_await net_.transfer(home, puId(), r.value().bytes + 16, ctx);
    co_return r;
}

sim::Task<core::Status>
XpuShim::xfifoClose(XpuPid caller, ObjId obj)
{
    co_await handleCost();
    const DistributedObject *o = caps_.findObject(obj);
    if (!o)
        co_return core::Status(core::Errc::NotFound, "unknown object",
                               puId());
    if (!caps_.check(caller, obj, Perm::Read) &&
        !caps_.check(caller, obj, Perm::Write)) {
        co_return core::Status(core::Errc::NoPermission,
                               "close needs read or write", puId());
    }
    XpuShim &home = net_.shimOn(o->homePu);
    HomedFifo *homed = home.findHomed(obj);
    if (homed && --homed->refCount <= 0) {
        home.queues_.erase(obj);
        // Reclamation tolerates staleness: batch it (§5 "Lazy
        // synchronization").
        SyncMessage msg;
        msg.op = SyncOp::RemoveObject;
        msg.objId = obj;
        co_await home.enqueueLazy(msg);
    }
    co_return core::Status();
}

sim::Task<core::Expected<XpuPid>>
XpuShim::xspawn(XpuPid caller, PuId target, const std::string &path,
                const std::vector<CapGrant> &capv,
                std::uint64_t memBytes, obs::SpanContext ctx)
{
    (void)caller; // xSpawn grants nothing implicitly (§3.4)
    std::string owned_path = path;
    std::vector<CapGrant> owned_capv = capv;
    co_await handleCost();
    if (!net_.hasShim(target))
        co_return core::Error(core::Errc::NotFound,
                              "no shim on target PU", target);
    if (net_.puDown(target))
        co_return core::Error(core::Errc::PuCrashed,
                              "target PU is down", target);

    XpuShim &remote = net_.shimOn(target);
    const bool local = target == puId();
    if (!local)
        co_await net_.transfer(puId(), target, 64 + owned_path.size(),
                               ctx);
    co_await remote.handleCost();

    os::Process *proc =
        co_await remote.os_.spawnProcess(owned_path, memBytes, ctx);
    if (!proc) {
        if (!local)
            co_await net_.transfer(target, puId(), 16, ctx);
        co_return core::Error(core::Errc::NoMemory,
                              "spawn exceeds PU memory", target);
    }
    const XpuPid child{target, proc->pid()};

    // No implicit permission inheritance: only capv is granted (§3.4),
    // synchronized immediately like any capability update.
    for (const CapGrant &g : owned_capv) {
        SyncMessage msg;
        msg.op = SyncOp::Grant;
        msg.pid = child;
        msg.objId = g.obj;
        msg.perm = g.perm;
        co_await remote.broadcastImmediate(msg, ctx);
    }

    if (const auto *hook = net_.findProgram(owned_path))
        (*hook)(remote, *proc);

    if (!local)
        co_await net_.transfer(target, puId(), 24, ctx);
    co_return core::Expected<XpuPid>(child);
}

void
XpuShim::crashLocal()
{
    // Wake every blocked getter with a fault sentinel, then retire the
    // queue to the graveyard: woken coroutines resume strictly later
    // in the tick and still touch the mailbox.
    for (auto &[id, homed] : queues_) {
        const std::size_t waiting = homed.queue->waitingGetters();
        for (std::size_t i = 0; i < waiting; ++i)
            homed.queue->tryPut(os::FifoMessage{0, "!fault:pu-crash"});
        deadQueues_.push_back(std::move(homed.queue));
    }
    queues_.clear();
    lazyQueue_.clear();
    caps_.reset();
}

void
XpuShim::resyncFrom(XpuShim &peer)
{
    caps_.cloneFrom(peer.caps());
}

XpuShim *
XpuShimNetwork::addShim(os::LocalOs &os, TransportKind transport)
{
    const PuId pu = os.pu().id();
    MOLECULE_ASSERT(!shims_.count(pu), "PU %d already has a shim", pu);
    auto shim = std::make_unique<XpuShim>(*this, os, transport);
    XpuShim *raw = shim.get();
    shims_[pu] = std::move(shim);
    return raw;
}

XpuShim &
XpuShimNetwork::shimOn(PuId pu)
{
    auto it = shims_.find(pu);
    if (it == shims_.end())
        sim::fatal("no XPU-Shim on PU %d", pu);
    return *it->second;
}

bool
XpuShimNetwork::hasShim(PuId pu) const
{
    return shims_.count(pu) != 0;
}

std::vector<XpuShim *>
XpuShimNetwork::allShims()
{
    std::vector<XpuShim *> out;
    for (auto &[pu, shim] : shims_)
        out.push_back(shim.get());
    return out;
}

void
XpuShimNetwork::registerProgram(const std::string &path, ProgramHook hook)
{
    programs_[path] = std::move(hook);
}

const XpuShimNetwork::ProgramHook *
XpuShimNetwork::findProgram(const std::string &path) const
{
    auto it = programs_.find(path);
    return it == programs_.end() ? nullptr : &it->second;
}

sim::Task<>
XpuShimNetwork::transfer(PuId from, PuId to, std::uint64_t bytes,
                         obs::SpanContext ctx)
{
    if (from == to)
        co_return;
    obs::Span span(ctx, "nipc.transfer", obs::Layer::Xpu, from);
    span.setArg(std::int64_t(bytes));
    co_await computer_.topology().transfer(from, to, bytes, span.ctx());
}

sim::SimTime
XpuShimNetwork::transferLatency(PuId from, PuId to,
                                std::uint64_t bytes) const
{
    if (from == to)
        return sim::SimTime(0);
    return computer_.topology().transferLatency(from, to, bytes);
}

} // namespace molecule::xpu
