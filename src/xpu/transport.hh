/**
 * @file
 * XPUcall transports (§5, Figure 7).
 *
 * An XPUcall crosses from a user process to the XPU-Shim process on
 * the same PU and back. Three implementations:
 *
 *  (a) Fifo      - request and response each take a local-FIFO IPC
 *                  round trip (two syscalls + wakeup + copy);
 *  (b) Mpsc      - requests go through a polled multi-producer
 *                  single-consumer queue (no request IPC), responses
 *                  still via FIFO;
 *  (c) MpscPoll  - MPSC requests plus the client polling shared
 *                  memory for responses (no IPC at all).
 *
 * The transport models the *costs around* the shim; the shim's own
 * handling cost is charged by XpuShim. All software costs scale with
 * the PU's swFactor, which is why the optimizations matter on the
 * slow DPU cores (~100 us -> ~25 us) but are skipped on the host CPU
 * (~20 us to begin with), as §6.1 reports.
 */

#ifndef MOLECULE_XPU_TRANSPORT_HH
#define MOLECULE_XPU_TRANSPORT_HH

#include <cstdint>
#include <memory>

#include "hw/pu.hh"

namespace molecule::xpu {

/** Transport selection (Figure 7 a/b/c). */
enum class TransportKind { Fifo, Mpsc, MpscPoll };

const char *toString(TransportKind k);

/**
 * Cost model of one XPUcall's client<->shim crossings on @p pu.
 */
class Transport
{
  public:
    explicit Transport(TransportKind kind) : kind_(kind) {}

    TransportKind kind() const { return kind_; }

    /** Client -> shim: deliver a request carrying @p bytes. */
    sim::SimTime requestCost(const hw::ProcessingUnit &pu,
                             std::uint64_t bytes) const;

    /** Shim -> client: deliver a response carrying @p bytes. */
    sim::SimTime responseCost(const hw::ProcessingUnit &pu,
                              std::uint64_t bytes) const;

  private:
    /** One local-FIFO one-way transfer (write+wakeup+read). */
    static sim::SimTime fifoOneWay(const hw::ProcessingUnit &pu,
                                   std::uint64_t bytes);

    TransportKind kind_;
};

} // namespace molecule::xpu

#endif // MOLECULE_XPU_TRANSPORT_HH
