#include "obs/trace.hh"

#if MOLECULE_TRACING
#include <cstdio>

#include "sim/logging.hh"
#endif

namespace molecule::obs {

const char *
toString(Layer l)
{
    switch (l) {
      case Layer::Core:
        return "core";
      case Layer::Xpu:
        return "xpu";
      case Layer::Os:
        return "os";
      case Layer::Sandbox:
        return "sandbox";
      case Layer::Hw:
        return "hw";
    }
    return "?";
}

#if MOLECULE_TRACING

namespace {

/**
 * Ambient ids for log-line prefixes only. Thread-local, so parallel
 * SweepRunner replicas never see each other's ids. Coroutine
 * interleavings can leave a sibling's ids ambient between suspends —
 * acceptable for log decoration, never used for parenting.
 */
thread_local std::uint64_t t_ambientTrace = 0;
thread_local std::uint64_t t_ambientSpan = 0;

std::size_t
logPrefix(char *buf, std::size_t cap)
{
    if (t_ambientTrace == 0)
        return 0;
    const int n = std::snprintf(
        buf, cap, "[trace:%016llx span:%llu] ",
        static_cast<unsigned long long>(t_ambientTrace),
        static_cast<unsigned long long>(t_ambientSpan));
    return n > 0 ? std::size_t(n) : 0;
}

} // namespace

void
installLogPrefixHook()
{
    sim::setLogPrefixHook(&logPrefix);
}

Tracer::Tracer(sim::Simulation &sim, std::uint64_t seed,
               std::size_t ringCapacity)
    : sim_(sim), seed_(seed), ringCapacity_(ringCapacity),
      records_(sim.arena())
{
    installLogPrefixHook();
}

std::uint64_t
Tracer::newTraceId()
{
    // FNV-1a over (seed, counter): deterministic for a fixed seed,
    // distinct across seeds so merged multi-replica traces never
    // collide.
    constexpr std::uint64_t kOffset = 14695981039346656037ULL;
    constexpr std::uint64_t kPrime = 1099511628211ULL;
    std::uint64_t h = kOffset;
    const std::uint64_t counter = nextTrace_++;
    for (std::uint64_t v : {seed_, counter}) {
        for (int i = 0; i < 8; ++i) {
            h ^= (v >> (i * 8)) & 0xff;
            h *= kPrime;
        }
    }
    // Trace id 0 means "no trace"; keep it unreachable.
    return h == 0 ? 1 : h;
}

void
Tracer::push(const SpanRecord &rec)
{
    if (ringCapacity_ != 0 && records_.size() >= ringCapacity_) {
        // Compact ring: drop the oldest half so pushes stay amortized
        // O(1); vacated chunks recycle inside the SpanBuffer.
        const std::size_t keep = ringCapacity_ / 2;
        dropped_ += records_.size() - keep;
        records_.dropOldest(records_.size() - keep);
    }
    records_.push_back(rec);
    metrics_.histogram(rec.name).addTime(
        sim::SimTime(rec.end - rec.start));
    Counter *&layerCounter = layerCounters_[std::size_t(rec.layer)];
    if (layerCounter == nullptr) {
        // First span of this layer: build the "spans.<layer>" name
        // once and cache the (address-stable) registry node.
        layerCounter = &metrics_.counter(std::string("spans.") +
                                         toString(rec.layer));
    }
    layerCounter->inc();
}

void
Tracer::clear()
{
    records_.clear();
    dropped_ = 0;
    metrics_.clear();
    for (Counter *&c : layerCounters_)
        c = nullptr;
}

Span::Span(Tracer *tracer, std::uint64_t trace, std::uint64_t parent,
           const char *name, Layer layer, int pu)
    : tracer_(tracer), open_(tracer != nullptr)
{
    if (!open_)
        return;
    rec_.traceId = trace;
    rec_.spanId = tracer_->newSpanId();
    rec_.parentId = parent;
    rec_.name = name;
    rec_.layer = layer;
    rec_.pu = pu;
    rec_.start = tracer_->now();
    rec_.end = rec_.start;
    prevAmbientTrace_ = t_ambientTrace;
    prevAmbientSpan_ = t_ambientSpan;
    t_ambientTrace = rec_.traceId;
    t_ambientSpan = rec_.spanId;
}

Span::Span(const SpanContext &ctx, const char *name, Layer layer, int pu)
    : Span(ctx.tracer, ctx.trace, ctx.span, name, layer, pu)
{}

Span
Span::root(Tracer *tracer, const char *name, Layer layer, int pu)
{
    return Span(tracer, tracer ? tracer->newTraceId() : 0, 0, name,
                layer, pu);
}

void
Span::finish()
{
    if (!open_)
        return;
    open_ = false;
    rec_.end = tracer_->now();
    tracer_->push(rec_);
    // Restore the ambient ids only if no interleaved span overwrote
    // them meanwhile (non-LIFO coroutine teardown is legal).
    if (t_ambientTrace == rec_.traceId && t_ambientSpan == rec_.spanId) {
        t_ambientTrace = prevAmbientTrace_;
        t_ambientSpan = prevAmbientSpan_;
    }
}

#endif // MOLECULE_TRACING

} // namespace molecule::obs
