#include "obs/flight_recorder.hh"

#if MOLECULE_TELEMETRY

#include <algorithm>
#include <cstdio>

#include "obs/metrics_export.hh"
#include "obs/trace.hh"

namespace molecule::obs {

namespace {

std::string
fmtInt(std::int64_t v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld",
                  static_cast<long long>(v));
    return buf;
}

std::string
fmtMilli(double v)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.3f", v);
    return buf;
}

/** Escape a (short, mostly-identifier) string for a JSON literal. */
std::string
jsonEscape(std::string_view s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        if (c == '"' || c == '\\') {
            out.push_back('\\');
            out.push_back(c);
        } else if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x",
                          static_cast<unsigned>(
                              static_cast<unsigned char>(c)));
            out += buf;
        } else {
            out.push_back(c);
        }
    }
    return out;
}

} // namespace

FlightRecorder::FlightRecorder(TimeSeries &ts,
                               FlightRecorderOptions options)
    : ts_(ts), opts_(options)
{
    ts_.addListener(this);
}

void
FlightRecorder::onWindow(const TimeSeries &ts, const WindowRecord &w)
{
    (void)ts;
    ring_.push_back(w);
    while (ring_.size() > std::max<std::size_t>(1, opts_.keepWindows))
        ring_.pop_front();
}

void
FlightRecorder::onAlert(const AlertEvent &a)
{
    alerts_.push_back(a);
    while (alerts_.size() > std::max<std::size_t>(1, opts_.keepAlerts))
        alerts_.pop_front();
}

void
FlightRecorder::trigger(std::string_view reason, sim::SimTime at)
{
    ++triggers_;
    if (dumps_.size() >= opts_.maxDumps)
        return;

    std::string out = "{\"reason\":\"" + jsonEscape(reason) +
                      "\",\"at_ns\":" + fmtInt(at.raw()) +
                      ",\"trigger\":" + fmtInt(std::int64_t(triggers_)) +
                      ",\"windows\":[";
    bool first = true;
    for (const WindowRecord &w : ring_) {
        if (!first)
            out += ",";
        first = false;
        out += windowJson(ts_, w);
    }
    out += "],\"alerts\":[";
    first = true;
    for (const AlertEvent &a : alerts_) {
        if (!first)
            out += ",";
        first = false;
        out += "{\"at_ns\":" + fmtInt(a.at.raw()) +
               ",\"window\":" + fmtInt(std::int64_t(a.window)) +
               ",\"tenant\":" + fmtInt(a.tenant) +
               ",\"objective\":" + fmtInt(a.objective) +
               ",\"fired\":" + (a.fired ? "true" : "false") +
               ",\"burn_short\":" + fmtMilli(a.burnShort) +
               ",\"burn_long\":" + fmtMilli(a.burnLong) + "}";
    }
    out += "],\"spans\":[";
#if MOLECULE_TRACING
    if (tracer_ != nullptr && opts_.spanTail > 0) {
        const SpanBuffer &recs = tracer_->records();
        const std::size_t n = recs.size();
        const std::size_t from =
            n > opts_.spanTail ? n - opts_.spanTail : 0;
        first = true;
        for (std::size_t i = from; i < n; ++i) {
            const SpanRecord &r = recs[i];
            if (!first)
                out += ",";
            first = false;
            out += "{\"name\":\"" + jsonEscape(r.name) +
                   "\",\"layer\":\"" + toString(r.layer) +
                   "\",\"start_ns\":" + fmtInt(r.start) +
                   ",\"end_ns\":" + fmtInt(r.end) +
                   ",\"pu\":" + fmtInt(r.pu) +
                   ",\"arg\":" + fmtInt(r.arg);
            if (r.detail[0] != '\0')
                out += ",\"detail\":\"" + jsonEscape(r.detail) + "\"";
            out += "}";
        }
    }
#endif
    out += "]}";
    dumps_.push_back(std::move(out));
}

bool
FlightRecorder::writeLast(const std::string &path) const
{
    if (dumps_.empty())
        return false;
    return writeText(path, dumps_.back());
}

} // namespace molecule::obs

#endif // MOLECULE_TELEMETRY
