#include "obs/registry.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace molecule::obs {

int
Histogram::bucketOf(double v)
{
    if (!(v >= 1.0)) // negatives, zero, NaN: the shared floor bucket
        return kFloorBucket;
    return int(std::floor(std::log2(v) * 8.0));
}

double
Histogram::bucketMid(int idx)
{
    if (idx <= kFloorBucket)
        return 0.0;
    // Geometric midpoint of [2^(idx/8), 2^((idx+1)/8)).
    return std::exp2((double(idx) + 0.5) / 8.0);
}

void
Histogram::add(double v)
{
    if (count_ == 0) {
        min_ = v;
        max_ = v;
    } else {
        min_ = std::min(min_, v);
        max_ = std::max(max_, v);
    }
    ++count_;
    sum_ += v;
    ++buckets_[bucketOf(v)];
}

double
Histogram::percentile(double p) const
{
    if (count_ == 0)
        return 0.0;
    p = std::clamp(p, 0.0, 100.0);
    // Nearest-rank over the cumulative bucket counts (map is sorted).
    const std::uint64_t rank = std::max<std::uint64_t>(
        1, std::uint64_t(std::ceil(p / 100.0 * double(count_))));
    std::uint64_t seen = 0;
    for (const auto &[idx, n] : buckets_) {
        seen += n;
        if (seen >= rank)
            return std::clamp(bucketMid(idx), min_, max_);
    }
    return max_;
}

void
Histogram::clear()
{
    buckets_.clear();
    count_ = 0;
    sum_ = 0.0;
    min_ = 0.0;
    max_ = 0.0;
}

std::string
Histogram::summaryLine() const
{
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "n=%llu avg=%.1f p50=%.1f p95=%.1f p99=%.1f",
                  static_cast<unsigned long long>(count_), mean(),
                  percentile(50), percentile(95), percentile(99));
    return buf;
}

HistogramSnapshot
Histogram::snapshotBuckets() const
{
    HistogramSnapshot s;
    s.buckets.assign(buckets_.begin(), buckets_.end());
    s.count = count_;
    s.sum = sum_;
    return s;
}

double
HistogramSnapshot::percentile(double p) const
{
    if (count == 0)
        return 0.0;
    p = std::clamp(p, 0.0, 100.0);
    const std::uint64_t rank = std::max<std::uint64_t>(
        1, std::uint64_t(std::ceil(p / 100.0 * double(count))));
    std::uint64_t seen = 0;
    for (const auto &[idx, n] : buckets) {
        seen += n;
        if (seen >= rank)
            return Histogram::bucketMid(idx);
    }
    return buckets.empty() ? 0.0
                           : Histogram::bucketMid(buckets.back().first);
}

std::uint64_t
HistogramSnapshot::countAbove(double v) const
{
    const int limit = Histogram::bucketOf(v);
    std::uint64_t above = 0;
    for (const auto &[idx, n] : buckets)
        if (idx > limit)
            above += n;
    return above;
}

HistogramSnapshot
HistogramSnapshot::minus(const HistogramSnapshot &older) const
{
    HistogramSnapshot d;
    d.count = count - older.count;
    d.sum = sum - older.sum;
    // Both bucket lists are index-sorted; a single merge walk pairs
    // them up. A bucket absent from `older` existed only in `this`.
    std::size_t j = 0;
    for (const auto &[idx, n] : buckets) {
        std::uint64_t old = 0;
        while (j < older.buckets.size() && older.buckets[j].first < idx)
            ++j;
        if (j < older.buckets.size() && older.buckets[j].first == idx)
            old = older.buckets[j].second;
        if (n > old)
            d.buckets.emplace_back(idx, n - old);
    }
    return d;
}

void
HistogramSnapshot::merge(const HistogramSnapshot &other)
{
    count += other.count;
    sum += other.sum;
    std::vector<std::pair<int, std::uint64_t>> merged;
    merged.reserve(buckets.size() + other.buckets.size());
    std::size_t i = 0, j = 0;
    while (i < buckets.size() || j < other.buckets.size()) {
        if (j == other.buckets.size() ||
            (i < buckets.size() &&
             buckets[i].first < other.buckets[j].first)) {
            merged.push_back(buckets[i++]);
        } else if (i == buckets.size() ||
                   other.buckets[j].first < buckets[i].first) {
            merged.push_back(other.buckets[j++]);
        } else {
            merged.emplace_back(buckets[i].first,
                                buckets[i].second +
                                    other.buckets[j].second);
            ++i;
            ++j;
        }
    }
    buckets = std::move(merged);
}

void
Registry::clear()
{
    counters_.clear();
    gauges_.clear();
    hists_.clear();
}

} // namespace molecule::obs
