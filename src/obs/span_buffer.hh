/**
 * @file
 * Arena-backed storage for finished spans.
 *
 * Tracer::push runs once per finished span — on the hot path of every
 * traced invocation — so the span store must not touch the heap at
 * steady state. SpanBuffer is a chunked deque whose chunks come from
 * the simulation's bump arena: push is a bump-pointer store, the ring
 * policy (drop-oldest) retires whole chunks to an internal free list,
 * and clear() rewinds without releasing anything.
 *
 * Lifetime: chunks live in the owning simulation's arena, so records
 * obtained from a SpanBuffer must not outlive that simulation (see
 * sim/arena.hh). Exports that survive the run copy out first —
 * snapshot() is the sanctioned way.
 */

#ifndef MOLECULE_OBS_SPAN_BUFFER_HH
#define MOLECULE_OBS_SPAN_BUFFER_HH

#include <cstddef>
#include <cstdint>
#include <iterator>
#include <type_traits>
#include <vector>

#include "sim/arena.hh"

namespace molecule::obs {

enum class Layer : std::uint8_t;

/**
 * One finished span. `name` must point to a string literal (static
 * storage); dynamic annotations go into the fixed `detail` buffer so
 * recording never allocates.
 */
struct SpanRecord
{
    std::uint64_t traceId = 0;
    std::uint64_t spanId = 0;
    /** Parent span id; 0 = trace root. */
    std::uint64_t parentId = 0;
    const char *name = "?";
    Layer layer = Layer(0);
    /** Sim-time nanoseconds. */
    std::int64_t start = 0;
    std::int64_t end = 0;
    /** PU the work happened on (-1: not PU-bound). */
    std::int32_t pu = -1;
    /** Free-form numeric payload (bytes moved, units, ...). */
    std::int64_t arg = 0;
    /** Truncating copy of a dynamic annotation (function name, ...). */
    char detail[24] = {};
};

/**
 * Chunked record deque over an Arena. Indexable, iterable oldest
 * first; dropOldest() implements the Tracer's ring bound by retiring
 * leading chunks to a free list (no element moves, unlike the old
 * vector-erase compaction). Not thread-safe, like everything else
 * owned by one Simulation.
 */
class SpanBuffer
{
  public:
    /** Records per chunk; 128 × 88 B ≈ 11 KiB arena blocks. */
    static constexpr std::size_t kChunkShift = 7;
    static constexpr std::size_t kChunkSize = std::size_t(1)
                                              << kChunkShift;

    explicit SpanBuffer(sim::Arena &arena) : arena_(&arena) {}

    SpanBuffer(const SpanBuffer &) = delete;
    SpanBuffer &operator=(const SpanBuffer &) = delete;

    std::size_t size() const { return size_; }

    bool empty() const { return size_ == 0; }

    const SpanRecord &
    operator[](std::size_t i) const
    {
        const std::size_t p = head_ + i;
        return chunks_[p >> kChunkShift][p & (kChunkSize - 1)];
    }

    const SpanRecord &front() const { return (*this)[0]; }

    const SpanRecord &back() const { return (*this)[size_ - 1]; }

    void
    push_back(const SpanRecord &rec)
    {
        const std::size_t p = head_ + size_;
        if (p == cap_)
            grow();
        chunks_[p >> kChunkShift][p & (kChunkSize - 1)] = rec;
        ++size_;
    }

    /**
     * Drop the @p n oldest records (all of them when @p n >= size).
     * Fully vacated leading chunks go back to the free list.
     */
    void
    dropOldest(std::size_t n)
    {
        if (n > size_)
            n = size_;
        head_ += n;
        size_ -= n;
        while (head_ >= kChunkSize) {
            freeChunks_.push_back(chunks_.front());
            chunks_.erase(chunks_.begin());
            cap_ -= kChunkSize;
            head_ -= kChunkSize;
        }
        if (size_ == 0)
            head_ = 0;
    }

    /** Rewind to empty; chunks are retained for reuse. */
    void
    clear()
    {
        head_ = 0;
        size_ = 0;
    }

    /** Copy-out for anything that must outlive the simulation. */
    std::vector<SpanRecord>
    snapshot() const
    {
        return std::vector<SpanRecord>(begin(), end());
    }

    class const_iterator
    {
      public:
        using iterator_category = std::forward_iterator_tag;
        using value_type = SpanRecord;
        using difference_type = std::ptrdiff_t;
        using pointer = const SpanRecord *;
        using reference = const SpanRecord &;

        const_iterator() = default;

        const_iterator(const SpanBuffer *buf, std::size_t i)
            : buf_(buf), i_(i)
        {}

        reference operator*() const { return (*buf_)[i_]; }

        pointer operator->() const { return &(*buf_)[i_]; }

        const_iterator &
        operator++()
        {
            ++i_;
            return *this;
        }

        const_iterator
        operator++(int)
        {
            const_iterator old = *this;
            ++i_;
            return old;
        }

        bool
        operator==(const const_iterator &o) const
        {
            return i_ == o.i_ && buf_ == o.buf_;
        }

        bool
        operator!=(const const_iterator &o) const
        {
            return !(*this == o);
        }

      private:
        const SpanBuffer *buf_ = nullptr;
        std::size_t i_ = 0;
    };

    const_iterator begin() const { return const_iterator(this, 0); }

    const_iterator end() const { return const_iterator(this, size_); }

  private:
    void
    grow()
    {
        SpanRecord *chunk;
        if (!freeChunks_.empty()) {
            chunk = freeChunks_.back();
            freeChunks_.pop_back();
        } else {
            chunk = arena_->allocateArray<SpanRecord>(kChunkSize);
        }
        chunks_.push_back(chunk);
        cap_ += kChunkSize;
    }

    sim::Arena *arena_;
    /** Live chunks; element p of the logical deque lives at
     * chunks_[p >> shift][p & mask] with p = head_ + index. */
    std::vector<SpanRecord *> chunks_;
    std::vector<SpanRecord *> freeChunks_;
    std::size_t head_ = 0; ///< consumed records in chunks_[0]
    std::size_t size_ = 0;
    std::size_t cap_ = 0; ///< head_ + size_ limit = chunks_ capacity
};

static_assert(std::is_trivially_destructible_v<SpanRecord>,
              "SpanRecord lives in the arena");

} // namespace molecule::obs

#endif // MOLECULE_OBS_SPAN_BUFFER_HH
