/**
 * @file
 * Telemetry exporters: OpenMetrics-style text and JSON-lines
 * timeline.
 *
 * Two views of one TimeSeries:
 *  - openMetricsText(): the *cumulative* state at call time, one
 *    family per metric name with tenant/node labels — counters,
 *    gauges, and histogram summaries (count, sum, p50/p99 quantiles).
 *    The "scrape" view, suitable for eyeballing or diffing run
 *    totals.
 *  - jsonLinesTimeline(): one JSON object per retained closed window
 *    — the *time-resolved* view the CI artifact uploads and offline
 *    analysis consumes (`jq`-able, one line per window).
 *
 * windowJson() renders a single window and is shared with the flight
 * recorder's bundles.
 *
 * All output is byte-deterministic for a given collector state:
 * series iterate in id order (itself derived from the ordered key
 * map), and every floating-point value prints through one fixed
 * "%.3f" formatter.
 */

#ifndef MOLECULE_OBS_METRICS_EXPORT_HH
#define MOLECULE_OBS_METRICS_EXPORT_HH

#include <string>

#include "obs/timeseries.hh"

namespace molecule::obs {

#if MOLECULE_TELEMETRY

/** Cumulative state of every series, OpenMetrics-flavoured text. */
std::string openMetricsText(const TimeSeries &ts);

/** One JSON object per retained closed window, newline-terminated. */
std::string jsonLinesTimeline(const TimeSeries &ts);

/** One window as a single-line JSON object (no trailing newline). */
std::string windowJson(const TimeSeries &ts, const WindowRecord &w);

/** Write @p text to @p path. @retval false on I/O failure. */
bool writeText(const std::string &path, const std::string &text);

#else // !MOLECULE_TELEMETRY

inline std::string
openMetricsText(const TimeSeries &)
{
    return {};
}

inline std::string
jsonLinesTimeline(const TimeSeries &)
{
    return {};
}

inline bool
writeText(const std::string &, const std::string &)
{
    return false;
}

#endif // MOLECULE_TELEMETRY

} // namespace molecule::obs

#endif // MOLECULE_OBS_METRICS_EXPORT_HH
