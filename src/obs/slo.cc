#include "obs/slo.hh"

#if MOLECULE_TELEMETRY

#include <algorithm>
#include <cmath>

namespace molecule::obs {

SloMonitor::SloMonitor(TimeSeries &ts, SloSpec spec)
    : ts_(ts), spec_(std::move(spec))
{
    latencyIds_.reserve(spec_.tenants);
    completedIds_.reserve(spec_.tenants);
    errorIds_.reserve(spec_.tenants);
    for (std::uint32_t t = 0; t < spec_.tenants; ++t) {
        latencyIds_.push_back(
            ts_.histogramId(spec_.latencyMetric, int(t)));
        completedIds_.push_back(
            ts_.counterId(spec_.completedMetric, int(t)));
        errorIds_.push_back(ts_.counterId(spec_.errorMetric, int(t)));
    }
    for (const SloObjective &o : spec_.objectives)
        if (o.kind == SloObjective::Kind::Latency)
            for (std::uint32_t t = 0; t < spec_.tenants; ++t)
                ts_.setThreshold(latencyIds_[t], o.thresholdUs);
    cells_.resize(std::size_t(spec_.tenants) *
                  spec_.objectives.size());
    ts_.addListener(this);
}

void
SloMonitor::addSink(AlertSink *sink)
{
    sinks_.push_back(sink);
}

double
SloMonitor::burnOver(const Cell &c, std::size_t n, double budget)
{
    std::int64_t good = 0;
    std::int64_t bad = 0;
    const std::size_t take = std::min(n, c.ring.size());
    for (std::size_t i = c.ring.size() - take; i < c.ring.size(); ++i) {
        good += c.ring[i].first;
        bad += c.ring[i].second;
    }
    const std::int64_t total = good + bad;
    if (total == 0)
        return 0.0;
    return (double(bad) / double(total)) / budget;
}

void
SloMonitor::onWindow(const TimeSeries &ts, const WindowRecord &w)
{
    for (std::uint32_t t = 0; t < spec_.tenants; ++t) {
        const WindowPoint *lat = w.find(latencyIds_[t]);
        const WindowPoint *done = w.find(completedIds_[t]);
        const WindowPoint *err = w.find(errorIds_[t]);

        for (std::uint32_t oi = 0;
             oi < std::uint32_t(spec_.objectives.size()); ++oi) {
            const SloObjective &o = spec_.objectives[oi];
            std::int64_t good = 0;
            std::int64_t bad = 0;
            if (o.kind == SloObjective::Kind::Latency) {
                if (lat != nullptr) {
                    bad = lat->above;
                    good = lat->count - lat->above;
                }
            } else {
                good = done != nullptr ? done->count : 0;
                bad = err != nullptr ? err->count : 0;
            }

            Cell &c = cell(t, oi);
            c.ring.emplace_back(good, bad);
            while (c.ring.size() > std::max<std::size_t>(
                                       1, o.longWindows))
                c.ring.pop_front();
            c.totalGood += good;
            c.totalBad += bad;

            const double budget =
                std::max(1.0 - o.targetFraction, 1e-9);
            const double burnShort =
                burnOver(c, std::max<std::size_t>(1, o.shortWindows),
                         budget);
            const double burnLong = burnOver(
                c, std::max<std::size_t>(1, o.longWindows), budget);

            const bool above = burnShort >= o.burnThreshold &&
                               burnLong >= o.burnThreshold;
            if (above == c.firing)
                continue;
            c.firing = above;

            AlertEvent a;
            a.at = w.end;
            a.window = w.index;
            a.tenant = t;
            a.objective = oi;
            a.fired = above;
            a.burnShort = burnShort;
            a.burnLong = burnLong;
            alerts_.push_back(a);

            fp_.mix(a.window);
            fp_.mix(a.tenant);
            fp_.mix(a.objective);
            fp_.mix(a.fired ? 1u : 0u);
            fp_.mix(std::uint64_t(std::llround(a.burnShort * 1000.0)));
            fp_.mix(std::uint64_t(std::llround(a.burnLong * 1000.0)));

            for (AlertSink *sink : sinks_)
                sink->onAlert(a);
        }
    }
    (void)ts;
}

} // namespace molecule::obs

#endif // MOLECULE_TELEMETRY
