/**
 * @file
 * Trace exporters.
 *
 * Two formats:
 *  - Chrome trace-event JSON, loadable in Perfetto / chrome://tracing:
 *    one process ("pid") per PU, one thread ("tid") per layer, "X"
 *    complete events per span, an async "b"/"e" pair per trace and
 *    "s"/"t"/"f" flow events stitching each invocation across the PUs
 *    it touches.
 *  - A compact binary form (string-table + packed records) for
 *    million-invocation runs, with a loader used by
 *    tools/trace_report.
 *
 * Output is byte-deterministic for a given record sequence: grouping
 * uses ordered containers and all floats are printed with fixed
 * precision.
 */

#ifndef MOLECULE_OBS_EXPORT_HH
#define MOLECULE_OBS_EXPORT_HH

#include "obs/trace.hh"

#if MOLECULE_TRACING

#include <string>
#include <vector>

namespace molecule::obs {

/** Render @p records as Chrome trace-event JSON. */
std::string chromeTraceJson(const std::vector<SpanRecord> &records);

/** Write chromeTraceJson(@p records) to @p path. @retval false io. */
bool writeChromeTrace(const std::string &path,
                      const std::vector<SpanRecord> &records);

/** Write the compact binary form. @retval false io. */
bool writeBinary(const std::string &path,
                 const std::vector<SpanRecord> &records);

/**
 * @name Arena-buffer convenience overloads
 * Exports copy the records out of the arena first (snapshot), per the
 * arena lifetime contract: the produced JSON/file must stay valid
 * after the simulation — and its arena — are gone.
 */
///@{
std::string chromeTraceJson(const SpanBuffer &records);

bool writeChromeTrace(const std::string &path,
                      const SpanBuffer &records);

bool writeBinary(const std::string &path, const SpanBuffer &records);
///@}

/** Result of readBinary: records plus the string table their name
 * and detail fields point into (keep the struct alive while using
 * the records). */
struct LoadedTrace
{
    bool ok = false;
    std::string error;
    std::vector<std::string> names;
    std::vector<SpanRecord> records;
};

LoadedTrace readBinary(const std::string &path);

} // namespace molecule::obs

#endif // MOLECULE_TRACING

#endif // MOLECULE_OBS_EXPORT_HH
