/**
 * @file
 * Fault-triggered flight recorder: a bounded black box of recent
 * telemetry that dumps a post-mortem bundle when something breaks.
 *
 * The recorder subscribes to TimeSeries window closes and keeps the
 * last N closed windows (copies — the ring survives the collector's
 * own retention policy), plus a bounded tail of recent SLO alerts.
 * When a trigger fires — the fault::Injector on every injected
 * `fault.*` event, the cluster gateway on an Errc::Hang completion,
 * or any caller with a reason string — it freezes the rings, appends
 * the tail of the Tracer's span buffer (when tracing is compiled in),
 * and serializes the whole bundle to a deterministic JSON document.
 *
 * Bundles accumulate in memory up to maxDumps (first-triggers win:
 * the interesting dump is the one closest to the root cause, not the
 * cascade that follows); triggerCount() keeps counting past the cap
 * so tests can assert suppression. writeLast() persists the newest
 * bundle for CI artifact upload.
 *
 * Determinism: everything in a bundle derives from sim time, feed
 * order and fixed-format printing — two runs of the same seed produce
 * byte-identical dumps, which is what makes them diffable evidence.
 * Telemetry-off builds collapse the recorder to a no-op stub.
 */

#ifndef MOLECULE_OBS_FLIGHT_RECORDER_HH
#define MOLECULE_OBS_FLIGHT_RECORDER_HH

#include <cstdint>
#include <string>
#include <string_view>

#include "obs/slo.hh"
#include "obs/timeseries.hh"
#include "sim/time.hh"

#if MOLECULE_TELEMETRY
#include <deque>
#include <vector>
#endif

namespace molecule::obs {

class Tracer;

struct FlightRecorderOptions
{
    /** Closed windows retained in the black-box ring. */
    std::size_t keepWindows = 32;
    /** Newest finished spans included in a bundle (0 = none). */
    std::size_t spanTail = 256;
    /** Recent alert transitions retained for bundles. */
    std::size_t keepAlerts = 64;
    /** Bundles kept; later triggers only count, they don't dump. */
    std::size_t maxDumps = 4;
};

#if MOLECULE_TELEMETRY

class FlightRecorder final : public WindowListener, public AlertSink
{
  public:
    /** Registers as a window listener of @p ts (which must outlive
     * the recorder). Subscribe to a monitor's alerts separately via
     * SloMonitor::addSink(recorder). */
    explicit FlightRecorder(TimeSeries &ts,
                            FlightRecorderOptions options = {});

    FlightRecorder(const FlightRecorder &) = delete;
    FlightRecorder &operator=(const FlightRecorder &) = delete;

    /** Source of the span tail; pass the simulation's tracer. The
     * spans are read (and copied out) only at trigger time. */
    void attachTracer(const Tracer &tracer) { tracer_ = &tracer; }

    void onWindow(const TimeSeries &ts, const WindowRecord &w) override;

    void onAlert(const AlertEvent &a) override;

    /**
     * Freeze the black box into a JSON bundle. @p reason names the
     * cause ("fault.pu_crash", "errc.hang", ...); @p at is the sim
     * instant of the trigger (callers pass their simulation's now()).
     */
    void trigger(std::string_view reason, sim::SimTime at);

    /** Triggers seen, including those suppressed past maxDumps. */
    std::uint64_t triggerCount() const { return triggers_; }

    std::size_t dumpCount() const { return dumps_.size(); }

    /** Bundles in trigger order, each a complete JSON document. */
    const std::vector<std::string> &dumps() const { return dumps_; }

    /** Write the newest bundle to @p path; false if none or I/O
     * failed. */
    bool writeLast(const std::string &path) const;

  private:
    TimeSeries &ts_;
    FlightRecorderOptions opts_;
    const Tracer *tracer_ = nullptr;
    std::deque<WindowRecord> ring_;
    std::deque<AlertEvent> alerts_;
    std::vector<std::string> dumps_;
    std::uint64_t triggers_ = 0;
};

#else // !MOLECULE_TELEMETRY

/** Telemetry compiled out: never constructible, surface inert. */
class FlightRecorder
{
  public:
    FlightRecorder() = delete;

    void attachTracer(const Tracer &) {}

    void trigger(std::string_view, sim::SimTime) {}

    std::uint64_t triggerCount() const { return 0; }

    std::size_t dumpCount() const { return 0; }

    bool writeLast(const std::string &) const { return false; }
};

#endif // MOLECULE_TELEMETRY

} // namespace molecule::obs

#endif // MOLECULE_OBS_FLIGHT_RECORDER_HH
