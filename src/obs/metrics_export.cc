#include "obs/metrics_export.hh"

#if MOLECULE_TELEMETRY

#include <cstdio>

namespace molecule::obs {

namespace {

/** The one float formatter: fixed precision, no locale. */
std::string
fmt(double v)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.3f", v);
    return buf;
}

std::string
fmtInt(std::int64_t v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld",
                  static_cast<long long>(v));
    return buf;
}

/** OpenMetrics family name: dots become underscores. */
std::string
familyName(const std::string &metric)
{
    std::string out = "molecule_";
    for (const char c : metric)
        out.push_back(c == '.' ? '_' : c);
    return out;
}

/** `{tenant="0",node="2"}` (empty when unlabeled). The extra label
 * slot lets histogram families add `quantile`. */
std::string
labels(const SeriesDesc &d, const char *extraKey = nullptr,
       const char *extraVal = nullptr)
{
    std::string out;
    const auto add = [&out](const std::string &kv) {
        out += out.empty() ? "{" : ",";
        out += kv;
    };
    if (d.tenant >= 0)
        add("tenant=\"" + fmtInt(d.tenant) + "\"");
    if (d.node >= 0)
        add("node=\"" + fmtInt(d.node) + "\"");
    if (extraKey != nullptr)
        add(std::string(extraKey) + "=\"" + extraVal + "\"");
    if (!out.empty())
        out += "}";
    return out;
}

} // namespace

std::string
openMetricsText(const TimeSeries &ts)
{
    std::string out;
    // Series ids group by metric name already (ids are issued from an
    // ordered (metric, tenant, node) map... for series created in one
    // batch; watched metrics adopted later break the grouping, so the
    // TYPE line is emitted whenever the family changes).
    std::string lastFamily;
    for (std::uint32_t id = 0; id < ts.seriesCount(); ++id) {
        const SeriesDesc &d = ts.series(id);
        const std::string family = familyName(d.metric);
        if (family != lastFamily) {
            out += "# TYPE " + family + " ";
            out += d.kind == SeriesKind::Counter ? "counter"
                   : d.kind == SeriesKind::Gauge ? "gauge"
                                                 : "summary";
            out += "\n";
            lastFamily = family;
        }
        switch (d.kind) {
        case SeriesKind::Counter:
            out += family + labels(d) + " " +
                   fmtInt(ts.counterValue(id)) + "\n";
            break;
        case SeriesKind::Gauge:
            out += family + labels(d) + " " + fmt(ts.gaugeValue(id)) +
                   "\n";
            break;
        case SeriesKind::Histogram: {
            const HistogramSnapshot snap = ts.histogramTotal(id);
            out += family + "_count" + labels(d) + " " +
                   fmtInt(std::int64_t(snap.count)) + "\n";
            out += family + "_sum" + labels(d) + " " + fmt(snap.sum) +
                   "\n";
            out += family + labels(d, "quantile", "0.5") + " " +
                   fmt(snap.percentile(50)) + "\n";
            out += family + labels(d, "quantile", "0.99") + " " +
                   fmt(snap.percentile(99)) + "\n";
            break;
        }
        }
    }
    out += "# EOF\n";
    return out;
}

std::string
windowJson(const TimeSeries &ts, const WindowRecord &w)
{
    std::string out = "{\"window\":" + fmtInt(std::int64_t(w.index)) +
                      ",\"start_ns\":" + fmtInt(w.start.raw()) +
                      ",\"end_ns\":" + fmtInt(w.end.raw()) +
                      ",\"points\":[";
    bool first = true;
    for (const WindowPoint &p : w.points) {
        if (!first)
            out += ",";
        first = false;
        const SeriesDesc &d = ts.series(p.series);
        out += "{\"metric\":\"" + d.metric + "\"";
        if (d.tenant >= 0)
            out += ",\"tenant\":" + fmtInt(d.tenant);
        if (d.node >= 0)
            out += ",\"node\":" + fmtInt(d.node);
        out += ",\"kind\":\"";
        out += toString(p.kind);
        out += "\"";
        switch (p.kind) {
        case SeriesKind::Counter:
            out += ",\"delta\":" + fmtInt(p.count);
            break;
        case SeriesKind::Gauge:
            out += ",\"last\":" + fmt(p.value) +
                   ",\"max\":" + fmt(p.maxValue);
            break;
        case SeriesKind::Histogram:
            out += ",\"count\":" + fmtInt(p.count) +
                   ",\"sum\":" + fmt(p.sum) +
                   ",\"p50\":" + fmt(p.p50) +
                   ",\"p99\":" + fmt(p.p99) +
                   ",\"above\":" + fmtInt(p.above);
            break;
        }
        out += "}";
    }
    out += "]}";
    return out;
}

std::string
jsonLinesTimeline(const TimeSeries &ts)
{
    std::string out;
    for (const WindowRecord &w : ts.windows()) {
        out += windowJson(ts, w);
        out += "\n";
    }
    return out;
}

bool
writeText(const std::string &path, const std::string &text)
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (f == nullptr)
        return false;
    const std::size_t n =
        std::fwrite(text.data(), 1, text.size(), f);
    const bool ok = n == text.size();
    return std::fclose(f) == 0 && ok;
}

} // namespace molecule::obs

#endif // MOLECULE_TELEMETRY
