#include "obs/timeseries.hh"

#include <algorithm>

namespace molecule::obs {

const char *
toString(SeriesKind k)
{
    switch (k) {
    case SeriesKind::Counter:
        return "counter";
    case SeriesKind::Gauge:
        return "gauge";
    case SeriesKind::Histogram:
        return "histogram";
    }
    return "?";
}

const WindowPoint *
WindowRecord::find(std::uint32_t series) const
{
    const auto it = std::lower_bound(
        points.begin(), points.end(), series,
        [](const WindowPoint &p, std::uint32_t id) {
            return p.series < id;
        });
    if (it == points.end() || it->series != series)
        return nullptr;
    return &*it;
}

#if MOLECULE_TELEMETRY

namespace {

/** FNV-1a over the series identity (digest stability across id
 * renumbering: the hash names the series, not its creation order). */
std::uint64_t
keyHash(const SeriesDesc &d)
{
    std::uint64_t h = 14695981039346656037ULL;
    const auto mix = [&h](std::uint64_t v) {
        h ^= v;
        h *= 1099511628211ULL;
    };
    for (const char c : d.metric)
        mix(std::uint64_t(static_cast<unsigned char>(c)));
    mix(std::uint64_t(std::uint32_t(d.tenant)) + 1);
    mix(std::uint64_t(std::uint32_t(d.node)) + 1);
    return h;
}

} // namespace

TimeSeries::TimeSeries(sim::Simulation &sim, TimeSeriesOptions options)
    : sim_(sim), opts_(options)
{
    if (opts_.window.raw() <= 0)
        opts_.window = sim::SimTime::seconds(1);
    // Grid-aligned start: the window holding the current instant.
    const std::int64_t w = opts_.window.raw();
    winStart_ = sim::SimTime((sim_.now().raw() / w) * w);
}

std::uint32_t
TimeSeries::makeSeries(std::string_view metric, int tenant, int node,
                       SeriesKind kind)
{
    Key key{std::string(metric), tenant, node};
    const auto it = index_.find(key);
    if (it != index_.end())
        return it->second;
    const auto id = std::uint32_t(series_.size());
    SeriesDesc d;
    d.metric = key.metric;
    d.tenant = tenant;
    d.node = node;
    d.kind = kind;
    series_.push_back(std::move(d));
    state_.emplace_back();
    index_.emplace(std::move(key), id);
    return id;
}

std::uint32_t
TimeSeries::counterId(std::string_view metric, int tenant, int node)
{
    return makeSeries(metric, tenant, node, SeriesKind::Counter);
}

std::uint32_t
TimeSeries::gaugeId(std::string_view metric, int tenant, int node)
{
    return makeSeries(metric, tenant, node, SeriesKind::Gauge);
}

std::uint32_t
TimeSeries::histogramId(std::string_view metric, int tenant, int node)
{
    return makeSeries(metric, tenant, node, SeriesKind::Histogram);
}

void
TimeSeries::setThreshold(std::uint32_t id, double v)
{
    series_[id].threshold = v;
}

void
TimeSeries::count(std::uint32_t id, std::int64_t by)
{
    roll();
    state_[id].counter += by;
}

void
TimeSeries::set(std::uint32_t id, double v)
{
    roll();
    State &s = state_[id];
    if (!s.gaugeTouched) {
        s.gaugeTouched = true;
        s.gaugeMax = v;
    } else {
        s.gaugeMax = std::max(s.gaugeMax, v);
    }
    s.gaugeLast = v;
}

void
TimeSeries::observe(std::uint32_t id, double v)
{
    roll();
    state_[id].hist.add(v);
}

void
TimeSeries::watch(const Registry &reg)
{
    watched_.push_back(&reg);
}

void
TimeSeries::addListener(WindowListener *l)
{
    listeners_.push_back(l);
}

void
TimeSeries::roll()
{
    while (sim_.now() >= winStart_ + opts_.window)
        closeWindow();
}

void
TimeSeries::flush()
{
    roll();
    closeWindow();
}

void
TimeSeries::emitRegistry(const Registry &reg)
{
    // Adopt any metric not yet seen; Registry nodes are address-
    // stable, so the adopted pointer stays valid for the registry's
    // life and window deltas read it directly (no copy per close).
    for (const auto &[name, c] : reg.counters()) {
        State &s = state_[counterId(name)];
        if (s.extCounter == nullptr)
            s.extCounter = &c;
    }
    for (const auto &[name, g] : reg.gauges()) {
        State &s = state_[gaugeId(name)];
        if (s.extGauge == nullptr) {
            s.extGauge = &g;
            s.gaugeTouched = true;
        }
    }
    for (const auto &[name, h] : reg.histograms()) {
        State &s = state_[histogramId(name)];
        if (s.extHist == nullptr)
            s.extHist = &h;
    }
}

void
TimeSeries::emitPoint(std::uint32_t id, std::vector<WindowPoint> &out)
{
    const SeriesDesc &d = series_[id];
    State &s = state_[id];
    switch (d.kind) {
    case SeriesKind::Counter: {
        const std::int64_t cur =
            s.extCounter ? s.extCounter->value() : s.counter;
        const std::int64_t delta = cur - s.counterBase;
        s.counterBase = cur;
        if (delta == 0)
            return;
        WindowPoint p;
        p.series = id;
        p.kind = d.kind;
        p.count = delta;
        out.push_back(p);
        return;
    }
    case SeriesKind::Gauge: {
        if (s.extGauge != nullptr) {
            // Watched gauges are sampled at close: last == max.
            s.gaugeLast = s.extGauge->value();
            s.gaugeMax = s.gaugeLast;
        }
        if (!s.gaugeTouched)
            return;
        WindowPoint p;
        p.series = id;
        p.kind = d.kind;
        p.value = s.gaugeLast;
        p.maxValue = s.gaugeMax;
        out.push_back(p);
        // The next window inherits the level, not the excursion.
        s.gaugeMax = s.gaugeLast;
        return;
    }
    case SeriesKind::Histogram: {
        const HistogramSnapshot snap = s.extHist
                                           ? s.extHist->snapshotBuckets()
                                           : s.hist.snapshotBuckets();
        HistogramSnapshot delta = snap.minus(s.histBase);
        s.histBase = snap;
        if (delta.count == 0)
            return;
        WindowPoint p;
        p.series = id;
        p.kind = d.kind;
        p.count = std::int64_t(delta.count);
        p.sum = delta.sum;
        p.p50 = delta.percentile(50);
        p.p99 = delta.percentile(99);
        if (d.threshold > 0.0)
            p.above = std::int64_t(delta.countAbove(d.threshold));
        out.push_back(p);
        return;
    }
    }
}

void
TimeSeries::closeWindow()
{
    for (const Registry *reg : watched_)
        emitRegistry(*reg);

    WindowRecord w;
    w.index = std::uint64_t(winStart_.raw() / opts_.window.raw());
    w.start = winStart_;
    w.end = winStart_ + opts_.window;
    const auto n = std::uint32_t(series_.size());
    for (std::uint32_t id = 0; id < n; ++id)
        emitPoint(id, w.points);

    mixWindow(w);
    windows_.push_back(std::move(w));
    ++closed_;
    winStart_ = winStart_ + opts_.window;

    // Listeners run inside the closing instant, on the retained copy.
    for (WindowListener *l : listeners_)
        l->onWindow(*this, windows_.back());

    if (opts_.keepWindows > 0)
        while (windows_.size() > opts_.keepWindows)
            windows_.pop_front();
}

void
TimeSeries::mixWindow(const WindowRecord &w)
{
    fp_.mix(w.index);
    fp_.mix(std::uint64_t(w.points.size()));
    for (const WindowPoint &p : w.points) {
        fp_.mix(keyHash(series_[p.series]));
        fp_.mix(std::uint64_t(p.kind));
        fp_.mix(std::uint64_t(p.count));
        fp_.mixDouble(p.value);
        fp_.mixDouble(p.maxValue);
        fp_.mixDouble(p.sum);
        fp_.mixDouble(p.p50);
        fp_.mixDouble(p.p99);
        fp_.mix(std::uint64_t(p.above));
    }
}

#endif // MOLECULE_TELEMETRY

} // namespace molecule::obs
