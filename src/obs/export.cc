#include "obs/export.hh"

#if MOLECULE_TRACING

#include <algorithm>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <cstring>
#include <map>

namespace molecule::obs {

namespace {

/** pid used for spans not bound to a PU (tracks named "runtime"). */
constexpr int kRuntimePid = 1000;

int
pidOf(const SpanRecord &rec)
{
    return rec.pu >= 0 ? rec.pu : kRuntimePid;
}

int
tidOf(const SpanRecord &rec)
{
    return int(rec.layer);
}

void
appendEscaped(std::string &out, const char *s)
{
    for (; *s != '\0'; ++s) {
        const unsigned char c = static_cast<unsigned char>(*s);
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += char(c);
            }
        }
    }
}

void
appendf(std::string &out, const char *fmt, ...)
    __attribute__((format(printf, 2, 3)));

void
appendf(std::string &out, const char *fmt, ...)
{
    char buf[256];
    va_list ap;
    va_start(ap, fmt);
    const int n = std::vsnprintf(buf, sizeof(buf), fmt, ap);
    va_end(ap);
    if (n > 0)
        out.append(buf, std::min(std::size_t(n), sizeof(buf) - 1));
}

/** Sim-time ns -> trace-event microseconds, fixed precision. */
void
appendTsUs(std::string &out, std::int64_t ns)
{
    appendf(out, "%" PRId64 ".%03d", ns / 1000, int(ns % 1000));
}

/** Per-trace summary used for async + flow events. */
struct TraceGroup
{
    const SpanRecord *root = nullptr;
    std::int64_t minStart = 0;
    std::int64_t maxEnd = 0;
    /** Record indices, in record (i.e. finish) order. */
    std::vector<std::size_t> members;
};

} // namespace

std::string
chromeTraceJson(const std::vector<SpanRecord> &records)
{
    std::string out;
    out.reserve(records.size() * 200 + 1024);
    out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
    bool first = true;
    const auto sep = [&out, &first] {
        if (!first)
            out += ",\n";
        first = false;
    };

    // Metadata: one "process" per PU (plus "runtime"), one "thread"
    // per layer within it. Ordered maps keep the output deterministic.
    std::map<int, std::map<int, const char *>> tracks;
    for (const SpanRecord &rec : records)
        tracks[pidOf(rec)][tidOf(rec)] = toString(rec.layer);
    for (const auto &[pid, tids] : tracks) {
        sep();
        out += "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":";
        appendf(out, "%d", pid);
        out += ",\"args\":{\"name\":\"";
        if (pid == kRuntimePid)
            out += "runtime";
        else
            appendf(out, "pu%d", pid);
        out += "\"}}";
        for (const auto &[tid, layerName] : tids) {
            sep();
            appendf(out,
                    "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":%d,"
                    "\"tid\":%d,\"args\":{\"name\":\"",
                    pid, tid);
            out += layerName;
            out += "\"}}";
        }
    }

    // Complete ("X") events, one per span, in record order.
    for (const SpanRecord &rec : records) {
        sep();
        out += "{\"ph\":\"X\",\"name\":\"";
        appendEscaped(out, rec.name);
        out += "\",\"cat\":\"";
        out += toString(rec.layer);
        appendf(out, "\",\"pid\":%d,\"tid\":%d,\"ts\":", pidOf(rec),
                tidOf(rec));
        appendTsUs(out, rec.start);
        out += ",\"dur\":";
        appendTsUs(out, rec.end - rec.start);
        appendf(out,
                ",\"args\":{\"trace\":\"%016" PRIx64
                "\",\"span\":%" PRIu64 ",\"parent\":%" PRIu64,
                rec.traceId, rec.spanId, rec.parentId);
        if (rec.arg != 0)
            appendf(out, ",\"arg\":%" PRId64, rec.arg);
        if (rec.detail[0] != '\0') {
            out += ",\"detail\":\"";
            appendEscaped(out, rec.detail);
            out += "\"";
        }
        out += "}}";
    }

    // Group spans by trace for the async envelope and flow stitching.
    std::map<std::uint64_t, TraceGroup> traces;
    for (std::size_t i = 0; i < records.size(); ++i) {
        const SpanRecord &rec = records[i];
        if (rec.traceId == 0)
            continue;
        TraceGroup &g = traces[rec.traceId];
        if (g.members.empty()) {
            g.minStart = rec.start;
            g.maxEnd = rec.end;
        } else {
            g.minStart = std::min(g.minStart, rec.start);
            g.maxEnd = std::max(g.maxEnd, rec.end);
        }
        if (rec.parentId == 0 && g.root == nullptr)
            g.root = &rec;
        g.members.push_back(i);
    }

    for (const auto &[traceId, g] : traces) {
        const SpanRecord *root = g.root;
        if (root == nullptr)
            root = &records[g.members.front()];
        const char *rootName = root->name;

        // Async envelope: one "b"/"e" pair spanning the whole trace,
        // so Perfetto shows each invocation as a single async track.
        sep();
        out += "{\"ph\":\"b\",\"cat\":\"invocation\",\"name\":\"";
        appendEscaped(out, rootName);
        appendf(out, "\",\"id\":\"%016" PRIx64 "\",\"pid\":%d,\"tid\":%d,"
                     "\"ts\":",
                traceId, pidOf(*root), tidOf(*root));
        appendTsUs(out, g.minStart);
        out += "}";
        sep();
        out += "{\"ph\":\"e\",\"cat\":\"invocation\",\"name\":\"";
        appendEscaped(out, rootName);
        appendf(out, "\",\"id\":\"%016" PRIx64 "\",\"pid\":%d,\"tid\":%d,"
                     "\"ts\":",
                traceId, pidOf(*root), tidOf(*root));
        appendTsUs(out, g.maxEnd);
        out += "}";

        // Flow: "s" at the root, a "t" step each time the trace moves
        // to a different PU (in span start order), "f" back at the
        // root's end. Visualizes the causal path across PUs.
        std::vector<std::size_t> byStart = g.members;
        std::sort(byStart.begin(), byStart.end(),
                  [&records](std::size_t a, std::size_t b) {
                      if (records[a].start != records[b].start)
                          return records[a].start < records[b].start;
                      return records[a].spanId < records[b].spanId;
                  });
        sep();
        out += "{\"ph\":\"s\",\"cat\":\"flow\",\"name\":\"";
        appendEscaped(out, rootName);
        appendf(out, "\",\"id\":%" PRIu64 ",\"pid\":%d,\"tid\":%d,"
                     "\"ts\":",
                traceId, pidOf(*root), tidOf(*root));
        appendTsUs(out, root->start);
        out += "}";
        int lastPid = pidOf(*root);
        for (std::size_t idx : byStart) {
            const SpanRecord &rec = records[idx];
            if (pidOf(rec) == lastPid)
                continue;
            lastPid = pidOf(rec);
            sep();
            out += "{\"ph\":\"t\",\"cat\":\"flow\",\"name\":\"";
            appendEscaped(out, rootName);
            appendf(out, "\",\"id\":%" PRIu64 ",\"pid\":%d,\"tid\":%d,"
                         "\"ts\":",
                    traceId, pidOf(rec), tidOf(rec));
            appendTsUs(out, rec.start);
            out += "}";
        }
        sep();
        out += "{\"ph\":\"f\",\"bp\":\"e\",\"cat\":\"flow\",\"name\":\"";
        appendEscaped(out, rootName);
        appendf(out, "\",\"id\":%" PRIu64 ",\"pid\":%d,\"tid\":%d,"
                     "\"ts\":",
                traceId, pidOf(*root), tidOf(*root));
        appendTsUs(out, root->end);
        out += "}";
    }

    out += "\n]}\n";
    return out;
}

bool
writeChromeTrace(const std::string &path,
                 const std::vector<SpanRecord> &records)
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (f == nullptr)
        return false;
    const std::string json = chromeTraceJson(records);
    const bool ok =
        std::fwrite(json.data(), 1, json.size(), f) == json.size();
    return std::fclose(f) == 0 && ok;
}

namespace {

/** Little-endian field writers: the binary format is host-independent. */
bool
putBytes(std::FILE *f, const void *p, std::size_t n)
{
    return std::fwrite(p, 1, n, f) == n;
}

bool
putU64(std::FILE *f, std::uint64_t v)
{
    unsigned char b[8];
    for (int i = 0; i < 8; ++i)
        b[i] = (v >> (i * 8)) & 0xff;
    return putBytes(f, b, sizeof(b));
}

bool
putU32(std::FILE *f, std::uint32_t v)
{
    unsigned char b[4];
    for (int i = 0; i < 4; ++i)
        b[i] = (v >> (i * 8)) & 0xff;
    return putBytes(f, b, sizeof(b));
}

bool
putI64(std::FILE *f, std::int64_t v)
{
    return putU64(f, static_cast<std::uint64_t>(v));
}

bool
getBytes(std::FILE *f, void *p, std::size_t n)
{
    return std::fread(p, 1, n, f) == n;
}

bool
getU64(std::FILE *f, std::uint64_t &v)
{
    unsigned char b[8];
    if (!getBytes(f, b, sizeof(b)))
        return false;
    v = 0;
    for (int i = 0; i < 8; ++i)
        v |= std::uint64_t(b[i]) << (i * 8);
    return true;
}

bool
getU32(std::FILE *f, std::uint32_t &v)
{
    unsigned char b[4];
    if (!getBytes(f, b, sizeof(b)))
        return false;
    v = 0;
    for (int i = 0; i < 4; ++i)
        v |= std::uint32_t(b[i]) << (i * 8);
    return true;
}

bool
getI64(std::FILE *f, std::int64_t &v)
{
    std::uint64_t u = 0;
    if (!getU64(f, u))
        return false;
    v = static_cast<std::int64_t>(u);
    return true;
}

constexpr char kMagic[8] = {'M', 'O', 'L', 'T', 'R', 'C', '0', '1'};

} // namespace

bool
writeBinary(const std::string &path,
            const std::vector<SpanRecord> &records)
{
    // Name table in first-use order (keyed by value, not pointer, so
    // the layout is independent of where string literals landed).
    std::map<std::string, std::uint32_t> nameIndex;
    std::vector<const char *> names;
    std::vector<std::uint32_t> recNames;
    recNames.reserve(records.size());
    for (const SpanRecord &rec : records) {
        auto [it, inserted] = nameIndex.try_emplace(
            rec.name, std::uint32_t(names.size()));
        if (inserted)
            names.push_back(rec.name);
        recNames.push_back(it->second);
    }

    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (f == nullptr)
        return false;
    bool ok = putBytes(f, kMagic, sizeof(kMagic));
    ok = ok && putU64(f, records.size());
    ok = ok && putU32(f, std::uint32_t(names.size()));
    for (const char *name : names) {
        const std::uint32_t len = std::uint32_t(std::strlen(name));
        ok = ok && putU32(f, len) && putBytes(f, name, len);
    }
    for (std::size_t i = 0; ok && i < records.size(); ++i) {
        const SpanRecord &rec = records[i];
        ok = ok && putU64(f, rec.traceId) && putU64(f, rec.spanId) &&
             putU64(f, rec.parentId) && putU32(f, recNames[i]) &&
             putU32(f, std::uint32_t(std::uint8_t(rec.layer))) &&
             putI64(f, rec.start) && putI64(f, rec.end) &&
             putI64(f, std::int64_t(rec.pu)) && putI64(f, rec.arg) &&
             putBytes(f, rec.detail, sizeof(rec.detail));
    }
    return std::fclose(f) == 0 && ok;
}

LoadedTrace
readBinary(const std::string &path)
{
    LoadedTrace out;
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (f == nullptr) {
        out.error = "cannot open " + path;
        return out;
    }
    char magic[8];
    std::uint64_t count = 0;
    std::uint32_t nameCount = 0;
    if (!getBytes(f, magic, sizeof(magic)) ||
        std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
        out.error = "bad magic (not a molecule binary trace)";
        std::fclose(f);
        return out;
    }
    if (!getU64(f, count) || !getU32(f, nameCount)) {
        out.error = "truncated header";
        std::fclose(f);
        return out;
    }
    out.names.reserve(nameCount);
    for (std::uint32_t i = 0; i < nameCount; ++i) {
        std::uint32_t len = 0;
        if (!getU32(f, len) || len > 4096) {
            out.error = "truncated name table";
            std::fclose(f);
            return out;
        }
        std::string name(len, '\0');
        if (len != 0 && !getBytes(f, name.data(), len)) {
            out.error = "truncated name table";
            std::fclose(f);
            return out;
        }
        out.names.push_back(std::move(name));
    }
    out.records.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
        SpanRecord rec;
        std::uint32_t nameIdx = 0;
        std::uint32_t layer = 0;
        std::int64_t pu = -1;
        const bool ok =
            getU64(f, rec.traceId) && getU64(f, rec.spanId) &&
            getU64(f, rec.parentId) && getU32(f, nameIdx) &&
            getU32(f, layer) && getI64(f, rec.start) &&
            getI64(f, rec.end) && getI64(f, pu) && getI64(f, rec.arg) &&
            getBytes(f, rec.detail, sizeof(rec.detail));
        if (!ok || nameIdx >= out.names.size() ||
            layer > std::uint32_t(Layer::Hw)) {
            out.error = "truncated or corrupt record section";
            std::fclose(f);
            return out;
        }
        rec.detail[sizeof(rec.detail) - 1] = '\0';
        rec.name = out.names[nameIdx].c_str();
        rec.layer = Layer(std::uint8_t(layer));
        rec.pu = std::int32_t(pu);
        out.records.push_back(rec);
    }
    std::fclose(f);
    out.ok = true;
    return out;
}

// Arena-buffer overloads: exporting is an end-of-run (cold) path, so
// the snapshot copy is the simple, lifetime-correct choice — the
// output must survive the simulation that owns the arena.

std::string
chromeTraceJson(const SpanBuffer &records)
{
    return chromeTraceJson(records.snapshot());
}

bool
writeChromeTrace(const std::string &path, const SpanBuffer &records)
{
    return writeChromeTrace(path, records.snapshot());
}

bool
writeBinary(const std::string &path, const SpanBuffer &records)
{
    return writeBinary(path, records.snapshot());
}

} // namespace molecule::obs

#endif // MOLECULE_TRACING
