/**
 * @file
 * Unified metrics registry: counters, gauges and log-bucketed
 * histograms with cheap tail percentiles.
 *
 * This is the model-layer successor of the ad-hoc structs that used
 * to live in core/metrics.hh: subsystems publish named metrics here
 * (and the Tracer feeds one histogram sample per finished span), so
 * experiment harnesses and tools/trace_report read everything from
 * one place. sim/stats.hh keeps its exact-sample Histogram for small
 * test fixtures; this Histogram buckets geometrically (~9% relative
 * resolution, 8 buckets per octave) so million-invocation runs stay
 * O(#buckets) in memory while p50/p95/p99 remain honest.
 */

#ifndef MOLECULE_OBS_REGISTRY_HH
#define MOLECULE_OBS_REGISTRY_HH

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "sim/time.hh"

namespace molecule::obs {

/**
 * Frozen bucket state of a Histogram at one instant. Snapshots are
 * values: subtract an older snapshot from a newer one and the result
 * is the distribution of exactly the samples recorded in between —
 * the windowed-percentile primitive of the telemetry plane (a window
 * close diffs two snapshots instead of re-walking the histogram).
 * Buckets are index-sorted, so all derived output is deterministic.
 */
struct HistogramSnapshot
{
    /** (bucket index, cumulative count), ascending by index. */
    std::vector<std::pair<int, std::uint64_t>> buckets;
    std::uint64_t count = 0;
    double sum = 0.0;

    double mean() const { return count ? sum / double(count) : 0.0; }

    /**
     * Bucketed percentile over the snapshot's own counts; @p p in
     * [0, 100]. Resolution is the bucket width (~9%); unlike
     * Histogram::percentile there is no observed-range clamp (deltas
     * do not carry min/max).
     */
    double percentile(double p) const;

    /**
     * Samples that landed in buckets strictly above the one holding
     * @p v — the deterministic "requests over the SLO threshold"
     * count (within one bucket of the exact answer).
     */
    std::uint64_t countAbove(double v) const;

    /** Samples recorded between @p older and this snapshot. Bucket
     * counts are monotone, so the precondition is simply that @p
     * older was taken earlier on the same histogram. */
    HistogramSnapshot minus(const HistogramSnapshot &older) const;

    /** Fold @p other into this snapshot (cross-shard aggregation). */
    void merge(const HistogramSnapshot &other);
};

/** Monotonic counter. */
class Counter
{
  public:
    void inc(std::int64_t by = 1) { value_ += by; }

    std::int64_t value() const { return value_; }

    void reset() { value_ = 0; }

  private:
    std::int64_t value_ = 0;
};

/** Last-write-wins level (queue depths, pool sizes). */
class Gauge
{
  public:
    void set(double v) { value_ = v; }

    double value() const { return value_; }

  private:
    double value_ = 0.0;
};

/**
 * Log-bucketed distribution: bucket index = floor(log2(v) * 8), i.e.
 * 8 buckets per octave (~9% bucket width). Memory is O(octaves), not
 * O(samples); percentiles interpolate the geometric midpoint of the
 * bucket holding the requested rank, clamped to the observed range.
 */
class Histogram
{
  public:
    void add(double v);

    /** Convenience for latency samples (microseconds, like stats). */
    void addTime(sim::SimTime t) { add(t.toMicroseconds()); }

    std::uint64_t count() const { return count_; }

    double sum() const { return sum_; }

    double mean() const { return count_ ? sum_ / double(count_) : 0.0; }

    double min() const { return count_ ? min_ : 0.0; }

    double max() const { return count_ ? max_ : 0.0; }

    /** Bucketed percentile; @p p in [0, 100]. */
    double percentile(double p) const;

    void clear();

    /** "n=... avg=... p50=... p95=... p99=..." reporting line. */
    std::string summaryLine() const;

    /** Freeze the bucket state (see HistogramSnapshot). */
    HistogramSnapshot snapshotBuckets() const;

    /** @name Bucket geometry (shared with HistogramSnapshot) */
    ///@{
    static int bucketOf(double v);

    static double bucketMid(int idx);
    ///@}

    /** Sub-unity and non-positive samples share the floor bucket. */
    static constexpr int kFloorBucket = -1024;

  private:

    std::map<int, std::uint64_t> buckets_;
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * Named metrics, ordered (std::map) so iteration order — and any
 * digest or report built from it — is deterministic.
 *
 * Lookups are heterogeneous (string_view against std::less<>), so the
 * per-span hot path — histogram(rec.name) with a string-literal name —
 * allocates nothing once the metric exists. Returned references are
 * address-stable for the life of the registry (map nodes never move),
 * so callers may cache them across pushes; clear() invalidates caches.
 */
class Registry
{
  public:
    template <typename T>
    using NamedMap = std::map<std::string, T, std::less<>>;

    Counter &counter(std::string_view name)
    {
        return lookup(counters_, name);
    }

    Gauge &gauge(std::string_view name) { return lookup(gauges_, name); }

    Histogram &histogram(std::string_view name)
    {
        return lookup(hists_, name);
    }

    const NamedMap<Counter> &counters() const { return counters_; }

    const NamedMap<Gauge> &gauges() const { return gauges_; }

    const NamedMap<Histogram> &histograms() const { return hists_; }

    void clear();

  private:
    template <typename T>
    static T &
    lookup(NamedMap<T> &m, std::string_view name)
    {
        auto it = m.find(name);
        if (it == m.end())
            it = m.emplace(std::string(name), T{}).first;
        return it->second;
    }

    NamedMap<Counter> counters_;
    NamedMap<Gauge> gauges_;
    NamedMap<Histogram> hists_;
};

} // namespace molecule::obs

#endif // MOLECULE_OBS_REGISTRY_HH
