/**
 * @file
 * Measurement records produced by the Molecule runtime.
 *
 * Moved here from core/metrics.hh: records are observability data, so
 * they live with the tracing/metrics subsystem. Each record now
 * carries the trace id of the invocation that produced it (0 when no
 * tracer was attached), linking coarse latency records to their full
 * span trees.
 */

#ifndef MOLECULE_OBS_RECORDS_HH
#define MOLECULE_OBS_RECORDS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.hh"

namespace molecule::obs {

/** Timing breakdown of one function invocation. */
struct InvocationRecord
{
    std::string function;
    /** PU (or accelerator host PU) the instance ran on. */
    int pu = -1;
    bool coldStart = false;
    /** Sandbox acquisition (zero on a warm hit). */
    sim::SimTime startup;
    /** Request delivery into the instance. */
    sim::SimTime communication;
    /** Function body execution. */
    sim::SimTime execution;
    /** startup + communication + execution. */
    sim::SimTime endToEnd;
    /** Trace of this invocation (0: tracing off). */
    std::uint64_t traceId = 0;
    /** Attempts taken to complete (1: no retry). */
    int attempts = 1;
    /** Every PU an attempt ran on, in attempt order. */
    std::vector<int> pusTried;
    /** True when the completing attempt ran on a different PU than
     * the first one (scheduler failover after a fault). */
    bool failedOver = false;
};

/** Timing of one DAG/chain execution. */
struct ChainRecord
{
    std::string chain;
    sim::SimTime endToEnd;
    /** Inter-function latency per edge, in chain-edge order. */
    std::vector<sim::SimTime> edgeLatencies;
    std::vector<InvocationRecord> invocations;
    /** Trace of this chain execution (0: tracing off). */
    std::uint64_t traceId = 0;
};

} // namespace molecule::obs

#endif // MOLECULE_OBS_RECORDS_HH
