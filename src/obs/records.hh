/**
 * @file
 * Measurement records produced by the Molecule runtime.
 *
 * Moved here from core/metrics.hh: records are observability data, so
 * they live with the tracing/metrics subsystem. Each record now
 * carries the trace id of the invocation that produced it (0 when no
 * tracer was attached), linking coarse latency records to their full
 * span trees.
 */

#ifndef MOLECULE_OBS_RECORDS_HH
#define MOLECULE_OBS_RECORDS_HH

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "sim/time.hh"

namespace molecule::obs {

/**
 * Inline list of PU ids: the per-attempt trail of one invocation.
 *
 * An InvocationRecord is built on the invoke hot path, and the trail
 * is bounded by the retry budget (single digits in every config), so
 * a heap-backed vector per record is pure overhead. Capacity is fixed
 * at 16; ids past that are counted, not stored (truncated()), which
 * keeps the type trivially copyable.
 */
class PuList
{
  public:
    static constexpr std::size_t kCapacity = 16;

    PuList() = default;

    void
    push_back(int pu)
    {
        if (n_ < kCapacity)
            pus_[n_++] = pu;
        else
            ++overflow_;
    }

    std::size_t size() const { return n_; }

    bool empty() const { return n_ == 0; }

    int operator[](std::size_t i) const { return pus_[i]; }

    int front() const { return pus_[0]; }

    int back() const { return pus_[n_ - 1]; }

    const int *begin() const { return pus_; }

    const int *end() const { return pus_ + n_; }

    bool
    contains(int pu) const
    {
        for (std::size_t i = 0; i < n_; ++i)
            if (pus_[i] == pu)
                return true;
        return false;
    }

    /** Ids dropped because the trail overflowed kCapacity. */
    std::uint32_t truncated() const { return overflow_; }

    /** View for APIs taking a span of PU ids. */
    std::span<const int> view() const { return {pus_, n_}; }

    /** Copy-out for error annotations and reports. */
    std::vector<int> toVector() const { return {begin(), end()}; }

  private:
    int pus_[kCapacity] = {};
    std::uint32_t n_ = 0;
    std::uint32_t overflow_ = 0;
};

/** Timing breakdown of one function invocation. */
struct InvocationRecord
{
    std::string function;
    /** PU (or accelerator host PU) the instance ran on. */
    int pu = -1;
    bool coldStart = false;
    /** Sandbox acquisition (zero on a warm hit). */
    sim::SimTime startup;
    /** Request delivery into the instance. */
    sim::SimTime communication;
    /** Function body execution. */
    sim::SimTime execution;
    /** startup + communication + execution. */
    sim::SimTime endToEnd;
    /** Trace of this invocation (0: tracing off). */
    std::uint64_t traceId = 0;
    /** Attempts taken to complete (1: no retry). */
    int attempts = 1;
    /** Every PU an attempt ran on, in attempt order (inline, no
     * allocation; see PuList). */
    PuList pusTried;
    /** True when the completing attempt ran on a different PU than
     * the first one (scheduler failover after a fault). */
    bool failedOver = false;
};

/** Timing of one DAG/chain execution. */
struct ChainRecord
{
    std::string chain;
    sim::SimTime endToEnd;
    /** Inter-function latency per edge, in chain-edge order. */
    std::vector<sim::SimTime> edgeLatencies;
    std::vector<InvocationRecord> invocations;
    /** Trace of this chain execution (0: tracing off). */
    std::uint64_t traceId = 0;
};

} // namespace molecule::obs

#endif // MOLECULE_OBS_RECORDS_HH
