/**
 * @file
 * Per-tenant SLO engine with multi-window burn-rate alerts.
 *
 * An SloObjective is declarative: "fraction of requests under X us
 * must be >= target" (latency) or "error fraction must stay within
 * 1 - target" (error rate). The target leaves an *error budget* of
 * 1 - target; the *burn rate* of a window set is
 *
 *     burn = (bad / total) / (1 - target)
 *
 * — burn 1.0 spends the budget exactly at the sustainable rate, burn
 * N spends it N times too fast. Following the multi-window burn-rate
 * pattern (Google SRE workbook, ch. 5), an alert fires only when BOTH
 * a short window (fast signal, noisy alone) and a long window
 * (evidence the burn is sustained) exceed the objective's threshold,
 * and resolves when both drop back below — windows of calm traffic
 * cannot flap the alert.
 *
 * The monitor is a WindowListener: it evaluates at every TimeSeries
 * window close, *inside the simulation*, so AlertSinks (future
 * keep-alive/placement policies, the flight recorder, tests) observe
 * alerts at deterministic sim instants and may schedule reactions.
 * The alert stream folds into an order-sensitive digest that the
 * golden tests pin serial vs rerun vs SweepRunner.
 *
 * Telemetry-off builds collapse the monitor to a no-op (same gate as
 * TimeSeries).
 */

#ifndef MOLECULE_OBS_SLO_HH
#define MOLECULE_OBS_SLO_HH

#include <cstdint>
#include <string>
#include <vector>

#include "obs/timeseries.hh"
#include "sim/time.hh"

#if MOLECULE_TELEMETRY
#include <deque>

#include "sim/stats.hh"
#endif

namespace molecule::obs {

/** One declarative objective, evaluated per tenant per window. */
struct SloObjective
{
    enum class Kind : std::uint8_t {
        /** Good = samples at or under thresholdUs. */
        Latency,
        /** Good = completions; bad = typed errors. */
        ErrorRate,
    };

    std::string name;
    Kind kind = Kind::Latency;
    /** Latency objectives: the "good" threshold, microseconds. */
    double thresholdUs = 20'000.0;
    /** Target good fraction; the error budget is 1 - target. */
    double targetFraction = 0.99;
    /** Both burn rates must reach this to fire (and both must drop
     * below it to resolve). */
    double burnThreshold = 4.0;
    /** Fast-signal window count. */
    std::size_t shortWindows = 3;
    /** Sustained-evidence window count (ring capacity). */
    std::size_t longWindows = 12;
};

/** Series names the monitor reads (the ClusterStats vocabulary by
 * default; any producer feeding the same shapes can be monitored). */
struct SloSpec
{
    std::vector<SloObjective> objectives;
    /** Tenants to track: labels [0, tenants). */
    std::uint32_t tenants = 1;
    /** Histogram series carrying per-tenant latency samples. */
    std::string latencyMetric = "tenant.e2e_us";
    /** Counter series of per-tenant successful completions. */
    std::string completedMetric = "tenant.completed";
    /** Counter series of per-tenant typed errors. */
    std::string errorMetric = "tenant.errors";
};

/** One alert-state transition. */
struct AlertEvent
{
    /** Sim instant of the window close that transitioned the state. */
    sim::SimTime at;
    /** Window index that tipped the decision. */
    std::uint64_t window = 0;
    std::uint32_t tenant = 0;
    /** Index into SloSpec::objectives. */
    std::uint32_t objective = 0;
    /** true = fired, false = resolved. */
    bool fired = true;
    double burnShort = 0.0;
    double burnLong = 0.0;
};

/** Alert subscriber (policies, recorders, tests). */
class AlertSink
{
  public:
    virtual ~AlertSink() = default;

    virtual void onAlert(const AlertEvent &a) = 0;
};

#if MOLECULE_TELEMETRY

/**
 * The evaluator. Construct after the producer has attached its
 * series (ids are created here for every (tenant, objective) pair —
 * creation is idempotent, so order against the producer is free).
 */
class SloMonitor final : public WindowListener
{
  public:
    /** Registers itself as a listener of @p ts; @p ts must outlive
     * the monitor. Latency objectives arm their threshold on the
     * tenant latency series (last objective wins per series). */
    SloMonitor(TimeSeries &ts, SloSpec spec);

    SloMonitor(const SloMonitor &) = delete;
    SloMonitor &operator=(const SloMonitor &) = delete;

    void addSink(AlertSink *sink);

    void onWindow(const TimeSeries &ts, const WindowRecord &w) override;

    const SloSpec &spec() const { return spec_; }

    /** Every transition so far, in emission order. */
    const std::vector<AlertEvent> &alerts() const { return alerts_; }

    bool
    firing(std::uint32_t tenant, std::uint32_t objective) const
    {
        return cell(tenant, objective).firing;
    }

    /** All-time good/bad totals of one (tenant, objective) pair. */
    struct Totals
    {
        std::int64_t good = 0;
        std::int64_t bad = 0;
    };

    Totals
    totals(std::uint32_t tenant, std::uint32_t objective) const
    {
        const Cell &c = cell(tenant, objective);
        return {c.totalGood, c.totalBad};
    }

    /** Transitions emitted (alerts().size(), survives no retention
     * policy since alerts are unbounded by design: transitions are
     * rare by construction of the dual-window rule). */
    std::size_t alertCount() const { return alerts_.size(); }

    /**
     * Order-sensitive FNV-1a digest of the alert stream (window,
     * tenant, objective, direction, milli-burn rates) — the golden
     * the determinism tests pin across serial/rerun/SweepRunner.
     */
    std::uint64_t alertDigest() const { return fp_.digest(); }

  private:
    /** Rolling per-window (good, bad) history of one pair. */
    struct Cell
    {
        std::deque<std::pair<std::int64_t, std::int64_t>> ring;
        std::int64_t totalGood = 0;
        std::int64_t totalBad = 0;
        bool firing = false;
    };

    const Cell &
    cell(std::uint32_t tenant, std::uint32_t objective) const
    {
        return cells_[tenant * spec_.objectives.size() + objective];
    }

    Cell &
    cell(std::uint32_t tenant, std::uint32_t objective)
    {
        return cells_[tenant * spec_.objectives.size() + objective];
    }

    /** Burn rate over the trailing @p n ring entries. */
    static double burnOver(const Cell &c, std::size_t n, double budget);

    TimeSeries &ts_;
    SloSpec spec_;
    /** Per-tenant series ids: [tenant] -> id. */
    std::vector<std::uint32_t> latencyIds_;
    std::vector<std::uint32_t> completedIds_;
    std::vector<std::uint32_t> errorIds_;
    std::vector<Cell> cells_;
    std::vector<AlertSink *> sinks_;
    std::vector<AlertEvent> alerts_;
    sim::Fingerprint fp_;
};

#else // !MOLECULE_TELEMETRY

/** Telemetry compiled out: never constructible, API surface inert. */
class SloMonitor
{
  public:
    SloMonitor() = delete;

    void addSink(AlertSink *) {}

    std::size_t alertCount() const { return 0; }

    std::uint64_t alertDigest() const { return 0; }
};

#endif // MOLECULE_TELEMETRY

} // namespace molecule::obs

#endif // MOLECULE_OBS_SLO_HH
