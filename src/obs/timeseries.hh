/**
 * @file
 * Windowed telemetry: registry snapshots and labeled series in fixed
 * sim-time windows.
 *
 * ClusterStats answers "what happened over the run"; the TimeSeries
 * answers "what happened in second N, to tenant T, on node K" — the
 * time-resolved view the SLO engine, the flight recorder and future
 * scheduling policies read. Two feeds land in the same window grid:
 *
 *  - *Labeled series* created via counterId()/gaugeId()/histogramId()
 *    with optional tenant and node label dimensions, fed directly by
 *    the gateway and fleet (per-tenant completions and latency,
 *    per-node execution, queue depth).
 *  - *Watched registries* (watch()): at every window close, each
 *    counter/gauge/histogram registered in an obs::Registry is
 *    snapshotted and the delta since the previous close is emitted —
 *    counters as window deltas, gauges as last value, histograms as
 *    per-window p50/p99 from bucket deltas (HistogramSnapshot::minus,
 *    never a re-walk of the full histogram).
 *
 * Window model: the grid is aligned to sim time zero with a fixed
 * width; a sample at instant t belongs to window floor(t / width).
 * Windows close lazily — every feed call first closes any window the
 * clock has moved past — so the collector schedules no events of its
 * own and cannot perturb the simulation (the golden digests hold with
 * a TimeSeries attached, enforced by test). flush() closes the final
 * partial window at end of run so window sums equal run totals
 * exactly (count conservation, enforced by tools/slo_report --check).
 *
 * Determinism: windows and points are products of sim time and feed
 * order only; the running digest() is bit-identical serial, re-run,
 * or on any sim::SweepRunner thread. Listeners (SloMonitor,
 * FlightRecorder) fire at window close in registration order, *inside*
 * the simulation instant that closed the window — a policy reacting
 * to an alert schedules follow-up events at deterministic times.
 *
 * Build gate: MOLECULE_TELEMETRY (CMake option, default ON). OFF
 * collapses TimeSeries/SloMonitor/FlightRecorder to inline no-ops —
 * the MOLECULE_TRACING=OFF pattern — and all golden digests hold
 * bit-for-bit (the telemetry-off CI job re-runs the full suite).
 */

#ifndef MOLECULE_OBS_TIMESERIES_HH
#define MOLECULE_OBS_TIMESERIES_HH

#ifndef MOLECULE_TELEMETRY
#define MOLECULE_TELEMETRY 1
#endif

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <vector>

#include "obs/registry.hh"
#include "sim/time.hh"

#if MOLECULE_TELEMETRY
#include <map>

#include "sim/simulation.hh"
#include "sim/stats.hh"
#endif

namespace molecule::obs {

class TimeSeries;

/** What a labeled series accumulates. */
enum class SeriesKind : std::uint8_t { Counter, Gauge, Histogram };

const char *toString(SeriesKind k);

/**
 * Identity of one series: metric name plus optional label dimensions.
 * Label cardinality rule (DESIGN.md): labels are small dense integer
 * ids (tenant index, node index), never free-form strings — the
 * series population must stay O(tenants x nodes), not O(requests).
 */
struct SeriesDesc
{
    std::string metric;
    /** Tenant label (-1: unlabeled). */
    std::int32_t tenant = -1;
    /** Node label (-1: unlabeled). */
    std::int32_t node = -1;
    SeriesKind kind = SeriesKind::Counter;
    /**
     * Histogram only: samples above this value are counted into
     * WindowPoint::above at window close (0 = disabled). Set by the
     * SLO engine for its latency thresholds.
     */
    double threshold = 0.0;
};

/** One series' contribution to one closed window. */
struct WindowPoint
{
    /** Index into TimeSeries::series(). */
    std::uint32_t series = 0;
    SeriesKind kind = SeriesKind::Counter;
    /** Counter: window delta. Histogram: window sample count. */
    std::int64_t count = 0;
    /** Gauge: last value set in (or carried into) the window. */
    double value = 0.0;
    /** Gauge: maximum value set within the window. */
    double maxValue = 0.0;
    /** Histogram: sum of the window's samples. */
    double sum = 0.0;
    /** Histogram: percentiles of the window's bucket delta. */
    double p50 = 0.0;
    double p99 = 0.0;
    /** Histogram: window samples above the series threshold. */
    std::int64_t above = 0;
};

/** One closed window of the grid. */
struct WindowRecord
{
    /** Window number: start == index * width. */
    std::uint64_t index = 0;
    sim::SimTime start;
    sim::SimTime end;
    /** Points sorted by series id; series with no activity in the
     * window emit nothing (gauges emit every window once touched). */
    std::vector<WindowPoint> points;

    /** Point of @p series, or nullptr (binary search). */
    const WindowPoint *find(std::uint32_t series) const;
};

/** Window-close subscriber (SLO engine, flight recorder, policies). */
class WindowListener
{
  public:
    virtual ~WindowListener() = default;

    /** Called at the sim instant that closed @p w, oldest first. */
    virtual void onWindow(const TimeSeries &ts,
                          const WindowRecord &w) = 0;
};

struct TimeSeriesOptions
{
    /** Window width on the sim-time grid. */
    sim::SimTime window = sim::SimTime::seconds(1);
    /** Closed windows retained for export (0 = all). The digest and
     * listeners always see every window regardless. */
    std::size_t keepWindows = 0;
};

#if MOLECULE_TELEMETRY

/**
 * The windowed collector. One per Simulation replica, like Tracer.
 */
class TimeSeries
{
  public:
    explicit TimeSeries(sim::Simulation &sim,
                        TimeSeriesOptions options = {});

    TimeSeries(const TimeSeries &) = delete;
    TimeSeries &operator=(const TimeSeries &) = delete;

    /** @name Series creation (idempotent: same key, same id) */
    ///@{
    std::uint32_t counterId(std::string_view metric, int tenant = -1,
                            int node = -1);

    std::uint32_t gaugeId(std::string_view metric, int tenant = -1,
                          int node = -1);

    std::uint32_t histogramId(std::string_view metric, int tenant = -1,
                              int node = -1);
    ///@}

    /** Arm the threshold counter of a histogram series. */
    void setThreshold(std::uint32_t id, double v);

    /** @name Feeds (stamped with the simulation clock) */
    ///@{
    void count(std::uint32_t id, std::int64_t by = 1);

    void set(std::uint32_t id, double v);

    void observe(std::uint32_t id, double v);

    void
    observeTime(std::uint32_t id, sim::SimTime t)
    {
        observe(id, t.toMicroseconds());
    }
    ///@}

    /**
     * Snapshot every metric of @p reg at each window close and emit
     * the deltas as unlabeled series. @p reg must outlive this
     * collector; metrics appearing later are picked up as they do.
     */
    void watch(const Registry &reg);

    /** Subscribe to window closes (notification in add order). */
    void addListener(WindowListener *l);

    /**
     * Close the in-progress window (end of run). Without a flush the
     * tail of the stream — everything after the last full window
     * boundary — would be invisible, and window sums would not
     * conserve against run totals.
     */
    void flush();

    /** @name Introspection */
    ///@{
    const SeriesDesc &series(std::uint32_t id) const
    {
        return series_[id];
    }

    std::uint32_t seriesCount() const
    {
        return std::uint32_t(series_.size());
    }

    /** Retained closed windows, oldest first (ring per options). */
    const std::deque<WindowRecord> &windows() const { return windows_; }

    /** All-time closed-window count (ring drops don't subtract). */
    std::uint64_t windowsClosed() const { return closed_; }

    sim::SimTime windowWidth() const { return opts_.window; }

    /** Cumulative counter value of @p id (conservation checks). */
    std::int64_t counterValue(std::uint32_t id) const
    {
        const State &s = state_[id];
        return s.extCounter ? s.extCounter->value() : s.counter;
    }

    double gaugeValue(std::uint32_t id) const
    {
        const State &s = state_[id];
        return s.extGauge ? s.extGauge->value() : s.gaugeLast;
    }

    /** Cumulative distribution of a histogram series. */
    HistogramSnapshot histogramTotal(std::uint32_t id) const
    {
        const State &s = state_[id];
        return s.extHist ? s.extHist->snapshotBuckets()
                         : s.hist.snapshotBuckets();
    }

    /**
     * Order-sensitive FNV-1a digest over every closed window (index,
     * series identity, point payloads). The alert goldens pin this
     * next to the SloMonitor's alert digest.
     */
    std::uint64_t digest() const { return fp_.digest(); }
    ///@}

  private:
    /** Cumulative state of one series. Direct feeds accumulate into
     * the members; watched-registry series instead adopt a pointer to
     * the registry's (address-stable) metric and read it at close. */
    struct State
    {
        std::int64_t counter = 0;
        std::int64_t counterBase = 0;
        double gaugeLast = 0.0;
        double gaugeMax = 0.0;
        bool gaugeTouched = false;
        Histogram hist;
        HistogramSnapshot histBase;
        const Counter *extCounter = nullptr;
        const Gauge *extGauge = nullptr;
        const Histogram *extHist = nullptr;
    };

    /** Ordered key so series ids and iteration are deterministic. */
    struct Key
    {
        std::string metric;
        std::int32_t tenant;
        std::int32_t node;

        bool
        operator<(const Key &o) const
        {
            if (metric != o.metric)
                return metric < o.metric;
            if (tenant != o.tenant)
                return tenant < o.tenant;
            return node < o.node;
        }
    };

    std::uint32_t makeSeries(std::string_view metric, int tenant,
                             int node, SeriesKind kind);

    /** Close every window the clock has moved past. */
    void roll();

    /** Close [winStart, winStart + width) and advance the grid. */
    void closeWindow();

    /** Emit the window-delta point of series @p id, if any. */
    void emitPoint(std::uint32_t id, std::vector<WindowPoint> &out);

    /** Adopt any new metrics of one watched registry. */
    void emitRegistry(const Registry &reg);

    void mixWindow(const WindowRecord &w);

    sim::Simulation &sim_;
    TimeSeriesOptions opts_;
    /** Start of the in-progress window (grid-aligned). */
    sim::SimTime winStart_{0};
    std::uint64_t closed_ = 0;

    std::vector<SeriesDesc> series_;
    std::vector<State> state_;
    std::map<Key, std::uint32_t> index_;

    std::vector<const Registry *> watched_;

    std::deque<WindowRecord> windows_;
    std::vector<WindowListener *> listeners_;
    sim::Fingerprint fp_;
};

#else // !MOLECULE_TELEMETRY

/**
 * Telemetry compiled out: the collector keeps its full surface as
 * inline no-ops. Never constructible — call sites hold a
 * `TimeSeries *` that stays null, exactly like the Tracer stub — so
 * the guarded feed paths vanish and golden digests cannot move.
 */
class TimeSeries
{
  public:
    TimeSeries() = delete;

    std::uint32_t counterId(std::string_view, int = -1, int = -1)
    {
        return 0;
    }

    std::uint32_t gaugeId(std::string_view, int = -1, int = -1)
    {
        return 0;
    }

    std::uint32_t histogramId(std::string_view, int = -1, int = -1)
    {
        return 0;
    }

    void setThreshold(std::uint32_t, double) {}

    void count(std::uint32_t, std::int64_t = 1) {}

    void set(std::uint32_t, double) {}

    void observe(std::uint32_t, double) {}

    void observeTime(std::uint32_t, sim::SimTime) {}

    void watch(const Registry &) {}

    void addListener(WindowListener *) {}

    void flush() {}

    std::uint32_t seriesCount() const { return 0; }

    std::uint64_t windowsClosed() const { return 0; }

    std::uint64_t digest() const { return 0; }
};

#endif // MOLECULE_TELEMETRY

} // namespace molecule::obs

#endif // MOLECULE_OBS_TIMESERIES_HH
