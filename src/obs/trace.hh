/**
 * @file
 * Causal tracing: sim-time spans across every layer of the stack.
 *
 * A *trace* follows one invocation (or chain) from gateway admission
 * through scheduler placement, startup phases, XPU-Shim capability
 * sync, nIPC hops, sandbox execution and hardware activity. A *span*
 * is one named, timed section of that path, attributed to a layer
 * (core/xpu/os/sandbox/hw) and a PU.
 *
 * Determinism rules (see DESIGN.md §5):
 *  - Timestamps are sim time (Simulation::now), so a trace is as
 *    bit-reproducible as the simulation that produced it.
 *  - Trace ids derive from the simulation seed plus a per-tracer
 *    counter (FNV-1a), never from wallclock or addresses.
 *  - A Tracer belongs to ONE Simulation (per-replica, not global), so
 *    SweepRunner replicas record into independent collectors.
 *  - Observation must not perturb: spans only read the clock; they
 *    never schedule events or consume simulation randomness.
 *
 * Causal parenting is explicit: a span hands its SpanContext (a
 * trivially-copyable POD — safe as a coroutine parameter under the
 * GCC 12 rules of sim/task.hh) to callees, which construct child
 * spans from it. There is no thread-local "current span" on model
 * paths: coroutine interleavings make ambient stacks mis-parent.
 * The only ambient state is a pair of copied ids used to prefix log
 * lines (logging.cc hook), which is best-effort by design.
 *
 * Build gate: MOLECULE_TRACING (CMake option, default ON). OFF
 * collapses Span/SpanContext/Tracer to empty inline no-ops; call
 * sites are identical in both modes — the same pattern as
 * MOLECULE_DETERMINISM_ANALYSIS in sim/analysis.hh.
 */

#ifndef MOLECULE_OBS_TRACE_HH
#define MOLECULE_OBS_TRACE_HH

#ifndef MOLECULE_TRACING
#define MOLECULE_TRACING 1
#endif

#include <cstdint>

#include "obs/registry.hh"

#if MOLECULE_TRACING
#include <cstring>
#include <type_traits>

#include "obs/span_buffer.hh"
#include "sim/simulation.hh"
#endif

namespace molecule::obs {

/** The five instrumented layers of the stack. */
enum class Layer : std::uint8_t { Core, Xpu, Os, Sandbox, Hw };

const char *toString(Layer l);

class Tracer;

#if MOLECULE_TRACING

// SpanRecord lives in obs/span_buffer.hh together with its
// arena-backed container.

/**
 * Causal position inside a trace: which tracer, which trace, which
 * span to parent on. Default-constructed contexts are inert; spans
 * created from them are no-ops, which is what makes the whole layer
 * zero-cost when no tracer is attached.
 */
struct SpanContext
{
    Tracer *tracer = nullptr;
    std::uint64_t trace = 0;
    std::uint64_t span = 0;

    bool active() const { return tracer != nullptr; }
};

static_assert(std::is_trivially_copyable_v<SpanContext>,
              "SpanContext must stay safe as a coroutine parameter");

/**
 * Per-simulation span collector. Owns the finished-span buffer and a
 * metrics Registry fed one histogram sample per finished span (the
 * unified per-phase latency registry).
 */
class Tracer
{
  public:
    /**
     * @param sim the simulation whose clock stamps spans
     * @param seed the simulation's seed; trace ids derive from it
     * @param ringCapacity keep at most this many finished spans
     *        (oldest dropped); 0 = unbounded
     */
    explicit Tracer(sim::Simulation &sim, std::uint64_t seed = 42,
                    std::size_t ringCapacity = 0);

    Tracer(const Tracer &) = delete;
    Tracer &operator=(const Tracer &) = delete;

    /** @name Id allocation (deterministic: seed + counters) */
    ///@{
    std::uint64_t newTraceId();

    std::uint64_t newSpanId() { return nextSpanId_++; }
    ///@}

    std::int64_t now() const { return sim_.now().raw(); }

    /** Append one finished span (ring-bounded, allocation-free at
     * steady state — see SpanBuffer). */
    void push(const SpanRecord &rec);

    /**
     * Finished spans, oldest first (ring order already linearized).
     * The records live in the simulation's arena; anything that must
     * outlive the simulation copies out via SpanBuffer::snapshot().
     */
    const SpanBuffer &records() const { return records_; }

    /** Spans discarded because the ring filled (0 = complete). */
    std::uint64_t dropped() const { return dropped_; }

    /** Per-phase metrics: one histogram per span name, plus counters. */
    Registry &metrics() { return metrics_; }

    const Registry &metrics() const { return metrics_; }

    void clear();

  private:
    sim::Simulation &sim_;
    std::uint64_t seed_;
    std::uint64_t nextTrace_ = 1;
    std::uint64_t nextSpanId_ = 1;
    std::size_t ringCapacity_;
    std::uint64_t dropped_ = 0;
    SpanBuffer records_;
    Registry metrics_;
    /** Cached "spans.<layer>" counters: Registry nodes are
     * address-stable, so push() skips the name round trip. Reset by
     * clear() together with the registry. */
    Counter *layerCounters_[5] = {};
};

/**
 * RAII span. Construct from a parent SpanContext (child span) or via
 * root() (new trace). Destruction finishes the span; finish() may be
 * called earlier (idempotent) when the span must close before the
 * enclosing scope does — e.g. an invocation root span closes before
 * the keep-alive release that follows the measured end-to-end window.
 */
class Span
{
  public:
    /** Inert span (no tracer). */
    Span() = default;

    /** Child span of @p ctx; inert when @p ctx is. */
    Span(const SpanContext &ctx, const char *name, Layer layer,
         int pu = -1);

    /** Start a new trace rooted at this span; inert when @p tracer
     * is null. */
    static Span root(Tracer *tracer, const char *name, Layer layer,
                     int pu = -1);

    Span(const Span &) = delete;
    Span &operator=(const Span &) = delete;

    ~Span() { finish(); }

    /** Record the end timestamp and push the span (idempotent). */
    void finish();

    /** Context for child spans (inert when this span is). */
    SpanContext
    ctx() const
    {
        if (!open_)
            return SpanContext{};
        return SpanContext{tracer_, rec_.traceId, rec_.spanId};
    }

    bool active() const { return open_; }

    std::uint64_t traceId() const { return rec_.traceId; }

    std::uint64_t spanId() const { return rec_.spanId; }

    void
    setPu(int pu)
    {
        rec_.pu = pu;
    }

    void
    setArg(std::int64_t arg)
    {
        rec_.arg = arg;
    }

    /** Truncating copy of @p s into the record's detail buffer. */
    void
    setDetail(const char *s)
    {
        if (!open_ || s == nullptr)
            return;
        std::strncpy(rec_.detail, s, sizeof(rec_.detail) - 1);
        rec_.detail[sizeof(rec_.detail) - 1] = '\0';
    }

  private:
    Span(Tracer *tracer, std::uint64_t trace, std::uint64_t parent,
         const char *name, Layer layer, int pu);

    Tracer *tracer_ = nullptr;
    bool open_ = false;
    SpanRecord rec_;
    /** Ambient log-prefix ids shadowed by this span (restored on
     * finish only if still ours — see ambient notes in the header). */
    std::uint64_t prevAmbientTrace_ = 0;
    std::uint64_t prevAmbientSpan_ = 0;
};

/**
 * Install the sim/logging prefix hook: while any span is ambient on
 * the calling thread, log lines carry a "[trace:... span:...]"
 * prefix. Idempotent; called by the Tracer constructor.
 */
void installLogPrefixHook();

#else // !MOLECULE_TRACING

/**
 * Tracing compiled out: the whole surface collapses to empty inline
 * no-ops. Call sites are identical in both modes; SpanContext keeps
 * its fields (always zero) so code reading `ctx.trace` compiles.
 */
struct SpanContext
{
    Tracer *tracer = nullptr;
    std::uint64_t trace = 0;
    std::uint64_t span = 0;

    bool active() const { return false; }
};

class Tracer
{
  public:
    // Never constructed in this mode; declared so `Tracer *` members
    // and parameters compile unchanged.
    Tracer() = delete;

    // Call sites guard with `if (tracer != nullptr)`, which is always
    // false here (no Tracer is constructible); the body only has to
    // link, never run.
    Registry &
    metrics()
    {
        static Registry unreachable;
        return unreachable;
    }
};

class Span
{
  public:
    Span() = default;

    Span(const SpanContext &, const char *, Layer, int = -1) {}

    static Span
    root(Tracer *, const char *, Layer, int = -1)
    {
        return Span{};
    }

    Span(const Span &) = delete;
    Span &operator=(const Span &) = delete;

    void finish() {}

    SpanContext ctx() const { return SpanContext{}; }

    bool active() const { return false; }

    std::uint64_t traceId() const { return 0; }

    std::uint64_t spanId() const { return 0; }

    void setPu(int) {}

    void setArg(std::int64_t) {}

    void setDetail(const char *) {}
};

inline void
installLogPrefixHook()
{}

#endif // MOLECULE_TRACING

} // namespace molecule::obs

#endif // MOLECULE_OBS_TRACE_HH
