#include "cluster/stats.hh"

#include <algorithm>

namespace molecule::cluster {

ClusterStats::ClusterStats(obs::Registry &registry)
    : reg_(registry),
      arrivals_(&reg_.counter("cluster.arrivals")),
      admitted_(&reg_.counter("cluster.admitted")),
      shed_(&reg_.counter("cluster.shed")),
      dropped_(&reg_.counter("cluster.dropped")),
      completed_(&reg_.counter("cluster.completed")),
      errors_(&reg_.counter("cluster.errors")),
      queueMax_(&reg_.counter("cluster.queue_max_depth")),
      queueDepth_(&reg_.gauge("cluster.queue_depth")),
      e2eUs_(&reg_.histogram("cluster.e2e_us")),
      queueWaitUs_(&reg_.histogram("cluster.queue_wait_us")),
      execUs_(&reg_.histogram("cluster.exec_us"))
{
}

void
ClusterStats::attachTelemetry(obs::TimeSeries *ts)
{
    ts_ = ts;
    if (ts_ == nullptr)
        return;
    ts_->watch(reg_);
    tsQueueDepth_ = ts_->gaugeId("gateway.queue_depth");
    // Tenants/nodes touched before attachment get their series now;
    // later ones get theirs on first touch.
    for (auto &[t, state] : tenants_) {
        (void)state;
        tenant(t);
    }
    for (auto &[n, state] : nodes_) {
        (void)state;
        node(n);
    }
}

ClusterStats::TenantState &
ClusterStats::tenant(int t)
{
    TenantState &s = tenants_[t];
    if (ts_ != nullptr && !s.tsReady) {
        s.tsReady = true;
        s.tsArrivals = ts_->counterId("tenant.arrivals", t);
        s.tsAdmitted = ts_->counterId("tenant.admitted", t);
        s.tsShed = ts_->counterId("tenant.shed", t);
        s.tsDropped = ts_->counterId("tenant.dropped", t);
        s.tsCompleted = ts_->counterId("tenant.completed", t);
        s.tsErrors = ts_->counterId("tenant.errors", t);
        s.tsE2eUs = ts_->histogramId("tenant.e2e_us", t);
    }
    return s;
}

ClusterStats::NodeState &
ClusterStats::node(int n)
{
    NodeState &s = nodes_[n];
    if (ts_ != nullptr && !s.tsReady) {
        s.tsReady = true;
        s.tsCompleted = ts_->counterId("node.completed", -1, n);
        s.tsErrors = ts_->counterId("node.errors", -1, n);
        s.tsExecUs = ts_->histogramId("node.exec_us", -1, n);
    }
    return s;
}

void
ClusterStats::onArrival(int t)
{
    arrivals_->inc();
    TenantState &s = tenant(t);
    ++s.arrivals;
    if (ts_ != nullptr)
        ts_->count(s.tsArrivals);
}

void
ClusterStats::onShed(int t)
{
    shed_->inc();
    fp_.mix(0x5348ULL); // "SH"
    fp_.mix(std::uint64_t(t));
    TenantState &s = tenant(t);
    ++s.shed;
    if (ts_ != nullptr)
        ts_->count(s.tsShed);
}

void
ClusterStats::onDropped(int t)
{
    dropped_->inc();
    fp_.mix(0x4452ULL); // "DR"
    fp_.mix(std::uint64_t(t));
    TenantState &s = tenant(t);
    ++s.dropped;
    if (ts_ != nullptr)
        ts_->count(s.tsDropped);
}

void
ClusterStats::onAdmitted(int t)
{
    admitted_->inc();
    TenantState &s = tenant(t);
    ++s.admitted;
    if (ts_ != nullptr)
        ts_->count(s.tsAdmitted);
}

void
ClusterStats::onQueueDepth(std::size_t depth)
{
    queueDepth_->set(double(depth));
    if (std::int64_t(depth) > queueMax_->value()) {
        queueMax_->reset();
        queueMax_->inc(std::int64_t(depth));
    }
    if (ts_ != nullptr)
        ts_->set(tsQueueDepth_, double(depth));
}

void
ClusterStats::onDispatched(sim::SimTime queueWait)
{
    queueWaitUs_->addTime(queueWait);
}

void
ClusterStats::onCompleted(int n, const obs::InvocationRecord &rec,
                          sim::SimTime endToEnd, int t,
                          std::uint64_t transferBytes)
{
    completed_->inc();
    e2eUs_->addTime(endToEnd);
    execUs_->addTime(rec.execution);
    charge(n, rec.pu, rec.execution);
    fp_.mix(std::uint64_t(endToEnd.raw()));
    fp_.mix(std::uint64_t(n));
    fp_.mix(std::uint64_t(rec.pu));
    fp_.mix(std::uint64_t(t));
    TenantState &ts = tenant(t);
    ++ts.completed;
    ts.e2eUs.addTime(endToEnd);
    if (cost_ != nullptr) {
        const auto it = puTypes_.find({n, rec.pu});
        const hw::PuType kind = it != puTypes_.end()
                                    ? it->second
                                    : hw::PuType::HostCpu;
        const double dollars = cost_->invocationCost(
            kind, rec.execution, transferBytes);
        totalCost_ += dollars;
        ts.cost += dollars;
        fp_.mixDouble(dollars);
    }
    NodeState &ns = node(n);
    if (ts_ != nullptr) {
        ts_->count(ts.tsCompleted);
        ts_->observeTime(ts.tsE2eUs, endToEnd);
        ts_->count(ns.tsCompleted);
        ts_->observeTime(ns.tsExecUs, rec.execution);
    }
}

void
ClusterStats::onError(int n, std::uint8_t errc, int t)
{
    errors_->inc();
    fp_.mix(0x4552ULL); // "ER"
    fp_.mix(std::uint64_t(n));
    fp_.mix(std::uint64_t(errc));
    fp_.mix(std::uint64_t(t));
    TenantState &ts = tenant(t);
    ++ts.errors;
    NodeState &ns = node(n);
    if (ts_ != nullptr) {
        ts_->count(ts.tsErrors);
        ts_->count(ns.tsErrors);
    }
}

void
ClusterStats::charge(int node, int pu, sim::SimTime busy)
{
    busy_[{node, pu}] += busy;
}

void
ClusterStats::setCostModel(
    const CostModel *model,
    std::map<std::pair<int, int>, hw::PuType> puTypes)
{
    cost_ = model;
    puTypes_ = std::move(puTypes);
}

ClusterSummary
ClusterStats::summarize(
    sim::SimTime horizon,
    const std::map<std::pair<int, int>, int> &cores) const
{
    ClusterSummary s;
    s.arrivals = arrivals_->value();
    s.admitted = admitted_->value();
    s.shed = shed_->value();
    s.dropped = dropped_->value();
    s.completed = completed_->value();
    s.errors = errors_->value();
    s.queueMaxDepth = queueMax_->value();
    if (horizon.raw() > 0)
        s.throughputPerSecond =
            double(s.completed) / horizon.toSeconds();
    s.p50Us = e2eUs_->percentile(50);
    s.p99Us = e2eUs_->percentile(99);
    s.p999Us = e2eUs_->percentile(99.9);
    s.meanUs = e2eUs_->mean();
    s.queueWaitP99Us = queueWaitUs_->percentile(99);
    s.totalCost = totalCost_;
    if (s.completed > 0)
        s.costPerInvocation = totalCost_ / double(s.completed);
    for (const auto &[key, busy] : busy_) {
        PuUtilization u;
        u.node = key.first;
        u.pu = key.second;
        u.busy = busy;
        const auto it = cores.find(key);
        const int n = it != cores.end() ? std::max(it->second, 1) : 1;
        if (horizon.raw() > 0)
            u.utilization =
                busy.toSeconds() / (horizon.toSeconds() * double(n));
        s.utilization.push_back(u);
    }
    for (const auto &[t, state] : tenants_) {
        TenantSummary row;
        row.tenant = t;
        row.arrivals = state.arrivals;
        row.admitted = state.admitted;
        row.shed = state.shed;
        row.dropped = state.dropped;
        row.completed = state.completed;
        row.errors = state.errors;
        row.p50Us = state.e2eUs.percentile(50);
        row.p99Us = state.e2eUs.percentile(99);
        row.meanUs = state.e2eUs.mean();
        row.cost = state.cost;
        s.tenants.push_back(row);
    }
    return s;
}

std::uint64_t
ClusterStats::digest() const
{
    // Close over the running stream with the final counters so two
    // runs differing only in tail bookkeeping cannot collide.
    sim::Fingerprint fp = fp_;
    fp.mix(std::uint64_t(arrivals_->value()));
    fp.mix(std::uint64_t(admitted_->value()));
    fp.mix(std::uint64_t(shed_->value()));
    fp.mix(std::uint64_t(dropped_->value()));
    fp.mix(std::uint64_t(completed_->value()));
    fp.mix(std::uint64_t(errors_->value()));
    for (const auto &[key, busy] : busy_) {
        fp.mix(std::uint64_t(key.first));
        fp.mix(std::uint64_t(key.second));
        fp.mix(std::uint64_t(busy.raw()));
    }
    for (const auto &[t, state] : tenants_) {
        fp.mix(std::uint64_t(t));
        fp.mix(std::uint64_t(state.arrivals));
        fp.mix(std::uint64_t(state.admitted));
        fp.mix(std::uint64_t(state.shed));
        fp.mix(std::uint64_t(state.dropped));
        fp.mix(std::uint64_t(state.completed));
        fp.mix(std::uint64_t(state.errors));
    }
    // Cost joins the fold only when a model is attached, so goldens
    // pinned on cost-free runs stay bit-identical.
    if (cost_ != nullptr)
        fp.mixDouble(totalCost_);
    return fp.digest();
}

} // namespace molecule::cluster
