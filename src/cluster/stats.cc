#include "cluster/stats.hh"

#include <algorithm>

namespace molecule::cluster {

ClusterStats::ClusterStats(obs::Registry &registry)
    : reg_(registry),
      arrivals_(&reg_.counter("cluster.arrivals")),
      admitted_(&reg_.counter("cluster.admitted")),
      shed_(&reg_.counter("cluster.shed")),
      dropped_(&reg_.counter("cluster.dropped")),
      completed_(&reg_.counter("cluster.completed")),
      errors_(&reg_.counter("cluster.errors")),
      queueMax_(&reg_.counter("cluster.queue_max_depth")),
      queueDepth_(&reg_.gauge("cluster.queue_depth")),
      e2eUs_(&reg_.histogram("cluster.e2e_us")),
      queueWaitUs_(&reg_.histogram("cluster.queue_wait_us")),
      execUs_(&reg_.histogram("cluster.exec_us"))
{
}

void
ClusterStats::onShed()
{
    shed_->inc();
    fp_.mix(0x5348ULL); // "SH"
}

void
ClusterStats::onDropped()
{
    dropped_->inc();
    fp_.mix(0x4452ULL); // "DR"
}

void
ClusterStats::onQueueDepth(std::size_t depth)
{
    queueDepth_->set(double(depth));
    if (std::int64_t(depth) > queueMax_->value()) {
        queueMax_->reset();
        queueMax_->inc(std::int64_t(depth));
    }
}

void
ClusterStats::onDispatched(sim::SimTime queueWait)
{
    queueWaitUs_->addTime(queueWait);
}

void
ClusterStats::onCompleted(int node, const obs::InvocationRecord &rec,
                          sim::SimTime endToEnd)
{
    completed_->inc();
    e2eUs_->addTime(endToEnd);
    execUs_->addTime(rec.execution);
    charge(node, rec.pu, rec.execution);
    fp_.mix(std::uint64_t(endToEnd.raw()));
    fp_.mix(std::uint64_t(node));
    fp_.mix(std::uint64_t(rec.pu));
}

void
ClusterStats::onError(int node, std::uint8_t errc)
{
    errors_->inc();
    fp_.mix(0x4552ULL); // "ER"
    fp_.mix(std::uint64_t(node));
    fp_.mix(std::uint64_t(errc));
}

void
ClusterStats::charge(int node, int pu, sim::SimTime busy)
{
    busy_[{node, pu}] += busy;
}

ClusterSummary
ClusterStats::summarize(
    sim::SimTime horizon,
    const std::map<std::pair<int, int>, int> &cores) const
{
    ClusterSummary s;
    s.arrivals = arrivals_->value();
    s.admitted = admitted_->value();
    s.shed = shed_->value();
    s.dropped = dropped_->value();
    s.completed = completed_->value();
    s.errors = errors_->value();
    s.queueMaxDepth = queueMax_->value();
    if (horizon.raw() > 0)
        s.throughputPerSecond =
            double(s.completed) / horizon.toSeconds();
    s.p50Us = e2eUs_->percentile(50);
    s.p99Us = e2eUs_->percentile(99);
    s.p999Us = e2eUs_->percentile(99.9);
    s.meanUs = e2eUs_->mean();
    s.queueWaitP99Us = queueWaitUs_->percentile(99);
    for (const auto &[key, busy] : busy_) {
        PuUtilization u;
        u.node = key.first;
        u.pu = key.second;
        u.busy = busy;
        const auto it = cores.find(key);
        const int n = it != cores.end() ? std::max(it->second, 1) : 1;
        if (horizon.raw() > 0)
            u.utilization =
                busy.toSeconds() / (horizon.toSeconds() * double(n));
        s.utilization.push_back(u);
    }
    return s;
}

std::uint64_t
ClusterStats::digest() const
{
    // Close over the running stream with the final counters so two
    // runs differing only in tail bookkeeping cannot collide.
    sim::Fingerprint fp = fp_;
    fp.mix(std::uint64_t(arrivals_->value()));
    fp.mix(std::uint64_t(admitted_->value()));
    fp.mix(std::uint64_t(shed_->value()));
    fp.mix(std::uint64_t(dropped_->value()));
    fp.mix(std::uint64_t(completed_->value()));
    fp.mix(std::uint64_t(errors_->value()));
    for (const auto &[key, busy] : busy_) {
        fp.mix(std::uint64_t(key.first));
        fp.mix(std::uint64_t(key.second));
        fp.mix(std::uint64_t(busy.raw()));
    }
    return fp.digest();
}

} // namespace molecule::cluster
