#include "cluster/cost.hh"

#include <algorithm>

namespace molecule::cluster {

double
CostModel::perSecond(hw::PuType kind) const
{
    switch (kind) {
    case hw::PuType::Dpu:
        return rates_.dpuSecond;
    case hw::PuType::HostCpu:
        return rates_.hostCpuSecond;
    case hw::PuType::GpuHost:
        return rates_.gpuHostSecond;
    case hw::PuType::FpgaHost:
        return rates_.fpgaHostSecond;
    }
    return rates_.hostCpuSecond;
}

double
CostModel::invocationCost(hw::PuType kind, sim::SimTime execution,
                          std::uint64_t transferBytes) const
{
    const double execDollars =
        execution.toSeconds() * perSecond(kind);
    const double transferDollars = double(transferBytes) /
                                   double(1ULL << 30) *
                                   rates_.perTransferGb;
    return execDollars + rates_.perInvocation + transferDollars;
}

std::vector<ParetoPoint>
paretoFrontier(std::vector<ParetoPoint> &points)
{
    for (ParetoPoint &p : points) {
        p.dominated = false;
        for (const ParetoPoint &q : points) {
            if (&p == &q)
                continue;
            const bool noWorse =
                q.p99Us <= p.p99Us && q.cost <= p.cost;
            const bool better =
                q.p99Us < p.p99Us || q.cost < p.cost;
            if (noWorse && better) {
                p.dominated = true;
                break;
            }
        }
    }
    std::vector<ParetoPoint> frontier;
    for (const ParetoPoint &p : points)
        if (!p.dominated)
            frontier.push_back(p);
    std::sort(frontier.begin(), frontier.end(),
              [](const ParetoPoint &a, const ParetoPoint &b) {
                  if (a.p99Us != b.p99Us)
                      return a.p99Us < b.p99Us;
                  if (a.cost != b.cost)
                      return a.cost < b.cost;
                  return a.label < b.label;
              });
    return frontier;
}

} // namespace molecule::cluster
