/**
 * @file
 * Dollar-cost model for fleet runs (the cost axis of the policy
 * scoreboard).
 *
 * Serverless pricing charges for resource-seconds, not machines: an
 * invocation costs its execution time at the serving PU's rate, plus
 * a flat per-request fee, plus egress on cross-PU transfer. The rates
 * mirror the paper's pricing argument (§4.1): DPU seconds are cheaper
 * than host-CPU seconds, accelerators dearer — so a placement policy
 * that spills work to hosts buys throughput with dollars, and the
 * policy_report Pareto tables make that trade visible.
 *
 * All arithmetic is plain double on exact simulated durations, so
 * accumulated cost is bit-reproducible for a given event stream.
 */

#ifndef MOLECULE_CLUSTER_COST_HH
#define MOLECULE_CLUSTER_COST_HH

#include <cstdint>
#include <string>
#include <vector>

#include "hw/pu.hh"
#include "sim/time.hh"

namespace molecule::cluster {

/** Price card: $ per PU-second by kind, plus request/transfer fees. */
struct CostRates
{
    /** $ per second of DPU execution (cheapest compute). */
    double dpuSecond = 0.6e-4;
    /** $ per second of host-CPU execution. */
    double hostCpuSecond = 1.0e-4;
    /** $ per second of GPU-host execution. */
    double gpuHostSecond = 2.0e-4;
    /** $ per second of FPGA-host execution (dearest). */
    double fpgaHostSecond = 3.0e-4;
    /** Flat fee per invocation (request handling). */
    double perInvocation = 0.2e-6;
    /** $ per GB moved across PUs (manager -> worker delivery). */
    double perTransferGb = 0.01;
};

/**
 * Per-invocation cost model; pure arithmetic, no state.
 */
class CostModel
{
  public:
    CostModel() = default;

    explicit CostModel(const CostRates &rates) : rates_(rates) {}

    const CostRates &rates() const { return rates_; }

    /** $ per second of execution on @p kind. */
    double perSecond(hw::PuType kind) const;

    /**
     * Full cost of one completed invocation: execution seconds at the
     * PU rate + the flat request fee + transfer egress.
     */
    double invocationCost(hw::PuType kind, sim::SimTime execution,
                          std::uint64_t transferBytes) const;

  private:
    CostRates rates_;
};

/** One candidate on the latency/cost plane (policy_report rows). */
struct ParetoPoint
{
    std::string label;
    /** Tail latency, microseconds (lower is better). */
    double p99Us = 0.0;
    /** Accumulated dollars (lower is better). */
    double cost = 0.0;
    /** Completions per second (context, not a frontier axis). */
    double throughput = 0.0;
    /** Set by paretoFrontier: dominated by some other point. */
    bool dominated = false;
};

/**
 * Mark dominated points: a point is dominated when another point is
 * no worse on both axes (p99Us, cost) and strictly better on at
 * least one. Returns the frontier (non-dominated points) sorted by
 * ascending p99Us, ties by ascending cost, then label — fully
 * deterministic for identical inputs.
 */
std::vector<ParetoPoint>
paretoFrontier(std::vector<ParetoPoint> &points);

} // namespace molecule::cluster

#endif // MOLECULE_CLUSTER_COST_HH
