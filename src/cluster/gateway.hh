/**
 * @file
 * ClusterGateway: the cluster front door.
 *
 * Every arrival of the open-loop stream passes three stages:
 *
 *  1. admission — a token bucket polices the aggregate rate; arrivals
 *     that find the bucket empty are *shed* immediately (the client
 *     sees a fast rejection, the cluster sees no work);
 *  2. backlog — admitted arrivals that find every node at its
 *     outstanding cap wait in one bounded FIFO; overflow *drops*
 *     per the configured policy (newest or oldest first);
 *  3. dispatch — a pluggable DispatchPolicy picks the serving node
 *     among those with a free slot; the invocation then runs the full
 *     per-node Molecule pipeline (scheduling, startup, execution).
 *
 * Shed and dropped arrivals consume no node resources — that is the
 * point of admission control: under saturation the cluster keeps
 * serving the admitted fraction at bounded tail latency instead of
 * letting the backlog (and p999) grow without bound.
 *
 * The DispatchPolicy interface is the seam where cluster-level
 * scheduling research plugs in (ROADMAP item "scheduling-policy
 * comparison harness"): policies see arrivals and per-node outstanding
 * work, nothing else, so new policies cannot break determinism.
 */

#ifndef MOLECULE_CLUSTER_GATEWAY_HH
#define MOLECULE_CLUSTER_GATEWAY_HH

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "cluster/fleet.hh"
#include "cluster/stats.hh"
#include "load/generator.hh"

namespace molecule::obs {
class FlightRecorder;
}

namespace molecule::cluster {

/** What the bounded queue evicts when it overflows. */
enum class DropPolicy {
    /** Reject the arriving request (classic tail drop). */
    DropNewest,
    /** Evict the stalest queued request to make room. */
    DropOldest,
};

const char *toString(DropPolicy p);

/** Gateway admission knobs. */
struct AdmissionOptions
{
    /** Token-bucket refill rate; 0 disables rate policing. */
    double tokensPerSecond = 0.0;
    /** Token-bucket burst allowance. */
    double bucketCapacity = 64.0;
    /** Bounded-backlog capacity (0 = no queue: full cluster drops). */
    std::size_t queueCapacity = 1024;
    DropPolicy dropPolicy = DropPolicy::DropNewest;
    /** Concurrency cap per node (in-flight invocations). */
    int maxOutstandingPerNode = 64;
    /** Per-invocation resilience knobs forwarded to the nodes. */
    core::InvokeOptions invoke;
};

/**
 * Node-selection seam. Implementations must be pure functions of
 * their inputs and their own deterministic state — no wall clock, no
 * global RNG — so gateway runs stay bit-for-bit replayable.
 */
class DispatchPolicy
{
  public:
    virtual ~DispatchPolicy() = default;

    virtual const char *name() const = 0;

    /**
     * Pick the serving node for @p a. @p outstanding holds per-node
     * in-flight counts; nodes at @p cap are ineligible.
     * @return node index, or -1 when every node is at cap.
     */
    virtual int pick(const load::Arrival &a,
                     std::span<const int> outstanding, int cap) = 0;

    /** Completion feedback (optional; default ignores it). */
    virtual void
    onComplete(const load::Arrival &a, int node)
    {
        (void)a;
        (void)node;
    }
};

/** Rotate through the nodes, skipping full ones. */
class RoundRobinPolicy final : public DispatchPolicy
{
  public:
    const char *name() const override { return "round-robin"; }

    int pick(const load::Arrival &a, std::span<const int> outstanding,
             int cap) override;

  private:
    std::size_t cursor_ = 0;
};

/** Join the shortest queue: fewest in-flight wins, lowest id ties. */
class LeastOutstandingPolicy final : public DispatchPolicy
{
  public:
    const char *name() const override { return "least-outstanding"; }

    int pick(const load::Arrival &a, std::span<const int> outstanding,
             int cap) override;
};

/**
 * Warm affinity: keep a function on the node that served it last so
 * its warm instances (cfork templates, keep-alive pools) get reused;
 * fall back to least-outstanding when the home node is full — and
 * adopt the fallback as the new home (the warm pool follows).
 */
class WarmAffinityPolicy final : public DispatchPolicy
{
  public:
    const char *name() const override { return "warm-affinity"; }

    int pick(const load::Arrival &a, std::span<const int> outstanding,
             int cap) override;

  private:
    /** function index -> home node. */
    std::map<std::uint32_t, int> home_;
};

/**
 * Everything a ClusterGateway needs, in one validated aggregate —
 * the knobs that used to sprawl across constructor arguments.
 * Pointers are non-owning and must outlive the gateway.
 */
struct GatewayConfig
{
    /** Maps Arrival::fn indices to registered function names. */
    std::vector<std::string> functions;
    /** Rate policing / backlog / concurrency knobs. */
    AdmissionOptions admission;
    /** Node-selection policy; null installs a gateway-owned
     * least-outstanding default. */
    DispatchPolicy *dispatch = nullptr;
    /** Scoreboard every event lands on (required). */
    ClusterStats *stats = nullptr;
    /** Post-mortem bundle dump on Errc::Hang (optional). */
    obs::FlightRecorder *recorder = nullptr;

    /** Structural sanity: required fields present, knobs in range. */
    core::Status validate() const;

    /** The common case: functions + scoreboard, default admission,
     * default (least-outstanding) dispatch. */
    static GatewayConfig forFunctions(std::vector<std::string> fns,
                                      ClusterStats &stats);
};

/**
 * The front door, fed by load::drive (it is an ArrivalSink).
 *
 * @code
 *   cluster::Fleet fleet(sim, fleetSpec);
 *   fleet.registerCpuFunction("helloworld", kinds);
 *   fleet.start();
 *   cluster::ClusterStats stats(registry);
 *   cluster::GatewayConfig cfg =
 *       cluster::GatewayConfig::forFunctions(spec.functions, stats);
 *   cfg.admission.tokensPerSecond = 300.0;
 *   cluster::ClusterGateway gw(fleet, cfg);
 *   load::OpenLoopGenerator gen(spec);
 *   sim.spawn(load::drive(sim, gen, gw));
 *   sim.run();
 * @endcode
 */
class ClusterGateway final : public load::ArrivalSink
{
  public:
    /** Asserts config.validate() — fix the config, not the crash. */
    ClusterGateway(Fleet &fleet, GatewayConfig config);

    void onArrival(const load::Arrival &a) override;

    std::size_t queueDepth() const { return queue_.size(); }

    int outstanding(int node) const
    {
        return outstanding_.at(std::size_t(node));
    }

    /** True when no work is queued or in flight. */
    bool idle() const;

    const AdmissionOptions &options() const { return opts_; }

    DispatchPolicy &policy() { return *policy_; }

  private:
    /** Lazy token-bucket refill up to the burst capacity. */
    void refill();

    /** Dispatch queued arrivals while any node has a free slot. */
    void pump();

    void dispatch(const load::Arrival &a, int node);

    /** Serve one invocation on @p node (copies its arguments). */
    sim::Task<> serve(load::Arrival a, int node);

    Fleet &fleet_;
    std::vector<std::string> functions_;
    AdmissionOptions opts_;
    /** Set only when the config left dispatch null. */
    std::unique_ptr<DispatchPolicy> ownedPolicy_;
    DispatchPolicy *policy_;
    ClusterStats &stats_;
    obs::FlightRecorder *recorder_ = nullptr;

    double tokens_;
    sim::SimTime lastRefill_{0};
    std::deque<load::Arrival> queue_;
    std::vector<int> outstanding_;
};

} // namespace molecule::cluster

#endif // MOLECULE_CLUSTER_GATEWAY_HH
