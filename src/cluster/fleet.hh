/**
 * @file
 * Fleet: N heterogeneous computers as one simulated cluster.
 *
 * Each node is a full hw::Computer plus its core::Molecule runtime —
 * the same stack every single-machine bench drives — sharing one
 * Simulation so cluster-level scheduling decisions and per-node
 * progress interleave on a single deterministic virtual clock.
 * Function registration fans out to every node (a serverless cluster
 * deploys the catalog everywhere; placement is the gateway's job).
 *
 * The fleet is homogeneous-by-spec but heterogeneous-by-node: every
 * node carries a host CPU plus `dpusPerNode` DPUs, so per-node
 * placement still exercises the paper's CPU/DPU profile selection
 * while the cluster layer balances across machines.
 */

#ifndef MOLECULE_CLUSTER_FLEET_HH
#define MOLECULE_CLUSTER_FLEET_HH

#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "core/molecule.hh"
#include "hw/computer.hh"

namespace molecule::cluster {

/** Shape of the fleet (one spec builds every node). */
struct FleetSpec
{
    /** Number of worker machines. */
    int nodes = 2;
    /** BlueField DPUs per node (0 = CPU-only nodes). */
    int dpusPerNode = 2;
    hw::DpuGeneration dpuGeneration = hw::DpuGeneration::Bf2;
    /** Warm instances kept per (function, PU) on every node. */
    std::size_t warmCapacity = 256;
    /** Runtime options template applied to every node; startup
     * warm capacity is overridden by `warmCapacity`. */
    core::MoleculeOptions runtime;
};

/**
 * The worker tier: owns computers and runtimes, index-addressed.
 */
class Fleet
{
  public:
    Fleet(sim::Simulation &sim, const FleetSpec &spec);

    Fleet(const Fleet &) = delete;
    Fleet &operator=(const Fleet &) = delete;

    int size() const { return int(runtimes_.size()); }

    const FleetSpec &spec() const { return spec_; }

    sim::Simulation &simulation() { return sim_; }

    core::Molecule &node(int i) { return *runtimes_.at(std::size_t(i)); }

    hw::Computer &computer(int i)
    {
        return *computers_.at(std::size_t(i));
    }

    /** Register a catalog CPU function on every node. */
    void registerCpuFunction(const std::string &name,
                             const std::vector<hw::PuType> &kinds);

    /** Boot every node (runs the simulation to completion). */
    void start();

    /** (node, pu) -> core count, for utilization normalization. */
    std::map<std::pair<int, int>, int> coreTable() const;

    /** (node, pu) -> PU kind, for the cost model's rate lookup. */
    std::map<std::pair<int, int>, hw::PuType> puTypeTable() const;

    /** Total PUs across the fleet. */
    int totalPus() const;

  private:
    sim::Simulation &sim_;
    FleetSpec spec_;
    std::vector<std::unique_ptr<hw::Computer>> computers_;
    std::vector<std::unique_ptr<core::Molecule>> runtimes_;
};

} // namespace molecule::cluster

#endif // MOLECULE_CLUSTER_FLEET_HH
