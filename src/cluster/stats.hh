/**
 * @file
 * ClusterStats: the tail-latency scoreboard of one fleet run.
 *
 * Every admission decision and completion of the ClusterGateway lands
 * here, published through the existing obs::Registry vocabulary
 * (counters / gauges / log-bucketed histograms) so tools read cluster
 * numbers exactly like per-invocation trace metrics:
 *
 *   counters   cluster.arrivals / admitted / shed / dropped /
 *              completed / errors, cluster.queue_max_depth
 *   gauges     cluster.queue_depth (current backlog)
 *   histograms cluster.e2e_us (arrival -> completion, queue wait
 *              included), cluster.queue_wait_us, cluster.exec_us
 *
 * Per-PU utilization is tracked exactly (busy nanoseconds per
 * (node, pu), divided by horizon x cores at report time) rather than
 * through bucketed histograms, and the whole scoreboard folds into an
 * order-sensitive FNV-1a digest the golden tests pin serial and under
 * SweepRunner.
 */

#ifndef MOLECULE_CLUSTER_STATS_HH
#define MOLECULE_CLUSTER_STATS_HH

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "cluster/cost.hh"
#include "obs/records.hh"
#include "obs/registry.hh"
#include "obs/timeseries.hh"
#include "sim/stats.hh"
#include "sim/time.hh"

namespace molecule::cluster {

/** Utilization of one PU over the run horizon. */
struct PuUtilization
{
    int node = 0;
    int pu = 0;
    /** Sum of execution time charged to this PU. */
    sim::SimTime busy;
    /** busy / (horizon x cores); may exceed 1 transiently when more
     * instances than cores overlap (cores queue, execution spans
     * include the overlap). */
    double utilization = 0.0;
};

/** Per-tenant slice of the scoreboard. */
struct TenantSummary
{
    int tenant = 0;
    std::int64_t arrivals = 0;
    std::int64_t admitted = 0;
    std::int64_t shed = 0;
    std::int64_t dropped = 0;
    std::int64_t completed = 0;
    std::int64_t errors = 0;
    /** End-to-end latency of this tenant's completions, us. */
    double p50Us = 0.0;
    double p99Us = 0.0;
    double meanUs = 0.0;
    /** Accumulated $ of this tenant's completions (0 without a cost
     * model attached). */
    double cost = 0.0;
};

/** Snapshot of the scoreboard (one row of a rate-ladder table). */
struct ClusterSummary
{
    std::int64_t arrivals = 0;
    std::int64_t admitted = 0;
    /** Rejected by the token bucket (rate policing). */
    std::int64_t shed = 0;
    /** Evicted from the bounded queue (backlog overflow). */
    std::int64_t dropped = 0;
    std::int64_t completed = 0;
    /** Typed invocation errors (NoCapacity under overload, faults). */
    std::int64_t errors = 0;
    std::int64_t queueMaxDepth = 0;
    /** Completions per simulated second. */
    double throughputPerSecond = 0.0;
    /** End-to-end latency percentiles, microseconds. */
    double p50Us = 0.0;
    double p99Us = 0.0;
    double p999Us = 0.0;
    double meanUs = 0.0;
    double queueWaitP99Us = 0.0;
    /** Accumulated $ across all completions (0 without a model). */
    double totalCost = 0.0;
    /** Mean $ per completed invocation. */
    double costPerInvocation = 0.0;
    std::vector<PuUtilization> utilization;
    /** Per-tenant attribution, ascending tenant id. */
    std::vector<TenantSummary> tenants;
};

/**
 * Scoreboard over one run; owns nothing, writes into the registry the
 * caller provides (one registry per replica keeps SweepRunner runs
 * isolated).
 */
class ClusterStats
{
  public:
    explicit ClusterStats(obs::Registry &registry);

    obs::Registry &registry() { return reg_; }

    /**
     * Mirror the feed into a windowed TimeSeries: per-tenant
     * "tenant.*" series, per-node "node.*" series and the
     * "gateway.queue_depth" gauge (label ids are the tenant/node
     * indices — see the cardinality rule in obs/timeseries.hh). The
     * run-total registry is watch()ed too, so the cluster.* vocabulary
     * shows up windowed for free. Telemetry-off builds make this a
     * no-op (the stub TimeSeries cannot be constructed, so @p ts is
     * never non-null there). Observation only: attaching must not —
     * and by construction cannot — change stats digests.
     */
    void attachTelemetry(obs::TimeSeries *ts);

    /** @name Gateway feed (one call per event, in event order;
     * @p tenant is the arrival's tenant label) */
    ///@{
    void onArrival(int tenant = 0);

    void onShed(int tenant = 0);

    void onDropped(int tenant = 0);

    void onAdmitted(int tenant = 0);

    void onQueueDepth(std::size_t depth);

    void onDispatched(sim::SimTime queueWait);

    /** A completed invocation served on (node, rec.pu);
     * @p transferBytes is the cross-PU delivery volume (cost model
     * egress — 0 when the manager PU served it directly). */
    void onCompleted(int node, const obs::InvocationRecord &rec,
                     sim::SimTime endToEnd, int tenant = 0,
                     std::uint64_t transferBytes = 0);

    /** A typed failure (the arrival was admitted but not served). */
    void onError(int node, std::uint8_t errc, int tenant = 0);
    ///@}

    /** Busy-time charge for utilization (normally via onCompleted). */
    void charge(int node, int pu, sim::SimTime busy);

    /**
     * Attach the $-cost model: every later completion accrues
     * invocationCost() under its tenant. @p puTypes maps (node, pu)
     * to kinds for the per-PU-second rate (see Fleet::puTypeTable).
     * Null detaches. Attachment changes the digest domain (cost joins
     * the fold), so goldens pinned without a model stay untouched.
     */
    void setCostModel(const CostModel *model,
                      std::map<std::pair<int, int>, hw::PuType>
                          puTypes = {});

    /** Accumulated $ so far (0 without a model). */
    double totalCost() const { return totalCost_; }

    /**
     * Summarize the scoreboard over @p horizon. @p cores maps flat
     * (node, pu) pairs to core counts for utilization; pass the
     * fleet's table (see Fleet::coreTable).
     */
    ClusterSummary
    summarize(sim::SimTime horizon,
              const std::map<std::pair<int, int>, int> &cores) const;

    /**
     * Order-sensitive digest of everything recorded so far: every
     * completion (latency, node, pu) and error in arrival order plus
     * the final counters. Bit-identical across replays of the same
     * scenario — the cluster golden the determinism tests pin.
     */
    std::uint64_t digest() const;

  private:
    /**
     * Per-tenant slice: exact counters, a private latency histogram
     * for the summary percentiles, and (when telemetry is attached)
     * the tenant-labeled series ids. Tenants materialize on first
     * touch, so the map stays as small as the traffic mix.
     */
    struct TenantState
    {
        std::int64_t arrivals = 0;
        std::int64_t admitted = 0;
        std::int64_t shed = 0;
        std::int64_t dropped = 0;
        std::int64_t completed = 0;
        std::int64_t errors = 0;
        double cost = 0.0;
        obs::Histogram e2eUs;
        bool tsReady = false;
        std::uint32_t tsArrivals = 0;
        std::uint32_t tsAdmitted = 0;
        std::uint32_t tsShed = 0;
        std::uint32_t tsDropped = 0;
        std::uint32_t tsCompleted = 0;
        std::uint32_t tsErrors = 0;
        std::uint32_t tsE2eUs = 0;
    };

    /** Per-node telemetry series ids (exact totals live in busy_). */
    struct NodeState
    {
        bool tsReady = false;
        std::uint32_t tsCompleted = 0;
        std::uint32_t tsErrors = 0;
        std::uint32_t tsExecUs = 0;
    };

    TenantState &tenant(int t);

    NodeState &node(int n);

    obs::Registry &reg_;
    obs::Counter *arrivals_;
    obs::Counter *admitted_;
    obs::Counter *shed_;
    obs::Counter *dropped_;
    obs::Counter *completed_;
    obs::Counter *errors_;
    obs::Counter *queueMax_;
    obs::Gauge *queueDepth_;
    obs::Histogram *e2eUs_;
    obs::Histogram *queueWaitUs_;
    obs::Histogram *execUs_;

    /** Exact busy nanoseconds per (node, pu). */
    std::map<std::pair<int, int>, sim::SimTime> busy_;

    std::map<int, TenantState> tenants_;
    std::map<int, NodeState> nodes_;

    /** Attached collector (null: telemetry mirroring off). */
    obs::TimeSeries *ts_ = nullptr;
    std::uint32_t tsQueueDepth_ = 0;

    /** Attached price card (null: cost accounting off). */
    const CostModel *cost_ = nullptr;
    std::map<std::pair<int, int>, hw::PuType> puTypes_;
    double totalCost_ = 0.0;

    sim::Fingerprint fp_;
};

} // namespace molecule::cluster

#endif // MOLECULE_CLUSTER_STATS_HH
