#include "cluster/fleet.hh"

namespace molecule::cluster {

Fleet::Fleet(sim::Simulation &sim, const FleetSpec &spec)
    : sim_(sim), spec_(spec)
{
    const int n = spec_.nodes > 0 ? spec_.nodes : 1;
    computers_.reserve(std::size_t(n));
    runtimes_.reserve(std::size_t(n));
    for (int i = 0; i < n; ++i) {
        auto computer = hw::buildCpuDpuServer(sim_, spec_.dpusPerNode,
                                              spec_.dpuGeneration);
        core::MoleculeOptions options = spec_.runtime;
        options.startup.warmCapacity = spec_.warmCapacity;
        runtimes_.push_back(std::make_unique<core::Molecule>(
            *computer, options));
        computers_.push_back(std::move(computer));
    }
}

void
Fleet::registerCpuFunction(const std::string &name,
                           const std::vector<hw::PuType> &kinds)
{
    for (auto &rt : runtimes_)
        rt->registerCpuFunction(name, kinds);
}

void
Fleet::start()
{
    for (auto &rt : runtimes_)
        rt->start();
}

std::map<std::pair<int, int>, int>
Fleet::coreTable() const
{
    std::map<std::pair<int, int>, int> cores;
    for (std::size_t i = 0; i < computers_.size(); ++i) {
        const hw::Computer &c = *computers_[i];
        for (int p = 0; p < c.puCount(); ++p)
            cores[{int(i), p}] = c.pu(p).desc().cores;
    }
    return cores;
}

std::map<std::pair<int, int>, hw::PuType>
Fleet::puTypeTable() const
{
    std::map<std::pair<int, int>, hw::PuType> types;
    for (std::size_t i = 0; i < computers_.size(); ++i) {
        const hw::Computer &c = *computers_[i];
        for (int p = 0; p < c.puCount(); ++p)
            types[{int(i), p}] = c.pu(p).desc().type;
    }
    return types;
}

int
Fleet::totalPus() const
{
    int total = 0;
    for (const auto &c : computers_)
        total += c->puCount();
    return total;
}

} // namespace molecule::cluster
