#include "cluster/gateway.hh"

#include <algorithm>

#include "obs/flight_recorder.hh"
#include "sim/simulation.hh"

namespace molecule::cluster {

const char *
toString(DropPolicy p)
{
    switch (p) {
    case DropPolicy::DropNewest:
        return "drop-newest";
    case DropPolicy::DropOldest:
        return "drop-oldest";
    }
    return "?";
}

int
RoundRobinPolicy::pick(const load::Arrival &a,
                       std::span<const int> outstanding, int cap)
{
    (void)a;
    const std::size_t n = outstanding.size();
    for (std::size_t tried = 0; tried < n; ++tried) {
        const std::size_t node = cursor_ % n;
        cursor_ = (cursor_ + 1) % n;
        if (outstanding[node] < cap)
            return int(node);
    }
    return -1;
}

int
LeastOutstandingPolicy::pick(const load::Arrival &a,
                             std::span<const int> outstanding, int cap)
{
    (void)a;
    int best = -1;
    int bestLoad = cap;
    for (std::size_t node = 0; node < outstanding.size(); ++node) {
        if (outstanding[node] < bestLoad) {
            bestLoad = outstanding[node];
            best = int(node);
        }
    }
    return best;
}

int
WarmAffinityPolicy::pick(const load::Arrival &a,
                         std::span<const int> outstanding, int cap)
{
    const auto it = home_.find(a.fn);
    if (it != home_.end() && outstanding[std::size_t(it->second)] < cap)
        return it->second;
    LeastOutstandingPolicy fallback;
    const int node = fallback.pick(a, outstanding, cap);
    if (node >= 0)
        home_[a.fn] = node;
    return node;
}

ClusterGateway::ClusterGateway(Fleet &fleet,
                               std::vector<std::string> functions,
                               const AdmissionOptions &options,
                               DispatchPolicy &policy,
                               ClusterStats &stats)
    : fleet_(fleet), functions_(std::move(functions)), opts_(options),
      policy_(policy), stats_(stats), tokens_(options.bucketCapacity),
      lastRefill_(fleet.simulation().now()),
      outstanding_(std::size_t(fleet.size()), 0)
{
}

void
ClusterGateway::refill()
{
    const sim::SimTime now = fleet_.simulation().now();
    if (now > lastRefill_) {
        tokens_ += (now - lastRefill_).toSeconds() *
                   opts_.tokensPerSecond;
        tokens_ = std::min(tokens_, opts_.bucketCapacity);
        lastRefill_ = now;
    }
}

void
ClusterGateway::onArrival(const load::Arrival &a)
{
    stats_.onArrival(int(a.tenant));
    if (opts_.tokensPerSecond > 0.0) {
        refill();
        if (tokens_ < 1.0) {
            stats_.onShed(int(a.tenant));
            return;
        }
        tokens_ -= 1.0;
    }
    const int node =
        policy_.pick(a, outstanding_, opts_.maxOutstandingPerNode);
    if (node >= 0) {
        dispatch(a, node);
        return;
    }
    if (queue_.size() >= opts_.queueCapacity) {
        if (opts_.dropPolicy == DropPolicy::DropNewest) {
            stats_.onDropped(int(a.tenant));
            return; // the new arrival is the casualty
        }
        // DropOldest: the evicted front takes the drop, under its
        // own tenant — not the arrival that displaced it.
        stats_.onDropped(int(queue_.empty() ? a.tenant
                                            : queue_.front().tenant));
        if (!queue_.empty())
            queue_.pop_front();
    }
    queue_.push_back(a);
    stats_.onQueueDepth(queue_.size());
}

void
ClusterGateway::pump()
{
    while (!queue_.empty()) {
        const int node = policy_.pick(
            queue_.front(), outstanding_, opts_.maxOutstandingPerNode);
        if (node < 0)
            break;
        const load::Arrival a = queue_.front();
        queue_.pop_front();
        dispatch(a, node);
    }
    stats_.onQueueDepth(queue_.size());
}

void
ClusterGateway::dispatch(const load::Arrival &a, int node)
{
    stats_.onAdmitted(int(a.tenant));
    stats_.onDispatched(fleet_.simulation().now() - a.at);
    ++outstanding_[std::size_t(node)];
    fleet_.simulation().spawn(serve(a, node));
}

sim::Task<>
ClusterGateway::serve(load::Arrival a, int node)
{
    auto result = co_await fleet_.node(node).invoke(
        functions_.at(a.fn), opts_.invoke);
    sim::Simulation &sim = fleet_.simulation();
    if (result.ok()) {
        stats_.onCompleted(node, result.value(), sim.now() - a.at,
                           int(a.tenant));
    } else {
        stats_.onError(node, std::uint8_t(result.error().code()),
                       int(a.tenant));
        // A hang is the black-box moment: the watchdog just caught a
        // wedged node, so freeze the evidence before the cascade.
        if (recorder_ != nullptr &&
            result.error().code() == core::Errc::Hang)
            recorder_->trigger("errc.hang", sim.now());
    }
    --outstanding_[std::size_t(node)];
    policy_.onComplete(a, node);
    pump();
}

bool
ClusterGateway::idle() const
{
    if (!queue_.empty())
        return false;
    return std::all_of(outstanding_.begin(), outstanding_.end(),
                       [](int o) { return o == 0; });
}

} // namespace molecule::cluster
