#include "cluster/gateway.hh"

#include <algorithm>

#include "obs/flight_recorder.hh"
#include "sim/logging.hh"
#include "sim/simulation.hh"

namespace molecule::cluster {

const char *
toString(DropPolicy p)
{
    switch (p) {
    case DropPolicy::DropNewest:
        return "drop-newest";
    case DropPolicy::DropOldest:
        return "drop-oldest";
    }
    return "?";
}

int
RoundRobinPolicy::pick(const load::Arrival &a,
                       std::span<const int> outstanding, int cap)
{
    (void)a;
    const std::size_t n = outstanding.size();
    for (std::size_t tried = 0; tried < n; ++tried) {
        const std::size_t node = cursor_ % n;
        cursor_ = (cursor_ + 1) % n;
        if (outstanding[node] < cap)
            return int(node);
    }
    return -1;
}

int
LeastOutstandingPolicy::pick(const load::Arrival &a,
                             std::span<const int> outstanding, int cap)
{
    (void)a;
    int best = -1;
    int bestLoad = cap;
    for (std::size_t node = 0; node < outstanding.size(); ++node) {
        if (outstanding[node] < bestLoad) {
            bestLoad = outstanding[node];
            best = int(node);
        }
    }
    return best;
}

int
WarmAffinityPolicy::pick(const load::Arrival &a,
                         std::span<const int> outstanding, int cap)
{
    const auto it = home_.find(a.fn);
    if (it != home_.end() && outstanding[std::size_t(it->second)] < cap)
        return it->second;
    LeastOutstandingPolicy fallback;
    const int node = fallback.pick(a, outstanding, cap);
    if (node >= 0)
        home_[a.fn] = node;
    return node;
}

core::Status
GatewayConfig::validate() const
{
    if (stats == nullptr)
        return core::Error(core::Errc::InvalidArgument,
                           "GatewayConfig.stats is required");
    if (functions.empty())
        return core::Error(core::Errc::InvalidArgument,
                           "GatewayConfig.functions is empty");
    if (admission.maxOutstandingPerNode <= 0)
        return core::Error(
            core::Errc::InvalidArgument,
            "GatewayConfig.admission.maxOutstandingPerNode must be "
            "positive");
    if (admission.tokensPerSecond < 0.0)
        return core::Error(
            core::Errc::InvalidArgument,
            "GatewayConfig.admission.tokensPerSecond is negative");
    if (admission.tokensPerSecond > 0.0 &&
        admission.bucketCapacity < 1.0)
        return core::Error(
            core::Errc::InvalidArgument,
            "GatewayConfig.admission.bucketCapacity must be >= 1 "
            "when rate policing is on");
    return core::Status();
}

GatewayConfig
GatewayConfig::forFunctions(std::vector<std::string> fns,
                            ClusterStats &stats)
{
    GatewayConfig cfg;
    cfg.functions = std::move(fns);
    cfg.stats = &stats;
    return cfg;
}

namespace {

/** Fail fast on a broken config, before any member binds to it. */
GatewayConfig &
validated(GatewayConfig &config)
{
    const core::Status st = config.validate();
    MOLECULE_ASSERT(st.ok(), "invalid GatewayConfig: %s",
                    st.error().detail().c_str());
    return config;
}

} // namespace

ClusterGateway::ClusterGateway(Fleet &fleet, GatewayConfig config)
    : fleet_(fleet),
      functions_(std::move(validated(config).functions)),
      opts_(config.admission),
      ownedPolicy_(config.dispatch == nullptr
                       ? std::make_unique<LeastOutstandingPolicy>()
                       : nullptr),
      policy_(config.dispatch != nullptr ? config.dispatch
                                         : ownedPolicy_.get()),
      stats_(*config.stats), recorder_(config.recorder),
      tokens_(config.admission.bucketCapacity),
      lastRefill_(fleet.simulation().now()),
      outstanding_(std::size_t(fleet.size()), 0)
{
}

void
ClusterGateway::refill()
{
    const sim::SimTime now = fleet_.simulation().now();
    if (now > lastRefill_) {
        tokens_ += (now - lastRefill_).toSeconds() *
                   opts_.tokensPerSecond;
        tokens_ = std::min(tokens_, opts_.bucketCapacity);
        lastRefill_ = now;
    }
}

void
ClusterGateway::onArrival(const load::Arrival &a)
{
    stats_.onArrival(int(a.tenant));
    if (opts_.tokensPerSecond > 0.0) {
        refill();
        if (tokens_ < 1.0) {
            stats_.onShed(int(a.tenant));
            return;
        }
        tokens_ -= 1.0;
    }
    const int node =
        policy_->pick(a, outstanding_, opts_.maxOutstandingPerNode);
    if (node >= 0) {
        dispatch(a, node);
        return;
    }
    if (queue_.size() >= opts_.queueCapacity) {
        if (opts_.dropPolicy == DropPolicy::DropNewest) {
            stats_.onDropped(int(a.tenant));
            return; // the new arrival is the casualty
        }
        // DropOldest: the evicted front takes the drop, under its
        // own tenant — not the arrival that displaced it.
        stats_.onDropped(int(queue_.empty() ? a.tenant
                                            : queue_.front().tenant));
        if (!queue_.empty())
            queue_.pop_front();
    }
    queue_.push_back(a);
    stats_.onQueueDepth(queue_.size());
}

void
ClusterGateway::pump()
{
    while (!queue_.empty()) {
        const int node = policy_->pick(
            queue_.front(), outstanding_, opts_.maxOutstandingPerNode);
        if (node < 0)
            break;
        const load::Arrival a = queue_.front();
        queue_.pop_front();
        dispatch(a, node);
    }
    stats_.onQueueDepth(queue_.size());
}

void
ClusterGateway::dispatch(const load::Arrival &a, int node)
{
    stats_.onAdmitted(int(a.tenant));
    stats_.onDispatched(fleet_.simulation().now() - a.at);
    ++outstanding_[std::size_t(node)];
    fleet_.simulation().spawn(serve(a, node));
}

sim::Task<>
ClusterGateway::serve(load::Arrival a, int node)
{
    auto result = co_await fleet_.node(node).invoke(
        functions_.at(a.fn), opts_.invoke);
    sim::Simulation &sim = fleet_.simulation();
    if (result.ok()) {
        // Cross-PU serves paid the manager->worker delivery; that
        // volume is the cost model's egress term.
        core::Molecule &rt = fleet_.node(node);
        std::uint64_t transferBytes = 0;
        if (result.value().pu != rt.options().managerPu) {
            const core::FunctionDef *def =
                rt.registry().findPtr(functions_.at(a.fn));
            if (def != nullptr && def->cpuWork != nullptr)
                transferBytes = def->cpuWork->msgBytes;
        }
        stats_.onCompleted(node, result.value(), sim.now() - a.at,
                           int(a.tenant), transferBytes);
    } else {
        stats_.onError(node, std::uint8_t(result.error().code()),
                       int(a.tenant));
        // A hang is the black-box moment: the watchdog just caught a
        // wedged node, so freeze the evidence before the cascade.
        if (recorder_ != nullptr &&
            result.error().code() == core::Errc::Hang)
            recorder_->trigger("errc.hang", sim.now());
    }
    --outstanding_[std::size_t(node)];
    policy_->onComplete(a, node);
    pump();
}

bool
ClusterGateway::idle() const
{
    if (!queue_.empty())
        return false;
    return std::all_of(outstanding_.begin(), outstanding_.end(),
                       [](int o) { return o == 0; });
}

} // namespace molecule::cluster
