/**
 * @file
 * Crash & restart recovery across the whole stack.
 *
 * The RecoveryManager is the runtime's fault::Listener: when the
 * injector crashes a PU it purges the layers that lost state (runc
 * instances, local OS processes and fifos, the XPU-Shim replica and
 * the keep-alive pools); when the PU restarts it re-synchronizes the
 * capability replica from a live peer and re-warms the cfork
 * templates and container pools — both as traced simulation tasks
 * ("recovery.resync", "recovery.rewarm") so trace reports can show
 * the recovery timeline next to the fault that caused it.
 */

#ifndef MOLECULE_CORE_RECOVERY_HH
#define MOLECULE_CORE_RECOVERY_HH

#include "core/startup.hh"
#include "fault/state.hh"

namespace molecule::core {

/**
 * Stack-wide fault reactions for one Molecule runtime.
 */
class RecoveryManager : public fault::Listener
{
  public:
    RecoveryManager(Deployment &dep, StartupManager &startup,
                    obs::Tracer *tracer)
        : dep_(dep), startup_(startup), tracer_(tracer)
    {}

    /** @name fault::Listener */
    ///@{

    /** Synchronous teardown of everything the crash destroyed. */
    void onPuCrash(int pu) override;

    /** Spawns the resync + rewarm recovery task. */
    void onPuRestart(int pu) override;

    /** Kills the function's instances; typed errors surface later. */
    void onSandboxOom(int pu, const std::string &funcId) override;
    ///@}

    /** Crashes processed so far (tests). */
    int crashesHandled() const { return crashes_; }

    /** Restarts processed so far (tests). */
    int restartsHandled() const { return restarts_; }

  private:
    /** Restart recovery: capability resync, then template re-warm. */
    static sim::Task<> recoverTask(RecoveryManager *self, int pu);

    Deployment &dep_;
    StartupManager &startup_;
    obs::Tracer *tracer_;
    int crashes_ = 0;
    int restarts_ = 0;
};

} // namespace molecule::core

#endif // MOLECULE_CORE_RECOVERY_HH
