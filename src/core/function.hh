/**
 * @file
 * Function definitions and the platform registry (§4.1).
 *
 * Unlike one-fits-all resource models, Molecule lets the user list the
 * PU kinds a function may run on, with per-kind prices (profiles); the
 * control plane picks a concrete PU per request (§5 "Profile
 * selections").
 */

#ifndef MOLECULE_CORE_FUNCTION_HH
#define MOLECULE_CORE_FUNCTION_HH

#include <map>
#include <string>
#include <vector>

#include "hw/pu.hh"
#include "workloads/catalog.hh"

namespace molecule::core {

/** One deployment profile of a function. */
struct Profile
{
    hw::PuType kind = hw::PuType::HostCpu;
    /** Price per 100 ms of execution, in arbitrary credit units. */
    double pricePer100ms = 1.0;
};

/** A registered serverless function. */
struct FunctionDef
{
    std::string name;
    /** Execution model on general-purpose PUs (null: accel-only). */
    const workloads::CpuWorkload *cpuWork = nullptr;
    /** Execution model on FPGAs (null: no FPGA profile). */
    const workloads::FpgaWorkload *fpgaWork = nullptr;
    /** FPGA size parameter (bytes/entries) used per invocation. */
    std::uint64_t fpgaUnits = 1;
    /** GPU kernel time per invocation (zero: no GPU profile). */
    sim::SimTime gpuKernelTime;
    /** GPU per-invocation DMA bytes (in and out). */
    std::uint64_t gpuIoBytes = 0;
    std::vector<Profile> profiles;

    bool
    allows(hw::PuType kind) const
    {
        for (const auto &p : profiles)
            if (p.kind == kind)
                return true;
        return false;
    }
};

/** Name-keyed registry of function definitions. */
class FunctionRegistry
{
  public:
    /** Register (or replace) a function definition. */
    void add(FunctionDef def);

    const FunctionDef &find(const std::string &name) const;

    /** Lookup without the fatal-on-missing contract of find(). */
    const FunctionDef *findPtr(const std::string &name) const;

    bool has(const std::string &name) const;

    std::size_t size() const { return defs_.size(); }

    /** CPU/DPU images usable to seed per-language cfork templates. */
    std::vector<const sandbox::FunctionImage *>
    imagesForTemplates() const;

  private:
    std::map<std::string, FunctionDef> defs_;
};

} // namespace molecule::core

#endif // MOLECULE_CORE_FUNCTION_HH
