/**
 * @file
 * Placement policies: swappable strategies behind the scheduler.
 *
 * The scheduler no longer hard-codes one heuristic; it builds a
 * PlacementView — a per-PU snapshot of price, free memory, in-flight
 * work, warm-sandbox presence and health — and delegates the pick to
 * an installed PlacementPolicy. Policies must be pure functions of the
 * request, the view and their own deterministic state (no wall clock,
 * no global RNG), so every placement run stays bit-for-bit replayable
 * serial vs SweepRunner.
 *
 * Three strategies ship:
 *
 *  - price-ordered  : the paper's §5 heuristic (cheapest allowed kind
 *                     with free memory, PUs in id order). This is the
 *                     default and reproduces the pre-policy-layer
 *                     golden digests bit for bit.
 *  - load-aware     : price-ordered until a kind saturates (in-flight
 *                     work >= spillThreshold x cores), then spills to
 *                     the next-cheapest kind — host CPUs absorb DPU
 *                     overload instead of queueing behind 8 ARM cores
 *                     (the DPU-bound ~480 inv/s ceiling of ROADMAP
 *                     item 1).
 *  - locality       : FDN-style affinity — prefer the PU already
 *                     holding warm sandboxes of the function (cfork
 *                     pools, keep-alive entries) unless it is badly
 *                     overloaded; falls back to load-aware spill.
 */

#ifndef MOLECULE_CORE_PLACEMENT_HH
#define MOLECULE_CORE_PLACEMENT_HH

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/function.hh"
#include "hw/pu.hh"

namespace molecule::core {

/** One placement request (a single invocation to be admitted). */
struct PlacementRequest
{
    const FunctionDef *fn = nullptr;
    /** PUs earlier attempts of this invocation failed on. */
    std::span<const int> exclude = {};
};

/** Per-PU snapshot a policy decides over. */
struct PuView
{
    int pu = -1;
    hw::PuType kind = hw::PuType::HostCpu;
    /** Price of the function's profile for this PU's kind. */
    double price = 0.0;
    /** Registration order of that profile (stable price ties). */
    std::uint32_t profileRank = 0;
    int cores = 1;
    /** Invocations currently in flight on this PU (scheduler-tracked
     * dispatch/complete deltas). */
    int outstanding = 0;
    /** Warm keep-alive entries of the requested function on this PU. */
    std::size_t warmSandboxes = 0;
    /** Free memory minus the safety margin, bytes. */
    std::uint64_t freeBytes = 0;
    /** Fresh-instance footprint of the requested function, bytes. */
    std::uint64_t needBytes = 0;
    /** Crashed (fault state) — never placeable. */
    bool down = false;
    /** Listed in PlacementRequest::exclude — never placeable. */
    bool excluded = false;
    /** The manager->PU link is inside a degradation window. */
    bool linkDegraded = false;
    /** Capability epoch of the PU's shim (stale after recovery). */
    std::uint64_t capabilityEpoch = 0;

    /** Health + memory admission in one test. */
    bool
    eligible() const
    {
        return !down && !excluded && freeBytes >= needBytes;
    }

    /** In-flight work normalized by core count. */
    double
    loadPerCore() const
    {
        return double(outstanding) / double(cores > 0 ? cores : 1);
    }
};

/**
 * The scheduler-built snapshot: one PuView per PU the function's
 * profiles allow, ascending PU id. Views are constructed fresh per
 * request — policies must not retain pointers into one.
 */
class PlacementView
{
  public:
    explicit PlacementView(std::vector<PuView> pus)
        : pus_(std::move(pus))
    {}

    std::span<const PuView> pus() const { return pus_; }

    bool empty() const { return pus_.empty(); }

  private:
    std::vector<PuView> pus_;
};

/**
 * Node-local placement seam. Implementations must be deterministic:
 * identical (request, view, own-state) sequences must yield identical
 * picks — the policy determinism suite pins this serial vs
 * SweepRunner.
 */
class PlacementPolicy
{
  public:
    virtual ~PlacementPolicy() = default;

    virtual const char *name() const = 0;

    /**
     * Pick a PU for @p req over @p view.
     * @return PU id, or -1 when no PU can admit the function.
     */
    virtual int place(const PlacementRequest &req,
                      const PlacementView &view) = 0;

    /** Dispatch feedback (optional; default ignores it). */
    virtual void
    onDispatch(int pu)
    {
        (void)pu;
    }

    /** Completion feedback (optional; default ignores it). */
    virtual void
    onComplete(int pu)
    {
        (void)pu;
    }
};

/**
 * The paper's §5 heuristic, verbatim: profiles by ascending price
 * (registration order breaks ties), PUs of each kind in id order,
 * first with enough free memory wins. Ignores load on purpose — this
 * is the golden-digest-compatible default.
 */
class PriceOrderedPolicy final : public PlacementPolicy
{
  public:
    const char *name() const override { return "price-ordered"; }

    int place(const PlacementRequest &req,
              const PlacementView &view) override;
};

/**
 * Least-cost with saturation spill: prefer the cheapest kind while
 * any of its PUs has in-flight work below spillThreshold x cores;
 * once a kind saturates, spill to the next-cheapest kind instead of
 * queueing. Within a kind the least-loaded PU (per core) wins, lowest
 * id ties. When every kind is saturated, the globally least-loaded
 * eligible PU absorbs the overflow.
 */
class LoadAwarePolicy final : public PlacementPolicy
{
  public:
    struct Options
    {
        /** In-flight invocations per core at which a PU counts as
         * saturated (1.0 = one invocation per core). */
        double spillThreshold = 1.0;
    };

    LoadAwarePolicy() = default;

    explicit LoadAwarePolicy(const Options &options) : opts_(options)
    {}

    const char *name() const override { return "load-aware"; }

    int place(const PlacementRequest &req,
              const PlacementView &view) override;

  private:
    Options opts_;
};

/**
 * FDN-style locality: place where the function's state already is.
 * Among eligible PUs holding warm sandboxes of the function the most
 * warm entries win (price, then lowest id, break ties); a warm PU is
 * skipped only when its load passes loadBarrier x cores. With no warm
 * candidate the pick falls back to load-aware spill, so the first
 * request of a function seeds the cheapest kind and later ones stick.
 */
class LocalityAffinityPolicy final : public PlacementPolicy
{
  public:
    struct Options
    {
        /** Load (per core) beyond which warm affinity is abandoned. */
        double loadBarrier = 2.0;
        /** Spill threshold of the load-aware fallback. */
        double spillThreshold = 1.0;
    };

    LocalityAffinityPolicy() = default;

    explicit LocalityAffinityPolicy(const Options &options)
        : opts_(options),
          fallback_(LoadAwarePolicy::Options{options.spillThreshold})
    {}

    const char *name() const override { return "locality"; }

    int place(const PlacementRequest &req,
              const PlacementView &view) override;

  private:
    Options opts_;
    LoadAwarePolicy fallback_;
};

/**
 * Value-semantic policy selection, safe to copy into per-node
 * MoleculeOptions (cluster::FleetSpec stamps one options template on
 * every node; each node must get its *own* stateful policy instance).
 */
struct PlacementConfig
{
    enum class Kind : std::uint8_t { PriceOrdered, LoadAware, Locality };

    Kind kind = Kind::PriceOrdered;
    /** LoadAware / Locality: saturation spill threshold. */
    double spillThreshold = 1.0;
    /** Locality: per-core load beyond which affinity is abandoned. */
    double loadBarrier = 2.0;

    /** Build a fresh policy instance for one scheduler. */
    std::unique_ptr<PlacementPolicy> make() const;

    static PlacementConfig
    priceOrdered()
    {
        return {};
    }

    static PlacementConfig
    loadAware(double spillThreshold = 1.0)
    {
        PlacementConfig c;
        c.kind = Kind::LoadAware;
        c.spillThreshold = spillThreshold;
        return c;
    }

    static PlacementConfig
    locality(double loadBarrier = 2.0, double spillThreshold = 1.0)
    {
        PlacementConfig c;
        c.kind = Kind::Locality;
        c.loadBarrier = loadBarrier;
        c.spillThreshold = spillThreshold;
        return c;
    }
};

const char *toString(PlacementConfig::Kind kind);

} // namespace molecule::core

#endif // MOLECULE_CORE_PLACEMENT_HH
