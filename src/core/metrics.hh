/**
 * @file
 * Measurement records produced by the Molecule runtime.
 */

#ifndef MOLECULE_CORE_METRICS_HH
#define MOLECULE_CORE_METRICS_HH

#include <string>
#include <vector>

#include "sim/time.hh"

namespace molecule::core {

/** Timing breakdown of one function invocation. */
struct InvocationRecord
{
    std::string function;
    /** PU (or accelerator host PU) the instance ran on. */
    int pu = -1;
    bool coldStart = false;
    /** Sandbox acquisition (zero on a warm hit). */
    sim::SimTime startup;
    /** Request delivery into the instance. */
    sim::SimTime communication;
    /** Function body execution. */
    sim::SimTime execution;
    /** startup + communication + execution. */
    sim::SimTime endToEnd;
};

/** Timing of one DAG/chain execution. */
struct ChainRecord
{
    std::string chain;
    sim::SimTime endToEnd;
    /** Inter-function latency per edge, in chain-edge order. */
    std::vector<sim::SimTime> edgeLatencies;
    std::vector<InvocationRecord> invocations;
};

} // namespace molecule::core

#endif // MOLECULE_CORE_METRICS_HH
