/**
 * @file
 * Compatibility aliases: the measurement records moved to
 * obs/records.hh (the observability subsystem). This header keeps the
 * old `core::` spellings working for one PR; include obs/records.hh
 * directly in new code.
 */

#ifndef MOLECULE_CORE_METRICS_HH
#define MOLECULE_CORE_METRICS_HH

#include "obs/records.hh"

namespace molecule::core {

using InvocationRecord = obs::InvocationRecord;
using ChainRecord = obs::ChainRecord;

} // namespace molecule::core

#endif // MOLECULE_CORE_METRICS_HH
