#include "core/startup.hh"

#include <algorithm>

#include "hw/calibration.hh"
#include "sim/logging.hh"

namespace molecule::core {

namespace calib = hw::calib;

StartupManager::StartupManager(Deployment &dep,
                               const FunctionRegistry &registry,
                               StartupOptions options)
    : dep_(dep), registry_(registry), options_(options),
      strategy_(options_.keepAlive.make())
{}

void
StartupManager::installKeepAlive(
    std::unique_ptr<KeepAliveStrategy> strategy)
{
    strategy_ = strategy != nullptr ? std::move(strategy)
                                    : options_.keepAlive.make();
}

WarmEntryView
StartupManager::entryView(const PoolKey &key,
                          const WarmEntry &entry) const
{
    WarmEntryView v;
    v.fn = key.first;
    v.pu = key.second;
    v.lastUsed = entry.lastUsed;
    v.freq = entry.freq;
    v.costMs = entry.costMs;
    v.sizeMb = entry.sizeMb;
    v.parkPriority = entry.parkPriority;
    return v;
}

void
StartupManager::noteEviction(const PoolKey &key,
                             const WarmEntry &victim)
{
    strategy_->onEvict(entryView(key, victim));
    ++evictions_;
    std::uint64_t h = 14695981039346656037ULL;
    for (char c : victim.sandboxId)
        h = (h ^ std::uint64_t(std::uint8_t(c))) * 1099511628211ULL;
    evictFp_.mix(h);
    evictFp_.mix(std::uint64_t(key.second));
    evictFp_.mix(std::uint64_t(evictions_));
}

sim::Task<>
StartupManager::bootstrap(int managerPu)
{
    if (bootstrapped_)
        co_return;
    bootstrapped_ = true;

    // Launch an executor on every other general-purpose PU via xSpawn
    // (Figure 6). The executor program is a thin command loop.
    dep_.shimNet().registerProgram("molecule-executor",
                                   [](xpu::XpuShim &, os::Process &) {});
    os::Process *manager = co_await dep_.osOn(managerPu).spawnProcess(
        "molecule-runtime", 32 << 20);
    MOLECULE_ASSERT(manager != nullptr, "manager spawn failed");
    xpu::XpuClient client(dep_.shimOn(managerPu), *manager);
    for (int pu : dep_.generalPus()) {
        if (pu == managerPu)
            continue;
        std::vector<xpu::CapGrant> capv;
        auto r = co_await client.xspawn(pu, "molecule-executor", capv);
        MOLECULE_ASSERT(r.ok(), "executor spawn on PU %d failed: %s", pu,
                        r.error().toString().c_str());
    }

    if (!options_.useCfork)
        co_return;

    // Prepare one template per language per PU plus the container
    // pools, concurrently across PUs.
    std::vector<sim::Task<>> preps;
    for (int pu : dep_.generalPus()) {
        auto prepOne = [](Deployment *dep, const FunctionRegistry *reg,
                          int target, int pool) -> sim::Task<> {
            auto &runc = dep->runcOn(target);
            bool preparedPython = false, preparedNode = false;
            // One generic template per language, seeded from the first
            // registered function image of that language.
            for (const auto *img : reg->imagesForTemplates()) {
                if (img->language == sandbox::Language::Python &&
                    !preparedPython) {
                    preparedPython =
                        co_await runc.prepareTemplate(*img);
                } else if (img->language == sandbox::Language::Node &&
                           !preparedNode) {
                    preparedNode = co_await runc.prepareTemplate(*img);
                }
            }
            co_await runc.prewarmFunctionContainers(pool);
        };
        preps.push_back(prepOne(&dep_, &registry_, pu,
                                options_.pooledContainersPerPu));
    }
    co_await sim::allOf(dep_.simulation(), std::move(preps));
}

sim::Task<>
StartupManager::commandRoundTrip(int managerPu, int targetPu,
                                 obs::SpanContext ctx)
{
    if (managerPu == targetPu)
        co_return;
    obs::Span span(ctx, "nipc.cmd-rtt", obs::Layer::Xpu, managerPu);
    // Command over nIPC, executor-side processing, response back.
    co_await dep_.shimNet().transfer(managerPu, targetPu, 160,
                                     span.ctx());
    co_await dep_.osOn(targetPu).swDelay(calib::kExecutorCommandCost);
    co_await dep_.shimNet().transfer(targetPu, managerPu, 64,
                                     span.ctx());
}

sim::Task<AcquiredInstance>
StartupManager::acquire(const FunctionDef &fn, int pu, int managerPu,
                        obs::SpanContext ctx)
{
    MOLECULE_ASSERT(fn.cpuWork != nullptr,
                    "function '%s' has no CPU/DPU workload",
                    fn.name.c_str());
    auto &sim = dep_.simulation();
    const auto t0 = sim.now();
    obs::Span span(ctx, "startup", obs::Layer::Core, pu);
    const PoolKey key{fn.name, pu};

    ++freq_[key];
    strategy_->onRequest(fn.name, pu, sim.now());
    auto poolIt = warmPools_.find(key);
    while (poolIt != warmPools_.end() && !poolIt->second.empty()) {
        WarmEntry entry = poolIt->second.front();
        poolIt->second.pop_front();
        AcquiredInstance out;
        out.instance = dep_.runcOn(pu).find(entry.sandboxId);
        MOLECULE_ASSERT(out.instance != nullptr,
                        "warm pool held a dead sandbox");
        // An instance killed while parked (OOM, PU crash) is skipped;
        // exhausting the pool falls through to a cold start.
        if (out.instance->dead)
            continue;
        ++warmHits_;
        out.pu = pu;
        out.cold = false;
        out.startupTime = sim.now() - t0;
        co_return out;
    }

    // Cold start. Remote targets pay the executor command round-trip.
    ++coldStarts_;
    co_await commandRoundTrip(managerPu, pu, span.ctx());

    auto &runc = dep_.runcOn(pu);
    runc.setStartupPath(options_.useCfork
                            ? options_.cforkPath
                            : sandbox::StartupPath::ColdBoot);
    const std::string id =
        fn.name + "#" + std::to_string(nextSandboxId_++);
    sandbox::CreateRequest req{id, &fn.cpuWork->image, span.ctx()};
    const bool created = co_await runc.create(req);
    if (!created) {
        // Admission failure (memory exhausted on this PU).
        co_return AcquiredInstance{};
    }
    bool started = false;
    {
        obs::Span st(span.ctx(), "sandbox.start", obs::Layer::Sandbox,
                     pu);
        started = co_await runc.start(id);
    }
    MOLECULE_ASSERT(started, "sandbox '%s' failed to start", id.c_str());

    AcquiredInstance out;
    out.instance = runc.find(id);
    out.pu = pu;
    out.cold = true;
    out.startupTime = sim.now() - t0;
    knownColdMs_[key] = out.startupTime.toMilliseconds();
    co_return out;
}

sim::Task<>
StartupManager::release(const FunctionDef &fn, AcquiredInstance inst)
{
    if (!inst.instance)
        co_return;
    const PoolKey key{fn.name, inst.pu};
    WarmEntry entry;
    entry.sandboxId = inst.instance->id;
    entry.lastUsed = dep_.simulation().now();
    // Greedy-dual uses the *function's* cold-start cost (what an
    // eviction would make the next request pay), not this instance's.
    auto known = knownColdMs_.find(key);
    entry.costMs = known != knownColdMs_.end()
                       ? known->second
                       : inst.startupTime.toMilliseconds();
    entry.freq = freq_[key];
    entry.sizeMb =
        double(fn.cpuWork->image.mem.coldTotal()) / double(1 << 20);
    // The strategy stamps the parking priority (greedy-dual: clock +
    // freq * cost / size; order-insensitive strategies return 0).
    entry.parkPriority = strategy_->parkPriority(entryView(key, entry));
    warmPools_[key].push_back(std::move(entry));
    co_await evictIfNeeded(key);
    if (options_.globalWarmCapacityPerPu > 0)
        co_await evictGlobal(inst.pu);
}

sim::Task<>
StartupManager::evictIfNeeded(const PoolKey &key)
{
    auto &pool = warmPools_[key];
    const sim::SimTime now = dep_.simulation().now();
    while (pool.size() > options_.warmCapacity) {
        // Lowest strategy score goes; strict improvement keeps the
        // earliest-scanned entry on ties.
        std::size_t victim = 0;
        double victimScore =
            strategy_->score(entryView(key, pool[0]), now);
        for (std::size_t i = 1; i < pool.size(); ++i) {
            const double s =
                strategy_->score(entryView(key, pool[i]), now);
            if (s < victimScore) {
                victim = i;
                victimScore = s;
            }
        }
        const WarmEntry evicted = pool[victim];
        pool.erase(pool.begin() + std::ptrdiff_t(victim));
        noteEviction(key, evicted);
        co_await dep_.runcOn(key.second).destroy(evicted.sandboxId);
    }
}

std::size_t
StartupManager::warmTotalOn(int pu) const
{
    std::size_t total = 0;
    for (const auto &[key, pool] : warmPools_)
        if (key.second == pu)
            total += pool.size();
    return total;
}

sim::Task<>
StartupManager::evictGlobal(int pu)
{
    const sim::SimTime now = dep_.simulation().now();
    while (warmTotalOn(pu) > options_.globalWarmCapacityPerPu) {
        // Find the global victim across this PU's pools: lowest
        // strategy score; strict improvement keeps the
        // earliest-scanned entry (pool-key order, then index) on ties.
        PoolKey victimKey{"", pu};
        std::size_t victimIdx = 0;
        double victimScore = 0.0;
        bool found = false;
        for (auto &[key, pool] : warmPools_) {
            if (key.second != pu || pool.empty())
                continue;
            for (std::size_t i = 0; i < pool.size(); ++i) {
                const double s =
                    strategy_->score(entryView(key, pool[i]), now);
                if (!found || s < victimScore) {
                    victimKey = key;
                    victimIdx = i;
                    victimScore = s;
                    found = true;
                }
            }
        }
        if (!found)
            co_return;
        auto &pool = warmPools_[victimKey];
        const WarmEntry evicted = pool[victimIdx];
        pool.erase(pool.begin() + std::ptrdiff_t(victimIdx));
        noteEviction(victimKey, evicted);
        co_await dep_.runcOn(pu).destroy(evicted.sandboxId);
    }
}

void
StartupManager::setFpgaHotSet(int fpgaIndex,
                              std::vector<std::string> funcIds)
{
    fpgaHotSets_[fpgaIndex] = std::move(funcIds);
}

sim::Task<Expected<AcquiredFpga>>
StartupManager::acquireFpga(const FunctionDef &fn, int fpgaIndex,
                            obs::SpanContext ctx)
{
    MOLECULE_ASSERT(fn.fpgaWork != nullptr,
                    "function '%s' has no FPGA workload",
                    fn.name.c_str());
    auto &sim = dep_.simulation();
    const auto t0 = sim.now();
    auto &runf = dep_.runf(fpgaIndex);
    obs::Span span(ctx, "startup", obs::Layer::Core,
                   dep_.computer().fpga(fpgaIndex).hostPuId());
    const std::string sandboxId = "fpga/" + fn.name;

    AcquiredFpga out;
    out.sandboxId = sandboxId;
    out.fpgaIndex = fpgaIndex;

    if (!runf.cached(fn.fpgaWork->image.funcId)) {
        // Not resident: compose one image from the hot set (which
        // always includes the requested function) and program it.
        ++coldStarts_;
        out.cold = true;
        std::vector<sandbox::CreateRequest> reqs;
        std::vector<std::string> hot = fpgaHotSets_[fpgaIndex];
        if (std::find(hot.begin(), hot.end(), fn.name) == hot.end())
            hot.push_back(fn.name);
        for (const auto &name : hot) {
            const FunctionDef &def = registry_.find(name);
            MOLECULE_ASSERT(def.fpgaWork != nullptr,
                            "hot-set fn '%s' has no FPGA image",
                            name.c_str());
            reqs.push_back(sandbox::CreateRequest{
                "fpga/" + name, &def.fpgaWork->image, span.ctx()});
        }
        const Expected<int> created = co_await runf.createVector(reqs);
        if (!created.ok()) {
            // Composition or (injected) reconfiguration failure: the
            // fabric holds no usable image; the caller may retry.
            co_return created.error();
        }
        MOLECULE_ASSERT(created.value() == int(reqs.size()),
                        "FPGA image composition failed (resources?)");
    } else {
        ++warmHits_;
    }
    bool started = false;
    {
        obs::Span st(span.ctx(), "sandbox.prep", obs::Layer::Sandbox,
                     dep_.computer().fpga(fpgaIndex).hostPuId());
        started = co_await runf.start(sandboxId);
    }
    if (!started)
        co_return Error(Errc::NotFound,
                        "FPGA sandbox '" + sandboxId +
                            "' failed to start (image not resident)",
                        dep_.computer().fpga(fpgaIndex).hostPuId());
    out.startupTime = sim.now() - t0;
    co_return Expected<AcquiredFpga>(std::move(out));
}

sim::Task<AcquiredFpga>
StartupManager::acquireGpu(const FunctionDef &fn, int gpuIndex,
                           obs::SpanContext ctx)
{
    auto &sim = dep_.simulation();
    const auto t0 = sim.now();
    auto &rung = dep_.rung(gpuIndex);
    obs::Span span(ctx, "startup", obs::Layer::Core,
                   dep_.computer().gpuDev(gpuIndex).hostPuId());
    const std::string sandboxId = "gpu/" + fn.name;

    AcquiredFpga out;
    out.sandboxId = sandboxId;
    out.fpgaIndex = gpuIndex;
    if (rung.state(sandboxId) == sandbox::SandboxState::Unknown) {
        ++coldStarts_;
        out.cold = true;
        sandbox::FunctionImage *img = gpuImage(fn);
        sandbox::CreateRequest req{sandboxId, img, span.ctx()};
        const bool created = co_await rung.create(req);
        MOLECULE_ASSERT(created, "GPU create failed for '%s'",
                        fn.name.c_str());
        bool started = false;
        {
            obs::Span st(span.ctx(), "sandbox.start",
                         obs::Layer::Sandbox,
                         dep_.computer().gpuDev(gpuIndex).hostPuId());
            started = co_await rung.start(sandboxId);
        }
        MOLECULE_ASSERT(started, "GPU start failed");
    } else {
        ++warmHits_;
    }
    out.startupTime = sim.now() - t0;
    co_return out;
}

sandbox::FunctionImage *
StartupManager::gpuImage(const FunctionDef &fn)
{
    auto it = gpuImages_.find(fn.name);
    if (it == gpuImages_.end()) {
        auto img = std::make_unique<sandbox::FunctionImage>();
        img->funcId = fn.name;
        img->language = sandbox::Language::CudaCpp;
        it = gpuImages_.emplace(fn.name, std::move(img)).first;
    }
    return it->second.get();
}

std::size_t
StartupManager::warmCount(const std::string &fn, int pu) const
{
    auto it = warmPools_.find(PoolKey{fn, pu});
    return it == warmPools_.end() ? 0 : it->second.size();
}

void
StartupManager::purgePu(int pu)
{
    for (auto &[key, pool] : warmPools_)
        if (key.second == pu)
            pool.clear();
}

void
StartupManager::purgeFunction(const std::string &fn, int pu)
{
    auto it = warmPools_.find(PoolKey{fn, pu});
    if (it != warmPools_.end())
        it->second.clear();
}

sim::Task<>
StartupManager::rewarmPu(int pu, obs::SpanContext ctx)
{
    // The reboot destroyed every instance, template and pooled
    // container on the PU; the pool entries pointing at them are
    // already purged at crash time (RecoveryManager), but a restart
    // between crash and purge is impossible, so purge again cheaply.
    purgePu(pu);
    if (!options_.useCfork)
        co_return;
    obs::Span span(ctx, "recovery.rewarm", obs::Layer::Core, pu);
    auto &runc = dep_.runcOn(pu);
    bool preparedPython = false, preparedNode = false;
    for (const auto *img : registry_.imagesForTemplates()) {
        if (img->language == sandbox::Language::Python &&
            !preparedPython) {
            preparedPython = co_await runc.prepareTemplate(*img);
        } else if (img->language == sandbox::Language::Node &&
                   !preparedNode) {
            preparedNode = co_await runc.prepareTemplate(*img);
        }
    }
    co_await runc.prewarmFunctionContainers(
        options_.pooledContainersPerPu);
}

} // namespace molecule::core
