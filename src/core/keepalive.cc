#include "core/keepalive.hh"

#include <algorithm>
#include <cmath>

namespace molecule::core {

double
LruKeepAlive::score(const WarmEntryView &entry, sim::SimTime now) const
{
    (void)now;
    return double(entry.lastUsed.raw());
}

double
GreedyDualKeepAlive::parkPriority(const WarmEntryView &entry)
{
    const auto it =
        clock_.find(PoolKey{std::string(entry.fn), entry.pu});
    const double clock = it != clock_.end() ? it->second : 0.0;
    return clock + double(entry.freq) * entry.costMs /
                       std::max(1.0, entry.sizeMb);
}

double
GreedyDualKeepAlive::score(const WarmEntryView &entry,
                           sim::SimTime now) const
{
    (void)now;
    return entry.parkPriority;
}

void
GreedyDualKeepAlive::onEvict(const WarmEntryView &entry)
{
    clock_[PoolKey{std::string(entry.fn), entry.pu}] =
        entry.parkPriority;
}

void
HistogramKeepAlive::onRequest(std::string_view fn, int pu,
                              sim::SimTime now)
{
    Intervals &iv = intervals_[PoolKey{std::string(fn), pu}];
    if (iv.seen && now > iv.lastSeen) {
        const std::int64_t us = (now - iv.lastSeen).raw() / 1000;
        std::size_t bucket = 0;
        for (std::int64_t v = us; v > 0 && bucket + 1 < iv.buckets.size();
             v >>= 1)
            ++bucket;
        ++iv.buckets[bucket];
        ++iv.count;
    }
    iv.lastSeen = now;
    iv.seen = true;
}

sim::SimTime
HistogramKeepAlive::windowOf(const Intervals &iv) const
{
    if (iv.count < opts_.minSamples)
        return sim::SimTime::fromMilliseconds(opts_.defaultWindowMs);
    // Walk the log buckets up to the target percentile; the bucket's
    // upper bound (2^i us) is the interval estimate.
    const std::int64_t target = std::max<std::int64_t>(
        1, std::int64_t(std::ceil(double(iv.count) *
                                  opts_.percentile / 100.0)));
    std::int64_t seen = 0;
    std::size_t bucket = iv.buckets.size() - 1;
    for (std::size_t i = 0; i < iv.buckets.size(); ++i) {
        seen += iv.buckets[i];
        if (seen >= target) {
            bucket = i;
            break;
        }
    }
    const double us = double(std::int64_t(1) << bucket);
    return sim::SimTime::fromMilliseconds(us * opts_.marginFactor /
                                          1000.0);
}

sim::SimTime
HistogramKeepAlive::window(std::string_view fn, int pu) const
{
    const auto it = intervals_.find(PoolKey{std::string(fn), pu});
    if (it == intervals_.end())
        return sim::SimTime::fromMilliseconds(opts_.defaultWindowMs);
    return windowOf(it->second);
}

double
HistogramKeepAlive::score(const WarmEntryView &entry,
                          sim::SimTime now) const
{
    const sim::SimTime w = window(entry.fn, entry.pu);
    const sim::SimTime reuseBy = entry.lastUsed + w;
    if (now > reuseBy) {
        // Past the predicted window: prime victim, most overdue first.
        return -double((now - reuseBy).raw());
    }
    // Inside the window: protected tier, LRU order among themselves.
    // Any protected score must exceed any overdue score (>= 0 > any
    // overdue negative).
    return double(entry.lastUsed.raw());
}

std::unique_ptr<KeepAliveStrategy>
KeepAliveConfig::make() const
{
    switch (kind) {
    case Kind::Lru:
        return std::make_unique<LruKeepAlive>();
    case Kind::GreedyDual:
        return std::make_unique<GreedyDualKeepAlive>();
    case Kind::Histogram:
        return std::make_unique<HistogramKeepAlive>(histogramOpts);
    }
    return std::make_unique<LruKeepAlive>();
}

const char *
toString(KeepAliveConfig::Kind kind)
{
    switch (kind) {
    case KeepAliveConfig::Kind::Lru:
        return "lru";
    case KeepAliveConfig::Kind::GreedyDual:
        return "greedy-dual";
    case KeepAliveConfig::Kind::Histogram:
        return "histogram";
    }
    return "?";
}

#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
KeepAliveConfig
keepAliveConfigFrom(KeepAlivePolicy policy)
{
    return policy == KeepAlivePolicy::GreedyDual
               ? KeepAliveConfig::greedyDual()
               : KeepAliveConfig::lru();
}
#pragma GCC diagnostic pop

} // namespace molecule::core
