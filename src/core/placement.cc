#include "core/placement.hh"

#include <algorithm>

namespace molecule::core {

namespace {

/** Candidate order of the price heuristic: cheapest profile first
 * (registration order breaks price ties), then ascending PU id. */
bool
priceBefore(const PuView &a, const PuView &b)
{
    if (a.price != b.price)
        return a.price < b.price;
    if (a.profileRank != b.profileRank)
        return a.profileRank < b.profileRank;
    return a.pu < b.pu;
}

std::vector<const PuView *>
priceOrdered(const PlacementView &view)
{
    std::vector<const PuView *> order;
    order.reserve(view.pus().size());
    for (const PuView &v : view.pus())
        order.push_back(&v);
    std::sort(order.begin(), order.end(),
              [](const PuView *a, const PuView *b) {
                  return priceBefore(*a, *b);
              });
    return order;
}

} // namespace

int
PriceOrderedPolicy::place(const PlacementRequest &req,
                          const PlacementView &view)
{
    (void)req;
    for (const PuView *v : priceOrdered(view))
        if (v->eligible())
            return v->pu;
    return -1;
}

int
LoadAwarePolicy::place(const PlacementRequest &req,
                       const PlacementView &view)
{
    (void)req;
    const auto order = priceOrdered(view);

    // Pass 1: cheapest kind with headroom. The order is price-grouped,
    // so scanning for the least-loaded PU within the current (price,
    // rank) group before moving on implements "spill to the
    // next-cheapest kind only when this one is saturated".
    std::size_t i = 0;
    while (i < order.size()) {
        const double price = order[i]->price;
        const std::uint32_t rank = order[i]->profileRank;
        const PuView *best = nullptr;
        for (; i < order.size() && order[i]->price == price &&
               order[i]->profileRank == rank;
             ++i) {
            const PuView *v = order[i];
            if (!v->eligible() ||
                v->loadPerCore() >= opts_.spillThreshold)
                continue;
            if (best == nullptr ||
                v->loadPerCore() < best->loadPerCore())
                best = v;
        }
        if (best != nullptr)
            return best->pu;
    }

    // Pass 2: every kind saturated — the globally least-loaded
    // eligible PU absorbs the overflow (lowest id ties, via the
    // price-ordered scan order and strict improvement).
    const PuView *best = nullptr;
    for (const PuView &v : view.pus()) {
        if (!v.eligible())
            continue;
        if (best == nullptr || v.loadPerCore() < best->loadPerCore() ||
            (v.loadPerCore() == best->loadPerCore() && v.pu < best->pu))
            best = &v;
    }
    return best != nullptr ? best->pu : -1;
}

int
LocalityAffinityPolicy::place(const PlacementRequest &req,
                              const PlacementView &view)
{
    const PuView *warm = nullptr;
    for (const PuView &v : view.pus()) {
        if (!v.eligible() || v.warmSandboxes == 0 ||
            v.loadPerCore() >= opts_.loadBarrier)
            continue;
        const bool better =
            warm == nullptr || v.warmSandboxes > warm->warmSandboxes ||
            (v.warmSandboxes == warm->warmSandboxes &&
             priceBefore(v, *warm));
        if (better)
            warm = &v;
    }
    if (warm != nullptr)
        return warm->pu;
    return fallback_.place(req, view);
}

std::unique_ptr<PlacementPolicy>
PlacementConfig::make() const
{
    switch (kind) {
    case Kind::PriceOrdered:
        return std::make_unique<PriceOrderedPolicy>();
    case Kind::LoadAware:
        return std::make_unique<LoadAwarePolicy>(
            LoadAwarePolicy::Options{spillThreshold});
    case Kind::Locality:
        return std::make_unique<LocalityAffinityPolicy>(
            LocalityAffinityPolicy::Options{loadBarrier,
                                            spillThreshold});
    }
    return std::make_unique<PriceOrderedPolicy>();
}

const char *
toString(PlacementConfig::Kind kind)
{
    switch (kind) {
    case PlacementConfig::Kind::PriceOrdered:
        return "price-ordered";
    case PlacementConfig::Kind::LoadAware:
        return "load-aware";
    case PlacementConfig::Kind::Locality:
        return "locality";
    }
    return "?";
}

} // namespace molecule::core
