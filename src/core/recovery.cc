#include "core/recovery.hh"

namespace molecule::core {

void
RecoveryManager::onPuCrash(int pu)
{
    ++crashes_;
    // Order matters: runc drops its process/container pointers first
    // (crashReset reaps them wholesale — exiting them twice would
    // double-free), then the OS reaps and poisons, then the shim
    // fails its pending reads and drops the capability replica.
    dep_.runcOn(pu).crashPurge();
    dep_.osOn(pu).crashReset();
    dep_.shimOn(pu).crashLocal();
    startup_.purgePu(pu);
    if (tracer_ != nullptr)
        tracer_->metrics().counter("recovery.crash_purge").inc();
}

void
RecoveryManager::onPuRestart(int pu)
{
    ++restarts_;
    dep_.simulation().spawn(recoverTask(this, pu));
}

void
RecoveryManager::onSandboxOom(int pu, const std::string &funcId)
{
    const int killed = dep_.runcOn(pu).oomKill(funcId);
    startup_.purgeFunction(funcId, pu);
    if (tracer_ != nullptr && killed > 0)
        tracer_->metrics().counter("fault.oom_killed").inc(killed);
}

sim::Task<>
RecoveryManager::recoverTask(RecoveryManager *self, int pu)
{
    obs::Span root = obs::Span::root(self->tracer_, "recovery",
                                     obs::Layer::Core, pu);
    {
        obs::Span span(root.ctx(), "recovery.resync", obs::Layer::Core,
                       pu);
        // Rebuild the capability replica from the lowest-id live
        // peer: the replica rides the interconnect, then applies.
        int peer = -1;
        for (int candidate : self->dep_.generalPus()) {
            if (candidate == pu || self->dep_.puDown(candidate))
                continue;
            peer = candidate;
            break;
        }
        if (peer >= 0) {
            xpu::XpuShim &peerShim = self->dep_.shimOn(peer);
            const std::uint64_t bytes =
                64 * (1 + peerShim.caps().objectCount());
            span.setArg(std::int64_t(bytes));
            co_await self->dep_.shimNet().transfer(peer, pu, bytes,
                                                   span.ctx());
            self->dep_.shimOn(pu).resyncFrom(peerShim);
            if (self->tracer_ != nullptr)
                self->tracer_->metrics()
                    .counter("recovery.resync")
                    .inc();
        } else {
            span.setDetail("no-live-peer");
        }
    }
    co_await self->startup_.rewarmPu(pu, root.ctx());
    if (self->tracer_ != nullptr)
        self->tracer_->metrics().counter("recovery.rewarm").inc();
}

} // namespace molecule::core
