/**
 * @file
 * The Molecule serverless runtime (public API).
 *
 * Ties the whole stack together on one heterogeneous computer: the
 * deployment (OSes, shims, sandbox runtimes), the function registry,
 * the startup manager (cfork + keep-alive), the scheduler and the DAG
 * engine. Two configuration axes reproduce the paper's baselines:
 *
 *  - Molecule        : cfork startup + IPC/nIPC DAG communication;
 *  - Molecule-homo   : cold-boot startup + Express/Flask HTTP DAG,
 *                      single-PU only (no XPU-Shim use).
 *
 * @code
 *   sim::Simulation s;
 *   auto computer = hw::buildCpuDpuServer(s, 2, hw::DpuGeneration::Bf1);
 *   core::Molecule runtime(*computer, core::MoleculeOptions{});
 *   runtime.registerCpuFunction("helloworld",
 *                               {hw::PuType::HostCpu, hw::PuType::Dpu});
 *   runtime.start();
 *   auto record = runtime.invokeSync("helloworld");
 * @endcode
 */

#ifndef MOLECULE_CORE_MOLECULE_HH
#define MOLECULE_CORE_MOLECULE_HH

#include <memory>
#include <optional>

#include "core/dag.hh"
#include "core/gateway.hh"
#include "core/metrics.hh"
#include "core/scheduler.hh"
#include "core/startup.hh"
#include "obs/trace.hh"
#include "workloads/catalog.hh"

namespace molecule::core {

/** Top-level configuration. */
struct MoleculeOptions
{
    StartupOptions startup;
    DagCommMode dagMode = DagCommMode::MoleculeIpc;
    /** PU hosting the Molecule runtime process (Figure 6). */
    int managerPu = 0;
    /**
     * Span collector for this runtime's invocations (obs subsystem).
     * Null (the default) disables tracing with zero model impact.
     * Must outlive the Molecule and belong to the same Simulation.
     */
    obs::Tracer *tracer = nullptr;

    /** The homogeneous baseline configuration of §6. */
    static MoleculeOptions
    homo()
    {
        MoleculeOptions o;
        o.startup.useCfork = false;
        o.dagMode = DagCommMode::BaselineHttp;
        return o;
    }
};

/**
 * One Molecule worker runtime.
 */
class Molecule
{
  public:
    Molecule(hw::Computer &computer, MoleculeOptions options);

    ~Molecule();

    /** @name Sub-systems */
    ///@{
    Deployment &deployment() { return *dep_; }

    FunctionRegistry &registry() { return registry_; }

    StartupManager &startup() { return *startup_; }

    Scheduler &scheduler() { return *scheduler_; }

    DagEngine &dag() { return *dag_; }

    workloads::Catalog &catalog() { return catalog_; }

    sim::Simulation &simulation() { return computer_.simulation(); }

    const MoleculeOptions &options() const { return options_; }
    ///@}

    /** @name Function registration */
    ///@{

    /**
     * Register a CPU/DPU function from the workload catalog under its
     * catalog name, allowed on @p kinds (DPU cheaper than CPU).
     */
    void registerCpuFunction(const std::string &name,
                             const std::vector<hw::PuType> &kinds);

    /** Register an FPGA function from the catalog. */
    void registerFpgaFunction(const std::string &name,
                              std::uint64_t units = 1);

    /** Register a GPU (CUDA) function with a kernel-time model. */
    void registerGpuFunction(const std::string &name,
                             sim::SimTime kernelTime,
                             std::uint64_t ioBytes = 1 << 20);

    /** Register a function that may run on both CPU/DPU and FPGA. */
    void registerHybridFunction(const std::string &cpuName,
                                const std::string &fpgaName,
                                std::uint64_t units = 1);
    ///@}

    /**
     * Boot the platform: executors on every PU (xSpawn), cfork
     * templates, container pools. Runs the simulation to completion.
     */
    void start();

    /** @name Invocation (synchronous helpers run the simulation) */
    ///@{

    /** One invocation; @p pu -1 lets the scheduler pick. */
    sim::Task<InvocationRecord> invoke(const std::string &fn,
                                       int pu = -1);

    /** Run the simulation until @ref invoke completes. */
    InvocationRecord invokeSync(const std::string &fn, int pu = -1);

    /** One FPGA invocation with @p units of input. */
    sim::Task<InvocationRecord> invokeFpga(const std::string &fn,
                                           int fpgaIndex,
                                           std::uint64_t units);

    InvocationRecord invokeFpgaSync(const std::string &fn,
                                    int fpgaIndex, std::uint64_t units);

    /** One GPU invocation (§6.8 generality path). */
    sim::Task<InvocationRecord> invokeGpu(const std::string &fn,
                                          int gpuIndex);

    InvocationRecord invokeGpuSync(const std::string &fn, int gpuIndex);

    /** Run a chain; empty placement lets the scheduler place it. */
    sim::Task<ChainRecord> invokeChain(const ChainSpec &spec,
                                       std::vector<int> placement = {},
                                       bool prewarm = true);

    ChainRecord invokeChainSync(const ChainSpec &spec,
                                std::vector<int> placement = {},
                                bool prewarm = true);
    ///@}

  private:
    hw::Computer &computer_;
    MoleculeOptions options_;
    workloads::Catalog catalog_;
    FunctionRegistry registry_;
    std::unique_ptr<Deployment> dep_;
    std::unique_ptr<StartupManager> startup_;
    std::unique_ptr<Scheduler> scheduler_;
    std::unique_ptr<DagEngine> dag_;
    bool started_ = false;
};

} // namespace molecule::core

#endif // MOLECULE_CORE_MOLECULE_HH
