/**
 * @file
 * The Molecule serverless runtime (public API).
 *
 * Ties the whole stack together on one heterogeneous computer: the
 * deployment (OSes, shims, sandbox runtimes), the function registry,
 * the startup manager (cfork + keep-alive), the scheduler and the DAG
 * engine. Two configuration axes reproduce the paper's baselines:
 *
 *  - Molecule        : cfork startup + IPC/nIPC DAG communication;
 *  - Molecule-homo   : cold-boot startup + Express/Flask HTTP DAG,
 *                      single-PU only (no XPU-Shim use).
 *
 * Invocation outcomes are typed: every invoke returns
 * `core::Expected<obs::InvocationRecord>` so injected faults (PU
 * crashes, OOM kills, FPGA reconfiguration failures) surface as
 * `core::Error` chains instead of asserts — with optional
 * retry-with-backoff and failover placement per InvokeOptions.
 *
 * @code
 *   sim::Simulation s;
 *   auto computer = hw::buildCpuDpuServer(s, 2, hw::DpuGeneration::Bf1);
 *   core::Molecule runtime(*computer, core::MoleculeOptions{});
 *   runtime.registerCpuFunction("helloworld",
 *                               {hw::PuType::HostCpu, hw::PuType::Dpu});
 *   runtime.start();
 *   auto record = runtime.invokeSync("helloworld");
 *   if (record.ok())
 *       use(record.value().endToEnd);
 * @endcode
 */

#ifndef MOLECULE_CORE_MOLECULE_HH
#define MOLECULE_CORE_MOLECULE_HH

#include <memory>
#include <optional>

#include "core/dag.hh"
#include "core/gateway.hh"
#include "core/recovery.hh"
#include "core/scheduler.hh"
#include "core/startup.hh"
#include "core/status.hh"
#include "fault/state.hh"
#include "obs/trace.hh"
#include "workloads/catalog.hh"

namespace molecule::core {

/** Top-level configuration. */
struct MoleculeOptions
{
    StartupOptions startup;
    /** Placement strategy selection (see placement.hh). */
    PlacementConfig placement;
    DagCommMode dagMode = DagCommMode::MoleculeIpc;
    /** PU hosting the Molecule runtime process (Figure 6). */
    int managerPu = 0;
    /**
     * Span collector for this runtime's invocations (obs subsystem).
     * Null (the default) disables tracing with zero model impact.
     * Must outlive the Molecule and belong to the same Simulation.
     */
    obs::Tracer *tracer = nullptr;
    /**
     * Shared fault state driven by a fault::Injector. Null (the
     * default) runs fault-free with zero model impact; when set, the
     * runtime registers its RecoveryManager as a listener and every
     * layer consults the state (down PUs, degraded links, armed
     * reconfiguration failures). Must outlive the Molecule.
     */
    fault::FaultState *faults = nullptr;

    /** The homogeneous baseline configuration of §6. */
    static MoleculeOptions
    homo()
    {
        MoleculeOptions o;
        o.startup.useCfork = false;
        o.dagMode = DagCommMode::BaselineHttp;
        return o;
    }
};

/** Per-invocation resilience knobs (§ fault injection & recovery). */
struct InvokeOptions
{
    /** Explicit placement; -1 lets the scheduler pick. */
    int pu = -1;
    /**
     * End-to-end sim-time budget enforced at admission and between
     * phases; zero disables. Exceeding it returns DeadlineExceeded
     * (never retried — the budget is already gone).
     */
    sim::SimTime deadline{};
    /** Total attempts (1 = no retry). */
    int maxAttempts = 1;
    /** Sim-time pause before each retry attempt. */
    sim::SimTime retryBackoff = sim::SimTime::milliseconds(5);
    /** Allow retries to fail over to another allowed PU. */
    bool failover = true;
};

/**
 * One Molecule worker runtime.
 */
class Molecule
{
  public:
    Molecule(hw::Computer &computer, MoleculeOptions options);

    ~Molecule();

    /** @name Sub-systems */
    ///@{
    Deployment &deployment() { return *dep_; }

    FunctionRegistry &registry() { return registry_; }

    StartupManager &startup() { return *startup_; }

    Scheduler &scheduler() { return *scheduler_; }

    Gateway &gateway() { return *gateway_; }

    DagEngine &dag() { return *dag_; }

    workloads::Catalog &catalog() { return catalog_; }

    sim::Simulation &simulation() { return computer_.simulation(); }

    const MoleculeOptions &options() const { return options_; }

    /** Recovery listener; null when no fault state is attached. */
    RecoveryManager *recovery() { return recovery_.get(); }
    ///@}

    /** @name Function registration */
    ///@{

    /**
     * Register a CPU/DPU function from the workload catalog under its
     * catalog name, allowed on @p kinds (DPU cheaper than CPU).
     */
    void registerCpuFunction(const std::string &name,
                             const std::vector<hw::PuType> &kinds);

    /** Register an FPGA function from the catalog. */
    void registerFpgaFunction(const std::string &name,
                              std::uint64_t units = 1);

    /** Register a GPU (CUDA) function with a kernel-time model. */
    void registerGpuFunction(const std::string &name,
                             sim::SimTime kernelTime,
                             std::uint64_t ioBytes = 1 << 20);

    /** Register a function that may run on both CPU/DPU and FPGA. */
    void registerHybridFunction(const std::string &cpuName,
                                const std::string &fpgaName,
                                std::uint64_t units = 1);
    ///@}

    /**
     * Boot the platform: executors on every PU (xSpawn), cfork
     * templates, container pools. Runs the simulation to completion.
     */
    void start();

    /** @name Invocation (synchronous helpers run the simulation) */
    ///@{

    /**
     * One invocation with full resilience control. Retries run the
     * whole admission/startup/comm/exec pipeline again after
     * @ref InvokeOptions::retryBackoff; with failover enabled the
     * retry excludes every PU a previous attempt failed on. On
     * exhaustion the RetriesExhausted error carries the last cause,
     * the retry count and the PUs tried.
     */
    [[nodiscard]] sim::Task<Expected<obs::InvocationRecord>>
    invoke(const std::string &fn, const InvokeOptions &opts);

    /** One invocation; @p pu -1 lets the scheduler pick. */
    [[nodiscard]] sim::Task<Expected<obs::InvocationRecord>>
    invoke(const std::string &fn, int pu = -1);

    /**
     * Run the simulation until @ref invoke completes. If the
     * simulation drains while the invocation is still pending (a hang
     * — some fault left it blocked forever), returns Errc::Hang.
     */
    [[nodiscard]] Expected<obs::InvocationRecord>
    invokeSync(const std::string &fn, const InvokeOptions &opts);

    [[nodiscard]] Expected<obs::InvocationRecord>
    invokeSync(const std::string &fn, int pu = -1);

    /**
     * One FPGA invocation with @p units of input. Injected
     * reconfiguration failures surface as FpgaReconfigFailed; retries
     * (per @p opts) re-attempt on the same card — reconfiguration
     * faults are transient and count-limited, so there is no cross-
     * card failover.
     */
    [[nodiscard]] sim::Task<Expected<obs::InvocationRecord>>
    invokeFpga(const std::string &fn, int fpgaIndex,
               std::uint64_t units, const InvokeOptions &opts);

    [[nodiscard]] sim::Task<Expected<obs::InvocationRecord>>
    invokeFpga(const std::string &fn, int fpgaIndex,
               std::uint64_t units);

    [[nodiscard]] Expected<obs::InvocationRecord>
    invokeFpgaSync(const std::string &fn, int fpgaIndex,
                   std::uint64_t units, const InvokeOptions &opts);

    [[nodiscard]] Expected<obs::InvocationRecord>
    invokeFpgaSync(const std::string &fn, int fpgaIndex,
                   std::uint64_t units);

    /** One GPU invocation (§6.8 generality path). */
    [[nodiscard]] sim::Task<Expected<obs::InvocationRecord>>
    invokeGpu(const std::string &fn, int gpuIndex);

    [[nodiscard]] Expected<obs::InvocationRecord>
    invokeGpuSync(const std::string &fn, int gpuIndex);

    /** Run a chain; empty placement lets the scheduler place it. */
    [[nodiscard]] sim::Task<Expected<obs::ChainRecord>>
    invokeChain(const ChainSpec &spec, std::vector<int> placement = {},
                bool prewarm = true);

    [[nodiscard]] Expected<obs::ChainRecord>
    invokeChainSync(const ChainSpec &spec,
                    std::vector<int> placement = {},
                    bool prewarm = true);
    ///@}

  private:
    /**
     * One attempt of the CPU/DPU pipeline (no retry logic). On
     * success @p acqOut holds the acquired instance so the caller can
     * release it *after* closing the root span (keep-alive bookkeeping
     * must not stretch the measured window).
     */
    [[nodiscard]] sim::Task<Expected<obs::InvocationRecord>>
    invokeOnce(const FunctionDef &def, const InvokeOptions &opts,
               int attempt, obs::PuList exclude, sim::SimTime t0,
               obs::SpanContext rootCtx, AcquiredInstance *acqOut);

    hw::Computer &computer_;
    MoleculeOptions options_;
    workloads::Catalog catalog_;
    FunctionRegistry registry_;
    std::unique_ptr<Deployment> dep_;
    std::unique_ptr<StartupManager> startup_;
    std::unique_ptr<Scheduler> scheduler_;
    std::unique_ptr<Gateway> gateway_;
    std::unique_ptr<DagEngine> dag_;
    std::unique_ptr<RecoveryManager> recovery_;
    bool started_ = false;
};

} // namespace molecule::core

#endif // MOLECULE_CORE_MOLECULE_HH
