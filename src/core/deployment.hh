/**
 * @file
 * Deployment: the software stack wired onto one heterogeneous computer.
 *
 * Owns one LocalOs and one runc runtime per general-purpose PU, the
 * XPU-Shim network (with the paper's default transports: plain FIFO
 * XPUcalls on the fast host CPU, MPSC+polling on DPUs, §6.1), one runf
 * per FPGA card and one runG per GPU — runf/runG hang off the host
 * PU's *virtual* shim instance (§4.1).
 */

#ifndef MOLECULE_CORE_DEPLOYMENT_HH
#define MOLECULE_CORE_DEPLOYMENT_HH

#include <memory>
#include <vector>

#include "hw/computer.hh"
#include "sandbox/runc.hh"
#include "sandbox/runf.hh"
#include "sandbox/rung.hh"
#include "xpu/client.hh"
#include "xpu/shim.hh"

namespace molecule::core {

/**
 * All per-PU software of one worker machine.
 */
class Deployment
{
  public:
    explicit Deployment(hw::Computer &computer);

    Deployment(const Deployment &) = delete;
    Deployment &operator=(const Deployment &) = delete;

    hw::Computer &computer() { return computer_; }

    sim::Simulation &simulation() { return computer_.simulation(); }

    os::LocalOs &osOn(int pu);

    sandbox::RuncRuntime &runcOn(int pu);

    xpu::XpuShimNetwork &shimNet() { return *shimNet_; }

    xpu::XpuShim &shimOn(int pu) { return shimNet_->shimOn(pu); }

    /** runf instance of FPGA card @p index. */
    sandbox::RunfRuntime &runf(int index);

    std::size_t runfCount() const { return runfs_.size(); }

    /** runG instance of GPU card @p index. */
    sandbox::RungRuntime &rung(int index);

    std::size_t rungCount() const { return rungs_.size(); }

    /** General-purpose PU ids (host CPU first). */
    const std::vector<int> &generalPus() const { return generalPus_; }

    /** PU ids of a given type. */
    std::vector<int> pusOfType(hw::PuType type) const;

  private:
    hw::Computer &computer_;
    std::vector<std::unique_ptr<os::LocalOs>> oses_;
    std::unique_ptr<xpu::XpuShimNetwork> shimNet_;
    std::vector<std::unique_ptr<sandbox::RuncRuntime>> runcs_;
    std::vector<std::unique_ptr<sandbox::RunfRuntime>> runfs_;
    std::vector<std::unique_ptr<sandbox::RungRuntime>> rungs_;
    std::vector<int> generalPus_;
};

} // namespace molecule::core

#endif // MOLECULE_CORE_DEPLOYMENT_HH
