/**
 * @file
 * Deployment: the software stack wired onto one heterogeneous computer.
 *
 * Owns one LocalOs and one runc runtime per general-purpose PU, the
 * XPU-Shim network (with the paper's default transports: plain FIFO
 * XPUcalls on the fast host CPU, MPSC+polling on DPUs, §6.1), one runf
 * per FPGA card and one runG per GPU — runf/runG hang off the host
 * PU's *virtual* shim instance (§4.1).
 */

#ifndef MOLECULE_CORE_DEPLOYMENT_HH
#define MOLECULE_CORE_DEPLOYMENT_HH

#include <memory>
#include <vector>

#include "fault/state.hh"
#include "hw/computer.hh"
#include "sandbox/runc.hh"
#include "sandbox/runf.hh"
#include "sandbox/rung.hh"
#include "xpu/client.hh"
#include "xpu/shim.hh"

namespace molecule::core {

/**
 * All per-PU software of one worker machine.
 */
class Deployment
{
  public:
    explicit Deployment(hw::Computer &computer);

    Deployment(const Deployment &) = delete;
    Deployment &operator=(const Deployment &) = delete;

    hw::Computer &computer() { return computer_; }

    sim::Simulation &simulation() { return computer_.simulation(); }

    os::LocalOs &osOn(int pu);

    sandbox::RuncRuntime &runcOn(int pu);

    xpu::XpuShimNetwork &shimNet() { return *shimNet_; }

    xpu::XpuShim &shimOn(int pu) { return shimNet_->shimOn(pu); }

    /** runf instance of FPGA card @p index. */
    sandbox::RunfRuntime &runf(int index);

    std::size_t runfCount() const { return runfs_.size(); }

    /** runG instance of GPU card @p index. */
    sandbox::RungRuntime &rung(int index);

    std::size_t rungCount() const { return rungs_.size(); }

    /** General-purpose PU ids (host CPU first). */
    const std::vector<int> &generalPus() const { return generalPus_; }

    /** PU ids of a given type. */
    std::vector<int> pusOfType(hw::PuType type) const;

    /**
     * Wire the fault state through every layer that reacts to it:
     * shim network (peer-down checks), topology (link faults) and
     * FPGA devices (reconfiguration failures). Nullptr detaches; the
     * default (never attached) is the fault-free model, bit-identical
     * to a build without the fault subsystem.
     */
    void attachFaults(fault::FaultState *faults);

    fault::FaultState *faults() { return faults_; }

    /** True when @p pu is currently crashed (false when unfaulted). */
    bool puDown(int pu) const
    {
        return faults_ != nullptr && !faults_->puUp(pu);
    }

  private:
    hw::Computer &computer_;
    fault::FaultState *faults_ = nullptr;
    std::vector<std::unique_ptr<os::LocalOs>> oses_;
    std::unique_ptr<xpu::XpuShimNetwork> shimNet_;
    std::vector<std::unique_ptr<sandbox::RuncRuntime>> runcs_;
    std::vector<std::unique_ptr<sandbox::RunfRuntime>> runfs_;
    std::vector<std::unique_ptr<sandbox::RungRuntime>> rungs_;
    std::vector<int> generalPus_;
};

} // namespace molecule::core

#endif // MOLECULE_CORE_DEPLOYMENT_HH
