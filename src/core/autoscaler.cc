#include "core/autoscaler.hh"

#include <algorithm>
#include <cmath>

#include "core/startup.hh"

namespace molecule::core {

void
WarmPoolAutoscaler::addTarget(StartupManager *target)
{
    if (target != nullptr)
        targets_.push_back(target);
}

void
WarmPoolAutoscaler::onAlert(const obs::AlertEvent &a)
{
    const double factor = a.fired ? opts_.growFactor
                                  : opts_.shrinkFactor;
    if (a.fired)
        ++scaleUps_;
    else
        ++scaleDowns_;
    for (StartupManager *target : targets_) {
        const std::size_t cur = target->options().warmCapacity;
        const auto scaled =
            std::size_t(std::llround(double(cur) * factor));
        const std::size_t next = std::clamp(
            scaled, opts_.minCapacity, opts_.maxCapacity);
        target->options().warmCapacity = next;
        fp_.mix(std::uint64_t(next));
    }
    fp_.mix(a.fired ? 0x5550ULL : 0x444eULL); // 'UP' / 'DN'
    fp_.mix(std::uint64_t(a.tenant));
    fp_.mixTime(a.at);
}

} // namespace molecule::core
