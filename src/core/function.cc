#include "core/function.hh"

#include "sim/logging.hh"

namespace molecule::core {

void
FunctionRegistry::add(FunctionDef def)
{
    MOLECULE_ASSERT(!def.name.empty(), "function needs a name");
    defs_[def.name] = std::move(def);
}

const FunctionDef &
FunctionRegistry::find(const std::string &name) const
{
    auto it = defs_.find(name);
    if (it == defs_.end())
        sim::fatal("unknown function '%s'", name.c_str());
    return it->second;
}

const FunctionDef *
FunctionRegistry::findPtr(const std::string &name) const
{
    auto it = defs_.find(name);
    return it == defs_.end() ? nullptr : &it->second;
}

bool
FunctionRegistry::has(const std::string &name) const
{
    return defs_.count(name) != 0;
}

std::vector<const sandbox::FunctionImage *>
FunctionRegistry::imagesForTemplates() const
{
    std::vector<const sandbox::FunctionImage *> out;
    for (const auto &[name, def] : defs_)
        if (def.cpuWork)
            out.push_back(&def.cpuWork->image);
    return out;
}

} // namespace molecule::core
