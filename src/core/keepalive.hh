/**
 * @file
 * Keep-alive strategies: swappable eviction behind the startup
 * manager (§5 "Keep-alive policies").
 *
 * The startup manager owns the warm pools (one deque per (function,
 * PU)) and the eviction *mechanics*; a KeepAliveStrategy owns the
 * eviction *order*. The manager scans the candidate entries and
 * evicts the one with the lowest strategy score — ties keep the
 * earliest-scanned entry, so a strategy only has to produce
 * deterministic scores to keep runs bit-for-bit replayable.
 *
 * Three strategies ship:
 *
 *  - lru         : oldest lastUsed first (the historical default);
 *  - greedy-dual : FaasCache-style priority clock + freq x cost /
 *                  size with clock aging on eviction — keeps
 *                  expensive-to-boot functions warm over popular
 *                  cheap ones;
 *  - histogram   : per-(function, PU) reuse-interval histogram
 *                  predicts an idle window; entries that outlived
 *                  their predicted window are evicted first (most
 *                  overdue first), entries still inside it fall back
 *                  to LRU order.
 */

#ifndef MOLECULE_CORE_KEEPALIVE_HH
#define MOLECULE_CORE_KEEPALIVE_HH

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>

#include "sim/time.hh"

namespace molecule::core {

/** What a strategy sees of one parked (or parking) instance. */
struct WarmEntryView
{
    std::string_view fn;
    int pu = -1;
    sim::SimTime lastUsed;
    /** Lifetime request count of (fn, pu). */
    std::int64_t freq = 1;
    /** Cold-start cost an eviction would re-impose, ms. */
    double costMs = 1.0;
    /** Instance memory footprint, MB. */
    double sizeMb = 1.0;
    /** Value parkPriority() stamped when the entry parked. */
    double parkPriority = 0.0;
};

/**
 * Eviction-order seam. Implementations must be pure functions of
 * their inputs and their own deterministic state — no wall clock, no
 * global RNG — so keep-alive churn stays bit-for-bit replayable.
 */
class KeepAliveStrategy
{
  public:
    virtual ~KeepAliveStrategy() = default;

    virtual const char *name() const = 0;

    /** A request for (fn, pu) was observed at @p now (before the warm
     * lookup) — reuse-interval learning hooks in here. */
    virtual void
    onRequest(std::string_view fn, int pu, sim::SimTime now)
    {
        (void)fn;
        (void)pu;
        (void)now;
    }

    /** Priority stamped on @p entry as it parks (greedy-dual). */
    virtual double
    parkPriority(const WarmEntryView &entry)
    {
        (void)entry;
        return 0.0;
    }

    /**
     * Eviction score of @p entry at @p now: the lowest score across
     * the candidates is evicted first; ties keep the earliest-scanned
     * entry.
     */
    virtual double score(const WarmEntryView &entry,
                         sim::SimTime now) const = 0;

    /** @p entry was evicted (greedy-dual clock aging). */
    virtual void
    onEvict(const WarmEntryView &entry)
    {
        (void)entry;
    }
};

/** Oldest lastUsed first. */
class LruKeepAlive final : public KeepAliveStrategy
{
  public:
    const char *name() const override { return "lru"; }

    double score(const WarmEntryView &entry,
                 sim::SimTime now) const override;
};

/**
 * FaasCache greedy-dual: park priority = clock + freq x cost / size;
 * the evicted entry's priority becomes the pool's new clock (classic
 * greedy-dual aging), so long-parked entries age relative to fresh
 * ones.
 */
class GreedyDualKeepAlive final : public KeepAliveStrategy
{
  public:
    const char *name() const override { return "greedy-dual"; }

    double parkPriority(const WarmEntryView &entry) override;

    double score(const WarmEntryView &entry,
                 sim::SimTime now) const override;

    void onEvict(const WarmEntryView &entry) override;

  private:
    using PoolKey = std::pair<std::string, int>;

    /** Greedy-dual clock per (fn, pu) pool. */
    std::map<PoolKey, double> clock_;
};

/**
 * Prediction-based idle windows: a log-bucketed histogram of observed
 * reuse intervals per (function, PU) predicts how long a parked
 * instance stays worth keeping (percentile x margin). Entries past
 * their window are evicted first, most overdue first; entries inside
 * it are protected and fall back to LRU order among themselves.
 */
class HistogramKeepAlive final : public KeepAliveStrategy
{
  public:
    struct Options
    {
        /** Reuse-interval percentile that sets the window. */
        double percentile = 95.0;
        /** Safety margin on the predicted window. */
        double marginFactor = 1.25;
        /** Window until enough intervals are observed, ms. */
        double defaultWindowMs = 250.0;
        /** Observations needed before predictions kick in. */
        std::int64_t minSamples = 4;
    };

    HistogramKeepAlive() = default;

    explicit HistogramKeepAlive(const Options &options)
        : opts_(options)
    {}

    const char *name() const override { return "histogram"; }

    void onRequest(std::string_view fn, int pu,
                   sim::SimTime now) override;

    double score(const WarmEntryView &entry,
                 sim::SimTime now) const override;

    /** Predicted idle window of (fn, pu) (tests). */
    sim::SimTime window(std::string_view fn, int pu) const;

  private:
    using PoolKey = std::pair<std::string, int>;

    /** Log2-bucketed reuse intervals (microseconds). */
    struct Intervals
    {
        std::array<std::int64_t, 48> buckets{};
        std::int64_t count = 0;
        sim::SimTime lastSeen;
        bool seen = false;
    };

    sim::SimTime windowOf(const Intervals &iv) const;

    Options opts_;
    std::map<PoolKey, Intervals> intervals_;
};

/**
 * Value-semantic strategy selection, safe to copy into per-node
 * MoleculeOptions (cluster::FleetSpec stamps one options template on
 * every node; each node must get its *own* stateful strategy).
 */
struct KeepAliveConfig
{
    enum class Kind : std::uint8_t { Lru, GreedyDual, Histogram };

    Kind kind = Kind::Lru;
    /** Histogram knobs (ignored by the other strategies). */
    HistogramKeepAlive::Options histogramOpts;

    /** Build a fresh strategy instance for one startup manager. */
    std::unique_ptr<KeepAliveStrategy> make() const;

    static KeepAliveConfig
    lru()
    {
        return {};
    }

    static KeepAliveConfig
    greedyDual()
    {
        KeepAliveConfig c;
        c.kind = Kind::GreedyDual;
        return c;
    }

    static KeepAliveConfig
    histogram(const HistogramKeepAlive::Options &options)
    {
        KeepAliveConfig c;
        c.kind = Kind::Histogram;
        c.histogramOpts = options;
        return c;
    }

    static KeepAliveConfig
    histogram()
    {
        KeepAliveConfig c;
        c.kind = Kind::Histogram;
        return c;
    }
};

const char *toString(KeepAliveConfig::Kind kind);

/**
 * Pre-policy-layer eviction selector, kept for exactly one release so
 * downstream code migrates off the enum at its own pace. Use
 * KeepAliveConfig (and StartupOptions::keepAlive) instead.
 */
enum class [[deprecated(
    "use KeepAliveConfig / StartupOptions::keepAlive")]] KeepAlivePolicy {
    Lru,
    GreedyDual,
};

#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
/** Enum -> strategy-config adapter (one-release migration shim). */
[[deprecated("use KeepAliveConfig::lru() / ::greedyDual()")]]
KeepAliveConfig keepAliveConfigFrom(KeepAlivePolicy policy);
#pragma GCC diagnostic pop

} // namespace molecule::core

#endif // MOLECULE_CORE_KEEPALIVE_HH
