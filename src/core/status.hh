/**
 * @file
 * The uniform outcome model of the public runtime surface.
 *
 * Every fallible operation returns either core::Status (no payload) or
 * core::Expected<T> (payload or error). core::Error is a *value*: a
 * tagged code, a human-readable detail, the PU it happened on, the
 * C++ source location that created it, and — because recovery retries
 * and fails over — the chain of causes accumulated along the way plus
 * the retry/placement history. Errors are ordinary copyable objects so
 * they can cross coroutine frames, sweep-runner threads, and the
 * sync/async API boundary without ceremony.
 *
 * This header is intentionally self-contained (std-only): it sits in
 * core/ because the *policy* it expresses — typed failure instead of
 * assert-or-hang — is runtime-wide, but lower layers (hw, os, xpu,
 * sandbox) include it freely; it introduces no link-time dependency.
 */

#ifndef MOLECULE_CORE_STATUS_HH
#define MOLECULE_CORE_STATUS_HH

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <source_location>
#include <string>
#include <utility>
#include <variant>
#include <vector>

namespace molecule::core {

/** Tagged error codes of the runtime surface. */
enum class Errc : std::uint8_t {
    Ok = 0,

    // Request/permission errors (the old xpu::XpuStatus family).
    NoPermission,
    NotFound,
    AlreadyExists,
    InvalidArgument,
    NoMemory,

    // Admission / placement.
    NoCapacity,
    DeadlineExceeded,

    // Injected-fault families.
    PuCrashed,
    PeerRestarted,
    LinkDown,
    FpgaReconfigFailed,
    SandboxOomKilled,

    // Recovery outcomes.
    RetriesExhausted,
    /** Sim drained with the invocation still pending (watchdog). */
    Hang,
};

inline const char *
toString(Errc c)
{
    switch (c) {
    case Errc::Ok:
        return "ok";
    case Errc::NoPermission:
        return "no-permission";
    case Errc::NotFound:
        return "not-found";
    case Errc::AlreadyExists:
        return "already-exists";
    case Errc::InvalidArgument:
        return "invalid-argument";
    case Errc::NoMemory:
        return "no-memory";
    case Errc::NoCapacity:
        return "no-capacity";
    case Errc::DeadlineExceeded:
        return "deadline-exceeded";
    case Errc::PuCrashed:
        return "pu-crashed";
    case Errc::PeerRestarted:
        return "peer-restarted";
    case Errc::LinkDown:
        return "link-down";
    case Errc::FpgaReconfigFailed:
        return "fpga-reconfig-failed";
    case Errc::SandboxOomKilled:
        return "sandbox-oom-killed";
    case Errc::RetriesExhausted:
        return "retries-exhausted";
    case Errc::Hang:
        return "hang";
    }
    return "?";
}

/** One link of an error-cause chain. */
struct ErrorFrame
{
    Errc code = Errc::Ok;
    std::string detail;
    /** PU the failure happened on; -1 when not PU-specific. */
    int pu = -1;
};

/**
 * A failure as a value. The primary frame describes what ultimately
 * failed; causes() lists earlier failures (most recent first) that led
 * here — e.g. RetriesExhausted caused by PuCrashed caused by
 * SandboxOomKilled. Recovery annotates retries() and pusTried().
 */
class Error
{
  public:
    Error() = default;

    Error(Errc code, std::string detail = {}, int pu = -1,
          std::source_location origin = std::source_location::current())
        : code_(code), detail_(std::move(detail)), pu_(pu),
          origin_(origin)
    {}

    Errc code() const { return code_; }

    const std::string &detail() const { return detail_; }

    int pu() const { return pu_; }

    const std::source_location &origin() const { return origin_; }

    /** Earlier failures that led to this one, most recent first. */
    const std::vector<ErrorFrame> &causes() const { return causes_; }

    int retries() const { return retries_; }

    const std::vector<int> &pusTried() const { return pusTried_; }

    /** Record @p cause (and its own causes) behind this error. */
    Error &
    causedBy(const Error &cause)
    {
        causes_.push_back(
            ErrorFrame{cause.code(), cause.detail(), cause.pu()});
        for (const auto &f : cause.causes())
            causes_.push_back(f);
        return *this;
    }

    Error &
    withRetries(int n)
    {
        retries_ = n;
        return *this;
    }

    Error &
    withPusTried(std::vector<int> pus)
    {
        pusTried_ = std::move(pus);
        return *this;
    }

    /** True for any code but Ok. */
    explicit operator bool() const { return code_ != Errc::Ok; }

    /** "pu-crashed (pu1): dpu rebooted [<- sandbox-oom-killed ...]" */
    std::string
    toString() const
    {
        std::string s = molecule::core::toString(code_);
        if (pu_ >= 0)
            s += " (pu" + std::to_string(pu_) + ")";
        if (!detail_.empty())
            s += ": " + detail_;
        if (retries_ > 0)
            s += " [retries=" + std::to_string(retries_) + "]";
        if (!pusTried_.empty()) {
            s += " [tried";
            for (int pu : pusTried_)
                s += " pu" + std::to_string(pu);
            s += "]";
        }
        for (const auto &f : causes_) {
            s += " <- ";
            s += molecule::core::toString(f.code);
            if (f.pu >= 0)
                s += " (pu" + std::to_string(f.pu) + ")";
            if (!f.detail.empty())
                s += ": " + f.detail;
        }
        return s;
    }

  private:
    Errc code_ = Errc::Ok;
    std::string detail_;
    int pu_ = -1;
    std::source_location origin_ = std::source_location::current();
    int retries_ = 0;
    std::vector<int> pusTried_;
    std::vector<ErrorFrame> causes_;
};

namespace detail {

[[noreturn]] inline void
outcomeFatal(const char *what, const std::string &text)
{
    std::fprintf(stderr, "molecule: %s: %s\n", what, text.c_str());
    std::abort();
}

} // namespace detail

/**
 * Outcome of an operation with no payload. Statuses must be looked at:
 * discarding one silently swallows an injected fault.
 */
class [[nodiscard]] Status
{
  public:
    /** Success. */
    Status() = default;

    /** Failure (constructing from an Ok-coded Error is a bug). */
    Status(Error error) : error_(std::move(error))
    {
        if (error_ && error_->code() == Errc::Ok)
            error_.reset();
    }

    Status(Errc code, std::string detail = {}, int pu = -1,
           std::source_location origin = std::source_location::current())
    {
        if (code != Errc::Ok)
            error_.emplace(code, std::move(detail), pu, origin);
    }

    bool ok() const { return !error_.has_value(); }

    explicit operator bool() const { return ok(); }

    Errc code() const { return error_ ? error_->code() : Errc::Ok; }

    /** The failure; fatal when ok() (there is nothing to return). */
    const Error &
    error() const
    {
        if (!error_)
            detail::outcomeFatal("Status::error() on ok status", "");
        return *error_;
    }

    std::string
    toString() const
    {
        return error_ ? error_->toString() : std::string("ok");
    }

  private:
    std::optional<Error> error_;
};

/**
 * Outcome of an operation with a payload: holds exactly one of T or
 * Error. value() on an error is fatal with the full error chain —
 * callers that can recover test ok() first; callers that cannot get a
 * crash that names the cause instead of undefined behavior.
 */
template <typename T> class [[nodiscard]] Expected
{
  public:
    Expected(T value) : state_(std::in_place_index<0>, std::move(value))
    {}

    Expected(Error error)
        : state_(std::in_place_index<1>, std::move(error))
    {
        if (std::get<1>(state_).code() == Errc::Ok)
            detail::outcomeFatal("Expected constructed from ok Error",
                                 "use the value constructor");
    }

    Expected(Errc code, std::string detail = {}, int pu = -1,
             std::source_location origin =
                 std::source_location::current())
        : state_(std::in_place_index<1>,
                 Error(code, std::move(detail), pu, origin))
    {}

    bool ok() const { return state_.index() == 0; }

    explicit operator bool() const { return ok(); }

    const T &
    value() const &
    {
        if (!ok())
            detail::outcomeFatal("Expected::value() on error",
                                 error().toString());
        return std::get<0>(state_);
    }

    T &
    value() &
    {
        if (!ok())
            detail::outcomeFatal("Expected::value() on error",
                                 error().toString());
        return std::get<0>(state_);
    }

    T &&
    value() &&
    {
        if (!ok())
            detail::outcomeFatal("Expected::value() on error",
                                 error().toString());
        return std::get<0>(std::move(state_));
    }

    T
    valueOr(T fallback) const
    {
        return ok() ? std::get<0>(state_) : std::move(fallback);
    }

    const T &operator*() const & { return value(); }

    T &operator*() & { return value(); }

    const T *operator->() const { return &value(); }

    T *operator->() { return &value(); }

    /** The failure; fatal when ok(). */
    const Error &
    error() const
    {
        if (ok())
            detail::outcomeFatal("Expected::error() on ok outcome", "");
        return std::get<1>(state_);
    }

    /** This outcome's error as a Status (ok when ok). */
    Status
    status() const
    {
        return ok() ? Status() : Status(error());
    }

  private:
    std::variant<T, Error> state_;
};

} // namespace molecule::core

#endif // MOLECULE_CORE_STATUS_HH
