#include "core/dag.hh"

#include "hw/calibration.hh"
#include "sim/logging.hh"

namespace molecule::core {

namespace calib = hw::calib;

ChainSpec
ChainSpec::linear(const std::string &name,
                  const std::vector<std::string> &fns)
{
    ChainSpec spec;
    spec.name = name;
    spec.nodes.reserve(fns.size());
    for (std::size_t i = 0; i < fns.size(); ++i)
        spec.nodes.push_back(ChainNode{fns[i], int(i) - 1});
    return spec;
}

/** Per-node communication state for one chain execution. */
struct DagEngine::Endpoint
{
    const FunctionDef *def = nullptr;
    AcquiredInstance acq;
    int pu = -1;
    /** Direct-connect local FIFO (same-PU edges). */
    os::LocalFifo *localFifo = nullptr;
    std::string fifoName;
    /** XPUcall client + self XPU-FIFO (cross-PU edges). */
    std::unique_ptr<xpu::XpuClient> client;
    xpu::XpuFd selfFd = -1;
    /** fd this endpoint uses to write each other endpoint (by node). */
    std::map<int, xpu::XpuFd> peerFds;
};

namespace {

/** Everything one chain execution shares. */
struct RunContext
{
    DagEngine *engine = nullptr;
    Deployment *dep = nullptr;
    const ChainSpec *spec = nullptr;
    const std::vector<int> *placement = nullptr;
    DagCommMode mode = DagCommMode::MoleculeIpc;
    int managerPu = 0;
    /** Causal root for every span of this chain execution. */
    obs::SpanContext trace;
    std::vector<DagEngine::Endpoint> eps;
    /** Gateway-side client used for the entry edge. */
    std::unique_ptr<xpu::XpuClient> gatewayClient;
    std::vector<sim::SimTime> edgeLatency; // per node; root = entry
    std::vector<sim::SimTime> execEnd;     // per node
    std::vector<std::vector<int>> children;
};

sim::SimTime
dispatchCost(const FunctionDef &def, DagCommMode mode)
{
    const bool node = def.cpuWork->image.language ==
                      sandbox::Language::Node;
    if (mode == DagCommMode::BaselineHttp)
        return node ? calib::kExpressDispatch : calib::kFlaskDispatch;
    return node ? calib::kFifoDispatchNode : calib::kFifoDispatchPython;
}

/**
 * Move one message from @p fromNode (-1: gateway) into @p toNode's
 * instance, charging the full path of the selected mode.
 */
sim::Task<>
edgeTransfer(RunContext *ctx, int fromNode, int toNode,
             obs::SpanContext spanCtx)
{
    auto &to = ctx->eps[std::size_t(toNode)];
    const int fromPu = fromNode < 0
                           ? ctx->managerPu
                           : ctx->eps[std::size_t(fromNode)].pu;
    auto &fromOs = ctx->dep->osOn(fromPu);
    auto &toOs = ctx->dep->osOn(to.pu);
    const std::uint64_t bytes = to.def->cpuWork->msgBytes;

    if (ctx->mode == DagCommMode::BaselineHttp) {
        // HTTP request through both network stacks + the wire.
        co_await fromOs.simulation().delay(
            fromOs.pu().netCost(calib::kHttpEdgeEndpointCost));
        co_await ctx->dep->computer().topology().transfer(fromPu, to.pu,
                                                          bytes,
                                                          spanCtx);
        co_await toOs.simulation().delay(
            toOs.pu().netCost(calib::kHttpEdgeEndpointCost));
    } else {
        // Direct connect: serialize, write the callee's FIFO (local
        // FIFO on the same PU, XPU-FIFO across PUs), deserialize.
        co_await fromOs.simulation().delay(
            fromOs.pu().netCost(calib::kIpcSerializeCost));
        if (fromPu == to.pu) {
            os::FifoMessage msg{bytes, "req"};
            co_await to.localFifo->write(msg);
            (void)co_await to.localFifo->read();
        } else {
            xpu::XpuClient *writer = nullptr;
            xpu::XpuFd fd = -1;
            if (fromNode < 0) {
                writer = ctx->gatewayClient.get();
                auto it = to.peerFds.find(-1);
                fd = it == to.peerFds.end() ? -1 : it->second;
            } else {
                auto &from = ctx->eps[std::size_t(fromNode)];
                writer = from.client.get();
                auto it = from.peerFds.find(toNode);
                fd = it == from.peerFds.end() ? -1 : it->second;
            }
            MOLECULE_ASSERT(writer && fd >= 0,
                            "missing xfifo connection %d->%d", fromNode,
                            toNode);
            core::Status st =
                co_await writer->xfifoWrite(fd, bytes, "req");
            MOLECULE_ASSERT(st.ok(), "xfifo write failed: %s",
                            st.toString().c_str());
            auto r = co_await to.client->xfifoRead(to.selfFd);
            MOLECULE_ASSERT(r.ok(), "xfifo read failed: %s",
                            r.error().toString().c_str());
        }
        co_await toOs.simulation().delay(
            toOs.pu().netCost(calib::kIpcSerializeCost));
    }
    // Receiver-side per-request dispatch (HTTP router vs FIFO loop).
    {
        obs::Span disp(spanCtx, "os.dispatch", obs::Layer::Os, to.pu);
        co_await toOs.simulation().delay(
            toOs.pu().netCost(dispatchCost(*to.def, ctx->mode)));
    }
}

/** Execute node @p idx and fan out to its children. */
sim::Task<>
runNode(RunContext *ctx, int idx, sim::SimTime upstreamDone)
{
    auto &ep = ctx->eps[std::size_t(idx)];
    auto &sim = ctx->dep->simulation();
    const int parent = ctx->spec->nodes[std::size_t(idx)].parent;

    // One span per node invocation, parented on the chain root; the
    // edge + dispatch work nests under a "comm" child (Fig 12 path).
    obs::Span span(ctx->trace, "invoke", obs::Layer::Core, ep.pu);
    span.setDetail(ctx->spec->nodes[std::size_t(idx)].fn.c_str());
    {
        obs::Span comm(span.ctx(), "comm", obs::Layer::Core, ep.pu);
        co_await edgeTransfer(ctx, parent, idx, comm.ctx());
    }
    ctx->edgeLatency[std::size_t(idx)] = sim.now() - upstreamDone;

    const auto exec = ep.acq.cold
                          ? ep.def->cpuWork->execCost *
                                ep.def->cpuWork->coldExecFactor
                          : ep.def->cpuWork->execCost;
    core::Status st = co_await ctx->dep->runcOn(ep.pu).invoke(
        ep.acq.instance->id, exec, span.ctx());
    MOLECULE_ASSERT(st.ok(), "chain node exec failed: %s",
                    st.toString().c_str());
    ctx->execEnd[std::size_t(idx)] = sim.now();
    span.finish();

    std::vector<sim::Task<>> kids;
    kids.reserve(ctx->children[std::size_t(idx)].size());
    for (int child : ctx->children[std::size_t(idx)])
        kids.push_back(runNode(ctx, child, sim.now()));
    co_await sim::allOf(sim, std::move(kids));
}

} // namespace

sim::Task<obs::ChainRecord>
DagEngine::run(const ChainSpec &spec, const std::vector<int> &placement,
               DagCommMode mode, bool prewarm, int managerPu,
               obs::SpanContext ctx)
{
    MOLECULE_ASSERT(placement.size() == spec.nodes.size(),
                    "placement size mismatch");
    auto &sim = dep_.simulation();

    RunContext run;
    run.engine = this;
    run.dep = &dep_;
    run.spec = &spec;
    run.placement = &placement;
    run.mode = mode;
    run.managerPu = managerPu;
    run.trace = ctx;
    run.eps.resize(spec.nodes.size());
    run.edgeLatency.resize(spec.nodes.size());
    run.execEnd.resize(spec.nodes.size());
    run.children.resize(spec.nodes.size());
    for (std::size_t i = 0; i < spec.nodes.size(); ++i)
        if (spec.nodes[i].parent >= 0)
            run.children[std::size_t(spec.nodes[i].parent)].push_back(
                int(i));

    const sim::SimTime setupStart = sim.now();

    // Acquire all instances (pre-boot when prewarm).
    for (std::size_t i = 0; i < spec.nodes.size(); ++i) {
        const FunctionDef &def = registry_.find(spec.nodes[i].fn);
        auto &ep = run.eps[i];
        ep.def = &def;
        ep.pu = placement[i];
        ep.acq = co_await startup_.acquire(def, ep.pu, managerPu, ctx);
        MOLECULE_ASSERT(ep.acq.instance != nullptr,
                        "chain instance acquisition failed");
    }

    // Wire the direct-connect fabric (Molecule mode only).
    if (mode == DagCommMode::MoleculeIpc) {
        // Gateway-side process for the entry edge.
        os::Process *gw = co_await dep_.osOn(managerPu).spawnProcess(
            "gateway/" + spec.name, 1 << 20, ctx);
        MOLECULE_ASSERT(gw != nullptr, "gateway spawn failed");
        run.gatewayClient = std::make_unique<xpu::XpuClient>(
            dep_.shimOn(managerPu), *gw);
        run.gatewayClient->setTraceContext(ctx);

        for (std::size_t i = 0; i < run.eps.size(); ++i) {
            auto &ep = run.eps[i];
            ep.fifoName = "self/" + spec.name + "/" +
                          std::to_string(nextUuid_++);
            ep.localFifo =
                dep_.osOn(ep.pu).createFifo(ep.fifoName + "/local");
            ep.client = std::make_unique<xpu::XpuClient>(
                dep_.shimOn(ep.pu), *ep.acq.instance->proc);
            ep.client->setTraceContext(ctx);
            auto fd = co_await ep.client->xfifoInit(ep.fifoName);
            MOLECULE_ASSERT(fd.ok(), "xfifo init failed: %s",
                            fd.error().toString().c_str());
            ep.selfFd = fd.value();
        }
        // Connect writers: parent -> child (and gateway -> root) when
        // the edge crosses PUs; the owner grants Write first.
        for (std::size_t i = 0; i < run.eps.size(); ++i) {
            auto &child = run.eps[i];
            const int parent = spec.nodes[i].parent;
            const int fromPu = parent < 0
                                   ? managerPu
                                   : run.eps[std::size_t(parent)].pu;
            if (fromPu == child.pu)
                continue;
            xpu::XpuClient *writer =
                parent < 0 ? run.gatewayClient.get()
                           : run.eps[std::size_t(parent)].client.get();
            const xpu::ObjId obj = child.client->objectOf(child.selfFd);
            auto st = co_await child.client->grantCap(
                writer->xpuPid(), obj, xpu::Perm::Write);
            MOLECULE_ASSERT(st.ok(), "grant failed: %s",
                            st.toString().c_str());
            auto fd = co_await writer->xfifoConnect(child.fifoName);
            MOLECULE_ASSERT(fd.ok(), "xfifo connect failed: %s",
                            fd.error().toString().c_str());
            child.peerFds[parent] = fd.value(); // unused; kept symmetric
            if (parent < 0)
                child.peerFds[-1] = fd.value();
            else
                run.eps[std::size_t(parent)].peerFds[int(i)] =
                    fd.value();
        }
    }

    const sim::SimTime t0 = prewarm ? sim.now() : setupStart;
    co_await runNode(&run, 0, t0);

    obs::ChainRecord record;
    record.chain = spec.name;
    record.traceId = ctx.trace;
    sim::SimTime finish = t0;
    for (std::size_t i = 0; i < run.execEnd.size(); ++i)
        finish = std::max(finish, run.execEnd[i]);
    record.endToEnd = finish - t0;
    for (std::size_t i = 0; i < spec.nodes.size(); ++i) {
        if (spec.nodes[i].parent >= 0)
            record.edgeLatencies.push_back(run.edgeLatency[i]);
        obs::InvocationRecord inv;
        inv.function = spec.nodes[i].fn;
        inv.traceId = ctx.trace;
        inv.pu = run.eps[i].pu;
        inv.coldStart = run.eps[i].acq.cold;
        inv.startup = run.eps[i].acq.startupTime;
        inv.communication = run.edgeLatency[i];
        inv.execution = run.eps[i].def->cpuWork->execCost;
        record.invocations.push_back(std::move(inv));
    }

    // Return instances to the keep-alive cache; drop comm plumbing.
    for (std::size_t i = 0; i < run.eps.size(); ++i) {
        auto &ep = run.eps[i];
        if (ep.client && ep.selfFd >= 0)
            (void)co_await ep.client->xfifoClose(ep.selfFd);
        if (ep.localFifo)
            dep_.osOn(ep.pu).removeFifo(ep.fifoName + "/local");
        co_await startup_.release(*ep.def, ep.acq);
    }
    co_return record;
}

sim::Task<obs::ChainRecord>
DagEngine::runFpgaChain(const std::vector<std::string> &fns,
                        int fpgaIndex, bool shmOptimization,
                        std::uint64_t messageBytes, obs::SpanContext ctx)
{
    std::vector<std::string> owned_fns = fns;
    auto &sim = dep_.simulation();
    auto &runf = dep_.runf(fpgaIndex);

    // Make the whole chain resident as one vectorized image, then
    // warm every sandbox (pre-boot, as in Fig 13's measurement).
    startup_.setFpgaHotSet(fpgaIndex, owned_fns);
    for (const auto &fn : owned_fns) {
        const FunctionDef &def = registry_.find(fn);
        auto acq = co_await startup_.acquireFpga(def, fpgaIndex, ctx);
        MOLECULE_ASSERT(acq.ok(), "fpga chain warm-up failed: %s",
                        acq.error().toString().c_str());
    }

    const sim::SimTime t0 = sim.now();
    obs::ChainRecord record;
    record.chain = "fpga-chain";
    sim::SimTime prevDone = t0;
    for (std::size_t i = 0; i < owned_fns.size(); ++i) {
        const FunctionDef &def = registry_.find(owned_fns[i]);
        const bool zeroIn = shmOptimization && i > 0;
        const bool zeroOut = shmOptimization && i + 1 < owned_fns.size();
        co_await runf.invoke("fpga/" + owned_fns[i],
                             def.fpgaWork->kernelTime(messageBytes),
                             messageBytes, messageBytes, zeroIn,
                             zeroOut, ctx);
        if (i > 0)
            record.edgeLatencies.push_back(sim.now() - prevDone);
        prevDone = sim.now();
    }
    record.endToEnd = sim.now() - t0;
    co_return record;
}

} // namespace molecule::core
