#include "core/scheduler.hh"

#include <algorithm>

#include "core/startup.hh"

namespace molecule::core {

std::uint64_t
Scheduler::admissibleBytes(int pu) const
{
    return dep_.computer().pu(pu).memoryFree();
}

PlacementView
Scheduler::view(const FunctionDef &fn,
                std::span<const int> exclude) const
{
    const std::uint64_t need =
        fn.cpuWork ? fn.cpuWork->image.mem.privateBytes +
                         fn.cpuWork->image.mem.runtimeShared / 8
                   : 0;
    const sim::SimTime now = dep_.simulation().now();
    const fault::FaultState *faults = dep_.faults();

    std::vector<PuView> pus;
    // One view row per PU an allowed profile covers; the first profile
    // of a kind (registration order) prices that kind's rows.
    for (std::uint32_t rank = 0; rank < fn.profiles.size(); ++rank) {
        const Profile &profile = fn.profiles[rank];
        for (int pu : dep_.pusOfType(profile.kind)) {
            const bool seen =
                std::any_of(pus.begin(), pus.end(),
                            [pu](const PuView &v) { return v.pu == pu; });
            if (seen)
                continue;
            PuView v;
            v.pu = pu;
            v.kind = profile.kind;
            v.price = profile.pricePer100ms;
            v.profileRank = rank;
            v.cores = dep_.computer().pu(pu).desc().cores;
            v.outstanding =
                std::size_t(pu) < outstanding_.size()
                    ? outstanding_[std::size_t(pu)]
                    : 0;
            v.warmSandboxes = startup_ != nullptr
                                  ? startup_->warmCount(fn.name, pu)
                                  : 0;
            v.freeBytes = admissibleBytes(pu);
            v.needBytes = need;
            v.down = dep_.puDown(pu);
            v.excluded = std::find(exclude.begin(), exclude.end(),
                                   pu) != exclude.end();
            if (faults != nullptr) {
                v.capabilityEpoch = faults->puEpoch(pu);
                const fault::LinkFault *lf = faults->linkFault(0, pu);
                v.linkDegraded =
                    lf != nullptr &&
                    (lf->downUntil > now || lf->degradedUntil > now);
            }
            pus.push_back(v);
        }
    }
    std::sort(pus.begin(), pus.end(),
              [](const PuView &a, const PuView &b) {
                  return a.pu < b.pu;
              });
    return PlacementView(std::move(pus));
}

int
Scheduler::place(const FunctionDef &fn, std::span<const int> exclude)
{
    decisions_.fetchAdd(1);
    PlacementRequest req;
    req.fn = &fn;
    req.exclude = exclude;
    const PlacementView v = view(fn, exclude);
    const int pick = policy_->place(req, v);
    // Fold (function, pick) into the per-policy placement golden.
    std::uint64_t h = 14695981039346656037ULL;
    for (char c : fn.name)
        h = (h ^ std::uint64_t(std::uint8_t(c))) * 1099511628211ULL;
    placeFp_.mix(h);
    placeFp_.mix(std::uint64_t(std::int64_t(pick)));
    return pick;
}

std::vector<int>
Scheduler::placeChain(const ChainSpec &spec)
{
    decisions_.fetchAdd(1);
    // Chain affinity: find one PU whose kind every function allows.
    for (int pu : dep_.generalPus()) {
        const auto kind = dep_.computer().pu(pu).type();
        bool allOk = true;
        for (const auto &node : spec.nodes) {
            const FunctionDef &def = registry_.find(node.fn);
            if (!def.allows(kind)) {
                allOk = false;
                break;
            }
        }
        if (allOk)
            return std::vector<int>(spec.nodes.size(), pu);
    }
    // Fall back to per-node placement.
    std::vector<int> placement;
    placement.reserve(spec.nodes.size());
    for (const auto &node : spec.nodes)
        placement.push_back(place(registry_.find(node.fn)));
    return placement;
}

void
Scheduler::installPlacement(std::unique_ptr<PlacementPolicy> policy)
{
    policy_ = policy != nullptr
                  ? std::move(policy)
                  : std::make_unique<PriceOrderedPolicy>();
}

void
Scheduler::noteDispatch(int pu)
{
    if (pu < 0)
        return;
    if (std::size_t(pu) >= outstanding_.size())
        outstanding_.resize(std::size_t(pu) + 1, 0);
    ++outstanding_[std::size_t(pu)];
    policy_->onDispatch(pu);
}

void
Scheduler::noteComplete(int pu)
{
    if (pu < 0 || std::size_t(pu) >= outstanding_.size())
        return;
    if (outstanding_[std::size_t(pu)] > 0)
        --outstanding_[std::size_t(pu)];
    policy_->onComplete(pu);
}

int
Scheduler::outstanding(int pu) const
{
    return pu >= 0 && std::size_t(pu) < outstanding_.size()
               ? outstanding_[std::size_t(pu)]
               : 0;
}

} // namespace molecule::core
