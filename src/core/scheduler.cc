#include "core/scheduler.hh"

#include <algorithm>

namespace molecule::core {

std::uint64_t
Scheduler::admissibleBytes(int pu) const
{
    return dep_.computer().pu(pu).memoryFree();
}

int
Scheduler::pickPu(const FunctionDef &fn,
                  std::span<const int> exclude) const
{
    decisions_.fetchAdd(1);
    // Profiles sorted by price: cheapest first.
    std::vector<Profile> profiles = fn.profiles;
    std::sort(profiles.begin(), profiles.end(),
              [](const Profile &a, const Profile &b) {
                  return a.pricePer100ms < b.pricePer100ms;
              });
    const std::uint64_t need =
        fn.cpuWork ? fn.cpuWork->image.mem.privateBytes +
                         fn.cpuWork->image.mem.runtimeShared / 8
                   : 0;
    for (const auto &profile : profiles) {
        for (int pu : dep_.pusOfType(profile.kind)) {
            if (std::find(exclude.begin(), exclude.end(), pu) !=
                exclude.end())
                continue;
            if (dep_.puDown(pu))
                continue;
            if (admissibleBytes(pu) >= need)
                return pu;
        }
    }
    return -1;
}

std::vector<int>
Scheduler::placeChain(const ChainSpec &spec) const
{
    decisions_.fetchAdd(1);
    // Chain affinity: find one PU whose kind every function allows.
    for (int pu : dep_.generalPus()) {
        const auto kind = dep_.computer().pu(pu).type();
        bool allOk = true;
        for (const auto &node : spec.nodes) {
            const FunctionDef &def = registry_.find(node.fn);
            if (!def.allows(kind)) {
                allOk = false;
                break;
            }
        }
        if (allOk)
            return std::vector<int>(spec.nodes.size(), pu);
    }
    // Fall back to per-node placement.
    std::vector<int> placement;
    placement.reserve(spec.nodes.size());
    for (const auto &node : spec.nodes)
        placement.push_back(pickPu(registry_.find(node.fn)));
    return placement;
}

} // namespace molecule::core
