#include "core/molecule.hh"

#include "hw/calibration.hh"
#include "sim/logging.hh"

namespace molecule::core {

namespace calib = hw::calib;

Molecule::Molecule(hw::Computer &computer, MoleculeOptions options)
    : computer_(computer), options_(options)
{
    dep_ = std::make_unique<Deployment>(computer_);
    startup_ = std::make_unique<StartupManager>(*dep_, registry_,
                                                options_.startup);
    scheduler_ = std::make_unique<Scheduler>(*dep_, registry_);
    dag_ = std::make_unique<DagEngine>(*dep_, *startup_, registry_);
}

Molecule::~Molecule() = default;

void
Molecule::registerCpuFunction(const std::string &name,
                              const std::vector<hw::PuType> &kinds)
{
    FunctionDef def;
    def.name = name;
    def.cpuWork = &catalog_.cpu(name);
    for (auto kind : kinds) {
        // DPU execution is priced below host CPU (§4.1).
        def.profiles.push_back(Profile{
            kind, kind == hw::PuType::Dpu ? 0.6 : 1.0});
    }
    registry_.add(std::move(def));
}

void
Molecule::registerFpgaFunction(const std::string &name,
                               std::uint64_t units)
{
    FunctionDef def;
    def.name = name;
    def.fpgaWork = &catalog_.fpga(name);
    def.fpgaUnits = units;
    // FPGA is the most expensive profile (§4.1).
    def.profiles.push_back(Profile{hw::PuType::FpgaHost, 3.0});
    registry_.add(std::move(def));
}

void
Molecule::registerGpuFunction(const std::string &name,
                              sim::SimTime kernelTime,
                              std::uint64_t ioBytes)
{
    FunctionDef def;
    def.name = name;
    def.gpuKernelTime = kernelTime;
    def.gpuIoBytes = ioBytes;
    def.profiles.push_back(Profile{hw::PuType::GpuHost, 2.0});
    registry_.add(std::move(def));
}

void
Molecule::registerHybridFunction(const std::string &cpuName,
                                 const std::string &fpgaName,
                                 std::uint64_t units)
{
    FunctionDef def;
    def.name = cpuName;
    def.cpuWork = &catalog_.cpu(cpuName);
    def.fpgaWork = &catalog_.fpga(fpgaName);
    def.fpgaUnits = units;
    def.profiles.push_back(Profile{hw::PuType::HostCpu, 1.0});
    def.profiles.push_back(Profile{hw::PuType::FpgaHost, 3.0});
    registry_.add(std::move(def));
}

void
Molecule::start()
{
    if (started_)
        return;
    started_ = true;
    auto boot = [](StartupManager *s, int managerPu) -> sim::Task<> {
        co_await s->bootstrap(managerPu);
    };
    simulation().spawn(boot(startup_.get(), options_.managerPu));
    simulation().run();
}

sim::Task<InvocationRecord>
Molecule::invoke(const std::string &fn, int pu)
{
    std::string owned_fn = fn;
    const FunctionDef &def = registry_.find(owned_fn);
    MOLECULE_ASSERT(def.cpuWork != nullptr,
                    "'%s' is accelerator-only; use invokeFpga",
                    owned_fn.c_str());
    auto &sim = simulation();
    InvocationRecord rec;
    rec.function = owned_fn;

    // Root span of this invocation's trace: gateway admission and
    // scheduler placement happen inside the runtime process on the
    // manager PU before any simulated time passes.
    obs::Span root = obs::Span::root(options_.tracer, "invoke",
                                     obs::Layer::Core,
                                     options_.managerPu);
    root.setDetail(owned_fn.c_str());
    rec.traceId = root.traceId();

    int target;
    {
        obs::Span admit(root.ctx(), "gateway.admit", obs::Layer::Core,
                        options_.managerPu);
        obs::Span place(root.ctx(), "sched.place", obs::Layer::Core,
                        options_.managerPu);
        target = pu >= 0 ? pu : scheduler_->pickPu(def);
        place.setArg(target);
    }
    MOLECULE_ASSERT(target >= 0, "no PU can admit '%s'",
                    owned_fn.c_str());
    rec.pu = target;

    const auto t0 = sim.now();
    AcquiredInstance acq =
        co_await startup_->acquire(def, target, options_.managerPu,
                                   root.ctx());
    MOLECULE_ASSERT(acq.instance != nullptr, "admission failed for '%s'",
                    owned_fn.c_str());
    rec.coldStart = acq.cold;
    rec.startup = acq.startupTime;

    // Request delivery from the runtime into the instance.
    const auto commStart = sim.now();
    auto &os = dep_->osOn(target);
    {
        obs::Span comm(root.ctx(), "comm", obs::Layer::Core, target);
        if (options_.managerPu != target) {
            co_await dep_->shimNet().transfer(options_.managerPu,
                                              target,
                                              def.cpuWork->msgBytes,
                                              comm.ctx());
        }
        const bool isNode =
            def.cpuWork->image.language == sandbox::Language::Node;
        obs::Span disp(comm.ctx(), "os.dispatch", obs::Layer::Os,
                       target);
        if (options_.dagMode == DagCommMode::BaselineHttp) {
            co_await sim.delay(os.pu().netCost(
                calib::kHttpEdgeEndpointCost +
                (isNode ? calib::kExpressDispatch
                        : calib::kFlaskDispatch)));
        } else {
            co_await sim.delay(os.pu().netCost(
                calib::kIpcSerializeCost +
                (isNode ? calib::kFifoDispatchNode
                        : calib::kFifoDispatchPython)));
        }
    }
    rec.communication = sim.now() - commStart;

    const auto execStart = sim.now();
    const auto exec = acq.cold
                          ? def.cpuWork->execCost *
                                def.cpuWork->coldExecFactor
                          : def.cpuWork->execCost;
    co_await dep_->runcOn(target).invoke(acq.instance->id, exec,
                                         root.ctx());
    rec.execution = sim.now() - execStart;
    rec.endToEnd = sim.now() - t0;

    // The measured window ends here; the keep-alive release below is
    // runtime bookkeeping and must not stretch the root span.
    root.finish();
    co_await startup_->release(def, acq);
    co_return rec;
}

InvocationRecord
Molecule::invokeSync(const std::string &fn, int pu)
{
    InvocationRecord out;
    auto run = [](Molecule *self, std::string name, int target,
                  InvocationRecord *o) -> sim::Task<> {
        *o = co_await self->invoke(name, target);
    };
    simulation().spawn(run(this, fn, pu, &out));
    simulation().run();
    return out;
}

sim::Task<InvocationRecord>
Molecule::invokeFpga(const std::string &fn, int fpgaIndex,
                     std::uint64_t units)
{
    std::string owned_fn = fn;
    const FunctionDef &def = registry_.find(owned_fn);
    MOLECULE_ASSERT(def.fpgaWork != nullptr, "'%s' has no FPGA profile",
                    owned_fn.c_str());
    auto &sim = simulation();
    InvocationRecord rec;
    rec.function = owned_fn;
    rec.pu = dep_->computer().fpga(fpgaIndex).hostPuId();

    obs::Span root = obs::Span::root(options_.tracer, "invoke",
                                     obs::Layer::Core, rec.pu);
    root.setDetail(owned_fn.c_str());
    rec.traceId = root.traceId();

    const auto t0 = sim.now();
    AcquiredFpga acq =
        co_await startup_->acquireFpga(def, fpgaIndex, root.ctx());
    rec.coldStart = acq.cold;
    rec.startup = acq.startupTime;

    const auto execStart = sim.now();
    co_await dep_->runf(fpgaIndex).invoke(
        acq.sandboxId, def.fpgaWork->kernelTime(units),
        def.fpgaWork->dmaInBytes(units), def.fpgaWork->dmaOutBytes(units),
        false, false, root.ctx());
    rec.execution = sim.now() - execStart;
    rec.endToEnd = sim.now() - t0;
    co_return rec;
}

InvocationRecord
Molecule::invokeFpgaSync(const std::string &fn, int fpgaIndex,
                         std::uint64_t units)
{
    InvocationRecord out;
    auto run = [](Molecule *self, std::string name, int idx,
                  std::uint64_t u, InvocationRecord *o) -> sim::Task<> {
        *o = co_await self->invokeFpga(name, idx, u);
    };
    simulation().spawn(run(this, fn, fpgaIndex, units, &out));
    simulation().run();
    return out;
}

sim::Task<InvocationRecord>
Molecule::invokeGpu(const std::string &fn, int gpuIndex)
{
    std::string owned_fn = fn;
    const FunctionDef &def = registry_.find(owned_fn);
    MOLECULE_ASSERT(def.gpuKernelTime > sim::SimTime(0),
                    "'%s' has no GPU profile", owned_fn.c_str());
    auto &sim = simulation();
    InvocationRecord rec;
    rec.function = owned_fn;
    rec.pu = dep_->computer().gpuDev(gpuIndex).hostPuId();

    obs::Span root = obs::Span::root(options_.tracer, "invoke",
                                     obs::Layer::Core, rec.pu);
    root.setDetail(owned_fn.c_str());
    rec.traceId = root.traceId();

    const auto t0 = sim.now();
    AcquiredFpga acq =
        co_await startup_->acquireGpu(def, gpuIndex, root.ctx());
    rec.coldStart = acq.cold;
    rec.startup = acq.startupTime;

    const auto execStart = sim.now();
    co_await dep_->rung(gpuIndex).invoke(acq.sandboxId,
                                         def.gpuKernelTime,
                                         def.gpuIoBytes,
                                         def.gpuIoBytes, root.ctx());
    rec.execution = sim.now() - execStart;
    rec.endToEnd = sim.now() - t0;
    co_return rec;
}

InvocationRecord
Molecule::invokeGpuSync(const std::string &fn, int gpuIndex)
{
    InvocationRecord out;
    auto run = [](Molecule *self, std::string name, int idx,
                  InvocationRecord *o) -> sim::Task<> {
        *o = co_await self->invokeGpu(name, idx);
    };
    simulation().spawn(run(this, fn, gpuIndex, &out));
    simulation().run();
    return out;
}

sim::Task<ChainRecord>
Molecule::invokeChain(const ChainSpec &spec, std::vector<int> placement,
                      bool prewarm)
{
    ChainSpec owned_spec = spec;
    std::vector<int> owned_placement = std::move(placement);
    if (owned_placement.empty())
        owned_placement = scheduler_->placeChain(owned_spec);
    obs::Span root = obs::Span::root(options_.tracer, "chain",
                                     obs::Layer::Core,
                                     options_.managerPu);
    root.setDetail(owned_spec.name.c_str());
    co_return co_await dag_->run(owned_spec, owned_placement,
                                 options_.dagMode, prewarm,
                                 options_.managerPu, root.ctx());
}

ChainRecord
Molecule::invokeChainSync(const ChainSpec &spec,
                          std::vector<int> placement, bool prewarm)
{
    ChainRecord out;
    auto run = [](Molecule *self, ChainSpec s, std::vector<int> p,
                  bool w, ChainRecord *o) -> sim::Task<> {
        *o = co_await self->invokeChain(s, std::move(p), w);
    };
    simulation().spawn(run(this, spec, std::move(placement), prewarm,
                           &out));
    simulation().run();
    return out;
}

} // namespace molecule::core
