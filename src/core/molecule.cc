#include "core/molecule.hh"

#include <algorithm>

#include "hw/calibration.hh"
#include "sim/logging.hh"

namespace molecule::core {

namespace calib = hw::calib;

Molecule::Molecule(hw::Computer &computer, MoleculeOptions options)
    : computer_(computer), options_(options)
{
    dep_ = std::make_unique<Deployment>(computer_);
    startup_ = std::make_unique<StartupManager>(*dep_, registry_,
                                                options_.startup);
    scheduler_ = std::make_unique<Scheduler>(*dep_, registry_);
    scheduler_->setStartupManager(startup_.get());
    scheduler_->installPlacement(options_.placement.make());
    gateway_ = std::make_unique<Gateway>(*dep_, *scheduler_);
    dag_ = std::make_unique<DagEngine>(*dep_, *startup_, registry_);
    if (options_.faults != nullptr) {
        dep_->attachFaults(options_.faults);
        recovery_ = std::make_unique<RecoveryManager>(
            *dep_, *startup_, options_.tracer);
        options_.faults->addListener(recovery_.get());
    }
}

Molecule::~Molecule()
{
    if (options_.faults != nullptr && recovery_ != nullptr)
        options_.faults->removeListener(recovery_.get());
}

void
Molecule::registerCpuFunction(const std::string &name,
                              const std::vector<hw::PuType> &kinds)
{
    FunctionDef def;
    def.name = name;
    def.cpuWork = &catalog_.cpu(name);
    for (auto kind : kinds) {
        // DPU execution is priced below host CPU (§4.1).
        def.profiles.push_back(Profile{
            kind, kind == hw::PuType::Dpu ? 0.6 : 1.0});
    }
    registry_.add(std::move(def));
}

void
Molecule::registerFpgaFunction(const std::string &name,
                               std::uint64_t units)
{
    FunctionDef def;
    def.name = name;
    def.fpgaWork = &catalog_.fpga(name);
    def.fpgaUnits = units;
    // FPGA is the most expensive profile (§4.1).
    def.profiles.push_back(Profile{hw::PuType::FpgaHost, 3.0});
    registry_.add(std::move(def));
}

void
Molecule::registerGpuFunction(const std::string &name,
                              sim::SimTime kernelTime,
                              std::uint64_t ioBytes)
{
    FunctionDef def;
    def.name = name;
    def.gpuKernelTime = kernelTime;
    def.gpuIoBytes = ioBytes;
    def.profiles.push_back(Profile{hw::PuType::GpuHost, 2.0});
    registry_.add(std::move(def));
}

void
Molecule::registerHybridFunction(const std::string &cpuName,
                                 const std::string &fpgaName,
                                 std::uint64_t units)
{
    FunctionDef def;
    def.name = cpuName;
    def.cpuWork = &catalog_.cpu(cpuName);
    def.fpgaWork = &catalog_.fpga(fpgaName);
    def.fpgaUnits = units;
    def.profiles.push_back(Profile{hw::PuType::HostCpu, 1.0});
    def.profiles.push_back(Profile{hw::PuType::FpgaHost, 3.0});
    registry_.add(std::move(def));
}

void
Molecule::start()
{
    if (started_)
        return;
    started_ = true;
    auto boot = [](StartupManager *s, int managerPu) -> sim::Task<> {
        co_await s->bootstrap(managerPu);
    };
    simulation().spawn(boot(startup_.get(), options_.managerPu));
    simulation().run();
}

sim::Task<Expected<obs::InvocationRecord>>
Molecule::invokeOnce(const FunctionDef &def, const InvokeOptions &opts,
                     int attempt, obs::PuList exclude, sim::SimTime t0,
                     obs::SpanContext rootCtx, AcquiredInstance *acqOut)
{
    const FunctionDef *defp = &def;
    const InvokeOptions owned_opts = opts;
    const obs::PuList owned_exclude =
        owned_opts.failover ? exclude : obs::PuList{};
    AcquiredInstance *out = acqOut;
    auto &sim = simulation();

    obs::InvocationRecord rec;
    rec.function = defp->name;
    rec.attempts = attempt;

    // Admission + placement: pure control-plane computation on the
    // manager PU before any simulated time passes.
    int target = -1;
    {
        obs::Span admit(rootCtx, "gateway.admit", obs::Layer::Core,
                        options_.managerPu);
        obs::Span place(rootCtx, "sched.place", obs::Layer::Core,
                        options_.managerPu);
        const int requested = attempt == 1 || !owned_opts.failover
                                  ? owned_opts.pu
                                  : -1;
        const Expected<int> admitted =
            gateway_->admit(*defp, requested, owned_exclude.view());
        if (!admitted.ok())
            co_return admitted.error();
        target = admitted.value();
        place.setArg(target);
    }
    rec.pu = target;
    // Outstanding-work accounting for load-aware placement: every
    // exit path below must balance this with noteComplete.
    scheduler_->noteDispatch(target);

    AcquiredInstance acq = co_await startup_->acquire(
        *defp, target, options_.managerPu, rootCtx);
    *out = acq;
    if (acq.instance == nullptr) {
        scheduler_->noteComplete(target);
        co_return Error(Errc::NoMemory,
                        "admission failed for '" + defp->name + "'",
                        target);
    }
    if (dep_->puDown(target)) {
        scheduler_->noteComplete(target);
        co_return Error(Errc::PuCrashed,
                        "'" + defp->name +
                            "' lost its PU during startup",
                        target);
    }
    rec.coldStart = acq.cold;
    rec.startup = acq.startupTime;

    if (owned_opts.deadline > sim::SimTime(0) &&
        sim.now() - t0 > owned_opts.deadline) {
        if (!acq.instance->dead)
            co_await startup_->release(*defp, acq);
        scheduler_->noteComplete(target);
        co_return Error(Errc::DeadlineExceeded,
                        "'" + defp->name +
                            "' missed its deadline after startup",
                        target);
    }

    // Request delivery from the runtime into the instance.
    const auto commStart = sim.now();
    auto &os = dep_->osOn(target);
    {
        obs::Span comm(rootCtx, "comm", obs::Layer::Core, target);
        if (options_.managerPu != target) {
            co_await dep_->shimNet().transfer(options_.managerPu,
                                              target,
                                              defp->cpuWork->msgBytes,
                                              comm.ctx());
        }
        const bool isNode =
            defp->cpuWork->image.language == sandbox::Language::Node;
        obs::Span disp(comm.ctx(), "os.dispatch", obs::Layer::Os,
                       target);
        if (options_.dagMode == DagCommMode::BaselineHttp) {
            co_await sim.delay(os.pu().netCost(
                calib::kHttpEdgeEndpointCost +
                (isNode ? calib::kExpressDispatch
                        : calib::kFlaskDispatch)));
        } else {
            co_await sim.delay(os.pu().netCost(
                calib::kIpcSerializeCost +
                (isNode ? calib::kFifoDispatchNode
                        : calib::kFifoDispatchPython)));
        }
    }
    rec.communication = sim.now() - commStart;

    if (owned_opts.deadline > sim::SimTime(0) &&
        sim.now() - t0 > owned_opts.deadline) {
        if (!acq.instance->dead && !dep_->puDown(target))
            co_await startup_->release(*defp, acq);
        scheduler_->noteComplete(target);
        co_return Error(Errc::DeadlineExceeded,
                        "'" + defp->name +
                            "' missed its deadline before execution",
                        target);
    }

    const auto execStart = sim.now();
    const auto exec = acq.cold
                          ? defp->cpuWork->execCost *
                                defp->cpuWork->coldExecFactor
                          : defp->cpuWork->execCost;
    core::Status st = co_await dep_->runcOn(target).invoke(
        acq.instance->id, exec, rootCtx);
    scheduler_->noteComplete(target);
    if (!st.ok())
        co_return st.error();
    rec.execution = sim.now() - execStart;
    co_return rec;
}

sim::Task<Expected<obs::InvocationRecord>>
Molecule::invoke(const std::string &fn, const InvokeOptions &opts)
{
    std::string owned_fn = fn;
    InvokeOptions owned_opts = opts;
    const FunctionDef *def = registry_.findPtr(owned_fn);
    if (def == nullptr)
        co_return Error(Errc::NotFound,
                        "unknown function '" + owned_fn + "'");
    MOLECULE_ASSERT(def->cpuWork != nullptr,
                    "'%s' is accelerator-only; use invokeFpga",
                    owned_fn.c_str());
    auto &sim = simulation();

    // Root span of this invocation's trace: all attempts (and the
    // backoff pauses between them) nest under it.
    obs::Span root = obs::Span::root(options_.tracer, "invoke",
                                     obs::Layer::Core,
                                     options_.managerPu);
    root.setDetail(owned_fn.c_str());

    const sim::SimTime t0 = sim.now();
    const int maxAttempts =
        owned_opts.maxAttempts < 1 ? 1 : owned_opts.maxAttempts;
    obs::PuList tried;
    Error lastErr;
    int attemptsMade = 0;

    for (int attempt = 1; attempt <= maxAttempts; ++attempt) {
        attemptsMade = attempt;
        if (attempt > 1) {
            obs::Span backoff(root.ctx(), "retry.backoff",
                              obs::Layer::Core, options_.managerPu);
            backoff.setArg(attempt);
            if (options_.tracer != nullptr)
                options_.tracer->metrics()
                    .counter("invoke.retry")
                    .inc();
            co_await sim.delay(owned_opts.retryBackoff);
        }

        AcquiredInstance acq;
        Expected<obs::InvocationRecord> r = co_await invokeOnce(
            *def, owned_opts, attempt, tried, t0, root.ctx(), &acq);
        if (r.ok()) {
            obs::InvocationRecord rec = std::move(r.value());
            rec.traceId = root.traceId();
            rec.pusTried = tried;
            rec.failedOver = !tried.empty() && !tried.contains(rec.pu);
            rec.endToEnd = sim.now() - t0;
            // The measured window ends here; the keep-alive release
            // below is runtime bookkeeping and must not stretch the
            // root span.
            root.finish();
            if (acq.instance != nullptr && !acq.instance->dead &&
                !dep_->puDown(rec.pu)) {
                co_await startup_->release(*def, acq);
            }
            co_return rec;
        }

        lastErr = r.error();
        if (lastErr.pu() >= 0 && !tried.contains(lastErr.pu()))
            tried.push_back(lastErr.pu());
        if (lastErr.code() == Errc::DeadlineExceeded)
            break; // The budget is gone; a retry cannot make it.
        if (options_.tracer != nullptr)
            options_.tracer->metrics()
                .counter("invoke.attempt_failed")
                .inc();
    }

    if (options_.tracer != nullptr)
        options_.tracer->metrics().counter("invoke.failed").inc();
    if (attemptsMade <= 1 || lastErr.code() == Errc::DeadlineExceeded) {
        Error out = lastErr;
        out.withPusTried(tried.toVector());
        co_return out;
    }
    Error out(Errc::RetriesExhausted,
              "'" + owned_fn + "' failed after " +
                  std::to_string(attemptsMade) + " attempts");
    out.causedBy(lastErr)
        .withRetries(attemptsMade - 1)
        .withPusTried(tried.toVector());
    co_return out;
}

sim::Task<Expected<obs::InvocationRecord>>
Molecule::invoke(const std::string &fn, int pu)
{
    std::string owned_fn = fn;
    InvokeOptions opts;
    opts.pu = pu;
    auto r = co_await invoke(owned_fn, opts);
    co_return r;
}

Expected<obs::InvocationRecord>
Molecule::invokeSync(const std::string &fn, const InvokeOptions &opts)
{
    // Watchdog slot: if the simulation drains with the invocation
    // still pending — some fault left it blocked forever — the Hang
    // error is what the caller sees instead of a silent garbage
    // record.
    Expected<obs::InvocationRecord> out(Error(
        Errc::Hang,
        "invocation of '" + fn +
            "' did not complete before the simulation drained"));
    auto run = [](Molecule *self, std::string name, InvokeOptions o,
                  Expected<obs::InvocationRecord> *slot) -> sim::Task<> {
        Expected<obs::InvocationRecord> r =
            co_await self->invoke(name, o);
        *slot = std::move(r);
    };
    simulation().spawn(run(this, fn, opts, &out));
    simulation().run();
    return out;
}

Expected<obs::InvocationRecord>
Molecule::invokeSync(const std::string &fn, int pu)
{
    InvokeOptions opts;
    opts.pu = pu;
    return invokeSync(fn, opts);
}

sim::Task<Expected<obs::InvocationRecord>>
Molecule::invokeFpga(const std::string &fn, int fpgaIndex,
                     std::uint64_t units, const InvokeOptions &opts)
{
    std::string owned_fn = fn;
    InvokeOptions owned_opts = opts;
    const int idx = fpgaIndex;
    const std::uint64_t owned_units = units;
    const FunctionDef *def = registry_.findPtr(owned_fn);
    if (def == nullptr)
        co_return Error(Errc::NotFound,
                        "unknown function '" + owned_fn + "'");
    MOLECULE_ASSERT(def->fpgaWork != nullptr, "'%s' has no FPGA profile",
                    owned_fn.c_str());
    auto &sim = simulation();
    const int hostPu = dep_->computer().fpga(idx).hostPuId();

    obs::Span root = obs::Span::root(options_.tracer, "invoke",
                                     obs::Layer::Core, hostPu);
    root.setDetail(owned_fn.c_str());

    const sim::SimTime t0 = sim.now();
    const int maxAttempts =
        owned_opts.maxAttempts < 1 ? 1 : owned_opts.maxAttempts;
    Error lastErr;
    int attemptsMade = 0;

    // Reconfiguration failures are transient and count-limited, so
    // retries re-attempt on the same card — no cross-card failover.
    for (int attempt = 1; attempt <= maxAttempts; ++attempt) {
        attemptsMade = attempt;
        if (attempt > 1) {
            obs::Span backoff(root.ctx(), "retry.backoff",
                              obs::Layer::Core, hostPu);
            backoff.setArg(attempt);
            if (options_.tracer != nullptr)
                options_.tracer->metrics()
                    .counter("invoke.retry")
                    .inc();
            co_await sim.delay(owned_opts.retryBackoff);
        }
        if (owned_opts.deadline > sim::SimTime(0) &&
            sim.now() - t0 > owned_opts.deadline) {
            lastErr = Error(Errc::DeadlineExceeded,
                            "'" + owned_fn +
                                "' missed its deadline at admission",
                            hostPu);
            break;
        }
        if (dep_->puDown(hostPu)) {
            lastErr = Error(Errc::PuCrashed,
                            "FPGA host PU is down", hostPu);
            continue;
        }

        Expected<AcquiredFpga> acq =
            co_await startup_->acquireFpga(*def, idx, root.ctx());
        if (!acq.ok()) {
            lastErr = acq.error();
            continue;
        }

        obs::InvocationRecord rec;
        rec.function = owned_fn;
        rec.pu = hostPu;
        rec.traceId = root.traceId();
        rec.attempts = attempt;
        rec.coldStart = acq.value().cold;
        rec.startup = acq.value().startupTime;

        const auto execStart = sim.now();
        co_await dep_->runf(idx).invoke(
            acq.value().sandboxId,
            def->fpgaWork->kernelTime(owned_units),
            def->fpgaWork->dmaInBytes(owned_units),
            def->fpgaWork->dmaOutBytes(owned_units), false, false,
            root.ctx());
        rec.execution = sim.now() - execStart;
        rec.endToEnd = sim.now() - t0;
        co_return rec;
    }

    if (options_.tracer != nullptr)
        options_.tracer->metrics().counter("invoke.failed").inc();
    if (attemptsMade <= 1 || lastErr.code() == Errc::DeadlineExceeded)
        co_return lastErr;
    Error out(Errc::RetriesExhausted,
              "'" + owned_fn + "' failed after " +
                  std::to_string(attemptsMade) + " attempts");
    out.causedBy(lastErr).withRetries(attemptsMade - 1);
    co_return out;
}

sim::Task<Expected<obs::InvocationRecord>>
Molecule::invokeFpga(const std::string &fn, int fpgaIndex,
                     std::uint64_t units)
{
    std::string owned_fn = fn;
    InvokeOptions opts;
    auto r = co_await invokeFpga(owned_fn, fpgaIndex, units, opts);
    co_return r;
}

Expected<obs::InvocationRecord>
Molecule::invokeFpgaSync(const std::string &fn, int fpgaIndex,
                         std::uint64_t units, const InvokeOptions &opts)
{
    Expected<obs::InvocationRecord> out(Error(
        Errc::Hang,
        "invocation of '" + fn +
            "' did not complete before the simulation drained"));
    auto run = [](Molecule *self, std::string name, int idx,
                  std::uint64_t u, InvokeOptions o,
                  Expected<obs::InvocationRecord> *slot) -> sim::Task<> {
        Expected<obs::InvocationRecord> r =
            co_await self->invokeFpga(name, idx, u, o);
        *slot = std::move(r);
    };
    simulation().spawn(run(this, fn, fpgaIndex, units, opts, &out));
    simulation().run();
    return out;
}

Expected<obs::InvocationRecord>
Molecule::invokeFpgaSync(const std::string &fn, int fpgaIndex,
                         std::uint64_t units)
{
    return invokeFpgaSync(fn, fpgaIndex, units, InvokeOptions{});
}

sim::Task<Expected<obs::InvocationRecord>>
Molecule::invokeGpu(const std::string &fn, int gpuIndex)
{
    std::string owned_fn = fn;
    const int idx = gpuIndex;
    const FunctionDef *def = registry_.findPtr(owned_fn);
    if (def == nullptr)
        co_return Error(Errc::NotFound,
                        "unknown function '" + owned_fn + "'");
    MOLECULE_ASSERT(def->gpuKernelTime > sim::SimTime(0),
                    "'%s' has no GPU profile", owned_fn.c_str());
    auto &sim = simulation();
    obs::InvocationRecord rec;
    rec.function = owned_fn;
    rec.pu = dep_->computer().gpuDev(idx).hostPuId();

    obs::Span root = obs::Span::root(options_.tracer, "invoke",
                                     obs::Layer::Core, rec.pu);
    root.setDetail(owned_fn.c_str());
    rec.traceId = root.traceId();

    if (dep_->puDown(rec.pu))
        co_return Error(Errc::PuCrashed, "GPU host PU is down",
                        rec.pu);

    const auto t0 = sim.now();
    AcquiredFpga acq =
        co_await startup_->acquireGpu(*def, idx, root.ctx());
    rec.coldStart = acq.cold;
    rec.startup = acq.startupTime;

    const auto execStart = sim.now();
    co_await dep_->rung(idx).invoke(acq.sandboxId, def->gpuKernelTime,
                                    def->gpuIoBytes, def->gpuIoBytes,
                                    root.ctx());
    rec.execution = sim.now() - execStart;
    rec.endToEnd = sim.now() - t0;
    co_return rec;
}

Expected<obs::InvocationRecord>
Molecule::invokeGpuSync(const std::string &fn, int gpuIndex)
{
    Expected<obs::InvocationRecord> out(Error(
        Errc::Hang,
        "invocation of '" + fn +
            "' did not complete before the simulation drained"));
    auto run = [](Molecule *self, std::string name, int idx,
                  Expected<obs::InvocationRecord> *slot) -> sim::Task<> {
        Expected<obs::InvocationRecord> r =
            co_await self->invokeGpu(name, idx);
        *slot = std::move(r);
    };
    simulation().spawn(run(this, fn, gpuIndex, &out));
    simulation().run();
    return out;
}

sim::Task<Expected<obs::ChainRecord>>
Molecule::invokeChain(const ChainSpec &spec, std::vector<int> placement,
                      bool prewarm)
{
    ChainSpec owned_spec = spec;
    std::vector<int> owned_placement = std::move(placement);
    if (owned_placement.empty())
        owned_placement = scheduler_->placeChain(owned_spec);
    for (int pu : owned_placement) {
        if (dep_->puDown(pu))
            co_return Error(Errc::PuCrashed,
                            "chain '" + owned_spec.name +
                                "' placed on a down PU",
                            pu);
    }
    obs::Span root = obs::Span::root(options_.tracer, "chain",
                                     obs::Layer::Core,
                                     options_.managerPu);
    root.setDetail(owned_spec.name.c_str());
    obs::ChainRecord record =
        co_await dag_->run(owned_spec, owned_placement,
                           options_.dagMode, prewarm,
                           options_.managerPu, root.ctx());
    co_return record;
}

Expected<obs::ChainRecord>
Molecule::invokeChainSync(const ChainSpec &spec,
                          std::vector<int> placement, bool prewarm)
{
    Expected<obs::ChainRecord> out(Error(
        Errc::Hang,
        "chain '" + spec.name +
            "' did not complete before the simulation drained"));
    auto run = [](Molecule *self, ChainSpec s, std::vector<int> p,
                  bool w,
                  Expected<obs::ChainRecord> *slot) -> sim::Task<> {
        Expected<obs::ChainRecord> r =
            co_await self->invokeChain(s, std::move(p), w);
        *slot = std::move(r);
    };
    simulation().spawn(run(this, spec, std::move(placement), prewarm,
                           &out));
    simulation().run();
    return out;
}

} // namespace molecule::core
