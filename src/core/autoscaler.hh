/**
 * @file
 * Warm-pool autoscaler: SLO burn-rate alerts drive keep-alive
 * capacity.
 *
 * A WarmPoolAutoscaler subscribes to obs::SloMonitor alerts (it is an
 * obs::AlertSink) and resizes the warm-pool capacity of its target
 * startup managers: a *fired* alert means the error budget is burning
 * — grow the warm pools so fewer requests eat a cold start; a
 * *resolved* alert lets capacity decay back toward the configured
 * baseline so idle memory is returned.
 *
 * Scaling is purely deterministic: it reacts only to the alert stream
 * (itself a pure function of the simulated workload), so runs with
 * the same seed produce bit-identical scaling histories — pinned by
 * digest() in the determinism suite.
 */

#ifndef MOLECULE_CORE_AUTOSCALER_HH
#define MOLECULE_CORE_AUTOSCALER_HH

#include <cstdint>
#include <vector>

#include "obs/slo.hh"
#include "sim/stats.hh"

namespace molecule::core {

class StartupManager;

/**
 * Grows/shrinks StartupManager warm capacity on SLO burn alerts.
 */
class WarmPoolAutoscaler final : public obs::AlertSink
{
  public:
    struct Options
    {
        /** Capacity floor (shrink never goes below). */
        std::size_t minCapacity = 16;
        /** Capacity ceiling (grow never exceeds). */
        std::size_t maxCapacity = 1024;
        /** Multiplier applied on a fired alert (> 1). */
        double growFactor = 2.0;
        /** Multiplier applied on a resolved alert (< 1). */
        double shrinkFactor = 0.5;
    };

    WarmPoolAutoscaler() = default;

    explicit WarmPoolAutoscaler(const Options &options)
        : opts_(options)
    {}

    /** Add a startup manager whose warm capacity this scaler drives.
     * Must outlive the scaler. */
    void addTarget(StartupManager *target);

    void onAlert(const obs::AlertEvent &a) override;

    /** Fired-alert scale-ups applied so far. */
    std::int64_t scaleUps() const { return scaleUps_; }

    /** Resolved-alert scale-downs applied so far. */
    std::int64_t scaleDowns() const { return scaleDowns_; }

    /**
     * Order-sensitive digest of the scaling history (direction,
     * tenant, resulting capacity per event) — bit-identical across
     * replays of the same scenario.
     */
    std::uint64_t digest() const { return fp_.digest(); }

    const Options &options() const { return opts_; }

  private:
    Options opts_;
    std::vector<StartupManager *> targets_;
    std::int64_t scaleUps_ = 0;
    std::int64_t scaleDowns_ = 0;
    sim::Fingerprint fp_;
};

} // namespace molecule::core

#endif // MOLECULE_CORE_AUTOSCALER_HH
