#include "core/gateway.hh"

#include <algorithm>

namespace molecule::core {

namespace calib = hw::calib;

Expected<int>
Gateway::admit(const FunctionDef &fn, int requestedPu,
               std::span<const int> exclude) const
{
    const bool excluded =
        requestedPu >= 0 &&
        std::find(exclude.begin(), exclude.end(), requestedPu) !=
            exclude.end();
    if (requestedPu >= 0 && !excluded) {
        if (dep_.puDown(requestedPu))
            return Error(Errc::PuCrashed,
                         "requested PU is down", requestedPu);
        return Expected<int>(requestedPu);
    }
    // An excluded explicit placement (a failed earlier attempt) falls
    // through to failover placement by the scheduler.
    const int pick = scheduler_.place(fn, exclude);
    if (pick < 0)
        return Error(Errc::NoCapacity,
                     "no PU can admit '" + fn.name + "'");
    return Expected<int>(pick);
}

const char *
toString(CommercialPlatform p)
{
    switch (p) {
      case CommercialPlatform::AwsLambda:
        return "AWS Lambda";
      case CommercialPlatform::OpenWhisk:
        return "OpenWhisk";
    }
    return "?";
}

sim::SimTime
commercialStartupLatency(CommercialPlatform p)
{
    return p == CommercialPlatform::AwsLambda ? calib::kLambdaStartup
                                              : calib::kOpenWhiskStartup;
}

sim::SimTime
commercialCommLatency(CommercialPlatform p)
{
    return p == CommercialPlatform::AwsLambda ? calib::kLambdaStepComm
                                              : calib::kOpenWhiskComm;
}

} // namespace molecule::core
