#include "core/gateway.hh"

namespace molecule::core {

namespace calib = hw::calib;

const char *
toString(CommercialPlatform p)
{
    switch (p) {
      case CommercialPlatform::AwsLambda:
        return "AWS Lambda";
      case CommercialPlatform::OpenWhisk:
        return "OpenWhisk";
    }
    return "?";
}

sim::SimTime
commercialStartupLatency(CommercialPlatform p)
{
    return p == CommercialPlatform::AwsLambda ? calib::kLambdaStartup
                                              : calib::kOpenWhiskStartup;
}

sim::SimTime
commercialCommLatency(CommercialPlatform p)
{
    return p == CommercialPlatform::AwsLambda ? calib::kLambdaStepComm
                                              : calib::kOpenWhiskComm;
}

} // namespace molecule::core
