#include "core/deployment.hh"

#include "sim/logging.hh"

namespace molecule::core {

Deployment::Deployment(hw::Computer &computer) : computer_(computer)
{
    shimNet_ = std::make_unique<xpu::XpuShimNetwork>(computer_);
    for (int pu = 0; pu < computer_.puCount(); ++pu) {
        auto &unit = computer_.pu(pu);
        oses_.push_back(std::make_unique<os::LocalOs>(unit));
        // §6.1: the XPUcall optimizations matter on slow DPU cores;
        // the host CPU keeps the plain FIFO transport (~20 us).
        const auto transport = unit.type() == hw::PuType::Dpu
                                   ? xpu::TransportKind::MpscPoll
                                   : xpu::TransportKind::Fifo;
        shimNet_->addShim(*oses_.back(), transport);
        runcs_.push_back(
            std::make_unique<sandbox::RuncRuntime>(*oses_.back()));
        generalPus_.push_back(pu);
    }
    // Accelerators are managed from their host PU's virtual shim.
    for (const auto &fpga : computer_.fpgas()) {
        runfs_.push_back(std::make_unique<sandbox::RunfRuntime>(
            osOn(fpga->hostPuId()), *fpga));
    }
    for (const auto &gpu : computer_.gpus()) {
        rungs_.push_back(std::make_unique<sandbox::RungRuntime>(
            osOn(gpu->hostPuId()), *gpu));
    }
}

os::LocalOs &
Deployment::osOn(int pu)
{
    MOLECULE_ASSERT(pu >= 0 && pu < int(oses_.size()),
                    "no OS on PU %d", pu);
    return *oses_[std::size_t(pu)];
}

sandbox::RuncRuntime &
Deployment::runcOn(int pu)
{
    MOLECULE_ASSERT(pu >= 0 && pu < int(runcs_.size()),
                    "no runc on PU %d", pu);
    return *runcs_[std::size_t(pu)];
}

sandbox::RunfRuntime &
Deployment::runf(int index)
{
    MOLECULE_ASSERT(index >= 0 && index < int(runfs_.size()),
                    "no runf %d", index);
    return *runfs_[std::size_t(index)];
}

sandbox::RungRuntime &
Deployment::rung(int index)
{
    MOLECULE_ASSERT(index >= 0 && index < int(rungs_.size()),
                    "no runG %d", index);
    return *rungs_[std::size_t(index)];
}

void
Deployment::attachFaults(fault::FaultState *faults)
{
    faults_ = faults;
    shimNet_->attachFaults(faults);
    computer_.topology().attachFaults(faults);
    for (auto &runf : runfs_)
        runf->device().attachFaults(faults);
}

std::vector<int>
Deployment::pusOfType(hw::PuType type) const
{
    std::vector<int> out;
    for (int pu : generalPus_)
        if (computer_.pu(pu).type() == type)
            out.push_back(pu);
    return out;
}

} // namespace molecule::core
