/**
 * @file
 * Placement: profile selection and chain affinity (§4.1, §5).
 *
 * Users give each function a set of PU-kind profiles with prices; the
 * control plane picks a concrete PU per request. The default policy
 * prefers the cheapest allowed kind with free capacity and keeps all
 * functions of one chain on the same PU (§5 "Profile selections").
 */

#ifndef MOLECULE_CORE_SCHEDULER_HH
#define MOLECULE_CORE_SCHEDULER_HH

#include <span>

#include "core/dag.hh"
#include "core/deployment.hh"
#include "core/function.hh"
#include "sim/analysis.hh"

namespace molecule::core {

/**
 * Placement policy over one deployment.
 */
class Scheduler
{
  public:
    Scheduler(Deployment &dep, const FunctionRegistry &registry)
        : dep_(dep), registry_(registry)
    {}

    /**
     * Pick a PU for a single invocation of @p fn: the profile with the
     * lowest price whose PU kind has a unit with enough free memory
     * for a fresh instance. PUs in @p exclude (failed attempts of this
     * invocation) and crashed PUs are skipped — failover placement
     * moves the retry to another allowed PU kind.
     * @return PU id, or -1 when no PU can admit the function.
     */
    int pickPu(const FunctionDef &fn,
               std::span<const int> exclude = {}) const;

    /**
     * Place a whole chain: all nodes on one PU when a single PU allows
     * every function (chain affinity); otherwise each node falls back
     * to pickPu.
     */
    std::vector<int> placeChain(const ChainSpec &spec) const;

    /** Free memory on @p pu minus a safety margin (bytes). */
    std::uint64_t admissibleBytes(int pu) const;

    /** Placement decisions taken so far (diagnostics). */
    std::int64_t decisionCount() const { return decisions_.peek(); }

  private:
    Deployment &dep_;
    const FunctionRegistry &registry_;
    /** Each decision consumes admission headroom other same-tick
     * decisions also saw: ordering is pure event tie-break, so the
     * cell is written per decision to make such pairs visible. */
    mutable sim::analysis::Tracked<std::int64_t> decisions_{
        0, "core.placement"};
};

} // namespace molecule::core

#endif // MOLECULE_CORE_SCHEDULER_HH
