/**
 * @file
 * Placement: profile selection and chain affinity (§4.1, §5).
 *
 * Users give each function a set of PU-kind profiles with prices; the
 * control plane picks a concrete PU per request. The pick itself is
 * delegated to a swappable PlacementPolicy (see placement.hh): the
 * scheduler owns what policies may *see* — it snapshots per-PU price,
 * free memory, in-flight work, warm-sandbox presence, link state and
 * capability epochs into a PlacementView — and what they may *decide*
 * (one PU id per request). The default PriceOrderedPolicy reproduces
 * the paper's §5 heuristic bit for bit.
 */

#ifndef MOLECULE_CORE_SCHEDULER_HH
#define MOLECULE_CORE_SCHEDULER_HH

#include <span>

#include "core/dag.hh"
#include "core/deployment.hh"
#include "core/function.hh"
#include "core/placement.hh"
#include "sim/analysis.hh"
#include "sim/stats.hh"

namespace molecule::core {

class StartupManager;

/**
 * Placement authority over one deployment: builds the view, delegates
 * the pick, keeps the in-flight accounting policies decide on.
 */
class Scheduler
{
  public:
    Scheduler(Deployment &dep, const FunctionRegistry &registry)
        : dep_(dep), registry_(registry),
          policy_(std::make_unique<PriceOrderedPolicy>())
    {}

    /**
     * Pick a PU for a single invocation of @p fn by the installed
     * policy. PUs in @p exclude (failed attempts of this invocation)
     * and crashed PUs are never offered — failover placement moves the
     * retry to another allowed PU.
     * @return PU id, or -1 when no PU can admit the function.
     */
    int place(const FunctionDef &fn, std::span<const int> exclude = {});

    /** Snapshot the decision inputs for @p fn (also used by tests to
     * audit exactly what a policy saw). */
    PlacementView view(const FunctionDef &fn,
                       std::span<const int> exclude = {}) const;

    /**
     * Place a whole chain: all nodes on one PU when a single PU allows
     * every function (chain affinity); otherwise each node falls back
     * to per-function placement.
     */
    std::vector<int> placeChain(const ChainSpec &spec);

    /** Free memory on @p pu minus a safety margin (bytes). */
    std::uint64_t admissibleBytes(int pu) const;

    /** @name Policy installation */
    ///@{

    /** Swap the placement policy (null resets to the default). The
     * default PriceOrderedPolicy is digest-identical to the paper's
     * hard-coded heuristic. */
    void installPlacement(std::unique_ptr<PlacementPolicy> policy);

    PlacementPolicy &placement() { return *policy_; }

    const PlacementPolicy &placement() const { return *policy_; }
    ///@}

    /** @name In-flight accounting (fed by the invoke pipeline) */
    ///@{

    /** An invocation was placed on @p pu and is now in flight. */
    void noteDispatch(int pu);

    /** The invocation on @p pu finished (completed or failed). */
    void noteComplete(int pu);

    /** Invocations currently in flight on @p pu. */
    int outstanding(int pu) const;
    ///@}

    /** Placement decisions taken so far (diagnostics). */
    std::int64_t decisionCount() const { return decisions_.peek(); }

    /**
     * Order-sensitive digest of every placement decision (function
     * hash, picked PU): bit-identical across replays of the same
     * scenario — the per-policy golden the determinism suite pins.
     */
    std::uint64_t placementDigest() const { return placeFp_.digest(); }

    /** Warm-pool source for PuView::warmSandboxes (wired by the
     * Molecule; null leaves warm counts at zero). */
    void setStartupManager(const StartupManager *startup)
    {
        startup_ = startup;
    }

  private:
    Deployment &dep_;
    const FunctionRegistry &registry_;
    const StartupManager *startup_ = nullptr;
    std::unique_ptr<PlacementPolicy> policy_;
    /** outstanding_[pu]; grown on demand. */
    std::vector<int> outstanding_;
    sim::Fingerprint placeFp_;
    /** Each decision consumes admission headroom other same-tick
     * decisions also saw: ordering is pure event tie-break, so the
     * cell is written per decision to make such pairs visible. */
    mutable sim::analysis::Tracked<std::int64_t> decisions_{
        0, "core.placement"};
};

} // namespace molecule::core

#endif // MOLECULE_CORE_SCHEDULER_HH
