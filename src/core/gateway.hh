/**
 * @file
 * Commercial serverless comparators (Fig 9).
 *
 * AWS Lambda and OpenWhisk are modelled as opaque control planes with
 * calibrated startup and inter-function (step) latencies; Molecule and
 * Molecule-homo numbers are *measured* by running this repository's
 * stack. See calibration.hh for the constants and their provenance.
 */

#ifndef MOLECULE_CORE_GATEWAY_HH
#define MOLECULE_CORE_GATEWAY_HH

#include "hw/calibration.hh"

namespace molecule::core {

/** Modelled commercial platforms. */
enum class CommercialPlatform { AwsLambda, OpenWhisk };

const char *toString(CommercialPlatform p);

/** Cold-start latency of @p platform for a trivial function. */
sim::SimTime commercialStartupLatency(CommercialPlatform p);

/** Inter-function communication latency (step functions / triggers). */
sim::SimTime commercialCommLatency(CommercialPlatform p);

} // namespace molecule::core

#endif // MOLECULE_CORE_GATEWAY_HH
