/**
 * @file
 * Request admission and the commercial comparators (Fig 9).
 *
 * The Gateway is the front door of one invocation: it validates the
 * requested placement (or asks the scheduler for one) and produces a
 * typed admission decision — crashed PUs and capacity exhaustion are
 * `core::Error`s the caller can retry or fail over on, never asserts.
 *
 * AWS Lambda and OpenWhisk are modelled as opaque control planes with
 * calibrated startup and inter-function (step) latencies; Molecule and
 * Molecule-homo numbers are *measured* by running this repository's
 * stack. See calibration.hh for the constants and their provenance.
 */

#ifndef MOLECULE_CORE_GATEWAY_HH
#define MOLECULE_CORE_GATEWAY_HH

#include "core/scheduler.hh"
#include "core/status.hh"
#include "hw/calibration.hh"

namespace molecule::core {

/**
 * Admission control of one Molecule runtime.
 */
class Gateway
{
  public:
    Gateway(Deployment &dep, Scheduler &scheduler)
        : dep_(dep), scheduler_(scheduler)
    {}

    /**
     * Admit one invocation of @p fn.
     *
     * @param requestedPu explicit placement (-1: scheduler decides)
     * @param exclude PUs earlier attempts of this invocation failed
     *        on (failover placement skips them)
     * @return the target PU, or a typed error: PuCrashed for an
     *         explicit placement on a down PU, NoCapacity when no
     *         allowed PU can admit the function.
     */
    [[nodiscard]] Expected<int>
    admit(const FunctionDef &fn, int requestedPu,
          std::span<const int> exclude = {}) const;

  private:
    Deployment &dep_;
    Scheduler &scheduler_;
};

/** Modelled commercial platforms. */
enum class CommercialPlatform { AwsLambda, OpenWhisk };

const char *toString(CommercialPlatform p);

/** Cold-start latency of @p platform for a trivial function. */
sim::SimTime commercialStartupLatency(CommercialPlatform p);

/** Inter-function communication latency (step functions / triggers). */
sim::SimTime commercialCommLatency(CommercialPlatform p);

} // namespace molecule::core

#endif // MOLECULE_CORE_GATEWAY_HH
