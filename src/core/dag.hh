/**
 * @file
 * Function-DAG execution (§4.3).
 *
 * Molecule's "direct connect": every function instance owns a
 * self-FIFO named by a globally unique UUID; the runtime injects the
 * caller/callee UUIDs per request so instances write each other's
 * FIFOs directly — a LocalFifo on the same PU, an XPU-FIFO (nIPC)
 * across PUs. The baseline (Molecule-homo, like OpenWhisk's runtimes)
 * runs an Express/Flask HTTP server in each instance and ships
 * messages over localhost HTTP.
 *
 * The engine measures per-edge latency (parent execution end to child
 * execution start, the Fig 12 quantity) and end-to-end chain latency
 * (Fig 14-e), and drives FPGA chains with and without the DRAM
 * data-retention zero-copy optimization (Fig 13).
 */

#ifndef MOLECULE_CORE_DAG_HH
#define MOLECULE_CORE_DAG_HH

#include <string>
#include <vector>

#include "core/startup.hh"
#include "obs/records.hh"

namespace molecule::core {

/** One DAG node: function + parent (index into the node list). */
struct ChainNode
{
    std::string fn;
    int parent = -1; // -1: root (fed by the gateway)
};

/** A function chain/DAG in topological order. */
struct ChainSpec
{
    std::string name;
    std::vector<ChainNode> nodes;

    /** Build a linear chain fn0 -> fn1 -> ... */
    static ChainSpec linear(const std::string &name,
                            const std::vector<std::string> &fns);

    std::size_t
    edgeCount() const
    {
        std::size_t n = 0;
        for (const auto &node : nodes)
            n += node.parent >= 0 ? 1 : 0;
        return n;
    }
};

/** Inter-function communication flavor. */
enum class DagCommMode {
    /** Express/Flask HTTP through the local network stack. */
    BaselineHttp,
    /** Direct-connect FIFOs; nIPC across PUs. */
    MoleculeIpc,
};

/**
 * Chain executor over a deployment.
 */
class DagEngine
{
  public:
    DagEngine(Deployment &dep, StartupManager &startup,
              const FunctionRegistry &registry)
        : dep_(dep), startup_(startup), registry_(registry)
    {}

    /**
     * Run @p spec once with @p placement (PU per node).
     *
     * @param mode communication flavor
     * @param prewarm acquire all instances before timing starts
     *        (Fig 12 / Fig 14-e pre-boot instances)
     * @param managerPu PU hosting the Molecule runtime / gateway
     */
    sim::Task<obs::ChainRecord> run(const ChainSpec &spec,
                                    const std::vector<int> &placement,
                                    DagCommMode mode, bool prewarm,
                                    int managerPu = 0,
                                    obs::SpanContext ctx = {});

    /**
     * Run a linear chain of FPGA functions on one card (Fig 13).
     * With @p shmOptimization, intermediate results stay in the
     * FPGA-attached DRAM (data retention); otherwise every hop copies
     * through host memory (two DMA crossings).
     */
    sim::Task<obs::ChainRecord> runFpgaChain(
        const std::vector<std::string> &fns, int fpgaIndex,
        bool shmOptimization, std::uint64_t messageBytes,
        obs::SpanContext ctx = {});

    /** Per-node communication plumbing (defined in dag.cc). */
    struct Endpoint;

  private:
    Deployment &dep_;
    StartupManager &startup_;
    const FunctionRegistry &registry_;
    std::uint64_t nextUuid_ = 0;
};

} // namespace molecule::core

#endif // MOLECULE_CORE_DAG_HH
