/**
 * @file
 * Instance lifecycle: cold/warm starts, cfork templates, keep-alive
 * caching and FPGA image composition (§4.2).
 *
 * A request is served by a *warm* instance when the keep-alive cache
 * holds one; otherwise the startup manager cold-starts one — via cfork
 * from the PU's template when enabled (Molecule), or via the baseline
 * container boot (Molecule-homo). Cross-PU starts add the nIPC command
 * round-trip to the target PU's executor (launched through xSpawn at
 * bootstrap), which is the +1-3 ms of Fig 10's cfork-XPU bars.
 *
 * Keep-alive eviction order is delegated to a swappable
 * KeepAliveStrategy (see keepalive.hh): plain LRU, a FaasCache-style
 * greedy-dual priority (clock + freq x cost / size), or
 * histogram-predicted idle windows. The manager owns the pools and
 * the eviction mechanics; the strategy owns the order.
 */

#ifndef MOLECULE_CORE_STARTUP_HH
#define MOLECULE_CORE_STARTUP_HH

#include <deque>
#include <map>
#include <optional>
#include <string>

#include "core/deployment.hh"
#include "core/function.hh"
#include "core/keepalive.hh"
#include "core/status.hh"
#include "obs/trace.hh"
#include "sim/stats.hh"

namespace molecule::core {

/** Startup configuration knobs. */
struct StartupOptions
{
    /** Use cfork templates (false = Molecule-homo baseline). */
    bool useCfork = true;
    sandbox::StartupPath cforkPath = sandbox::StartupPath::CforkCpusetOpt;
    /** Warm instances kept per (function, PU). */
    std::size_t warmCapacity = 64;
    /**
     * When non-zero, warm instances additionally compete for a global
     * per-PU budget across functions: the eviction policy then
     * genuinely matters (FaasCache-style greedy-dual keeps
     * expensive-to-boot functions warm over popular cheap ones).
     */
    std::size_t globalWarmCapacityPerPu = 0;
    /** Eviction-order strategy selection (see keepalive.hh). */
    KeepAliveConfig keepAlive;
    /** Pre-initialized function containers per PU at bootstrap. */
    int pooledContainersPerPu = 32;
};

/** Result of acquiring a CPU/DPU instance. */
struct AcquiredInstance
{
    sandbox::Instance *instance = nullptr;
    int pu = -1;
    bool cold = false;
    sim::SimTime startupTime;
};

/** Result of acquiring an FPGA sandbox. */
struct AcquiredFpga
{
    std::string sandboxId;
    int fpgaIndex = -1;
    bool cold = false;
    sim::SimTime startupTime;
};

/**
 * Startup manager for one deployment.
 */
class StartupManager
{
  public:
    StartupManager(Deployment &dep, const FunctionRegistry &registry,
                   StartupOptions options);

    const StartupOptions &options() const { return options_; }

    StartupOptions &options() { return options_; }

    /**
     * Launch executors on every non-manager PU (xSpawn), prepare cfork
     * templates for @p languages on every general PU and pre-warm the
     * function-container pools.
     */
    sim::Task<> bootstrap(int managerPu);

    /**
     * Get a running instance of @p fn on @p pu: warm hit from the
     * keep-alive cache, or a cold start (cfork / baseline). A start
     * issued from a different PU pays the executor command round-trip.
     */
    sim::Task<AcquiredInstance> acquire(const FunctionDef &fn, int pu,
                                        int managerPu,
                                        obs::SpanContext ctx = {});

    /** Return an instance to the keep-alive cache (may evict). */
    sim::Task<> release(const FunctionDef &fn, AcquiredInstance inst);

    /**
     * Pre-declare the hot set of FPGA functions (keep-alive decision,
     * §4.2): the next composition packs them all into one image.
     */
    void setFpgaHotSet(int fpgaIndex, std::vector<std::string> funcIds);

    /**
     * Get a dispatchable FPGA sandbox for @p fn: warm-sandbox hit,
     * cached-instance start, or a full image (re)composition. Typed
     * failures surface composition errors (NoCapacity) and injected
     * reconfiguration failures (FpgaReconfigFailed) for retry.
     */
    sim::Task<Expected<AcquiredFpga>>
    acquireFpga(const FunctionDef &fn, int fpgaIndex,
                obs::SpanContext ctx = {});

    /**
     * Get a dispatchable GPU sandbox (§6.8): GPUs keep many modules
     * resident concurrently, so a cold acquire just loads the module.
     */
    sim::Task<AcquiredFpga> acquireGpu(const FunctionDef &fn,
                                       int gpuIndex,
                                       obs::SpanContext ctx = {});

    /** @name Fault recovery (driven by core::RecoveryManager) */
    ///@{

    /** Drop every warm-pool entry on @p pu (its instances died). */
    void purgePu(int pu);

    /** Drop the warm pool of (@p fn, @p pu) after an OOM kill. */
    void purgeFunction(const std::string &fn, int pu);

    /**
     * Re-warm a restarted PU: re-prepare the cfork templates and the
     * pre-initialized container pool that the reboot destroyed.
     */
    sim::Task<> rewarmPu(int pu, obs::SpanContext ctx = {});
    ///@}

    /** Warm-pool depth for (fn, pu) (tests). */
    std::size_t warmCount(const std::string &fn, int pu) const;

    /** Total cold starts performed (stats). */
    std::int64_t coldStarts() const { return coldStarts_; }

    /** Total warm hits served (stats). */
    std::int64_t warmHits() const { return warmHits_; }

    /** @name Keep-alive strategy */
    ///@{

    /** Swap the eviction strategy (null resets to the configured
     * KeepAliveConfig). Swapping mid-run is allowed; entries keep
     * their stamped park priorities. */
    void installKeepAlive(std::unique_ptr<KeepAliveStrategy> strategy);

    KeepAliveStrategy &keepAlive() { return *strategy_; }

    const KeepAliveStrategy &keepAlive() const { return *strategy_; }

    /** Keep-alive evictions performed so far. */
    std::int64_t evictions() const { return evictions_; }

    /**
     * Order-sensitive digest of every eviction (sandbox id, PU,
     * ordinal): bit-identical across replays of the same scenario —
     * the per-strategy golden the determinism suite pins.
     */
    std::uint64_t evictionDigest() const { return evictFp_.digest(); }
    ///@}

  private:
    struct WarmEntry
    {
        std::string sandboxId;
        sim::SimTime lastUsed;
        std::int64_t freq = 1;
        /** Cold-start cost estimate in ms (greedy-dual numerator). */
        double costMs = 1.0;
        /** Memory size in MB (greedy-dual denominator). */
        double sizeMb = 1.0;
        /** Strategy priority stamped at park time. */
        double parkPriority = 0.0;
    };

    using PoolKey = std::pair<std::string, int>;

    /** Charge the manager->executor command round-trip over nIPC. */
    sim::Task<> commandRoundTrip(int managerPu, int targetPu,
                                 obs::SpanContext ctx);

    /** Evict until the pool for @p key fits the capacity. */
    sim::Task<> evictIfNeeded(const PoolKey &key);

    /** Evict across all of @p pu's pools until the global budget fits. */
    sim::Task<> evictGlobal(int pu);

    std::size_t warmTotalOn(int pu) const;

    /** Strategy view of one parked entry. */
    WarmEntryView entryView(const PoolKey &key,
                            const WarmEntry &entry) const;

    /** Record one eviction (digest + counters + strategy feedback). */
    void noteEviction(const PoolKey &key, const WarmEntry &victim);

    Deployment &dep_;
    const FunctionRegistry &registry_;
    StartupOptions options_;
    std::unique_ptr<KeepAliveStrategy> strategy_;
    std::map<PoolKey, std::deque<WarmEntry>> warmPools_;
    std::map<int, std::vector<std::string>> fpgaHotSets_;
    /** Deployable CUDA images synthesized per GPU function. */
    sandbox::FunctionImage *gpuImage(const FunctionDef &fn);

    std::map<std::string, std::unique_ptr<sandbox::FunctionImage>>
        gpuImages_;
    /** Measured cold-start cost per (fn, PU), ms (greedy-dual). */
    std::map<PoolKey, double> knownColdMs_;
    /** Invocation frequency per (fn, PU) (greedy-dual). */
    std::map<PoolKey, std::int64_t> freq_;
    std::int64_t coldStarts_ = 0;
    std::int64_t warmHits_ = 0;
    std::int64_t evictions_ = 0;
    sim::Fingerprint evictFp_;
    std::uint64_t nextSandboxId_ = 0;
    bool bootstrapped_ = false;
};

} // namespace molecule::core

#endif // MOLECULE_CORE_STARTUP_HH
