#include "sim/stats.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>

#include "sim/logging.hh"

namespace molecule::sim {

void
Histogram::add(double v)
{
    samples_.push_back(v);
    sorted_ = false;
    sum_ += v;
    sumSq_ += v * v;
}

double
Histogram::mean() const
{
    return samples_.empty() ? 0.0 : sum_ / double(samples_.size());
}

void
Histogram::ensureSorted() const
{
    if (!sorted_) {
        std::sort(samples_.begin(), samples_.end());
        sorted_ = true;
    }
}

double
Histogram::min() const
{
    ensureSorted();
    return samples_.empty() ? 0.0 : samples_.front();
}

double
Histogram::max() const
{
    ensureSorted();
    return samples_.empty() ? 0.0 : samples_.back();
}

double
Histogram::stddev() const
{
    const auto n = double(samples_.size());
    if (n < 2)
        return 0.0;
    const double var = (sumSq_ - sum_ * sum_ / n) / (n - 1);
    return var > 0 ? std::sqrt(var) : 0.0;
}

double
Histogram::percentile(double p) const
{
    MOLECULE_ASSERT(p >= 0.0 && p <= 100.0, "percentile out of range");
    if (samples_.empty())
        return 0.0;
    ensureSorted();
    const auto n = samples_.size();
    // Nearest-rank (ceil) definition; p=0 maps to the minimum.
    std::size_t rank = std::size_t(std::ceil(p / 100.0 * double(n)));
    if (rank == 0)
        rank = 1;
    return samples_[rank - 1];
}

void
Histogram::clear()
{
    samples_.clear();
    sorted_ = true;
    sum_ = 0.0;
    sumSq_ = 0.0;
}

std::string
Histogram::summaryLine() const
{
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "avg %.2f  p50 %.2f  p75 %.2f  p90 %.2f  p95 %.2f  "
                  "p99 %.2f",
                  mean(), percentile(50), percentile(75), percentile(90),
                  percentile(95), percentile(99));
    return buf;
}

void
Fingerprint::mix(std::uint64_t v)
{
    // FNV-1a, one byte at a time, little-endian byte order.
    constexpr std::uint64_t prime = 1099511628211ULL;
    for (int shift = 0; shift < 64; shift += 8) {
        state_ ^= (v >> shift) & 0xffULL;
        state_ *= prime;
    }
}

void
Fingerprint::mixDouble(double v)
{
    static_assert(sizeof(double) == sizeof(std::uint64_t));
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    mix(bits);
}

void
Fingerprint::mixHistogram(const Histogram &h)
{
    for (double s : h.samples())
        mixDouble(s);
}

void
StatRegistry::clear()
{
    counters_.clear();
    hists_.clear();
}

} // namespace molecule::sim
