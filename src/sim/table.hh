/**
 * @file
 * Plain-text table renderer for bench harness output.
 *
 * Every bench binary prints the rows/series of the paper figure it
 * reproduces; this renderer keeps those outputs aligned and uniform.
 */

#ifndef MOLECULE_SIM_TABLE_HH
#define MOLECULE_SIM_TABLE_HH

#include <string>
#include <vector>

namespace molecule::sim {

/**
 * Column-aligned table with a title and header row.
 *
 * @code
 *   Table t("Figure 8: nIPC latency (us)");
 *   t.header({"msg size", "nIPC-Base", "nIPC-MPSC"});
 *   t.row({"16B", "141.2", "88.4"});
 *   t.print();
 * @endcode
 */
class Table
{
  public:
    explicit Table(std::string title) : title_(std::move(title)) {}

    void header(std::vector<std::string> cells);

    void row(std::vector<std::string> cells);

    /** Format a double with @p decimals places (row-building helper). */
    static std::string num(double v, int decimals = 2);

    /** Render to a string (unit-testable). */
    std::string render() const;

    /** Render to stdout. */
    void print() const;

  private:
    std::string title_;
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace molecule::sim

#endif // MOLECULE_SIM_TABLE_HH
