/**
 * @file
 * C++20 coroutine task type for simulated processes.
 *
 * Protocol code in Molecule (FIFO reads, executor command loops, shim
 * synchronization round-trips) is written as coroutines that co_await
 * awaitables provided by the kernel (Simulation::delay, SimEvent,
 * Semaphore, Mailbox). A Task<T> is lazily started:
 *
 *  - `co_await someTask(...)` starts the child inline (same simulated
 *    instant, via symmetric transfer) and resumes the parent when the
 *    child finishes, yielding its value;
 *  - `Simulation::spawn(std::move(task))` detaches a root task whose
 *    frame self-destroys on completion.
 *
 * Exceptions propagate through co_await; an exception escaping a
 * detached task is a simulator bug and panics.
 *
 * @warning GCC 12 miscompiles non-trivially-copyable *temporaries*
 * inside co_await full-expressions (frame slots for such temporaries
 * can be clobbered across suspension points, leading to double-frees
 * and dangling strings). Library rules, enforced across this codebase:
 *  1. Coroutines take non-trivial parameters by const reference and
 *     copy them to a named local before the first suspension.
 *  2. Call sites never build a non-trivial temporary inside a
 *     co_await expression — materialize a named local first:
 *       Msg m{...};  co_await fifo->write(m);       // OK
 *       co_await fifo->write(Msg{...});             // MISCOMPILES
 *  3. Trivially-copyable arguments (ids, ints, SimTime) are safe in
 *     any form.
 *  4. At -O2 the same compiler also drops continuations when co_await
 *     appears inside a larger expression (an if/while condition, ?:,
 *     a cast, a compound assignment). co_await may appear ONLY as a
 *     full expression-statement, the RHS of a simple assignment or
 *     initialization, or directly after co_return:
 *       auto v = co_await f();  if (v) ...   // OK
 *       co_return co_await f();              // OK
 *       if (co_await f()) ...                // MISCOMPILES at -O2
 */

#ifndef MOLECULE_SIM_TASK_HH
#define MOLECULE_SIM_TASK_HH

#include <coroutine>
#include <exception>
#include <optional>
#include <utility>

#include "sim/logging.hh"

namespace molecule::sim {

template <typename T>
class Task;

namespace detail {

/** State shared by all task promises, independent of the result type. */
struct PromiseBase
{
    /** Coroutine to resume when this task completes (the awaiter). */
    std::coroutine_handle<> continuation{};
    /** Detached tasks self-destroy at final suspend. */
    bool detached = false;
    std::exception_ptr exception{};

    std::suspend_always
    initial_suspend() noexcept
    {
        return {};
    }

    struct FinalAwaiter
    {
        bool detached;

        /**
         * Detached tasks do not suspend at the final point: control
         * flows off the end of the coroutine and the implementation
         * destroys the frame itself. This avoids the manual
         * destroy-inside-await_suspend idiom.
         */
        bool await_ready() const noexcept { return detached; }

        template <typename Promise>
        std::coroutine_handle<>
        await_suspend(std::coroutine_handle<Promise> h) noexcept
        {
            std::coroutine_handle<> cont = h.promise().continuation;
            return cont ? cont : std::noop_coroutine();
        }

        void await_resume() const noexcept {}
    };

    FinalAwaiter
    final_suspend() noexcept
    {
        if (detached && exception) {
            // No awaiter exists to receive the exception.
            panic("exception escaped a detached simulation task");
        }
        return {detached};
    }

    void unhandled_exception() { exception = std::current_exception(); }
};

template <typename T>
struct Promise : PromiseBase
{
    std::optional<T> value;

    Task<T> get_return_object();

    void
    return_value(T v)
    {
        value.emplace(std::move(v));
    }
};

template <>
struct Promise<void> : PromiseBase
{
    Task<void> get_return_object();

    void return_void() {}
};

} // namespace detail

/**
 * A lazily-started coroutine producing a T in simulated time.
 *
 * Move-only. Destroying an unstarted or completed (non-detached) Task
 * destroys the coroutine frame.
 */
template <typename T = void>
class [[nodiscard]] Task
{
  public:
    using promise_type = detail::Promise<T>;
    using handle_type = std::coroutine_handle<promise_type>;

    Task() = default;
    explicit Task(handle_type h) : handle_(h) {}

    Task(Task &&other) noexcept
        : handle_(std::exchange(other.handle_, nullptr))
    {}

    Task &
    operator=(Task &&other) noexcept
    {
        if (this != &other) {
            destroy();
            handle_ = std::exchange(other.handle_, nullptr);
        }
        return *this;
    }

    Task(const Task &) = delete;
    Task &operator=(const Task &) = delete;

    ~Task() { destroy(); }

    bool valid() const { return handle_ != nullptr; }

    bool done() const { return handle_ && handle_.done(); }

    /**
     * Release ownership, mark detached and start execution.
     * Used by Simulation::spawn; the frame self-destroys on completion.
     */
    void
    detachAndStart()
    {
        MOLECULE_ASSERT(handle_, "detaching an empty task");
        handle_type h = std::exchange(handle_, nullptr);
        h.promise().detached = true;
        h.resume();
    }

    /** Awaiter: start the child inline, resume parent on completion. */
    auto
    operator co_await() &&
    {
        struct Awaiter
        {
            handle_type handle;

            bool await_ready() const noexcept { return false; }

            std::coroutine_handle<>
            await_suspend(std::coroutine_handle<> cont) noexcept
            {
                handle.promise().continuation = cont;
                return handle; // symmetric transfer: run child now
            }

            T
            await_resume()
            {
                auto &p = handle.promise();
                if (p.exception)
                    std::rethrow_exception(p.exception);
                if constexpr (!std::is_void_v<T>) {
                    MOLECULE_ASSERT(p.value.has_value(),
                                    "task finished without a value");
                    return std::move(*p.value);
                }
            }
        };
        MOLECULE_ASSERT(handle_, "awaiting an empty task");
        return Awaiter{handle_};
    }

  private:
    void
    destroy()
    {
        if (handle_) {
            handle_.destroy();
            handle_ = nullptr;
        }
    }

    handle_type handle_{};
};

namespace detail {

template <typename T>
Task<T>
Promise<T>::get_return_object()
{
    return Task<T>(std::coroutine_handle<Promise<T>>::from_promise(*this));
}

inline Task<void>
Promise<void>::get_return_object()
{
    return Task<void>(
        std::coroutine_handle<Promise<void>>::from_promise(*this));
}

} // namespace detail

} // namespace molecule::sim

#endif // MOLECULE_SIM_TASK_HH
