#include "sim/analysis.hh"

#if MOLECULE_DETERMINISM_ANALYSIS

#include <algorithm>
#include <cstring>

namespace molecule::sim::analysis {

namespace {

thread_local AccessLog *tlsCurrentLog = nullptr;

/** Deterministic ordering for the conflict scan: group accesses to one
 * cell at one instant together, then order by firing (seq) order. The
 * cell pointer participates only to separate same-named cells; report
 * order stays stable because groups are primarily keyed by (when,
 * name). */
bool
scanOrder(const AccessRecord &x, const AccessRecord &y)
{
    if (x.when != y.when)
        return x.when < y.when;
    if (const int c = std::strcmp(x.cellName, y.cellName))
        return c < 0;
    if (x.cell != y.cell)
        return x.cell < y.cell;
    return x.eventSeq < y.eventSeq;
}

} // namespace

const char *
toString(AccessKind k)
{
    return k == AccessKind::Write ? "write" : "read";
}

std::string
describe(const Conflict &c)
{
    auto side = [](const AccessRecord &r) {
        std::string s = toString(r.kind);
        s += " at ";
        s += r.file;
        s += ":";
        s += std::to_string(r.line);
        s += " (";
        s += r.function;
        s += ", event #";
        s += std::to_string(r.eventSeq);
        s += " scheduled@";
        s += std::to_string(r.schedAt);
        s += "ns)";
        return s;
    };
    std::string out = "same-tick conflict on '";
    out += c.cellName;
    out += "' @ ";
    out += std::to_string(c.when);
    out += "ns:\n  ";
    out += side(c.a);
    out += "\n  ";
    out += side(c.b);
    out += "\n  order decided only by the schedule-sequence tie-break";
    return out;
}

AccessLog::AccessLog(std::size_t capacity)
    : capacity_(capacity ? capacity : 1)
{
    ring_.reserve(std::min(capacity_, std::size_t(4096)));
}

void
AccessLog::noteScheduled(std::uint64_t seq, std::int64_t at)
{
    pendingSchedAt_[seq] = at;
}

void
AccessLog::dropScheduled(std::uint64_t seq)
{
    pendingSchedAt_.erase(seq);
}

void
AccessLog::beginEvent(std::int64_t when, std::uint64_t seq)
{
    curWhen_ = when;
    curSeq_ = seq;
    const auto it = pendingSchedAt_.find(seq);
    if (it == pendingSchedAt_.end()) {
        // Scheduled before tracking was enabled (or directly on the
        // EventQueue): treat as same-instant so it never reports.
        curSchedAt_ = when;
    } else {
        curSchedAt_ = it->second;
        pendingSchedAt_.erase(it);
    }
}

void
AccessLog::record(const void *cell, const char *cellName, AccessKind kind,
                  const std::source_location &loc)
{
    AccessRecord r;
    r.cell = cell;
    r.cellName = cellName;
    r.when = curWhen_;
    r.eventSeq = curSeq_;
    r.schedAt = curSchedAt_;
    r.kind = kind;
    r.file = loc.file_name();
    r.function = loc.function_name();
    r.line = loc.line();
    if (count_ < capacity_) {
        ring_.push_back(r);
        ++count_;
    } else {
        ring_[head_] = r;
        head_ = (head_ + 1) % capacity_;
        ++dropped_;
    }
}

std::vector<AccessRecord>
AccessLog::snapshot() const
{
    std::vector<AccessRecord> out;
    out.reserve(count_);
    // Oldest first: [head_, end) then [0, head_).
    for (std::size_t i = head_; i < count_; ++i)
        out.push_back(ring_[i]);
    for (std::size_t i = 0; i < head_; ++i)
        out.push_back(ring_[i]);
    return out;
}

std::vector<Conflict>
AccessLog::findConflicts() const
{
    std::vector<AccessRecord> recs = snapshot();
    std::stable_sort(recs.begin(), recs.end(), scanOrder);

    std::vector<Conflict> out;
    std::size_t lo = 0;
    while (lo < recs.size() && out.size() < kMaxConflicts) {
        // One group: same cell, same instant.
        std::size_t hi = lo + 1;
        while (hi < recs.size() && recs[hi].when == recs[lo].when &&
               recs[hi].cell == recs[lo].cell)
            ++hi;
        // First qualifying pair in firing order: different events,
        // at least one write, both events pre-scheduled (the causality
        // filter drops same-instant wakeup chains).
        [&] {
            for (std::size_t i = lo; i < hi; ++i) {
                if (recs[i].schedAt >= recs[i].when)
                    continue;
                for (std::size_t j = i + 1; j < hi; ++j) {
                    if (recs[j].eventSeq == recs[i].eventSeq)
                        continue;
                    if (recs[j].schedAt >= recs[j].when)
                        continue;
                    if (recs[i].kind != AccessKind::Write &&
                        recs[j].kind != AccessKind::Write)
                        continue;
                    Conflict c;
                    c.cellName = recs[lo].cellName;
                    c.when = recs[lo].when;
                    c.a = recs[i];
                    c.b = recs[j];
                    out.push_back(c);
                    return;
                }
            }
        }();
        lo = hi;
    }
    return out;
}

void
AccessLog::clear()
{
    ring_.clear();
    head_ = 0;
    count_ = 0;
    dropped_ = 0;
    pendingSchedAt_.clear();
    curWhen_ = 0;
    curSeq_ = 0;
    curSchedAt_ = 0;
}

AccessLog *
AccessLog::current()
{
    return tlsCurrentLog;
}

AccessLog::Scope::Scope(AccessLog *log) : prev_(tlsCurrentLog)
{
    tlsCurrentLog = log;
}

AccessLog::Scope::~Scope()
{
    tlsCurrentLog = prev_;
}

} // namespace molecule::sim::analysis

#endif // MOLECULE_DETERMINISM_ANALYSIS
