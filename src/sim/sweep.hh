/**
 * @file
 * Parallel sweep runner: fan independent simulation replicas across a
 * worker-thread pool.
 *
 * Every bench/test sweep in this repository (seed sweeps, design-space
 * grids, parameter ladders) runs N completely independent Simulation
 * instances — they share no state, so the sweep is embarrassingly
 * parallel. SweepRunner multiplies sweep capacity by the core count
 * while preserving determinism: each replica is a pure function of its
 * index (which selects seed/parameters), and results land in an
 * index-addressed vector, so the output is bit-identical to a serial
 * run regardless of thread interleaving.
 *
 * Threading model: a persistent pool of workers plus the calling
 * thread drain a shared atomic index counter per batch; forEach/map
 * block until the batch completes. The first exception thrown by any
 * replica is captured, the batch is short-circuited, and the exception
 * rethrown on the calling thread.
 */

#ifndef MOLECULE_SIM_SWEEP_HH
#define MOLECULE_SIM_SWEEP_HH

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace molecule::sim {

/**
 * Fixed-size worker pool for independent replicas.
 *
 * @warning Replica bodies must not touch shared mutable state; a
 * Simulation and everything hanging off it belong to exactly one
 * replica. The pool provides no synchronization beyond batch
 * start/finish.
 */
class SweepRunner
{
  public:
    /** @param threads worker count; 0 = hardware concurrency. */
    explicit SweepRunner(unsigned threads = 0);

    SweepRunner(const SweepRunner &) = delete;
    SweepRunner &operator=(const SweepRunner &) = delete;

    ~SweepRunner();

    /** Total executing threads per batch (workers + caller). */
    unsigned threadCount() const { return unsigned(workers_.size()) + 1; }

    /**
     * Run body(i) for every i in [0, count); blocks until all replicas
     * finish. Rethrows the first replica exception (remaining replicas
     * are skipped, in-flight ones finish first).
     */
    // One type-erased callable per *batch*, not per event: this is the
    // cold fan-out path, far from the DES hot path the rule protects.
    void forEach(std::size_t count, // det:allow(std-function-in-sim)
                 const std::function<void(std::size_t)> &body);

    /**
     * Evaluate fn(i) for every i in [0, count) and collect the results
     * in index order. R must be default-constructible; fn must be
     * callable from multiple threads on distinct indices.
     */
    template <typename R, typename Fn>
    std::vector<R>
    map(std::size_t count, Fn &&fn)
    {
        std::vector<R> out(count);
        forEach(count, [&](std::size_t i) { out[i] = fn(i); });
        return out;
    }

  private:
    /** One fan-out: workers race on next_ until it reaches count_. */
    struct Batch
    {
        // det:allow(std-function-in-sim) — per-batch, see forEach.
        const std::function<void(std::size_t)> *body = nullptr;
        std::size_t count = 0;
        std::atomic<std::size_t> next{0};
        std::atomic<std::size_t> done{0};
        std::exception_ptr error;
        std::mutex errorMutex;
    };

    void workerLoop();

    /** Drain replicas from @p batch until the index space is exhausted. */
    void drain(Batch &batch);

    std::vector<std::thread> workers_;

    std::mutex mutex_;
    std::condition_variable wake_;
    std::condition_variable batchDone_;
    Batch *batch_ = nullptr;   // guarded by mutex_
    std::uint64_t batchSeq_ = 0;
    /** Workers currently inside drain(); guards Batch lifetime. */
    unsigned activeDrains_ = 0;
    bool stopping_ = false;
};

} // namespace molecule::sim

#endif // MOLECULE_SIM_SWEEP_HH
