#include "sim/simulation.hh"

namespace molecule::sim {

SimTime
Simulation::run()
{
    while (step()) {
    }
    return now_;
}

SimTime
Simulation::runUntil(SimTime deadline)
{
    while (!events_.empty() && events_.nextTime() <= deadline)
        step();
    if (now_ < deadline)
        now_ = deadline;
    return now_;
}

bool
Simulation::step()
{
    if (events_.empty())
        return false;
    // Advance the clock *before* running the callback so resumed
    // coroutines observe the firing time.
    now_ = events_.nextTime();
    events_.fireNext();
    return true;
}

} // namespace molecule::sim
