#include "sim/simulation.hh"

namespace molecule::sim {

SimTime
Simulation::run()
{
    while (step()) {
    }
    return now_;
}

SimTime
Simulation::runUntil(SimTime deadline)
{
    while (!events_.empty() && events_.nextTime() <= deadline)
        step();
    if (now_ < deadline)
        now_ = deadline;
    return now_;
}

bool
Simulation::step()
{
    if (events_.empty())
        return false;
    // Advance the clock *before* running the callback so resumed
    // coroutines observe the firing time.
    now_ = events_.nextTime();
#if MOLECULE_DETERMINISM_ANALYSIS
    if (log_) {
        log_->beginEvent(now_.raw(), events_.nextEventSeq());
        // Install the log for the duration of the callback so
        // Tracked<T> accesses anywhere in the model attribute to this
        // event; restored before returning (Scope nests for recursive
        // run() calls).
        analysis::AccessLog::Scope scope(log_.get());
        events_.fireNext();
        return true;
    }
#endif
    events_.fireNext();
    return true;
}

} // namespace molecule::sim
