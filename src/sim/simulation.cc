#include "sim/simulation.hh"

#include <limits>

namespace molecule::sim {

namespace {

/**
 * Events fired per drain() call before run() re-checks for exit. Large
 * enough to amortize the call, small enough that an interactive
 * watcher (runUntil deadline checks) stays responsive.
 */
constexpr std::size_t kDrainChunk = 1024;

} // namespace

SimTime
Simulation::run()
{
#if MOLECULE_DETERMINISM_ANALYSIS
    // The conflict detector needs the per-event begin/scope hooks that
    // step() installs, so tracked runs take the slow path.
    if (log_) {
        while (step()) {
        }
        return now_;
    }
#endif
    const SimTime forever(std::numeric_limits<std::int64_t>::max());
    while (events_.drain(now_, forever, kDrainChunk) > 0) {
    }
    return now_;
}

SimTime
Simulation::runUntil(SimTime deadline)
{
#if MOLECULE_DETERMINISM_ANALYSIS
    if (log_) {
        while (!events_.empty() && events_.nextTime() <= deadline)
            step();
        if (now_ < deadline)
            now_ = deadline;
        return now_;
    }
#endif
    while (events_.drain(now_, deadline, kDrainChunk) > 0) {
    }
    if (now_ < deadline)
        now_ = deadline;
    return now_;
}

bool
Simulation::step()
{
    if (events_.empty())
        return false;
    // Advance the clock *before* running the callback so resumed
    // coroutines observe the firing time.
    now_ = events_.nextTime();
#if MOLECULE_DETERMINISM_ANALYSIS
    if (log_) {
        log_->beginEvent(now_.raw(), events_.nextEventSeq());
        // Install the log for the duration of the callback so
        // Tracked<T> accesses anywhere in the model attribute to this
        // event; restored before returning (Scope nests for recursive
        // run() calls).
        analysis::AccessLog::Scope scope(log_.get());
        events_.fireNext();
        return true;
    }
#endif
    events_.fireNext();
    return true;
}

} // namespace molecule::sim
