#include "sim/logging.hh"

#include <cstdio>
#include <cstdlib>

namespace molecule::sim {

namespace {

LogLevel g_level = LogLevel::Quiet;
LogPrefixFn g_prefix = nullptr;

void
vreport(const char *tag, const char *fmt, va_list ap)
{
    char prefix[96];
    std::size_t n = 0;
    if (g_prefix != nullptr)
        n = g_prefix(prefix, sizeof(prefix));
    if (n > 0)
        std::fprintf(stderr, "%.*s", int(n), prefix);
    std::fprintf(stderr, "%s: ", tag);
    std::vfprintf(stderr, fmt, ap);
    std::fputc('\n', stderr);
}

} // namespace

void
setLogLevel(LogLevel level)
{
    g_level = level;
}

void
setLogPrefixHook(LogPrefixFn fn)
{
    g_prefix = fn;
}

LogLevel
logLevel()
{
    return g_level;
}

void
panic(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    vreport("panic", fmt, ap);
    va_end(ap);
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    vreport("fatal", fmt, ap);
    va_end(ap);
    std::exit(1);
}

void
warn(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    vreport("warn", fmt, ap);
    va_end(ap);
}

void
inform(const char *fmt, ...)
{
    if (g_level < LogLevel::Normal)
        return;
    va_list ap;
    va_start(ap, fmt);
    vreport("info", fmt, ap);
    va_end(ap);
}

} // namespace molecule::sim
