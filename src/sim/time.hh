/**
 * @file
 * Simulated-time representation for the Molecule discrete-event kernel.
 *
 * Simulated time is a signed 64-bit count of nanoseconds. A strong type
 * (rather than a raw integer or std::chrono duration) keeps hardware cost
 * models honest: wall-clock time never mixes with simulated time, and the
 * unit is fixed at one place.
 */

#ifndef MOLECULE_SIM_TIME_HH
#define MOLECULE_SIM_TIME_HH

#include <compare>
#include <cstdint>
#include <cstdio>
#include <string>

namespace molecule::sim {

/**
 * A point in (or span of) simulated time, in nanoseconds.
 *
 * SimTime is used both as an absolute timestamp (since simulation start)
 * and as a duration; the arithmetic closure below is the same for both
 * uses, and experiments only ever subtract timestamps taken from the same
 * simulation, so a separate duration type would add noise without safety.
 */
class SimTime
{
  public:
    constexpr SimTime() = default;

    /** Construct from a raw nanosecond count. */
    constexpr explicit SimTime(std::int64_t ns) : ns_(ns) {}

    static constexpr SimTime
    nanoseconds(std::int64_t v)
    {
        return SimTime(v);
    }

    static constexpr SimTime
    microseconds(std::int64_t v)
    {
        return SimTime(v * 1000);
    }

    static constexpr SimTime
    milliseconds(std::int64_t v)
    {
        return SimTime(v * 1000 * 1000);
    }

    static constexpr SimTime
    seconds(std::int64_t v)
    {
        return SimTime(v * 1000 * 1000 * 1000);
    }

    /** Construct from a fractional microsecond count (cost models). */
    static constexpr SimTime
    fromMicroseconds(double us)
    {
        return SimTime(static_cast<std::int64_t>(us * 1e3));
    }

    /** Construct from a fractional millisecond count (cost models). */
    static constexpr SimTime
    fromMilliseconds(double ms)
    {
        return SimTime(static_cast<std::int64_t>(ms * 1e6));
    }

    /** Construct from a fractional second count (cost models). */
    static constexpr SimTime
    fromSeconds(double s)
    {
        return SimTime(static_cast<std::int64_t>(s * 1e9));
    }

    constexpr std::int64_t raw() const { return ns_; }
    constexpr double toNanoseconds() const { return double(ns_); }
    constexpr double toMicroseconds() const { return double(ns_) / 1e3; }
    constexpr double toMilliseconds() const { return double(ns_) / 1e6; }
    constexpr double toSeconds() const { return double(ns_) / 1e9; }

    constexpr auto operator<=>(const SimTime &) const = default;

    constexpr SimTime
    operator+(SimTime o) const
    {
        return SimTime(ns_ + o.ns_);
    }

    constexpr SimTime
    operator-(SimTime o) const
    {
        return SimTime(ns_ - o.ns_);
    }

    constexpr SimTime &
    operator+=(SimTime o)
    {
        ns_ += o.ns_;
        return *this;
    }

    constexpr SimTime &
    operator-=(SimTime o)
    {
        ns_ -= o.ns_;
        return *this;
    }

    constexpr SimTime
    operator*(double k) const
    {
        return SimTime(static_cast<std::int64_t>(double(ns_) * k));
    }

    constexpr SimTime
    operator/(double k) const
    {
        return SimTime(static_cast<std::int64_t>(double(ns_) / k));
    }

    /** Largest representable time; used as an "infinite" deadline. */
    static constexpr SimTime
    max()
    {
        return SimTime(INT64_MAX);
    }

    /**
     * Render as a human-readable string with an auto-selected unit
     * (e.g. "53.0ms", "25.4us"). Intended for logs and bench tables.
     */
    std::string
    toString() const
    {
        char buf[32];
        double v = double(ns_);
        const char *unit = "ns";
        if (ns_ >= 1000000000 || ns_ <= -1000000000) {
            v /= 1e9;
            unit = "s";
        } else if (ns_ >= 1000000 || ns_ <= -1000000) {
            v /= 1e6;
            unit = "ms";
        } else if (ns_ >= 1000 || ns_ <= -1000) {
            v /= 1e3;
            unit = "us";
        }
        std::snprintf(buf, sizeof(buf), "%.2f%s", v, unit);
        return buf;
    }

  private:
    std::int64_t ns_ = 0;
};

namespace literals {

constexpr SimTime operator""_ns(unsigned long long v)
{
    return SimTime::nanoseconds(std::int64_t(v));
}

constexpr SimTime operator""_us(unsigned long long v)
{
    return SimTime::microseconds(std::int64_t(v));
}

constexpr SimTime operator""_ms(unsigned long long v)
{
    return SimTime::milliseconds(std::int64_t(v));
}

constexpr SimTime operator""_s(unsigned long long v)
{
    return SimTime::seconds(std::int64_t(v));
}

} // namespace literals

} // namespace molecule::sim

#endif // MOLECULE_SIM_TIME_HH
