/**
 * @file
 * Deterministic random-number generation for cost-model jitter.
 *
 * We implement xoshiro256++ seeded via splitmix64 rather than relying on
 * libstdc++ distributions, so simulation results are bit-identical across
 * standard-library versions.
 */

#ifndef MOLECULE_SIM_RANDOM_HH
#define MOLECULE_SIM_RANDOM_HH

#include <cstdint>

namespace molecule::sim {

/**
 * xoshiro256++ generator with convenience distributions.
 *
 * All distributions are implemented from first principles (inverse
 * transform, Box-Muller) for cross-platform reproducibility.
 */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 42);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [lo, hi] (inclusive). */
    std::int64_t uniformInt(std::int64_t lo, std::int64_t hi);

    /** Standard normal via Box-Muller (cached spare value). */
    double normal();

    /** Normal with the given mean and standard deviation. */
    double normal(double mean, double stddev);

    /** Exponential with the given mean (inter-arrival modelling). */
    double exponential(double mean);

    /**
     * Multiplicative latency jitter: lognormal-ish factor centred on 1.0
     * with relative spread @p rel (e.g. 0.05 for +/-5%), clamped positive.
     * Cost models multiply base latencies by this to avoid artificial
     * lock-step behaviour without disturbing means.
     */
    double jitter(double rel);

  private:
    std::uint64_t s_[4];
    double spareNormal_ = 0.0;
    bool hasSpare_ = false;
};

} // namespace molecule::sim

#endif // MOLECULE_SIM_RANDOM_HH
