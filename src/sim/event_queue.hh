/**
 * @file
 * Deterministic pending-event set for the discrete-event kernel.
 *
 * Events scheduled for the same timestamp fire in scheduling order
 * (FIFO), which makes every simulation run bit-reproducible for a given
 * seed regardless of container iteration quirks.
 */

#ifndef MOLECULE_SIM_EVENT_QUEUE_HH
#define MOLECULE_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "sim/callback.hh"
#include "sim/time.hh"

namespace molecule::sim {

/**
 * Handle identifying a scheduled event, usable for cancellation.
 *
 * Encodes (generation << 32) | slab slot. A slot's generation bumps
 * every time the slot is recycled, so a stale id (fired or cancelled
 * event) is rejected in O(1) without any lookup structure. Id 0 is
 * never issued (generations start at 1).
 */
using EventId = std::uint64_t;

/**
 * Allocation-free pending-event set: a 4-ary min-heap of 24-byte POD
 * nodes over a generation-tagged slab of callback slots.
 *
 * - schedule: O(log n) heap insert; no allocation once the vectors
 *   reach steady-state capacity (slots recycle through a free list);
 * - cancel:   O(1). The callback is destroyed and its slot recycled
 *   immediately; the heap node goes stale and is dropped either when
 *   it surfaces at the head or by the amortized compaction below;
 * - popNext:  O(log n), moves the callback out of its slot and
 *   recycles the slot before returning.
 *
 * A stale node is detected by sequence mismatch: each slab slot
 * remembers the schedule sequence of its current occupant, and a node
 * whose seq differs refers to a dead (cancelled or recycled) event.
 * When stale nodes outnumber max(live, kCompactSlack) the heap is
 * rebuilt without them, so memory use is proportional to the *live*
 * event count even under unbounded cancel churn — cancelled entries
 * can no longer accumulate the way the old tombstone-set design let
 * them.
 *
 * Determinism: pop order is the strict total order (time, sequence);
 * the sequence counter increments per schedule, so same-instant events
 * fire in scheduling order (FIFO) regardless of heap shape.
 */
class EventQueue
{
  public:
    /** Schedule @p fn at absolute time @p when; returns a cancel id. */
    EventId schedule(SimTime when, InlineCallback fn);

    /**
     * Fast path for the dominant event kind: resume a coroutine at
     * @p when. The handle is written straight into the slab slot —
     * no closure object, no type-erased move.
     */
    EventId schedule(SimTime when, std::coroutine_handle<> h);

    /**
     * Cancel a previously scheduled event.
     * @retval true the event had not fired and is now cancelled.
     */
    bool cancel(EventId id);

    /** True when no live (non-cancelled) events remain. */
    bool empty() const { return live_ == 0; }

    std::size_t size() const { return live_; }

    /** Timestamp of the next live event. Queue must not be empty. */
    SimTime nextTime() const;

    /** Schedule sequence of the next live event (tie-break key). */
    std::uint64_t nextEventSeq() const;

    /** Sequence assigned by the most recent schedule() call. */
    std::uint64_t lastScheduledSeq() const { return nextSeq_ - 1; }

    /** Sequence of a pending event; 0 when @p id is stale/invalid. */
    std::uint64_t seqOfEvent(EventId id) const;

    /**
     * Pop the next live event without running it, so the driver can
     * advance the clock to the event's timestamp before executing the
     * callback (coroutines resumed by the callback must observe the
     * new time).
     */
    std::pair<SimTime, InlineCallback> popNext();

    /**
     * Pop the next live event and invoke its callback in place (the
     * simulation driver's hot path: saves moving the callable out of
     * its slot). The event is removed from the queue *before* the
     * callback runs, so the callback may schedule and cancel freely;
     * slab chunks are address-stable, making the in-place invocation
     * safe. The caller must advance its clock to nextTime() first.
     */
    void fireNext();

    /**
     * Number of slab slots ever allocated (live + free-listed).
     * Diagnostics: bounded by the high-water mark of concurrently
     * *live* events, not by schedule/cancel churn.
     */
    std::size_t slabCapacity() const { return slotCount_; }

    /** Heap nodes currently held, live + stale (diagnostics). */
    std::size_t heapSize() const { return heap_.size(); }

  private:
    static constexpr std::uint32_t kNoSlot = 0xffffffffu;

    /** Stale-node floor before compaction triggers (tuning knob). */
    static constexpr std::size_t kCompactSlack = 64;

    /** Heap node: POD, 24 bytes, ordered by (when, seq). */
    struct Node
    {
        std::int64_t when;  // SimTime::raw()
        std::uint64_t seq;  // FIFO tie-break at equal timestamps
        std::uint32_t slot; // index into slab_
    };

    /** Slab slot owning the callback of one pending event. */
    struct Slot
    {
        InlineCallback fn;
        /** Schedule seq of the current occupant; stale-node filter. */
        std::uint64_t seq = 0;
        std::uint32_t generation = 1;
        std::uint32_t nextFree = kNoSlot;
    };

    static bool
    before(const Node &a, const Node &b)
    {
        if (a.when != b.when)
            return a.when < b.when;
        return a.seq < b.seq;
    }

    /**
     * Slab storage is chunked so slots never relocate: growing the
     * slab must not move InlineCallbacks (a vector resize would call
     * their type-erased relocate op per element, which dominates the
     * schedule hot path when a queue warms up).
     */
    static constexpr std::size_t kChunkShift = 8;
    static constexpr std::size_t kChunkSize = std::size_t(1)
                                              << kChunkShift;

    Slot &
    slotAt(std::uint32_t slot)
    {
        return chunks_[slot >> kChunkShift][slot & (kChunkSize - 1)];
    }

    const Slot &
    slotAt(std::uint32_t slot) const
    {
        return chunks_[slot >> kChunkShift][slot & (kChunkSize - 1)];
    }

    bool
    stale(const Node &n) const
    {
        return slotAt(n.slot).seq != n.seq;
    }

    void siftUp(std::size_t pos);
    void siftDown(std::size_t pos);

    /** Drop stale nodes sitting at the heap head. */
    void skipStale();

    /** Rebuild the heap without stale nodes (amortized O(1)/cancel). */
    void compact();

    std::uint32_t acquireSlot();

    /** Retire the slot's id/seq so stale nodes and ids are rejected. */
    void invalidateSlot(Slot &s);

    /** Return an invalidated slot to the free list. */
    void freeSlot(std::uint32_t slot);

    /** invalidateSlot + freeSlot. */
    void releaseSlot(std::uint32_t slot);

    std::vector<Node> heap_;
    std::vector<std::unique_ptr<Slot[]>> chunks_;
    std::size_t slotCount_ = 0;
    std::uint32_t freeHead_ = kNoSlot;
    std::size_t live_ = 0;
    std::uint64_t nextSeq_ = 1; // 0 marks a free slab slot
};

} // namespace molecule::sim

#endif // MOLECULE_SIM_EVENT_QUEUE_HH
