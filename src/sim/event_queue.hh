/**
 * @file
 * Deterministic pending-event set for the discrete-event kernel.
 *
 * Events scheduled for the same timestamp fire in scheduling order
 * (FIFO), which makes every simulation run bit-reproducible for a given
 * seed regardless of container iteration quirks.
 */

#ifndef MOLECULE_SIM_EVENT_QUEUE_HH
#define MOLECULE_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <memory>
#include <span>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/arena.hh"
#include "sim/callback.hh"
#include "sim/time.hh"
#include "sim/timer_wheel.hh"

namespace molecule::sim {

/**
 * Handle identifying a scheduled event, usable for cancellation.
 *
 * Encodes (generation << 32) | slab slot. A slot's generation bumps
 * every time the slot is recycled, so a stale id (fired or cancelled
 * event) is rejected in O(1) without any lookup structure. Id 0 is
 * never issued (generations start at 1).
 */
using EventId = std::uint64_t;

/** One entry of a scheduleBatch() request. */
struct BatchEvent
{
    SimTime when;
    InlineCallback fn;
};

/**
 * Allocation-free pending-event set: a hierarchical calendar wheel and
 * a sorted ready-run in front of a 4-ary min-heap, all over a
 * generation-tagged slab of callback slots.
 *
 * - schedule: O(1) wheel insert for short/medium delays (65.5 us
 *   windows, ~17.2 s horizon); O(log n) heap insert for far-future
 *   events past the horizon and for near-empty queues (below
 *   kDirectHeapThreshold live events the heap is already cheaper);
 * - cancel:   O(1). The callback is destroyed and its slot recycled
 *   immediately; the node (heap, wheel or run) goes stale and is
 *   dropped lazily or by the amortized compaction below;
 * - pop:      O(1) amortized for the dense case. When the simulation
 *   reaches a level-0 window, its whole bucket is drained, sorted by
 *   (time, seq) — adaptive: already-sorted input is O(n) — and
 *   consumed front to back with no per-event sift; each pop compares
 *   the run head against the heap head only.
 *
 * A stale node is detected by sequence mismatch: each slab slot
 * remembers the schedule sequence of its current occupant, and a node
 * whose seq differs refers to a dead (cancelled or recycled) event.
 * Stale heap nodes trigger an O(n) rebuild when they outnumber
 * max(live, kCompactSlack); stale wheel nodes trigger a bucket sweep
 * (they never slow pops, so the sweep bounds memory only); stale run
 * entries are skipped at the head for free.
 *
 * Determinism: every pop takes the global (time, sequence) minimum of
 * run head and heap head, and settle() drains a wheel window only when
 * no live head precedes its start — so same-instant events fire in
 * scheduling order (FIFO) and the pop sequence is bit-identical to a
 * heap-only queue.
 */
class EventQueue
{
  public:
    /** Live-event floor below which inserts bypass the wheel. */
    static constexpr std::size_t kDirectHeapThreshold = 16;

    /** Schedule @p fn at absolute time @p when; returns a cancel id. */
    EventId schedule(SimTime when, InlineCallback fn);

    /**
     * Fast path for the dominant event kind: resume a coroutine at
     * @p when. The handle is written straight into the slab slot —
     * no closure object, no type-erased move.
     */
    EventId schedule(SimTime when, std::coroutine_handle<> h);

    /**
     * Hot path for lambdas: the callable is constructed directly in
     * its slab slot (no construct-then-relocate round trip through a
     * temporary InlineCallback).
     */
    template <
        typename F,
        std::enable_if_t<
            !std::is_same_v<std::decay_t<F>, InlineCallback> &&
                !std::is_convertible_v<F &&, std::coroutine_handle<>> &&
                std::is_invocable_r_v<void, std::decay_t<F> &>,
            int> = 0>
    EventId
    schedule(SimTime when, F &&fn)
    {
        const std::uint32_t slot = acquireSlot();
        Slot &s = slotAt(slot);
        s.fn.emplace(std::forward<F>(fn));
        s.seq = nextSeq_++;
        ++live_;
        place(Node{when.raw(), s.seq, slot}, s);
        return (EventId(s.generation) << 32) | slot;
    }

    /**
     * Schedule a batch of events in order (sequence numbers are
     * consecutive, so same-instant batch entries fire in array
     * order). Callbacks are moved out of @p events. When @p idsOut is
     * non-null it receives one cancel id per entry.
     */
    void scheduleBatch(std::span<BatchEvent> events,
                       EventId *idsOut = nullptr);

    /** Batch coroutine resumption: all handles at @p when, in order. */
    void scheduleBatch(SimTime when,
                       std::span<const std::coroutine_handle<>> hs);

    /**
     * Cancel a previously scheduled event.
     * @retval true the event had not fired and is now cancelled.
     */
    bool cancel(EventId id);

    /** True when no live (non-cancelled) events remain. */
    bool empty() const { return live_ == 0; }

    std::size_t size() const { return live_; }

    /** Timestamp of the next live event. Queue must not be empty. */
    SimTime nextTime() const;

    /** Schedule sequence of the next live event (tie-break key). */
    std::uint64_t nextEventSeq() const;

    /** Sequence assigned by the most recent schedule() call. */
    std::uint64_t lastScheduledSeq() const { return nextSeq_ - 1; }

    /** Sequence of a pending event; 0 when @p id is stale/invalid. */
    std::uint64_t seqOfEvent(EventId id) const;

    /**
     * Pop the next live event without running it, so the driver can
     * advance the clock to the event's timestamp before executing the
     * callback (coroutines resumed by the callback must observe the
     * new time).
     */
    std::pair<SimTime, InlineCallback> popNext();

    /**
     * Pop the next live event and invoke its callback in place (the
     * simulation driver's hot path: saves moving the callable out of
     * its slot). The event is removed from the queue *before* the
     * callback runs, so the callback may schedule and cancel freely;
     * slab chunks are address-stable, making the in-place invocation
     * safe. The caller must advance its clock to nextTime() first.
     */
    void fireNext();

    /**
     * Drain-K: fire up to @p maxEvents events whose time is at most
     * @p deadline, writing each event's timestamp to @p clock *before*
     * invoking its callback. This is run()'s hot loop without the
     * per-event function-call and empty-recheck overhead of step().
     * @return number of events fired.
     */
    std::size_t drain(SimTime &clock, SimTime deadline,
                      std::size_t maxEvents);

    /**
     * Number of slab slots ever allocated (live + free-listed).
     * Diagnostics: bounded by the high-water mark of concurrently
     * *live* events, not by schedule/cancel churn.
     */
    std::size_t slabCapacity() const { return slotCount_; }

    /** Heap nodes currently held, live + stale (diagnostics). */
    std::size_t heapSize() const { return heap_.size(); }

    /** Wheel nodes currently parked, live + stale (diagnostics). */
    std::size_t wheelEntries() const { return wheel_.entries(); }

    /** Ready-run entries not yet consumed, live + stale. */
    std::size_t runLength() const { return run_.size() - runPos_; }

  private:
    static constexpr std::uint32_t kNoSlot = 0xffffffffu;
    /** Slot.nextFree side markers while a slot is occupied: cancel
     * learns in O(1) which structure holds the node it staled. */
    static constexpr std::uint32_t kInHeap = 0xfffffffeu;
    static constexpr std::uint32_t kInWheel = 0xfffffffdu;
    static constexpr std::uint32_t kInRun = 0xfffffffcu;

    /** Stale-node floor before heap compaction triggers. */
    static constexpr std::size_t kCompactSlack = 64;

    /** Stale-node floor before a wheel sweep triggers. Larger than the
     * heap's: a sweep walks every bucket, and wheel staleness (unlike
     * heap staleness) never slows pops down, so it is purely a memory
     * bound. */
    static constexpr std::size_t kWheelSlack = 256;

    /** Heap/wheel/run node: POD, 24 bytes, ordered by (when, seq). */
    using Node = EventNode;

    /** Slab slot owning the callback of one pending event. */
    struct Slot
    {
        InlineCallback fn;
        /** Schedule seq of the current occupant; stale-node filter. */
        std::uint64_t seq = 0;
        std::uint32_t generation = 1;
        std::uint32_t nextFree = kNoSlot;
    };

    static bool
    before(const Node &a, const Node &b)
    {
        if (a.when != b.when)
            return a.when < b.when;
        return a.seq < b.seq;
    }

    /**
     * Slab storage is chunked so slots never relocate: growing the
     * slab must not move InlineCallbacks (a vector resize would call
     * their type-erased relocate op per element, which dominates the
     * schedule hot path when a queue warms up).
     */
    static constexpr std::size_t kChunkShift = 8;
    static constexpr std::size_t kChunkSize = std::size_t(1)
                                              << kChunkShift;

    Slot &
    slotAt(std::uint32_t slot)
    {
        return chunks_[slot >> kChunkShift][slot & (kChunkSize - 1)];
    }

    const Slot &
    slotAt(std::uint32_t slot) const
    {
        return chunks_[slot >> kChunkShift][slot & (kChunkSize - 1)];
    }

    bool
    stale(const Node &n) const
    {
        return slotAt(n.slot).seq != n.seq;
    }

    /** Route a fresh node to the wheel or the heap. */
    void place(const Node &n, Slot &s);

    /**
     * Establish the settled invariant: the earlier of run head and
     * heap head (both live) is the globally earliest live event —
     * every wheel window starting no later has been drained or
     * cascaded in. All read-side accessors (nextTime, popNext,
     * fireNext, drain) settle first.
     */
    void settle();

    /** Earlier of live run head / heap head; null when both empty. */
    const Node *minHead() const;

    void siftUp(std::size_t pos);
    void siftDown(std::size_t pos);

    /** Drop stale nodes sitting at the heap head. */
    void skipStale();

    /** Rebuild the heap without stale nodes (amortized O(1)/cancel). */
    void compact();

    /** Sort a drained bucket by (when, seq); adaptive — the common
     * time-ordered-insert case costs one is-sorted scan. */
    static void sortNodes(std::vector<Node> &nodes);

    std::uint32_t
    acquireSlot()
    {
        if (freeHead_ != kNoSlot) {
            const std::uint32_t slot = freeHead_;
            Slot &s = slotAt(slot);
            freeHead_ = s.nextFree;
            s.nextFree = kNoSlot;
            return slot;
        }
        return growSlot();
    }

    /** Slab-growth slow path of acquireSlot(). */
    std::uint32_t growSlot();

    /** Retire the slot's id/seq so stale nodes and ids are rejected. */
    void invalidateSlot(Slot &s);

    /** Return an invalidated slot to the free list. */
    void freeSlot(std::uint32_t slot);

    /** invalidateSlot + freeSlot. */
    void releaseSlot(std::uint32_t slot);

    std::vector<Node> heap_;
    /** Sorted drained window, consumed front to back. */
    std::vector<Node> run_;
    std::size_t runPos_ = 0;
    /** Drain staging buffer; swapped with run_, so the two ping-pong
     * and steady state allocates nothing. */
    std::vector<Node> scratch_;
    std::vector<std::unique_ptr<Slot[]>> chunks_;
    std::size_t slotCount_ = 0;
    std::uint32_t freeHead_ = kNoSlot;
    std::size_t live_ = 0;
    std::uint64_t nextSeq_ = 1; // 0 marks a free slab slot
    /** Exact count of stale nodes per structure (see kInHeap). */
    std::size_t staleHeap_ = 0;
    std::size_t staleWheel_ = 0;
    /** Wheel-block backing store; freed wholesale with the queue. */
    Arena arena_{16 * 1024};
    TimerWheel wheel_{arena_};
};

} // namespace molecule::sim

#endif // MOLECULE_SIM_EVENT_QUEUE_HH
