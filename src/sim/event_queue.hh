/**
 * @file
 * Deterministic pending-event set for the discrete-event kernel.
 *
 * Events scheduled for the same timestamp fire in scheduling order
 * (FIFO), which makes every simulation run bit-reproducible for a given
 * seed regardless of container iteration quirks.
 */

#ifndef MOLECULE_SIM_EVENT_QUEUE_HH
#define MOLECULE_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <utility>
#include <unordered_set>
#include <vector>

#include "sim/time.hh"

namespace molecule::sim {

/** Handle identifying a scheduled event, usable for cancellation. */
using EventId = std::uint64_t;

/**
 * Min-heap of (time, sequence) ordered events.
 *
 * Cancellation uses tombstones: cancel() marks the id and the event is
 * dropped when it reaches the head. This keeps schedule/cancel O(log n)
 * without an indexed heap.
 */
class EventQueue
{
  public:
    /** Schedule @p fn at absolute time @p when; returns a cancel id. */
    EventId schedule(SimTime when, std::function<void()> fn);

    /**
     * Cancel a previously scheduled event.
     * @retval true the event had not fired and is now cancelled.
     */
    bool cancel(EventId id);

    /** True when no live (non-cancelled) events remain. */
    bool empty() const { return live_.empty(); }

    std::size_t size() const { return live_.size(); }

    /** Timestamp of the next live event. Queue must not be empty. */
    SimTime nextTime() const;

    /**
     * Pop the next live event without running it, so the driver can
     * advance the clock to the event's timestamp before executing the
     * callback (coroutines resumed by the callback must observe the
     * new time).
     */
    std::pair<SimTime, std::function<void()>> popNext();

  private:
    struct Entry {
        SimTime when;
        std::uint64_t seq;
        EventId id;
        std::function<void()> fn;
    };

    struct Later {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    /** Drop cancelled entries from the head. */
    void skipCancelled() const;

    mutable std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
    mutable std::unordered_set<EventId> cancelled_;
    std::unordered_set<EventId> live_;
    std::uint64_t nextSeq_ = 0;
    EventId nextId_ = 1;
};

} // namespace molecule::sim

#endif // MOLECULE_SIM_EVENT_QUEUE_HH
