/**
 * @file
 * Monotonic bump arena for per-simulation scratch storage.
 *
 * The obs/fault layers (and the event queue's timer wheel) need many
 * small, uniformly short-lived records per simulated event: span
 * records, invocation bookkeeping, wheel bucket blocks. Allocating each
 * from the global heap costs a malloc/free pair on the hot path and —
 * worse for reproducibility debugging — makes steady-state behavior
 * depend on the allocator. Arena replaces all of that with a pointer
 * bump into chunked slabs.
 *
 * Lifetime contract (see DESIGN.md §4d):
 *  - allocations live until reset() or destruction; there is no
 *    per-object free (deallocate is a no-op by design);
 *  - reset() rewinds to empty but *retains* the chunks, so a reused
 *    arena reaches zero-allocation steady state;
 *  - destructors are never run by the arena — only trivially
 *    destructible payloads (or containers that destroy elements
 *    themselves through ArenaAllocator) belong here;
 *  - nothing allocated from a simulation-owned arena may outlive that
 *    simulation. Exports that must survive (trace JSON, digests) copy
 *    out first.
 */

#ifndef MOLECULE_SIM_ARENA_HH
#define MOLECULE_SIM_ARENA_HH

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <vector>

namespace molecule::sim {

/**
 * Chunked monotonic allocator. Not thread-safe (simulations are
 * single-threaded; SweepRunner gives each lane its own Simulation and
 * therefore its own arenas).
 */
class Arena
{
  public:
    static constexpr std::size_t kDefaultChunkBytes = 64 * 1024;

    /** The first chunk is allocated lazily, so constructing a
     * Simulation (or EventQueue) that never touches the arena costs
     * nothing. */
    explicit Arena(std::size_t chunkBytes = kDefaultChunkBytes)
        : chunkBytes_(chunkBytes ? chunkBytes : kDefaultChunkBytes)
    {}

    Arena(const Arena &) = delete;
    Arena &operator=(const Arena &) = delete;

    /** Bump-allocate @p bytes with @p align; never returns nullptr. */
    void *
    allocate(std::size_t bytes,
             std::size_t align = alignof(std::max_align_t))
    {
        if (bytes == 0)
            bytes = 1;
        for (;;) {
            if (cur_ < chunks_.size()) {
                Chunk &c = chunks_[cur_];
                // Align the *address*, not the offset: operator new[]
                // only guarantees __STDCPP_DEFAULT_NEW_ALIGNMENT__ for
                // the chunk base, so over-aligned requests must pad
                // relative to where the chunk actually landed.
                const std::uintptr_t raw =
                    reinterpret_cast<std::uintptr_t>(c.data.get()) +
                    off_;
                const std::size_t base =
                    off_ + ((align - (raw & (align - 1))) & (align - 1));
                if (base + bytes <= c.cap) {
                    off_ = base + bytes;
                    used_ = base + bytes > used_ ? base + bytes : used_;
                    return c.data.get() + base;
                }
                // Current chunk exhausted (or too small for this
                // request): advance. A retained chunk that is large
                // enough gets reused; otherwise a fresh one is added.
                if (cur_ + 1 < chunks_.size() &&
                    chunks_[cur_ + 1].cap >= bytes + align) {
                    ++cur_;
                    off_ = 0;
                    continue;
                }
            }
            addChunk(bytes + align);
        }
    }

    /** Construct a T in the arena. T must be trivially destructible
     * (the arena never runs destructors on reset). */
    template <typename T, typename... Args>
    T *
    create(Args &&...args)
    {
        static_assert(std::is_trivially_destructible_v<T>,
                      "arena payloads must not need destructors");
        return ::new (allocate(sizeof(T), alignof(T)))
            T(std::forward<Args>(args)...);
    }

    /** Uninitialized array of T (trivially destructible). */
    template <typename T>
    T *
    allocateArray(std::size_t n)
    {
        static_assert(std::is_trivially_destructible_v<T>,
                      "arena payloads must not need destructors");
        return static_cast<T *>(allocate(sizeof(T) * n, alignof(T)));
    }

    /**
     * Rewind to empty, retaining every chunk for reuse. Everything
     * previously handed out is invalidated at once; callers must not
     * hold pointers across a reset.
     */
    void
    reset()
    {
        cur_ = 0;
        off_ = 0;
    }

    /** Total bytes reserved across chunks (diagnostics). */
    std::size_t
    capacityBytes() const
    {
        std::size_t total = 0;
        for (const Chunk &c : chunks_)
            total += c.cap;
        return total;
    }

    std::size_t chunkCount() const { return chunks_.size(); }

    /** High-water offset within the deepest chunk reached so far
     * (coarse usage signal for tests/diagnostics). */
    std::size_t highWaterOffset() const { return used_; }

  private:
    struct Chunk
    {
        std::unique_ptr<std::byte[]> data;
        std::size_t cap;
    };

    void
    addChunk(std::size_t atLeast)
    {
        const std::size_t cap =
            atLeast > chunkBytes_ ? atLeast : chunkBytes_;
        chunks_.push_back(
            Chunk{std::make_unique<std::byte[]>(cap), cap});
        cur_ = chunks_.size() - 1;
        off_ = 0;
    }

    std::vector<Chunk> chunks_;
    std::size_t chunkBytes_;
    std::size_t cur_ = 0;  // index of the chunk being bumped
    std::size_t off_ = 0;  // bump offset within chunks_[cur_]
    std::size_t used_ = 0; // high-water bump offset (diagnostics)
};

/**
 * std-compatible allocator over an Arena. deallocate is a no-op: the
 * memory comes back wholesale at Arena::reset(). Suitable for node
 * containers (std::map) whose churn would otherwise hit the heap per
 * insert/erase; erased nodes are *not* reused, which is the intended
 * trade — fault bookkeeping is small and bounded per run.
 */
template <typename T>
class ArenaAllocator
{
  public:
    using value_type = T;

    explicit ArenaAllocator(Arena &arena) noexcept : arena_(&arena) {}

    template <typename U>
    ArenaAllocator(const ArenaAllocator<U> &other) noexcept
        : arena_(other.arena())
    {}

    T *
    allocate(std::size_t n)
    {
        return static_cast<T *>(
            arena_->allocate(n * sizeof(T), alignof(T)));
    }

    void deallocate(T *, std::size_t) noexcept {}

    Arena *arena() const noexcept { return arena_; }

    template <typename U>
    bool
    operator==(const ArenaAllocator<U> &other) const noexcept
    {
        return arena_ == other.arena();
    }

  private:
    Arena *arena_;
};

} // namespace molecule::sim

#endif // MOLECULE_SIM_ARENA_HH
