#include "sim/sweep.hh"

namespace molecule::sim {

SweepRunner::SweepRunner(unsigned threads)
{
    if (threads == 0) {
        threads = std::thread::hardware_concurrency();
        if (threads == 0)
            threads = 1;
    }
    // The calling thread participates in every batch, so spawn one
    // fewer worker than the requested parallelism.
    workers_.reserve(threads - 1);
    for (unsigned i = 0; i + 1 < threads; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

SweepRunner::~SweepRunner()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    wake_.notify_all();
    for (auto &w : workers_)
        w.join();
}

void
SweepRunner::forEach(std::size_t count, // det:allow(std-function-in-sim)
                     const std::function<void(std::size_t)> &body)
{
    if (count == 0)
        return;
    Batch batch;
    batch.body = &body;
    batch.count = count;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        batch_ = &batch;
        ++batchSeq_;
    }
    wake_.notify_all();

    drain(batch); // the calling thread is one of the pool

    std::unique_lock<std::mutex> lock(mutex_);
    batchDone_.wait(lock, [&] {
        return batch.done.load(std::memory_order_acquire) == count;
    });
    // Unpublish, then wait for every worker to step out of drain():
    // `batch` lives on this stack frame and must outlive all readers.
    batch_ = nullptr;
    batchDone_.wait(lock, [&] { return activeDrains_ == 0; });
    lock.unlock();

    if (batch.error)
        std::rethrow_exception(batch.error);
}

void
SweepRunner::drain(Batch &batch)
{
    for (;;) {
        const std::size_t i =
            batch.next.fetch_add(1, std::memory_order_relaxed);
        if (i >= batch.count)
            return;
        try {
            (*batch.body)(i);
        } catch (...) {
            {
                std::lock_guard<std::mutex> lock(batch.errorMutex);
                if (!batch.error)
                    batch.error = std::current_exception();
            }
            // Short-circuit the replicas not yet started; the finished
            // count still has to reach `count`, so account for the
            // skipped tail here.
            const std::size_t first = batch.next.exchange(
                batch.count, std::memory_order_relaxed);
            if (first < batch.count) {
                batch.done.fetch_add(batch.count - first,
                                     std::memory_order_acq_rel);
            }
        }
        const std::size_t finished =
            1 + batch.done.fetch_add(1, std::memory_order_acq_rel);
        if (finished >= batch.count) {
            std::lock_guard<std::mutex> lock(mutex_);
            batchDone_.notify_all();
            return;
        }
    }
}

void
SweepRunner::workerLoop()
{
    std::uint64_t seenSeq = 0;
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
        wake_.wait(lock, [&] {
            return stopping_ ||
                   (batch_ != nullptr && batchSeq_ != seenSeq);
        });
        if (stopping_)
            return;
        seenSeq = batchSeq_;
        Batch *batch = batch_;
        ++activeDrains_;
        lock.unlock();
        drain(*batch);
        lock.lock();
        if (--activeDrains_ == 0)
            batchDone_.notify_all();
    }
}

} // namespace molecule::sim
