/**
 * @file
 * Coroutine synchronization primitives for simulated processes.
 *
 * SimEvent   - one-shot broadcast (trigger wakes all current waiters);
 * Semaphore  - counted resource (PU cores, FPGA regions);
 * Mailbox<T> - FIFO message queue with blocking receive and optional
 *              bounded capacity with blocking send (models FIFOs/queues).
 *
 * All wakeups are routed through the Simulation event queue at the
 * current instant, preserving deterministic ordering.
 */

#ifndef MOLECULE_SIM_SYNC_HH
#define MOLECULE_SIM_SYNC_HH

#include <coroutine>
#include <deque>
#include <limits>
#include <vector>

#include "sim/logging.hh"
#include "sim/simulation.hh"

namespace molecule::sim {

/**
 * One-shot broadcast event.
 *
 * wait() suspends until trigger() is called; waiters arriving after the
 * trigger resume immediately. reset() re-arms the event.
 */
class SimEvent
{
  public:
    explicit SimEvent(Simulation &sim) : sim_(sim) {}

    SimEvent(const SimEvent &) = delete;
    SimEvent &operator=(const SimEvent &) = delete;

    bool triggered() const { return triggered_; }

    /**
     * Wake every waiter (in arrival order) at the current instant.
     * One batched schedule: the waiters get consecutive sequence
     * numbers, so the firing order is identical to resuming them in a
     * loop — minus the per-waiter queue-entry overhead (fork/join
     * fan-outs like allOf and startup prewarm pools wake dozens at
     * once).
     */
    void
    trigger()
    {
        if (triggered_)
            return;
        triggered_ = true;
        sim_.scheduleResumeBatch(waiters_);
        waiters_.clear();
    }

    /** Re-arm a triggered event. Must not be called with waiters. */
    void
    reset()
    {
        MOLECULE_ASSERT(waiters_.empty(), "reset() with pending waiters");
        triggered_ = false;
    }

    auto
    wait()
    {
        struct Awaiter
        {
            SimEvent *event;

            bool await_ready() const noexcept { return event->triggered_; }

            void
            await_suspend(std::coroutine_handle<> h)
            {
                event->waiters_.push_back(h);
            }

            void await_resume() const noexcept {}
        };
        return Awaiter{this};
    }

  private:
    Simulation &sim_;
    bool triggered_ = false;
    /** Contiguous so trigger() can hand the whole set to the batch
     * scheduler as one span. */
    std::vector<std::coroutine_handle<>> waiters_;
};

/**
 * Counting semaphore; acquire order is FIFO.
 *
 * Used for core occupancy (a PU with N cores is a Semaphore(N) and a
 * compute burst is acquire/delay/release) and any other contended
 * hardware resource.
 */
class Semaphore
{
  public:
    Semaphore(Simulation &sim, std::size_t initial)
        : sim_(sim), count_(initial)
    {}

    Semaphore(const Semaphore &) = delete;
    Semaphore &operator=(const Semaphore &) = delete;

    std::size_t available() const { return count_; }

    std::size_t waiting() const { return waiters_.size(); }

    auto
    acquire()
    {
        struct Awaiter
        {
            Semaphore *sem;

            bool
            await_ready() noexcept
            {
                // Respect FIFO fairness: arrive behind existing waiters.
                if (sem->waiters_.empty() && sem->count_ > 0) {
                    --sem->count_;
                    return true;
                }
                return false;
            }

            void
            await_suspend(std::coroutine_handle<> h)
            {
                sem->waiters_.push_back(h);
            }

            void await_resume() const noexcept {}
        };
        return Awaiter{this};
    }

    void
    release()
    {
        // Hand the unit directly to the oldest waiter (if any) so a
        // late-arriving acquire cannot steal it between wakeup and
        // resumption; otherwise return it to the pool.
        if (!waiters_.empty()) {
            auto h = waiters_.front();
            waiters_.pop_front();
            sim_.scheduleResume(h);
        } else {
            ++count_;
        }
    }

  private:
    Simulation &sim_;
    std::size_t count_;
    std::deque<std::coroutine_handle<>> waiters_;
};

/**
 * RAII guard running acquire/release around a scope.
 * Usage: `co_await sem.acquire(); SemGuard g(sem);`
 */
class SemGuard
{
  public:
    explicit SemGuard(Semaphore &sem) : sem_(&sem) {}

    SemGuard(const SemGuard &) = delete;
    SemGuard &operator=(const SemGuard &) = delete;

    ~SemGuard()
    {
        if (sem_)
            sem_->release();
    }

  private:
    Semaphore *sem_;
};

/**
 * FIFO message queue between simulated processes.
 *
 * get() blocks until a message is available; put() blocks while the
 * queue is at capacity (default: unbounded). Message transport latency
 * is not modelled here — callers add link/syscall costs explicitly so
 * the cost model stays visible at the protocol layer.
 */
template <typename T>
class Mailbox
{
  public:
    explicit Mailbox(Simulation &sim,
                     std::size_t capacity =
                         std::numeric_limits<std::size_t>::max())
        : sim_(sim), capacity_(capacity)
    {}

    Mailbox(const Mailbox &) = delete;
    Mailbox &operator=(const Mailbox &) = delete;

    std::size_t size() const { return items_.size(); }

    bool empty() const { return items_.empty(); }

    /** Receivers currently blocked in get() (fault poisoning: a
     * crashed producer pushes one sentinel per waiter so nobody
     * hangs). */
    std::size_t waitingGetters() const { return getters_.size(); }

    /** Non-blocking send. @retval false the queue was full. */
    bool
    tryPut(T item)
    {
        if (items_.size() >= capacity_)
            return false;
        enqueue(std::move(item));
        return true;
    }

    /**
     * Awaiter for a blocking send. Owns the item: when the queue is
     * full the item is handed over at wake time by the consumer side
     * (exact-capacity handover, no wakeup race). Non-coroutine by
     * design — see the GCC 12 note in task.hh.
     */
    class PutAwaiter
    {
      public:
        PutAwaiter(Mailbox *box, T item)
            : box_(box), item_(std::move(item))
        {}

        bool
        await_ready()
        {
            if (box_->items_.size() < box_->capacity_ &&
                box_->putters_.empty()) {
                box_->enqueue(std::move(item_));
                return true;
            }
            return false;
        }

        void
        await_suspend(std::coroutine_handle<> h)
        {
            box_->putters_.push_back(PendingPut{h, this});
        }

        void await_resume() const noexcept {}

      private:
        friend class Mailbox;

        Mailbox *box_;
        T item_;
    };

    /** Blocking send: waits for space, then enqueues. */
    PutAwaiter
    put(T item)
    {
        return PutAwaiter(this, std::move(item));
    }

    /**
     * Fault path: deliver one copy of @p sentinel to every receiver
     * currently blocked in get(), waking them in one batch (arrival
     * order — the same firing order as tryPut once per waiter, since
     * a blocked getter implies an empty queue). Used by poisoned
     * FIFOs so no reader hangs when its producer dies.
     * @return number of getters poisoned.
     */
    std::size_t
    poisonGetters(const T &sentinel)
    {
        if (getters_.empty())
            return 0;
        const std::size_t n = getters_.size();
        for (std::size_t i = 0; i < n; ++i)
            items_.push_back(sentinel);
        wakeBatch_.assign(getters_.begin(), getters_.end());
        getters_.clear();
        sim_.scheduleResumeBatch(wakeBatch_);
        wakeBatch_.clear();
        return n;
    }

    /** Blocking receive: waits for a message, dequeues and returns it. */
    Task<T>
    get()
    {
        while (items_.empty()) {
            ItemWait waiter{this};
            co_await waiter;
        }
        T item = std::move(items_.front());
        items_.pop_front();
        drainOnePutter();
        co_return item;
    }

  private:
    struct PendingPut
    {
        std::coroutine_handle<> handle;
        PutAwaiter *awaiter;
    };

    struct ItemWait
    {
        Mailbox *box;

        bool await_ready() const noexcept { return !box->items_.empty(); }

        void
        await_suspend(std::coroutine_handle<> h)
        {
            box->getters_.push_back(h);
        }

        void await_resume() const noexcept {}
    };

    void
    enqueue(T item)
    {
        items_.push_back(std::move(item));
        if (!getters_.empty()) {
            auto h = getters_.front();
            getters_.pop_front();
            sim_.scheduleResume(h);
        }
    }

    /**
     * A slot freed up: move the oldest blocked putter's item into the
     * queue *now* (exact capacity, FIFO order) and wake it.
     */
    void
    drainOnePutter()
    {
        if (!putters_.empty()) {
            PendingPut p = putters_.front();
            putters_.pop_front();
            enqueue(std::move(p.awaiter->item_));
            sim_.scheduleResume(p.handle);
        }
    }

    Simulation &sim_;
    std::size_t capacity_;
    std::deque<T> items_;
    std::deque<std::coroutine_handle<>> getters_;
    std::deque<PendingPut> putters_;
    /** Scratch for poisonGetters' batched wakeup (deque storage is
     * not contiguous); retained so repeated poisons do not allocate. */
    std::vector<std::coroutine_handle<>> wakeBatch_;
};

namespace detail {

/** Run one task and count down toward the join event. */
inline Task<>
runAndCount(Task<> task, int *remaining, SimEvent *done)
{
    co_await std::move(task);
    if (--*remaining == 0)
        done->trigger();
}

} // namespace detail

/**
 * Await the completion of every task in @p tasks (fork/join). Tasks
 * run concurrently in simulated time.
 */
inline Task<>
allOf(Simulation &sim, std::vector<Task<>> tasks)
{
    if (tasks.empty())
        co_return;
    int remaining = int(tasks.size());
    SimEvent done(sim);
    for (auto &t : tasks)
        sim.spawn(detail::runAndCount(std::move(t), &remaining, &done));
    co_await done.wait();
}

} // namespace molecule::sim

#endif // MOLECULE_SIM_SYNC_HH
