/**
 * @file
 * Measurement collection: counters, summaries and sample histograms.
 *
 * Experiments record per-invocation latencies into Histogram objects and
 * report percentiles like the paper's harness (avg/50/75/90/95/99).
 */

#ifndef MOLECULE_SIM_STATS_HH
#define MOLECULE_SIM_STATS_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sim/time.hh"

namespace molecule::sim {

/** Monotonic event counter. */
class Counter
{
  public:
    void inc(std::int64_t by = 1) { value_ += by; }

    std::int64_t value() const { return value_; }

    void reset() { value_ = 0; }

  private:
    std::int64_t value_ = 0;
};

/**
 * Exact-sample distribution.
 *
 * Stores every sample (experiments are small: 10^2..10^5 samples) so
 * percentiles are exact rather than bucketed.
 */
class Histogram
{
  public:
    void add(double v);

    /** Convenience for latency samples. */
    void addTime(SimTime t) { add(t.toMicroseconds()); }

    std::size_t count() const { return samples_.size(); }

    double mean() const;
    double min() const;
    double max() const;
    double stddev() const;

    /** Exact percentile via nearest-rank; @p p in [0, 100]. */
    double percentile(double p) const;

    void clear();

    const std::vector<double> &samples() const { return samples_; }

    /** "avg p50 p75 p90 p95 p99" line used by bench output. */
    std::string summaryLine() const;

  private:
    /** Sort lazily: adds are hot, queries are rare. */
    void ensureSorted() const;

    mutable std::vector<double> samples_;
    mutable bool sorted_ = true;
    double sum_ = 0.0;
    double sumSq_ = 0.0;
};

/**
 * Order-sensitive 64-bit digest (FNV-1a) over a stream of values.
 *
 * The golden-trace determinism tests fold every latency sample of a
 * scenario into a Fingerprint and compare digests across runs, seeds
 * and kernel rewrites: identical seed => identical digest, bit for bit.
 */
class Fingerprint
{
  public:
    /** Fold one 64-bit value into the digest (order matters). */
    void mix(std::uint64_t v);

    void mixTime(SimTime t) { mix(static_cast<std::uint64_t>(t.raw())); }

    void mixDouble(double v);

    /**
     * Fold every sample of a histogram. Uses the histogram's current
     * sample order, which percentile queries may have sorted — mix
     * before querying (or query in a fixed order) for stable digests.
     */
    void mixHistogram(const Histogram &h);

    std::uint64_t digest() const { return state_; }

  private:
    static constexpr std::uint64_t kOffsetBasis = 14695981039346656037ULL;

    std::uint64_t state_ = kOffsetBasis;
};

/**
 * Named registry so modules can publish stats without coupling to the
 * experiment harness.
 */
class StatRegistry
{
  public:
    Counter &counter(const std::string &name) { return counters_[name]; }

    Histogram &histogram(const std::string &name) { return hists_[name]; }

    const std::map<std::string, Counter> &counters() const
    {
        return counters_;
    }

    const std::map<std::string, Histogram> &histograms() const
    {
        return hists_;
    }

    void clear();

  private:
    std::map<std::string, Counter> counters_;
    std::map<std::string, Histogram> hists_;
};

} // namespace molecule::sim

#endif // MOLECULE_SIM_STATS_HH
