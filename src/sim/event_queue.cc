#include "sim/event_queue.hh"

#include "sim/logging.hh"

namespace molecule::sim {

EventId
EventQueue::schedule(SimTime when, std::function<void()> fn)
{
    EventId id = nextId_++;
    heap_.push(Entry{when, nextSeq_++, id, std::move(fn)});
    live_.insert(id);
    return id;
}

bool
EventQueue::cancel(EventId id)
{
    // Only events that are still pending may be cancelled; ids of fired
    // or already-cancelled events are rejected so liveCount stays exact.
    if (live_.erase(id) == 0)
        return false;
    cancelled_.insert(id);
    return true;
}

void
EventQueue::skipCancelled() const
{
    while (!heap_.empty()) {
        auto found = cancelled_.find(heap_.top().id);
        if (found == cancelled_.end())
            break;
        cancelled_.erase(found);
        heap_.pop();
    }
}

SimTime
EventQueue::nextTime() const
{
    skipCancelled();
    MOLECULE_ASSERT(!heap_.empty(), "nextTime() on empty event queue");
    return heap_.top().when;
}

std::pair<SimTime, std::function<void()>>
EventQueue::popNext()
{
    skipCancelled();
    MOLECULE_ASSERT(!heap_.empty(), "popNext() on empty event queue");
    Entry entry = std::move(const_cast<Entry &>(heap_.top()));
    heap_.pop();
    live_.erase(entry.id);
    return {entry.when, std::move(entry.fn)};
}

} // namespace molecule::sim
