#include "sim/event_queue.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace molecule::sim {

namespace {

/** 4-ary heap layout: children of i at 4i+1..4i+4, parent (i-1)/4. */
constexpr std::size_t kArity = 4;

} // namespace

void
EventQueue::place(const Node &n, Slot &s)
{
    // Tiny queues stay heap-only: a handful of events sift in a couple
    // of compares, and keeping the wheel cold makes an idle/shallow
    // simulation cost nothing extra. Past the threshold, short- and
    // medium-delay events park in O(1); the wheel refuses events
    // behind the drained frontier or beyond its horizon.
    if (live_ > kDirectHeapThreshold && wheel_.insert(n)) {
        s.nextFree = kInWheel;
        return;
    }
    s.nextFree = kInHeap;
    heap_.push_back(n);
    siftUp(heap_.size() - 1);
}

EventId
EventQueue::schedule(SimTime when, InlineCallback fn)
{
    const std::uint32_t slot = acquireSlot();
    Slot &s = slotAt(slot);
    s.fn = std::move(fn);
    s.seq = nextSeq_++;
    ++live_;
    place(Node{when.raw(), s.seq, slot}, s);
    return (EventId(s.generation) << 32) | slot;
}

EventId
EventQueue::schedule(SimTime when, std::coroutine_handle<> h)
{
    const std::uint32_t slot = acquireSlot();
    Slot &s = slotAt(slot);
    s.fn.assignCoroutine(h);
    s.seq = nextSeq_++;
    ++live_;
    place(Node{when.raw(), s.seq, slot}, s);
    return (EventId(s.generation) << 32) | slot;
}

void
EventQueue::scheduleBatch(std::span<BatchEvent> events,
                          EventId *idsOut)
{
    for (BatchEvent &e : events) {
        const EventId id = schedule(e.when, std::move(e.fn));
        if (idsOut != nullptr)
            *idsOut++ = id;
    }
}

void
EventQueue::scheduleBatch(SimTime when,
                          std::span<const std::coroutine_handle<>> hs)
{
    for (const std::coroutine_handle<> h : hs)
        schedule(when, h);
}

bool
EventQueue::cancel(EventId id)
{
    // Only events that are still pending may be cancelled; ids of fired
    // or already-cancelled events fail the generation check (recycling
    // a slot bumps its generation) so size() stays exact.
    const std::uint32_t slot = std::uint32_t(id & 0xffffffffu);
    const std::uint32_t gen = std::uint32_t(id >> 32);
    if (slot >= slotCount_ || slotAt(slot).generation != gen ||
        slotAt(slot).seq == 0)
        return false;
    Slot &s = slotAt(slot);
    const std::uint32_t side = s.nextFree;
    s.fn.reset();
    releaseSlot(slot); // clears seq: the parked node is now stale
    --live_;
    if (side == kInHeap) {
        ++staleHeap_;
        // The head can only have gone stale if it is this very node;
        // keep it live so accessors never see staleness there.
        if (!heap_.empty() && heap_.front().slot == slot)
            skipStale();
        if (staleHeap_ > std::max(live_, kCompactSlack))
            compact();
    } else if (side == kInWheel) {
        ++staleWheel_;
        // Wheel staleness is invisible to pops (stale nodes are
        // dropped for free during drains); sweeping only bounds
        // memory, so it can be lazier than heap compaction.
        if (staleWheel_ > std::max(4 * live_, kWheelSlack))
            staleWheel_ -= wheel_.sweep(
                [this](const Node &n) { return !stale(n); });
    }
    // side == kInRun: the run entry is skipped at the head for free,
    // and its storage is recycled at the next window drain.
    return true;
}

const EventQueue::Node *
EventQueue::minHead() const
{
    const Node *h =
        runPos_ < run_.size() ? &run_[runPos_] : nullptr;
    if (!heap_.empty() &&
        (h == nullptr || before(heap_.front(), *h)))
        h = &heap_.front();
    return h;
}

void
EventQueue::sortNodes(std::vector<Node> &nodes)
{
    const std::size_t n = nodes.size();
    if (n < 2)
        return;
    if (n <= 32) {
        // Insertion sort: adaptive, allocation-free, and the drained
        // buckets of a time-ordered schedule arrive already sorted.
        for (std::size_t i = 1; i < n; ++i) {
            const Node v = nodes[i];
            std::size_t j = i;
            while (j > 0 && before(v, nodes[j - 1])) {
                nodes[j] = nodes[j - 1];
                --j;
            }
            nodes[j] = v;
        }
        return;
    }
    if (std::is_sorted(nodes.begin(), nodes.end(), &before))
        return;
    std::sort(nodes.begin(), nodes.end(), &before);
}

void
EventQueue::settle()
{
    skipStale();
    while (runPos_ < run_.size() && stale(run_[runPos_]))
        ++runPos_;
    for (;;) {
        if (wheel_.empty())
            return;
        const Node *head = minHead();
        // Fast path: hint() is a lower bound on every parked event's
        // window start, so a strictly earlier live head may fire
        // without scanning the wheel. (Strict <: an equal-time wheel
        // event could carry a smaller sequence number.)
        if (head != nullptr && head->when < wheel_.hint())
            return;
        const TimerWheel::Earliest at = wheel_.locate();
        if (head != nullptr && head->when < at.ws)
            return;
        scratch_.clear();
        wheel_.drainBucket(at, scratch_);
        if (at.level == 0) {
            // No live head precedes this window, and run entries all
            // sit behind the frontier — the run is fully consumed
            // here, so its storage recycles into the next window.
            run_.clear();
            runPos_ = 0;
            std::size_t keep = 0;
            for (const Node &n : scratch_) {
                if (stale(n)) {
                    --staleWheel_;
                    continue;
                }
                slotAt(n.slot).nextFree = kInRun;
                scratch_[keep++] = n;
            }
            scratch_.resize(keep);
            sortNodes(scratch_);
            run_.swap(scratch_);
            const std::int64_t cap =
                at.ws +
                (std::int64_t(1) << TimerWheel::kWindowShift);
            wheel_.advanceBase(cap);
            wheel_.raiseHint(cap);
        } else {
            // Cascade: the coarse window opens; its events re-insert
            // one level finer (their window starts at or after the
            // new frontier, so each lands exactly one level down).
            wheel_.advanceBase(at.ws);
            for (const Node &n : scratch_) {
                if (stale(n)) {
                    --staleWheel_;
                    continue;
                }
                if (!wheel_.insert(n)) {
                    slotAt(n.slot).nextFree = kInHeap;
                    heap_.push_back(n);
                    siftUp(heap_.size() - 1);
                }
            }
        }
    }
}

SimTime
EventQueue::nextTime() const
{
    MOLECULE_ASSERT(live_ > 0, "nextTime() on empty event queue");
    // Logically const: settling reshuffles internal storage but never
    // changes the observable event sequence.
    const_cast<EventQueue *>(this)->settle();
    const Node *head = minHead();
    MOLECULE_ASSERT(head != nullptr, "settled queue lost its head");
    return SimTime(head->when);
}

std::uint64_t
EventQueue::nextEventSeq() const
{
    MOLECULE_ASSERT(live_ > 0, "nextEventSeq() on empty event queue");
    const_cast<EventQueue *>(this)->settle();
    const Node *head = minHead();
    MOLECULE_ASSERT(head != nullptr, "settled queue lost its head");
    return head->seq;
}

std::uint64_t
EventQueue::seqOfEvent(EventId id) const
{
    const std::uint32_t slot = std::uint32_t(id & 0xffffffffu);
    const std::uint32_t gen = std::uint32_t(id >> 32);
    if (slot >= slotCount_ || slotAt(slot).generation != gen)
        return 0;
    return slotAt(slot).seq;
}

std::pair<SimTime, InlineCallback>
EventQueue::popNext()
{
    MOLECULE_ASSERT(live_ > 0, "popNext() on empty event queue");
    settle();
    Node top;
    if (runPos_ < run_.size() &&
        (heap_.empty() || before(run_[runPos_], heap_.front()))) {
        top = run_[runPos_++];
    } else {
        top = heap_.front();
        const Node last = heap_.back();
        heap_.pop_back();
        if (!heap_.empty()) {
            heap_.front() = last;
            siftDown(0);
        }
        skipStale();
    }
    InlineCallback fn = std::move(slotAt(top.slot).fn);
    releaseSlot(top.slot);
    --live_;
    return {SimTime(top.when), std::move(fn)};
}

void
EventQueue::fireNext()
{
    MOLECULE_ASSERT(live_ > 0, "fireNext() on empty event queue");
    settle();
    Node top;
    if (runPos_ < run_.size() &&
        (heap_.empty() || before(run_[runPos_], heap_.front()))) {
        top = run_[runPos_++];
    } else {
        top = heap_.front();
        const Node last = heap_.back();
        heap_.pop_back();
        if (!heap_.empty()) {
            heap_.front() = last;
            siftDown(0);
        }
        skipStale();
    }
    --live_;
    // The event is out of the queue; invalidate its id (a callback
    // cancelling the event that is firing must get `false`), run the
    // callback from its slot, and only then recycle the slot, so a
    // same-slot reschedule from inside the callback cannot clobber
    // the running callable.
    Slot &s = slotAt(top.slot);
    invalidateSlot(s);
    s.fn();
    s.fn.reset();
    freeSlot(top.slot);
}

std::size_t
EventQueue::drain(SimTime &clock, SimTime deadline,
                  std::size_t maxEvents)
{
    std::size_t fired = 0;
    while (fired < maxEvents && live_ > 0) {
        settle();
        Node top;
        const bool fromRun =
            runPos_ < run_.size() &&
            (heap_.empty() || before(run_[runPos_], heap_.front()));
        top = fromRun ? run_[runPos_] : heap_.front();
        if (top.when > deadline.raw())
            break;
        if (fromRun) {
            ++runPos_;
        } else {
            const Node last = heap_.back();
            heap_.pop_back();
            if (!heap_.empty()) {
                heap_.front() = last;
                siftDown(0);
            }
            skipStale();
        }
        --live_;
        // The clock must advance before the callback runs so resumed
        // coroutines observe the firing time.
        clock = SimTime(top.when);
        Slot &s = slotAt(top.slot);
        invalidateSlot(s);
        s.fn();
        s.fn.reset();
        freeSlot(top.slot);
        ++fired;
    }
    return fired;
}

void
EventQueue::skipStale()
{
    while (!heap_.empty() && stale(heap_.front())) {
        --staleHeap_;
        const Node last = heap_.back();
        heap_.pop_back();
        if (heap_.empty())
            break;
        heap_.front() = last;
        siftDown(0);
    }
}

void
EventQueue::compact()
{
    // Partition out stale nodes, then heapify bottom-up: O(heap size),
    // amortized against the cancels that created the staleness.
    std::size_t kept = 0;
    for (const Node &n : heap_) {
        if (!stale(n))
            heap_[kept++] = n;
    }
    heap_.resize(kept);
    staleHeap_ = 0;
    if (kept < 2)
        return;
    for (std::size_t i = (kept - 2) / kArity + 1; i-- > 0;)
        siftDown(i);
}

void
EventQueue::siftUp(std::size_t pos)
{
    const Node n = heap_[pos];
    while (pos > 0) {
        const std::size_t parent = (pos - 1) / kArity;
        if (!before(n, heap_[parent]))
            break;
        heap_[pos] = heap_[parent];
        pos = parent;
    }
    heap_[pos] = n;
}

void
EventQueue::siftDown(std::size_t pos)
{
    const Node n = heap_[pos];
    const std::size_t count = heap_.size();
    for (;;) {
        const std::size_t first = pos * kArity + 1;
        if (first >= count)
            break;
        std::size_t best = first;
        const std::size_t last = std::min(first + kArity, count);
        for (std::size_t c = first + 1; c < last; ++c) {
            if (before(heap_[c], heap_[best]))
                best = c;
        }
        if (!before(heap_[best], n))
            break;
        heap_[pos] = heap_[best];
        pos = best;
    }
    heap_[pos] = n;
}

std::uint32_t
EventQueue::growSlot()
{
    MOLECULE_ASSERT(slotCount_ < kInRun, "event slab exhausted");
    if (slotCount_ == chunks_.size() * kChunkSize)
        chunks_.push_back(std::make_unique<Slot[]>(kChunkSize));
    return std::uint32_t(slotCount_++);
}

void
EventQueue::invalidateSlot(Slot &s)
{
    s.seq = 0; // stale marker: parked nodes pointing here are dead
    ++s.generation;
    // Generation 0 would collide with never-issued id 0 after a wrap.
    if (s.generation == 0)
        s.generation = 1;
}

void
EventQueue::freeSlot(std::uint32_t slot)
{
    Slot &s = slotAt(slot);
    s.nextFree = freeHead_;
    freeHead_ = slot;
}

void
EventQueue::releaseSlot(std::uint32_t slot)
{
    invalidateSlot(slotAt(slot));
    freeSlot(slot);
}

} // namespace molecule::sim
