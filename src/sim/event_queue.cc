#include "sim/event_queue.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace molecule::sim {

namespace {

/** 4-ary heap layout: children of i at 4i+1..4i+4, parent (i-1)/4. */
constexpr std::size_t kArity = 4;

} // namespace

EventId
EventQueue::schedule(SimTime when, InlineCallback fn)
{
    const std::uint32_t slot = acquireSlot();
    Slot &s = slotAt(slot);
    s.fn = std::move(fn);
    s.seq = nextSeq_++;
    heap_.push_back(Node{when.raw(), s.seq, slot});
    siftUp(heap_.size() - 1);
    ++live_;
    return (EventId(s.generation) << 32) | slot;
}

EventId
EventQueue::schedule(SimTime when, std::coroutine_handle<> h)
{
    const std::uint32_t slot = acquireSlot();
    Slot &s = slotAt(slot);
    s.fn.assignCoroutine(h);
    s.seq = nextSeq_++;
    heap_.push_back(Node{when.raw(), s.seq, slot});
    siftUp(heap_.size() - 1);
    ++live_;
    return (EventId(s.generation) << 32) | slot;
}

bool
EventQueue::cancel(EventId id)
{
    // Only events that are still pending may be cancelled; ids of fired
    // or already-cancelled events fail the generation check (recycling
    // a slot bumps its generation) so size() stays exact.
    const std::uint32_t slot = std::uint32_t(id & 0xffffffffu);
    const std::uint32_t gen = std::uint32_t(id >> 32);
    if (slot >= slotCount_ || slotAt(slot).generation != gen ||
        slotAt(slot).seq == 0)
        return false;
    slotAt(slot).fn.reset();
    releaseSlot(slot); // clears seq: the heap node is now stale
    --live_;
    // Keep the head live so nextTime()/popNext() never see staleness,
    // and bound stale-node memory under heavy cancel churn.
    skipStale();
    if (heap_.size() - live_ > std::max(live_, kCompactSlack))
        compact();
    return true;
}

SimTime
EventQueue::nextTime() const
{
    MOLECULE_ASSERT(live_ > 0, "nextTime() on empty event queue");
    return SimTime(heap_.front().when);
}

std::uint64_t
EventQueue::nextEventSeq() const
{
    MOLECULE_ASSERT(live_ > 0, "nextEventSeq() on empty event queue");
    return heap_.front().seq;
}

std::uint64_t
EventQueue::seqOfEvent(EventId id) const
{
    const std::uint32_t slot = std::uint32_t(id & 0xffffffffu);
    const std::uint32_t gen = std::uint32_t(id >> 32);
    if (slot >= slotCount_ || slotAt(slot).generation != gen)
        return 0;
    return slotAt(slot).seq;
}

std::pair<SimTime, InlineCallback>
EventQueue::popNext()
{
    MOLECULE_ASSERT(live_ > 0, "popNext() on empty event queue");
    const Node top = heap_.front();
    InlineCallback fn = std::move(slotAt(top.slot).fn);
    releaseSlot(top.slot);
    --live_;
    // Remove the root, then restore the live-head invariant.
    const Node last = heap_.back();
    heap_.pop_back();
    if (!heap_.empty()) {
        heap_.front() = last;
        siftDown(0);
    }
    skipStale();
    return {SimTime(top.when), std::move(fn)};
}

void
EventQueue::fireNext()
{
    MOLECULE_ASSERT(live_ > 0, "fireNext() on empty event queue");
    const Node top = heap_.front();
    --live_;
    const Node last = heap_.back();
    heap_.pop_back();
    if (!heap_.empty()) {
        heap_.front() = last;
        siftDown(0);
    }
    skipStale();
    // The event is out of the queue; invalidate its id (a callback
    // cancelling the event that is firing must get `false`), run the
    // callback from its slot, and only then recycle the slot, so a
    // same-slot reschedule from inside the callback cannot clobber
    // the running callable.
    Slot &s = slotAt(top.slot);
    invalidateSlot(s);
    s.fn();
    s.fn.reset();
    freeSlot(top.slot);
}

void
EventQueue::skipStale()
{
    while (!heap_.empty() && stale(heap_.front())) {
        const Node last = heap_.back();
        heap_.pop_back();
        if (heap_.empty())
            break;
        heap_.front() = last;
        siftDown(0);
    }
}

void
EventQueue::compact()
{
    // Partition out stale nodes, then heapify bottom-up: O(heap size),
    // amortized against the cancels that created the staleness.
    std::size_t kept = 0;
    for (const Node &n : heap_) {
        if (!stale(n))
            heap_[kept++] = n;
    }
    heap_.resize(kept);
    if (kept < 2)
        return;
    for (std::size_t i = (kept - 2) / kArity + 1; i-- > 0;)
        siftDown(i);
}

void
EventQueue::siftUp(std::size_t pos)
{
    const Node n = heap_[pos];
    while (pos > 0) {
        const std::size_t parent = (pos - 1) / kArity;
        if (!before(n, heap_[parent]))
            break;
        heap_[pos] = heap_[parent];
        pos = parent;
    }
    heap_[pos] = n;
}

void
EventQueue::siftDown(std::size_t pos)
{
    const Node n = heap_[pos];
    const std::size_t count = heap_.size();
    for (;;) {
        const std::size_t first = pos * kArity + 1;
        if (first >= count)
            break;
        std::size_t best = first;
        const std::size_t last = std::min(first + kArity, count);
        for (std::size_t c = first + 1; c < last; ++c) {
            if (before(heap_[c], heap_[best]))
                best = c;
        }
        if (!before(heap_[best], n))
            break;
        heap_[pos] = heap_[best];
        pos = best;
    }
    heap_[pos] = n;
}

std::uint32_t
EventQueue::acquireSlot()
{
    if (freeHead_ != kNoSlot) {
        const std::uint32_t slot = freeHead_;
        freeHead_ = slotAt(slot).nextFree;
        slotAt(slot).nextFree = kNoSlot;
        return slot;
    }
    MOLECULE_ASSERT(slotCount_ < kNoSlot, "event slab exhausted");
    if (slotCount_ == chunks_.size() * kChunkSize)
        chunks_.push_back(std::make_unique<Slot[]>(kChunkSize));
    return std::uint32_t(slotCount_++);
}

void
EventQueue::invalidateSlot(Slot &s)
{
    s.seq = 0; // stale marker: heap nodes pointing here are dead
    ++s.generation;
    // Generation 0 would collide with never-issued id 0 after a wrap.
    if (s.generation == 0)
        s.generation = 1;
}

void
EventQueue::freeSlot(std::uint32_t slot)
{
    Slot &s = slotAt(slot);
    s.nextFree = freeHead_;
    freeHead_ = slot;
}

void
EventQueue::releaseSlot(std::uint32_t slot)
{
    invalidateSlot(slotAt(slot));
    freeSlot(slot);
}

} // namespace molecule::sim
