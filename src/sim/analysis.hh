/**
 * @file
 * Determinism analysis: the sim-time conflict detector.
 *
 * The DES orders same-timestamp events solely by schedule sequence
 * (FIFO tie-break, event_queue.hh). That makes runs bit-reproducible,
 * but it also means any pair of same-instant accesses to one piece of
 * model state — where at least one access is a write, and both events
 * were scheduled *before* that instant — produces a result that depends
 * only on the fragile tie-break: reordering the schedule calls (a
 * refactor, a container change) silently changes simulated results.
 *
 * This header provides the runtime half of the determinism wall:
 *
 *  - Tracked<T>: an accessor wrapper for shared model state. Reads and
 *    writes are recorded (sim time, executing event, access kind,
 *    source site) into the active AccessLog; with analysis compiled
 *    out, Tracked<T> collapses to a bare T with inline passthrough
 *    accessors — zero overhead.
 *  - AccessLog: a ring buffer of access records owned by a Simulation,
 *    plus the conflict analysis that pairs up same-timestamp accesses
 *    after a run.
 *
 * Causality filter: an event scheduled *at* the current instant (zero
 * delay, wakeup via scheduleResume) is causally ordered behind the
 * event that scheduled it, so its accesses cannot race with its
 * scheduler's — those pairs are suppressed. Only events that were both
 * scheduled at an earlier instant (independent timers landing on the
 * same tick) are reported.
 *
 * Build gate: MOLECULE_DETERMINISM_ANALYSIS (CMake option of the same
 * name, default ON). Runtime gate: Simulation::enableConflictTracking;
 * when off the per-event cost is one branch.
 */

#ifndef MOLECULE_SIM_ANALYSIS_HH
#define MOLECULE_SIM_ANALYSIS_HH

#ifndef MOLECULE_DETERMINISM_ANALYSIS
#define MOLECULE_DETERMINISM_ANALYSIS 1
#endif

#include <cstdint>
#include <utility>

#if MOLECULE_DETERMINISM_ANALYSIS
#include <map>
#include <source_location>
#include <string>
#include <vector>
#endif

namespace molecule::sim::analysis {

/** Kind of a tracked access. */
enum class AccessKind : std::uint8_t { Read, Write };

#if MOLECULE_DETERMINISM_ANALYSIS

const char *toString(AccessKind k);

/** One recorded access to a tracked cell. */
struct AccessRecord
{
    /** Identity of the tracked cell (address of the Tracked<T>). */
    const void *cell = nullptr;
    /** Human-readable cell name given at Tracked construction. */
    const char *cellName = "?";
    /** Sim time of the access (fire time of the executing event). */
    std::int64_t when = 0;
    /** Schedule sequence of the executing event (tie-break key). */
    std::uint64_t eventSeq = 0;
    /** Sim time at which the executing event was scheduled. */
    std::int64_t schedAt = 0;
    AccessKind kind = AccessKind::Read;
    /** @name Source site of the access (std::source_location). */
    ///@{
    const char *file = "?";
    const char *function = "?";
    std::uint32_t line = 0;
    ///@}
};

/**
 * A pair of same-timestamp accesses to the same cell whose order is
 * decided only by the schedule-sequence tie-break.
 */
struct Conflict
{
    const char *cellName = "?";
    std::int64_t when = 0;
    AccessRecord a; // lower event seq (fires first)
    AccessRecord b; // higher event seq
};

/** Multi-line human-readable rendering of one conflict. */
std::string describe(const Conflict &c);

/**
 * Ring buffer of access records plus per-event context.
 *
 * One AccessLog belongs to one Simulation. While the simulation fires
 * an event the log is installed as the calling thread's *current* log
 * (AccessLog::Scope), which is what Tracked<T> accessors consult — so
 * parallel SweepRunner replicas each record into their own log.
 */
class AccessLog
{
  public:
    static constexpr std::size_t kDefaultCapacity = std::size_t(1) << 16;

    /** Conflicts reported per analysis (bounds the O(n^2) pair scan). */
    static constexpr std::size_t kMaxConflicts = 1024;

    explicit AccessLog(std::size_t capacity = kDefaultCapacity);

    AccessLog(const AccessLog &) = delete;
    AccessLog &operator=(const AccessLog &) = delete;

    /** @name Event-lifecycle hooks (called by Simulation) */
    ///@{

    /** Event @p seq was scheduled at sim time @p at. */
    void noteScheduled(std::uint64_t seq, std::int64_t at);

    /** Event @p seq was cancelled before firing. */
    void dropScheduled(std::uint64_t seq);

    /** Event @p seq starts firing at sim time @p when. */
    void beginEvent(std::int64_t when, std::uint64_t seq);
    ///@}

    /** Record one access under the current event context. */
    void record(const void *cell, const char *cellName, AccessKind kind,
                const std::source_location &loc);

    /** @name Post-run analysis */
    ///@{

    /**
     * Pair up same-timestamp accesses to the same cell where at least
     * one side is a write, the two sides belong to different events,
     * and both events were scheduled before the shared timestamp (see
     * the causality filter in the file header). One conflict is
     * reported per (cell, timestamp) group, naming both source sites.
     */
    std::vector<Conflict> findConflicts() const;

    /** All records currently held (oldest first). */
    std::vector<AccessRecord> snapshot() const;

    std::size_t recordCount() const { return count_; }

    /** Records overwritten because the ring filled (0 = complete log). */
    std::uint64_t droppedRecords() const { return dropped_; }

    /** Forget all records and scheduling metadata. */
    void clear();
    ///@}

    /** The calling thread's active log (nullptr outside tracking). */
    static AccessLog *current();

    /** RAII guard installing a log as the thread's current one. */
    class Scope
    {
      public:
        explicit Scope(AccessLog *log);
        ~Scope();

        Scope(const Scope &) = delete;
        Scope &operator=(const Scope &) = delete;

      private:
        AccessLog *prev_;
    };

  private:
    std::vector<AccessRecord> ring_;
    std::size_t capacity_;
    std::size_t head_ = 0; // next overwrite position once full
    std::size_t count_ = 0;
    std::uint64_t dropped_ = 0;

    /** Schedule time of each still-pending event, keyed by seq. */
    std::map<std::uint64_t, std::int64_t> pendingSchedAt_;

    /** @name Current event context (set by beginEvent) */
    ///@{
    std::int64_t curWhen_ = 0;
    std::uint64_t curSeq_ = 0;
    std::int64_t curSchedAt_ = 0;
    ///@}
};

/**
 * Accessor wrapper for shared model state.
 *
 * Wrap state whose same-instant access order is semantically
 * meaningful (admission counters, replicated-store versions, device
 * occupancy). Use read()/write()/fetchAdd() on model paths so accesses
 * are attributed to their source site; peek() is the untracked escape
 * hatch for stats/reporting paths outside the simulation.
 */
template <typename T>
class Tracked
{
  public:
    Tracked() = default;

    explicit Tracked(T initial, const char *name = "?")
        : value_(std::move(initial)), name_(name)
    {}

    /** Tracked read. */
    const T &
    read(const std::source_location &loc =
             std::source_location::current()) const
    {
        note(AccessKind::Read, loc);
        return value_;
    }

    /** Tracked overwrite. */
    void
    write(T v,
          const std::source_location &loc = std::source_location::current())
    {
        note(AccessKind::Write, loc);
        value_ = std::move(v);
    }

    /** Tracked in-place mutation: records a write, returns the value. */
    T &
    writeRef(const std::source_location &loc =
                 std::source_location::current())
    {
        note(AccessKind::Write, loc);
        return value_;
    }

    /** Counter idiom: record a write, add @p delta, return old value. */
    T
    fetchAdd(T delta,
             const std::source_location &loc =
                 std::source_location::current())
    {
        note(AccessKind::Write, loc);
        T old = value_;
        value_ += delta;
        return old;
    }

    /** Untracked read (stats/reporting outside the simulation). */
    const T &peek() const { return value_; }

    const char *name() const { return name_; }

  private:
    void
    note(AccessKind kind, const std::source_location &loc) const
    {
        if (AccessLog *log = AccessLog::current())
            log->record(this, name_, kind, loc);
    }

    T value_{};
    const char *name_ = "?";
};

#else // !MOLECULE_DETERMINISM_ANALYSIS

/**
 * Analysis compiled out: Tracked<T> is a bare T with inline
 * passthrough accessors. Call sites are identical in both modes.
 */
template <typename T>
class Tracked
{
  public:
    Tracked() = default;

    explicit Tracked(T initial, const char *name = "?")
        : value_(std::move(initial))
    {
        (void)name;
    }

    const T &read() const { return value_; }

    void write(T v) { value_ = std::move(v); }

    T &writeRef() { return value_; }

    T
    fetchAdd(T delta)
    {
        T old = value_;
        value_ += delta;
        return old;
    }

    const T &peek() const { return value_; }

    const char *name() const { return "?"; }

  private:
    T value_{};
};

#endif // MOLECULE_DETERMINISM_ANALYSIS

} // namespace molecule::sim::analysis

#endif // MOLECULE_SIM_ANALYSIS_HH
