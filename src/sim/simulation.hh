/**
 * @file
 * The discrete-event simulation driver.
 *
 * A Simulation owns the virtual clock and the pending-event set, spawns
 * root coroutine tasks and provides the fundamental awaitable (delay).
 * All coroutine resumptions are funnelled through the event queue so
 * same-instant wakeups fire in a deterministic order.
 */

#ifndef MOLECULE_SIM_SIMULATION_HH
#define MOLECULE_SIM_SIMULATION_HH

#include <coroutine>
#include <memory>
#include <span>

#include "sim/analysis.hh"
#include "sim/arena.hh"
#include "sim/event_queue.hh"
#include "sim/random.hh"
#include "sim/task.hh"
#include "sim/time.hh"

namespace molecule::sim {

/**
 * Virtual-time executor for coroutine tasks.
 *
 * Typical use:
 * @code
 *   Simulation sim;
 *   sim.spawn(clientLoop(sim, ...));
 *   sim.run();                       // until no events remain
 * @endcode
 */
class Simulation
{
  public:
    /** @param seed seeds the simulation-owned RNG (determinism knob). */
    explicit Simulation(std::uint64_t seed = 42) : rng_(seed) {}

    Simulation(const Simulation &) = delete;
    Simulation &operator=(const Simulation &) = delete;

    /** Current simulated time. */
    SimTime now() const { return now_; }

    /** The simulation-owned deterministic RNG. */
    Rng &rng() { return rng_; }

    /**
     * Per-simulation bump arena for event-frequency scratch records
     * (span buffers, fault bookkeeping). Monotonic: freed wholesale
     * when the simulation is destroyed; see arena.hh for the lifetime
     * contract.
     */
    Arena &arena() { return arena_; }

    /** Schedule a callback @p after from now; returns a cancel id. */
    EventId
    schedule(SimTime after, InlineCallback fn)
    {
        const EventId id = events_.schedule(now_ + after, std::move(fn));
        noteScheduled();
        return id;
    }

    /** Cancel an event scheduled via schedule(). */
    bool
    cancel(EventId id)
    {
#if MOLECULE_DETERMINISM_ANALYSIS
        if (log_) {
            const std::uint64_t seq = events_.seqOfEvent(id);
            const bool cancelled = events_.cancel(id);
            if (cancelled && seq != 0)
                log_->dropScheduled(seq);
            return cancelled;
        }
#endif
        return events_.cancel(id);
    }

    /** Start a root task; its frame self-destroys when it completes. */
    void
    spawn(Task<> task)
    {
        task.detachAndStart();
    }

    /** Awaitable that suspends the caller for @p amount of sim time. */
    auto
    delay(SimTime amount)
    {
        struct Awaiter
        {
            Simulation *sim;
            SimTime amount;

            bool await_ready() const noexcept { return false; }

            void
            await_suspend(std::coroutine_handle<> h)
            {
                // Fast path: the handle is stored directly in the
                // event slot — no closure, no allocation.
                sim->events_.schedule(sim->now_ + amount, h);
                sim->noteScheduled();
            }

            void await_resume() const noexcept {}
        };
        MOLECULE_ASSERT(amount >= SimTime(0),
                        "negative delay %lld ns",
                        static_cast<long long>(amount.raw()));
        return Awaiter{this, amount};
    }

    /** Resume @p h at the current instant, ordered behind pending work. */
    void
    scheduleResume(std::coroutine_handle<> h)
    {
        events_.schedule(now_, h);
        noteScheduled();
    }

    /**
     * Resume every handle in @p hs at the current instant, in array
     * order (consecutive sequence numbers — identical firing order to
     * calling scheduleResume in a loop, minus the per-call overhead).
     */
    void
    scheduleResumeBatch(std::span<const std::coroutine_handle<>> hs)
    {
        events_.scheduleBatch(now_, hs);
        noteScheduledBatch(hs.size());
    }

    /**
     * Schedule a batch of callbacks; each entry's `when` is a delay
     * relative to now (rewritten in place to the absolute time).
     * Entries fire in array order at equal timestamps.
     */
    void
    scheduleBatch(std::span<BatchEvent> events)
    {
        for (BatchEvent &e : events) {
            MOLECULE_ASSERT(e.when >= SimTime(0),
                            "negative batch delay %lld ns",
                            static_cast<long long>(e.when.raw()));
            e.when = now_ + e.when;
        }
        events_.scheduleBatch(events);
        noteScheduledBatch(events.size());
    }

    /** Run until the event set drains. @return final simulated time. */
    SimTime run();

    /** Run until the clock would pass @p deadline (absolute). */
    SimTime runUntil(SimTime deadline);

    /** Fire exactly one event if present. @retval false queue was empty. */
    bool step();

    /** Number of pending events (diagnostics). */
    std::size_t pendingEvents() const { return events_.size(); }

#if MOLECULE_DETERMINISM_ANALYSIS
    /** @name Sim-time conflict detector (see sim/analysis.hh) */
    ///@{

    /**
     * Start recording Tracked<T> accesses into a fresh AccessLog.
     * Events already pending when tracking starts are treated as
     * same-instant scheduled (never reported).
     */
    void
    enableConflictTracking(
        std::size_t capacity = analysis::AccessLog::kDefaultCapacity)
    {
        log_ = std::make_unique<analysis::AccessLog>(capacity);
    }

    void stopConflictTracking() { log_.reset(); }

    /** The access log, or nullptr when tracking is off. */
    analysis::AccessLog *accessLog() { return log_.get(); }
    ///@}
#endif

  private:
    /** Tell the detector about the event the queue just accepted. */
    void
    noteScheduled()
    {
#if MOLECULE_DETERMINISM_ANALYSIS
        if (log_)
            log_->noteScheduled(events_.lastScheduledSeq(), now_.raw());
#endif
    }

    /** Tell the detector about the last @p n batch-accepted events. */
    void
    noteScheduledBatch(std::size_t n)
    {
#if MOLECULE_DETERMINISM_ANALYSIS
        if (log_ && n > 0) {
            const std::uint64_t last = events_.lastScheduledSeq();
            for (std::size_t i = 0; i < n; ++i)
                log_->noteScheduled(last - n + 1 + i, now_.raw());
        }
#else
        (void)n;
#endif
    }

    EventQueue events_;
    SimTime now_{0};
    Rng rng_;
    Arena arena_;
#if MOLECULE_DETERMINISM_ANALYSIS
    std::unique_ptr<analysis::AccessLog> log_;
#endif
};

} // namespace molecule::sim

#endif // MOLECULE_SIM_SIMULATION_HH
